package metrics

import (
	"math"
	"testing"
	"time"

	"freewayml/internal/stream"
)

func TestAccuracy(t *testing.T) {
	acc, err := Accuracy([]int{1, 0, 1, 1}, []int{1, 1, 1, 0})
	if err != nil || acc != 0.5 {
		t.Fatalf("Accuracy = %v, %v", acc, err)
	}
	if _, err := Accuracy([]int{1}, []int{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Accuracy(nil, nil); err == nil {
		t.Error("empty should error")
	}
}

func TestPrequentialGAccAndSI(t *testing.T) {
	var p Prequential
	if p.GAcc() != 0 || p.SI() != 0 {
		t.Error("empty Prequential should report zeros")
	}
	for _, a := range []float64{0.8, 0.9, 1.0} {
		p.Record(a, stream.KindNone, 10)
	}
	if math.Abs(p.GAcc()-0.9) > 1e-12 {
		t.Errorf("GAcc = %v", p.GAcc())
	}
	// σ = sqrt(((.01)+(0)+(.01))/3) = sqrt(0.02/3); SI = exp(-σ/0.9).
	sigma := math.Sqrt(0.02 / 3)
	want := math.Exp(-sigma / 0.9)
	if math.Abs(p.SI()-want) > 1e-12 {
		t.Errorf("SI = %v, want %v", p.SI(), want)
	}
	if p.Batches() != 3 || p.Samples() != 30 {
		t.Errorf("Batches=%d Samples=%d", p.Batches(), p.Samples())
	}
}

func TestSIPerfectStabilityIsOne(t *testing.T) {
	var p Prequential
	for i := 0; i < 5; i++ {
		p.Record(0.7, stream.KindNone, 1)
	}
	if p.SI() != 1 {
		t.Errorf("constant accuracy SI = %v, want 1", p.SI())
	}
}

func TestSIAllZeroAccuracy(t *testing.T) {
	var p Prequential
	p.Record(0, stream.KindNone, 1)
	if p.SI() != 0 {
		t.Errorf("zero-mean SI = %v, want 0", p.SI())
	}
}

func TestSIMoreStableIsHigher(t *testing.T) {
	var stable, unstable Prequential
	for i := 0; i < 10; i++ {
		stable.Record(0.8, stream.KindNone, 1)
		a := 0.6
		if i%2 == 0 {
			a = 1.0
		}
		unstable.Record(a, stream.KindNone, 1)
	}
	if !(stable.SI() > unstable.SI()) {
		t.Errorf("stable SI %v not above unstable %v", stable.SI(), unstable.SI())
	}
}

func TestKindBreakdown(t *testing.T) {
	var p Prequential
	p.Record(0.9, stream.KindSlight, 1)
	p.Record(0.7, stream.KindSlight, 1)
	p.Record(0.3, stream.KindSudden, 1)
	acc, n := p.KindAcc(stream.KindSlight)
	if n != 2 || math.Abs(acc-0.8) > 1e-12 {
		t.Errorf("slight = %v/%d", acc, n)
	}
	acc, n = p.KindAcc(stream.KindSudden)
	if n != 1 || acc != 0.3 {
		t.Errorf("sudden = %v/%d", acc, n)
	}
	if _, n := p.KindAcc(stream.KindReoccurring); n != 0 {
		t.Errorf("reoccurring count = %d", n)
	}
}

func TestSeriesIsCopy(t *testing.T) {
	var p Prequential
	p.Record(0.5, stream.KindNone, 1)
	s := p.Series()
	s[0] = 99
	if p.Series()[0] != 0.5 {
		t.Error("Series exposed internal storage")
	}
}

func TestLatencyTracker(t *testing.T) {
	var l LatencyTracker
	if l.MeanMicros() != 0 || l.Count() != 0 {
		t.Error("fresh tracker should be zero")
	}
	l.Add(100 * time.Microsecond)
	l.Add(300 * time.Microsecond)
	if l.Count() != 2 {
		t.Errorf("Count = %d", l.Count())
	}
	if m := l.MeanMicros(); math.Abs(m-200) > 1 {
		t.Errorf("MeanMicros = %v", m)
	}
}

func TestThroughput(t *testing.T) {
	if tp := Throughput(1000, time.Second); math.Abs(tp-1000) > 1e-9 {
		t.Errorf("Throughput = %v", tp)
	}
	if tp := Throughput(100, 0); tp != 0 {
		t.Errorf("zero-elapsed Throughput = %v", tp)
	}
}

func TestPrequentialExportImportRoundTrip(t *testing.T) {
	var p Prequential
	p.Record(0.9, stream.KindNone, 32)
	p.Record(0.7, stream.KindSudden, 32)
	p.Record(0.8, stream.KindNone, 16)

	st := p.Export()
	var q Prequential
	q.Import(st)

	if q.Batches() != p.Batches() || q.Samples() != p.Samples() {
		t.Fatalf("restored counts = %d/%d, want %d/%d", q.Batches(), q.Samples(), p.Batches(), p.Samples())
	}
	if q.GAcc() != p.GAcc() || q.SI() != p.SI() {
		t.Errorf("restored GAcc/SI = %v/%v, want %v/%v", q.GAcc(), q.SI(), p.GAcc(), p.SI())
	}
	if acc, n := q.KindAcc(stream.KindSudden); n != 1 || acc != 0.7 {
		t.Errorf("restored KindAcc = %v/%d", acc, n)
	}

	// The snapshot is a deep copy: mutating the source must not leak.
	p.Record(0.1, stream.KindNone, 8)
	if q.Batches() != 3 {
		t.Error("import aliases exporter's storage")
	}
}

func TestLatencyTrackerPercentiles(t *testing.T) {
	var l LatencyTracker
	if l.P50Micros() != 0 || l.P99Micros() != 0 {
		t.Error("empty tracker must report 0 percentiles")
	}
	// 98 ops at ~100µs, two at ~1s: the median stays near 100µs while the
	// p99 lands in the slow tail.
	for i := 0; i < 98; i++ {
		l.Add(100 * time.Microsecond)
	}
	l.Add(time.Second)
	l.Add(time.Second)
	p50, p99 := l.P50Micros(), l.P99Micros()
	if p50 < 10 || p50 > 1000 {
		t.Errorf("p50 = %vµs, want ~100µs bucket", p50)
	}
	if p99 < 100_000 {
		t.Errorf("p99 = %vµs, want in the ~1s tail", p99)
	}
	if p95 := l.P95Micros(); p95 > p99 {
		t.Errorf("p95 %v > p99 %v", p95, p99)
	}
}
