package metrics

import "errors"

// Kappa computes Cohen's kappa for a prediction/label pair: chance-corrected
// agreement, the standard complement to raw accuracy on imbalanced streams
// (a majority-class predictor scores high accuracy but κ ≈ 0).
func Kappa(pred, labels []int, numClasses int) (float64, error) {
	if len(pred) != len(labels) {
		return 0, errors.New("metrics: prediction/label length mismatch")
	}
	if len(pred) == 0 {
		return 0, errors.New("metrics: empty batch")
	}
	if numClasses < 2 {
		return 0, errors.New("metrics: kappa needs >= 2 classes")
	}
	n := float64(len(pred))
	var agree float64
	predCount := make([]float64, numClasses)
	labelCount := make([]float64, numClasses)
	for i := range pred {
		if pred[i] < 0 || pred[i] >= numClasses || labels[i] < 0 || labels[i] >= numClasses {
			return 0, errors.New("metrics: class index out of range")
		}
		if pred[i] == labels[i] {
			agree++
		}
		predCount[pred[i]]++
		labelCount[labels[i]]++
	}
	po := agree / n
	var pe float64
	for c := 0; c < numClasses; c++ {
		pe += (predCount[c] / n) * (labelCount[c] / n)
	}
	if pe == 1 {
		return 0, nil // degenerate: everything one class on both sides
	}
	return (po - pe) / (1 - pe), nil
}

// Fading accumulates accuracy with an exponential fading factor — the
// prequential estimator of Gama et al. that tracks *current* performance
// instead of the lifetime mean, standard for drifting streams.
type Fading struct {
	// Alpha is the fading factor in (0, 1); values near 1 fade slowly.
	alpha float64
	num   float64
	den   float64
}

// NewFading returns a fading accumulator; alpha must be in (0, 1).
func NewFading(alpha float64) (*Fading, error) {
	if alpha <= 0 || alpha >= 1 {
		return nil, errors.New("metrics: fading alpha must be in (0, 1)")
	}
	return &Fading{alpha: alpha}, nil
}

// Record folds one batch accuracy in.
func (f *Fading) Record(acc float64) {
	f.num = f.alpha*f.num + acc
	f.den = f.alpha*f.den + 1
}

// Acc returns the faded accuracy estimate (0 before any observation).
func (f *Fading) Acc() float64 {
	if f.den == 0 {
		return 0
	}
	return f.num / f.den
}
