package metrics

import (
	"math"
	"testing"
)

func TestKappaPerfectAgreement(t *testing.T) {
	pred := []int{0, 1, 0, 1, 2}
	k, err := Kappa(pred, pred, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k-1) > 1e-12 {
		t.Errorf("perfect kappa = %v", k)
	}
}

func TestKappaMajorityPredictorNearZero(t *testing.T) {
	// 90% of labels are class 0; predicting all-zero gets 90% accuracy but
	// κ must be 0 (pure chance agreement given the marginals).
	labels := make([]int, 100)
	for i := 90; i < 100; i++ {
		labels[i] = 1
	}
	pred := make([]int, 100)
	k, err := Kappa(pred, labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k) > 1e-9 {
		t.Errorf("majority predictor kappa = %v, want 0", k)
	}
}

func TestKappaErrors(t *testing.T) {
	if _, err := Kappa([]int{0}, []int{0, 1}, 2); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Kappa(nil, nil, 2); err == nil {
		t.Error("empty should error")
	}
	if _, err := Kappa([]int{0}, []int{0}, 1); err == nil {
		t.Error("single class should error")
	}
	if _, err := Kappa([]int{5}, []int{0}, 2); err == nil {
		t.Error("out-of-range class should error")
	}
}

func TestKappaDegenerateSingleClassData(t *testing.T) {
	k, err := Kappa([]int{0, 0}, []int{0, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if k != 0 {
		t.Errorf("degenerate kappa = %v", k)
	}
}

func TestFadingTracksRecentPerformance(t *testing.T) {
	f, err := NewFading(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if f.Acc() != 0 {
		t.Error("empty fading should be 0")
	}
	// A long good phase followed by a bad phase: the faded estimate must
	// sit near the bad phase while the lifetime mean would not.
	for i := 0; i < 100; i++ {
		f.Record(0.9)
	}
	for i := 0; i < 30; i++ {
		f.Record(0.3)
	}
	if got := f.Acc(); got > 0.4 {
		t.Errorf("faded accuracy = %v, want near the recent 0.3", got)
	}
}

func TestFadingValidation(t *testing.T) {
	if _, err := NewFading(0); err == nil {
		t.Error("alpha 0 should error")
	}
	if _, err := NewFading(1); err == nil {
		t.Error("alpha 1 should error")
	}
}
