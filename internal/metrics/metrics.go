// Package metrics implements the evaluation metrics of the paper: real-time
// accuracy (Eq. 1), global average accuracy G_acc (Eq. 15), the stability
// index SI (Eq. 16), per-pattern accuracy breakdowns for the Table II and
// Fig. 9/11 experiments, and latency/throughput trackers for Fig. 10 and
// Tables III/VI.
package metrics

import (
	"errors"
	"math"
	"time"

	"freewayml/internal/obs"
	"freewayml/internal/stream"
)

// Accuracy implements Eq. 1: the fraction of predictions matching labels.
func Accuracy(pred, labels []int) (float64, error) {
	if len(pred) != len(labels) {
		return 0, errors.New("metrics: prediction/label length mismatch")
	}
	if len(pred) == 0 {
		return 0, errors.New("metrics: empty batch")
	}
	correct := 0
	for i := range pred {
		if pred[i] == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred)), nil
}

// Prequential accumulates per-batch real-time accuracies and derives the
// paper's aggregate metrics. The zero value is ready to use.
type Prequential struct {
	accs    []float64
	byKind  map[stream.DriftKind][]float64
	samples int
}

// Record adds one batch's real-time accuracy, tagged with the ground-truth
// drift kind of the batch (use stream.KindNone when unknown).
func (p *Prequential) Record(acc float64, kind stream.DriftKind, batchSize int) {
	p.accs = append(p.accs, acc)
	if p.byKind == nil {
		p.byKind = make(map[stream.DriftKind][]float64)
	}
	p.byKind[kind] = append(p.byKind[kind], acc)
	p.samples += batchSize
}

// Batches returns the number of recorded batches.
func (p *Prequential) Batches() int { return len(p.accs) }

// Samples returns the total number of evaluated samples.
func (p *Prequential) Samples() int { return p.samples }

// Series returns the per-batch real-time accuracies in order (the solid
// lines of Fig. 9/12).
func (p *Prequential) Series() []float64 {
	return append([]float64(nil), p.accs...)
}

// GAcc implements Eq. 15: the mean of per-batch accuracies. Returns 0 when
// nothing is recorded.
func (p *Prequential) GAcc() float64 {
	if len(p.accs) == 0 {
		return 0
	}
	var s float64
	for _, a := range p.accs {
		s += a
	}
	return s / float64(len(p.accs))
}

// SI implements Eq. 16: exp(−σ_acc/μ_acc), the exponentially scaled inverse
// coefficient of variation of per-batch accuracies, in (0, 1] with 1 the
// most stable. Returns 0 when nothing is recorded or the mean accuracy is 0.
func (p *Prequential) SI() float64 {
	if len(p.accs) == 0 {
		return 0
	}
	mu := p.GAcc()
	if mu == 0 {
		return 0
	}
	var ss float64
	for _, a := range p.accs {
		d := a - mu
		ss += d * d
	}
	sigma := math.Sqrt(ss / float64(len(p.accs)))
	return math.Exp(-sigma / mu)
}

// PrequentialState is the serializable snapshot of a Prequential, used by
// the learner checkpoint so metric continuity survives a restart.
type PrequentialState struct {
	Accs    []float64
	ByKind  map[stream.DriftKind][]float64
	Samples int
}

// Export snapshots the accumulated metrics.
func (p *Prequential) Export() PrequentialState {
	st := PrequentialState{
		Accs:    append([]float64(nil), p.accs...),
		Samples: p.samples,
	}
	if len(p.byKind) > 0 {
		st.ByKind = make(map[stream.DriftKind][]float64, len(p.byKind))
		for k, v := range p.byKind {
			st.ByKind[k] = append([]float64(nil), v...)
		}
	}
	return st
}

// Import replaces the accumulated metrics with a snapshot from Export.
func (p *Prequential) Import(st PrequentialState) {
	p.accs = append([]float64(nil), st.Accs...)
	p.samples = st.Samples
	p.byKind = nil
	if len(st.ByKind) > 0 {
		p.byKind = make(map[stream.DriftKind][]float64, len(st.ByKind))
		for k, v := range st.ByKind {
			p.byKind[k] = append([]float64(nil), v...)
		}
	}
}

// KindAcc returns the mean accuracy over batches of the given drift kind
// and the count of such batches.
func (p *Prequential) KindAcc(kind stream.DriftKind) (float64, int) {
	accs := p.byKind[kind]
	if len(accs) == 0 {
		return 0, 0
	}
	var s float64
	for _, a := range accs {
		s += a
	}
	return s / float64(len(accs)), len(accs)
}

// LatencyTracker accumulates per-operation durations, reporting the mean in
// microseconds (the unit of Tables III and VI) plus tail percentiles from
// an obs.Histogram — the same fixed-bucket sketch the /v1/metrics endpoint
// exports, so the experiment tables and a live scrape agree on methodology.
type LatencyTracker struct {
	total time.Duration
	n     int
	hist  *obs.Histogram
}

// Add records one operation's duration.
func (l *LatencyTracker) Add(d time.Duration) {
	l.total += d
	l.n++
	if l.hist == nil {
		l.hist = obs.NewHistogram(nil)
	}
	l.hist.Observe(d.Seconds())
}

// MeanMicros returns the mean latency in µs (0 when nothing recorded).
func (l *LatencyTracker) MeanMicros() float64 {
	if l.n == 0 {
		return 0
	}
	return float64(l.total.Microseconds()) / float64(l.n)
}

// QuantileMicros returns the q-quantile latency in µs, interpolated within
// the histogram's buckets (0 when nothing recorded).
func (l *LatencyTracker) QuantileMicros(q float64) float64 {
	if l.hist == nil {
		return 0
	}
	return l.hist.Quantile(q) * 1e6
}

// P50Micros returns the median latency in µs.
func (l *LatencyTracker) P50Micros() float64 { return l.QuantileMicros(0.50) }

// P95Micros returns the 95th-percentile latency in µs.
func (l *LatencyTracker) P95Micros() float64 { return l.QuantileMicros(0.95) }

// P99Micros returns the 99th-percentile latency in µs.
func (l *LatencyTracker) P99Micros() float64 { return l.QuantileMicros(0.99) }

// Count returns the number of recorded operations.
func (l *LatencyTracker) Count() int { return l.n }

// Throughput returns items/second given a processed item count and the
// elapsed wall time (0 when elapsed is not positive).
func Throughput(items int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(items) / elapsed.Seconds()
}
