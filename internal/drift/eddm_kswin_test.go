package drift

import (
	"math/rand"
	"testing"
)

func TestEDDMStableNoDetection(t *testing.T) {
	// A stationary Bernoulli error stream. EDDM is known to be sensitive on
	// heavy-tailed gap distributions (the early max estimate overshoots),
	// so rare false positives are tolerated; frequent ones are a bug.
	rng := rand.New(rand.NewSource(7))
	d := NewEDDM()
	fires := 0
	for i := 0; i < 3000; i++ {
		var e float64
		if rng.Float64() < 0.2 {
			e = 1
		}
		if d.Add(e) {
			fires++
		}
	}
	if fires > 2 {
		t.Errorf("EDDM fired %d times on a stationary error stream", fires)
	}
}

func TestEDDMDetectsShrinkingErrorGaps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewEDDM()
	// Low error rate (long gaps), then high error rate (short gaps).
	feed(d, 3000, func(int) float64 {
		if rng.Float64() < 0.05 {
			return 1
		}
		return 0
	})
	if !feed(d, 1500, func(int) float64 {
		if rng.Float64() < 0.6 {
			return 1
		}
		return 0
	}) {
		t.Error("EDDM missed a 0.05→0.6 error-rate jump")
	}
}

func TestEDDMWarning(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewEDDM()
	feed(d, 3000, func(int) float64 {
		if rng.Float64() < 0.05 {
			return 1
		}
		return 0
	})
	warned := false
	for i := 0; i < 1500; i++ {
		var e float64
		if rng.Float64() < 0.5 {
			e = 1
		}
		if d.Warning() {
			warned = true
		}
		if d.Add(e) {
			break
		}
	}
	if !warned {
		t.Error("no warning before EDDM drift")
	}
}

func TestKSWINStableNoDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	k := NewKSWIN(0.005, 100, 30, 1)
	fired := 0
	for i := 0; i < 2000; i++ {
		if k.Add(rng.NormFloat64()) {
			fired++
		}
	}
	// ~1900 KS tests at α=0.005 expect ≈10 false positives; anything far
	// beyond that indicates a broken statistic.
	if fired > 30 {
		t.Errorf("KSWIN fired %d times on a stationary stream", fired)
	}
}

func TestKSWINDetectsDistributionChange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	k := NewKSWIN(0.005, 100, 30, 1)
	for i := 0; i < 500; i++ {
		k.Add(rng.NormFloat64())
	}
	detected := false
	for i := 0; i < 200; i++ {
		if k.Add(5 + rng.NormFloat64()) {
			detected = true
			break
		}
	}
	if !detected {
		t.Error("KSWIN missed a 5σ mean shift")
	}
}

func TestKSWINDefaultsAndReset(t *testing.T) {
	k := NewKSWIN(-1, 0, 0, 1)
	if k.Alpha != 0.005 || k.WindowSize != 100 || k.StatSize != 33 {
		t.Errorf("defaults: %+v", k)
	}
	k.Add(1)
	k.Reset()
	if len(k.window) != 0 {
		t.Error("Reset did not clear")
	}
}

func TestKSStatisticBounds(t *testing.T) {
	same := []float64{1, 2, 3, 4}
	if d := ksStatistic(same, same); d > 0.26 {
		t.Errorf("identical samples KS = %v", d)
	}
	disjoint := ksStatistic([]float64{1, 2, 3}, []float64{10, 11, 12})
	if disjoint < 0.99 {
		t.Errorf("disjoint samples KS = %v, want ~1", disjoint)
	}
}

func TestNewDetectorsImplementInterface(t *testing.T) {
	var _ Detector = NewEDDM()
	var _ Detector = NewKSWIN(0, 0, 0, 1)
}
