package drift

import "math"

// ADWIN is the ADaptive WINdowing detector of Bifet & Gavaldà (2007): it
// maintains a window of recent observations and drops its prefix whenever
// two sub-windows exhibit means different enough to be statistically
// incompatible at confidence δ. This implementation keeps an explicit
// window (bounded by MaxWindow) and checks every split point — O(w) per
// add, ample for the per-batch signals FreewayML's baselines feed it.
type ADWIN struct {
	// Delta is the confidence parameter δ (0.002 is the customary default).
	Delta float64
	// MaxWindow bounds memory; older observations beyond it are discarded
	// without signaling drift.
	MaxWindow int

	window []float64
}

// NewADWIN returns an ADWIN detector; non-positive arguments select the
// defaults δ=0.002, MaxWindow=1000.
func NewADWIN(delta float64, maxWindow int) *ADWIN {
	if delta <= 0 || delta >= 1 {
		delta = 0.002
	}
	if maxWindow <= 0 {
		maxWindow = 1000
	}
	return &ADWIN{Delta: delta, MaxWindow: maxWindow}
}

// Add ingests an observation; it returns true and shrinks the window when a
// change is detected.
func (a *ADWIN) Add(x float64) bool {
	a.window = append(a.window, x)
	if len(a.window) > a.MaxWindow {
		a.window = a.window[1:]
	}
	n := len(a.window)
	if n < 10 {
		return false
	}

	total := 0.0
	for _, v := range a.window {
		total += v
	}

	detected := false
	// Check every split; cut the longest incompatible prefix.
	leftSum := 0.0
	cut := -1
	for i := 0; i < n-5; i++ {
		leftSum += a.window[i]
		n0 := float64(i + 1)
		n1 := float64(n - i - 1)
		if n0 < 5 || n1 < 5 {
			continue
		}
		mean0 := leftSum / n0
		mean1 := (total - leftSum) / n1
		// Hoeffding-style bound with harmonic sample size.
		m := 1 / (1/n0 + 1/n1)
		deltaPrime := a.Delta / float64(n)
		epsCut := math.Sqrt((1 / (2 * m)) * math.Log(4/deltaPrime))
		if math.Abs(mean0-mean1) > epsCut {
			detected = true
			cut = i
		}
	}
	if detected {
		a.window = append([]float64(nil), a.window[cut+1:]...)
	}
	return detected
}

// Reset clears the window.
func (a *ADWIN) Reset() { a.window = nil }

// WindowLen returns the current window length (for inspection and tests).
func (a *ADWIN) WindowLen() int { return len(a.window) }

// Mean returns the mean of the current window (0 when empty).
func (a *ADWIN) Mean() float64 {
	if len(a.window) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range a.window {
		s += v
	}
	return s / float64(len(a.window))
}
