package drift

import "testing"

// flipDetector fires every nth Add.
type flipDetector struct{ n, i int }

func (f *flipDetector) Add(float64) bool { f.i++; return f.i%f.n == 0 }
func (f *flipDetector) Reset()           { f.i = 0 }

func TestCountedForwardsAndCounts(t *testing.T) {
	inner := &flipDetector{n: 3}
	c := NewCounted(inner)
	fired := 0
	for i := 0; i < 9; i++ {
		if c.Add(0.5) {
			fired++
		}
	}
	if fired != 3 {
		t.Errorf("fired = %d, want 3", fired)
	}
	if c.Adds() != 9 || c.Detections() != 3 {
		t.Errorf("adds=%d detections=%d, want 9/3", c.Adds(), c.Detections())
	}
	c.Reset()
	if inner.i != 0 {
		t.Error("Reset not forwarded")
	}
	if c.Adds() != 9 || c.Detections() != 3 {
		t.Error("Reset must not clear lifetime counters")
	}
	if c.Unwrap() != Detector(inner) {
		t.Error("Unwrap mismatch")
	}
}

func TestCountedNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewCounted(nil) should panic")
		}
	}()
	NewCounted(nil)
}

func TestCountedWithADWIN(t *testing.T) {
	c := NewCounted(NewADWIN(0.002, 200))
	for i := 0; i < 300; i++ {
		c.Add(0.05)
	}
	for i := 0; i < 300; i++ {
		c.Add(0.9)
	}
	if c.Detections() == 0 {
		t.Error("ADWIN through Counted never detected an obvious drift")
	}
	if c.Adds() != 600 {
		t.Errorf("adds = %d", c.Adds())
	}
}
