package drift

// PageHinkley is the Page-Hinkley change detector: it accumulates the
// deviation of observations from their running mean (minus a tolerance δ)
// and signals drift when the accumulated deviation exceeds threshold λ.
type PageHinkley struct {
	// Delta is the tolerance subtracted from each deviation.
	Delta float64
	// Lambda is the detection threshold.
	Lambda float64
	// MinSamples before any decision.
	MinSamples int

	n    int
	mean float64
	sum  float64
	min  float64
}

// NewPageHinkley returns a detector with the given tolerance and threshold;
// non-positive values select δ=0.005, λ=50.
func NewPageHinkley(delta, lambda float64) *PageHinkley {
	if delta <= 0 {
		delta = 0.005
	}
	if lambda <= 0 {
		lambda = 50
	}
	return &PageHinkley{Delta: delta, Lambda: lambda, MinSamples: 30}
}

// Add ingests an observation; returns true when the cumulative deviation
// crosses λ, resetting the detector.
func (p *PageHinkley) Add(x float64) bool {
	p.n++
	p.mean += (x - p.mean) / float64(p.n)
	p.sum += x - p.mean - p.Delta
	if p.sum < p.min {
		p.min = p.sum
	}
	if p.n < p.MinSamples {
		return false
	}
	if p.sum-p.min > p.Lambda {
		p.Reset()
		return true
	}
	return false
}

// Reset clears all statistics.
func (p *PageHinkley) Reset() {
	p.n = 0
	p.mean = 0
	p.sum = 0
	p.min = 0
}
