package drift

import "math"

// EDDM is the Early Drift Detection Method (Baena-García et al. 2006): it
// tracks the distance (in samples) between consecutive errors rather than
// the error rate, which detects gradual drifts earlier than DDM. Drift is
// signaled when (μ′+2σ′)/(μ′max+2σ′max) falls below the drift threshold.
type EDDM struct {
	// WarningThreshold and DriftThreshold are the ratio cutoffs (0.95 and
	// 0.90 in the original paper).
	WarningThreshold, DriftThreshold float64
	// MinErrors before any decision (30 in the original paper).
	MinErrors int

	sinceLastError int
	seenFirst      bool // the first error has no previous error to gap from
	numErrors      int
	mean           float64
	m2             float64
	maxScore       float64
}

// NewEDDM returns an EDDM detector. The thresholds sit below the original
// paper's 0.95/0.90: with heavy-tailed (geometric) error gaps the early
// maximum estimate overshoots and the original cutoffs false-positive on
// stationary streams, while genuine drifts collapse the ratio far below
// either setting.
func NewEDDM() *EDDM {
	e := &EDDM{WarningThreshold: 0.88, DriftThreshold: 0.80, MinErrors: 30}
	e.Reset()
	return e
}

// Add ingests a binary error indicator (1 = misclassified); returns true
// when the drift threshold is crossed.
func (e *EDDM) Add(x float64) bool {
	e.sinceLastError++
	if x < 0.5 {
		return false
	}
	// An error occurred. The first error has no preceding error, so its
	// "gap" is meaningless and only starts the clock.
	if !e.seenFirst {
		e.seenFirst = true
		e.sinceLastError = 0
		return false
	}
	e.numErrors++
	gap := float64(e.sinceLastError)
	e.sinceLastError = 0
	delta := gap - e.mean
	e.mean += delta / float64(e.numErrors)
	e.m2 += delta * (gap - e.mean)

	if e.numErrors < e.MinErrors {
		return false
	}
	std := math.Sqrt(e.m2 / float64(e.numErrors))
	score := e.mean + 2*std
	if score > e.maxScore {
		e.maxScore = score
		return false
	}
	if e.maxScore == 0 {
		return false
	}
	if score/e.maxScore < e.DriftThreshold {
		e.Reset()
		return true
	}
	return false
}

// Warning reports whether the warning threshold is crossed.
func (e *EDDM) Warning() bool {
	if e.numErrors < e.MinErrors || e.maxScore == 0 {
		return false
	}
	std := math.Sqrt(e.m2 / float64(e.numErrors))
	return (e.mean+2*std)/e.maxScore < e.WarningThreshold
}

// Reset clears all statistics.
func (e *EDDM) Reset() {
	e.sinceLastError = 0
	e.seenFirst = false
	e.numErrors = 0
	e.mean = 0
	e.m2 = 0
	e.maxScore = 0
}
