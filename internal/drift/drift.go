// Package drift implements the classical concept-drift detectors the
// baseline frameworks rely on: ADWIN (adaptive windowing), DDM (drift
// detection method), and Page-Hinkley. The River baseline pairs one of
// these with a model reset, which is the "drift detector + model
// integrator" behaviour the paper compares against.
package drift

// Detector consumes a per-sample or per-batch error signal (0 = correct,
// 1 = error, or any bounded real statistic) and reports when the signal's
// distribution changed.
type Detector interface {
	// Add ingests one observation and returns true when drift is detected.
	// Detection resets the detector's internal state.
	Add(x float64) bool
	// Reset clears all state.
	Reset()
}
