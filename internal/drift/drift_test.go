package drift

import (
	"math/rand"
	"testing"
)

// feed pushes n observations from gen and returns whether any triggered.
func feed(d Detector, n int, gen func(i int) float64) bool {
	detected := false
	for i := 0; i < n; i++ {
		if d.Add(gen(i)) {
			detected = true
		}
	}
	return detected
}

func TestADWINStableStreamNoDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewADWIN(0.002, 500)
	if feed(a, 400, func(int) float64 {
		if rng.Float64() < 0.2 {
			return 1
		}
		return 0
	}) {
		t.Error("ADWIN detected drift on a stationary stream")
	}
	if a.WindowLen() == 0 {
		t.Error("window empty after stable feed")
	}
}

func TestADWINDetectsMeanShift(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewADWIN(0.002, 500)
	feed(a, 200, func(int) float64 {
		if rng.Float64() < 0.1 {
			return 1
		}
		return 0
	})
	if !feed(a, 200, func(int) float64 {
		if rng.Float64() < 0.9 {
			return 1
		}
		return 0
	}) {
		t.Error("ADWIN missed a 0.1→0.9 error-rate shift")
	}
	// After detection the window should have dropped the old regime.
	if m := a.Mean(); m < 0.5 {
		t.Errorf("post-detection window mean = %v, want high", m)
	}
}

func TestADWINDefaultsAndReset(t *testing.T) {
	a := NewADWIN(-1, -1)
	if a.Delta != 0.002 || a.MaxWindow != 1000 {
		t.Errorf("defaults not applied: %+v", a)
	}
	a.Add(1)
	a.Reset()
	if a.WindowLen() != 0 || a.Mean() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestADWINWindowBounded(t *testing.T) {
	a := NewADWIN(0.002, 50)
	for i := 0; i < 200; i++ {
		a.Add(0.5)
	}
	if a.WindowLen() > 50 {
		t.Errorf("window grew to %d", a.WindowLen())
	}
}

func TestDDMStableNoDetection(t *testing.T) {
	// A perfectly stationary error rate (alternating 0/1 → p = 0.5 with
	// monotonically shrinking s) must never trigger.
	d := NewDDM()
	if feed(d, 500, func(i int) float64 { return float64(i % 2) }) {
		t.Error("DDM detected drift on a stationary stream")
	}
}

func TestDDMDetectsErrorRateJump(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := NewDDM()
	feed(d, 300, func(int) float64 {
		if rng.Float64() < 0.1 {
			return 1
		}
		return 0
	})
	if !feed(d, 300, func(int) float64 {
		if rng.Float64() < 0.7 {
			return 1
		}
		return 0
	}) {
		t.Error("DDM missed a 0.1→0.7 error-rate jump")
	}
}

func TestDDMWarningPrecedesDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDDM()
	feed(d, 300, func(int) float64 {
		if rng.Float64() < 0.1 {
			return 1
		}
		return 0
	})
	warned := false
	for i := 0; i < 300; i++ {
		var e float64
		if rng.Float64() < 0.5 {
			e = 1
		}
		if d.Warning() {
			warned = true
		}
		if d.Add(e) {
			break
		}
	}
	if !warned {
		t.Error("no warning before drift")
	}
}

func TestPageHinkleyDetectsLevelShift(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := NewPageHinkley(0.005, 20)
	feed(p, 300, func(int) float64 { return rng.NormFloat64() * 0.1 })
	if !feed(p, 300, func(int) float64 { return 2 + rng.NormFloat64()*0.1 }) {
		t.Error("Page-Hinkley missed a level shift")
	}
}

func TestPageHinkleyStableNoDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := NewPageHinkley(0.005, 50)
	if feed(p, 1000, func(int) float64 { return rng.NormFloat64() * 0.1 }) {
		t.Error("Page-Hinkley fired on a stationary stream")
	}
}

func TestPageHinkleyDefaults(t *testing.T) {
	p := NewPageHinkley(0, 0)
	if p.Delta != 0.005 || p.Lambda != 50 {
		t.Errorf("defaults not applied: %+v", p)
	}
}

func TestDetectorInterfaceCompliance(t *testing.T) {
	var _ Detector = NewADWIN(0, 0)
	var _ Detector = NewDDM()
	var _ Detector = NewPageHinkley(0, 0)
}
