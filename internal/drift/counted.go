package drift

import "sync/atomic"

// Counted wraps a Detector with cumulative observation and detection
// counters, so pipelines built on the classical detectors (the River
// baseline, ablation harnesses) can report drift-response activity without
// each call site keeping its own tally. Counters are atomic: a stats
// endpoint may read them while the stream feeds the detector.
type Counted struct {
	inner      Detector
	adds       atomic.Int64
	detections atomic.Int64
}

// NewCounted wraps det (nil panics: a counted nothing is a bug).
func NewCounted(det Detector) *Counted {
	if det == nil {
		panic("drift: NewCounted(nil)")
	}
	return &Counted{inner: det}
}

// Add forwards to the wrapped detector, counting the observation and any
// detection.
func (c *Counted) Add(x float64) bool {
	c.adds.Add(1)
	drifted := c.inner.Add(x)
	if drifted {
		c.detections.Add(1)
	}
	return drifted
}

// Reset forwards to the wrapped detector. The counters are lifetime
// totals and are not reset.
func (c *Counted) Reset() { c.inner.Reset() }

// Adds returns how many observations have been fed.
func (c *Counted) Adds() int64 { return c.adds.Load() }

// Detections returns how many times drift was signalled.
func (c *Counted) Detections() int64 { return c.detections.Load() }

// Unwrap returns the wrapped detector.
func (c *Counted) Unwrap() Detector { return c.inner }
