package drift

import (
	"math"
	"math/rand"
	"sort"
)

// KSWIN is the Kolmogorov-Smirnov Windowing detector (Raab et al. 2020): it
// keeps a sliding window of recent observations and tests, via the two-
// sample KS statistic, whether a random sample of the window's older part
// and its most recent part come from the same distribution.
type KSWIN struct {
	// Alpha is the significance level of the KS test (0.005 by default).
	Alpha float64
	// WindowSize and StatSize are the sliding window length and the size of
	// the recent segment tested (100 and 30 by default).
	WindowSize, StatSize int

	window []float64
	rng    *rand.Rand
}

// NewKSWIN returns a KSWIN detector; non-positive arguments select the
// defaults α=0.005, window 100, statistic segment 30.
func NewKSWIN(alpha float64, windowSize, statSize int, seed int64) *KSWIN {
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.005
	}
	if windowSize <= 0 {
		windowSize = 100
	}
	if statSize <= 0 || statSize >= windowSize {
		statSize = windowSize / 3
	}
	return &KSWIN{Alpha: alpha, WindowSize: windowSize, StatSize: statSize, rng: rand.New(rand.NewSource(seed))}
}

// Add ingests an observation; returns true when the KS test rejects the
// same-distribution hypothesis, pruning the window to the recent segment.
func (k *KSWIN) Add(x float64) bool {
	k.window = append(k.window, x)
	if len(k.window) > k.WindowSize {
		k.window = k.window[1:]
	}
	if len(k.window) < k.WindowSize {
		return false
	}

	recent := k.window[len(k.window)-k.StatSize:]
	older := k.window[:len(k.window)-k.StatSize]
	// Random subsample of the older part, same size as the recent segment.
	sample := make([]float64, k.StatSize)
	for i := range sample {
		sample[i] = older[k.rng.Intn(len(older))]
	}

	d := ksStatistic(sample, recent)
	// KS critical value for two equal-size samples at significance α.
	n := float64(k.StatSize)
	critical := math.Sqrt(-0.5*math.Log(k.Alpha/2)) * math.Sqrt(2/n)
	if d > critical {
		k.window = append([]float64(nil), recent...)
		return true
	}
	return false
}

// Reset clears the window.
func (k *KSWIN) Reset() { k.window = nil }

// ksStatistic returns the two-sample Kolmogorov-Smirnov statistic: the
// maximum distance between the samples' empirical CDFs.
func ksStatistic(a, b []float64) float64 {
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	var d float64
	i, j := 0, 0
	for i < len(as) && j < len(bs) {
		if as[i] <= bs[j] {
			i++
		} else {
			j++
		}
		fa := float64(i) / float64(len(as))
		fb := float64(j) / float64(len(bs))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d
}
