package drift

import "math"

// DDM is the Drift Detection Method of Gama et al. (2004): it tracks the
// running error rate p and its standard deviation s, recording the minimum
// p+s seen; drift is signaled when p+s exceeds p_min + 3·s_min.
type DDM struct {
	// WarningLevel and DriftLevel are the multipliers on s_min (2 and 3 in
	// the original paper).
	WarningLevel, DriftLevel float64
	// MinSamples before any decision (30 in the original paper).
	MinSamples int

	n     int
	p     float64
	pMin  float64
	sMin  float64
	psMin float64
}

// NewDDM returns a DDM detector with the original paper's thresholds.
func NewDDM() *DDM {
	d := &DDM{WarningLevel: 2, DriftLevel: 3, MinSamples: 30}
	d.Reset()
	return d
}

// Add ingests a binary error indicator (1 = misclassified) or any bounded
// error statistic; returns true when the drift level is crossed.
func (d *DDM) Add(x float64) bool {
	d.n++
	// Incremental error-rate estimate.
	d.p += (x - d.p) / float64(d.n)
	s := math.Sqrt(d.p * (1 - d.p) / float64(d.n))

	if d.n < d.MinSamples {
		return false
	}
	if d.p+s < d.psMin {
		d.pMin, d.sMin, d.psMin = d.p, s, d.p+s
	}
	if d.p+s > d.pMin+d.DriftLevel*d.sMin {
		d.Reset()
		return true
	}
	return false
}

// Warning reports whether the warning level is exceeded (without resetting).
func (d *DDM) Warning() bool {
	if d.n < d.MinSamples {
		return false
	}
	s := math.Sqrt(d.p * (1 - d.p) / float64(d.n))
	return d.p+s > d.pMin+d.WarningLevel*d.sMin
}

// Reset clears all statistics.
func (d *DDM) Reset() {
	d.n = 0
	d.p = 0
	d.pMin = math.Inf(1)
	d.sMin = math.Inf(1)
	d.psMin = math.Inf(1)
}
