package model

import (
	"math/rand"
	"testing"
)

// benchFamily measures one prequential step (predict + fit) per family on a
// 256-sample, 10-feature, 3-class batch.
func benchFamily(b *testing.B, family string) {
	b.Helper()
	f, err := FactoryFor(family, DefaultHyper())
	if err != nil {
		b.Fatal(err)
	}
	m, err := f(10, 3)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	x, y := separableBatch(rng, 256, 10, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(x)
		if _, err := m.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamingLRStep(b *testing.B)  { benchFamily(b, "lr") }
func BenchmarkStreamingMLPStep(b *testing.B) { benchFamily(b, "mlp") }
func BenchmarkStreamingNBStep(b *testing.B)  { benchFamily(b, "nb") }
func BenchmarkStreamingHTStep(b *testing.B)  { benchFamily(b, "ht") }
func BenchmarkStreamingARFStep(b *testing.B) { benchFamily(b, "arf") }

func BenchmarkSnapshotMLP(b *testing.B) {
	f, _ := FactoryFor("mlp", DefaultHyper())
	m, err := f(10, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Snapshot(); err != nil {
			b.Fatal(err)
		}
	}
}
