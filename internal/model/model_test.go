package model

import (
	"math/rand"
	"testing"
)

func separableBatch(rng *rand.Rand, n, d, classes int) ([][]float64, []int) {
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		c := rng.Intn(classes)
		x[i] = make([]float64, d)
		for j := range x[i] {
			x[i][j] = rng.NormFloat64() * 0.3
		}
		// Shift dimension c strongly so classes are separable.
		x[i][c%d] += 3
		y[i] = c
	}
	return x, y
}

func accuracy(pred, y []int) float64 {
	correct := 0
	for i := range y {
		if pred[i] == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(y))
}

func TestHyperValidate(t *testing.T) {
	bad := []Hyper{
		{LR: 0, Momentum: 0, Hidden: 1},
		{LR: 0.1, Momentum: -1, Hidden: 1},
		{LR: 0.1, Momentum: 1, Hidden: 1},
		{LR: 0.1, WeightDecay: -1, Hidden: 1},
		{LR: 0.1, Hidden: 0},
	}
	for i, h := range bad {
		if err := h.Validate(); err == nil {
			t.Errorf("case %d: invalid Hyper passed", i)
		}
	}
	if err := DefaultHyper().Validate(); err != nil {
		t.Errorf("default Hyper invalid: %v", err)
	}
}

func testFamilyLearns(t *testing.T, name string, build func() (Model, error), d, classes int) {
	t.Helper()
	m, err := build()
	if err != nil {
		t.Fatal(err)
	}
	if m.InDim() != d || m.NumClasses() != classes {
		t.Fatalf("%s dims = %d/%d", name, m.InDim(), m.NumClasses())
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 80; i++ {
		x, y := separableBatch(rng, 64, d, classes)
		if _, err := m.Fit(x, y); err != nil {
			t.Fatal(err)
		}
	}
	x, y := separableBatch(rng, 400, d, classes)
	if acc := accuracy(m.Predict(x), y); acc < 0.9 {
		t.Errorf("%s accuracy = %v, want >= 0.9", name, acc)
	}
	proba := m.PredictProba(x[:3])
	for _, p := range proba {
		var sum float64
		for _, v := range p {
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s proba does not sum to 1: %v", name, p)
		}
	}
}

func TestStreamingLRLearns(t *testing.T) {
	h := DefaultHyper()
	testFamilyLearns(t, "LR", func() (Model, error) { return NewStreamingLR(8, 3, h) }, 8, 3)
}

func TestStreamingMLPLearns(t *testing.T) {
	h := DefaultHyper()
	testFamilyLearns(t, "MLP", func() (Model, error) { return NewStreamingMLP(8, 3, h) }, 8, 3)
}

func TestStreamingCNN3Learns(t *testing.T) {
	h := DefaultHyper()
	h.LR = 0.02
	testFamilyLearns(t, "CNN3", func() (Model, error) { return NewStreamingCNN3(8, 3, h) }, 8, 3)
}

func TestStreamingCNN5Learns(t *testing.T) {
	h := DefaultHyper()
	h.LR = 0.02
	testFamilyLearns(t, "CNN5", func() (Model, error) { return NewStreamingCNN5(16, 3, h) }, 16, 3)
}

func TestCNNMinimumDims(t *testing.T) {
	h := DefaultHyper()
	if _, err := NewStreamingCNN3(2, 2, h); err == nil {
		t.Error("CNN3 with inDim 2 should error")
	}
	if _, err := NewStreamingCNN5(5, 2, h); err == nil {
		t.Error("CNN5 with inDim 5 should error")
	}
}

func TestInvalidHyperRejectedByConstructors(t *testing.T) {
	bad := Hyper{LR: 0, Hidden: 4}
	if _, err := NewStreamingLR(4, 2, bad); err == nil {
		t.Error("LR should reject bad hyper")
	}
	if _, err := NewStreamingMLP(4, 2, bad); err == nil {
		t.Error("MLP should reject bad hyper")
	}
	if _, err := NewStreamingCNN3(8, 2, bad); err == nil {
		t.Error("CNN3 should reject bad hyper")
	}
	if _, err := NewStreamingCNN5(16, 2, bad); err == nil {
		t.Error("CNN5 should reject bad hyper")
	}
}

func TestSnapshotRestoreAcrossClones(t *testing.T) {
	h := DefaultHyper()
	m, err := NewStreamingMLP(4, 2, h)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	x, y := separableBatch(rng, 64, 4, 2)
	for i := 0; i < 20; i++ {
		if _, err := m.Fit(x, y); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewStreamingMLP(4, 2, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	p1 := m.Predict(x)
	p2 := fresh.Predict(x)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("restored model predicts differently")
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	h := DefaultHyper()
	m, _ := NewStreamingLR(4, 2, h)
	rng := rand.New(rand.NewSource(3))
	x, y := separableBatch(rng, 64, 4, 2)
	c := m.Clone()
	if c.Name() != m.Name() {
		t.Errorf("clone name %q != %q", c.Name(), m.Name())
	}
	before := c.Predict(x)
	for i := 0; i < 30; i++ {
		if _, err := m.Fit(x, y); err != nil {
			t.Fatal(err)
		}
	}
	after := c.Predict(x)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("training original mutated clone")
		}
	}
}

func TestFactoryFor(t *testing.T) {
	h := DefaultHyper()
	for _, family := range []string{"lr", "mlp", "cnn3", "cnn5"} {
		f, err := FactoryFor(family, h)
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		m, err := f(16, 3)
		if err != nil {
			t.Fatalf("%s build: %v", family, err)
		}
		if m.InDim() != 16 || m.NumClasses() != 3 {
			t.Errorf("%s dims wrong", family)
		}
	}
	if _, err := FactoryFor("nope", h); err == nil {
		t.Error("unknown family should error")
	}
}

func TestNetAccessor(t *testing.T) {
	m, _ := NewStreamingLR(4, 2, DefaultHyper())
	if m.Net() == nil || m.Net().NumParams() != 4*2+2 {
		t.Error("Net() accessor broken")
	}
}
