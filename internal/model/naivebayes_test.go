package model

import (
	"math"
	"math/rand"
	"testing"
)

func TestStreamingNBValidation(t *testing.T) {
	if _, err := NewStreamingNB(0, 2); err == nil {
		t.Error("dim 0 should error")
	}
	if _, err := NewStreamingNB(3, 1); err == nil {
		t.Error("single class should error")
	}
	nb, _ := NewStreamingNB(3, 2)
	if _, err := nb.Fit(nil, nil); err == nil {
		t.Error("empty Fit should error")
	}
	if _, err := nb.Fit([][]float64{{1, 2}}, []int{0}); err == nil {
		t.Error("wrong width should error")
	}
	if _, err := nb.Fit([][]float64{{1, 2, 3}}, []int{5}); err == nil {
		t.Error("label out of range should error")
	}
}

func TestStreamingNBLearns(t *testing.T) {
	testFamilyLearns(t, "NB", func() (Model, error) { return NewStreamingNB(8, 3) }, 8, 3)
}

func TestStreamingNBUninformedPrior(t *testing.T) {
	nb, _ := NewStreamingNB(2, 3)
	proba := nb.PredictProba([][]float64{{1, 1}})
	for _, p := range proba[0] {
		if math.Abs(p-1.0/3) > 1e-9 {
			t.Errorf("untrained posterior = %v, want uniform", proba[0])
		}
	}
}

func TestStreamingNBPriorRespectsImbalance(t *testing.T) {
	nb, _ := NewStreamingNB(1, 2)
	// 90 samples of class 0 vs 10 of class 1, identical features: the prior
	// must dominate.
	x := make([][]float64, 100)
	y := make([]int, 100)
	for i := range x {
		x[i] = []float64{0}
		if i >= 90 {
			y[i] = 1
		}
	}
	if _, err := nb.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred := nb.Predict([][]float64{{0}})
	if pred[0] != 0 {
		t.Errorf("majority prior ignored: pred = %v", pred)
	}
}

func TestStreamingNBSnapshotRestoreClone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	nb, _ := NewStreamingNB(4, 2)
	x, y := separableBatch(rng, 128, 4, 2)
	if _, err := nb.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	snap, err := nb.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fresh, _ := NewStreamingNB(4, 2)
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	p1 := nb.Predict(x)
	p2 := fresh.Predict(x)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("restored NB predicts differently")
		}
	}
	wrong, _ := NewStreamingNB(5, 2)
	if err := wrong.Restore(snap); err == nil {
		t.Error("shape mismatch restore should error")
	}
	if err := fresh.Restore([]byte("junk")); err == nil {
		t.Error("garbage restore should error")
	}
	clone := nb.Clone()
	if clone.Name() != "StreamingNB" || clone.InDim() != 4 || clone.NumClasses() != 2 {
		t.Error("clone metadata wrong")
	}
	// Mutating the original must not affect the clone.
	if _, err := nb.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	p3 := clone.Predict(x)
	for i := range p2 {
		if p2[i] != p3[i] {
			t.Fatal("clone aliases original state")
		}
	}
}

func TestStreamingNBNetIsNil(t *testing.T) {
	nb, _ := NewStreamingNB(2, 2)
	if nb.Net() != nil {
		t.Error("NB must report a nil network")
	}
}

func TestFactoryForNB(t *testing.T) {
	f, err := FactoryFor("nb", DefaultHyper())
	if err != nil {
		t.Fatal(err)
	}
	m, err := f(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "StreamingNB" {
		t.Errorf("name = %q", m.Name())
	}
}
