// Package model provides the streaming model zoo of the paper: Streaming
// Logistic Regression, Streaming MLP, and the appendix's Streaming CNNs —
// all thin wrappers over internal/nn that share one Model interface so the
// FreewayML core, the baselines, and the experiment harness can treat them
// interchangeably.
package model

import (
	"errors"
	"math/rand"

	"freewayml/internal/linalg"
	"freewayml/internal/nn"
)

// Model is a streaming classifier: it predicts a batch, then (when labels
// arrive) incrementally updates itself with mini-batch SGD. Snapshots make
// a model storable in the historical-knowledge store.
type Model interface {
	// Name identifies the model family ("StreamingLR", "StreamingMLP", …).
	Name() string
	// Predict returns the argmax class per sample.
	Predict(x [][]float64) []int
	// PredictProba returns the class distribution per sample.
	PredictProba(x [][]float64) [][]float64
	// Fit performs one incremental mini-batch SGD update and returns the
	// pre-update loss.
	Fit(x [][]float64, y []int) (float64, error)
	// Snapshot serializes the parameters; Restore loads them back.
	Snapshot() ([]byte, error)
	Restore(snapshot []byte) error
	// Clone returns an independent deep copy (same weights, fresh optimizer
	// state).
	Clone() Model
	// InDim and NumClasses describe the model's shape.
	InDim() int
	NumClasses() int
	// Net exposes the underlying network for mechanisms that need direct
	// gradient access (A-GEM, the pre-computing window). Gradient-free
	// models (StreamingNB) return nil; callers needing gradients must
	// check.
	Net() *nn.Network
}

// TensorPredictor is the optional fused-batch fast path: models backed by a
// network can consume a pre-packed row-major tensor (the batch coalescer's
// fused slab, or a binary frame's slab) directly, skipping per-row staging.
// Callers type-assert and fall back to Predict when the model (e.g. the
// gradient-free baselines) does not implement it.
type TensorPredictor interface {
	// PredictTensorInto writes the argmax class of each row of x into dst,
	// which must have exactly x.Rows elements.
	PredictTensorInto(x *linalg.Tensor, dst []int) error
}

// Hyper collects the SGD hyperparameters shared by all model families.
type Hyper struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	Hidden      int   // hidden width for MLP (ignored by LR)
	Seed        int64 // weight init seed, for reproducibility
}

// DefaultHyper mirrors the lightweight models of the paper's evaluation.
func DefaultHyper() Hyper {
	return Hyper{LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4, Hidden: 64, Seed: 1}
}

// Validate reports the first invalid hyperparameter.
func (h Hyper) Validate() error {
	switch {
	case h.LR <= 0:
		return errors.New("model: LR must be > 0")
	case h.Momentum < 0 || h.Momentum >= 1:
		return errors.New("model: Momentum must be in [0, 1)")
	case h.WeightDecay < 0:
		return errors.New("model: WeightDecay must be >= 0")
	case h.Hidden < 1:
		return errors.New("model: Hidden must be >= 1")
	}
	return nil
}

// netModel is the shared implementation backing every model family.
type netModel struct {
	name string
	net  *nn.Network
	opt  *nn.SGD
	h    Hyper
}

func (m *netModel) Name() string                           { return m.name }
func (m *netModel) Predict(x [][]float64) []int            { return m.net.Predict(x) }
func (m *netModel) PredictProba(x [][]float64) [][]float64 { return m.net.PredictProba(x) }
func (m *netModel) InDim() int                             { return m.net.InDim() }
func (m *netModel) NumClasses() int                        { return m.net.NumClasses() }
func (m *netModel) Net() *nn.Network                       { return m.net }

func (m *netModel) PredictTensorInto(x *linalg.Tensor, dst []int) error {
	return m.net.PredictTensorInto(x, dst)
}

func (m *netModel) Fit(x [][]float64, y []int) (float64, error) {
	return m.net.TrainBatch(x, y, m.opt)
}

func (m *netModel) Snapshot() ([]byte, error) { return m.net.Snapshot() }

func (m *netModel) Restore(snapshot []byte) error {
	if err := m.net.Restore(snapshot); err != nil {
		return err
	}
	// Stale momentum from the previous regime must not contaminate the
	// restored model.
	m.opt.Reset()
	return nil
}

func (m *netModel) Clone() Model {
	return &netModel{
		name: m.name,
		net:  m.net.Clone(),
		opt:  nn.NewSGD(m.h.LR, m.h.Momentum, m.h.WeightDecay),
		h:    m.h,
	}
}

// NewStreamingLR builds a streaming softmax (multinomial logistic)
// regression: a single dense layer trained with mini-batch SGD.
func NewStreamingLR(inDim, numClasses int, h Hyper) (Model, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(h.Seed))
	net, err := nn.NewNetwork(inDim, numClasses, nn.NewDense(inDim, numClasses, rng))
	if err != nil {
		return nil, err
	}
	return &netModel{name: "StreamingLR", net: net, opt: nn.NewSGD(h.LR, h.Momentum, h.WeightDecay), h: h}, nil
}

// NewStreamingMLP builds the paper's streaming multi-layer perceptron: one
// hidden ReLU layer of h.Hidden units.
func NewStreamingMLP(inDim, numClasses int, h Hyper) (Model, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(h.Seed))
	net, err := nn.NewNetwork(inDim, numClasses,
		nn.NewDense(inDim, h.Hidden, rng),
		nn.NewReLU(),
		nn.NewDense(h.Hidden, numClasses, rng),
	)
	if err != nil {
		return nil, err
	}
	return &netModel{name: "StreamingMLP", net: net, opt: nn.NewSGD(h.LR, h.Momentum, h.WeightDecay), h: h}, nil
}

// NewStreamingCNN3 builds the appendix's three-layer CNN for tabular
// streams: Conv1D with 32 kernels of size 3 over the feature axis, max
// pooling with window 2, and a fully connected classification layer.
// inDim must be at least 3.
func NewStreamingCNN3(inDim, numClasses int, h Hyper) (Model, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	if inDim < 3 {
		return nil, errors.New("model: StreamingCNN3 requires inDim >= 3")
	}
	rng := rand.New(rand.NewSource(h.Seed))
	const kernels = 32
	convOut := inDim - 3 + 1
	pooled := (convOut + 1) / 2
	net, err := nn.NewNetwork(inDim, numClasses,
		nn.NewConv1D(1, kernels, 3, inDim, rng),
		nn.NewReLU(),
		nn.NewMaxPool1D(kernels, convOut, 2),
		nn.NewDense(kernels*pooled, numClasses, rng),
	)
	if err != nil {
		return nil, err
	}
	return &netModel{name: "StreamingCNN3", net: net, opt: nn.NewSGD(h.LR, h.Momentum, h.WeightDecay), h: h}, nil
}

// NewStreamingCNN5 builds the appendix's five-layer CNN for image-feature
// streams: two Conv1D layers with 64 kernels of size 3, two max-pooling
// layers with window 2, and a fully connected classification layer.
// inDim must be large enough for both convolutions (>= 9).
func NewStreamingCNN5(inDim, numClasses int, h Hyper) (Model, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	if inDim < 9 {
		return nil, errors.New("model: StreamingCNN5 requires inDim >= 9")
	}
	rng := rand.New(rand.NewSource(h.Seed))
	const kernels = 64
	c1Out := inDim - 3 + 1
	p1Out := (c1Out + 1) / 2
	c2Out := p1Out - 3 + 1
	p2Out := (c2Out + 1) / 2
	net, err := nn.NewNetwork(inDim, numClasses,
		nn.NewConv1D(1, kernels, 3, inDim, rng),
		nn.NewReLU(),
		nn.NewMaxPool1D(kernels, c1Out, 2),
		nn.NewConv1D(kernels, kernels, 3, p1Out, rng),
		nn.NewReLU(),
		nn.NewMaxPool1D(kernels, c2Out, 2),
		nn.NewDense(kernels*p2Out, numClasses, rng),
	)
	if err != nil {
		return nil, err
	}
	return &netModel{name: "StreamingCNN5", net: net, opt: nn.NewSGD(h.LR, h.Momentum, h.WeightDecay), h: h}, nil
}

// Factory builds a fresh model of a given family; the baselines and the
// experiment harness use it to construct identical models for every
// framework under comparison.
type Factory func(inDim, numClasses int) (Model, error)

// FactoryFor returns a Factory for the named family ("lr", "mlp", "cnn3",
// "cnn5", "nb") with the given hyperparameters ("nb" is gradient-free and
// ignores them).
func FactoryFor(family string, h Hyper) (Factory, error) {
	switch family {
	case "nb":
		return func(in, classes int) (Model, error) { return NewStreamingNB(in, classes) }, nil
	case "ht":
		return func(in, classes int) (Model, error) { return NewStreamingHT(in, classes, DefaultHTConfig()) }, nil
	case "arf":
		return func(in, classes int) (Model, error) {
			return NewStreamingARF(in, classes, 5, DefaultHTConfig(), h.Seed)
		}, nil
	case "lr":
		return func(in, classes int) (Model, error) { return NewStreamingLR(in, classes, h) }, nil
	case "mlp":
		return func(in, classes int) (Model, error) { return NewStreamingMLP(in, classes, h) }, nil
	case "cnn3":
		return func(in, classes int) (Model, error) { return NewStreamingCNN3(in, classes, h) }, nil
	case "cnn5":
		return func(in, classes int) (Model, error) { return NewStreamingCNN5(in, classes, h) }, nil
	default:
		return nil, errors.New("model: unknown family " + family)
	}
}
