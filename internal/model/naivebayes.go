package model

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math"

	"freewayml/internal/nn"
)

// StreamingNB is an incremental Gaussian naive Bayes classifier: per-class,
// per-feature running means and variances updated in closed form — no
// gradients, no learning rate. It is the cheapest member of the model zoo
// and a natural fit for very high-rate streams where even one SGD pass per
// batch is too expensive.
type StreamingNB struct {
	dim     int
	classes int

	count []float64   // per-class sample counts
	mean  [][]float64 // [class][feature]
	m2    [][]float64 // [class][feature] sum of squared deviations
	total float64
}

// nbState is the gob-serialized form of a StreamingNB.
type nbState struct {
	Dim, Classes int
	Count        []float64
	Mean, M2     [][]float64
	Total        float64
}

// NewStreamingNB builds an incremental Gaussian naive Bayes model.
func NewStreamingNB(dim, classes int) (*StreamingNB, error) {
	if dim < 1 || classes < 2 {
		return nil, errors.New("model: StreamingNB needs dim >= 1 and classes >= 2")
	}
	nb := &StreamingNB{dim: dim, classes: classes}
	nb.alloc()
	return nb, nil
}

func (nb *StreamingNB) alloc() {
	nb.count = make([]float64, nb.classes)
	nb.mean = make([][]float64, nb.classes)
	nb.m2 = make([][]float64, nb.classes)
	for c := range nb.mean {
		nb.mean[c] = make([]float64, nb.dim)
		nb.m2[c] = make([]float64, nb.dim)
	}
	nb.total = 0
}

// Name returns "StreamingNB".
func (nb *StreamingNB) Name() string { return "StreamingNB" }

// InDim returns the feature dimensionality.
func (nb *StreamingNB) InDim() int { return nb.dim }

// NumClasses returns the label count.
func (nb *StreamingNB) NumClasses() int { return nb.classes }

// Net returns nil: naive Bayes has no gradient substrate; mechanisms that
// need direct gradient access (A-GEM, pre-compute) do not apply to it.
func (nb *StreamingNB) Net() *nn.Network { return nil }

// nbVarianceFloor keeps the per-feature variance away from zero so a
// constant feature cannot produce infinite likelihoods.
const nbVarianceFloor = 1e-6

// Fit folds the batch into the running class statistics. The returned
// "loss" is the mean negative log-likelihood of the batch before the
// update, for parity with the gradient models.
func (nb *StreamingNB) Fit(x [][]float64, y []int) (float64, error) {
	if len(x) == 0 || len(x) != len(y) {
		return 0, errors.New("model: StreamingNB Fit needs matching x/y")
	}
	var nll float64
	for i, row := range x {
		if len(row) != nb.dim {
			return 0, fmt.Errorf("model: StreamingNB row width %d, want %d", len(row), nb.dim)
		}
		c := y[i]
		if c < 0 || c >= nb.classes {
			return 0, fmt.Errorf("model: StreamingNB label %d outside [0,%d)", c, nb.classes)
		}
		nll += -nb.logJoint(row, c)
		// Welford update of the class statistics.
		nb.count[c]++
		nb.total++
		for j, v := range row {
			delta := v - nb.mean[c][j]
			nb.mean[c][j] += delta / nb.count[c]
			nb.m2[c][j] += delta * (v - nb.mean[c][j])
		}
	}
	return nll / float64(len(x)), nil
}

// logJoint returns log p(x, c) up to an additive constant.
func (nb *StreamingNB) logJoint(x []float64, c int) float64 {
	if nb.total == 0 || nb.count[c] == 0 {
		return -math.Log(float64(nb.classes)) // uninformed prior
	}
	logp := math.Log(nb.count[c] / nb.total)
	for j, v := range x {
		variance := nbVarianceFloor
		if nb.count[c] > 1 {
			variance = nb.m2[c][j]/nb.count[c] + nbVarianceFloor
		}
		d := v - nb.mean[c][j]
		logp += -0.5*math.Log(2*math.Pi*variance) - d*d/(2*variance)
	}
	return logp
}

// Predict returns the maximum a-posteriori class per sample.
func (nb *StreamingNB) Predict(x [][]float64) []int {
	out := make([]int, len(x))
	for i, row := range x {
		best, bestLL := 0, math.Inf(-1)
		for c := 0; c < nb.classes; c++ {
			if ll := nb.logJoint(row, c); ll > bestLL {
				best, bestLL = c, ll
			}
		}
		out[i] = best
	}
	return out
}

// PredictProba returns the normalized class posteriors per sample.
func (nb *StreamingNB) PredictProba(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		lls := make([]float64, nb.classes)
		for c := range lls {
			lls[c] = nb.logJoint(row, c)
		}
		out[i] = nn.Softmax(lls)
	}
	return out
}

// Snapshot serializes the class statistics.
func (nb *StreamingNB) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	state := nbState{Dim: nb.dim, Classes: nb.classes, Count: nb.count, Mean: nb.mean, M2: nb.m2, Total: nb.total}
	if err := gob.NewEncoder(&buf).Encode(state); err != nil {
		return nil, fmt.Errorf("model: StreamingNB snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore loads class statistics from a Snapshot with the same shape.
func (nb *StreamingNB) Restore(snapshot []byte) error {
	var state nbState
	if err := gob.NewDecoder(bytes.NewReader(snapshot)).Decode(&state); err != nil {
		return fmt.Errorf("model: StreamingNB restore: %w", err)
	}
	if state.Dim != nb.dim || state.Classes != nb.classes {
		return fmt.Errorf("model: StreamingNB restore shape %dx%d, want %dx%d",
			state.Dim, state.Classes, nb.dim, nb.classes)
	}
	nb.count = state.Count
	nb.mean = state.Mean
	nb.m2 = state.M2
	nb.total = state.Total
	return nil
}

// Clone returns an independent deep copy.
func (nb *StreamingNB) Clone() Model {
	c := &StreamingNB{dim: nb.dim, classes: nb.classes, total: nb.total}
	c.count = append([]float64(nil), nb.count...)
	c.mean = make([][]float64, nb.classes)
	c.m2 = make([][]float64, nb.classes)
	for i := range nb.mean {
		c.mean[i] = append([]float64(nil), nb.mean[i]...)
		c.m2[i] = append([]float64(nil), nb.m2[i]...)
	}
	return c
}
