package model

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math"

	"freewayml/internal/nn"
)

// StreamingHT is a Hoeffding tree (VFDT, Domingos & Hulten 2000) for
// numeric features: an incremental decision tree that grows a split only
// when the Hoeffding bound guarantees the observed best split would, with
// high probability, remain best given infinite data. Leaves keep per-class
// Gaussian estimators per feature (River's Gaussian splitter) both to score
// candidate thresholds and to refine leaf predictions with naive Bayes.
type StreamingHT struct {
	dim     int
	classes int
	cfg     HTConfig
	root    *htNode
	leaves  int
}

// HTConfig tunes tree growth.
type HTConfig struct {
	// GracePeriod is how many samples a leaf accumulates between split
	// attempts.
	GracePeriod int
	// Delta is the Hoeffding bound confidence (1e-7 in the original paper).
	Delta float64
	// TieThreshold forces a split when the top candidates are this close.
	TieThreshold float64
	// MaxLeaves bounds tree size; at the bound, leaves keep learning their
	// class statistics but stop splitting.
	MaxLeaves int
	// Candidates is how many thresholds per feature are evaluated.
	Candidates int
}

// DefaultHTConfig returns the customary VFDT parameters.
func DefaultHTConfig() HTConfig {
	return HTConfig{GracePeriod: 200, Delta: 1e-7, TieThreshold: 0.05, MaxLeaves: 64, Candidates: 8}
}

// Validate reports the first invalid field.
func (c HTConfig) Validate() error {
	switch {
	case c.GracePeriod < 1:
		return errors.New("model: HT GracePeriod must be >= 1")
	case c.Delta <= 0 || c.Delta >= 1:
		return errors.New("model: HT Delta must be in (0, 1)")
	case c.TieThreshold < 0:
		return errors.New("model: HT TieThreshold must be >= 0")
	case c.MaxLeaves < 1:
		return errors.New("model: HT MaxLeaves must be >= 1")
	case c.Candidates < 1:
		return errors.New("model: HT Candidates must be >= 1")
	}
	return nil
}

// htNode is one tree node; exported fields make the whole tree gob-able.
type htNode struct {
	// Internal node fields.
	Feature   int
	Threshold float64
	Left      *htNode
	Right     *htNode

	// Leaf fields: per-class counts and per-class per-feature Gaussians.
	Counts    []float64
	Mean      [][]float64 // [class][feature]
	M2        [][]float64
	SinceEval int
}

// isLeaf reports whether the node is a leaf.
func (n *htNode) isLeaf() bool { return n.Left == nil }

// NewStreamingHT builds an empty Hoeffding tree.
func NewStreamingHT(dim, classes int, cfg HTConfig) (*StreamingHT, error) {
	if dim < 1 || classes < 2 {
		return nil, errors.New("model: StreamingHT needs dim >= 1 and classes >= 2")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &StreamingHT{dim: dim, classes: classes, cfg: cfg}
	t.root = t.newLeaf()
	t.leaves = 1
	return t, nil
}

func (t *StreamingHT) newLeaf() *htNode {
	n := &htNode{Counts: make([]float64, t.classes)}
	n.Mean = make([][]float64, t.classes)
	n.M2 = make([][]float64, t.classes)
	for c := range n.Mean {
		n.Mean[c] = make([]float64, t.dim)
		n.M2[c] = make([]float64, t.dim)
	}
	return n
}

// Name returns "StreamingHT".
func (t *StreamingHT) Name() string { return "StreamingHT" }

// InDim returns the feature dimensionality.
func (t *StreamingHT) InDim() int { return t.dim }

// NumClasses returns the label count.
func (t *StreamingHT) NumClasses() int { return t.classes }

// Net returns nil: trees have no gradient substrate.
func (t *StreamingHT) Net() *nn.Network { return nil }

// Leaves reports the current leaf count (tree size).
func (t *StreamingHT) Leaves() int { return t.leaves }

// sortDown routes a sample to its leaf.
func (t *StreamingHT) sortDown(x []float64) *htNode {
	n := t.root
	for !n.isLeaf() {
		if x[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n
}

// Fit observes each sample at its leaf and attempts splits every
// GracePeriod observations. The returned loss is the mean negative
// log-probability of the true class before the update.
func (t *StreamingHT) Fit(x [][]float64, y []int) (float64, error) {
	if len(x) == 0 || len(x) != len(y) {
		return 0, errors.New("model: StreamingHT Fit needs matching x/y")
	}
	var nll float64
	for i, row := range x {
		if len(row) != t.dim {
			return 0, fmt.Errorf("model: StreamingHT row width %d, want %d", len(row), t.dim)
		}
		c := y[i]
		if c < 0 || c >= t.classes {
			return 0, fmt.Errorf("model: StreamingHT label %d outside [0,%d)", c, t.classes)
		}
		p := t.probaOne(row)
		nll += -math.Log(math.Max(p[c], 1e-12))

		leaf := t.sortDown(row)
		leaf.Counts[c]++
		for j, v := range row {
			delta := v - leaf.Mean[c][j]
			leaf.Mean[c][j] += delta / leaf.Counts[c]
			leaf.M2[c][j] += delta * (v - leaf.Mean[c][j])
		}
		leaf.SinceEval++
		if leaf.SinceEval >= t.cfg.GracePeriod && t.leaves < t.cfg.MaxLeaves {
			leaf.SinceEval = 0
			t.trySplit(leaf)
		}
	}
	return nll / float64(len(x)), nil
}

// trySplit evaluates candidate splits at the leaf and splits when the
// Hoeffding bound is satisfied.
func (t *StreamingHT) trySplit(leaf *htNode) {
	total := 0.0
	for _, n := range leaf.Counts {
		total += n
	}
	if total < 2 {
		return
	}
	// A pure leaf has nothing to gain.
	nonzero := 0
	for _, n := range leaf.Counts {
		if n > 0 {
			nonzero++
		}
	}
	if nonzero < 2 {
		return
	}

	baseEntropy := entropy(leaf.Counts, total)
	// The Hoeffding comparison is between attributes: per feature, take its
	// best threshold's gain, then compare the two best features (adjacent
	// thresholds on one feature have near-identical gains and would defeat
	// the bound forever).
	best, second := 0.0, 0.0
	bestFeature, bestThreshold := -1, 0.0
	for j := 0; j < t.dim; j++ {
		featBest, featThr := 0.0, 0.0
		for _, thr := range t.candidates(leaf, j) {
			if gain := t.splitGain(leaf, j, thr, baseEntropy, total); gain > featBest {
				featBest, featThr = gain, thr
			}
		}
		if featBest > best {
			second = best
			best = featBest
			bestFeature, bestThreshold = j, featThr
		} else if featBest > second {
			second = featBest
		}
	}
	if bestFeature < 0 || best <= 0 {
		return
	}
	// Hoeffding bound over the info-gain range R = log2(classes).
	r := math.Log2(float64(t.classes))
	eps := math.Sqrt(r * r * math.Log(1/t.cfg.Delta) / (2 * total))
	if best-second <= eps && eps > t.cfg.TieThreshold {
		return
	}

	leaf.Feature = bestFeature
	leaf.Threshold = bestThreshold
	leaf.Left = t.newLeaf()
	leaf.Right = t.newLeaf()
	// Seed the children's class priors from the parent's Gaussian mass so
	// predictions do not collapse to uniform right after the split.
	for c := range leaf.Counts {
		if leaf.Counts[c] == 0 {
			continue
		}
		pLeft := gaussianCDF(bestThreshold, leaf.Mean[c][bestFeature], t.classVar(leaf, c, bestFeature))
		leaf.Left.Counts[c] = leaf.Counts[c] * pLeft
		leaf.Right.Counts[c] = leaf.Counts[c] * (1 - pLeft)
	}
	leaf.Counts = nil
	leaf.Mean = nil
	leaf.M2 = nil
	t.leaves++
}

// candidates proposes thresholds for feature j from the class Gaussians'
// span.
func (t *StreamingHT) candidates(leaf *htNode, j int) []float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for c := range leaf.Counts {
		if leaf.Counts[c] == 0 {
			continue
		}
		std := math.Sqrt(t.classVar(leaf, c, j))
		if v := leaf.Mean[c][j] - 2*std; v < lo {
			lo = v
		}
		if v := leaf.Mean[c][j] + 2*std; v > hi {
			hi = v
		}
	}
	if !(hi > lo) {
		return nil
	}
	out := make([]float64, t.cfg.Candidates)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i+1)/float64(t.cfg.Candidates+1)
	}
	return out
}

// classVar returns the class-conditional feature variance with a floor.
func (t *StreamingHT) classVar(leaf *htNode, c, j int) float64 {
	if leaf.Counts[c] < 2 {
		return nbVarianceFloor
	}
	return leaf.M2[c][j]/leaf.Counts[c] + nbVarianceFloor
}

// splitGain returns the information gain of splitting at (j, thr), with the
// per-class mass on each side estimated from the Gaussian CDF.
func (t *StreamingHT) splitGain(leaf *htNode, j int, thr, baseEntropy, total float64) float64 {
	left := make([]float64, t.classes)
	right := make([]float64, t.classes)
	var nl, nr float64
	for c := range leaf.Counts {
		if leaf.Counts[c] == 0 {
			continue
		}
		pLeft := gaussianCDF(thr, leaf.Mean[c][j], t.classVar(leaf, c, j))
		left[c] = leaf.Counts[c] * pLeft
		right[c] = leaf.Counts[c] * (1 - pLeft)
		nl += left[c]
		nr += right[c]
	}
	if nl == 0 || nr == 0 {
		return 0
	}
	return baseEntropy - (nl/total)*entropy(left, nl) - (nr/total)*entropy(right, nr)
}

// entropy returns the Shannon entropy (bits) of the counts.
func entropy(counts []float64, total float64) float64 {
	var h float64
	for _, n := range counts {
		if n <= 0 {
			continue
		}
		p := n / total
		h -= p * math.Log2(p)
	}
	return h
}

// gaussianCDF evaluates the normal CDF at x.
func gaussianCDF(x, mean, variance float64) float64 {
	return 0.5 * math.Erfc(-(x-mean)/(math.Sqrt(variance)*math.Sqrt2))
}

// probaOne returns the leaf's naive Bayes posterior for one sample.
func (t *StreamingHT) probaOne(x []float64) []float64 {
	leaf := t.sortDown(x)
	total := 0.0
	for _, n := range leaf.Counts {
		total += n
	}
	if total == 0 {
		out := make([]float64, t.classes)
		u := 1 / float64(t.classes)
		for i := range out {
			out[i] = u
		}
		return out
	}
	lls := make([]float64, t.classes)
	for c := range lls {
		if leaf.Counts[c] == 0 {
			lls[c] = math.Inf(-1)
			continue
		}
		ll := math.Log(leaf.Counts[c] / total)
		// Leaf Gaussians may have been dropped when the node split and
		// reseeded children; fall back to pure priors then.
		if leaf.Mean != nil && leaf.Counts[c] >= 2 {
			for j, v := range x {
				variance := t.classVar(leaf, c, j)
				d := v - leaf.Mean[c][j]
				ll += -0.5*math.Log(2*math.Pi*variance) - d*d/(2*variance)
			}
		}
		lls[c] = ll
	}
	return nn.Softmax(lls)
}

// Predict returns the leaf naive Bayes argmax per sample.
func (t *StreamingHT) Predict(x [][]float64) []int {
	out := make([]int, len(x))
	for i, row := range x {
		out[i] = nn.Argmax(t.probaOne(row))
	}
	return out
}

// PredictProba returns the leaf posteriors per sample.
func (t *StreamingHT) PredictProba(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		out[i] = t.probaOne(row)
	}
	return out
}

// htState is the gob-serialized form of the tree.
type htState struct {
	Dim, Classes int
	Cfg          HTConfig
	Root         *htNode
	Leaves       int
}

// Snapshot serializes the whole tree.
func (t *StreamingHT) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	state := htState{Dim: t.dim, Classes: t.classes, Cfg: t.cfg, Root: t.root, Leaves: t.leaves}
	if err := gob.NewEncoder(&buf).Encode(state); err != nil {
		return nil, fmt.Errorf("model: StreamingHT snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore loads a tree with the same shape.
func (t *StreamingHT) Restore(snapshot []byte) error {
	var state htState
	if err := gob.NewDecoder(bytes.NewReader(snapshot)).Decode(&state); err != nil {
		return fmt.Errorf("model: StreamingHT restore: %w", err)
	}
	if state.Dim != t.dim || state.Classes != t.classes {
		return fmt.Errorf("model: StreamingHT restore shape %dx%d, want %dx%d",
			state.Dim, state.Classes, t.dim, t.classes)
	}
	if state.Root == nil {
		return errors.New("model: StreamingHT restore missing root")
	}
	t.cfg = state.Cfg
	t.root = state.Root
	t.leaves = state.Leaves
	return nil
}

// Clone deep-copies the tree via its snapshot.
func (t *StreamingHT) Clone() Model {
	snap, err := t.Snapshot()
	if err != nil {
		// Snapshot of an in-memory tree cannot fail; keep the interface
		// non-erroring by returning a fresh tree in the impossible case.
		fresh, _ := NewStreamingHT(t.dim, t.classes, t.cfg)
		return fresh
	}
	fresh, _ := NewStreamingHT(t.dim, t.classes, t.cfg)
	_ = fresh.Restore(snap)
	return fresh
}
