package model

import (
	"math/rand"
	"testing"
)

func TestHTConfigValidate(t *testing.T) {
	bad := []func(*HTConfig){
		func(c *HTConfig) { c.GracePeriod = 0 },
		func(c *HTConfig) { c.Delta = 0 },
		func(c *HTConfig) { c.Delta = 1 },
		func(c *HTConfig) { c.TieThreshold = -1 },
		func(c *HTConfig) { c.MaxLeaves = 0 },
		func(c *HTConfig) { c.Candidates = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultHTConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid HTConfig passed", i)
		}
	}
	if _, err := NewStreamingHT(0, 2, DefaultHTConfig()); err == nil {
		t.Error("dim 0 should error")
	}
	if _, err := NewStreamingHT(3, 1, DefaultHTConfig()); err == nil {
		t.Error("single class should error")
	}
}

func TestHTFitValidation(t *testing.T) {
	ht, _ := NewStreamingHT(3, 2, DefaultHTConfig())
	if _, err := ht.Fit(nil, nil); err == nil {
		t.Error("empty Fit should error")
	}
	if _, err := ht.Fit([][]float64{{1}}, []int{0}); err == nil {
		t.Error("wrong width should error")
	}
	if _, err := ht.Fit([][]float64{{1, 2, 3}}, []int{9}); err == nil {
		t.Error("bad label should error")
	}
}

// dominantFeatureBatch separates all classes along feature 0 only, so one
// attribute's gain clearly dominates and the Hoeffding bound resolves fast.
func dominantFeatureBatch(rng *rand.Rand, n, d, classes int) ([][]float64, []int) {
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		c := rng.Intn(classes)
		x[i] = make([]float64, d)
		for j := range x[i] {
			x[i][j] = rng.NormFloat64() * 0.4
		}
		x[i][0] += float64(c) * 4
		y[i] = c
	}
	return x, y
}

func TestHTLearnsAndSplits(t *testing.T) {
	cfg := DefaultHTConfig()
	cfg.GracePeriod = 100
	ht, err := NewStreamingHT(8, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for s := 0; s < 80; s++ {
		x, y := dominantFeatureBatch(rng, 64, 8, 3)
		if _, err := ht.Fit(x, y); err != nil {
			t.Fatal(err)
		}
	}
	x, y := dominantFeatureBatch(rng, 400, 8, 3)
	if acc := accuracy(ht.Predict(x), y); acc < 0.9 {
		t.Errorf("HT accuracy = %v", acc)
	}
	if ht.Leaves() < 2 {
		t.Errorf("tree never split: %d leaves", ht.Leaves())
	}
	proba := ht.PredictProba(x[:3])
	for _, p := range proba {
		var sum float64
		for _, v := range p {
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("proba does not sum to 1: %v", p)
		}
	}
}

func TestHTMaxLeavesBound(t *testing.T) {
	cfg := DefaultHTConfig()
	cfg.GracePeriod = 50
	cfg.MaxLeaves = 3
	ht, _ := NewStreamingHT(4, 2, cfg)
	rng := rand.New(rand.NewSource(2))
	for s := 0; s < 100; s++ {
		x, y := dominantFeatureBatch(rng, 64, 4, 2)
		if _, err := ht.Fit(x, y); err != nil {
			t.Fatal(err)
		}
	}
	if ht.Leaves() > 3 {
		t.Errorf("tree exceeded MaxLeaves: %d", ht.Leaves())
	}
}

func TestHTUntrainedPredictsUniform(t *testing.T) {
	ht, _ := NewStreamingHT(2, 4, DefaultHTConfig())
	proba := ht.PredictProba([][]float64{{0, 0}})
	for _, p := range proba[0] {
		if p < 0.24 || p > 0.26 {
			t.Errorf("untrained posterior = %v", proba[0])
		}
	}
}

func TestHTSnapshotRestoreClone(t *testing.T) {
	cfg := DefaultHTConfig()
	cfg.GracePeriod = 100
	ht, _ := NewStreamingHT(4, 2, cfg)
	rng := rand.New(rand.NewSource(3))
	x, y := separableBatch(rng, 512, 4, 2)
	if _, err := ht.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	snap, err := ht.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fresh, _ := NewStreamingHT(4, 2, cfg)
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	p1 := ht.Predict(x)
	p2 := fresh.Predict(x)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("restored tree predicts differently")
		}
	}
	if fresh.Leaves() != ht.Leaves() {
		t.Errorf("restored leaves %d != %d", fresh.Leaves(), ht.Leaves())
	}
	wrong, _ := NewStreamingHT(5, 2, cfg)
	if err := wrong.Restore(snap); err == nil {
		t.Error("shape mismatch should error")
	}
	if err := fresh.Restore([]byte("junk")); err == nil {
		t.Error("garbage should error")
	}

	clone := ht.Clone()
	p3 := clone.Predict(x)
	for i := range p1 {
		if p1[i] != p3[i] {
			t.Fatal("clone predicts differently")
		}
	}
	// Training the original must not change the clone.
	if _, err := ht.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	p4 := clone.Predict(x)
	for i := range p3 {
		if p3[i] != p4[i] {
			t.Fatal("clone aliases original")
		}
	}
}

func TestHTFamilyViaFactory(t *testing.T) {
	f, err := FactoryFor("ht", DefaultHyper())
	if err != nil {
		t.Fatal(err)
	}
	m, err := f(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "StreamingHT" || m.Net() != nil {
		t.Errorf("name=%q net=%v", m.Name(), m.Net())
	}
}

func TestHTLearnsViaCommonHarness(t *testing.T) {
	testFamilyLearns(t, "HT", func() (Model, error) {
		cfg := DefaultHTConfig()
		cfg.GracePeriod = 100
		return NewStreamingHT(8, 3, cfg)
	}, 8, 3)
}
