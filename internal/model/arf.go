package model

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"

	"freewayml/internal/drift"
	"freewayml/internal/nn"
)

// StreamingARF is an Adaptive Random Forest (Gomes et al. 2017) built from
// this package's Hoeffding trees: each member trains on a Poisson(λ)
// online-bagged view of the stream and carries its own drift detector;
// a member whose error distribution shifts is replaced by a fresh tree.
// Predictions average the members' leaf posteriors.
type StreamingARF struct {
	dim     int
	classes int
	treeCfg HTConfig
	lambda  float64
	members []arfMember
	rng     *rand.Rand
	resets  int
}

type arfMember struct {
	tree *StreamingHT
	det  *drift.ADWIN
}

// NewStreamingARF builds a forest of n trees with Poisson(λ=6) bagging, the
// customary ARF setting.
func NewStreamingARF(dim, classes, n int, cfg HTConfig, seed int64) (*StreamingARF, error) {
	if n < 1 {
		return nil, errors.New("model: ARF needs at least one tree")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f := &StreamingARF{dim: dim, classes: classes, treeCfg: cfg, lambda: 6, rng: rand.New(rand.NewSource(seed))}
	for i := 0; i < n; i++ {
		tree, err := NewStreamingHT(dim, classes, cfg)
		if err != nil {
			return nil, err
		}
		f.members = append(f.members, arfMember{tree: tree, det: drift.NewADWIN(0.002, 200)})
	}
	return f, nil
}

// Name returns "StreamingARF".
func (f *StreamingARF) Name() string { return "StreamingARF" }

// InDim returns the feature dimensionality.
func (f *StreamingARF) InDim() int { return f.dim }

// NumClasses returns the label count.
func (f *StreamingARF) NumClasses() int { return f.classes }

// Net returns nil: forests have no gradient substrate.
func (f *StreamingARF) Net() *nn.Network { return nil }

// Trees returns the member count; Resets how many drift replacements fired.
func (f *StreamingARF) Trees() int  { return len(f.members) }
func (f *StreamingARF) Resets() int { return f.resets }

// poisson draws from Poisson(λ) by inversion (λ is small and fixed).
func (f *StreamingARF) poisson() int {
	l := f.rng.ExpFloat64()
	k := 0
	sum := l
	for sum < f.lambda {
		k++
		sum += f.rng.ExpFloat64()
	}
	return k
}

// Fit online-bags the batch into every member, feeds each member's
// per-batch error rate to its detector, and replaces drifted trees.
func (f *StreamingARF) Fit(x [][]float64, y []int) (float64, error) {
	if len(x) == 0 || len(x) != len(y) {
		return 0, errors.New("model: ARF Fit needs matching x/y")
	}
	var lastLoss float64
	for m := range f.members {
		mem := &f.members[m]
		// Detector signal: the member's pre-update error on this batch.
		pred := mem.tree.Predict(x)
		errs := 0
		for i := range pred {
			if pred[i] != y[i] {
				errs++
			}
		}
		if mem.det.Add(float64(errs) / float64(len(pred))) {
			fresh, err := NewStreamingHT(f.dim, f.classes, f.treeCfg)
			if err != nil {
				return 0, err
			}
			mem.tree = fresh
			mem.det.Reset()
			f.resets++
		}
		// Poisson online bagging: each sample appears k times for this tree.
		var bx [][]float64
		var by []int
		for i := range x {
			for k := f.poisson(); k > 0; k-- {
				bx = append(bx, x[i])
				by = append(by, y[i])
			}
		}
		if len(bx) == 0 {
			continue
		}
		loss, err := mem.tree.Fit(bx, by)
		if err != nil {
			return 0, err
		}
		lastLoss = loss
	}
	return lastLoss, nil
}

// PredictProba averages the members' posteriors.
func (f *StreamingARF) PredictProba(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i := range out {
		out[i] = make([]float64, f.classes)
	}
	for m := range f.members {
		proba := f.members[m].tree.PredictProba(x)
		for i, p := range proba {
			for c, v := range p {
				out[i][c] += v
			}
		}
	}
	inv := 1 / float64(len(f.members))
	for i := range out {
		for c := range out[i] {
			out[i][c] *= inv
		}
	}
	return out
}

// Predict returns the averaged-posterior argmax per sample.
func (f *StreamingARF) Predict(x [][]float64) []int {
	proba := f.PredictProba(x)
	out := make([]int, len(x))
	for i, p := range proba {
		out[i] = nn.Argmax(p)
	}
	return out
}

// arfState is the gob-serialized forest.
type arfState struct {
	Dim, Classes int
	Cfg          HTConfig
	Trees        [][]byte
	Resets       int
}

// Snapshot serializes every member tree (detector state restarts fresh).
func (f *StreamingARF) Snapshot() ([]byte, error) {
	state := arfState{Dim: f.dim, Classes: f.classes, Cfg: f.treeCfg, Resets: f.resets}
	for m := range f.members {
		snap, err := f.members[m].tree.Snapshot()
		if err != nil {
			return nil, err
		}
		state.Trees = append(state.Trees, snap)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(state); err != nil {
		return nil, fmt.Errorf("model: ARF snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore loads a forest with the same shape and member count.
func (f *StreamingARF) Restore(snapshot []byte) error {
	var state arfState
	if err := gob.NewDecoder(bytes.NewReader(snapshot)).Decode(&state); err != nil {
		return fmt.Errorf("model: ARF restore: %w", err)
	}
	if state.Dim != f.dim || state.Classes != f.classes {
		return fmt.Errorf("model: ARF restore shape %dx%d, want %dx%d", state.Dim, state.Classes, f.dim, f.classes)
	}
	if len(state.Trees) != len(f.members) {
		return errors.New("model: ARF restore member count mismatch")
	}
	for m := range f.members {
		tree, err := NewStreamingHT(f.dim, f.classes, state.Cfg)
		if err != nil {
			return err
		}
		if err := tree.Restore(state.Trees[m]); err != nil {
			return err
		}
		f.members[m].tree = tree
		f.members[m].det.Reset()
	}
	f.treeCfg = state.Cfg
	f.resets = state.Resets
	return nil
}

// Clone deep-copies the forest (fresh detectors, distinct bagging RNG).
func (f *StreamingARF) Clone() Model {
	fresh, _ := NewStreamingARF(f.dim, f.classes, len(f.members), f.treeCfg, f.rng.Int63())
	if snap, err := f.Snapshot(); err == nil {
		_ = fresh.Restore(snap)
	}
	return fresh
}
