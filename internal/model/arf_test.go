package model

import (
	"math/rand"
	"testing"
)

func TestARFValidation(t *testing.T) {
	if _, err := NewStreamingARF(4, 2, 0, DefaultHTConfig(), 1); err == nil {
		t.Error("zero trees should error")
	}
	bad := DefaultHTConfig()
	bad.GracePeriod = 0
	if _, err := NewStreamingARF(4, 2, 3, bad, 1); err == nil {
		t.Error("bad tree config should error")
	}
	f, _ := NewStreamingARF(4, 2, 3, DefaultHTConfig(), 1)
	if _, err := f.Fit(nil, nil); err == nil {
		t.Error("empty Fit should error")
	}
}

func TestARFLearns(t *testing.T) {
	cfg := DefaultHTConfig()
	cfg.GracePeriod = 100
	f, err := NewStreamingARF(8, 3, 5, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for s := 0; s < 60; s++ {
		x, y := dominantFeatureBatch(rng, 64, 8, 3)
		if _, err := f.Fit(x, y); err != nil {
			t.Fatal(err)
		}
	}
	x, y := dominantFeatureBatch(rng, 400, 8, 3)
	if acc := accuracy(f.Predict(x), y); acc < 0.9 {
		t.Errorf("ARF accuracy = %v", acc)
	}
	if f.Trees() != 5 {
		t.Errorf("Trees = %d", f.Trees())
	}
	proba := f.PredictProba(x[:2])
	for _, p := range proba {
		var sum float64
		for _, v := range p {
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("proba sums to %v", sum)
		}
	}
}

func TestARFResetsUnderLabelFlip(t *testing.T) {
	cfg := DefaultHTConfig()
	cfg.GracePeriod = 50
	f, err := NewStreamingARF(4, 2, 3, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	mk := func(flip bool) ([][]float64, []int) {
		x, y := dominantFeatureBatch(rng, 64, 4, 2)
		if flip {
			for i := range y {
				y[i] = 1 - y[i]
			}
		}
		return x, y
	}
	for s := 0; s < 60; s++ {
		x, y := mk(false)
		if _, err := f.Fit(x, y); err != nil {
			t.Fatal(err)
		}
	}
	// Alternating labels: no tree can stay right, detectors must fire.
	for s := 0; s < 120 && f.Resets() == 0; s++ {
		x, y := mk(s%2 == 0)
		if _, err := f.Fit(x, y); err != nil {
			t.Fatal(err)
		}
	}
	if f.Resets() == 0 {
		t.Error("no member reset despite a sustained outage")
	}
}

func TestARFSnapshotRestoreClone(t *testing.T) {
	cfg := DefaultHTConfig()
	cfg.GracePeriod = 100
	f, _ := NewStreamingARF(4, 2, 3, cfg, 3)
	rng := rand.New(rand.NewSource(3))
	x, y := dominantFeatureBatch(rng, 512, 4, 2)
	if _, err := f.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	snap, err := f.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fresh, _ := NewStreamingARF(4, 2, 3, cfg, 4)
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	p1 := f.Predict(x)
	p2 := fresh.Predict(x)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("restored forest predicts differently")
		}
	}
	wrongN, _ := NewStreamingARF(4, 2, 5, cfg, 5)
	if err := wrongN.Restore(snap); err == nil {
		t.Error("member count mismatch should error")
	}
	wrongShape, _ := NewStreamingARF(5, 2, 3, cfg, 6)
	if err := wrongShape.Restore(snap); err == nil {
		t.Error("shape mismatch should error")
	}

	clone := f.Clone()
	p3 := clone.Predict(x)
	for i := range p1 {
		if p1[i] != p3[i] {
			t.Fatal("clone predicts differently")
		}
	}
}

func TestARFFamilyViaFactory(t *testing.T) {
	fac, err := FactoryFor("arf", DefaultHyper())
	if err != nil {
		t.Fatal(err)
	}
	m, err := fac(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "StreamingARF" || m.Net() != nil {
		t.Errorf("name=%q", m.Name())
	}
}
