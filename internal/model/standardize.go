package model

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math"

	"freewayml/internal/nn"
)

// Standardized wraps any Model with an online per-feature z-score scaler:
// running means and variances update with every Fit, and both Fit and
// Predict see standardized inputs. Streams whose features carry large or
// shifting offsets (raw sensor readings, prices) destabilize SGD at a fixed
// learning rate; standardization makes the model family scale-free, the
// role River's preprocessing pipeline plays.
type Standardized struct {
	inner Model
	dim   int

	count float64
	mean  []float64
	m2    []float64
}

// stdState is the gob header prepended to the inner model's snapshot.
type stdState struct {
	Count float64
	Mean  []float64
	M2    []float64
}

// NewStandardized wraps a model with an online standardizer.
func NewStandardized(inner Model) (*Standardized, error) {
	if inner == nil {
		return nil, errors.New("model: NewStandardized requires a model")
	}
	d := inner.InDim()
	return &Standardized{inner: inner, dim: d, mean: make([]float64, d), m2: make([]float64, d)}, nil
}

// Name reports the wrapped family with a std+ prefix.
func (s *Standardized) Name() string { return "std+" + s.inner.Name() }

// InDim returns the feature dimensionality.
func (s *Standardized) InDim() int { return s.dim }

// NumClasses returns the label count.
func (s *Standardized) NumClasses() int { return s.inner.NumClasses() }

// Net exposes the wrapped model's network.
func (s *Standardized) Net() *nn.Network { return s.inner.Net() }

// stdFloor keeps the scale away from zero for constant features.
const stdFloor = 1e-6

// transform z-scores a batch with the current statistics (identity until
// any data has been seen).
func (s *Standardized) transform(x [][]float64) [][]float64 {
	if s.count < 2 {
		return x
	}
	out := make([][]float64, len(x))
	for i, row := range x {
		o := make([]float64, len(row))
		for j, v := range row {
			std := math.Sqrt(s.m2[j]/s.count) + stdFloor
			o[j] = (v - s.mean[j]) / std
		}
		out[i] = o
	}
	return out
}

// Fit updates the scaler with the raw batch, then trains the wrapped model
// on the standardized view.
func (s *Standardized) Fit(x [][]float64, y []int) (float64, error) {
	for _, row := range x {
		if len(row) != s.dim {
			return 0, fmt.Errorf("model: Standardized row width %d, want %d", len(row), s.dim)
		}
		s.count++
		for j, v := range row {
			delta := v - s.mean[j]
			s.mean[j] += delta / s.count
			s.m2[j] += delta * (v - s.mean[j])
		}
	}
	return s.inner.Fit(s.transform(x), y)
}

// Predict classifies the standardized view.
func (s *Standardized) Predict(x [][]float64) []int { return s.inner.Predict(s.transform(x)) }

// PredictProba returns posteriors over the standardized view.
func (s *Standardized) PredictProba(x [][]float64) [][]float64 {
	return s.inner.PredictProba(s.transform(x))
}

// Snapshot serializes the scaler statistics followed by the inner model.
func (s *Standardized) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(stdState{Count: s.count, Mean: s.mean, M2: s.m2}); err != nil {
		return nil, fmt.Errorf("model: Standardized snapshot: %w", err)
	}
	innerSnap, err := s.inner.Snapshot()
	if err != nil {
		return nil, err
	}
	if err := enc.Encode(innerSnap); err != nil {
		return nil, fmt.Errorf("model: Standardized snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore loads scaler statistics and the inner model.
func (s *Standardized) Restore(snapshot []byte) error {
	dec := gob.NewDecoder(bytes.NewReader(snapshot))
	var st stdState
	if err := dec.Decode(&st); err != nil {
		return fmt.Errorf("model: Standardized restore: %w", err)
	}
	if len(st.Mean) != s.dim || len(st.M2) != s.dim {
		return errors.New("model: Standardized restore dimension mismatch")
	}
	var innerSnap []byte
	if err := dec.Decode(&innerSnap); err != nil {
		return fmt.Errorf("model: Standardized restore: %w", err)
	}
	if err := s.inner.Restore(innerSnap); err != nil {
		return err
	}
	s.count = st.Count
	s.mean = st.Mean
	s.m2 = st.M2
	return nil
}

// Clone returns an independent deep copy.
func (s *Standardized) Clone() Model {
	c := &Standardized{
		inner: s.inner.Clone(),
		dim:   s.dim,
		count: s.count,
		mean:  append([]float64(nil), s.mean...),
		m2:    append([]float64(nil), s.m2...),
	}
	return c
}

// StandardizedFactory wraps a factory so every built model is standardized.
func StandardizedFactory(f Factory) Factory {
	return func(in, classes int) (Model, error) {
		m, err := f(in, classes)
		if err != nil {
			return nil, err
		}
		return NewStandardized(m)
	}
}
