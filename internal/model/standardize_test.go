package model

import (
	"math/rand"
	"testing"
)

// offsetBatch draws separable classes around a large common offset — the
// regime that destabilizes an unnormalized MLP at a fixed learning rate.
func offsetBatch(rng *rand.Rand, n int, offset float64) ([][]float64, []int) {
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		c := rng.Intn(2)
		x[i] = []float64{
			offset + float64(c)*2 + rng.NormFloat64()*0.3,
			offset + rng.NormFloat64()*0.3,
			rng.NormFloat64() * 0.3,
		}
		y[i] = c
	}
	return x, y
}

func TestStandardizedLearnsAtLargeOffset(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inner, err := NewStreamingMLP(3, 2, DefaultHyper())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewStandardized(inner)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 40; s++ {
		x, y := offsetBatch(rng, 64, 40)
		if _, err := m.Fit(x, y); err != nil {
			t.Fatal(err)
		}
	}
	x, y := offsetBatch(rng, 400, 40)
	if acc := accuracy(m.Predict(x), y); acc < 0.9 {
		t.Errorf("standardized accuracy at offset 40 = %v", acc)
	}
	if m.Name() != "std+StreamingMLP" {
		t.Errorf("name = %q", m.Name())
	}
}

func TestUnstandardizedFailsAtLargeOffsetControl(t *testing.T) {
	// Control experiment documenting why Standardized exists: the bare MLP
	// at the same offset stays near chance.
	rng := rand.New(rand.NewSource(1))
	m, err := NewStreamingMLP(3, 2, DefaultHyper())
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 40; s++ {
		x, y := offsetBatch(rng, 64, 40)
		if _, err := m.Fit(x, y); err != nil {
			t.Fatal(err)
		}
	}
	x, y := offsetBatch(rng, 400, 40)
	if acc := accuracy(m.Predict(x), y); acc > 0.8 {
		t.Skipf("bare MLP unexpectedly learned (acc %v); control no longer binding", acc)
	}
}

func TestStandardizedIdentityBeforeData(t *testing.T) {
	inner, _ := NewStreamingNB(2, 2)
	m, _ := NewStandardized(inner)
	// No data seen: transform must be the identity (no NaNs from 0/0).
	proba := m.PredictProba([][]float64{{1, 2}})
	if len(proba) != 1 || len(proba[0]) != 2 {
		t.Fatalf("proba shape wrong: %v", proba)
	}
}

func TestStandardizedSnapshotRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	inner, _ := NewStreamingMLP(3, 2, DefaultHyper())
	m, _ := NewStandardized(inner)
	for s := 0; s < 20; s++ {
		x, y := offsetBatch(rng, 64, 10)
		if _, err := m.Fit(x, y); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	inner2, _ := NewStreamingMLP(3, 2, DefaultHyper())
	fresh, _ := NewStandardized(inner2)
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	x, _ := offsetBatch(rng, 50, 10)
	p1 := m.Predict(x)
	p2 := fresh.Predict(x)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("restored standardized model predicts differently")
		}
	}
	if err := fresh.Restore([]byte("junk")); err == nil {
		t.Error("garbage restore should error")
	}
}

func TestStandardizedCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inner, _ := NewStreamingLR(3, 2, DefaultHyper())
	m, _ := NewStandardized(inner)
	x, y := offsetBatch(rng, 64, 5)
	if _, err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	before := c.Predict(x)
	for s := 0; s < 20; s++ {
		xs, ys := offsetBatch(rng, 64, 5)
		if _, err := m.Fit(xs, ys); err != nil {
			t.Fatal(err)
		}
	}
	after := c.Predict(x)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("clone aliases scaler or model state")
		}
	}
}

func TestStandardizedFactory(t *testing.T) {
	base, err := FactoryFor("lr", DefaultHyper())
	if err != nil {
		t.Fatal(err)
	}
	f := StandardizedFactory(base)
	m, err := f(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "std+StreamingLR" {
		t.Errorf("name = %q", m.Name())
	}
	if _, err := NewStandardized(nil); err == nil {
		t.Error("nil inner should error")
	}
}
