package session

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"freewayml/internal/faults"
)

// TestRestoreSkipsCorruptCheckpointAlongsideHealthyOne: a checkpoint
// directory holding one healthy and one corrupt <id>.ckpt must restore the
// healthy stream and start the corrupt one fresh — the CRC envelope
// rejects the torn file, the failure is counted, and serving continues.
func TestRestoreSkipsCorruptCheckpointAlongsideHealthyOne(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(5))

	// First lifetime: two streams, checkpointed on eviction.
	m1 := testManager(t, func(c *Config) { c.CheckpointDir = dir })
	feed(t, m1, "healthy", rng, 6)
	feed(t, m1, "corrupt", rng, 6)
	for _, id := range []string{"healthy", "corrupt"} {
		if ok, err := m1.Evict(id); !ok || err != nil {
			t.Fatalf("evict %s: ok=%v err=%v", id, ok, err)
		}
	}

	// Flip one bit in the middle of corrupt's envelope — a torn or
	// bit-rotted file, exactly what the CRC exists to catch.
	path := filepath.Join(dir, "corrupt.ckpt")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, faults.FlipBit(data, len(data)*8/2), 0o644); err != nil {
		t.Fatal(err)
	}

	// Second lifetime over the same directory.
	m2 := testManager(t, func(c *Config) { c.CheckpointDir = dir })
	h, err := m2.Ensure("healthy")
	if err != nil {
		t.Fatal(err)
	}
	if !h.Restored() || h.Snapshot().Batches != 6 {
		t.Errorf("healthy stream: restored=%v batches=%d, want true/6",
			h.Restored(), h.Snapshot().Batches)
	}
	c, err := m2.Ensure("corrupt")
	if err != nil {
		t.Fatalf("corrupt checkpoint must degrade to a fresh session, got %v", err)
	}
	if c.Restored() || c.Snapshot().Batches != 0 {
		t.Errorf("corrupt stream: restored=%v batches=%d, want false/0 (fresh)",
			c.Restored(), c.Snapshot().Batches)
	}
	agg := m2.Aggregate()
	if agg.RestoreErrors != 1 {
		t.Errorf("restore_errors = %d, want 1", agg.RestoreErrors)
	}
	if agg.Restored != 1 {
		t.Errorf("restored = %d, want 1", agg.Restored)
	}

	// The fresh session keeps serving and checkpointing normally.
	feed(t, m2, "corrupt", rng, 2)
	if got := c.Snapshot().Batches; got != 2 {
		t.Errorf("fresh session batches = %d, want 2", got)
	}
}

// TestDiscardSkipsFinalCheckpoint: Discard must remove the session without
// writing a checkpoint, while Evict writes one.
func TestDiscardSkipsFinalCheckpoint(t *testing.T) {
	dir := t.TempDir()
	// CheckpointEvery stays 0: checkpoints happen only on eviction or
	// shutdown, so file existence tells which teardown path ran.
	m := testManager(t, func(c *Config) { c.CheckpointDir = dir })
	rng := rand.New(rand.NewSource(6))
	feed(t, m, "kept", rng, 3)
	feed(t, m, "dropped", rng, 3)

	if ok, err := m.Evict("kept"); !ok || err != nil {
		t.Fatalf("evict: ok=%v err=%v", ok, err)
	}
	if ok, err := m.Discard("dropped"); !ok || err != nil {
		t.Fatalf("discard: ok=%v err=%v", ok, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "kept.ckpt")); err != nil {
		t.Errorf("evicted stream has no checkpoint: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "dropped.ckpt")); !os.IsNotExist(err) {
		t.Errorf("discarded stream wrote a checkpoint (err=%v), want none", err)
	}
	if ok, _ := m.Discard("dropped"); ok {
		t.Error("second discard reported a resident session")
	}
}
