package session

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"freewayml/internal/core"
)

// benchCfg is a deliberately small learner so the benchmark weighs the
// session layer — lookups, LRU eviction, checkpoint-on-evict, restore —
// rather than model math.
func benchCfg() core.Config {
	cfg := core.DefaultConfig()
	cfg.ModelFamily = "lr"
	cfg.Shift.WarmupPoints = 64
	cfg.Shift.HistoryK = 10
	cfg.Shift.MinSeverityHistory = 4
	cfg.Window.MaxBatches = 4
	cfg.Window.MaxItems = 1 << 20
	return cfg
}

// benchBatches pre-generates a few distinct labeled batches per stream; the
// learner retains labeled rows in its windows, so rows are shared read-only.
func benchBatches(streams, variants, rows, dim int) ([][]struct {
	x [][]float64
	y []int
}, []string) {
	rng := rand.New(rand.NewSource(42))
	batches := make([][]struct {
		x [][]float64
		y []int
	}, streams)
	ids := make([]string, streams)
	for s := range batches {
		ids[s] = fmt.Sprintf("s%02d", s)
		batches[s] = make([]struct {
			x [][]float64
			y []int
		}, variants)
		for v := range batches[s] {
			x := make([][]float64, rows)
			y := make([]int, rows)
			for i := range x {
				c := rng.Intn(2)
				x[i] = make([]float64, dim)
				x[i][0] = float64(c)*2 + rng.NormFloat64()*0.3
				for j := 1; j < dim; j++ {
					x[i][j] = rng.NormFloat64()
				}
				y[i] = c
			}
			batches[s][v] = struct {
				x [][]float64
				y []int
			}{x, y}
		}
	}
	return batches, ids
}

// benchCkptDir prefers a tmpfs mount for churn checkpoints so the measured
// contrast is lock blocking, not the host disk's (highly variable) fsync
// latency. Falls back to the test temp dir off Linux.
func benchCkptDir(b *testing.B) string {
	if fi, err := os.Stat("/dev/shm"); err == nil && fi.IsDir() {
		d, err := os.MkdirTemp("/dev/shm", "freeway-bench")
		if err == nil {
			b.Cleanup(func() { os.RemoveAll(d) })
			return d
		}
	}
	return b.TempDir()
}

// BenchmarkManagerParallelProcess measures cross-stream Process throughput
// for the single-lock baseline (shards=1, the pre-stripe manager) against
// the striped session map (shards=8), at two operating points:
//
//   - resident: every stream fits; ops are lookup + per-session work. This
//     is the fast path the stripes keep contention-free.
//   - churn: a hot set serves traffic while background arrivals of new
//     stream ids continuously overflow the bound, so every arrival pays an
//     LRU eviction (checkpoint-on-evict) and a creation under a shard write
//     lock. With one stripe that write-locked maintenance starves hot-path
//     lookups (Go's RWMutex prefers queued writers); with 8 stripes only
//     the victim's shard stalls. Reported throughput counts hot ops only.
//
// scripts/bench_serve.sh runs this at GOMAXPROCS=8, records both baselines
// in BENCH_PR5.json, and gates on the churn ratio. Note the contrast is
// scheduling/blocking, not CPU parallelism: on a multi-core host the
// stripes additionally let evictions overlap their checkpoint I/O, which is
// where the headline multiplier comes from; a single-core host bounds the
// achievable ratio (the gate adapts, see the script).
func BenchmarkManagerParallelProcess(b *testing.B) {
	for _, mode := range []string{"resident", "churn"} {
		for _, shards := range []int{1, 8} {
			b.Run(fmt.Sprintf("%s/shards=%d", mode, shards), func(b *testing.B) {
				benchParallelProcess(b, shards, mode == "churn")
			})
		}
	}
}

func benchParallelProcess(b *testing.B, shards int, churn bool) {
	const (
		hot      = 8 // streams driven by the timed workers
		slack    = 32
		churners = 8
		variants = 4
	)
	cfg := Config{
		Learner:     benchCfg(),
		Dim:         4,
		Classes:     2,
		MaxSessions: hot + slack,
		Shards:      shards,
	}
	if churn {
		cfg.CheckpointDir = benchCkptDir(b)
	}
	m, err := NewManager(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()

	batches, ids := benchBatches(hot, variants, 8, 4)

	// Background churn: each churner submits a never-before-seen stream id
	// per request — a continuous stream of arrivals, each forcing an LRU
	// eviction (with its checkpoint write) once the bound is reached. Ids
	// are monotonic so there are no coincidental lookup hits and no two
	// goroutines ever race on the same cold id.
	stop := make(chan struct{})
	var churnWG sync.WaitGroup
	if churn {
		coldBatch, _ := benchBatches(1, 1, 4, 4)
		for c := 0; c < churners; c++ {
			churnWG.Add(1)
			go func(c int) {
				defer churnWG.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					id := fmt.Sprintf("cold-%d-%d", c, i)
					// Errors tolerated: under the single-lock baseline a
					// starved arrival can exhaust its eviction retries;
					// that failure mode is part of what the stripes fix.
					_, _ = m.Process(context.Background(), id, coldBatch[0][0].x, coldBatch[0][0].y)
				}
			}(c)
		}
	}

	var hotErrs atomic.Int64
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := int(seq.Add(1)-1) % hot
		for i := 0; pb.Next(); i++ {
			bt := batches[w][i%variants]
			if _, err := m.Process(context.Background(), ids[w], bt.x, bt.y); err != nil {
				hotErrs.Add(1)
			}
		}
	})
	b.StopTimer()
	close(stop)
	churnWG.Wait()
	ok := float64(b.N - int(hotErrs.Load()))
	b.ReportMetric(ok/b.Elapsed().Seconds(), "batches/s")
	b.ReportMetric(float64(hotErrs.Load()), "errors")
}
