package session

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentMixedOpsMatchSerialBaseline races 32+ goroutines across 16
// streams — Process, Snapshot, List, Len, Aggregate, explicit Evict, and
// SweepOnce all mixed — then asserts that every *checked* stream (one
// writer each, never evicted) produced exactly the result a serial manager
// produces from the same batch sequence. Striping must change scheduling
// only, never per-stream results.
//
// Streams are split because eviction is deliberately not prediction-exact:
// the checkpoint envelope drops window contents and pending granularity
// buffers, so evicted-and-restored ("churn") streams are exercised for
// safety under race, not compared numerically.
func TestConcurrentMixedOpsMatchSerialBaseline(t *testing.T) {
	const (
		checked = 8
		churn   = 8
		batches = 24
	)
	type streamLoad struct {
		id string
		x  [][][]float64
		y  [][]int
	}
	load := make([]streamLoad, checked)
	for s := range load {
		rng := rand.New(rand.NewSource(int64(100 + s)))
		load[s].id = fmt.Sprintf("chk-%d", s)
		load[s].x = make([][][]float64, batches)
		load[s].y = make([][]int, batches)
		for b := 0; b < batches; b++ {
			load[s].x[b], load[s].y[b] = batchXY(rng, 16, float64(s))
		}
	}

	// Serial baseline: same batches, same per-stream order, one goroutine,
	// single-lock manager.
	want := make([]Stats, checked)
	serial := testManager(t, func(c *Config) { c.Shards = 1 })
	for s := range load {
		for b := 0; b < batches; b++ {
			if _, err := serial.Process(context.Background(), load[s].id, load[s].x[b], load[s].y[b]); err != nil {
				t.Fatalf("serial %s batch %d: %v", load[s].id, b, err)
			}
		}
		sess, ok := serial.Get(load[s].id)
		if !ok {
			t.Fatalf("serial %s vanished", load[s].id)
		}
		want[s] = sess.Snapshot()
	}

	// Concurrent run: checked writers + churn writers + readers + evictors
	// + sweepers = 8 + 8 + 8 + 4 + 4 = 32 goroutines. MaxSessions is large
	// enough that the LRU bound never evicts; only the explicit Evict
	// goroutines remove sessions, and they target churn streams exclusively.
	m := testManager(t, func(c *Config) {
		c.Shards = 8
		c.MaxSessions = checked + churn + 8
		c.CheckpointDir = t.TempDir()
	})
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for s := range load {
		wg.Add(1)
		go func(ld streamLoad) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				if _, err := m.Process(context.Background(), ld.id, ld.x[b], ld.y[b]); err != nil {
					t.Errorf("%s batch %d: %v", ld.id, b, err)
					return
				}
			}
		}(load[s])
	}
	for c := 0; c < churn; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			id := fmt.Sprintf("churn-%d", c)
			rng := rand.New(rand.NewSource(int64(900 + c)))
			for b := 0; b < batches; b++ {
				x, y := batchXY(rng, 16, 0)
				if _, err := m.Process(context.Background(), id, x, y); err != nil {
					t.Errorf("%s batch %d: %v", id, b, err)
					return
				}
			}
		}(c)
	}
	var readers sync.WaitGroup
	for r := 0; r < 8; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, id := range m.List() {
					if s, ok := m.Get(id); ok {
						_ = s.Snapshot()
					}
				}
				_ = m.Len()
				_ = m.Aggregate()
			}
		}(r)
	}
	for e := 0; e < 4; e++ {
		readers.Add(1)
		go func(e int) {
			defer readers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, _ = m.Evict(fmt.Sprintf("churn-%d", (e+i)%churn))
			}
		}(e)
	}
	for s := 0; s < 4; s++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m.SweepOnce() // TTL=0: a full-shard walk that must evict nothing
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	for s := range load {
		sess, ok := m.Get(load[s].id)
		if !ok {
			t.Fatalf("checked stream %s was evicted (must never be)", load[s].id)
		}
		got := sess.Snapshot()
		if got.Batches != want[s].Batches || got.Samples != want[s].Samples || got.Seq != want[s].Seq {
			t.Errorf("%s: got batches/samples/seq %d/%d/%d, serial baseline %d/%d/%d",
				load[s].id, got.Batches, got.Samples, got.Seq, want[s].Batches, want[s].Samples, want[s].Seq)
		}
		if got.GAcc != want[s].GAcc {
			t.Errorf("%s: GAcc %v diverged from serial baseline %v", load[s].id, got.GAcc, want[s].GAcc)
		}
		if got.SI != want[s].SI {
			t.Errorf("%s: SI %v diverged from serial baseline %v", load[s].id, got.SI, want[s].SI)
		}
	}
}

// TestProcessSurvivesEvictionStorm pins the Process retry path: a stream
// is processed in a tight loop while concurrent evictions of that same
// stream race every call. Every Process must succeed — losing the race to
// an eviction means retrying against a fresh (restored) session, never
// surfacing a closed-session error — and the stream's batch count must
// survive each eviction through its checkpoint.
func TestProcessSurvivesEvictionStorm(t *testing.T) {
	m := testManager(t, func(c *Config) {
		c.Shards = 4
		c.CheckpointDir = t.TempDir()
	})
	const id = "victim"
	const iters = 200

	// Each iteration launches an eviction that races the very next Process:
	// on some iterations it lands between lookup and the session lock, on
	// others mid-checkpoint, on others after — the retry loop must absorb
	// every interleaving.
	var evictions atomic.Int64
	var evictorWG sync.WaitGroup
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < iters; i++ {
		evictorWG.Add(1)
		go func() {
			defer evictorWG.Done()
			if ok, _ := m.Evict(id); ok {
				evictions.Add(1)
			}
		}()
		runtime.Gosched()
		x, y := batchXY(rng, 8, 0)
		if _, err := m.Process(context.Background(), id, x, y); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	evictorWG.Wait()

	if evictions.Load() == 0 {
		t.Skip("evictor never won the race; nothing exercised")
	}
	s, ok := m.Get(id)
	if !ok {
		// The final eviction may have won after the last Process; the
		// checkpoint must still hold the full history.
		var err error
		s, err = m.Ensure(id)
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Snapshot().Batches; got != iters {
		t.Errorf("batches after %d evictions = %d, want %d (checkpoint-on-evict lost history)", evictions.Load(), got, iters)
	}
}

// TestEnsureFastPathSkipsWriteLock pins the satellite fix for the retry
// loop: a resident stream must be reachable through the read-locked lookup
// without ever taking the shard write lock. The write lock being held by a
// slow operation on the SAME shard must not delay a resident lookup made
// before that operation started — we simulate by verifying lookup works
// while another stream on the same shard is mid-create.
func TestEnsureFastPathSkipsWriteLock(t *testing.T) {
	m := testManager(t, func(c *Config) { c.Shards = 1 }) // one shard: worst case
	rng := rand.New(rand.NewSource(3))
	feed(t, m, "resident", rng, 2)

	// Churn the single shard's write lock with creations of fresh streams;
	// the functional assertion is that the resident stream stays reachable
	// via the read-locked fast path throughout.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			x, y := batchXY(rng, 4, 0)
			_, _ = m.Process(context.Background(), fmt.Sprintf("new-%d", i), x, y)
		}
	}()
	for i := 0; i < 50; i++ {
		if _, ok := m.Get("resident"); !ok {
			t.Fatal("resident stream not reachable via fast path")
		}
	}
	close(stop)
	wg.Wait()
}
