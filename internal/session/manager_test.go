package session

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"freewayml/internal/core"
	"freewayml/internal/knowledge"
)

// testCfg returns a learner config tuned for small, fast test streams.
func testCfg() core.Config {
	cfg := core.DefaultConfig()
	cfg.Shift.WarmupPoints = 64
	cfg.Shift.HistoryK = 10
	cfg.Shift.MinSeverityHistory = 4
	cfg.Shift.RecentExclusion = 3
	cfg.Window.MaxBatches = 4
	cfg.Window.MaxItems = 1 << 20
	cfg.Hyper.Hidden = 8
	return cfg
}

func testManager(t *testing.T, mut func(*Config)) *Manager {
	t.Helper()
	cfg := Config{Learner: testCfg(), Dim: 3, Classes: 2}
	if mut != nil {
		mut(&cfg)
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := m.Close(); err != nil {
			t.Error(err)
		}
	})
	return m
}

// batchXY draws a labeled batch of two separable classes centered at cx.
func batchXY(rng *rand.Rand, n int, cx float64) ([][]float64, []int) {
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		c := rng.Intn(2)
		x[i] = []float64{cx + float64(c)*2 + rng.NormFloat64()*0.3, rng.NormFloat64() * 0.3, 0}
		y[i] = c
	}
	return x, y
}

func feed(t *testing.T, m *Manager, id string, rng *rand.Rand, batches int) {
	t.Helper()
	for i := 0; i < batches; i++ {
		x, y := batchXY(rng, 32, 0)
		if _, err := m.Process(context.Background(), id, x, y); err != nil {
			t.Fatalf("stream %s batch %d: %v", id, i, err)
		}
	}
}

func TestCreateOnFirstUseAndIsolation(t *testing.T) {
	m := testManager(t, nil)
	rng := rand.New(rand.NewSource(1))
	feed(t, m, "a", rng, 8)
	feed(t, m, "b", rng, 3)

	if got := m.List(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("List = %v", got)
	}
	sa, _ := m.Get("a")
	sb, _ := m.Get("b")
	if sa.Snapshot().Batches != 8 || sb.Snapshot().Batches != 3 {
		t.Errorf("batches = %d/%d, want 8/3 (streams must not share state)",
			sa.Snapshot().Batches, sb.Snapshot().Batches)
	}
	agg := m.Aggregate()
	if agg.Active != 2 || agg.Created != 2 {
		t.Errorf("aggregate = %+v", agg)
	}
}

func TestBadStreamIDs(t *testing.T) {
	m := testManager(t, nil)
	for _, id := range []string{"", ".", "-x", "a b", "a/b", "../etc", "x\n", string(make([]byte, 70))} {
		if _, err := m.Ensure(id); err == nil {
			t.Errorf("id %q accepted", id)
		}
	}
	for _, id := range []string{"a", "A-1", "orders.us_east", "x0123456789"} {
		if _, err := m.Ensure(id); err != nil {
			t.Errorf("id %q rejected: %v", id, err)
		}
	}
}

func TestTTLEvictionCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := testManager(t, func(c *Config) {
		c.TTL = 25 * time.Millisecond
		c.CheckpointDir = dir
	})
	rng := rand.New(rand.NewSource(2))
	feed(t, m, "s1", rng, 10)
	before, _ := m.Get("s1")
	want := before.Snapshot()

	time.Sleep(40 * time.Millisecond)
	// The background sweeper may already have fired; SweepOnce makes the
	// eviction deterministic either way.
	m.SweepOnce()
	if _, ok := m.Get("s1"); ok {
		t.Fatal("s1 still resident after TTL sweep")
	}
	if _, err := os.Stat(filepath.Join(dir, "s1.ckpt")); err != nil {
		t.Fatalf("no checkpoint on evict: %v", err)
	}

	// The id reappears: the session is rehydrated from its checkpoint with
	// its prequential metrics and knowledge store intact.
	after, err := m.Ensure("s1")
	if err != nil {
		t.Fatal(err)
	}
	got := after.Snapshot()
	if !got.Restored {
		t.Error("recreated session not marked restored")
	}
	if got.Batches != want.Batches || got.Samples != want.Samples {
		t.Errorf("restored metrics = %d batches / %d samples, want %d / %d",
			got.Batches, got.Samples, want.Batches, want.Samples)
	}
	if got.GAcc != want.GAcc || got.SI != want.SI {
		t.Errorf("restored GAcc/SI = %v/%v, want %v/%v", got.GAcc, got.SI, want.GAcc, want.SI)
	}
	if got.KnowledgeEntries != want.KnowledgeEntries {
		t.Errorf("restored knowledge entries = %d, want %d", got.KnowledgeEntries, want.KnowledgeEntries)
	}
	// The restored session keeps serving.
	feed(t, m, "s1", rng, 1)
	agg := m.Aggregate()
	if agg.EvictedTTL < 1 || agg.Restored < 1 || agg.CheckpointSaves < 1 {
		t.Errorf("aggregate = %+v", agg)
	}
}

func TestLRUSpillAtMaxSessions(t *testing.T) {
	m := testManager(t, func(c *Config) { c.MaxSessions = 3 })
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5; i++ {
		feed(t, m, fmt.Sprintf("s%d", i), rng, 1)
	}
	if n := m.Len(); n != 3 {
		t.Fatalf("resident sessions = %d, want 3", n)
	}
	// s0 and s1 were least recently used.
	for _, gone := range []string{"s0", "s1"} {
		if _, ok := m.Get(gone); ok {
			t.Errorf("%s survived the LRU spill", gone)
		}
	}
	if agg := m.Aggregate(); agg.EvictedLRU != 2 {
		t.Errorf("evicted_lru = %d, want 2", agg.EvictedLRU)
	}
}

func TestSharedKnowledgeStore(t *testing.T) {
	m := testManager(t, func(c *Config) { c.SharedKnowledge = true })
	if m.SharedStore() == nil {
		t.Fatal("no shared store")
	}
	rng := rand.New(rand.NewSource(4))
	feed(t, m, "a", rng, 6)
	feed(t, m, "b", rng, 6)
	sa, _ := m.Get("a")
	sb, _ := m.Get("b")
	if !sa.Snapshot().SharedKnowledge || !sb.Snapshot().SharedKnowledge {
		t.Error("sessions not marked shared-knowledge")
	}
	if got, want := sa.Snapshot().KnowledgeEntries, m.SharedStore().Len(); got != want {
		t.Errorf("session sees %d knowledge entries, store has %d", got, want)
	}
}

func TestSharedKnowledgeSkippedInCheckpoint(t *testing.T) {
	dir := t.TempDir()
	m := testManager(t, func(c *Config) {
		c.SharedKnowledge = true
		c.CheckpointDir = dir
	})
	rng := rand.New(rand.NewSource(5))
	feed(t, m, "s", rng, 12)
	storeLen := m.SharedStore().Len()
	if evicted, err := m.Evict("s"); !evicted || err != nil {
		t.Fatalf("evict: %v/%v", evicted, err)
	}
	// Restore must NOT clobber the live shared store.
	feed(t, m, "s", rng, 1)
	if got := m.SharedStore().Len(); got < storeLen {
		t.Errorf("shared store shrank across restore: %d -> %d", storeLen, got)
	}
	s, _ := m.Get("s")
	if !s.Snapshot().Restored {
		t.Error("session not restored")
	}
}

func TestManagerCloseIdempotent(t *testing.T) {
	m, err := NewManager(Config{Learner: testCfg(), Dim: 3, Classes: 2, TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	x, y := batchXY(rng, 16, 0)
	if _, err := m.Process(context.Background(), "s", x, y); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
	if _, err := m.Process(context.Background(), "s", x, y); err == nil {
		t.Error("Process after Close succeeded")
	}
}

func TestConfigValidation(t *testing.T) {
	base := Config{Learner: testCfg(), Dim: 3, Classes: 2}
	for name, mut := range map[string]func(*Config){
		"negative max":   func(c *Config) { c.MaxSessions = -1 },
		"negative ttl":   func(c *Config) { c.TTL = -time.Second },
		"negative every": func(c *Config) { c.CheckpointEvery = -1 },
		"bad learner":    func(c *Config) { c.Learner.ModelNum = 1 },
		"shared set": func(c *Config) {
			// The Manager owns the shared store; pre-wiring one into the
			// learner template must be rejected.
			st, err := knowledge.NewStore(c.Learner.KdgBuffer, c.Learner.SpillDir)
			if err != nil {
				panic(err)
			}
			c.Learner.SharedKnowledge = st
		},
	} {
		cfg := base
		mut(&cfg)
		if _, err := NewManager(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestConcurrentSessions hammers the manager from many goroutines across
// more stream ids than the resident bound, with TTL sweeps and explicit
// evictions racing in-flight Process calls, under a shared knowledge store
// and per-stream checkpoints. Run with -race this is the session layer's
// memory-safety proof.
func TestConcurrentSessions(t *testing.T) {
	m := testManager(t, func(c *Config) {
		c.MaxSessions = 8
		c.TTL = 20 * time.Millisecond
		c.CheckpointDir = t.TempDir()
		c.SharedKnowledge = true
	})
	const workers = 8
	const streams = 12
	const iters = 12

	var workersWg, evictorWg sync.WaitGroup
	stop := make(chan struct{})
	evictorWg.Add(1)
	go func() { // eviction racing in-flight Process
		defer evictorWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			m.SweepOnce()
			for i := 0; i < streams; i += 3 {
				if _, err := m.Evict(fmt.Sprintf("s%d", i)); err != nil {
					t.Errorf("evict: %v", err)
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()
	for w := 0; w < workers; w++ {
		workersWg.Add(1)
		go func(w int) {
			defer workersWg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < iters; i++ {
				id := fmt.Sprintf("s%d", rng.Intn(streams))
				x, y := batchXY(rng, 16, 0)
				if _, err := m.Process(context.Background(), id, x, y); err != nil {
					t.Errorf("worker %d stream %s: %v", w, id, err)
					return
				}
			}
		}(w)
	}
	workersWg.Wait()
	close(stop)
	evictorWg.Wait()

	if n := m.Len(); n > 8 {
		t.Errorf("resident sessions = %d, exceeds MaxSessions", n)
	}
	agg := m.Aggregate()
	if agg.Created < int64(streams) {
		t.Errorf("created = %d, want >= %d (every id used at least once)", agg.Created, streams)
	}
}
