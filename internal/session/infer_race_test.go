package session

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestInferConcurrentWithTrainAndEvict races the lock-free read path
// against the write path on the same stream: one goroutine trains, one
// evicts the stream repeatedly, and several goroutines infer throughout.
// Under -race this proves the inference plane shares no unsynchronized
// state with training, and that an eviction mid-read never produces an
// error — the snapshot pointer outlives the session.
func TestInferConcurrentWithTrainAndEvict(t *testing.T) {
	m := testManager(t, func(c *Config) {
		c.CheckpointDir = t.TempDir()
	})
	const id = "raced"
	rng := rand.New(rand.NewSource(42))
	batches := make([][][]float64, 24)
	labels := make([][]int, 24)
	for b := range batches {
		batches[b], labels[b] = batchXY(rng, 16, 0)
	}
	queries := make([][][]float64, 8)
	for q := range queries {
		queries[q], _ = batchXY(rng, 8, 0)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() { // trainer
		defer wg.Done()
		for b := 0; ; b = (b + 1) % len(batches) {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := m.Process(context.Background(), id, batches[b], labels[b]); err != nil {
				t.Errorf("train: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // evictor
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			m.Evict(id)
			time.Sleep(2 * time.Millisecond)
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) { // readers
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				res, err := m.Infer(context.Background(), id, queries[(r+i)%len(queries)])
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if len(res.Pred) != 8 {
					t.Errorf("reader %d: %d predictions", r, len(res.Pred))
					return
				}
			}
		}(r)
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestInferIgnoresSessionMutex pins the central lock-order invariant of the
// split: Session.Infer must complete while another goroutine holds
// Session.mu (as Process, checkpointing, and teardown do). If the read path
// ever grows a mu acquisition, this test deadlocks its way to the timeout
// instead of passing.
func TestInferIgnoresSessionMutex(t *testing.T) {
	m := testManager(t, nil)
	sess, err := m.Ensure("pinned")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(43))
	x, y := batchXY(rng, 16, 0)
	if _, err := m.Process(context.Background(), "pinned", x, y); err != nil {
		t.Fatal(err)
	}

	sess.mu.Lock()
	defer sess.mu.Unlock()

	done := make(chan error, 1)
	go func() {
		q, _ := batchXY(rng, 4, 0)
		_, err := sess.Infer(context.Background(), q)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("infer under held mu: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Infer blocked on Session.mu — the read path must not take it")
	}
}

// TestSessionGraphRecordsTransitions: processing batches populates the
// stream's pattern-transition graph, and the snapshot is stable data (nodes
// present, batch count matches).
func TestSessionGraphRecordsTransitions(t *testing.T) {
	m := testManager(t, nil)
	rng := rand.New(rand.NewSource(44))
	const id = "graphed"
	const n = 10
	for b := 0; b < n; b++ {
		x, y := batchXY(rng, 64, 0)
		if _, err := m.Process(context.Background(), id, x, y); err != nil {
			t.Fatal(err)
		}
	}
	sess, ok := m.Get(id)
	if !ok {
		t.Fatal("session vanished")
	}
	g := sess.TransitionGraph()
	if g.Batches != n {
		t.Errorf("graph batches = %d, want %d", g.Batches, n)
	}
	if len(g.Nodes) == 0 {
		t.Error("no nodes recorded")
	}
	if g.Last == "" {
		t.Error("no last pattern recorded")
	}
	total := 0
	for _, e := range g.Edges {
		if e.Count <= 0 {
			t.Errorf("edge %s->%s has count %d", e.From, e.To, e.Count)
		}
		total += e.Count
	}
	if total != n-1 {
		t.Errorf("edge counts sum to %d, want %d (batches-1)", total, n-1)
	}
}
