// Package session hosts many named FreewayML streams inside one process.
// Each stream ("session") owns its own learner — and with it its own shift
// detector, adaptive window, guard, watchdogs, and labelled observer — so
// concurrent streams never contaminate each other's drift statistics, while
// an optional process-wide knowledge store (config-gated, off by default)
// lets reoccurring distributions learned on one stream be reused by
// another.
//
// Lifecycle: sessions are created on first use, evicted after an idle TTL,
// and bounded by a max-session cap with least-recently-used spill. Eviction
// and shutdown checkpoint the session (when a checkpoint directory is
// configured) so the stream resumes where it left off the next time its id
// appears — the same crash-safe envelope a single-learner deployment uses,
// one file per stream.
//
// Concurrency: the session map is lock-striped across N shards (hash of the
// stream id picks the shard), so lookups, creations, and evictions on
// different shards never serialize, and an eviction's checkpoint write
// stalls only its own shard instead of the whole process. Aggregate views
// (List, Len, Aggregate, SweepOnce) visit shards one at a time — there is
// no stop-the-world lock anywhere in the manager.
package session

import (
	"context"
	"errors"
	"fmt"
	"hash/maphash"
	"io/fs"
	"log"
	"math"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"freewayml/internal/core"
	"freewayml/internal/knowledge"
	"freewayml/internal/obs"
	"freewayml/internal/stream"
)

// DefaultMaxSessions bounds resident sessions when Config.MaxSessions is 0.
const DefaultMaxSessions = 64

// DefaultStream is the stream id legacy single-stream endpoints map to.
const DefaultStream = "default"

// maxShards caps the shard count: past this, shard iteration cost (List,
// sweep, LRU scan) outweighs any contention win.
const maxShards = 256

// maxProcessRetries bounds how often Process retries after losing a race
// with an eviction. Two would suffice in practice (a fresh session is
// touched on creation, so it cannot be the next LRU victim while in use);
// the bound exists so a pathological schedule degrades to an error instead
// of a livelock.
const maxProcessRetries = 8

// idPattern constrains stream ids: they appear in URLs, metric labels, and
// checkpoint file names, so they must be short and path/label-safe.
var idPattern = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// ErrBadID rejects a stream id that is empty, too long, or carries
// characters unsafe for URLs, metric labels, or file names.
var ErrBadID = errors.New("session: invalid stream id")

// ErrClosed reports an operation on a closed Manager.
var ErrClosed = errors.New("session: manager closed")

// Config configures a Manager.
type Config struct {
	// Learner is the template config every session's learner is built from.
	// Its SharedKnowledge field is managed by the Manager (see
	// SharedKnowledge below) and must be left nil.
	Learner core.Config
	// Dim and Classes fix the stream shape every session serves.
	Dim, Classes int

	// MaxSessions bounds resident sessions; creating one past the bound
	// evicts the least-recently-used (0 selects DefaultMaxSessions, < 0 is
	// invalid).
	MaxSessions int
	// TTL evicts sessions idle for longer than this (0 disables the
	// sweeper; eviction then happens only via the LRU bound).
	TTL time.Duration

	// Shards sets the lock-stripe count for the session map (rounded up to
	// a power of two, capped at 256). 0 selects an automatic count sized to
	// GOMAXPROCS; 1 degrades to a single-lock manager — the baseline the
	// bench-serve gate compares against. Negative is invalid.
	Shards int

	// CheckpointDir, when set, persists one checkpoint envelope per session
	// (<dir>/<id>.ckpt): written on eviction and shutdown, read back when
	// the id reappears. Empty disables persistence.
	CheckpointDir string
	// CheckpointEvery additionally snapshots a live session every N
	// processed batches (0 = only on eviction/shutdown).
	CheckpointEvery int
	// DefaultCheckpointPath (single-stream compatibility) overrides the
	// checkpoint file for the "default" session. Unlike CheckpointDir it is
	// save-only: restoring stays an explicit caller step, exactly as the
	// pre-session server behaved.
	DefaultCheckpointPath string

	// SharedKnowledge, when true, backs every session with one process-wide
	// knowledge store instead of per-stream stores. Off by default: sharing
	// trades isolation (streams see each other's preserved regimes) for
	// cross-stream reuse of reoccurring distributions.
	SharedKnowledge bool

	// Registry receives every session's metrics, each series labelled with
	// stream=<id> (nil builds a private registry).
	Registry *obs.Registry
	// TraceCap sets each session's decision-trace ring capacity (<= 0
	// selects the observer default of 1024).
	TraceCap int
}

// shard is one lock stripe of the session map. Lock order is
// shard.mu → Session.mu (teardown under the shard lock waits out in-flight
// Process calls; Session.mu holders never take a shard lock), and a
// goroutine never holds two shard locks at once.
type shard struct {
	mu       sync.RWMutex
	sessions map[string]*Session
}

// Manager hosts named sessions: create-on-first-use, TTL eviction, LRU
// spill, and aggregate accounting. All methods are safe for concurrent use.
type Manager struct {
	cfg    Config
	reg    *obs.Registry
	shared *knowledge.Store // non-nil only under SharedKnowledge

	shards []shard
	mask   uint64       // len(shards)-1 (shard count is a power of two)
	seed   maphash.Seed // per-manager hash seed for shard selection
	count  atomic.Int64 // resident sessions across all shards
	closed atomic.Bool

	stop    chan struct{} // closes the TTL sweeper
	sweeper sync.WaitGroup

	gActive       *obs.Gauge
	cCreated      *obs.Counter
	cRestored     *obs.Counter
	cRestoreErrs  *obs.Counter
	cEvictTTL     *obs.Counter
	cEvictLRU     *obs.Counter
	cCkptSaves    *obs.Counter
	cCkptErrs     *obs.Counter
	cCkptErrsProc *obs.Counter

	ckptEvery int
}

// shardCount resolves the configured stripe count: an explicit value is
// rounded up to a power of two; auto (0) sizes to GOMAXPROCS so the stripe
// count tracks the parallelism actually available.
func shardCount(configured int) int {
	n := configured
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	if n > maxShards {
		n = maxShards
	}
	// Round up to a power of two so shard selection is a mask, not a mod.
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NewManager validates the config and starts the TTL sweeper (when a TTL is
// set). Callers own the returned manager and must Close it.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Learner.SharedKnowledge != nil {
		return nil, errors.New("session: Config.Learner.SharedKnowledge must be nil (set Config.SharedKnowledge instead)")
	}
	if cfg.MaxSessions < 0 {
		return nil, errors.New("session: MaxSessions must be >= 0")
	}
	if cfg.MaxSessions == 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.TTL < 0 {
		return nil, errors.New("session: TTL must be >= 0")
	}
	if cfg.Shards < 0 {
		return nil, errors.New("session: Shards must be >= 0")
	}
	if cfg.CheckpointEvery < 0 {
		return nil, errors.New("session: CheckpointEvery must be >= 0")
	}
	if err := cfg.Learner.Validate(); err != nil {
		return nil, err
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	n := shardCount(cfg.Shards)
	m := &Manager{
		cfg:    cfg,
		reg:    reg,
		shards: make([]shard, n),
		mask:   uint64(n - 1),
		seed:   maphash.MakeSeed(),
		stop:   make(chan struct{}),

		gActive:      reg.Gauge("freeway_sessions_active", "Sessions currently resident."),
		cCreated:     reg.Counter("freeway_sessions_created_total", "Sessions created (first use of a stream id)."),
		cRestored:    reg.Counter("freeway_sessions_restored_total", "Sessions rehydrated from a checkpoint at creation."),
		cRestoreErrs: reg.Counter("freeway_sessions_restore_errors_total", "Checkpoint restores that failed (corrupt or mismatched envelope; the session started fresh instead)."),
		cEvictTTL:    reg.Counter("freeway_sessions_evicted_total", "Sessions evicted, by reason.", "reason", "ttl"),
		cEvictLRU:    reg.Counter("freeway_sessions_evicted_total", "Sessions evicted, by reason.", "reason", "lru"),
		cCkptSaves:   reg.Counter("freeway_session_checkpoint_saves_total", "Session checkpoints written."),
		cCkptErrs:    reg.Counter("freeway_session_checkpoint_errors_total", "Session checkpoint writes that failed."),
		// The canonical process-wide failure series: checkpoint-on-evict and
		// checkpoint-on-migrate are best-effort, so this counter (plus the
		// stream id in the log line) is how a quietly failing disk surfaces.
		cCkptErrsProc: reg.Counter("freeway_checkpoint_errors_total", "Checkpoint writes that failed, process-wide."),

		ckptEvery: cfg.CheckpointEvery,
	}
	for i := range m.shards {
		m.shards[i].sessions = make(map[string]*Session)
	}
	if cfg.SharedKnowledge {
		store, err := knowledge.NewStore(cfg.Learner.KdgBuffer, cfg.Learner.SpillDir)
		if err != nil {
			return nil, fmt.Errorf("session: shared knowledge store: %w", err)
		}
		m.shared = store
	}
	if cfg.TTL > 0 {
		interval := cfg.TTL / 4
		if interval < 10*time.Millisecond {
			interval = 10 * time.Millisecond
		}
		m.sweeper.Add(1)
		go m.sweep(interval)
	}
	return m, nil
}

// Registry returns the registry carrying every session's labelled series
// and the manager's aggregates.
func (m *Manager) Registry() *obs.Registry { return m.reg }

// SharedStore returns the process-wide knowledge store, or nil when
// sessions keep per-stream stores.
func (m *Manager) SharedStore() *knowledge.Store { return m.shared }

// NumShards returns the resolved lock-stripe count.
func (m *Manager) NumShards() int { return len(m.shards) }

// MaxSessions returns the resolved resident-session bound.
func (m *Manager) MaxSessions() int { return m.cfg.MaxSessions }

// shard maps a stream id to its lock stripe.
func (m *Manager) shard(id string) *shard {
	h := maphash.String(m.seed, id)
	return &m.shards[h&m.mask]
}

// ckptPath maps a stream id to the checkpoint file its saves go to (""
// when persistence is off). Ids are pre-validated against idPattern, so the
// join cannot escape the directory.
func (m *Manager) ckptPath(id string) string {
	if id == DefaultStream && m.cfg.DefaultCheckpointPath != "" {
		return m.cfg.DefaultCheckpointPath
	}
	if m.cfg.CheckpointDir == "" {
		return ""
	}
	return filepath.Join(m.cfg.CheckpointDir, id+".ckpt")
}

// restorePath maps a stream id to the checkpoint file a fresh session is
// rehydrated from: only CheckpointDir-managed files auto-restore; the
// legacy DefaultCheckpointPath is save-only.
func (m *Manager) restorePath(id string) string {
	if m.cfg.CheckpointDir == "" {
		return ""
	}
	return filepath.Join(m.cfg.CheckpointDir, id+".ckpt")
}

// lookup is the contention-free residency check: a shard read-lock map hit.
// It is the fast path Ensure and the Process retry loop go through before
// paying for the shard write lock.
func (m *Manager) lookup(id string) (*Session, bool) {
	sh := m.shard(id)
	sh.mu.RLock()
	s, ok := sh.sessions[id]
	sh.mu.RUnlock()
	return s, ok
}

// Ensure returns the session for id, creating (and possibly restoring) it
// on first use. Creating past the MaxSessions bound evicts the
// least-recently-used idle session (possibly on another shard).
func (m *Manager) Ensure(id string) (*Session, error) {
	if !idPattern.MatchString(id) {
		return nil, fmt.Errorf("%w: %q", ErrBadID, id)
	}
	if m.closed.Load() {
		return nil, ErrClosed
	}
	if s, ok := m.lookup(id); ok {
		return s, nil
	}
	sh := m.shard(id)
	sh.mu.Lock()
	// Re-check under the write lock: the closed flag (Close drains each
	// shard under its lock, so a session inserted after this check is
	// guaranteed to be seen by Close) and residency (another goroutine may
	// have created the id while we waited for the lock).
	if m.closed.Load() {
		sh.mu.Unlock()
		return nil, ErrClosed
	}
	if s, ok := sh.sessions[id]; ok {
		sh.mu.Unlock()
		return s, nil
	}
	s, err := m.newSession(id)
	if err != nil {
		sh.mu.Unlock()
		return nil, err
	}
	sh.sessions[id] = s
	n := m.count.Add(1)
	m.gActive.Set(float64(n))
	sh.mu.Unlock()

	// Enforce the global bound without holding any shard lock: the LRU
	// victim may live on another shard, and taking two shard locks at once
	// would need a lock order. The new session was just touched, so it is
	// never its own victim unless the bound is smaller than the number of
	// concurrent creators.
	m.enforceBound()
	return s, nil
}

// newSession builds one session: learner from the template config, observer
// labelled with the stream id, checkpoint restore when the id has history
// on disk. Callers hold the id's shard write lock, which is what makes the
// restore read atomic with respect to an eviction's checkpoint write on the
// same shard.
func (m *Manager) newSession(id string) (*Session, error) {
	cfg := m.cfg.Learner
	cfg.SharedKnowledge = m.shared
	l, err := core.NewLearner(cfg, m.cfg.Dim, m.cfg.Classes)
	if err != nil {
		return nil, fmt.Errorf("session %q: %w", id, err)
	}
	o := core.NewObserverLabeled(m.reg, m.cfg.TraceCap, "stream", id)
	l.SetObserver(o)
	s := &Session{id: id, mgr: m, learner: l, observer: o}
	s.touch()
	if path := m.restorePath(id); path != "" {
		switch err := l.LoadCheckpointFile(path); {
		case err == nil:
			s.restored = true
			s.seq = l.Metrics().Batches()
			m.cRestored.Inc()
		case errors.Is(err, fs.ErrNotExist):
			// First use of this id: nothing to restore.
		default:
			// A corrupt or mismatched checkpoint degrades to a fresh
			// session (the failed load left the learner untouched) rather
			// than making the stream id unusable. The CRC envelope is what
			// catches a torn file here — the failover path depends on a bad
			// checkpoint being skipped, never half-loaded.
			m.cRestoreErrs.Inc()
			log.Printf("session %q: checkpoint restore from %s failed, starting fresh: %v", id, path, err)
		}
	}
	m.cCreated.Inc()
	return s, nil
}

// enforceBound evicts least-recently-used sessions until the resident count
// is back under MaxSessions. Transient overshoot is possible (a session is
// inserted before the bound is checked) but every Ensure that pushed past
// the bound pulls it back before returning.
func (m *Manager) enforceBound() {
	for m.count.Load() > int64(m.cfg.MaxSessions) {
		if !m.evictLRU() {
			return
		}
	}
}

// evictLRU finds and evicts the least-recently-used session. The scan takes
// each shard's read lock in turn (never two at once); the eviction re-checks
// the victim under its shard's write lock, so losing a race with a
// concurrent Process touch or a faster evictor just means another pass.
//
// The scan is best-effort: a shard whose lock is held (typically by another
// eviction's checkpoint write, or a creation's restore) is skipped on the
// first pass rather than waited for — otherwise every evictor's scan would
// queue behind every in-flight teardown and concurrent evictions on
// different shards could never overlap their checkpoint I/O. A busy shard's
// sessions are active by definition, so they are poor LRU victims anyway;
// if every shard is busy the scan falls back to blocking so the bound is
// still enforced.
// Reports whether a session was evicted.
func (m *Manager) evictLRU() bool {
	for attempt := 0; attempt < 4; attempt++ {
		var victim *Session
		oldest := int64(math.MaxInt64)
		scanned := 0
		for i := range m.shards {
			sh := &m.shards[i]
			if !sh.mu.TryRLock() {
				continue
			}
			scanned++
			for _, s := range sh.sessions {
				if t := s.lastUsed.Load(); t < oldest {
					oldest = t
					victim = s
				}
			}
			sh.mu.RUnlock()
		}
		if victim == nil && scanned < len(m.shards) {
			// Every candidate shard was busy: block on a full scan rather
			// than give up, so MaxSessions cannot be overrun by a burst of
			// concurrent creators.
			for i := range m.shards {
				sh := &m.shards[i]
				sh.mu.RLock()
				for _, s := range sh.sessions {
					if t := s.lastUsed.Load(); t < oldest {
						oldest = t
						victim = s
					}
				}
				sh.mu.RUnlock()
			}
		}
		if victim == nil {
			return false
		}
		sh := m.shard(victim.id)
		sh.mu.Lock()
		if sh.sessions[victim.id] != victim {
			sh.mu.Unlock()
			continue // raced another evictor; rescan
		}
		delete(sh.sessions, victim.id)
		n := m.count.Add(-1)
		m.cEvictLRU.Inc()
		m.gActive.Set(float64(n))
		// Teardown (final checkpoint) runs under the shard lock so a
		// recreation of the same id — which takes this lock — cannot read
		// the checkpoint before it is written. Only this shard stalls.
		err := victim.teardown(true)
		sh.mu.Unlock()
		if err != nil {
			log.Printf("session %q: close on LRU eviction: %v", victim.id, err)
		}
		return true
	}
	return false
}

// Process routes one batch to the session for id, creating it on first
// use. It is ProcessBatch for callers holding loose rows.
func (m *Manager) Process(ctx context.Context, id string, x [][]float64, y []int) (core.Result, error) {
	return m.ProcessBatch(ctx, id, stream.Batch{X: x, Y: y})
}

// ProcessBatch routes one batch to the session for id, creating it on first
// use. The batch is handed to the learner without copying its rows (Seq is
// assigned by the session), which is what lets the binary ingest path pass
// decoded tensor storage — and the coalescer its fused slab — straight
// through to the compute core. Losing a race with an eviction retries
// against a fresh session — callers never observe a closed-session error.
// Each retry re-checks residency through the read-locked fast path first,
// so a stream that was already recreated (or was never evicted — e.g. the
// victim was a different session) does not pay the shard write lock again.
func (m *Manager) ProcessBatch(ctx context.Context, id string, b stream.Batch) (core.Result, error) {
	for attempt := 0; attempt < maxProcessRetries; attempt++ {
		s, ok := m.lookup(id)
		if !ok {
			var err error
			if s, err = m.Ensure(id); err != nil {
				return core.Result{}, err
			}
		}
		// Advance the idle clock before taking the session lock: under heavy
		// eviction pressure a goroutine can be descheduled long enough after
		// Ensure that its fresh session ages into the LRU victim, and a
		// starved caller could lose every retry. Touching here shrinks that
		// window from scheduler latency to one victim-scan.
		s.touch()
		res, err := s.process(ctx, b)
		if errors.Is(err, errSessionClosed) {
			if m.closed.Load() {
				return core.Result{}, ErrClosed
			}
			continue
		}
		return res, err
	}
	return core.Result{}, fmt.Errorf("session %q: evicted %d times in a row during processing", id, maxProcessRetries)
}

// Infer routes one label-less batch to the inference plane of the session
// for id, creating the session on first use. Unlike ProcessBatch there is
// no closed-session retry loop: the read path never takes Session.mu, so an
// eviction cannot race it into an error — a session evicted mid-request
// simply answers from its last published snapshot.
func (m *Manager) Infer(ctx context.Context, id string, x [][]float64) (core.InferResult, error) {
	s, ok := m.lookup(id)
	if !ok {
		var err error
		if s, err = m.Ensure(id); err != nil {
			return core.InferResult{}, err
		}
	}
	return s.Infer(ctx, x)
}

// InferFused routes many groups of rows to one fused inference pass on the
// session for id (the cross-stream coalescer groups per stream and calls
// this once per stream). Lock-free like Infer.
func (m *Manager) InferFused(ctx context.Context, id string, groups [][][]float64) ([]core.InferResult, error) {
	s, ok := m.lookup(id)
	if !ok {
		var err error
		if s, err = m.Ensure(id); err != nil {
			return nil, err
		}
	}
	return s.InferFused(ctx, groups)
}

// InferFused32 routes natively narrow groups to the session for id — the
// float32 twin of InferFused, used by the speed-tier binary ingest path.
func (m *Manager) InferFused32(ctx context.Context, id string, groups [][][]float32) ([]core.InferResult, error) {
	s, ok := m.lookup(id)
	if !ok {
		var err error
		if s, err = m.Ensure(id); err != nil {
			return nil, err
		}
	}
	return s.InferFused32(ctx, groups)
}

// Get returns the resident session for id (ok=false when absent — Get never
// creates). Invalid ids are simply not resident.
func (m *Manager) Get(id string) (*Session, bool) {
	if !idPattern.MatchString(id) {
		return nil, false
	}
	return m.lookup(id)
}

// List returns the resident stream ids, sorted. Shards are visited one at a
// time, so the listing is a consistent snapshot per shard, not across the
// whole map — ids created or evicted mid-walk may or may not appear, which
// is the same guarantee a stop-the-world listing gives a caller that acts
// on it after the lock is released.
func (m *Manager) List() []string {
	ids := make([]string, 0, m.count.Load())
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for id := range sh.sessions {
			ids = append(ids, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(ids)
	return ids
}

// Len returns the resident session count.
func (m *Manager) Len() int { return int(m.count.Load()) }

// Evict removes the session for id right now (checkpointing it), as if its
// TTL had expired. Reports whether the id was resident.
func (m *Manager) Evict(id string) (bool, error) { return m.remove(id, true) }

// Discard removes the session for id without writing a final checkpoint.
// This is the distributed tier's stale-flush: a rejoined worker may still
// hold a session whose stream was served elsewhere while the worker was out
// of the ring, so its in-memory state is behind the checkpoint on disk —
// persisting it would clobber the fresh one. Reports whether the id was
// resident.
func (m *Manager) Discard(id string) (bool, error) { return m.remove(id, false) }

func (m *Manager) remove(id string, checkpoint bool) (bool, error) {
	if !idPattern.MatchString(id) {
		return false, nil
	}
	sh := m.shard(id)
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	if !ok {
		sh.mu.Unlock()
		return false, nil
	}
	delete(sh.sessions, id)
	n := m.count.Add(-1)
	m.cEvictTTL.Inc()
	m.gActive.Set(float64(n))
	err := s.teardown(checkpoint)
	sh.mu.Unlock()
	return true, err
}

// SweepOnce evicts every session idle for longer than the TTL, returning
// how many were evicted. The background sweeper calls it periodically; it
// is exported so tests can drive eviction deterministically. A zero TTL
// makes it a no-op. Each shard is swept under its own lock, so a sweep
// stalls at most one stripe of the session map at a time.
func (m *Manager) SweepOnce() int {
	if m.cfg.TTL <= 0 || m.closed.Load() {
		return 0
	}
	cutoff := time.Now().Add(-m.cfg.TTL).UnixNano()
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for id, s := range sh.sessions {
			if s.lastUsed.Load() > cutoff {
				continue
			}
			delete(sh.sessions, id)
			m.count.Add(-1)
			m.cEvictTTL.Inc()
			n++
			if err := s.teardown(true); err != nil {
				log.Printf("session %q: close on TTL eviction: %v", id, err)
			}
		}
		sh.mu.Unlock()
	}
	if n > 0 {
		m.gActive.Set(float64(m.count.Load()))
	}
	return n
}

// sweep is the TTL sweeper goroutine.
func (m *Manager) sweep(interval time.Duration) {
	defer m.sweeper.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.SweepOnce()
		}
	}
}

// AggregateStats sums the manager-level accounting across all sessions,
// resident and evicted.
type AggregateStats struct {
	Active           int   `json:"active"`
	Created          int64 `json:"created"`
	Restored         int64 `json:"restored"`
	RestoreErrors    int64 `json:"restore_errors"`
	EvictedTTL       int64 `json:"evicted_ttl"`
	EvictedLRU       int64 `json:"evicted_lru"`
	CheckpointSaves  int64 `json:"checkpoint_saves"`
	CheckpointErrors int64 `json:"checkpoint_errors"`
}

// Aggregate returns the manager-level accounting. It reads only atomics —
// no shard lock is taken, so a stats scrape never stalls serving.
func (m *Manager) Aggregate() AggregateStats {
	return AggregateStats{
		Active:           int(m.count.Load()),
		Created:          m.cCreated.Value(),
		Restored:         m.cRestored.Value(),
		RestoreErrors:    m.cRestoreErrs.Value(),
		EvictedTTL:       m.cEvictTTL.Value(),
		EvictedLRU:       m.cEvictLRU.Value(),
		CheckpointSaves:  m.cCkptSaves.Value(),
		CheckpointErrors: m.cCkptErrs.Value(),
	}
}

// Close tears down every session (checkpointing each) and stops the
// sweeper. Idempotent: the second call returns nil. Returns the first
// session-close error.
func (m *Manager) Close() error {
	if !m.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(m.stop)
	m.sweeper.Wait()
	var first error
	for i := range m.shards {
		sh := &m.shards[i]
		// Drain the shard under its lock: any Ensure that won an insert
		// race before the closed flag was visible has already released the
		// lock, so its session is in the map and torn down here.
		sh.mu.Lock()
		sessions := sh.sessions
		sh.sessions = make(map[string]*Session)
		sh.mu.Unlock()
		for _, s := range sessions {
			m.count.Add(-1)
			if err := s.teardown(true); err != nil && first == nil {
				first = err
			}
		}
	}
	m.gActive.Set(0)
	return first
}
