// Package session hosts many named FreewayML streams inside one process.
// Each stream ("session") owns its own learner — and with it its own shift
// detector, adaptive window, guard, watchdogs, and labelled observer — so
// concurrent streams never contaminate each other's drift statistics, while
// an optional process-wide knowledge store (config-gated, off by default)
// lets reoccurring distributions learned on one stream be reused by
// another.
//
// Lifecycle: sessions are created on first use, evicted after an idle TTL,
// and bounded by a max-session cap with least-recently-used spill. Eviction
// and shutdown checkpoint the session (when a checkpoint directory is
// configured) so the stream resumes where it left off the next time its id
// appears — the same crash-safe envelope a single-learner deployment uses,
// one file per stream.
package session

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"log"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"

	"freewayml/internal/core"
	"freewayml/internal/knowledge"
	"freewayml/internal/obs"
)

// DefaultMaxSessions bounds resident sessions when Config.MaxSessions is 0.
const DefaultMaxSessions = 64

// DefaultStream is the stream id legacy single-stream endpoints map to.
const DefaultStream = "default"

// maxProcessRetries bounds how often Process retries after losing a race
// with an eviction. Two would suffice in practice (a fresh session is
// touched on creation, so it cannot be the next LRU victim while in use);
// the bound exists so a pathological schedule degrades to an error instead
// of a livelock.
const maxProcessRetries = 8

// idPattern constrains stream ids: they appear in URLs, metric labels, and
// checkpoint file names, so they must be short and path/label-safe.
var idPattern = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// ErrBadID rejects a stream id that is empty, too long, or carries
// characters unsafe for URLs, metric labels, or file names.
var ErrBadID = errors.New("session: invalid stream id")

// ErrClosed reports an operation on a closed Manager.
var ErrClosed = errors.New("session: manager closed")

// Config configures a Manager.
type Config struct {
	// Learner is the template config every session's learner is built from.
	// Its SharedKnowledge field is managed by the Manager (see
	// SharedKnowledge below) and must be left nil.
	Learner core.Config
	// Dim and Classes fix the stream shape every session serves.
	Dim, Classes int

	// MaxSessions bounds resident sessions; creating one past the bound
	// evicts the least-recently-used (0 selects DefaultMaxSessions, < 0 is
	// invalid).
	MaxSessions int
	// TTL evicts sessions idle for longer than this (0 disables the
	// sweeper; eviction then happens only via the LRU bound).
	TTL time.Duration

	// CheckpointDir, when set, persists one checkpoint envelope per session
	// (<dir>/<id>.ckpt): written on eviction and shutdown, read back when
	// the id reappears. Empty disables persistence.
	CheckpointDir string
	// CheckpointEvery additionally snapshots a live session every N
	// processed batches (0 = only on eviction/shutdown).
	CheckpointEvery int
	// DefaultCheckpointPath (single-stream compatibility) overrides the
	// checkpoint file for the "default" session. Unlike CheckpointDir it is
	// save-only: restoring stays an explicit caller step, exactly as the
	// pre-session server behaved.
	DefaultCheckpointPath string

	// SharedKnowledge, when true, backs every session with one process-wide
	// knowledge store instead of per-stream stores. Off by default: sharing
	// trades isolation (streams see each other's preserved regimes) for
	// cross-stream reuse of reoccurring distributions.
	SharedKnowledge bool

	// Registry receives every session's metrics, each series labelled with
	// stream=<id> (nil builds a private registry).
	Registry *obs.Registry
	// TraceCap sets each session's decision-trace ring capacity (<= 0
	// selects the observer default of 1024).
	TraceCap int
}

// Manager hosts named sessions: create-on-first-use, TTL eviction, LRU
// spill, and aggregate accounting. All methods are safe for concurrent use.
type Manager struct {
	cfg    Config
	reg    *obs.Registry
	shared *knowledge.Store // non-nil only under SharedKnowledge

	// mu guards the session map and the closed flag. Lock order is
	// Manager.mu → Session.mu (teardown under mu waits out in-flight
	// Process calls; Session.mu holders never take Manager.mu).
	mu       sync.Mutex
	sessions map[string]*Session
	closed   bool

	stop    chan struct{} // closes the TTL sweeper
	sweeper sync.WaitGroup

	gActive    *obs.Gauge
	cCreated   *obs.Counter
	cRestored  *obs.Counter
	cEvictTTL  *obs.Counter
	cEvictLRU  *obs.Counter
	cCkptSaves *obs.Counter
	cCkptErrs  *obs.Counter

	ckptEvery int
}

// NewManager validates the config and starts the TTL sweeper (when a TTL is
// set). Callers own the returned manager and must Close it.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Learner.SharedKnowledge != nil {
		return nil, errors.New("session: Config.Learner.SharedKnowledge must be nil (set Config.SharedKnowledge instead)")
	}
	if cfg.MaxSessions < 0 {
		return nil, errors.New("session: MaxSessions must be >= 0")
	}
	if cfg.MaxSessions == 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.TTL < 0 {
		return nil, errors.New("session: TTL must be >= 0")
	}
	if cfg.CheckpointEvery < 0 {
		return nil, errors.New("session: CheckpointEvery must be >= 0")
	}
	if err := cfg.Learner.Validate(); err != nil {
		return nil, err
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &Manager{
		cfg:      cfg,
		reg:      reg,
		sessions: make(map[string]*Session),
		stop:     make(chan struct{}),

		gActive:    reg.Gauge("freeway_sessions_active", "Sessions currently resident."),
		cCreated:   reg.Counter("freeway_sessions_created_total", "Sessions created (first use of a stream id)."),
		cRestored:  reg.Counter("freeway_sessions_restored_total", "Sessions rehydrated from a checkpoint at creation."),
		cEvictTTL:  reg.Counter("freeway_sessions_evicted_total", "Sessions evicted, by reason.", "reason", "ttl"),
		cEvictLRU:  reg.Counter("freeway_sessions_evicted_total", "Sessions evicted, by reason.", "reason", "lru"),
		cCkptSaves: reg.Counter("freeway_session_checkpoint_saves_total", "Session checkpoints written."),
		cCkptErrs:  reg.Counter("freeway_session_checkpoint_errors_total", "Session checkpoint writes that failed."),

		ckptEvery: cfg.CheckpointEvery,
	}
	if cfg.SharedKnowledge {
		store, err := knowledge.NewStore(cfg.Learner.KdgBuffer, cfg.Learner.SpillDir)
		if err != nil {
			return nil, fmt.Errorf("session: shared knowledge store: %w", err)
		}
		m.shared = store
	}
	if cfg.TTL > 0 {
		interval := cfg.TTL / 4
		if interval < 10*time.Millisecond {
			interval = 10 * time.Millisecond
		}
		m.sweeper.Add(1)
		go m.sweep(interval)
	}
	return m, nil
}

// Registry returns the registry carrying every session's labelled series
// and the manager's aggregates.
func (m *Manager) Registry() *obs.Registry { return m.reg }

// SharedStore returns the process-wide knowledge store, or nil when
// sessions keep per-stream stores.
func (m *Manager) SharedStore() *knowledge.Store { return m.shared }

// ckptPath maps a stream id to the checkpoint file its saves go to (""
// when persistence is off). Ids are pre-validated against idPattern, so the
// join cannot escape the directory.
func (m *Manager) ckptPath(id string) string {
	if id == DefaultStream && m.cfg.DefaultCheckpointPath != "" {
		return m.cfg.DefaultCheckpointPath
	}
	if m.cfg.CheckpointDir == "" {
		return ""
	}
	return filepath.Join(m.cfg.CheckpointDir, id+".ckpt")
}

// restorePath maps a stream id to the checkpoint file a fresh session is
// rehydrated from: only CheckpointDir-managed files auto-restore; the
// legacy DefaultCheckpointPath is save-only.
func (m *Manager) restorePath(id string) string {
	if m.cfg.CheckpointDir == "" {
		return ""
	}
	return filepath.Join(m.cfg.CheckpointDir, id+".ckpt")
}

// Ensure returns the session for id, creating (and possibly restoring) it
// on first use. Creating past the MaxSessions bound evicts the
// least-recently-used idle session first.
func (m *Manager) Ensure(id string) (*Session, error) {
	if !idPattern.MatchString(id) {
		return nil, fmt.Errorf("%w: %q", ErrBadID, id)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if s, ok := m.sessions[id]; ok {
		return s, nil
	}
	for len(m.sessions) >= m.cfg.MaxSessions {
		if err := m.evictLRULocked(); err != nil {
			return nil, err
		}
	}
	s, err := m.newSessionLocked(id)
	if err != nil {
		return nil, err
	}
	m.sessions[id] = s
	m.gActive.Set(float64(len(m.sessions)))
	return s, nil
}

// newSessionLocked builds one session: learner from the template config,
// observer labelled with the stream id, checkpoint restore when the id has
// history on disk. Callers hold m.mu.
func (m *Manager) newSessionLocked(id string) (*Session, error) {
	cfg := m.cfg.Learner
	cfg.SharedKnowledge = m.shared
	l, err := core.NewLearner(cfg, m.cfg.Dim, m.cfg.Classes)
	if err != nil {
		return nil, fmt.Errorf("session %q: %w", id, err)
	}
	o := core.NewObserverLabeled(m.reg, m.cfg.TraceCap, "stream", id)
	l.SetObserver(o)
	s := &Session{id: id, mgr: m, learner: l, observer: o}
	s.touch()
	if path := m.restorePath(id); path != "" {
		switch err := l.LoadCheckpointFile(path); {
		case err == nil:
			s.restored = true
			s.seq = l.Metrics().Batches()
			m.cRestored.Inc()
		case errors.Is(err, fs.ErrNotExist):
			// First use of this id: nothing to restore.
		default:
			// A corrupt or mismatched checkpoint degrades to a fresh
			// session (the failed load left the learner untouched) rather
			// than making the stream id unusable.
			log.Printf("session %q: checkpoint restore from %s failed, starting fresh: %v", id, path, err)
		}
	}
	m.cCreated.Inc()
	return s, nil
}

// evictLRULocked evicts the least-recently-used session. Callers hold m.mu;
// the teardown (which may wait out an in-flight Process and write a
// checkpoint) runs under it, trading a brief stall of session creation for
// a simple linearizable lifecycle.
func (m *Manager) evictLRULocked() error {
	var victim *Session
	for _, s := range m.sessions {
		if victim == nil || s.lastUsed.Load() < victim.lastUsed.Load() {
			victim = s
		}
	}
	if victim == nil {
		return errors.New("session: MaxSessions is 0 after eviction") // unreachable: bound >= 1
	}
	delete(m.sessions, victim.id)
	m.cEvictLRU.Inc()
	m.gActive.Set(float64(len(m.sessions)))
	return victim.teardown(true)
}

// Process routes one batch to the session for id, creating it on first
// use. Losing a race with an eviction retries against a fresh session —
// callers never observe a closed-session error.
func (m *Manager) Process(ctx context.Context, id string, x [][]float64, y []int) (core.Result, error) {
	for attempt := 0; attempt < maxProcessRetries; attempt++ {
		s, err := m.Ensure(id)
		if err != nil {
			return core.Result{}, err
		}
		res, err := s.process(ctx, x, y)
		if errors.Is(err, errSessionClosed) {
			continue
		}
		return res, err
	}
	return core.Result{}, fmt.Errorf("session %q: evicted %d times in a row during processing", id, maxProcessRetries)
}

// Get returns the resident session for id (ok=false when absent — Get never
// creates).
func (m *Manager) Get(id string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	return s, ok
}

// List returns the resident stream ids, sorted.
func (m *Manager) List() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, 0, len(m.sessions))
	for id := range m.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Len returns the resident session count.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// Evict removes the session for id right now (checkpointing it), as if its
// TTL had expired. Reports whether the id was resident.
func (m *Manager) Evict(id string) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return false, nil
	}
	delete(m.sessions, id)
	m.cEvictTTL.Inc()
	m.gActive.Set(float64(len(m.sessions)))
	return true, s.teardown(true)
}

// SweepOnce evicts every session idle for longer than the TTL, returning
// how many were evicted. The background sweeper calls it periodically; it
// is exported so tests can drive eviction deterministically. A zero TTL
// makes it a no-op.
func (m *Manager) SweepOnce() int {
	if m.cfg.TTL <= 0 {
		return 0
	}
	cutoff := time.Now().Add(-m.cfg.TTL).UnixNano()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0
	}
	n := 0
	for id, s := range m.sessions {
		if s.lastUsed.Load() > cutoff {
			continue
		}
		delete(m.sessions, id)
		m.cEvictTTL.Inc()
		n++
		if err := s.teardown(true); err != nil {
			log.Printf("session %q: close on TTL eviction: %v", id, err)
		}
	}
	if n > 0 {
		m.gActive.Set(float64(len(m.sessions)))
	}
	return n
}

// sweep is the TTL sweeper goroutine.
func (m *Manager) sweep(interval time.Duration) {
	defer m.sweeper.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.SweepOnce()
		}
	}
}

// AggregateStats sums the manager-level accounting across all sessions,
// resident and evicted.
type AggregateStats struct {
	Active           int   `json:"active"`
	Created          int64 `json:"created"`
	Restored         int64 `json:"restored"`
	EvictedTTL       int64 `json:"evicted_ttl"`
	EvictedLRU       int64 `json:"evicted_lru"`
	CheckpointSaves  int64 `json:"checkpoint_saves"`
	CheckpointErrors int64 `json:"checkpoint_errors"`
}

// Aggregate returns the manager-level accounting.
func (m *Manager) Aggregate() AggregateStats {
	m.mu.Lock()
	active := len(m.sessions)
	m.mu.Unlock()
	return AggregateStats{
		Active:           active,
		Created:          m.cCreated.Value(),
		Restored:         m.cRestored.Value(),
		EvictedTTL:       m.cEvictTTL.Value(),
		EvictedLRU:       m.cEvictLRU.Value(),
		CheckpointSaves:  m.cCkptSaves.Value(),
		CheckpointErrors: m.cCkptErrs.Value(),
	}
}

// Close tears down every session (checkpointing each) and stops the
// sweeper. Idempotent: the second call returns nil. Returns the first
// session-close error.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	sessions := m.sessions
	m.sessions = make(map[string]*Session)
	m.gActive.Set(0)
	close(m.stop)
	m.mu.Unlock()

	m.sweeper.Wait()
	var first error
	for _, s := range sessions {
		if err := s.teardown(true); err != nil && first == nil {
			first = err
		}
	}
	return first
}
