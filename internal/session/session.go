package session

import (
	"context"
	"errors"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"freewayml/internal/core"
	"freewayml/internal/shift"
	"freewayml/internal/strategy"
	"freewayml/internal/stream"
)

// errSessionClosed is the internal sentinel a Session returns when a caller
// raced an eviction: the manager retries against a fresh session, so it
// never escapes to users.
var errSessionClosed = errors.New("session: closed")

// Session is one named stream: a learner plus its labelled observer and the
// per-stream bookkeeping (batch sequence, idle clock, checkpoint counters).
// Sessions are created by the Manager and torn down by eviction or
// Manager.Close; they are never handed out for direct mutation.
type Session struct {
	id  string
	mgr *Manager

	// mu serializes Process/checkpoint/teardown. Lock order is
	// Manager.mu → Session.mu; a Session.mu holder must never take
	// Manager.mu (eviction holds both while waiting out an in-flight
	// Process).
	// learner is set at construction and never reassigned, so the lock-free
	// inference plane (Infer/ModelSnapshot) reads it without mu.
	mu       sync.Mutex
	learner  *core.Learner
	observer *core.Observer
	seq      int
	closed   bool
	restored bool

	// graph records the stream's pattern-to-pattern transitions (under mu).
	graph shift.TransitionGraph

	// lastUsed is the idle clock (unix nanoseconds), read by the TTL
	// sweeper and the LRU spill without taking mu.
	lastUsed atomic.Int64

	ckptSaves atomic.Int64
	ckptErrs  atomic.Int64
}

// ID returns the stream id.
func (s *Session) ID() string { return s.id }

// Observer returns the session's labelled observability layer.
func (s *Session) Observer() *core.Observer { return s.observer }

// Restored reports whether the session was rehydrated from a checkpoint at
// creation.
func (s *Session) Restored() bool { return s.restored }

// LastUsed returns the time of the session's last Process call (creation
// time before the first one).
func (s *Session) LastUsed() time.Time { return time.Unix(0, s.lastUsed.Load()) }

// touch advances the idle clock.
func (s *Session) touch() { s.lastUsed.Store(time.Now().UnixNano()) }

// process runs one batch through the session's learner, overwriting the
// batch's Seq with the per-stream sequence number. The caller's batch is
// handed to the learner as-is — no row copies — so the binary ingest and
// coalescing paths can pass decoded or fused storage straight through.
// Returns errSessionClosed when the session was evicted before the lock was
// acquired.
func (s *Session) process(ctx context.Context, b stream.Batch) (core.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return core.Result{}, errSessionClosed
	}
	s.touch()
	b.Seq = s.seq
	s.seq++
	res, err := s.learner.Process(ctx, b)
	if err == nil {
		// SubPattern refines slight shifts into A1/A2 and equals Pattern
		// otherwise, so it is the finest label available for the graph.
		s.graph.Record(res.SubPattern)
	}
	if err == nil && s.mgr.ckptEvery > 0 && s.mgr.ckptPath(s.id) != "" && s.seq%s.mgr.ckptEvery == 0 {
		s.checkpointLocked()
	}
	return res, err
}

// Infer predicts one label-less batch from the learner's published model
// snapshot. This is the lock-free read path: it never takes s.mu — only the
// idle clock is touched — so inference proceeds concurrently with training,
// checkpointing, and teardown on the same stream. A session that was
// evicted mid-request still answers from its last published snapshot.
func (s *Session) Infer(ctx context.Context, x [][]float64) (core.InferResult, error) {
	s.touch()
	return s.learner.Infer(ctx, x)
}

// InferFused predicts many groups of rows in one fused pass against the
// session's published snapshot (see core.Learner.InferFused). Lock-free
// like Infer.
func (s *Session) InferFused(ctx context.Context, groups [][][]float64) ([]core.InferResult, error) {
	s.touch()
	return s.learner.InferFused(ctx, groups)
}

// InferFused32 is InferFused for natively narrow rows (float32 wire frames
// under a speed tier). Lock-free like Infer.
func (s *Session) InferFused32(ctx context.Context, groups [][][]float32) ([]core.InferResult, error) {
	s.touch()
	return s.learner.InferFused32(ctx, groups)
}

// ModelSnapshot returns the session's currently published inference
// snapshot without taking s.mu. (Snapshot() — the stats summary — predates
// the inference plane and keeps its name.)
func (s *Session) ModelSnapshot() *strategy.Snapshot {
	s.touch()
	return s.learner.ModelSnapshot()
}

// TransitionGraph returns a copy of the stream's pattern-transition graph.
func (s *Session) TransitionGraph() shift.TransitionSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.graph.Snapshot()
}

// checkpointLocked snapshots the learner to the session's checkpoint path.
// Failures are counted and logged, never fatal: a stream keeps serving with
// a stale checkpoint rather than dying on a full disk. Callers hold s.mu.
func (s *Session) checkpointLocked() {
	path := s.mgr.ckptPath(s.id)
	if path == "" {
		return
	}
	if err := s.learner.SaveCheckpointFile(path); err != nil {
		s.ckptErrs.Add(1)
		s.mgr.cCkptErrs.Inc()
		s.mgr.cCkptErrsProc.Inc()
		log.Printf("session %q: checkpoint to %s failed: %v", s.id, path, err)
		return
	}
	s.ckptSaves.Add(1)
	s.mgr.cCkptSaves.Inc()
}

// teardown finishes the session: it waits out any in-flight Process (by
// taking mu), marks the session closed so late callers retry against a
// fresh one, writes a final checkpoint when the session did any work, and
// closes the learner. Idempotent.
func (s *Session) teardown(checkpoint bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if checkpoint && s.seq > 0 {
		s.checkpointLocked()
	}
	return s.learner.Close()
}

// SaveCheckpointFile snapshots the session's learner to path on demand.
func (s *Session) SaveCheckpointFile(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errSessionClosed
	}
	return s.learner.SaveCheckpointFile(path)
}

// LoadCheckpointFile restores the session's learner from a checkpoint — the
// explicit resume path for deployments not using CheckpointDir.
func (s *Session) LoadCheckpointFile(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errSessionClosed
	}
	if err := s.learner.LoadCheckpointFile(path); err != nil {
		return err
	}
	s.restored = true
	if n := s.learner.Metrics().Batches(); n > s.seq {
		s.seq = n
	}
	return nil
}

// Stats is one session's point-in-time summary.
type Stats struct {
	ID       string `json:"id"`
	Batches  int    `json:"batches"`
	Samples  int    `json:"samples"`
	Seq      int    `json:"seq"`
	Restored bool   `json:"restored"`

	GAcc             float64 `json:"g_acc"`
	SI               float64 `json:"si"`
	KnowledgeEntries int     `json:"knowledge_entries"`
	KnowledgeBytes   int     `json:"knowledge_bytes"`
	SharedKnowledge  bool    `json:"shared_knowledge"`

	Health core.Stats `json:"health"`

	CheckpointSaves  int64 `json:"checkpoint_saves"`
	CheckpointErrors int64 `json:"checkpoint_errors"`

	IdleSeconds float64 `json:"idle_seconds"`
}

// Snapshot summarizes the session. Safe concurrently with Process.
func (s *Session) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.learner.Metrics()
	return Stats{
		ID:       s.id,
		Batches:  m.Batches(),
		Samples:  m.Samples(),
		Seq:      s.seq,
		Restored: s.restored,

		GAcc:             m.GAcc(),
		SI:               m.SI(),
		KnowledgeEntries: s.learner.KnowledgeStore().Len(),
		KnowledgeBytes:   s.learner.KnowledgeStore().MemoryBytes(),
		SharedKnowledge:  s.learner.SharedKnowledge(),

		Health: s.learner.Stats(),

		CheckpointSaves:  s.ckptSaves.Load(),
		CheckpointErrors: s.ckptErrs.Load(),

		IdleSeconds: time.Since(time.Unix(0, s.lastUsed.Load())).Seconds(),
	}
}
