// Cluster-wide observability for the routing tier: per-attempt trace spans,
// the slow-request exemplar ring, the cluster event timeline, and the
// /v1/cluster/* endpoints that federate router-local data with per-worker
// scrapes (/v1/metrics, /v1/spans) into one cluster view.

package dist

import (
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"freewayml/internal/obs"
)

// Wire protos distinguished by the proxy-bytes counters and span records.
// The binary content type mirrors serve.BinaryContentType; dist keeps its
// own copy so the routing tier does not import the serving tier.
const (
	protoJSON         = "json"
	protoBinary       = "binary"
	binaryContentType = "application/x-freeway-batch"
	routerServiceName = "router"
	routerForwardSpan = "router.forward"
)

// protoOf classifies a request Content-Type for metrics and spans.
func protoOf(contentType string) string {
	if ct, _, _ := strings.Cut(contentType, ";"); strings.TrimSpace(ct) == binaryContentType {
		return protoBinary
	}
	return protoJSON
}

// Spans exposes the router's per-attempt span ring.
func (r *Router) Spans() *obs.SpanRing { return r.spans }

// Events exposes the cluster timeline ring.
func (r *Router) Events() *obs.EventRing { return r.events }

// Exemplars exposes the slow-request top-K ring.
func (r *Router) Exemplars() *obs.ExemplarRing { return r.exemplars }

// recordEvent appends one timeline entry, stamping the time.
func (r *Router) recordEvent(ev obs.ClusterEvent) {
	ev.UnixNano = time.Now().UnixNano()
	r.events.Add(ev)
}

// routerTrace carries one request's trace context through the forward
// attempt loop. A nil *routerTrace (DisableTracing) turns every method into
// a no-op, so the forward path needs no flag checks.
type routerTrace struct {
	r      *Router
	ctx    obs.TraceContext // the request-wide trace id + the client's span id
	minted bool             // true when the router created the trace id
	stream string
	proto  string
	hop    routerHop // per-attempt scratch; only one attempt is live at a time
}

// beginTrace resolves the request's trace context: the client's traceparent
// header when present and well-formed, else a freshly minted root. Returns
// nil when tracing is disabled.
func (r *Router) beginTrace(req *http.Request, stream, proto string) *routerTrace {
	if r.cfg.DisableTracing {
		return nil
	}
	tr := &routerTrace{r: r, stream: stream, proto: proto}
	if in, ok := obs.ParseTraceparent(req.Header.Get(obs.TraceparentHeader)); ok {
		tr.ctx = in
	} else {
		tr.ctx = obs.TraceContext{TraceID: obs.NewTraceID()}
		tr.minted = true
	}
	return tr
}

// id returns the trace id ("" when tracing is disabled).
func (t *routerTrace) id() string {
	if t == nil {
		return ""
	}
	return t.ctx.TraceID
}

// routerHop is one in-flight forward attempt's span.
type routerHop struct {
	t     *routerTrace
	start time.Time
	span  obs.Span
}

// beginAttempt opens the span for one forward attempt and rewrites the
// outgoing traceparent header so the worker's span parents to this exact
// attempt. Mutating req.Header is safe: the handler owns the request, and
// do() copies headers into a fresh outbound request per attempt.
func (t *routerTrace) beginAttempt(req *http.Request, owner string, attempt int, backoff time.Duration) *routerHop {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.hop = routerHop{
		t:     t,
		start: now,
		span: obs.Span{
			TraceID:       t.ctx.TraceID,
			SpanID:        obs.NewSpanID(),
			Parent:        t.ctx.SpanID,
			Name:          routerForwardSpan,
			Service:       routerServiceName,
			Stream:        t.stream,
			Proto:         t.proto,
			StartUnixNano: now.UnixNano(),
			Attempt:       attempt,
			Owner:         owner,
			BackoffMicros: obs.FormatDurationMicros(backoff),
		},
	}
	down := obs.TraceContext{TraceID: t.ctx.TraceID, SpanID: t.hop.span.SpanID}
	req.Header.Set(obs.TraceparentHeader, down.Traceparent())
	return &t.hop
}

// finish closes the attempt span with the owner's breaker state as observed
// after the attempt settled, and records it.
func (h *routerHop) finish(breaker string, err error) {
	if h == nil {
		return
	}
	h.span.DurationMicros = obs.FormatDurationMicros(time.Since(h.start))
	h.span.Breaker = breaker
	if err != nil {
		h.span.Status = "error"
		h.span.Err = obs.SpanError(err)
	} else {
		h.span.Status = "ok"
	}
	h.t.r.spans.Add(h.span)
}

// setHeaders stamps the router's per-hop response headers: the trace id
// (unless the worker already echoed it), the router-side wall time, and the
// attempt count. workerHdr is the worker response's header set (nil when
// every attempt failed).
func (t *routerTrace) setHeaders(h http.Header, workerHdr http.Header, start time.Time, attempts int) {
	if t == nil {
		return
	}
	if workerHdr == nil || workerHdr.Get(obs.TraceIDHeader) == "" {
		h.Set(obs.TraceIDHeader, t.ctx.TraceID)
	}
	h.Set(obs.RouterMicrosHeader, strconv.FormatFloat(obs.FormatDurationMicros(time.Since(start)), 'f', 1, 64))
	h.Set(obs.AttemptsHeader, strconv.Itoa(attempts))
}

// offerExemplar records the finished request in the slow-request top-K ring.
func (t *routerTrace) offerExemplar(r *Router, owner string, start time.Time, attempts int) {
	if t == nil {
		return
	}
	r.exemplars.Offer(obs.Exemplar{
		TraceID:        t.ctx.TraceID,
		Stream:         t.stream,
		Owner:          owner,
		Proto:          t.proto,
		Attempts:       attempts,
		StartUnixNano:  start.UnixNano(),
		DurationMicros: obs.FormatDurationMicros(time.Since(start)),
	})
}

// handleClusterMetrics federates metrics: the router's own registry plus a
// /v1/metrics scrape of every in-ring worker, merged into one Prometheus
// exposition in which each worker's series carry a worker="<addr>" label
// (router-local series stay unlabeled; see obs.MergeExpositions for the
// merge rules). A worker that fails mid-scrape is skipped — federation
// degrades to the reachable subset rather than failing the whole scrape.
func (r *Router) handleClusterMetrics(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		r.writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	var local strings.Builder
	if err := r.reg.WritePrometheus(&local); err != nil {
		r.writeError(w, http.StatusInternalServerError, "metrics render failed")
		return
	}
	parts := []obs.ExpositionPart{{Text: local.String()}}
	for _, addr := range r.ringMembers() {
		text, ok := r.scrapeWorker(req, addr, "/v1/metrics")
		if !ok {
			continue
		}
		parts = append(parts, obs.ExpositionPart{Worker: addr, Text: text})
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := obs.MergeExpositions(w, parts); err != nil {
		log.Printf("dist: cluster metrics write failed: %v", err)
	}
}

// handleClusterTrace assembles every span of one trace: the router's
// per-attempt spans plus each in-ring worker's /v1/spans?id= records,
// sorted by start time — the cluster-wide view of one request's life.
func (r *Router) handleClusterTrace(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		r.writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	id := req.URL.Query().Get("id")
	if id == "" {
		r.writeError(w, http.StatusBadRequest, "id query parameter is required")
		return
	}
	spans := r.spans.ByTrace(id)
	for _, addr := range r.ringMembers() {
		text, ok := r.scrapeWorker(req, addr, "/v1/spans?id="+url.QueryEscape(id))
		if !ok {
			continue
		}
		var ws []obs.Span
		if err := json.Unmarshal([]byte(text), &ws); err != nil {
			continue
		}
		spans = append(spans, ws...)
	}
	sort.SliceStable(spans, func(i, j int) bool {
		return spans[i].StartUnixNano < spans[j].StartUnixNano
	})
	w.Header().Set("Content-Type", "application/json")
	if err := obs.WriteSpansJSON(w, spans); err != nil {
		log.Printf("dist: cluster trace write failed: %v", err)
	}
}

// handleClusterEvents serves the cluster timeline, one JSON event per line
// (oldest first); ?n=K limits to the newest K events.
func (r *Router) handleClusterEvents(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		r.writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	n := 0
	if q := req.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			r.writeError(w, http.StatusBadRequest, "n must be a non-negative integer")
			return
		}
		n = v
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	if err := r.events.WriteJSONL(w, n); err != nil {
		log.Printf("dist: cluster events write failed: %v", err)
	}
}

// handleClusterExemplars serves the slowest requests seen so far (slowest
// first), each carrying the trace id to follow via /v1/cluster/trace.
func (r *Router) handleClusterExemplars(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		r.writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, r.exemplars.TopK())
}

// ringMembers snapshots the healthy worker set.
func (r *Router) ringMembers() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.members()
}

// scrapeWorker GETs one observability URI from a worker under the probe
// timeout, returning the body text; ok is false on any transport or
// non-200 failure.
func (r *Router) scrapeWorker(req *http.Request, addr, uri string) (string, bool) {
	resp, err := r.do(req.Context(), r.cfg.ProbeTimeout, addr, http.MethodGet, uri, nil, nil)
	if err != nil {
		return "", false
	}
	body, err := io.ReadAll(resp.Body)
	code := resp.StatusCode
	resp.Body.Close()
	if err != nil || code != http.StatusOK {
		return "", false
	}
	return string(body), true
}
