package dist

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAcrossJoinOrder(t *testing.T) {
	// Two rings built with the same workers in different join orders must
	// agree on every placement: a router restart (which re-adds workers in
	// config order) must not itself be a rebalance.
	a := newRing(64)
	b := newRing(64)
	workers := []string{"10.0.0.1:9001", "10.0.0.2:9001", "10.0.0.3:9001"}
	for _, w := range workers {
		a.add(w)
	}
	for i := len(workers) - 1; i >= 0; i-- {
		b.add(workers[i])
	}
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("stream-%d", i)
		oa, _ := a.ownerOf(id)
		ob, _ := b.ownerOf(id)
		if oa != ob {
			t.Fatalf("stream %q: join-order dependent placement %q vs %q", id, oa, ob)
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	r := newRing(8)
	if _, ok := r.ownerOf("x"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	r.add("w1")
	for i := 0; i < 50; i++ {
		owner, ok := r.ownerOf(fmt.Sprintf("s%d", i))
		if !ok || owner != "w1" {
			t.Fatalf("single-worker ring routed s%d to %q (ok=%v)", i, owner, ok)
		}
	}
}

func TestRingBalance(t *testing.T) {
	// With 64 vnodes per worker no worker should own a wildly
	// disproportionate share: assert every worker gets between half and
	// double its fair share over 4000 ids.
	r := newRing(DefaultVNodes)
	n := 4
	for i := 0; i < n; i++ {
		r.add(fmt.Sprintf("w%d", i))
	}
	counts := map[string]int{}
	total := 4000
	for i := 0; i < total; i++ {
		owner, _ := r.ownerOf(fmt.Sprintf("stream-%d", i))
		counts[owner]++
	}
	fair := total / n
	for w, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Errorf("worker %s owns %d of %d ids (fair share %d): imbalance too large", w, c, total, fair)
		}
	}
	if len(counts) != n {
		t.Errorf("only %d of %d workers own any ids", len(counts), n)
	}
}

func TestRingRemoveMovesOnlyVictimStreams(t *testing.T) {
	// Consistent hashing's defining property: removing one worker must not
	// move any stream that was NOT on the removed worker.
	r := newRing(DefaultVNodes)
	for i := 0; i < 4; i++ {
		r.add(fmt.Sprintf("w%d", i))
	}
	before := map[string]string{}
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("stream-%d", i)
		before[id], _ = r.ownerOf(id)
	}
	r.remove("w2")
	moved, stayed := 0, 0
	for id, prev := range before {
		now, ok := r.ownerOf(id)
		if !ok {
			t.Fatalf("ring empty after removing one of four workers")
		}
		if prev == "w2" {
			if now == "w2" {
				t.Fatalf("stream %q still routed to removed worker", id)
			}
			moved++
			continue
		}
		if now != prev {
			t.Errorf("stream %q moved %q → %q although its owner survived", id, prev, now)
		}
		stayed++
	}
	if moved == 0 {
		t.Fatal("no streams lived on the removed worker; test is vacuous")
	}
	t.Logf("removal moved %d streams, left %d in place", moved, stayed)

	// Re-adding restores the exact previous placement (rebuild is
	// deterministic, not incremental).
	r.add("w2")
	for id, prev := range before {
		if now, _ := r.ownerOf(id); now != prev {
			t.Fatalf("stream %q: %q → %q after remove+re-add", id, prev, now)
		}
	}
}
