package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"freewayml/internal/obs"
)

// Defaults for the failure model. They are deliberately conservative: a
// worker is ejected only after FailThreshold consecutive failures (one lost
// packet must not trigger a cluster rebalance), and rejoins only after it
// has been continuously probed healthy past the cooldown.
const (
	DefaultFailThreshold  = 3
	DefaultCooldown       = 5 * time.Second
	DefaultProbeInterval  = 1 * time.Second
	DefaultProbeTimeout   = 2 * time.Second
	DefaultRequestTimeout = 15 * time.Second
	DefaultRetries        = 4
	DefaultRetryBase      = 25 * time.Millisecond
	DefaultRetryMax       = 2 * time.Second
	DefaultMaxBodyBytes   = 8 << 20
)

// Defaults for the observability rings. The span ring is sized for a few
// seconds of peak traffic (one span per forward attempt); the event ring for
// days of breaker/migration churn; the exemplar ring for a dashboard-sized
// top-K.
const (
	DefaultSpanCap   = 4096
	DefaultEventCap  = 1024
	DefaultExemplarK = 32
)

// Config configures a Router.
type Config struct {
	// Workers is the initial worker set (host:port each). At least one is
	// required; all start healthy and are probed from the first tick.
	Workers []string
	// VNodes is the virtual-node count per worker (0 = DefaultVNodes).
	VNodes int

	// FailThreshold is how many consecutive failures (forwarded requests or
	// probes) open a worker's circuit breaker and eject it from the ring.
	FailThreshold int
	// Cooldown is how long an ejected worker must stay out before a
	// successful probe readmits it.
	Cooldown time.Duration
	// ProbeInterval is the health-probe period; ProbeTimeout bounds each
	// probe (and each migration evict call).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration

	// RequestTimeout bounds each forward attempt; Retries is how many times
	// a failed attempt is retried (against the then-current owner, so a
	// retry after an ejection lands on the new owner). Backoff between
	// attempts is exponential from RetryBase, capped at RetryMax, with
	// half-interval jitter.
	RequestTimeout time.Duration
	Retries        int
	RetryBase      time.Duration
	RetryMax       time.Duration

	// MaxBody caps forwarded request bodies (<= 0 selects the default).
	MaxBody int64

	// AntiEntropy, when true, synchronizes the shared knowledge store of a
	// rejoining worker from a healthy peer (GET /v1/knowledge on the peer,
	// POST /v1/knowledge/merge on the rejoined worker) so knowledge
	// preserved while the worker was out is not lost to it.
	AntiEntropy bool
	// AntiEntropyInterval, when > 0, additionally runs a periodic
	// cluster-wide knowledge sweep (see AntiEntropySweep) on that period —
	// reconciling divergence that accumulates *without* any worker leaving
	// the ring, e.g. regimes preserved on one worker after a stream
	// migrated. Zero disables the sweeps (rejoin sync alone, as before).
	AntiEntropyInterval time.Duration

	// SpanCap bounds the router's per-attempt span ring; EventCap the
	// cluster timeline ring; ExemplarK the slow-request top-K ring
	// (<= 0 selects the defaults).
	SpanCap   int
	EventCap  int
	ExemplarK int

	// DisableTracing turns off trace minting, span recording, exemplars,
	// and the per-hop response headers on the forward path. The rings and
	// /v1/cluster endpoints still exist (they just stay empty), so the flag
	// is a pure data valve — used to measure tracing overhead.
	DisableTracing bool

	// Seed makes the retry jitter deterministic (0 = 1).
	Seed int64

	// Registry receives the router's metrics (nil builds a private one).
	Registry *obs.Registry
	// Transport performs the actual round trips — the seam the chaos
	// harness wraps (nil = http.DefaultTransport).
	Transport http.RoundTripper
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.VNodes <= 0 {
		out.VNodes = DefaultVNodes
	}
	if out.FailThreshold <= 0 {
		out.FailThreshold = DefaultFailThreshold
	}
	if out.Cooldown < 0 {
		out.Cooldown = DefaultCooldown
	}
	if out.ProbeInterval <= 0 {
		out.ProbeInterval = DefaultProbeInterval
	}
	if out.ProbeTimeout <= 0 {
		out.ProbeTimeout = DefaultProbeTimeout
	}
	if out.RequestTimeout <= 0 {
		out.RequestTimeout = DefaultRequestTimeout
	}
	if out.Retries < 0 {
		out.Retries = DefaultRetries
	}
	if out.RetryBase <= 0 {
		out.RetryBase = DefaultRetryBase
	}
	if out.RetryMax <= 0 {
		out.RetryMax = DefaultRetryMax
	}
	if out.MaxBody <= 0 {
		out.MaxBody = DefaultMaxBodyBytes
	}
	if out.SpanCap <= 0 {
		out.SpanCap = DefaultSpanCap
	}
	if out.EventCap <= 0 {
		out.EventCap = DefaultEventCap
	}
	if out.ExemplarK <= 0 {
		out.ExemplarK = DefaultExemplarK
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	return out
}

// workerState is one worker's view in the router: its breaker (healthy ↔
// ejected) and the consecutive-failure count that drives it.
type workerState struct {
	addr        string
	healthy     bool
	consecFails int
	ejectedAt   time.Time

	// inflight counts forward attempts currently outstanding against this
	// worker; atomic because it is touched outside r.mu on the hot path.
	inflight atomic.Int64

	gHealthy   *obs.Gauge
	gInflight  *obs.Gauge
	cFailures  *obs.Counter
	cProbeFail *obs.Counter
	cForwards  *obs.Counter
	hForward   *obs.Histogram
}

// Router is the stateless routing tier: it owns no stream state, only the
// ring, the per-worker breakers, and a map of which worker each stream id
// was last routed to (so a ring change knows which streams moved). Safe for
// concurrent use.
type Router struct {
	cfg    Config
	client *http.Client
	reg    *obs.Registry
	mux    *http.ServeMux

	mu      sync.Mutex
	ring    *ring
	workers map[string]*workerState
	streams map[string]string // stream id → worker it was last routed to

	rngMu sync.Mutex
	rng   *rand.Rand

	stop    chan struct{}
	bg      sync.WaitGroup
	started atomic.Bool
	closed  atomic.Bool

	cRequests   *obs.Counter
	cRetries    *obs.Counter
	cExhausted  *obs.Counter
	cEjections  *obs.Counter
	cRejoins    *obs.Counter
	cMigrations *obs.Counter
	cEvictOK    *obs.Counter
	cEvictFail  *obs.Counter
	cFlushOK    *obs.Counter
	cFlushFail  *obs.Counter
	cSyncOK     *obs.Counter
	cSyncFail   *obs.Counter
	hLatency    *obs.Histogram

	// bytesIn/bytesOut count proxied request/response body bytes, keyed by
	// wire proto ("json" or "binary").
	bytesIn  map[string]*obs.Counter
	bytesOut map[string]*obs.Counter

	spans     *obs.SpanRing
	events    *obs.EventRing
	exemplars *obs.ExemplarRing
}

// NewRouter builds a router over the given workers. The prober is not
// running until Start; tests drive ProbeOnce directly instead.
func NewRouter(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return nil, errors.New("dist: at least one worker is required")
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	transport := cfg.Transport
	if transport == nil {
		transport = http.DefaultTransport
	}
	rt := &Router{
		cfg:     cfg,
		client:  &http.Client{Transport: transport},
		reg:     reg,
		mux:     http.NewServeMux(),
		ring:    newRing(cfg.VNodes),
		workers: map[string]*workerState{},
		streams: map[string]string{},
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		stop:    make(chan struct{}),

		cRequests:   reg.Counter("freeway_router_requests_total", "Requests accepted by the router."),
		cRetries:    reg.Counter("freeway_router_retries_total", "Forward attempts retried after a failure."),
		cExhausted:  reg.Counter("freeway_router_exhausted_total", "Requests that failed every retry (502 to the client)."),
		cEjections:  reg.Counter("freeway_router_ejections_total", "Workers ejected by the circuit breaker."),
		cRejoins:    reg.Counter("freeway_router_rejoins_total", "Ejected workers readmitted after cooldown."),
		cMigrations: reg.Counter("freeway_router_migrations_total", "Streams whose owner changed on a ring change."),
		cEvictOK:    reg.Counter("freeway_router_migrate_evicts_total", "Checkpoint-on-migrate evict calls, by result.", "result", "ok"),
		cEvictFail:  reg.Counter("freeway_router_migrate_evicts_total", "Checkpoint-on-migrate evict calls, by result.", "result", "error"),
		cFlushOK:    reg.Counter("freeway_router_stale_flush_total", "No-checkpoint discards of stale sessions on a stream's new owner, by result.", "result", "ok"),
		cFlushFail:  reg.Counter("freeway_router_stale_flush_total", "No-checkpoint discards of stale sessions on a stream's new owner, by result.", "result", "error"),
		cSyncOK:     reg.Counter("freeway_router_antientropy_total", "Shared-knowledge anti-entropy syncs on rejoin, by result.", "result", "ok"),
		cSyncFail:   reg.Counter("freeway_router_antientropy_total", "Shared-knowledge anti-entropy syncs on rejoin, by result.", "result", "error"),
		hLatency:    reg.Histogram("freeway_router_request_seconds", "End-to-end routed request latency.", nil),

		bytesIn:   map[string]*obs.Counter{},
		bytesOut:  map[string]*obs.Counter{},
		spans:     obs.NewSpanRing(cfg.SpanCap),
		events:    obs.NewEventRing(cfg.EventCap),
		exemplars: obs.NewExemplarRing(cfg.ExemplarK),
	}
	const proxyBytesHelp = "Request/response body bytes proxied through the router, by direction and wire proto."
	for _, proto := range []string{protoJSON, protoBinary} {
		rt.bytesIn[proto] = reg.Counter("freeway_router_proxy_bytes_total", proxyBytesHelp, "direction", "in", "proto", proto)
		rt.bytesOut[proto] = reg.Counter("freeway_router_proxy_bytes_total", proxyBytesHelp, "direction", "out", "proto", proto)
	}
	for _, addr := range cfg.Workers {
		if addr == "" {
			return nil, errors.New("dist: empty worker address")
		}
		if _, dup := rt.workers[addr]; dup {
			return nil, fmt.Errorf("dist: duplicate worker %q", addr)
		}
		rt.workers[addr] = &workerState{
			addr:       addr,
			healthy:    true,
			gHealthy:   reg.Gauge("freeway_router_worker_healthy", "1 when the worker is in the ring, 0 when ejected.", "worker", addr),
			gInflight:  reg.Gauge("freeway_router_worker_inflight", "Forward attempts currently outstanding, per worker.", "worker", addr),
			cFailures:  reg.Counter("freeway_router_worker_failures_total", "Failed forward attempts and probes, per worker.", "worker", addr),
			cProbeFail: reg.Counter("freeway_router_probe_failures_total", "Failed health probes, per worker.", "worker", addr),
			cForwards:  reg.Counter("freeway_router_worker_forwards_total", "Forward attempts sent, per worker.", "worker", addr),
			hForward:   reg.Histogram("freeway_router_worker_request_seconds", "Per-attempt forward latency, per worker.", nil, "worker", addr),
		}
		rt.workers[addr].gHealthy.Set(1)
		rt.ring.add(addr)
	}

	rt.mux.HandleFunc("/v1/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("/v1/readyz", rt.handleReadyz)
	rt.mux.HandleFunc("/v1/metrics", rt.handleMetrics)
	rt.mux.HandleFunc("/v1/cluster", rt.handleCluster)
	rt.mux.HandleFunc("/v1/cluster/metrics", rt.handleClusterMetrics)
	rt.mux.HandleFunc("/v1/cluster/trace", rt.handleClusterTrace)
	rt.mux.HandleFunc("/v1/cluster/events", rt.handleClusterEvents)
	rt.mux.HandleFunc("/v1/cluster/exemplars", rt.handleClusterExemplars)
	rt.mux.HandleFunc("/v1/streams", rt.handleStreams)
	rt.mux.HandleFunc("/v1/streams/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/v1/streams/")
		id, _, _ := strings.Cut(rest, "/")
		rt.forward(w, r, id)
	})
	// Legacy single-stream aliases route to the worker owning "default".
	for _, p := range []string{"/v1/process", "/v1/stats", "/v1/trace"} {
		rt.mux.HandleFunc(p, func(w http.ResponseWriter, r *http.Request) {
			rt.forward(w, r, "default")
		})
	}
	return rt, nil
}

// Registry returns the router's metrics registry.
func (r *Router) Registry() *obs.Registry { return r.reg }

// Start launches the background prober and, when configured, the periodic
// anti-entropy sweeper. Close stops both.
func (r *Router) Start() {
	if !r.started.CompareAndSwap(false, true) {
		return
	}
	r.bg.Add(1)
	go func() {
		defer r.bg.Done()
		t := time.NewTicker(r.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-t.C:
				r.ProbeOnce()
			}
		}
	}()
	if r.cfg.AntiEntropyInterval > 0 {
		r.bg.Add(1)
		go func() {
			defer r.bg.Done()
			t := time.NewTicker(r.cfg.AntiEntropyInterval)
			defer t.Stop()
			for {
				select {
				case <-r.stop:
					return
				case <-t.C:
					r.AntiEntropySweep()
				}
			}
		}()
	}
}

// Close stops the prober. Idempotent.
func (r *Router) Close() error {
	if !r.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(r.stop)
	r.bg.Wait()
	return nil
}

// ServeHTTP implements http.Handler.
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	r.mux.ServeHTTP(w, req)
}

// ownerFor resolves the current owner of a stream id and records the
// routing decision so a later ring change knows the stream lived there.
func (r *Router) ownerFor(id string) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	owner, ok := r.ring.ownerOf(id)
	if ok {
		r.streams[id] = owner
	}
	return owner, ok
}

// forward routes one request for stream id: resolve the owner, forward with
// a per-attempt deadline, and on failure back off and retry against the
// then-current owner — which, after the breaker ejects the original worker,
// is the stream's new home. A 503 from a worker (draining or not ready)
// counts as a failure and is retried elsewhere; every other status is the
// worker's answer and is relayed as-is.
//
// Tracing: the request's trace context comes from its traceparent header
// (client-minted) or is minted here, and every attempt records one
// "router.forward" span whose span id becomes the traceparent sent
// downstream — so the worker's span parents to the exact attempt that
// reached it, and a retried request shows one span per attempt under a
// single trace id.
func (r *Router) forward(w http.ResponseWriter, req *http.Request, id string) {
	r.cRequests.Inc()
	start := time.Now()
	defer func() { r.hLatency.Observe(time.Since(start).Seconds()) }()
	proto := protoOf(req.Header.Get("Content-Type"))

	req.Body = http.MaxBytesReader(w, req.Body, r.cfg.MaxBody)
	body, err := io.ReadAll(req.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			r.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		r.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request: %v", err))
		return
	}
	r.bytesIn[proto].Add(int64(len(body)))

	tr := r.beginTrace(req, id, proto)
	var lastErr error
	attempts := 0
	for attempt := 0; attempt <= r.cfg.Retries; attempt++ {
		attempts = attempt + 1
		var backoff time.Duration
		if attempt > 0 {
			r.cRetries.Inc()
			backoff = r.backoff(attempt - 1)
			if err := sleepCtx(req.Context(), backoff); err != nil {
				lastErr = err
				break
			}
		}
		owner, ok := r.ownerFor(id)
		if !ok {
			lastErr = errors.New("no healthy workers in the ring")
			continue
		}
		hop := tr.beginAttempt(req, owner, attempt, backoff)
		ws := r.workerFor(owner)
		if ws != nil {
			ws.gInflight.Set(float64(ws.inflight.Add(1)))
			ws.cForwards.Inc()
		}
		attemptStart := time.Now()
		resp, err := r.do(req.Context(), r.cfg.RequestTimeout, owner, req.Method,
			req.URL.RequestURI(), req.Header, body)
		if ws != nil {
			ws.gInflight.Set(float64(ws.inflight.Add(-1)))
			ws.hForward.Observe(time.Since(attemptStart).Seconds())
		}
		if err != nil {
			lastErr = fmt.Errorf("worker %s: %w", owner, err)
			r.noteFailure(owner, tr.id())
			hop.finish(r.breakerState(owner), lastErr)
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			resp.Body.Close()
			lastErr = fmt.Errorf("worker %s: status 503", owner)
			r.noteFailure(owner, tr.id())
			hop.finish(r.breakerState(owner), lastErr)
			continue
		}
		r.noteSuccess(owner)
		hop.finish("closed", nil)
		tr.setHeaders(w.Header(), resp.Header, start, attempts)
		n := relay(w, resp)
		r.bytesOut[proto].Add(n)
		tr.offerExemplar(r, owner, start, attempts)
		return
	}
	r.cExhausted.Inc()
	tr.setHeaders(w.Header(), nil, start, attempts)
	tr.offerExemplar(r, "", start, attempts)
	r.writeError(w, http.StatusBadGateway,
		fmt.Sprintf("stream %q: all %d attempts failed: %v", id, r.cfg.Retries+1, lastErr))
}

// workerFor returns the breaker state record for a worker address.
func (r *Router) workerFor(addr string) *workerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.workers[addr]
}

// breakerState reports a worker's breaker as "closed" (in the ring) or
// "open" (ejected) — the per-attempt span annotation.
func (r *Router) breakerState(addr string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ws, ok := r.workers[addr]; ok && ws.healthy {
		return "closed"
	}
	return "open"
}

// hopByHop lists the RFC 9110 connection-scoped headers a proxy must not
// forward; everything else passes through in both directions, so opaque
// payloads (the binary batch format, future content types) route untouched.
var hopByHop = map[string]struct{}{
	"Connection": {}, "Keep-Alive": {}, "Proxy-Authenticate": {},
	"Proxy-Authorization": {}, "Te": {}, "Trailer": {},
	"Transfer-Encoding": {}, "Upgrade": {},
}

// jsonHeader is the header set of the router's own JSON control calls.
var jsonHeader = http.Header{"Content-Type": []string{"application/json"}}

// copyHeaders copies every non-hop-by-hop header from src into dst,
// preserving multi-valued headers.
func copyHeaders(dst, src http.Header) {
	for k, vs := range src {
		if _, skip := hopByHop[http.CanonicalHeaderKey(k)]; skip {
			continue
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// do performs one HTTP round trip to a worker with its own deadline,
// forwarding hdr (nil for the router's own control calls) minus the
// hop-by-hop set. The response body is the caller's to close.
func (r *Router) do(parent context.Context, timeout time.Duration, worker, method, uri string, hdr http.Header, body []byte) (*http.Response, error) {
	ctx, cancel := context.WithTimeout(parent, timeout)
	req, err := http.NewRequestWithContext(ctx, method, "http://"+worker+uri, bytes.NewReader(body))
	if err != nil {
		cancel()
		return nil, err
	}
	if hdr != nil {
		copyHeaders(req.Header, hdr)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

// cancelBody releases the attempt's context when the response body is
// closed (the context must outlive the body read).
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// relay copies a worker response to the client: status, every
// non-hop-by-hop header, and the body byte-for-byte. Returns the body
// bytes written toward the client (for the proxy-bytes counters).
func relay(w http.ResponseWriter, resp *http.Response) int64 {
	defer resp.Body.Close()
	copyHeaders(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	n, err := io.Copy(w, resp.Body)
	if err != nil {
		log.Printf("dist: relay body: %v", err)
	}
	return n
}

// backoff returns the delay before retry n (0-based): exponential from
// RetryBase, capped at RetryMax, with jitter uniform over the upper half so
// synchronized retries from concurrent clients spread out.
func (r *Router) backoff(n int) time.Duration {
	d := r.cfg.RetryBase
	for i := 0; i < n && d < r.cfg.RetryMax; i++ {
		d *= 2
	}
	if d > r.cfg.RetryMax {
		d = r.cfg.RetryMax
	}
	r.rngMu.Lock()
	j := time.Duration(r.rng.Int63n(int64(d)/2 + 1))
	r.rngMu.Unlock()
	return d/2 + j
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// noteSuccess resets a worker's consecutive-failure count.
func (r *Router) noteSuccess(addr string) {
	r.mu.Lock()
	if ws, ok := r.workers[addr]; ok && ws.healthy {
		ws.consecFails = 0
	}
	r.mu.Unlock()
}

// noteFailure records one failed attempt against a worker and, at the
// breaker threshold, ejects it: the worker leaves the ring, and every
// stream last routed to it is migrated (best-effort checkpoint-on-evict on
// the old owner — it may be dead, in which case the new owner restores from
// the shared checkpoint directory instead). traceID, when non-empty, is the
// trace of the request whose failure advanced the breaker; it annotates the
// breaker_open timeline event so an operator can jump from the ejection to
// the request that triggered it.
func (r *Router) noteFailure(addr, traceID string) {
	r.mu.Lock()
	ws, ok := r.workers[addr]
	if !ok || !ws.healthy {
		r.mu.Unlock()
		return
	}
	ws.cFailures.Inc()
	ws.consecFails++
	if ws.consecFails < r.cfg.FailThreshold {
		r.mu.Unlock()
		return
	}
	ws.healthy = false
	ws.ejectedAt = time.Now()
	ws.gHealthy.Set(0)
	r.ring.remove(addr)
	r.cEjections.Inc()
	moved := r.movedStreamsLocked()
	r.mu.Unlock()

	r.recordEvent(obs.ClusterEvent{
		Type: obs.EventBreakerOpen, Worker: addr, TraceID: traceID,
		Detail: fmt.Sprintf("ejected after %d consecutive failures; %d streams to migrate", ws.consecFails, len(moved)),
	})
	log.Printf("dist: worker %s ejected after %d consecutive failures (%d streams to migrate)", addr, ws.consecFails, len(moved))
	r.migrate(moved, traceID)
}

// movedStream records one stream's migration: the worker it was last
// routed to and the worker the ring maps it to now ("" when the ring is
// empty).
type movedStream struct {
	prev, next string
}

// movedStreamsLocked returns the migration plan for every tracked stream
// whose ring owner changed, and forgets them (the next request re-records
// the new owner). Callers hold r.mu.
func (r *Router) movedStreamsLocked() map[string]movedStream {
	moved := map[string]movedStream{}
	for id, prev := range r.streams {
		now, ok := r.ring.ownerOf(id)
		if !ok || now != prev {
			mv := movedStream{prev: prev}
			if ok {
				mv.next = now
			}
			moved[id] = mv
			delete(r.streams, id)
		}
	}
	return moved
}

// migrate runs the two-step handover for each moved stream. First the
// previous owner is checkpoint-and-evicted — best-effort: an unreachable
// owner (the crash case) fails fast and the stream's state comes from its
// last periodic checkpoint in the shared directory instead. Then any
// session still resident on the NEW owner is discarded without a
// checkpoint: a rejoined worker may hold the stream's pre-ejection state in
// memory, and since restore-from-checkpoint happens only at session
// creation, that stale session would otherwise resume silently — and a
// checkpointing evict there would clobber the fresh envelope just written
// by step one.
func (r *Router) migrate(moved map[string]movedStream, traceID string) {
	for id, mv := range moved {
		r.cMigrations.Inc()
		evicted := r.evictStream(mv.prev, id, true)
		if evicted {
			r.cEvictOK.Inc()
		} else {
			r.cEvictFail.Inc()
		}
		r.recordEvent(obs.ClusterEvent{
			Type: obs.EventMigration, Worker: mv.next, Stream: id, TraceID: traceID,
			Detail: fmt.Sprintf("from %s (checkpoint evict %s)", mv.prev, okErr(evicted)),
		})
		if mv.next != "" && mv.next != mv.prev {
			flushed := r.evictStream(mv.next, id, false)
			if flushed {
				r.cFlushOK.Inc()
			} else {
				r.cFlushFail.Inc()
			}
			if flushed {
				r.recordEvent(obs.ClusterEvent{
					Type: obs.EventStaleFlush, Worker: mv.next, Stream: id, TraceID: traceID,
					Detail: "stale resident session discarded on new owner",
				})
			}
			// The new owner restores the stream at next session creation:
			// from the fresh evict checkpoint when step one reached the old
			// owner, else from the last periodic checkpoint.
			source := "fresh evict checkpoint"
			if !evicted {
				source = "last periodic checkpoint (previous owner unreachable)"
			}
			r.recordEvent(obs.ClusterEvent{
				Type: obs.EventRestore, Worker: mv.next, Stream: id, TraceID: traceID,
				Detail: "next session restores from " + source,
			})
		}
	}
}

func okErr(ok bool) string {
	if ok {
		return "ok"
	}
	return "failed"
}

// evictStream POSTs one evict call; checkpoint=false asks the worker to
// discard the session without a final snapshot.
func (r *Router) evictStream(addr, id string, checkpoint bool) bool {
	uri := "/v1/streams/" + id + "/evict"
	if !checkpoint {
		uri += "?checkpoint=false"
	}
	resp, err := r.do(context.Background(), r.cfg.ProbeTimeout, addr, http.MethodPost, uri, nil, nil)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	code := resp.StatusCode
	resp.Body.Close()
	return code == http.StatusOK
}

// ProbeOnce probes every worker's /v1/healthz once: failures advance the
// breaker exactly like failed forwards; a success past the cooldown
// readmits an ejected worker (rebalancing the streams that move back, this
// time with the old owner reachable for a clean checkpoint-on-migrate).
// Exported so tests drive the failure model deterministically; Start calls
// it on a ticker.
func (r *Router) ProbeOnce() {
	r.mu.Lock()
	addrs := make([]string, 0, len(r.workers))
	for addr := range r.workers {
		addrs = append(addrs, addr)
	}
	r.mu.Unlock()

	for _, addr := range addrs {
		resp, err := r.do(context.Background(), r.cfg.ProbeTimeout, addr,
			http.MethodGet, "/v1/healthz", nil, nil)
		healthy := false
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			healthy = resp.StatusCode == http.StatusOK
			resp.Body.Close()
		}
		if !healthy {
			r.mu.Lock()
			if ws, ok := r.workers[addr]; ok {
				ws.cProbeFail.Inc()
			}
			r.mu.Unlock()
			r.noteFailure(addr, "")
			continue
		}
		r.noteProbeOK(addr)
	}
}

// noteProbeOK clears failures on a healthy worker and readmits an ejected
// one whose cooldown has passed.
func (r *Router) noteProbeOK(addr string) {
	r.mu.Lock()
	ws, ok := r.workers[addr]
	if !ok {
		r.mu.Unlock()
		return
	}
	if ws.healthy {
		ws.consecFails = 0
		r.mu.Unlock()
		return
	}
	if time.Since(ws.ejectedAt) < r.cfg.Cooldown {
		r.mu.Unlock()
		return
	}
	ws.healthy = true
	ws.consecFails = 0
	ws.gHealthy.Set(1)
	r.ring.add(addr)
	r.cRejoins.Inc()
	moved := r.movedStreamsLocked()
	peer := ""
	for _, other := range r.ring.members() {
		if other != addr {
			peer = other
			break
		}
	}
	r.mu.Unlock()

	r.recordEvent(obs.ClusterEvent{
		Type: obs.EventBreakerClose, Worker: addr,
		Detail: fmt.Sprintf("rejoined after cooldown; %d streams to migrate back", len(moved)),
	})
	log.Printf("dist: worker %s rejoined the ring (%d streams to migrate back)", addr, len(moved))
	r.migrate(moved, "")
	if r.cfg.AntiEntropy && peer != "" {
		r.antiEntropy(peer, addr)
	}
}

// antiEntropy copies the shared knowledge store of a healthy peer onto a
// rejoined worker (export → merge), so regimes preserved while the worker
// was out of the ring are matchable there too. Best-effort: a worker
// without a shared store answers 409 and the sync is skipped.
func (r *Router) antiEntropy(from, to string) {
	fail := func(detail string) {
		r.cSyncFail.Inc()
		r.recordEvent(obs.ClusterEvent{Type: obs.EventAntiEntropy, Worker: to, Detail: detail})
	}
	body, err := r.exportKnowledge(from)
	if err != nil {
		fail(fmt.Sprintf("export from %s failed: %v", from, err))
		log.Printf("dist: anti-entropy export from %s: %v", from, err)
		return
	}
	if err := r.mergeKnowledge(to, body); err != nil {
		fail(fmt.Sprintf("merge failed: %v", err))
		log.Printf("dist: anti-entropy merge into %s: %v", to, err)
		return
	}
	r.cSyncOK.Inc()
	r.recordEvent(obs.ClusterEvent{
		Type: obs.EventAntiEntropy, Worker: to,
		Detail: "shared knowledge synced from " + from,
	})
}

// exportKnowledge fetches a worker's shared knowledge store export.
func (r *Router) exportKnowledge(from string) ([]byte, error) {
	resp, err := r.do(context.Background(), r.cfg.RequestTimeout, from,
		http.MethodGet, "/v1/knowledge", nil, nil)
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	code := resp.StatusCode
	resp.Body.Close()
	if err != nil || code != http.StatusOK {
		return nil, fmt.Errorf("status %d err %v", code, err)
	}
	return body, nil
}

// mergeKnowledge posts an exported knowledge store into a worker's shared
// store.
func (r *Router) mergeKnowledge(to string, body []byte) error {
	resp, err := r.do(context.Background(), r.cfg.RequestTimeout, to,
		http.MethodPost, "/v1/knowledge/merge", jsonHeader, body)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	code := resp.StatusCode
	resp.Body.Close()
	if code != http.StatusOK {
		return fmt.Errorf("status %d", code)
	}
	return nil
}

// AntiEntropySweep runs one cluster-wide knowledge reconciliation pass:
// every healthy ring member's shared store is exported once, then each
// export is merged into every *other* member. Merge is monotone (regimes
// are keyed and deduplicated worker-side), so one sweep converges the
// cluster regardless of which member learned what — closing the divergence
// window that rejoin-only sync leaves open when no worker ever left the
// ring. Best-effort per edge: an unreachable member is skipped this round
// and caught by the next tick. Exported so tests drive sweeps
// deterministically; Start runs it on AntiEntropyInterval.
func (r *Router) AntiEntropySweep() {
	r.mu.Lock()
	members := r.ring.members()
	r.mu.Unlock()
	if len(members) < 2 {
		return
	}
	exports := make(map[string][]byte, len(members))
	for _, addr := range members {
		body, err := r.exportKnowledge(addr)
		if err != nil {
			log.Printf("dist: anti-entropy sweep export from %s: %v", addr, err)
			continue
		}
		exports[addr] = body
	}
	merged, failed := 0, 0
	for _, to := range members {
		for _, from := range members {
			if from == to || exports[from] == nil {
				continue
			}
			if err := r.mergeKnowledge(to, exports[from]); err != nil {
				failed++
				r.cSyncFail.Inc()
				log.Printf("dist: anti-entropy sweep merge %s -> %s: %v", from, to, err)
				continue
			}
			merged++
			r.cSyncOK.Inc()
		}
	}
	if merged > 0 || failed > 0 {
		r.recordEvent(obs.ClusterEvent{
			Type:   obs.EventAntiEntropy,
			Detail: fmt.Sprintf("periodic sweep: %d merges ok, %d failed across %d members", merged, failed, len(members)),
		})
	}
}

// ClusterWorker is one worker's row in the /v1/cluster topology report.
type ClusterWorker struct {
	Addr             string  `json:"addr"`
	Healthy          bool    `json:"healthy"`
	ConsecutiveFails int     `json:"consecutive_fails"`
	EjectedForS      float64 `json:"ejected_for_s,omitempty"`
}

// ClusterResponse is the /v1/cluster body.
type ClusterResponse struct {
	Workers       []ClusterWorker `json:"workers"`
	HealthyCount  int             `json:"healthy_count"`
	TrackedStream int             `json:"tracked_streams"`
}

func (r *Router) handleCluster(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		r.writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	r.mu.Lock()
	out := ClusterResponse{TrackedStream: len(r.streams)}
	for _, addr := range sortedKeys(r.workers) {
		ws := r.workers[addr]
		cw := ClusterWorker{Addr: addr, Healthy: ws.healthy, ConsecutiveFails: ws.consecFails}
		if !ws.healthy {
			cw.EjectedForS = time.Since(ws.ejectedAt).Seconds()
		} else {
			out.HealthyCount++
		}
		out.Workers = append(out.Workers, cw)
	}
	r.mu.Unlock()
	writeJSON(w, out)
}

func sortedKeys(m map[string]*workerState) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

// handleReadyz: the router is ready when at least one worker is in the
// ring — with zero, every forward would 502.
func (r *Router) handleReadyz(w http.ResponseWriter, req *http.Request) {
	r.mu.Lock()
	n := len(r.ring.members())
	r.mu.Unlock()
	if n == 0 {
		r.writeError(w, http.StatusServiceUnavailable, "no healthy workers")
		return
	}
	writeJSON(w, map[string]any{"status": "ok", "healthy_workers": n})
}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		r.writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := r.reg.WritePrometheus(w); err != nil {
		log.Printf("dist: metrics write failed: %v", err)
	}
}

// handleStreams merges every healthy worker's /v1/streams listing into one
// cluster-wide view: concatenated stream summaries, summed lifecycle
// aggregates. A worker that fails mid-scrape is skipped (its streams are
// simply absent from this snapshot).
func (r *Router) handleStreams(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		r.writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	r.mu.Lock()
	members := r.ring.members()
	r.mu.Unlock()
	merged := struct {
		Streams  []json.RawMessage `json:"streams"`
		Sessions map[string]int64  `json:"sessions"`
		Workers  int               `json:"workers"`
	}{Streams: []json.RawMessage{}, Sessions: map[string]int64{}}
	for _, addr := range members {
		resp, err := r.do(req.Context(), r.cfg.ProbeTimeout, addr,
			http.MethodGet, "/v1/streams", nil, nil)
		if err != nil {
			continue
		}
		var one struct {
			Streams  []json.RawMessage `json:"streams"`
			Sessions map[string]int64  `json:"sessions"`
		}
		err = json.NewDecoder(resp.Body).Decode(&one)
		resp.Body.Close()
		if err != nil {
			continue
		}
		merged.Workers++
		merged.Streams = append(merged.Streams, one.Streams...)
		for k, v := range one.Sessions {
			merged.Sessions[k] += v
		}
	}
	writeJSON(w, merged)
}

// writeError sends the same JSON error envelope the serve tier uses, so a
// client sees one contract whether it talks to a worker or the router.
func (r *Router) writeError(w http.ResponseWriter, status int, msg string) {
	var body struct {
		Error struct {
			Code    int    `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	body.Error.Code = status
	body.Error.Message = msg
	data, err := json.Marshal(body)
	if err != nil {
		http.Error(w, msg, status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)+1))
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, "response encoding failed", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)+1))
	w.Write(append(data, '\n'))
}
