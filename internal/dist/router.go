package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"freewayml/internal/obs"
)

// Defaults for the failure model. They are deliberately conservative: a
// worker is ejected only after FailThreshold consecutive failures (one lost
// packet must not trigger a cluster rebalance), and rejoins only after it
// has been continuously probed healthy past the cooldown.
const (
	DefaultFailThreshold  = 3
	DefaultCooldown       = 5 * time.Second
	DefaultProbeInterval  = 1 * time.Second
	DefaultProbeTimeout   = 2 * time.Second
	DefaultRequestTimeout = 15 * time.Second
	DefaultRetries        = 4
	DefaultRetryBase      = 25 * time.Millisecond
	DefaultRetryMax       = 2 * time.Second
	DefaultMaxBodyBytes   = 8 << 20
)

// Config configures a Router.
type Config struct {
	// Workers is the initial worker set (host:port each). At least one is
	// required; all start healthy and are probed from the first tick.
	Workers []string
	// VNodes is the virtual-node count per worker (0 = DefaultVNodes).
	VNodes int

	// FailThreshold is how many consecutive failures (forwarded requests or
	// probes) open a worker's circuit breaker and eject it from the ring.
	FailThreshold int
	// Cooldown is how long an ejected worker must stay out before a
	// successful probe readmits it.
	Cooldown time.Duration
	// ProbeInterval is the health-probe period; ProbeTimeout bounds each
	// probe (and each migration evict call).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration

	// RequestTimeout bounds each forward attempt; Retries is how many times
	// a failed attempt is retried (against the then-current owner, so a
	// retry after an ejection lands on the new owner). Backoff between
	// attempts is exponential from RetryBase, capped at RetryMax, with
	// half-interval jitter.
	RequestTimeout time.Duration
	Retries        int
	RetryBase      time.Duration
	RetryMax       time.Duration

	// MaxBody caps forwarded request bodies (<= 0 selects the default).
	MaxBody int64

	// AntiEntropy, when true, synchronizes the shared knowledge store of a
	// rejoining worker from a healthy peer (GET /v1/knowledge on the peer,
	// POST /v1/knowledge/merge on the rejoined worker) so knowledge
	// preserved while the worker was out is not lost to it.
	AntiEntropy bool

	// Seed makes the retry jitter deterministic (0 = 1).
	Seed int64

	// Registry receives the router's metrics (nil builds a private one).
	Registry *obs.Registry
	// Transport performs the actual round trips — the seam the chaos
	// harness wraps (nil = http.DefaultTransport).
	Transport http.RoundTripper
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.VNodes <= 0 {
		out.VNodes = DefaultVNodes
	}
	if out.FailThreshold <= 0 {
		out.FailThreshold = DefaultFailThreshold
	}
	if out.Cooldown < 0 {
		out.Cooldown = DefaultCooldown
	}
	if out.ProbeInterval <= 0 {
		out.ProbeInterval = DefaultProbeInterval
	}
	if out.ProbeTimeout <= 0 {
		out.ProbeTimeout = DefaultProbeTimeout
	}
	if out.RequestTimeout <= 0 {
		out.RequestTimeout = DefaultRequestTimeout
	}
	if out.Retries < 0 {
		out.Retries = DefaultRetries
	}
	if out.RetryBase <= 0 {
		out.RetryBase = DefaultRetryBase
	}
	if out.RetryMax <= 0 {
		out.RetryMax = DefaultRetryMax
	}
	if out.MaxBody <= 0 {
		out.MaxBody = DefaultMaxBodyBytes
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	return out
}

// workerState is one worker's view in the router: its breaker (healthy ↔
// ejected) and the consecutive-failure count that drives it.
type workerState struct {
	addr        string
	healthy     bool
	consecFails int
	ejectedAt   time.Time

	gHealthy   *obs.Gauge
	cFailures  *obs.Counter
	cProbeFail *obs.Counter
}

// Router is the stateless routing tier: it owns no stream state, only the
// ring, the per-worker breakers, and a map of which worker each stream id
// was last routed to (so a ring change knows which streams moved). Safe for
// concurrent use.
type Router struct {
	cfg    Config
	client *http.Client
	reg    *obs.Registry
	mux    *http.ServeMux

	mu      sync.Mutex
	ring    *ring
	workers map[string]*workerState
	streams map[string]string // stream id → worker it was last routed to

	rngMu sync.Mutex
	rng   *rand.Rand

	stop    chan struct{}
	bg      sync.WaitGroup
	started atomic.Bool
	closed  atomic.Bool

	cRequests   *obs.Counter
	cRetries    *obs.Counter
	cExhausted  *obs.Counter
	cEjections  *obs.Counter
	cRejoins    *obs.Counter
	cMigrations *obs.Counter
	cEvictOK    *obs.Counter
	cEvictFail  *obs.Counter
	cFlushOK    *obs.Counter
	cFlushFail  *obs.Counter
	cSyncOK     *obs.Counter
	cSyncFail   *obs.Counter
	hLatency    *obs.Histogram
}

// NewRouter builds a router over the given workers. The prober is not
// running until Start; tests drive ProbeOnce directly instead.
func NewRouter(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return nil, errors.New("dist: at least one worker is required")
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	transport := cfg.Transport
	if transport == nil {
		transport = http.DefaultTransport
	}
	rt := &Router{
		cfg:     cfg,
		client:  &http.Client{Transport: transport},
		reg:     reg,
		mux:     http.NewServeMux(),
		ring:    newRing(cfg.VNodes),
		workers: map[string]*workerState{},
		streams: map[string]string{},
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		stop:    make(chan struct{}),

		cRequests:   reg.Counter("freeway_router_requests_total", "Requests accepted by the router."),
		cRetries:    reg.Counter("freeway_router_retries_total", "Forward attempts retried after a failure."),
		cExhausted:  reg.Counter("freeway_router_exhausted_total", "Requests that failed every retry (502 to the client)."),
		cEjections:  reg.Counter("freeway_router_ejections_total", "Workers ejected by the circuit breaker."),
		cRejoins:    reg.Counter("freeway_router_rejoins_total", "Ejected workers readmitted after cooldown."),
		cMigrations: reg.Counter("freeway_router_migrations_total", "Streams whose owner changed on a ring change."),
		cEvictOK:    reg.Counter("freeway_router_migrate_evicts_total", "Checkpoint-on-migrate evict calls, by result.", "result", "ok"),
		cEvictFail:  reg.Counter("freeway_router_migrate_evicts_total", "Checkpoint-on-migrate evict calls, by result.", "result", "error"),
		cFlushOK:    reg.Counter("freeway_router_stale_flush_total", "No-checkpoint discards of stale sessions on a stream's new owner, by result.", "result", "ok"),
		cFlushFail:  reg.Counter("freeway_router_stale_flush_total", "No-checkpoint discards of stale sessions on a stream's new owner, by result.", "result", "error"),
		cSyncOK:     reg.Counter("freeway_router_antientropy_total", "Shared-knowledge anti-entropy syncs on rejoin, by result.", "result", "ok"),
		cSyncFail:   reg.Counter("freeway_router_antientropy_total", "Shared-knowledge anti-entropy syncs on rejoin, by result.", "result", "error"),
		hLatency:    reg.Histogram("freeway_router_request_seconds", "End-to-end routed request latency.", nil),
	}
	for _, addr := range cfg.Workers {
		if addr == "" {
			return nil, errors.New("dist: empty worker address")
		}
		if _, dup := rt.workers[addr]; dup {
			return nil, fmt.Errorf("dist: duplicate worker %q", addr)
		}
		rt.workers[addr] = &workerState{
			addr:       addr,
			healthy:    true,
			gHealthy:   reg.Gauge("freeway_router_worker_healthy", "1 when the worker is in the ring, 0 when ejected.", "worker", addr),
			cFailures:  reg.Counter("freeway_router_worker_failures_total", "Failed forward attempts and probes, per worker.", "worker", addr),
			cProbeFail: reg.Counter("freeway_router_probe_failures_total", "Failed health probes, per worker.", "worker", addr),
		}
		rt.workers[addr].gHealthy.Set(1)
		rt.ring.add(addr)
	}

	rt.mux.HandleFunc("/v1/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("/v1/readyz", rt.handleReadyz)
	rt.mux.HandleFunc("/v1/metrics", rt.handleMetrics)
	rt.mux.HandleFunc("/v1/cluster", rt.handleCluster)
	rt.mux.HandleFunc("/v1/streams", rt.handleStreams)
	rt.mux.HandleFunc("/v1/streams/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/v1/streams/")
		id, _, _ := strings.Cut(rest, "/")
		rt.forward(w, r, id)
	})
	// Legacy single-stream aliases route to the worker owning "default".
	for _, p := range []string{"/v1/process", "/v1/stats", "/v1/trace"} {
		rt.mux.HandleFunc(p, func(w http.ResponseWriter, r *http.Request) {
			rt.forward(w, r, "default")
		})
	}
	return rt, nil
}

// Registry returns the router's metrics registry.
func (r *Router) Registry() *obs.Registry { return r.reg }

// Start launches the background prober. Close stops it.
func (r *Router) Start() {
	if !r.started.CompareAndSwap(false, true) {
		return
	}
	r.bg.Add(1)
	go func() {
		defer r.bg.Done()
		t := time.NewTicker(r.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-t.C:
				r.ProbeOnce()
			}
		}
	}()
}

// Close stops the prober. Idempotent.
func (r *Router) Close() error {
	if !r.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(r.stop)
	r.bg.Wait()
	return nil
}

// ServeHTTP implements http.Handler.
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	r.mux.ServeHTTP(w, req)
}

// ownerFor resolves the current owner of a stream id and records the
// routing decision so a later ring change knows the stream lived there.
func (r *Router) ownerFor(id string) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	owner, ok := r.ring.ownerOf(id)
	if ok {
		r.streams[id] = owner
	}
	return owner, ok
}

// forward routes one request for stream id: resolve the owner, forward with
// a per-attempt deadline, and on failure back off and retry against the
// then-current owner — which, after the breaker ejects the original worker,
// is the stream's new home. A 503 from a worker (draining or not ready)
// counts as a failure and is retried elsewhere; every other status is the
// worker's answer and is relayed as-is.
func (r *Router) forward(w http.ResponseWriter, req *http.Request, id string) {
	r.cRequests.Inc()
	start := time.Now()
	defer func() { r.hLatency.Observe(time.Since(start).Seconds()) }()

	req.Body = http.MaxBytesReader(w, req.Body, r.cfg.MaxBody)
	body, err := io.ReadAll(req.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			r.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		r.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request: %v", err))
		return
	}

	var lastErr error
	for attempt := 0; attempt <= r.cfg.Retries; attempt++ {
		if attempt > 0 {
			r.cRetries.Inc()
			if err := sleepCtx(req.Context(), r.backoff(attempt-1)); err != nil {
				lastErr = err
				break
			}
		}
		owner, ok := r.ownerFor(id)
		if !ok {
			lastErr = errors.New("no healthy workers in the ring")
			continue
		}
		resp, err := r.do(req.Context(), r.cfg.RequestTimeout, owner, req.Method,
			req.URL.RequestURI(), req.Header, body)
		if err != nil {
			lastErr = fmt.Errorf("worker %s: %w", owner, err)
			r.noteFailure(owner)
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			resp.Body.Close()
			lastErr = fmt.Errorf("worker %s: status 503", owner)
			r.noteFailure(owner)
			continue
		}
		r.noteSuccess(owner)
		relay(w, resp)
		return
	}
	r.cExhausted.Inc()
	r.writeError(w, http.StatusBadGateway,
		fmt.Sprintf("stream %q: all %d attempts failed: %v", id, r.cfg.Retries+1, lastErr))
}

// hopByHop lists the RFC 9110 connection-scoped headers a proxy must not
// forward; everything else passes through in both directions, so opaque
// payloads (the binary batch format, future content types) route untouched.
var hopByHop = map[string]struct{}{
	"Connection": {}, "Keep-Alive": {}, "Proxy-Authenticate": {},
	"Proxy-Authorization": {}, "Te": {}, "Trailer": {},
	"Transfer-Encoding": {}, "Upgrade": {},
}

// jsonHeader is the header set of the router's own JSON control calls.
var jsonHeader = http.Header{"Content-Type": []string{"application/json"}}

// copyHeaders copies every non-hop-by-hop header from src into dst,
// preserving multi-valued headers.
func copyHeaders(dst, src http.Header) {
	for k, vs := range src {
		if _, skip := hopByHop[http.CanonicalHeaderKey(k)]; skip {
			continue
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// do performs one HTTP round trip to a worker with its own deadline,
// forwarding hdr (nil for the router's own control calls) minus the
// hop-by-hop set. The response body is the caller's to close.
func (r *Router) do(parent context.Context, timeout time.Duration, worker, method, uri string, hdr http.Header, body []byte) (*http.Response, error) {
	ctx, cancel := context.WithTimeout(parent, timeout)
	req, err := http.NewRequestWithContext(ctx, method, "http://"+worker+uri, bytes.NewReader(body))
	if err != nil {
		cancel()
		return nil, err
	}
	if hdr != nil {
		copyHeaders(req.Header, hdr)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

// cancelBody releases the attempt's context when the response body is
// closed (the context must outlive the body read).
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// relay copies a worker response to the client: status, every
// non-hop-by-hop header, and the body byte-for-byte.
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	copyHeaders(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		log.Printf("dist: relay body: %v", err)
	}
}

// backoff returns the delay before retry n (0-based): exponential from
// RetryBase, capped at RetryMax, with jitter uniform over the upper half so
// synchronized retries from concurrent clients spread out.
func (r *Router) backoff(n int) time.Duration {
	d := r.cfg.RetryBase
	for i := 0; i < n && d < r.cfg.RetryMax; i++ {
		d *= 2
	}
	if d > r.cfg.RetryMax {
		d = r.cfg.RetryMax
	}
	r.rngMu.Lock()
	j := time.Duration(r.rng.Int63n(int64(d)/2 + 1))
	r.rngMu.Unlock()
	return d/2 + j
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// noteSuccess resets a worker's consecutive-failure count.
func (r *Router) noteSuccess(addr string) {
	r.mu.Lock()
	if ws, ok := r.workers[addr]; ok && ws.healthy {
		ws.consecFails = 0
	}
	r.mu.Unlock()
}

// noteFailure records one failed attempt against a worker and, at the
// breaker threshold, ejects it: the worker leaves the ring, and every
// stream last routed to it is migrated (best-effort checkpoint-on-evict on
// the old owner — it may be dead, in which case the new owner restores from
// the shared checkpoint directory instead).
func (r *Router) noteFailure(addr string) {
	r.mu.Lock()
	ws, ok := r.workers[addr]
	if !ok || !ws.healthy {
		r.mu.Unlock()
		return
	}
	ws.cFailures.Inc()
	ws.consecFails++
	if ws.consecFails < r.cfg.FailThreshold {
		r.mu.Unlock()
		return
	}
	ws.healthy = false
	ws.ejectedAt = time.Now()
	ws.gHealthy.Set(0)
	r.ring.remove(addr)
	r.cEjections.Inc()
	moved := r.movedStreamsLocked()
	r.mu.Unlock()

	log.Printf("dist: worker %s ejected after %d consecutive failures (%d streams to migrate)", addr, ws.consecFails, len(moved))
	r.migrate(moved)
}

// movedStream records one stream's migration: the worker it was last
// routed to and the worker the ring maps it to now ("" when the ring is
// empty).
type movedStream struct {
	prev, next string
}

// movedStreamsLocked returns the migration plan for every tracked stream
// whose ring owner changed, and forgets them (the next request re-records
// the new owner). Callers hold r.mu.
func (r *Router) movedStreamsLocked() map[string]movedStream {
	moved := map[string]movedStream{}
	for id, prev := range r.streams {
		now, ok := r.ring.ownerOf(id)
		if !ok || now != prev {
			mv := movedStream{prev: prev}
			if ok {
				mv.next = now
			}
			moved[id] = mv
			delete(r.streams, id)
		}
	}
	return moved
}

// migrate runs the two-step handover for each moved stream. First the
// previous owner is checkpoint-and-evicted — best-effort: an unreachable
// owner (the crash case) fails fast and the stream's state comes from its
// last periodic checkpoint in the shared directory instead. Then any
// session still resident on the NEW owner is discarded without a
// checkpoint: a rejoined worker may hold the stream's pre-ejection state in
// memory, and since restore-from-checkpoint happens only at session
// creation, that stale session would otherwise resume silently — and a
// checkpointing evict there would clobber the fresh envelope just written
// by step one.
func (r *Router) migrate(moved map[string]movedStream) {
	for id, mv := range moved {
		r.cMigrations.Inc()
		if r.evictStream(mv.prev, id, true) {
			r.cEvictOK.Inc()
		} else {
			r.cEvictFail.Inc()
		}
		if mv.next != "" && mv.next != mv.prev {
			if r.evictStream(mv.next, id, false) {
				r.cFlushOK.Inc()
			} else {
				r.cFlushFail.Inc()
			}
		}
	}
}

// evictStream POSTs one evict call; checkpoint=false asks the worker to
// discard the session without a final snapshot.
func (r *Router) evictStream(addr, id string, checkpoint bool) bool {
	uri := "/v1/streams/" + id + "/evict"
	if !checkpoint {
		uri += "?checkpoint=false"
	}
	resp, err := r.do(context.Background(), r.cfg.ProbeTimeout, addr, http.MethodPost, uri, nil, nil)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	code := resp.StatusCode
	resp.Body.Close()
	return code == http.StatusOK
}

// ProbeOnce probes every worker's /v1/healthz once: failures advance the
// breaker exactly like failed forwards; a success past the cooldown
// readmits an ejected worker (rebalancing the streams that move back, this
// time with the old owner reachable for a clean checkpoint-on-migrate).
// Exported so tests drive the failure model deterministically; Start calls
// it on a ticker.
func (r *Router) ProbeOnce() {
	r.mu.Lock()
	addrs := make([]string, 0, len(r.workers))
	for addr := range r.workers {
		addrs = append(addrs, addr)
	}
	r.mu.Unlock()

	for _, addr := range addrs {
		resp, err := r.do(context.Background(), r.cfg.ProbeTimeout, addr,
			http.MethodGet, "/v1/healthz", nil, nil)
		healthy := false
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			healthy = resp.StatusCode == http.StatusOK
			resp.Body.Close()
		}
		if !healthy {
			r.mu.Lock()
			if ws, ok := r.workers[addr]; ok {
				ws.cProbeFail.Inc()
			}
			r.mu.Unlock()
			r.noteFailure(addr)
			continue
		}
		r.noteProbeOK(addr)
	}
}

// noteProbeOK clears failures on a healthy worker and readmits an ejected
// one whose cooldown has passed.
func (r *Router) noteProbeOK(addr string) {
	r.mu.Lock()
	ws, ok := r.workers[addr]
	if !ok {
		r.mu.Unlock()
		return
	}
	if ws.healthy {
		ws.consecFails = 0
		r.mu.Unlock()
		return
	}
	if time.Since(ws.ejectedAt) < r.cfg.Cooldown {
		r.mu.Unlock()
		return
	}
	ws.healthy = true
	ws.consecFails = 0
	ws.gHealthy.Set(1)
	r.ring.add(addr)
	r.cRejoins.Inc()
	moved := r.movedStreamsLocked()
	peer := ""
	for _, other := range r.ring.members() {
		if other != addr {
			peer = other
			break
		}
	}
	r.mu.Unlock()

	log.Printf("dist: worker %s rejoined the ring (%d streams to migrate back)", addr, len(moved))
	r.migrate(moved)
	if r.cfg.AntiEntropy && peer != "" {
		r.antiEntropy(peer, addr)
	}
}

// antiEntropy copies the shared knowledge store of a healthy peer onto a
// rejoined worker (export → merge), so regimes preserved while the worker
// was out of the ring are matchable there too. Best-effort: a worker
// without a shared store answers 409 and the sync is skipped.
func (r *Router) antiEntropy(from, to string) {
	resp, err := r.do(context.Background(), r.cfg.RequestTimeout, from,
		http.MethodGet, "/v1/knowledge", nil, nil)
	if err != nil {
		r.cSyncFail.Inc()
		log.Printf("dist: anti-entropy export from %s: %v", from, err)
		return
	}
	body, err := io.ReadAll(resp.Body)
	code := resp.StatusCode
	resp.Body.Close()
	if err != nil || code != http.StatusOK {
		r.cSyncFail.Inc()
		log.Printf("dist: anti-entropy export from %s: status %d err %v", from, code, err)
		return
	}
	resp, err = r.do(context.Background(), r.cfg.RequestTimeout, to,
		http.MethodPost, "/v1/knowledge/merge", jsonHeader, body)
	if err != nil {
		r.cSyncFail.Inc()
		log.Printf("dist: anti-entropy merge into %s: %v", to, err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	code = resp.StatusCode
	resp.Body.Close()
	if code != http.StatusOK {
		r.cSyncFail.Inc()
		log.Printf("dist: anti-entropy merge into %s: status %d", to, code)
		return
	}
	r.cSyncOK.Inc()
}

// ClusterWorker is one worker's row in the /v1/cluster topology report.
type ClusterWorker struct {
	Addr             string  `json:"addr"`
	Healthy          bool    `json:"healthy"`
	ConsecutiveFails int     `json:"consecutive_fails"`
	EjectedForS      float64 `json:"ejected_for_s,omitempty"`
}

// ClusterResponse is the /v1/cluster body.
type ClusterResponse struct {
	Workers       []ClusterWorker `json:"workers"`
	HealthyCount  int             `json:"healthy_count"`
	TrackedStream int             `json:"tracked_streams"`
}

func (r *Router) handleCluster(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		r.writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	r.mu.Lock()
	out := ClusterResponse{TrackedStream: len(r.streams)}
	for _, addr := range sortedKeys(r.workers) {
		ws := r.workers[addr]
		cw := ClusterWorker{Addr: addr, Healthy: ws.healthy, ConsecutiveFails: ws.consecFails}
		if !ws.healthy {
			cw.EjectedForS = time.Since(ws.ejectedAt).Seconds()
		} else {
			out.HealthyCount++
		}
		out.Workers = append(out.Workers, cw)
	}
	r.mu.Unlock()
	writeJSON(w, out)
}

func sortedKeys(m map[string]*workerState) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

// handleReadyz: the router is ready when at least one worker is in the
// ring — with zero, every forward would 502.
func (r *Router) handleReadyz(w http.ResponseWriter, req *http.Request) {
	r.mu.Lock()
	n := len(r.ring.members())
	r.mu.Unlock()
	if n == 0 {
		r.writeError(w, http.StatusServiceUnavailable, "no healthy workers")
		return
	}
	writeJSON(w, map[string]any{"status": "ok", "healthy_workers": n})
}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		r.writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := r.reg.WritePrometheus(w); err != nil {
		log.Printf("dist: metrics write failed: %v", err)
	}
}

// handleStreams merges every healthy worker's /v1/streams listing into one
// cluster-wide view: concatenated stream summaries, summed lifecycle
// aggregates. A worker that fails mid-scrape is skipped (its streams are
// simply absent from this snapshot).
func (r *Router) handleStreams(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		r.writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	r.mu.Lock()
	members := r.ring.members()
	r.mu.Unlock()
	merged := struct {
		Streams  []json.RawMessage `json:"streams"`
		Sessions map[string]int64  `json:"sessions"`
		Workers  int               `json:"workers"`
	}{Streams: []json.RawMessage{}, Sessions: map[string]int64{}}
	for _, addr := range members {
		resp, err := r.do(req.Context(), r.cfg.ProbeTimeout, addr,
			http.MethodGet, "/v1/streams", nil, nil)
		if err != nil {
			continue
		}
		var one struct {
			Streams  []json.RawMessage `json:"streams"`
			Sessions map[string]int64  `json:"sessions"`
		}
		err = json.NewDecoder(resp.Body).Decode(&one)
		resp.Body.Close()
		if err != nil {
			continue
		}
		merged.Workers++
		merged.Streams = append(merged.Streams, one.Streams...)
		for k, v := range one.Sessions {
			merged.Sessions[k] += v
		}
	}
	writeJSON(w, merged)
}

// writeError sends the same JSON error envelope the serve tier uses, so a
// client sees one contract whether it talks to a worker or the router.
func (r *Router) writeError(w http.ResponseWriter, status int, msg string) {
	var body struct {
		Error struct {
			Code    int    `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	body.Error.Code = status
	body.Error.Message = msg
	data, err := json.Marshal(body)
	if err != nil {
		http.Error(w, msg, status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)+1))
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, "response encoding failed", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)+1))
	w.Write(append(data, '\n'))
}
