package dist

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"freewayml/internal/core"
	"freewayml/internal/faults"
	"freewayml/internal/linalg"
	"freewayml/internal/serve"
)

// testWorker is a real freeway-serve worker behind an httptest listener —
// the unit the failover tests kill, partition, and rejoin.
type testWorker struct {
	srv *serve.Server
	ts  *httptest.Server
}

func (w *testWorker) addr() string { return strings.TrimPrefix(w.ts.URL, "http://") }

// kill closes the listener without shutting the server down — from the
// cluster's point of view this is an unclean death: no final checkpoints,
// in-flight connections reset.
func (w *testWorker) kill() { w.ts.Close() }

// newTestWorker boots a worker persisting every batch's checkpoint into the
// shared dir, so failover loses nothing.
func newTestWorker(t *testing.T, dir string, opts ...serve.Option) *testWorker {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Shift.WarmupPoints = 64
	opts = append([]serve.Option{serve.WithCheckpointDir(dir, 1)}, opts...)
	srv, err := serve.New(cfg, 3, 2, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return &testWorker{srv: srv, ts: ts}
}

func failoverRouter(t *testing.T, chaos *faults.ChaosTransport, antiEntropy bool, workers ...*testWorker) *Router {
	t.Helper()
	cfg := Config{
		FailThreshold:  2,
		Cooldown:       0, // rejoin on the first healthy probe
		ProbeTimeout:   2 * time.Second,
		RequestTimeout: 5 * time.Second,
		Retries:        6,
		RetryBase:      time.Millisecond,
		RetryMax:       8 * time.Millisecond,
		AntiEntropy:    antiEntropy,
	}
	for _, w := range workers {
		cfg.Workers = append(cfg.Workers, w.addr())
	}
	if chaos != nil {
		cfg.Transport = chaos
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	return rt
}

// processVia POSTs one labeled 4-sample batch for id through the router and
// returns the HTTP status.
func processVia(t *testing.T, rt *Router, rng *rand.Rand, id string) int {
	t.Helper()
	var req struct {
		X [][]float64 `json:"x"`
		Y []int       `json:"y"`
	}
	for i := 0; i < 4; i++ {
		c := rng.Intn(2)
		req.X = append(req.X, []float64{float64(c)*2 + rng.NormFloat64()*0.3, rng.NormFloat64() * 0.3, 0})
		req.Y = append(req.Y, c)
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	hr := httptest.NewRequest(http.MethodPost, "/v1/streams/"+id+"/process", strings.NewReader(string(body)))
	hr.Header.Set("Content-Type", "application/json")
	rt.ServeHTTP(rec, hr)
	return rec.Code
}

// statsVia fetches a stream's stats through the router.
func statsVia(t *testing.T, rt *Router, id string) serve.StatsResponse {
	t.Helper()
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/streams/"+id+"/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats for %q: status %d body %s", id, rec.Code, rec.Body)
	}
	var out serve.StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// residentStreams lists the stream ids resident on a worker, asked
// directly (not via the router).
func residentStreams(t *testing.T, w *testWorker) map[string]bool {
	t.Helper()
	resp, err := http.Get(w.ts.URL + "/v1/streams")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listing struct {
		Streams []struct {
			ID string `json:"id"`
		} `json:"streams"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	for _, s := range listing.Streams {
		out[s.ID] = true
	}
	return out
}

// TestFailoverAfterWorkerKill is the acceptance scenario: kill a worker
// holding several active streams mid-traffic and require that every stream
// resumes on a new owner from its last checkpoint, with no client-visible
// error once the retry/backoff budget is in play.
func TestFailoverAfterWorkerKill(t *testing.T) {
	dir := t.TempDir()
	workers := []*testWorker{
		newTestWorker(t, dir),
		newTestWorker(t, dir),
		newTestWorker(t, dir),
	}
	rt := failoverRouter(t, nil, false, workers...)
	rng := rand.New(rand.NewSource(7))

	const nStreams, nBatches = 8, 3
	ids := make([]string, nStreams)
	for i := range ids {
		ids[i] = fmt.Sprintf("f%d", i)
	}
	for b := 0; b < nBatches; b++ {
		for _, id := range ids {
			if code := processVia(t, rt, rng, id); code != http.StatusOK {
				t.Fatalf("stream %s batch %d: status %d", id, b, code)
			}
		}
	}

	// Pick the victim: the worker holding the most of our streams.
	victim, victimStreams := workers[0], map[string]bool{}
	for _, w := range workers {
		if res := residentStreams(t, w); len(res) > len(victimStreams) {
			victim, victimStreams = w, res
		}
	}
	owned := 0
	for _, id := range ids {
		if victimStreams[id] {
			owned++
		}
	}
	if owned == 0 {
		t.Fatal("victim owns none of the test streams; test is vacuous")
	}
	before := map[string]int{}
	for _, id := range ids {
		before[id] = statsVia(t, rt, id).Batches
	}

	victim.kill()
	t.Logf("killed %s holding %d of %d streams", victim.addr(), owned, nStreams)

	// One more batch per stream: every one must succeed via retry/backoff.
	for _, id := range ids {
		if code := processVia(t, rt, rng, id); code != http.StatusOK {
			t.Fatalf("stream %s after kill: status %d (client-visible failure)", id, code)
		}
	}
	for _, id := range ids {
		st := statsVia(t, rt, id)
		if st.Batches != before[id]+1 {
			t.Errorf("stream %s: batches %d after failover, want %d (checkpoint continuity)",
				id, st.Batches, before[id]+1)
		}
		if victimStreams[id] && !st.Restored {
			t.Errorf("stream %s lived on the killed worker but was not restored from checkpoint", id)
		}
	}
	if got := counterValue(rt, "freeway_router_ejections_total"); got != 1 {
		t.Errorf("ejections_total = %d, want 1", got)
	}
	if got := counterValue(rt, "freeway_router_migrations_total"); int(got) < owned {
		t.Errorf("migrations_total = %d, want >= %d", got, owned)
	}
}

// TestFailoverPartitionThenRejoin covers the reachable-owner migration: the
// stream fails over during a partition, then migrates back cleanly when the
// worker rejoins — including the stale-session flush on the rejoined owner,
// without which the stream would silently resume from pre-partition state.
func TestFailoverPartitionThenRejoin(t *testing.T) {
	dir := t.TempDir()
	a := newTestWorker(t, dir)
	b := newTestWorker(t, dir)
	chaos := faults.NewChaosTransport(nil)
	rt := failoverRouter(t, chaos, false, a, b)
	rng := rand.New(rand.NewSource(11))

	const id = "pq"
	for i := 0; i < 3; i++ {
		if code := processVia(t, rt, rng, id); code != http.StatusOK {
			t.Fatalf("seed batch %d: status %d", i, code)
		}
	}
	victim := a
	if residentStreams(t, b)[id] {
		victim = b
	}
	if !residentStreams(t, victim)[id] {
		t.Fatalf("stream %q resident on neither worker", id)
	}

	chaos.Partition(victim.addr())
	if code := processVia(t, rt, rng, id); code != http.StatusOK {
		t.Fatalf("batch during partition: status %d", code)
	}
	st := statsVia(t, rt, id)
	if st.Batches != 4 || !st.Restored {
		t.Fatalf("after failover: batches=%d restored=%v, want 4/true", st.Batches, st.Restored)
	}

	chaos.Heal(victim.addr())
	rt.ProbeOnce()
	if got := counterValue(rt, "freeway_router_rejoins_total"); got != 1 {
		t.Fatalf("rejoins_total = %d, want 1", got)
	}
	if got := counterValue(rt, "freeway_router_migrate_evicts_total", "result", "ok"); got < 1 {
		t.Errorf("no clean checkpoint-on-migrate evict recorded on rejoin")
	}

	// The stream is back on its original worker and continues from the
	// survivor's checkpoint: 5 batches total. Without the stale flush the
	// rejoined worker's in-memory session (3 batches) would win and this
	// would read 4.
	if code := processVia(t, rt, rng, id); code != http.StatusOK {
		t.Fatalf("batch after rejoin: status %d", code)
	}
	if !residentStreams(t, victim)[id] {
		t.Errorf("stream %q did not move back to the rejoined worker", id)
	}
	st = statsVia(t, rt, id)
	if st.Batches != 5 {
		t.Errorf("after rejoin: batches=%d, want 5 (continuity through both migrations)", st.Batches)
	}
	if got := counterValue(rt, "freeway_router_stale_flush_total", "result", "ok"); got < 1 {
		t.Errorf("stale_flush ok = %d, want >= 1", got)
	}
}

// TestAntiEntropyOnRejoin: knowledge preserved on the healthy peer while a
// worker was out of the ring is copied onto the worker when it rejoins.
func TestAntiEntropyOnRejoin(t *testing.T) {
	dir := t.TempDir()
	a := newTestWorker(t, dir, serve.WithSharedKnowledge())
	b := newTestWorker(t, dir, serve.WithSharedKnowledge())
	chaos := faults.NewChaosTransport(nil)
	rt := failoverRouter(t, chaos, true, a, b)

	// Eject b via failed probes.
	chaos.Partition(b.addr())
	rt.ProbeOnce()
	rt.ProbeOnce()
	if got := counterValue(rt, "freeway_router_ejections_total"); got != 1 {
		t.Fatalf("ejections_total = %d, want 1", got)
	}

	// While b is out, a learns a regime.
	if err := a.srv.Sessions().SharedStore().Preserve(
		linalg.Vector{0.25, 0.5, 0.25}, []byte("regime-snapshot"), "test", 1); err != nil {
		t.Fatal(err)
	}

	chaos.Heal(b.addr())
	rt.ProbeOnce()
	if got := counterValue(rt, "freeway_router_antientropy_total", "result", "ok"); got != 1 {
		t.Fatalf("antientropy ok = %d, want 1", got)
	}
	if n := b.srv.Sessions().SharedStore().Len(); n != 1 {
		t.Errorf("rejoined worker's shared store has %d entries, want 1 (synced from peer)", n)
	}

	// The sync is idempotent: a second rejoin cycle merges the same export
	// and the entry count does not grow.
	chaos.Partition(b.addr())
	rt.ProbeOnce()
	rt.ProbeOnce()
	chaos.Heal(b.addr())
	rt.ProbeOnce()
	if n := b.srv.Sessions().SharedStore().Len(); n != 1 {
		t.Errorf("after a second sync the store has %d entries, want still 1 (idempotent merge)", n)
	}
}

// TestPeriodicAntiEntropySweep covers the divergence window rejoin-only sync
// leaves open: both workers stay in the ring the whole time (no ejection, no
// rejoin event), yet their shared knowledge stores drift apart. A partitioned
// peer makes the sweep fail on that edge (best-effort, error counted), a
// healed one converges in a single sweep, converged sweeps are idempotent,
// and the interval ticker drives sweeps without any test intervention.
func TestPeriodicAntiEntropySweep(t *testing.T) {
	dir := t.TempDir()
	a := newTestWorker(t, dir, serve.WithSharedKnowledge())
	b := newTestWorker(t, dir, serve.WithSharedKnowledge())
	chaos := faults.NewChaosTransport(nil)
	rt, err := NewRouter(Config{
		Workers:             []string{a.addr(), b.addr()},
		FailThreshold:       2,
		ProbeInterval:       time.Hour, // keep the prober quiet; this test is about sweeps
		ProbeTimeout:        2 * time.Second,
		RequestTimeout:      2 * time.Second,
		AntiEntropyInterval: 20 * time.Millisecond,
		Transport:           chaos,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })

	// a learns a regime while both workers are healthy ring members — the
	// rejoin hook never fires, so only a sweep can propagate it.
	if err := a.srv.Sessions().SharedStore().Preserve(
		linalg.Vector{0.25, 0.5, 0.25}, []byte("regime-a"), "test", 1); err != nil {
		t.Fatal(err)
	}

	// Sweep against a partitioned peer: the a->b merge fails (counted), the
	// b export fails (edge skipped), and b stays empty — but the sweep
	// itself survives, best-effort per edge.
	chaos.Partition(b.addr())
	rt.AntiEntropySweep()
	if got := counterValue(rt, "freeway_router_antientropy_total", "result", "error"); got != 1 {
		t.Fatalf("antientropy error = %d after partitioned sweep, want 1", got)
	}
	if n := b.srv.Sessions().SharedStore().Len(); n != 0 {
		t.Fatalf("partitioned worker's store has %d entries, want 0", n)
	}

	// Healed: one sweep converges the cluster (a->b and b->a both merge).
	chaos.Heal(b.addr())
	rt.AntiEntropySweep()
	if got := counterValue(rt, "freeway_router_antientropy_total", "result", "ok"); got != 2 {
		t.Fatalf("antientropy ok = %d after healed sweep, want 2", got)
	}
	if n := b.srv.Sessions().SharedStore().Len(); n != 1 {
		t.Fatalf("peer store has %d entries after sweep, want 1", n)
	}

	// Idempotent: a converged cluster re-merges the same exports and the
	// entry count does not grow.
	rt.AntiEntropySweep()
	if n := b.srv.Sessions().SharedStore().Len(); n != 1 {
		t.Errorf("after a repeat sweep the store has %d entries, want still 1", n)
	}
	if n := a.srv.Sessions().SharedStore().Len(); n != 1 {
		t.Errorf("origin store has %d entries, want still 1", n)
	}

	// Ticker path: new divergence on b propagates to a with no test-driven
	// sweep — Start's interval goroutine finds it.
	if err := b.srv.Sessions().SharedStore().Preserve(
		linalg.Vector{0.9, 0.05, 0.05}, []byte("regime-b"), "test", 2); err != nil {
		t.Fatal(err)
	}
	rt.Start()
	deadline := time.Now().Add(5 * time.Second)
	for a.srv.Sessions().SharedStore().Len() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("interval sweeps never propagated the new regime: origin store has %d entries, want 2",
				a.srv.Sessions().SharedStore().Len())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
