package dist

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"freewayml/internal/faults"
	"freewayml/internal/obs"
)

// tracedProcessVia POSTs one labeled batch through the router with a
// client-minted traceparent, returning the recorder for header assertions.
func tracedProcessVia(t *testing.T, rt *Router, rng *rand.Rand, id string, tc obs.TraceContext) *httptest.ResponseRecorder {
	t.Helper()
	var req struct {
		X [][]float64 `json:"x"`
		Y []int       `json:"y"`
	}
	for i := 0; i < 4; i++ {
		c := rng.Intn(2)
		req.X = append(req.X, []float64{float64(c)*2 + rng.NormFloat64()*0.3, rng.NormFloat64() * 0.3, 0})
		req.Y = append(req.Y, c)
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	hr := httptest.NewRequest(http.MethodPost, "/v1/streams/"+id+"/process", strings.NewReader(string(body)))
	hr.Header.Set("Content-Type", "application/json")
	if tc.Valid() {
		hr.Header.Set(obs.TraceparentHeader, tc.Traceparent())
	}
	rt.ServeHTTP(rec, hr)
	return rec
}

func clusterTrace(t *testing.T, rt *Router, id string) []obs.Span {
	t.Helper()
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/cluster/trace?id="+id, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/cluster/trace: status %d: %s", rec.Code, rec.Body.String())
	}
	var spans []obs.Span
	if err := json.Unmarshal(rec.Body.Bytes(), &spans); err != nil {
		t.Fatalf("decode cluster trace: %v", err)
	}
	return spans
}

// TestTraceContinuityAcrossFailover is the continuity pin: a request whose
// first attempts hit a partitioned owner must retry onto the second worker
// under the SAME trace id, leaving one router span per attempt (the failed
// ones annotated with the opened breaker) and the surviving worker's
// process span parented to the successful attempt — all assembled by
// /v1/cluster/trace.
func TestTraceContinuityAcrossFailover(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	w1 := newTestWorker(t, dir)
	w2 := newTestWorker(t, dir)
	chaos := faults.NewChaosTransport(nil)
	rt := failoverRouter(t, chaos, false, w1, w2)

	const stream = "trace-failover"
	if rec := tracedProcessVia(t, rt, rng, stream, obs.TraceContext{}); rec.Code != http.StatusOK {
		t.Fatalf("warm request: status %d: %s", rec.Code, rec.Body.String())
	}
	owner, ok := rt.ownerFor(stream)
	if !ok {
		t.Fatal("no owner for stream")
	}
	chaos.Partition(owner)

	tc := obs.NewTraceContext()
	rec := tracedProcessVia(t, rt, rng, stream, tc)
	if rec.Code != http.StatusOK {
		t.Fatalf("failover request: status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(obs.TraceIDHeader); got != tc.TraceID {
		t.Fatalf("trace id header = %q, want %q", got, tc.TraceID)
	}
	attempts, err := strconv.Atoi(rec.Header().Get(obs.AttemptsHeader))
	if err != nil || attempts < 2 {
		t.Fatalf("attempts header = %q, want >= 2", rec.Header().Get(obs.AttemptsHeader))
	}
	if rec.Header().Get(obs.RouterMicrosHeader) == "" {
		t.Fatal("missing router micros header")
	}

	spans := clusterTrace(t, rt, tc.TraceID)
	var routerSpans, workerSpans []obs.Span
	for _, s := range spans {
		if s.TraceID != tc.TraceID {
			t.Fatalf("span %s/%s has trace id %q, want %q", s.Name, s.SpanID, s.TraceID, tc.TraceID)
		}
		switch s.Name {
		case routerForwardSpan:
			routerSpans = append(routerSpans, s)
		case "worker.process":
			workerSpans = append(workerSpans, s)
		}
	}
	if len(routerSpans) < 2 {
		t.Fatalf("got %d router spans, want >= 2 (one per attempt)", len(routerSpans))
	}
	owners := map[string]bool{}
	sawOpenBreaker := false
	var okSpan *obs.Span
	for i := range routerSpans {
		s := &routerSpans[i]
		owners[s.Owner] = true
		if s.Parent != tc.SpanID {
			t.Fatalf("router span parent = %q, want client span %q", s.Parent, tc.SpanID)
		}
		if s.Status == "error" && s.Breaker == "open" {
			sawOpenBreaker = true
		}
		if s.Status == "ok" {
			okSpan = s
		}
	}
	if len(owners) < 2 {
		t.Fatalf("router spans cover owners %v, want both workers", owners)
	}
	if !sawOpenBreaker {
		t.Fatal("no failed router span carries the open-breaker annotation")
	}
	if okSpan == nil {
		t.Fatal("no successful router span")
	}
	if len(workerSpans) == 0 {
		t.Fatal("no worker.process span federated into the cluster trace")
	}
	foundChild := false
	for _, s := range workerSpans {
		if s.Parent == okSpan.SpanID {
			foundChild = true
		}
	}
	if !foundChild {
		t.Fatalf("no worker span parents to the successful router attempt %s", okSpan.SpanID)
	}

	// The ejection must appear in the cluster timeline, annotated with the
	// trace that triggered it.
	events := rt.Events().Last(0)
	sawOpen := false
	for _, ev := range events {
		if ev.Type == obs.EventBreakerOpen && ev.Worker == owner && ev.TraceID == tc.TraceID {
			sawOpen = true
		}
	}
	if !sawOpen {
		t.Fatalf("no breaker_open event for %s with trace %s in %v", owner, tc.TraceID, events)
	}

	// And the retried (slow) request must rank in the exemplar ring.
	found := false
	for _, ex := range rt.Exemplars().TopK() {
		if ex.TraceID == tc.TraceID {
			if ex.Attempts != attempts {
				t.Fatalf("exemplar attempts = %d, header said %d", ex.Attempts, attempts)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("failover request missing from exemplar ring")
	}
}

// TestClusterMetricsFederation pins the federation merge: the router's own
// series appear unlabeled, every healthy worker's series appear under
// worker="<addr>", and the events endpoint speaks JSONL.
func TestClusterMetricsFederation(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(11))
	w1 := newTestWorker(t, dir)
	w2 := newTestWorker(t, dir)
	rt := failoverRouter(t, nil, false, w1, w2)

	// A few requests across enough stream ids to touch both workers.
	for i := 0; i < 8; i++ {
		if code := processVia(t, rt, rng, "fed-"+strconv.Itoa(i)); code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
	}

	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/cluster/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/cluster/metrics: status %d", rec.Code)
	}
	text := rec.Body.String()
	if !strings.Contains(text, "freeway_router_requests_total 8") {
		t.Fatalf("router-local series missing or labeled:\n%s", text)
	}
	if !strings.Contains(text, `freeway_router_proxy_bytes_total{direction="in",proto="json"}`) {
		t.Fatalf("proxy bytes counter missing:\n%s", text)
	}
	for _, w := range []*testWorker{w1, w2} {
		if !strings.Contains(text, `worker="`+w.addr()+`"`) {
			t.Fatalf("no federated series labeled for worker %s:\n%s", w.addr(), text)
		}
	}
	// Known worker families must carry the injected label — including the
	// histogram _sum line, so the bucket/_sum/_count triple stays consistent
	// under the merge.
	sawCounter, sawSum := false, false
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "freeway_http_requests_total{") && strings.Contains(line, `worker="`) {
			sawCounter = true
		}
		if strings.HasPrefix(line, "freeway_process_seconds_sum{") && strings.Contains(line, `worker="`) {
			sawSum = true
		}
	}
	if !sawCounter || !sawSum {
		t.Fatalf("worker-side series not labeled (counter=%v histogram_sum=%v):\n%s", sawCounter, sawSum, text)
	}

	// Exemplars: every request competes; the ring must be non-empty and its
	// trace ids resolvable.
	exRec := httptest.NewRecorder()
	rt.ServeHTTP(exRec, httptest.NewRequest(http.MethodGet, "/v1/cluster/exemplars", nil))
	var exemplars []obs.Exemplar
	if err := json.Unmarshal(exRec.Body.Bytes(), &exemplars); err != nil || len(exemplars) == 0 {
		t.Fatalf("exemplars: err %v body %s", err, exRec.Body.String())
	}
	if spans := clusterTrace(t, rt, exemplars[0].TraceID); len(spans) == 0 {
		t.Fatalf("exemplar trace %s resolves to no spans", exemplars[0].TraceID)
	}

	// Events endpoint: JSONL, possibly empty in a healthy cluster, but it
	// must answer 200 with the NDJSON content type.
	evRec := httptest.NewRecorder()
	rt.ServeHTTP(evRec, httptest.NewRequest(http.MethodGet, "/v1/cluster/events?n=10", nil))
	if evRec.Code != http.StatusOK || evRec.Header().Get("Content-Type") != "application/x-ndjson" {
		t.Fatalf("/v1/cluster/events: status %d type %q", evRec.Code, evRec.Header().Get("Content-Type"))
	}
}

// TestForwardUntracedWhenDisabled pins the overhead valve: with tracing
// disabled the forward path emits no spans, no exemplars, and no trace
// headers, but still routes.
func TestForwardUntracedWhenDisabled(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"ok":true}`))
	}))
	defer backend.Close()
	rt, err := NewRouter(Config{
		Workers:        []string{strings.TrimPrefix(backend.URL, "http://")},
		DisableTracing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/streams/s/process", strings.NewReader("{}"))
	rt.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if rec.Header().Get(obs.TraceIDHeader) != "" || rec.Header().Get(obs.RouterMicrosHeader) != "" {
		t.Fatal("tracing headers present with tracing disabled")
	}
	if rt.Spans().Len() != 0 || rt.Exemplars().Len() != 0 {
		t.Fatalf("spans=%d exemplars=%d recorded with tracing disabled", rt.Spans().Len(), rt.Exemplars().Len())
	}
}
