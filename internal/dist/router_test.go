package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"freewayml/internal/faults"
)

// fakeWorker is a scriptable stand-in for a freeway-serve worker: it
// answers /v1/healthz, records evict calls, and runs an optional override
// for everything else.
type fakeWorker struct {
	ts *httptest.Server

	mu      sync.Mutex
	evicted []string

	failNext atomic.Int64 // requests to answer 503 before recovering
	handler  func(w http.ResponseWriter, r *http.Request) bool
}

func newFakeWorker(t *testing.T) *fakeWorker {
	t.Helper()
	fw := &fakeWorker{}
	fw.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fw.handler != nil && fw.handler(w, r) {
			return
		}
		if strings.HasSuffix(r.URL.Path, "/evict") {
			id := strings.TrimSuffix(strings.TrimPrefix(r.URL.Path, "/v1/streams/"), "/evict")
			fw.mu.Lock()
			fw.evicted = append(fw.evicted, id)
			fw.mu.Unlock()
			fmt.Fprintf(w, `{"stream":%q,"evicted":true}`, id)
			return
		}
		if fw.failNext.Load() > 0 {
			fw.failNext.Add(-1)
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"worker":%q,"path":%q}`+"\n", fw.addr(), r.URL.Path)
	}))
	t.Cleanup(fw.ts.Close)
	return fw
}

func (fw *fakeWorker) addr() string { return strings.TrimPrefix(fw.ts.URL, "http://") }

func (fw *fakeWorker) evictedStreams() []string {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return append([]string(nil), fw.evicted...)
}

// testRouter builds a router over the workers with a fast, deterministic
// failure model and no background prober.
func testRouter(t *testing.T, chaos *faults.ChaosTransport, workers ...*fakeWorker) *Router {
	t.Helper()
	// Cooldown 0 means "rejoin on the first healthy probe" — what the
	// deterministic tests want (withDefaults only replaces negatives).
	cfg := Config{
		FailThreshold: 2,
		Cooldown:      0,
		ProbeTimeout:  2 * time.Second,
		Retries:       5,
		RetryBase:     time.Millisecond,
		RetryMax:      4 * time.Millisecond,
	}
	for _, fw := range workers {
		cfg.Workers = append(cfg.Workers, fw.addr())
	}
	if chaos != nil {
		cfg.Transport = chaos
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	return rt
}

func routerGet(t *testing.T, rt *Router, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func routerProcess(t *testing.T, rt *Router, id string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/streams/"+id+"/process",
		strings.NewReader(`{"x":[[0,0,0]],"y":[0]}`))
	req.Header.Set("Content-Type", "application/json")
	rt.ServeHTTP(rec, req)
	return rec
}

func counterValue(rt *Router, name string, labels ...string) int64 {
	return rt.Registry().Counter(name, "", labels...).Value()
}

func TestRouterRetriesTransientConnectionDrops(t *testing.T) {
	fw := newFakeWorker(t)
	chaos := faults.NewChaosTransport(nil)
	rt := testRouter(t, chaos, fw)

	// Calls 0 and... drop the first request only: below the breaker
	// threshold of 2, so the worker stays in the ring.
	chaos.DropCalls(fw.addr(), 0, 1)
	rec := routerProcess(t, rt, "orders")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d after transient drop, want 200 (body %s)", rec.Code, rec.Body)
	}
	if got := counterValue(rt, "freeway_router_retries_total"); got != 1 {
		t.Errorf("retries_total = %d, want 1", got)
	}
	if got := counterValue(rt, "freeway_router_ejections_total"); got != 0 {
		t.Errorf("ejections_total = %d, want 0 (single drop is below threshold)", got)
	}
}

func TestRouterRetries503AsFailure(t *testing.T) {
	fw := newFakeWorker(t)
	rt := testRouter(t, nil, fw)

	fw.failNext.Store(1)
	rec := routerProcess(t, rt, "orders")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 after retrying a 503", rec.Code)
	}
	if got := counterValue(rt, "freeway_router_retries_total"); got != 1 {
		t.Errorf("retries_total = %d, want 1", got)
	}
}

func TestRouterRelaysWorkerErrorsVerbatim(t *testing.T) {
	fw := newFakeWorker(t)
	rt := testRouter(t, nil, fw)
	fw.handler = func(w http.ResponseWriter, r *http.Request) bool {
		if strings.HasSuffix(r.URL.Path, "/process") {
			http.Error(w, `{"error":{"code":400,"message":"bad batch"}}`, http.StatusBadRequest)
			return true
		}
		return false
	}
	rec := routerProcess(t, rt, "orders")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want the worker's 400 relayed (not retried)", rec.Code)
	}
	if got := counterValue(rt, "freeway_router_retries_total"); got != 0 {
		t.Errorf("retries_total = %d, want 0: a 4xx is the worker's answer", got)
	}
}

func TestRouterBreakerEjectsAndFailsOver(t *testing.T) {
	w1 := newFakeWorker(t)
	w2 := newFakeWorker(t)
	chaos := faults.NewChaosTransport(nil)
	rt := testRouter(t, chaos, w1, w2)

	// Establish which worker owns the stream, and that routing is sticky.
	rec := routerProcess(t, rt, "orders")
	if rec.Code != http.StatusOK {
		t.Fatalf("seed request failed: %d", rec.Code)
	}
	var seeded struct{ Worker string }
	if err := json.Unmarshal(rec.Body.Bytes(), &seeded); err != nil {
		t.Fatal(err)
	}
	victim, survivor := w1, w2
	if seeded.Worker == w2.addr() {
		victim, survivor = w2, w1
	}

	chaos.Partition(victim.addr())
	rec = routerProcess(t, rt, "orders")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d during failover, want 200 via the surviving worker (body %s)", rec.Code, rec.Body)
	}
	var after struct{ Worker string }
	if err := json.Unmarshal(rec.Body.Bytes(), &after); err != nil {
		t.Fatal(err)
	}
	if after.Worker != survivor.addr() {
		t.Fatalf("failover answered from %q, want survivor %q", after.Worker, survivor.addr())
	}
	if got := counterValue(rt, "freeway_router_ejections_total"); got != 1 {
		t.Errorf("ejections_total = %d, want 1", got)
	}
	if got := counterValue(rt, "freeway_router_migrations_total"); got != 1 {
		t.Errorf("migrations_total = %d, want 1 (the tracked stream moved)", got)
	}
	// The old owner was partitioned, so checkpoint-on-migrate had to fail;
	// the stale-flush on the new owner succeeded (a no-op discard there).
	if got := counterValue(rt, "freeway_router_migrate_evicts_total", "result", "error"); got != 1 {
		t.Errorf("migrate evict errors = %d, want 1", got)
	}
	if got := counterValue(rt, "freeway_router_stale_flush_total", "result", "ok"); got != 1 {
		t.Errorf("stale flushes = %d, want 1", got)
	}

	// Topology reflects the ejection.
	rec = routerGet(t, rt, "/v1/cluster")
	var cluster ClusterResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &cluster); err != nil {
		t.Fatal(err)
	}
	if cluster.HealthyCount != 1 {
		t.Errorf("healthy_count = %d, want 1; body %s", cluster.HealthyCount, rec.Body)
	}
}

func TestRouterRejoinMigratesBackWithCleanEvict(t *testing.T) {
	w1 := newFakeWorker(t)
	w2 := newFakeWorker(t)
	chaos := faults.NewChaosTransport(nil)
	rt := testRouter(t, chaos, w1, w2)

	rec := routerProcess(t, rt, "orders")
	var seeded struct{ Worker string }
	json.Unmarshal(rec.Body.Bytes(), &seeded)
	victim, survivor := w1, w2
	if seeded.Worker == w2.addr() {
		victim, survivor = w2, w1
	}

	// Eject the owner; the stream fails over and is now tracked on the
	// survivor.
	chaos.Partition(victim.addr())
	if rec := routerProcess(t, rt, "orders"); rec.Code != http.StatusOK {
		t.Fatalf("failover request: %d", rec.Code)
	}

	// Heal and probe: the worker rejoins (cooldown 0), the stream's arc
	// moves back, and this time the previous owner is alive — the router
	// checkpoints-and-evicts it there cleanly.
	chaos.Heal(victim.addr())
	rt.ProbeOnce()
	if got := counterValue(rt, "freeway_router_rejoins_total"); got != 1 {
		t.Fatalf("rejoins_total = %d, want 1", got)
	}
	if got := counterValue(rt, "freeway_router_migrate_evicts_total", "result", "ok"); got != 1 {
		t.Errorf("clean migrate evicts = %d, want 1", got)
	}
	// The survivor saw the ejection-time stale-flush plus the rejoin-time
	// checkpoint evict; the rejoined victim saw its own stale-flush.
	if ev := survivor.evictedStreams(); len(ev) != 2 || ev[0] != "orders" || ev[1] != "orders" {
		t.Errorf("survivor saw evictions %v, want [orders orders]", ev)
	}
	if ev := victim.evictedStreams(); len(ev) != 1 || ev[0] != "orders" {
		t.Errorf("rejoined victim saw evictions %v, want its stale session flushed: [orders]", ev)
	}
	// And the stream is served by its original owner again.
	rec = routerProcess(t, rt, "orders")
	var back struct{ Worker string }
	json.Unmarshal(rec.Body.Bytes(), &back)
	if back.Worker != victim.addr() {
		t.Errorf("post-rejoin request answered by %q, want %q", back.Worker, victim.addr())
	}
}

func TestRouterExhaustedReturns502AndNotReady(t *testing.T) {
	fw := newFakeWorker(t)
	chaos := faults.NewChaosTransport(nil)
	rt := testRouter(t, chaos, fw)

	chaos.Partition(fw.addr())
	rec := routerProcess(t, rt, "orders")
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("status %d with every worker down, want 502", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"error"`) {
		t.Errorf("502 body is not the JSON error envelope: %s", rec.Body)
	}
	if got := counterValue(rt, "freeway_router_exhausted_total"); got != 1 {
		t.Errorf("exhausted_total = %d, want 1", got)
	}

	// Liveness stays green (the router itself is fine); readiness goes red.
	if rec := routerGet(t, rt, "/v1/healthz"); rec.Code != http.StatusOK {
		t.Errorf("healthz = %d, want 200", rec.Code)
	}
	if rec := routerGet(t, rt, "/v1/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz = %d, want 503 with zero healthy workers", rec.Code)
	}
}

func TestRouterProbeEjectsWithoutTraffic(t *testing.T) {
	w1 := newFakeWorker(t)
	w2 := newFakeWorker(t)
	chaos := faults.NewChaosTransport(nil)
	rt := testRouter(t, chaos, w1, w2)

	chaos.Partition(w1.addr())
	rt.ProbeOnce() // fail 1
	rt.ProbeOnce() // fail 2 → threshold
	if got := counterValue(rt, "freeway_router_ejections_total"); got != 1 {
		t.Fatalf("ejections_total = %d after 2 failed probes, want 1", got)
	}
	if got := counterValue(rt, "freeway_router_probe_failures_total", "worker", w1.addr()); got != 2 {
		t.Errorf("probe_failures_total{worker=%s} = %d, want 2", w1.addr(), got)
	}
	if g := rt.Registry().Gauge("freeway_router_worker_healthy", "", "worker", w1.addr()).Value(); g != 0 {
		t.Errorf("worker_healthy gauge = %v, want 0", g)
	}
}

func TestRouterConcurrentForwardsDuringChurn(t *testing.T) {
	// Race-detector workout: concurrent forwards while a worker is
	// partitioned, ejected, healed, and rejoined. Correctness assertion is
	// just "no client-visible failure".
	w1 := newFakeWorker(t)
	w2 := newFakeWorker(t)
	chaos := faults.NewChaosTransport(nil)
	rt := testRouter(t, chaos, w1, w2)

	var wg sync.WaitGroup
	var failures atomic.Int64
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rec := routerProcess(t, rt, fmt.Sprintf("s%d", (g+i)%8))
				if rec.Code != http.StatusOK {
					failures.Add(1)
				}
			}
		}(g)
	}
	for round := 0; round < 3; round++ {
		chaos.Partition(w1.addr())
		rt.ProbeOnce()
		rt.ProbeOnce()
		chaos.Heal(w1.addr())
		rt.ProbeOnce()
	}
	close(stop)
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Errorf("%d client-visible failures during churn, want 0", n)
	}
}

// TestRouterOpaqueBinaryPassThrough: the router is payload-agnostic — an
// arbitrary Content-Type and body forward to the worker byte-for-byte, the
// worker's response body and headers relay back byte-for-byte, and
// hop-by-hop headers are stripped in both directions.
func TestRouterOpaqueBinaryPassThrough(t *testing.T) {
	reqBody := make([]byte, 4096)
	respBody := make([]byte, 2048)
	rng := rand.New(rand.NewSource(7))
	rng.Read(reqBody)
	rng.Read(respBody)

	const binCT = "application/x-freeway-batch"
	var workerErr atomic.Value
	fw := newFakeWorker(t)
	fw.handler = func(w http.ResponseWriter, r *http.Request) bool {
		if !strings.HasSuffix(r.URL.Path, "/process") {
			return false
		}
		got, _ := io.ReadAll(r.Body)
		switch {
		case !bytes.Equal(got, reqBody):
			workerErr.Store(fmt.Sprintf("body mangled: %d bytes, want %d", len(got), len(reqBody)))
		case r.Header.Get("Content-Type") != binCT:
			workerErr.Store(fmt.Sprintf("content-type %q", r.Header.Get("Content-Type")))
		case r.Header.Get("X-Freeway-Test") != "carried":
			workerErr.Store(fmt.Sprintf("custom header %q", r.Header.Get("X-Freeway-Test")))
		case r.Header.Get("Proxy-Authorization") != "":
			workerErr.Store("hop-by-hop request header forwarded")
		}
		w.Header().Set("Content-Type", "application/x-freeway-reply")
		w.Header().Set("X-Freeway-Worker", "w1")
		w.Header().Set("Keep-Alive", "timeout=5")
		w.Write(respBody)
		return true
	}
	rt := testRouter(t, nil, fw)

	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/streams/bin/process", bytes.NewReader(reqBody))
	req.Header.Set("Content-Type", binCT)
	req.Header.Set("X-Freeway-Test", "carried")
	req.Header.Set("Proxy-Authorization", "secret")
	rt.ServeHTTP(rec, req)

	if msg, _ := workerErr.Load().(string); msg != "" {
		t.Fatalf("worker saw mangled request: %s", msg)
	}
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if !bytes.Equal(rec.Body.Bytes(), respBody) {
		t.Errorf("response body mangled: %d bytes, want %d", rec.Body.Len(), len(respBody))
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-freeway-reply" {
		t.Errorf("response content-type %q not propagated", ct)
	}
	if v := rec.Header().Get("X-Freeway-Worker"); v != "w1" {
		t.Errorf("response header not relayed (got %q)", v)
	}
	if rec.Header().Get("Keep-Alive") != "" {
		t.Error("hop-by-hop response header relayed to the client")
	}
}
