package dist

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"freewayml/internal/core"
	"freewayml/internal/serve"
)

// benchRouterHop measures one routed hop end to end — router attempt loop,
// HTTP round trip, and a real freeway-serve worker running the learner —
// with tracing either live (trace mint, per-attempt span, downstream
// traceparent, response headers, exemplar offer) or disabled. This is the
// router extension of the BenchmarkLearnerInstrumented contract: the gate
// is Traced within ≤3% of Untraced, with the denominator a real routed
// batch rather than a stub, exactly as the learner gate's denominator is a
// real Process call.
func benchRouterHop(b *testing.B, disableTracing bool) {
	cfg := core.DefaultConfig()
	cfg.Shift.WarmupPoints = 64
	srv, err := serve.New(cfg, 3, 2)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	rt, err := NewRouter(Config{
		Workers:        []string{strings.TrimPrefix(ts.URL, "http://")},
		DisableTracing: disableTracing,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()

	rng := rand.New(rand.NewSource(7))
	var batch struct {
		X [][]float64 `json:"x"`
		Y []int       `json:"y"`
	}
	for i := 0; i < 16; i++ {
		c := rng.Intn(2)
		batch.X = append(batch.X, []float64{float64(c)*2 + rng.NormFloat64()*0.3, rng.NormFloat64() * 0.3, 0})
		batch.Y = append(batch.Y, c)
	}
	body, err := json.Marshal(batch)
	if err != nil {
		b.Fatal(err)
	}
	payload := string(body)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/streams/bench/process", strings.NewReader(payload))
		req.Header.Set("Content-Type", "application/json")
		rt.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}

func BenchmarkRouterHopTraced(b *testing.B)   { benchRouterHop(b, false) }
func BenchmarkRouterHopUntraced(b *testing.B) { benchRouterHop(b, true) }
