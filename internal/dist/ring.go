// Package dist is FreewayML's distributed serving tier: a thin stateless
// router that consistent-hashes stream ids onto N freeway-serve worker
// processes, with an explicit failure model — periodic health probes,
// per-request deadlines, bounded retry with exponential backoff and jitter,
// and a per-worker circuit breaker that ejects an unhealthy worker from the
// ring and triggers checkpoint-based session migration.
//
// Streams are stateful (a learner per stream id), so placement matters: the
// ring pins each id to one worker, and a ring change — ejection, rejoin —
// moves only the streams whose arc moved. Migration reuses the session
// layer's checkpoint machinery: the router checkpoints-and-evicts the moved
// streams on their old owner when it is reachable (a rejoin rebalance), and
// when it is not (a crash), the new owner restores each stream from the
// shared checkpoint directory on its first request — the CRC32 envelope
// rejects torn files, so an unclean death costs at most the batches since
// the last checkpoint, never a silently corrupt model.
package dist

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the virtual-node count per worker. 64 keeps the maximum
// arc imbalance under ~20% for small clusters while the ring stays tiny
// (N×64 uint32s) and rebuilds are negligible next to a single batch.
const DefaultVNodes = 64

// ring is a consistent-hash ring over worker addresses. It is not
// goroutine-safe; the Router guards it with its own mutex. Hashing is
// FNV-1a, deliberately seedless: two routers (or one restarted) must map
// the same stream id to the same worker, or a router restart would itself
// be a cluster-wide rebalance.
type ring struct {
	vnodes  int
	workers map[string]bool
	hashes  []uint32          // sorted vnode positions
	owner   map[uint32]string // vnode position → worker address
}

func newRing(vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &ring{
		vnodes:  vnodes,
		workers: map[string]bool{},
		owner:   map[uint32]string{},
	}
}

// hash32 is FNV-1a with a 32-bit avalanche finalizer. Raw FNV over the
// short, similar strings used here ("addr#3", "stream-17") leaves its output
// clustered, which shows up directly as arc imbalance; the multiply-xorshift
// rounds spread those points uniformly around the circle.
func hash32(s string) uint32 {
	f := fnv.New32a()
	f.Write([]byte(s))
	h := f.Sum32()
	h ^= h >> 16
	h *= 0x7feb352d
	h ^= h >> 15
	h *= 0x846ca68b
	h ^= h >> 16
	return h
}

// rebuild reconstructs the vnode table from the current worker set. Workers
// are visited in sorted order so a position contested by two workers (a
// 32-bit collision) resolves identically regardless of join order.
func (r *ring) rebuild() {
	r.hashes = r.hashes[:0]
	for k := range r.owner {
		delete(r.owner, k)
	}
	names := make([]string, 0, len(r.workers))
	for w := range r.workers {
		names = append(names, w)
	}
	sort.Strings(names)
	for _, w := range names {
		for i := 0; i < r.vnodes; i++ {
			h := hash32(fmt.Sprintf("%s#%d", w, i))
			if _, taken := r.owner[h]; taken {
				continue // earlier (lexicographically smaller) worker keeps it
			}
			r.owner[h] = w
			r.hashes = append(r.hashes, h)
		}
	}
	sort.Slice(r.hashes, func(i, j int) bool { return r.hashes[i] < r.hashes[j] })
}

// add inserts a worker (idempotent).
func (r *ring) add(worker string) {
	if r.workers[worker] {
		return
	}
	r.workers[worker] = true
	r.rebuild()
}

// remove ejects a worker (idempotent).
func (r *ring) remove(worker string) {
	if !r.workers[worker] {
		return
	}
	delete(r.workers, worker)
	r.rebuild()
}

// ownerOf maps a stream id to its worker: the first vnode clockwise from
// the id's hash. ok is false when the ring is empty.
func (r *ring) ownerOf(id string) (string, bool) {
	if len(r.hashes) == 0 {
		return "", false
	}
	h := hash32(id)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0 // wrap
	}
	return r.owner[r.hashes[i]], true
}

// members returns the resident workers, sorted.
func (r *ring) members() []string {
	names := make([]string, 0, len(r.workers))
	for w := range r.workers {
		names = append(names, w)
	}
	sort.Strings(names)
	return names
}
