package cluster

import "errors"

// ExpBuffer is the coherent-experience buffer of paper Sec. V-A2: it holds
// the most recent labeled points for CEC, bounded by a capacity (the
// ExpBuffer interface parameter) and an expiration age measured in batches,
// after which stale experience is discarded.
type ExpBuffer struct {
	capacity int
	maxAge   int // in batches; 0 disables expiration

	x     [][]float64
	y     []int
	birth []int // batch index at which each point was added
	now   int
}

// NewExpBuffer returns a buffer holding at most capacity labeled points,
// expiring points older than maxAge batches (maxAge 0 disables expiration).
func NewExpBuffer(capacity, maxAge int) (*ExpBuffer, error) {
	if capacity < 1 {
		return nil, errors.New("cluster: ExpBuffer capacity must be >= 1")
	}
	if maxAge < 0 {
		return nil, errors.New("cluster: ExpBuffer maxAge must be >= 0")
	}
	return &ExpBuffer{capacity: capacity, maxAge: maxAge}, nil
}

// AddBatch appends a labeled batch (advancing the buffer clock by one
// batch), evicting expired then oldest points to stay within capacity.
func (b *ExpBuffer) AddBatch(x [][]float64, y []int) error {
	if len(x) != len(y) {
		return errors.New("cluster: ExpBuffer batch size mismatch")
	}
	b.now++
	for i := range x {
		b.x = append(b.x, x[i])
		b.y = append(b.y, y[i])
		b.birth = append(b.birth, b.now)
	}
	b.evict()
	return nil
}

// evict drops expired points, then trims from the front to capacity.
func (b *ExpBuffer) evict() {
	start := 0
	if b.maxAge > 0 {
		// A point is valid for maxAge batches after the batch it arrived in.
		for start < len(b.x) && b.now-b.birth[start] >= b.maxAge {
			start++
		}
	}
	if over := len(b.x) - start - b.capacity; over > 0 {
		start += over
	}
	if start > 0 {
		b.x = append([][]float64(nil), b.x[start:]...)
		b.y = append([]int(nil), b.y[start:]...)
		b.birth = append([]int(nil), b.birth[start:]...)
	}
}

// Len returns the number of stored points.
func (b *ExpBuffer) Len() int { return len(b.x) }

// Experience returns the stored labeled points, oldest first. The slices
// are shared; callers must not mutate them.
func (b *ExpBuffer) Experience() ([][]float64, []int) { return b.x, b.y }

// Tick advances the buffer clock without adding points (an unlabeled batch
// passed by), so expiration reflects stream time rather than label arrivals.
func (b *ExpBuffer) Tick() {
	b.now++
	b.evict()
}

// ExpBufferState is the serializable form of an ExpBuffer.
type ExpBufferState struct {
	X     [][]float64
	Y     []int
	Birth []int
	Now   int
}

// Export returns the buffer contents for checkpointing.
func (b *ExpBuffer) Export() ExpBufferState {
	s := ExpBufferState{Now: b.now}
	s.X = make([][]float64, len(b.x))
	for i, row := range b.x {
		s.X[i] = append([]float64(nil), row...)
	}
	s.Y = append([]int(nil), b.y...)
	s.Birth = append([]int(nil), b.birth...)
	return s
}

// Import replaces the buffer contents with an exported state.
func (b *ExpBuffer) Import(s ExpBufferState) error {
	if len(s.X) != len(s.Y) || len(s.X) != len(s.Birth) {
		return errors.New("cluster: ExpBuffer import length mismatch")
	}
	b.x = make([][]float64, len(s.X))
	for i, row := range s.X {
		b.x[i] = append([]float64(nil), row...)
	}
	b.y = append([]int(nil), s.Y...)
	b.birth = append([]int(nil), s.Birth...)
	b.now = s.Now
	b.evict()
	return nil
}
