package cluster

import (
	"math"
	"math/rand"
	"testing"
)

// blobs generates n points around each of the given centers.
func blobs(rng *rand.Rand, centers [][]float64, n int, spread float64) ([][]float64, []int) {
	var x [][]float64
	var y []int
	for c, center := range centers {
		for i := 0; i < n; i++ {
			p := make([]float64, len(center))
			for j := range p {
				p[j] = center[j] + rng.NormFloat64()*spread
			}
			x = append(x, p)
			y = append(y, c)
		}
	}
	return x, y
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans(nil, 2, 1); err == nil {
		t.Error("empty points should error")
	}
	if _, err := KMeans([][]float64{{1}}, 0, 1); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := KMeans([][]float64{{1}}, 2, 1); err == nil {
		t.Error("fewer points than k should error")
	}
	if _, err := KMeans([][]float64{{1}, {1, 2}}, 1, 1); err == nil {
		t.Error("ragged points should error")
	}
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	x, truth := blobs(rng, centers, 50, 0.5)
	res, err := KMeans(x, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Every true cluster must map to a single k-means cluster (purity 1).
	mapping := map[int]map[int]int{}
	for i, c := range res.Assignment {
		if mapping[truth[i]] == nil {
			mapping[truth[i]] = map[int]int{}
		}
		mapping[truth[i]][c]++
	}
	for tc, dist := range mapping {
		if len(dist) != 1 {
			t.Errorf("true cluster %d split across %v", tc, dist)
		}
	}
	if res.Iterations <= 0 || res.Iterations > maxKMeansIterations {
		t.Errorf("iterations = %d", res.Iterations)
	}
}

func TestKMeansDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, _ := blobs(rng, [][]float64{{0, 0}, {5, 5}}, 30, 0.5)
	a, err := KMeans(x, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(x, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatal("same seed produced different assignments")
		}
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	x := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	res, err := KMeans(x, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, c := range res.Assignment {
		seen[c] = true
	}
	if len(seen) != 3 {
		t.Errorf("k=n should give singleton clusters, got %v", res.Assignment)
	}
	if in := res.Inertia(x); in > 1e-9 {
		t.Errorf("inertia = %v, want 0", in)
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	x := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	res, err := KMeans(x, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if in := res.Inertia(x); in > 1e-9 {
		t.Errorf("inertia on identical points = %v", in)
	}
}

func TestInertiaDecreasesWithMoreClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, _ := blobs(rng, [][]float64{{0, 0}, {8, 8}, {-8, 8}, {8, -8}}, 40, 1.0)
	var prev float64 = math.Inf(1)
	for _, k := range []int{1, 2, 4} {
		res, err := KMeans(x, k, 5)
		if err != nil {
			t.Fatal(err)
		}
		in := res.Inertia(x)
		if in > prev+1e-9 {
			t.Errorf("inertia increased at k=%d: %v > %v", k, in, prev)
		}
		prev = in
	}
}

func TestCECMapsClustersToLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	centers := [][]float64{{0, 0}, {12, 12}, {-12, 12}}
	// Labeled experience from the same distribution.
	expX, expY := blobs(rng, centers, 10, 0.5)
	// Unlabeled current batch.
	batch, truth := blobs(rng, centers, 40, 0.5)
	pred, err := CEC(batch, expX, expY, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range truth {
		if pred[i] == truth[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(truth)); acc < 0.95 {
		t.Errorf("CEC accuracy = %v, want >= 0.95", acc)
	}
}

func TestCECErrors(t *testing.T) {
	x := [][]float64{{1, 1}}
	if _, err := CEC(nil, x, []int{0}, 2, 1); err == nil {
		t.Error("empty batch should error")
	}
	if _, err := CEC(x, x, []int{0, 1}, 2, 1); err == nil {
		t.Error("experience mismatch should error")
	}
	if _, err := CEC(x, nil, nil, 2, 1); err == nil {
		t.Error("no experience should error")
	}
	if _, err := CEC(x, x, []int{5}, 2, 1); err == nil {
		t.Error("out-of-range experience label should error")
	}
	if _, err := CEC(x, x, []int{0}, 0, 1); err == nil {
		t.Error("numClasses 0 should error")
	}
}

func TestCECWithMissingClassInExperience(t *testing.T) {
	// Experience only covers class 0; predictions must still be valid labels.
	rng := rand.New(rand.NewSource(5))
	expX, expY := blobs(rng, [][]float64{{0, 0}}, 10, 0.5)
	batch, _ := blobs(rng, [][]float64{{0, 0}, {12, 12}}, 20, 0.5)
	pred, err := CEC(batch, expX, expY, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pred {
		if p < 0 || p >= 2 {
			t.Fatalf("invalid predicted label %d", p)
		}
	}
}

func TestCECMoreClassesThanPoints(t *testing.T) {
	// k is capped at the joint point count.
	batch := [][]float64{{0, 0}}
	expX := [][]float64{{0.1, 0}}
	expY := []int{1}
	pred, err := CEC(batch, expX, expY, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) != 1 || pred[0] != 1 {
		t.Errorf("pred = %v, want [1]", pred)
	}
}

func TestExpBufferCapacity(t *testing.T) {
	b, err := NewExpBuffer(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := [][]float64{{1}, {2}, {3}}
	y := []int{0, 1, 0}
	if err := b.AddBatch(x, y); err != nil {
		t.Fatal(err)
	}
	if err := b.AddBatch(x, y); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 5 {
		t.Errorf("Len = %d, want capacity 5", b.Len())
	}
	// Newest points survive: last stored value should be 3.
	bx, by := b.Experience()
	if bx[len(bx)-1][0] != 3 || by[len(by)-1] != 0 {
		t.Errorf("unexpected tail: %v %v", bx[len(bx)-1], by[len(by)-1])
	}
}

func TestExpBufferExpiration(t *testing.T) {
	b, err := NewExpBuffer(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddBatch([][]float64{{1}}, []int{0}); err != nil {
		t.Fatal(err)
	}
	b.Tick()
	b.Tick()
	if b.Len() != 0 {
		t.Errorf("expired point survived: Len = %d", b.Len())
	}
}

func TestExpBufferValidation(t *testing.T) {
	if _, err := NewExpBuffer(0, 0); err == nil {
		t.Error("capacity 0 should error")
	}
	if _, err := NewExpBuffer(1, -1); err == nil {
		t.Error("negative maxAge should error")
	}
	b, _ := NewExpBuffer(2, 0)
	if err := b.AddBatch([][]float64{{1}}, []int{0, 1}); err == nil {
		t.Error("size mismatch should error")
	}
}
