package cluster

import (
	"errors"
	"math"
)

// OnlineKMeans is a sequential (streaming) k-means: centroids update one
// point at a time with a per-centroid learning rate 1/n_c, so clustering
// keeps pace with the stream without re-running Lloyd iterations — the
// streaming-clustering substrate referenced by the paper's related work
// (DISC, DistStream) and usable as a cheaper CEC backend on high-rate
// streams.
type OnlineKMeans struct {
	k         int
	dim       int
	centroids [][]float64
	counts    []int
	// DecayHalfLife, when positive, exponentially fades the effective
	// counts so centroids track drifting streams rather than freezing;
	// measured in observed points.
	DecayHalfLife int
	seen          int
}

// NewOnlineKMeans returns an online k-means for dim-dimensional points.
func NewOnlineKMeans(k, dim int) (*OnlineKMeans, error) {
	if k < 1 {
		return nil, errors.New("cluster: OnlineKMeans k must be >= 1")
	}
	if dim < 1 {
		return nil, errors.New("cluster: OnlineKMeans dim must be >= 1")
	}
	return &OnlineKMeans{k: k, dim: dim}, nil
}

// K returns the cluster count; Initialized reports whether all centroids
// have been seeded.
func (o *OnlineKMeans) K() int            { return o.k }
func (o *OnlineKMeans) Initialized() bool { return len(o.centroids) == o.k }

// Observe ingests one point: the first k distinct points seed the
// centroids, subsequent points move their nearest centroid toward them.
// It returns the index of the cluster the point was assigned to.
func (o *OnlineKMeans) Observe(x []float64) (int, error) {
	if len(x) != o.dim {
		return 0, errors.New("cluster: OnlineKMeans dimension mismatch")
	}
	o.seen++
	if len(o.centroids) < o.k {
		c := make([]float64, o.dim)
		copy(c, x)
		o.centroids = append(o.centroids, c)
		o.counts = append(o.counts, 1)
		return len(o.centroids) - 1, nil
	}
	best, _ := o.Assign(x)
	if o.DecayHalfLife > 0 {
		// Exponential fade keeps the effective count bounded, so the
		// per-point learning rate never vanishes on infinite streams.
		decay := math.Exp(-math.Ln2 / float64(o.DecayHalfLife))
		for i := range o.counts {
			faded := float64(o.counts[i]) * decay
			if faded < 1 {
				faded = 1
			}
			o.counts[i] = int(faded)
		}
	}
	o.counts[best]++
	lr := 1 / float64(o.counts[best])
	for j := range o.centroids[best] {
		o.centroids[best][j] += lr * (x[j] - o.centroids[best][j])
	}
	return best, nil
}

// Assign returns the nearest centroid index and its squared distance
// (0, +Inf when uninitialized).
func (o *OnlineKMeans) Assign(x []float64) (int, float64) {
	best, bestD := 0, math.Inf(1)
	for c, cen := range o.centroids {
		if d := sqDist(x, cen); d < bestD {
			best, bestD = c, d
		}
	}
	return best, bestD
}

// Centroids returns copies of the current centroids.
func (o *OnlineKMeans) Centroids() [][]float64 {
	out := make([][]float64, len(o.centroids))
	for i, c := range o.centroids {
		out[i] = append([]float64(nil), c...)
	}
	return out
}
