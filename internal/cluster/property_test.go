package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: KMeans assignments index valid clusters, every requested cluster
// count is materialized (when points suffice), and inertia never exceeds the
// single-cluster inertia.
func TestKMeansInvariantsProperty(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%40) + 2
		k := int(kRaw%4) + 1
		if k > n {
			k = n
		}
		x := make([][]float64, n)
		for i := range x {
			x[i] = []float64{rng.NormFloat64() * 5, rng.NormFloat64() * 5}
		}
		res, err := KMeans(x, k, seed)
		if err != nil {
			return false
		}
		if len(res.Assignment) != n || len(res.Centroids) != k {
			return false
		}
		for _, a := range res.Assignment {
			if a < 0 || a >= k {
				return false
			}
		}
		single, err := KMeans(x, 1, seed)
		if err != nil {
			return false
		}
		return res.Inertia(x) <= single.Inertia(x)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: CEC predictions are always valid labels and cover the batch.
func TestCECValidLabelsProperty(t *testing.T) {
	f := func(seed int64, classesRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		classes := int(classesRaw%4) + 2
		centers := make([][]float64, classes)
		for c := range centers {
			centers[c] = []float64{float64(c) * 10, 0}
		}
		expX, expY := blobs(rng, centers, 5, 0.5)
		batch, _ := blobs(rng, centers, 20, 0.5)
		pred, err := CEC(batch, expX, expY, classes, seed)
		if err != nil {
			return false
		}
		if len(pred) != len(batch) {
			return false
		}
		for _, p := range pred {
			if p < 0 || p >= classes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
