// Package cluster implements the unsupervised substrate of FreewayML's
// sudden-shift mechanism: k-means with k-means++ seeding, and the coherent
// experience clustering (CEC) of paper Sec. IV-C, which maps unlabeled
// clusters onto labels using the most recent labeled points — the "coherent
// experience" — clustered jointly with the new batch.
package cluster

import (
	"errors"
	"math"
	"math/rand"
)

// KMeansResult holds a fitted clustering.
type KMeansResult struct {
	Centroids  [][]float64
	Assignment []int // Assignment[i] is the cluster of point i
	Iterations int
}

// maxKMeansIterations bounds Lloyd's algorithm; the small per-batch
// clusterings CEC runs converge in a handful of iterations.
const maxKMeansIterations = 50

// KMeans clusters the points into k clusters using k-means++ initialization
// followed by Lloyd iterations, deterministic for a given seed. It returns
// an error when the input is empty, ragged, or has fewer points than k.
func KMeans(points [][]float64, k int, seed int64) (*KMeansResult, error) {
	if len(points) == 0 {
		return nil, errors.New("cluster: no points")
	}
	if k < 1 {
		return nil, errors.New("cluster: k must be >= 1")
	}
	if len(points) < k {
		return nil, errors.New("cluster: fewer points than clusters")
	}
	dim := len(points[0])
	for _, p := range points {
		if len(p) != dim {
			return nil, errors.New("cluster: ragged points")
		}
	}
	rng := rand.New(rand.NewSource(seed))
	centroids := seedPlusPlus(points, k, rng)
	assign := make([]int, len(points))
	counts := make([]int, k)

	iters := 0
	for ; iters < maxKMeansIterations; iters++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, cen := range centroids {
				if d := sqDist(p, cen); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iters > 0 {
			break
		}
		// Recompute centroids.
		for c := range centroids {
			for j := range centroids[c] {
				centroids[c][j] = 0
			}
			counts[c] = 0
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for j, v := range p {
				centroids[c][j] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				copy(centroids[c], points[rng.Intn(len(points))])
				continue
			}
			inv := 1 / float64(counts[c])
			for j := range centroids[c] {
				centroids[c][j] *= inv
			}
		}
	}
	return &KMeansResult{Centroids: centroids, Assignment: assign, Iterations: iters}, nil
}

// seedPlusPlus picks k initial centroids with the k-means++ D² weighting.
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	dim := len(points[0])
	centroids := make([][]float64, 0, k)
	first := points[rng.Intn(len(points))]
	centroids = append(centroids, cloneRow(first, dim))

	d2 := make([]float64, len(points))
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		var next []float64
		if total == 0 {
			next = points[rng.Intn(len(points))]
		} else {
			target := rng.Float64() * total
			acc := 0.0
			next = points[len(points)-1]
			for i, w := range d2 {
				acc += w
				if acc >= target {
					next = points[i]
					break
				}
			}
		}
		centroids = append(centroids, cloneRow(next, dim))
	}
	return centroids
}

func cloneRow(row []float64, dim int) []float64 {
	out := make([]float64, dim)
	copy(out, row)
	return out
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Inertia returns the within-cluster sum of squared distances of a result
// over the points it was fitted on.
func (r *KMeansResult) Inertia(points [][]float64) float64 {
	var s float64
	for i, p := range points {
		s += sqDist(p, r.Centroids[r.Assignment[i]])
	}
	return s
}
