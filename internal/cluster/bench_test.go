package cluster

import (
	"math/rand"
	"testing"
)

func BenchmarkKMeans(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, _ := blobs(rng, [][]float64{{0, 0}, {8, 8}, {-8, 8}}, 100, 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMeans(x, 3, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCEC(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	expX, expY := blobs(rng, centers, 20, 0.5)
	batch, _ := blobs(rng, centers, 100, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CEC(batch, expX, expY, 3, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
