package cluster

import (
	"math/rand"
	"testing"
)

func TestCECKWithScoreHighAgreementOnSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	centers := [][]float64{{0, 0}, {15, 15}}
	expX, expY := blobs(rng, centers, 12, 0.5)
	batch, _ := blobs(rng, centers, 30, 0.5)
	_, agreement, err := CECKWithScore(batch, expX, expY, 4, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if agreement < 0.95 {
		t.Errorf("agreement on separable data = %v", agreement)
	}
}

func TestCECKWithScoreLowAgreementWhenClustersCutClasses(t *testing.T) {
	// One isotropic blob whose labels are decided by a hyperplane through
	// its center: clusters cannot align with classes.
	rng := rand.New(rand.NewSource(22))
	mk := func(n int) ([][]float64, []int) {
		x := make([][]float64, n)
		y := make([]int, n)
		for i := range x {
			x[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
			if x[i][0]+x[i][1] > 0 {
				y[i] = 1
			}
		}
		return x, y
	}
	expX, expY := mk(40)
	batch, _ := mk(60)
	_, agreement, err := CECKWithScore(batch, expX, expY, 2, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if agreement > 0.9 {
		t.Errorf("agreement on class-cutting blob = %v, expected low", agreement)
	}
}

func TestCECKRejectsKBelowClasses(t *testing.T) {
	if _, err := CECK([][]float64{{1}}, [][]float64{{1}}, []int{0}, 1, 2, 1); err == nil {
		t.Error("k < numClasses should error")
	}
}
