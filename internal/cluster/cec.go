package cluster

import (
	"errors"
	"math"
)

// CEC performs coherent experience clustering (paper Sec. IV-C): it clusters
// the unlabeled current batch together with m recent labeled points, then
// maps each cluster to the majority label of its labeled members. Clusters
// containing no labeled member inherit the label of the nearest labeled
// cluster centroid. It returns the predicted labels for the unlabeled batch.
//
// numClasses is c, the number of clusters (one per label, as in the paper).
// seed makes the clustering deterministic.
func CEC(batch [][]float64, expX [][]float64, expY []int, numClasses int, seed int64) ([]int, error) {
	return CECK(batch, expX, expY, numClasses, numClasses, seed)
}

// CECK is CEC with an independent cluster count k ≥ numClasses:
// over-clustering lets non-spherical or imbalanced classes occupy several
// clusters each, with the majority-label vote still mapping every cluster to
// one label.
func CECK(batch [][]float64, expX [][]float64, expY []int, k, numClasses int, seed int64) ([]int, error) {
	pred, _, err := CECKWithScore(batch, expX, expY, k, numClasses, seed)
	return pred, err
}

// CECStats reports the clustering evidence behind one CEC dispatch — the
// decision-trace payload for Pattern B batches.
type CECStats struct {
	// K is the effective cluster count (clamped to the joint point count).
	K int
	// Iterations is how many Lloyd iterations k-means ran.
	Iterations int
	// ExperiencePoints is the size of the coherent experience used.
	ExperiencePoints int
	// Agreement is the labeled-experience agreement (see CECKWithScore).
	Agreement float64
}

// CECKWithScore additionally reports the experience agreement: the fraction
// of labeled experience points whose cluster-mapped label matches their true
// label. Agreement near 1 means the clustering aligns with the class
// structure; low agreement means clusters cut across classes and the CEC
// output should not be trusted (the quality check behind the paper's
// limitation discussion in Sec. VI-F).
func CECKWithScore(batch [][]float64, expX [][]float64, expY []int, k, numClasses int, seed int64) ([]int, float64, error) {
	pred, st, err := CECKWithStats(batch, expX, expY, k, numClasses, seed)
	return pred, st.Agreement, err
}

// CECKWithStats is CECKWithScore returning the full clustering evidence.
func CECKWithStats(batch [][]float64, expX [][]float64, expY []int, k, numClasses int, seed int64) ([]int, CECStats, error) {
	if k < numClasses {
		return nil, CECStats{}, errors.New("cluster: CECK needs k >= numClasses")
	}
	if len(batch) == 0 {
		return nil, CECStats{}, errors.New("cluster: CEC empty batch")
	}
	if len(expX) != len(expY) {
		return nil, CECStats{}, errors.New("cluster: CEC experience size mismatch")
	}
	if len(expX) == 0 {
		return nil, CECStats{}, errors.New("cluster: CEC requires labeled experience")
	}
	if numClasses < 1 {
		return nil, CECStats{}, errors.New("cluster: CEC numClasses must be >= 1")
	}
	for _, y := range expY {
		if y < 0 || y >= numClasses {
			return nil, CECStats{}, errors.New("cluster: CEC experience label out of range")
		}
	}

	// Joint clustering of current batch + coherent experience.
	joint := make([][]float64, 0, len(batch)+len(expX))
	joint = append(joint, batch...)
	joint = append(joint, expX...)
	if k > len(joint) {
		k = len(joint)
	}
	res, err := KMeans(joint, k, seed)
	if err != nil {
		return nil, CECStats{}, err
	}

	// Vote: labeled members elect each cluster's label.
	votes := make([][]int, k)
	for i := range votes {
		votes[i] = make([]int, numClasses)
	}
	for j, y := range expY {
		c := res.Assignment[len(batch)+j]
		votes[c][y]++
	}
	clusterLabel := make([]int, k)
	for c := range clusterLabel {
		clusterLabel[c] = -1
		best := 0
		for y, n := range votes[c] {
			if n > best {
				best = n
				clusterLabel[c] = y
			}
		}
	}

	// Clusters with no labeled member: inherit from the nearest labeled
	// cluster centroid.
	for c := range clusterLabel {
		if clusterLabel[c] >= 0 {
			continue
		}
		bestD := math.Inf(1)
		label := 0
		for c2 := range clusterLabel {
			if clusterLabel[c2] < 0 {
				continue
			}
			if d := sqDist(res.Centroids[c], res.Centroids[c2]); d < bestD {
				bestD = d
				label = clusterLabel[c2]
			}
		}
		clusterLabel[c] = label
	}

	out := make([]int, len(batch))
	for i := range batch {
		out[i] = clusterLabel[res.Assignment[i]]
	}

	// Experience agreement: how well the mapping reproduces the known
	// labels of the experience points.
	correct := 0
	for j, y := range expY {
		if clusterLabel[res.Assignment[len(batch)+j]] == y {
			correct++
		}
	}
	agreement := float64(correct) / float64(len(expY))
	st := CECStats{K: k, Iterations: res.Iterations, ExperiencePoints: len(expX), Agreement: agreement}
	return out, st, nil
}
