package cluster

import (
	"math"
	"math/rand"
	"testing"
)

func TestOnlineKMeansValidation(t *testing.T) {
	if _, err := NewOnlineKMeans(0, 2); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := NewOnlineKMeans(2, 0); err == nil {
		t.Error("dim=0 should error")
	}
	o, _ := NewOnlineKMeans(2, 2)
	if _, err := o.Observe([]float64{1}); err == nil {
		t.Error("dimension mismatch should error")
	}
}

func TestOnlineKMeansTracksBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	o, err := NewOnlineKMeans(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	centers := [][]float64{{0, 0}, {10, 10}}
	for i := 0; i < 2000; i++ {
		c := centers[rng.Intn(2)]
		x := []float64{c[0] + rng.NormFloat64()*0.5, c[1] + rng.NormFloat64()*0.5}
		if _, err := o.Observe(x); err != nil {
			t.Fatal(err)
		}
	}
	if !o.Initialized() || o.K() != 2 {
		t.Fatal("not initialized")
	}
	// Each learned centroid must sit near one true center.
	for _, cen := range o.Centroids() {
		d0 := math.Hypot(cen[0]-0, cen[1]-0)
		d1 := math.Hypot(cen[0]-10, cen[1]-10)
		if math.Min(d0, d1) > 1 {
			t.Errorf("centroid %v far from both true centers", cen)
		}
	}
}

func TestOnlineKMeansDecayTracksDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	o, _ := NewOnlineKMeans(1, 1)
	o.DecayHalfLife = 50
	// Long stationary phase freezes a plain online k-means; decay keeps the
	// learning rate alive so the centroid follows the moved distribution.
	for i := 0; i < 3000; i++ {
		if _, err := o.Observe([]float64{rng.NormFloat64() * 0.1}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1500; i++ {
		if _, err := o.Observe([]float64{5 + rng.NormFloat64()*0.1}); err != nil {
			t.Fatal(err)
		}
	}
	if c := o.Centroids()[0][0]; math.Abs(c-5) > 0.5 {
		t.Errorf("decayed centroid = %v, want near 5", c)
	}
}

func TestOnlineKMeansAssignBeforeInit(t *testing.T) {
	o, _ := NewOnlineKMeans(3, 2)
	if _, d := o.Assign([]float64{1, 2}); !math.IsInf(d, 1) {
		t.Errorf("uninitialized Assign distance = %v", d)
	}
}

func TestOnlineKMeansCentroidsAreCopies(t *testing.T) {
	o, _ := NewOnlineKMeans(1, 1)
	if _, err := o.Observe([]float64{3}); err != nil {
		t.Fatal(err)
	}
	c := o.Centroids()
	c[0][0] = 999
	if o.Centroids()[0][0] == 999 {
		t.Error("Centroids exposed internal storage")
	}
}
