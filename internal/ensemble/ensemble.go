// Package ensemble implements FreewayML's distance-based adaptive ensemble
// (paper Eq. 12-14): each granularity model's prediction is weighted by a
// Gaussian kernel of its model shift distance D — the distance between the
// model's training distribution and the live data — so the model that best
// matches the current distribution dominates the fused output.
package ensemble

import (
	"errors"
	"math"

	"freewayml/internal/linalg"
)

// Kernel is the Gaussian kernel K(D, σ) = exp(−D² / (2σ²)) of Eq. 14.
// A non-positive σ panics: the caller owns config validation.
func Kernel(d, sigma float64) float64 {
	if sigma <= 0 {
		panic("ensemble: sigma must be positive")
	}
	return math.Exp(-(d * d) / (2 * sigma * sigma))
}

// Member is one model's contribution to the fusion: its per-sample class
// probabilities and its model shift distance D (Eq. 12/13).
type Member struct {
	Proba    [][]float64
	Distance float64
}

// Fuse combines the members' probability outputs per Eq. 14:
// y = Σ K(Dᵢ,σ)·yᵢ / Σ K(Dᵢ,σ). All members must cover the same samples and
// classes. When every kernel weight underflows to zero (all distances
// enormous), the fusion falls back to uniform weights rather than dividing
// by zero.
func Fuse(members []Member, sigma float64) ([][]float64, error) {
	if len(members) == 0 {
		return nil, errors.New("ensemble: no members")
	}
	if sigma <= 0 {
		return nil, errors.New("ensemble: sigma must be positive")
	}
	n := len(members[0].Proba)
	for _, m := range members {
		if len(m.Proba) != n {
			return nil, errors.New("ensemble: member sample counts differ")
		}
	}
	if n == 0 {
		return [][]float64{}, nil
	}
	classes := len(members[0].Proba[0])

	weights := make([]float64, len(members))
	var totalW float64
	for i, m := range members {
		weights[i] = Kernel(m.Distance, sigma)
		totalW += weights[i]
	}
	if totalW == 0 {
		for i := range weights {
			weights[i] = 1
		}
		totalW = float64(len(weights))
	}

	for _, m := range members {
		for s := 0; s < n; s++ {
			if len(m.Proba[s]) != classes {
				return nil, errors.New("ensemble: member class counts differ")
			}
		}
	}
	// One flat accumulator for the whole batch; each member contributes one
	// scaled-add sweep per sample through the shared axpy kernel.
	flat := make([]float64, n*classes)
	out := make([][]float64, n)
	for s := 0; s < n; s++ {
		row := flat[s*classes : (s+1)*classes : (s+1)*classes]
		for i, m := range members {
			linalg.Axpy(weights[i], m.Proba[s], row)
		}
		for c := range row {
			row[c] /= totalW
		}
		out[s] = row
	}
	return out, nil
}

// Weights returns the normalized kernel weights the members would receive —
// useful for introspection and the ablation benches.
func Weights(distances []float64, sigma float64) ([]float64, error) {
	if len(distances) == 0 {
		return nil, errors.New("ensemble: no distances")
	}
	if sigma <= 0 {
		return nil, errors.New("ensemble: sigma must be positive")
	}
	out := make([]float64, len(distances))
	var total float64
	for i, d := range distances {
		out[i] = Kernel(d, sigma)
		total += out[i]
	}
	if total == 0 {
		u := 1 / float64(len(out))
		for i := range out {
			out[i] = u
		}
		return out, nil
	}
	for i := range out {
		out[i] /= total
	}
	return out, nil
}
