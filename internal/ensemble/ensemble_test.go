package ensemble

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKernelProperties(t *testing.T) {
	if k := Kernel(0, 1); k != 1 {
		t.Errorf("K(0) = %v, want 1", k)
	}
	if k := Kernel(100, 1); k > 1e-10 {
		t.Errorf("K(100) = %v, want ~0", k)
	}
	// Monotone decreasing in |d|.
	if !(Kernel(1, 1) > Kernel(2, 1)) {
		t.Error("kernel not decreasing")
	}
	// Symmetric.
	if Kernel(3, 2) != Kernel(-3, 2) {
		t.Error("kernel not symmetric")
	}
}

func TestKernelPanicsOnBadSigma(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Kernel(1, 0)
}

func TestFuseErrors(t *testing.T) {
	if _, err := Fuse(nil, 1); err == nil {
		t.Error("no members should error")
	}
	m := Member{Proba: [][]float64{{0.5, 0.5}}, Distance: 0}
	if _, err := Fuse([]Member{m}, 0); err == nil {
		t.Error("sigma 0 should error")
	}
	bad := Member{Proba: [][]float64{{1, 0}, {0, 1}}, Distance: 0}
	if _, err := Fuse([]Member{m, bad}, 1); err == nil {
		t.Error("sample count mismatch should error")
	}
	badClasses := Member{Proba: [][]float64{{1, 0, 0}}, Distance: 0}
	if _, err := Fuse([]Member{m, badClasses}, 1); err == nil {
		t.Error("class count mismatch should error")
	}
}

func TestFuseEqualDistancesAverages(t *testing.T) {
	a := Member{Proba: [][]float64{{1, 0}}, Distance: 1}
	b := Member{Proba: [][]float64{{0, 1}}, Distance: 1}
	out, err := Fuse([]Member{a, b}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0][0]-0.5) > 1e-12 || math.Abs(out[0][1]-0.5) > 1e-12 {
		t.Errorf("equal-distance fuse = %v, want [0.5 0.5]", out[0])
	}
}

func TestFuseCloserModelDominates(t *testing.T) {
	near := Member{Proba: [][]float64{{1, 0}}, Distance: 0.1}
	far := Member{Proba: [][]float64{{0, 1}}, Distance: 5}
	out, err := Fuse([]Member{near, far}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0] < 0.99 {
		t.Errorf("near model weight too low: %v", out[0])
	}
}

func TestFuseAllWeightsUnderflowFallsBackUniform(t *testing.T) {
	a := Member{Proba: [][]float64{{1, 0}}, Distance: 1e9}
	b := Member{Proba: [][]float64{{0, 1}}, Distance: 1e9}
	out, err := Fuse([]Member{a, b}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0][0]-0.5) > 1e-12 {
		t.Errorf("underflow fallback = %v, want uniform", out[0])
	}
}

func TestFuseEmptyBatch(t *testing.T) {
	m := Member{Proba: [][]float64{}, Distance: 0}
	out, err := Fuse([]Member{m}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("len = %d", len(out))
	}
}

// Property: fused output of valid distributions is a valid distribution.
func TestFusePreservesDistributionProperty(t *testing.T) {
	f := func(p1raw, p2raw [3]float64, d1raw, d2raw float64) bool {
		norm := func(raw [3]float64) []float64 {
			p := make([]float64, 3)
			var sum float64
			for i, v := range raw {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					v = 0
				}
				p[i] = math.Abs(math.Mod(v, 10)) + 0.01
				sum += p[i]
			}
			for i := range p {
				p[i] /= sum
			}
			return p
		}
		clampD := func(d float64) float64 {
			if math.IsNaN(d) || math.IsInf(d, 0) {
				return 0
			}
			return math.Abs(math.Mod(d, 100))
		}
		a := Member{Proba: [][]float64{norm(p1raw)}, Distance: clampD(d1raw)}
		b := Member{Proba: [][]float64{norm(p2raw)}, Distance: clampD(d2raw)}
		out, err := Fuse([]Member{a, b}, 1)
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range out[0] {
			if v < -1e-12 || v > 1+1e-12 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeights(t *testing.T) {
	ws, err := Weights([]float64{0, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ws[0] <= ws[1] {
		t.Errorf("closer distance should have larger weight: %v", ws)
	}
	if math.Abs(ws[0]+ws[1]-1) > 1e-12 {
		t.Errorf("weights not normalized: %v", ws)
	}
	if _, err := Weights(nil, 1); err == nil {
		t.Error("empty distances should error")
	}
	if _, err := Weights([]float64{1}, -1); err == nil {
		t.Error("bad sigma should error")
	}
	uw, err := Weights([]float64{1e9, 1e9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(uw[0]-0.5) > 1e-12 {
		t.Errorf("underflow weights = %v, want uniform", uw)
	}
}
