package core

import (
	"context"
	"math/rand"
	"testing"

	"freewayml/internal/obs"
	"freewayml/internal/stream"
)

// benchLearner drives the full pipeline over a pre-generated drifting
// stream; the instrumented variant measures the observability layer's
// overhead (the acceptance gate is ≤3% over uninstrumented).
func benchLearner(b *testing.B, instrument bool) {
	cfg := testConfig()
	l, err := NewLearner(cfg, 3, 2)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	if instrument {
		l.SetObserver(NewObserver(obs.NewRegistry(), 512))
	}
	rng := rand.New(rand.NewSource(7))
	batches := make([]stream.Batch, 64)
	for i := range batches {
		// A slow wander keeps the detector past warmup and the window active
		// without triggering constant severe shifts.
		batches[i] = driftBatch(rng, i, 64, float64(i%8)*0.5, 0, stream.KindNone)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Process(context.Background(), batches[i%len(batches)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLearnerUninstrumented(b *testing.B) { benchLearner(b, false) }
func BenchmarkLearnerInstrumented(b *testing.B)   { benchLearner(b, true) }
