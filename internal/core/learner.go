package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"freewayml/internal/cluster"
	"freewayml/internal/guard"
	"freewayml/internal/knowledge"
	"freewayml/internal/linalg"
	"freewayml/internal/metrics"
	"freewayml/internal/model"
	"freewayml/internal/nn"
	"freewayml/internal/shift"
	"freewayml/internal/strategy"
	"freewayml/internal/stream"
	"freewayml/internal/window"
)

// Result reports everything FreewayML decided about one batch.
type Result struct {
	// Pred holds the predicted class per sample.
	Pred []int
	// Proba holds the per-sample class distribution when the strategy
	// produces one (nil for CEC, which outputs hard labels).
	Proba [][]float64
	// Pattern is the detected shift pattern; SubPattern refines slight
	// shifts into A1/A2 using the window disorder.
	Pattern    shift.Pattern
	SubPattern shift.Pattern
	// Strategy is the mechanism that produced Pred.
	Strategy Strategy
	// Observation is the raw detector output.
	Observation shift.Observation
	// Accuracy is the batch's real-time accuracy when labels were provided,
	// else -1.
	Accuracy float64
}

// RecoveryEvent records one watchdog divergence (see strategy.RecoveryEvent).
type RecoveryEvent = strategy.RecoveryEvent

// maxRecoveryEvents bounds the retained event log; older events are
// dropped (the counters in Stats never reset).
const maxRecoveryEvents = 32

// Learner is the FreewayML framework instance: it detects each batch's
// shift pattern, dispatches exactly one of the three strategy mechanisms
// (internal/strategy) for inference, trains them, and keeps the
// bookkeeping — prequential metrics, health counters, checkpoints. One
// goroutine may call Process at a time; with Async enabled, long-model
// updates overlap with subsequent Process calls.
type Learner struct {
	cfg          Config
	det          *shift.Detector
	dim, classes int

	// The three mechanisms behind the strategy.Strategy interface. ens is
	// also the dispatcher's fallback when cec/knw decline a batch.
	ens *strategy.Ensemble
	cec *strategy.CEC
	knw *strategy.KnowledgeReuse

	exp       *cluster.ExpBuffer
	kdg       *knowledge.Store
	sharedKdg bool // kdg is process-shared: checkpoints skip it

	// tier is the inference-plane kernel tier (parsed from cfg.KernelTier).
	// The training plane ignores it entirely.
	tier linalg.KernelTier

	adjuster *stream.RateAdjuster

	guard *guard.Guard

	// obs is the optional observability layer (nil disables all
	// instrumentation; every hook is nil-safe).
	obs *Observer

	preq   metrics.Prequential
	batch  int
	closed atomic.Bool

	// snap is the atomically published inference-plane view; snapSeq counts
	// publications (training goroutine only). Readers load snap lock-free
	// and never touch any other learner field — see infer.go.
	snap    atomic.Pointer[strategy.Snapshot]
	snapSeq uint64
	// inferMu is the read plane's compute lock, shared by every published
	// snapshot via Snapshot.ComputeMu (member models stage rows into
	// model-owned scratch, and unchanged member clones are reused across
	// publications). Never taken by the training path.
	inferMu sync.Mutex

	// vecScratch is the reusable vector-header view of the current batch,
	// handed to the shift detector. Safe to reuse because Process is
	// single-goroutine per learner and the detector copies the headers it
	// retains (warm-up accumulation) rather than the slice itself.
	vecScratch []linalg.Vector

	// Pending errors from asynchronous long-model updates, surfaced on the
	// next Process call (and at Close). Bounded; overflow is counted.
	asyncMu   sync.Mutex
	asyncErrs []error

	// health holds the fault-tolerance counters behind their own mutex:
	// the async update path records divergences while Process or an HTTP
	// stats handler reads them.
	health struct {
		mu               sync.Mutex
		sanitizedValues  int
		sanitizedBatches int
		rejectedBatches  int
		divergences      int
		recoveries       int
		asyncDropped     int
		knowledgeSkipped int
		events           []RecoveryEvent
	}
}

// maxPendingAsyncErrs bounds the async error queue; further errors are
// dropped and counted in Stats.
const maxPendingAsyncErrs = 16

// learnerStages adapts the learner's (late-bound, nil-safe) observer to the
// strategy package's stage sink.
type learnerStages struct{ l *Learner }

func (s learnerStages) ObserveStage(stage string, d time.Duration) {
	s.l.obs.ObserveStage(stage, d)
}

// NewLearner builds a FreewayML learner for streams of the given feature
// dimensionality and class count.
func NewLearner(cfg Config, dim, classes int) (*Learner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	factory, err := model.FactoryFor(cfg.ModelFamily, cfg.Hyper)
	if err != nil {
		return nil, err
	}
	if cfg.Standardize {
		factory = model.StandardizedFactory(factory)
	}
	sc := cfg.Shift
	sc.Alpha = cfg.Alpha
	det, err := shift.NewDetector(sc)
	if err != nil {
		return nil, err
	}
	asw, err := window.New(cfg.Window)
	if err != nil {
		return nil, err
	}
	exp, err := cluster.NewExpBuffer(cfg.ExpBufferPoints, cfg.ExpBufferAge)
	if err != nil {
		return nil, err
	}
	kdg := cfg.SharedKnowledge
	sharedKdg := kdg != nil
	if kdg == nil {
		kdg, err = knowledge.NewStore(cfg.KdgBuffer, cfg.SpillDir)
		if err != nil {
			return nil, err
		}
	}

	// Fixed-frequency models: model i updates every 2^i batches. The last
	// slot is the ASW-driven long model.
	grans, err := strategy.BuildGranularities(factory, dim, classes, cfg.ModelNum-1, cfg.Watchdog)
	if err != nil {
		return nil, err
	}
	longHyper := cfg.Hyper
	longHyper.LR *= cfg.LongLRScale
	longFactory, err := model.FactoryFor(cfg.ModelFamily, longHyper)
	if err != nil {
		return nil, err
	}
	if cfg.Standardize {
		longFactory = model.StandardizedFactory(longFactory)
	}
	long, err := longFactory(dim, classes)
	if err != nil {
		return nil, err
	}
	reuse, err := factory(dim, classes)
	if err != nil {
		return nil, err
	}

	tier, err := linalg.ParseKernelTier(cfg.KernelTier)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if tier == linalg.TierInt8 {
		// The int8 tier also arms the knowledge store's quantized centroid
		// match index (idempotent on a shared store).
		kdg.SetQuantizedMatch(true)
	}
	l := &Learner{
		cfg:       cfg,
		det:       det,
		dim:       dim,
		classes:   classes,
		exp:       exp,
		kdg:       kdg,
		sharedKdg: sharedKdg,
		tier:      tier,
		guard:     guard.New(cfg.Guard, dim),
	}
	var longWd *strategy.Watchdog
	if !cfg.Watchdog.Disabled {
		longWd = strategy.NewWatchdog("long", cfg.Watchdog)
	}
	var pre *window.Precomputer
	var longOpt *nn.SGD
	if cfg.Precompute {
		if long.Net() == nil {
			return nil, errors.New("core: Precompute requires a gradient-based model family")
		}
		pre = window.NewPrecomputer(long.Net())
		pre.Start()
		// The precompute path applies one aggregated step per window close,
		// so it uses the full learning rate; LongLRScale only applies to
		// the many-step chunked training of the non-precompute path.
		longOpt = nn.NewSGD(cfg.Hyper.LR, cfg.Hyper.Momentum, cfg.Hyper.WeightDecay)
	}
	l.ens = strategy.NewEnsemble(
		strategy.EnsembleConfig{
			Sigma:      cfg.Sigma,
			LongEMA:    cfg.LongEMA,
			LongEpochs: cfg.LongEpochs,
			LongChunk:  cfg.LongChunk,
			LongRebase: cfg.LongRebase,
			Async:      cfg.Async,
			Tier:       tier,
		},
		grans, long, longWd, asw, pre, longOpt,
		strategy.EnsembleDeps{
			Stages:     learnerStages{l},
			OnRecovery: l.recordRecovery,
			OnAsyncErr: l.noteAsyncErr,
			BatchNum:   func() int { return l.batch },
			// Same-regime radius for knowledge replacement: distributions
			// within the stream's typical batch-to-batch wander are the
			// same regime, so a fresher snapshot overwrites the stale one.
			ReplaceRadius: func() float64 { return 1.5 * meanOf(l.det.HistoryDistances()) },
		},
	)
	l.cec = strategy.NewCEC(exp, l.ens, cfg.Seed, func() int { return l.batch })
	l.knw = strategy.NewKnowledgeReuse(kdg, reuse, l.ens, cfg.Sigma, cfg.Beta, cfg.Shift.ReoccurRatio)
	l.ens.SetPreserver(l.knw)
	l.publishSnapshot(shift.PatternWarmup)
	return l, nil
}

// SetRateAdjuster attaches the rate-aware adjuster (paper Sec. V-B); its
// DecayBoost is applied to the ASW on every Process call.
func (l *Learner) SetRateAdjuster(r *stream.RateAdjuster) { l.adjuster = r }

// SetObserver attaches the observability layer (nil disables it). Attach
// before the first Process call; the observer is read without locking.
func (l *Learner) SetObserver(o *Observer) { l.obs = o }

// Observer returns the attached observability layer (nil when disabled).
func (l *Learner) Observer() *Observer { return l.obs }

// Metrics returns the learner's accumulated prequential metrics.
func (l *Learner) Metrics() *metrics.Prequential { return &l.preq }

// KnowledgeStore exposes the historical knowledge store (for the Table IV
// space measurements).
func (l *Learner) KnowledgeStore() *knowledge.Store { return l.kdg }

// SharedKnowledge reports whether the knowledge store is process-shared
// (checkpoints then exclude it).
func (l *Learner) SharedKnowledge() bool { return l.sharedKdg }

// KernelTier returns the inference-plane kernel tier the learner was built
// with (TierF64 unless configured otherwise).
func (l *Learner) KernelTier() linalg.KernelTier { return l.tier }

// Detector exposes the shift detector (for shift-graph export).
func (l *Learner) Detector() *shift.Detector { return l.det }

// Ensemble exposes the multi-granularity mechanism (white-box tests and
// diagnostics).
func (l *Learner) Ensemble() *strategy.Ensemble { return l.ens }

// ErrClosed is returned by Process after Close.
var ErrClosed = errors.New("core: learner closed")

// Close waits for any in-flight asynchronous long-model update and surfaces
// any pending background errors. Idempotent: a second Close returns nil.
func (l *Learner) Close() error {
	if !l.closed.CompareAndSwap(false, true) {
		return nil
	}
	l.ens.Wait()
	return l.takeAsyncErrs()
}

// Process runs the full pipeline on one batch: detect the shift pattern,
// select and execute one inference strategy, then (when the batch is
// labeled) train every mechanism — the predict-then-train prequential
// protocol of the paper. ctx cancels between (not within) model updates;
// a nil ctx is treated as context.Background().
func (l *Learner) Process(ctx context.Context, b stream.Batch) (Result, error) {
	if l.closed.Load() {
		return Result{}, ErrClosed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	// A background long-model update that failed since the last call is
	// surfaced here rather than silently at Close: the caller must learn
	// that the long model stopped advancing while the stream is still
	// actionable.
	if err := l.takeAsyncErrs(); err != nil {
		return Result{}, err
	}
	if err := b.ValidateShape(l.dim, l.classes); err != nil {
		return Result{}, err
	}
	bo := l.obs.begin(l)
	bo.trace(b.TraceID, b.FusedTraces)
	// Input guardrails: scan for NaN/Inf features before the detector or
	// any model sees the batch. A rejected batch leaves every piece of
	// learner state untouched.
	tGuard := bo.StageStart()
	cleanX, rep, err := l.guard.Sanitize(b.X)
	if err != nil {
		l.health.mu.Lock()
		l.health.rejectedBatches++
		l.health.mu.Unlock()
		bo.finishRejected(l)
		return Result{}, fmt.Errorf("core: %w", err)
	}
	bo.StageDone(strategy.StageGuard, tGuard)
	if rep.Total() > 0 {
		b.X = cleanX
		l.health.mu.Lock()
		l.health.sanitizedValues += rep.Total()
		l.health.sanitizedBatches++
		l.health.mu.Unlock()
		bo.sanitized(rep.Total())
	}
	if l.adjuster != nil {
		boost := l.adjuster.DecayBoost()
		l.ens.SetDecayBoost(boost)
		bo.decayBoost(boost)
	}
	tDet := bo.StageStart()
	obs, err := l.det.Observe(l.toVectorsReuse(b.X))
	if err != nil {
		return Result{}, err
	}
	bo.StageDone(strategy.StageShiftDetect, tDet)

	res := Result{Pattern: obs.Pattern, SubPattern: obs.Pattern, Observation: obs, Accuracy: -1}
	if obs.Pattern.IsSlight() {
		res.SubPattern = shift.SubClassifyA(l.ens.Disorder(), l.cfg.Beta)
	}

	tPred := bo.StageStart()
	if err := l.infer(ctx, b, obs, &res, bo); err != nil {
		return Result{}, err
	}
	bo.StageDone(strategy.StagePredict, tPred)

	if b.Labeled() {
		if acc, err := metrics.Accuracy(res.Pred, b.Y); err == nil {
			res.Accuracy = acc
			l.preq.Record(acc, b.Truth, len(b.X))
		}
		if err := l.train(ctx, b, obs, bo); err != nil {
			return Result{}, err
		}
	}
	bo.finish(l, &res, len(b.X))
	l.batch++
	l.publishSnapshot(res.SubPattern)
	return res, nil
}

// infer dispatches exactly one strategy based on the pattern (paper Fig. 8):
//
//	warmup     → ensemble (short model alone)
//	A1/A2      → multi-granularity ensemble
//	B (severe) → CEC, falling back to the ensemble when it declines
//	C          → knowledge reuse, falling back to the ensemble on a miss
func (l *Learner) infer(ctx context.Context, b stream.Batch, obs shift.Observation, res *Result, bo *batchObs) error {
	switch {
	case obs.Pattern == shift.PatternWarmup || obs.YBar == nil:
		res.Strategy = StrategyWarmup
		p := l.ens.InferWarmup(b)
		res.Pred, res.Proba = p.Pred, p.Proba
		return nil

	case obs.Pattern == shift.PatternC:
		p, ok, err := l.knw.Infer(ctx, b, obs, bo)
		if err != nil {
			return fmt.Errorf("core: %w", err)
		}
		if ok {
			res.Strategy = StrategyKnowledge
			res.Pred, res.Proba = p.Pred, p.Proba
			return nil
		}
		// No reusable knowledge close enough: fall through to the ensemble.
		return l.inferEnsemble(ctx, b, obs, res, bo)

	case obs.Pattern == shift.PatternB:
		// CEC replaces the models only when the shift dwarfs the stream's
		// recent movement; a moderately sudden shift is handled by the
		// ensemble, which re-adapts within a couple of batches.
		if obs.HistoryMean > 0 && obs.Distance < l.cfg.CECSeverityRatio*obs.HistoryMean {
			return l.inferEnsemble(ctx, b, obs, res, bo)
		}
		p, ok, err := l.cec.Infer(ctx, b, obs, bo)
		if err != nil {
			return fmt.Errorf("core: %w", err)
		}
		if ok {
			res.Strategy = StrategyCEC
			res.Pred, res.Proba = p.Pred, p.Proba
			return nil
		}
		// No coherent experience yet: fall back to the ensemble.
		return l.inferEnsemble(ctx, b, obs, res, bo)

	default:
		return l.inferEnsemble(ctx, b, obs, res, bo)
	}
}

// inferEnsemble runs the fallback mechanism (always serves).
func (l *Learner) inferEnsemble(ctx context.Context, b stream.Batch, obs shift.Observation, res *Result, bo *batchObs) error {
	p, _, err := l.ens.Infer(ctx, b, obs, bo)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	res.Strategy = StrategyEnsemble
	res.Pred, res.Proba = p.Pred, p.Proba
	return nil
}

// train updates every mechanism: the experience buffer first (CEC), then
// the granularity models, window, and knowledge preservation (ensemble;
// knowledge reuse trains nothing per batch).
func (l *Learner) train(ctx context.Context, b stream.Batch, obs shift.Observation, bo *batchObs) error {
	if err := l.cec.Train(ctx, b, obs, bo); err != nil {
		return err
	}
	return l.ens.Train(ctx, b, obs, bo)
}

// meanOf returns the arithmetic mean (0 for empty input).
func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// toVectorsReuse views the batch rows as vectors through the learner-owned
// scratch slice, valid until the next Process call. The headers alias the
// batch rows (no copy).
func (l *Learner) toVectorsReuse(x [][]float64) []linalg.Vector {
	if cap(l.vecScratch) < len(x) {
		l.vecScratch = make([]linalg.Vector, len(x))
	}
	out := l.vecScratch[:len(x)]
	for i, row := range x {
		out[i] = linalg.Vector(row)
	}
	return out
}

// DebugModels exposes the short and long granularity models for diagnostic
// tooling and white-box tests.
func (l *Learner) DebugModels() (short, long model.Model) {
	return l.ens.DebugModels()
}

// DebugDistances recomputes the short/long model shift distances for a
// result's observation (diagnostics only).
func (l *Learner) DebugDistances(res Result) (dShort, dLong float64) {
	return l.ens.DebugDistances(res.Observation.YBar)
}
