package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"freewayml/internal/cluster"
	"freewayml/internal/ensemble"
	"freewayml/internal/guard"
	"freewayml/internal/knowledge"
	"freewayml/internal/linalg"
	"freewayml/internal/metrics"
	"freewayml/internal/model"
	"freewayml/internal/nn"
	"freewayml/internal/shift"
	"freewayml/internal/stream"
	"freewayml/internal/window"
)

// Result reports everything FreewayML decided about one batch.
type Result struct {
	// Pred holds the predicted class per sample.
	Pred []int
	// Proba holds the per-sample class distribution when the strategy
	// produces one (nil for CEC, which outputs hard labels).
	Proba [][]float64
	// Pattern is the detected shift pattern; SubPattern refines slight
	// shifts into A1/A2 using the window disorder.
	Pattern    shift.Pattern
	SubPattern shift.Pattern
	// Strategy is the mechanism that produced Pred.
	Strategy Strategy
	// Observation is the raw detector output.
	Observation shift.Observation
	// Accuracy is the batch's real-time accuracy when labels were provided,
	// else -1.
	Accuracy float64
}

// granularity is one fixed-frequency model of the multi-time-granularity
// ensemble: model i trains every `every` batches on the batches accumulated
// since its last update.
type granularity struct {
	m        model.Model
	every    int
	pending  int
	bufX     [][]float64
	bufY     []int
	centroid linalg.Vector // distribution of the last training data
	wd       *watchdog     // nil when the watchdog is disabled
}

// Learner is the FreewayML framework instance. One goroutine may call
// Process at a time; with Async enabled, long-model updates overlap with
// subsequent Process calls.
type Learner struct {
	cfg          Config
	det          *shift.Detector
	dim, classes int

	grans []*granularity // fixed-frequency models, grans[0] updates per batch
	long  model.Model    // ASW-driven long-granularity model

	asw          *window.ASW
	pre          *window.Precomputer
	longOpt      *nn.SGD
	longCentroid linalg.Vector

	exp   *cluster.ExpBuffer
	kdg   *knowledge.Store
	reuse model.Model // scratch model for knowledge restores

	adjuster *stream.RateAdjuster

	guard  *guard.Guard
	longWd *watchdog // nil when the watchdog is disabled

	// obs is the optional observability layer (nil disables all
	// instrumentation; every hook is nil-safe).
	obs *Observer

	mu    sync.RWMutex // guards long model + longCentroid during async updates
	wg    sync.WaitGroup
	preq  metrics.Prequential
	batch int

	// Pending errors from asynchronous long-model updates, surfaced on the
	// next Process call (and at Close). Bounded; overflow is counted.
	asyncMu   sync.Mutex
	asyncErrs []error

	// health holds the fault-tolerance counters behind their own mutex:
	// the async update path records divergences while Process or an HTTP
	// stats handler reads them.
	health struct {
		mu               sync.Mutex
		sanitizedValues  int
		sanitizedBatches int
		rejectedBatches  int
		divergences      int
		recoveries       int
		asyncDropped     int
		knowledgeSkipped int
		events           []RecoveryEvent
	}
}

// maxPendingAsyncErrs bounds the async error queue; further errors are
// dropped and counted in Stats.
const maxPendingAsyncErrs = 16

// NewLearner builds a FreewayML learner for streams of the given feature
// dimensionality and class count.
func NewLearner(cfg Config, dim, classes int) (*Learner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	factory, err := model.FactoryFor(cfg.ModelFamily, cfg.Hyper)
	if err != nil {
		return nil, err
	}
	if cfg.Standardize {
		factory = model.StandardizedFactory(factory)
	}
	sc := cfg.Shift
	sc.Alpha = cfg.Alpha
	det, err := shift.NewDetector(sc)
	if err != nil {
		return nil, err
	}
	asw, err := window.New(cfg.Window)
	if err != nil {
		return nil, err
	}
	exp, err := cluster.NewExpBuffer(cfg.ExpBufferPoints, cfg.ExpBufferAge)
	if err != nil {
		return nil, err
	}
	kdg, err := knowledge.NewStore(cfg.KdgBuffer, cfg.SpillDir)
	if err != nil {
		return nil, err
	}

	// Fixed-frequency models: model i updates every 2^i batches. The last
	// slot is the ASW-driven long model.
	grans := make([]*granularity, 0, cfg.ModelNum-1)
	for i := 0; i < cfg.ModelNum-1; i++ {
		m, err := factory(dim, classes)
		if err != nil {
			return nil, err
		}
		g := &granularity{m: m, every: 1 << i}
		if !cfg.Watchdog.Disabled {
			g.wd = newWatchdog(fmt.Sprintf("gran%d", i), cfg.Watchdog)
		}
		grans = append(grans, g)
	}
	longHyper := cfg.Hyper
	longHyper.LR *= cfg.LongLRScale
	longFactory, err := model.FactoryFor(cfg.ModelFamily, longHyper)
	if err != nil {
		return nil, err
	}
	if cfg.Standardize {
		longFactory = model.StandardizedFactory(longFactory)
	}
	long, err := longFactory(dim, classes)
	if err != nil {
		return nil, err
	}
	reuse, err := factory(dim, classes)
	if err != nil {
		return nil, err
	}

	l := &Learner{
		cfg:     cfg,
		det:     det,
		dim:     dim,
		classes: classes,
		grans:   grans,
		long:    long,
		asw:     asw,
		exp:     exp,
		kdg:     kdg,
		reuse:   reuse,
		guard:   guard.New(cfg.Guard, dim),
	}
	if !cfg.Watchdog.Disabled {
		l.longWd = newWatchdog("long", cfg.Watchdog)
	}
	if cfg.Precompute {
		if long.Net() == nil {
			return nil, errors.New("core: Precompute requires a gradient-based model family")
		}
		l.pre = window.NewPrecomputer(long.Net())
		l.pre.Start()
		// The precompute path applies one aggregated step per window close,
		// so it uses the full learning rate; LongLRScale only applies to
		// the many-step chunked training of the non-precompute path.
		l.longOpt = nn.NewSGD(cfg.Hyper.LR, cfg.Hyper.Momentum, cfg.Hyper.WeightDecay)
	}
	return l, nil
}

// SetRateAdjuster attaches the rate-aware adjuster (paper Sec. V-B); its
// DecayBoost is applied to the ASW on every Process call.
func (l *Learner) SetRateAdjuster(r *stream.RateAdjuster) { l.adjuster = r }

// SetObserver attaches the observability layer (nil disables it). Attach
// before the first Process call; the observer is read without locking.
func (l *Learner) SetObserver(o *Observer) { l.obs = o }

// Observer returns the attached observability layer (nil when disabled).
func (l *Learner) Observer() *Observer { return l.obs }

// Metrics returns the learner's accumulated prequential metrics.
func (l *Learner) Metrics() *metrics.Prequential { return &l.preq }

// KnowledgeStore exposes the historical knowledge store (for the Table IV
// space measurements).
func (l *Learner) KnowledgeStore() *knowledge.Store { return l.kdg }

// Detector exposes the shift detector (for shift-graph export).
func (l *Learner) Detector() *shift.Detector { return l.det }

// Close waits for any in-flight asynchronous long-model update and surfaces
// any pending background errors.
func (l *Learner) Close() error {
	l.wg.Wait()
	return l.takeAsyncErrs()
}

// noteAsyncErr records a background-update error for the next Process call
// to surface. The queue is bounded; overflow is dropped and counted.
func (l *Learner) noteAsyncErr(err error) {
	l.asyncMu.Lock()
	if len(l.asyncErrs) < maxPendingAsyncErrs {
		l.asyncErrs = append(l.asyncErrs, err)
		l.asyncMu.Unlock()
		return
	}
	l.asyncMu.Unlock()
	l.health.mu.Lock()
	l.health.asyncDropped++
	l.health.mu.Unlock()
}

// takeAsyncErrs drains and joins every pending background error (nil when
// none are pending).
func (l *Learner) takeAsyncErrs() error {
	l.asyncMu.Lock()
	defer l.asyncMu.Unlock()
	if len(l.asyncErrs) == 0 {
		return nil
	}
	err := errors.Join(l.asyncErrs...)
	l.asyncErrs = nil
	return fmt.Errorf("core: async long-model update failed: %w", err)
}

// Process runs the full pipeline on one batch: detect the shift pattern,
// select and execute one inference strategy, then (when the batch is
// labeled) update every granularity model per its schedule — the
// predict-then-train prequential protocol of the paper.
func (l *Learner) Process(b stream.Batch) (Result, error) {
	// A background long-model update that failed since the last call is
	// surfaced here rather than silently at Close: the caller must learn
	// that the long model stopped advancing while the stream is still
	// actionable.
	if err := l.takeAsyncErrs(); err != nil {
		return Result{}, err
	}
	if err := b.ValidateShape(l.dim, l.classes); err != nil {
		return Result{}, err
	}
	bo := l.obs.begin(l)
	// Input guardrails: scan for NaN/Inf features before the detector or
	// any model sees the batch. A rejected batch leaves every piece of
	// learner state untouched.
	tGuard := bo.now()
	cleanX, rep, err := l.guard.Sanitize(b.X)
	if err != nil {
		l.health.mu.Lock()
		l.health.rejectedBatches++
		l.health.mu.Unlock()
		bo.finishRejected(l)
		return Result{}, fmt.Errorf("core: %w", err)
	}
	bo.stageDone(stageGuard, tGuard)
	if rep.Total() > 0 {
		b.X = cleanX
		l.health.mu.Lock()
		l.health.sanitizedValues += rep.Total()
		l.health.sanitizedBatches++
		l.health.mu.Unlock()
		bo.sanitized(rep.Total())
	}
	if l.adjuster != nil {
		boost := l.adjuster.DecayBoost()
		l.asw.SetDecayBoost(boost)
		bo.decayBoost(boost)
	}
	tDet := bo.now()
	obs, err := l.det.Observe(toVectors(b.X))
	if err != nil {
		return Result{}, err
	}
	bo.stageDone(stageShiftDetect, tDet)

	res := Result{Pattern: obs.Pattern, SubPattern: obs.Pattern, Observation: obs, Accuracy: -1}
	if obs.Pattern.IsSlight() {
		res.SubPattern = shift.SubClassifyA(l.asw.Disorder(), l.cfg.Beta)
	}

	tPred := bo.now()
	if err := l.infer(b, obs, &res, bo); err != nil {
		return Result{}, err
	}
	bo.stageDone(stagePredict, tPred)

	if b.Labeled() {
		if acc, err := metrics.Accuracy(res.Pred, b.Y); err == nil {
			res.Accuracy = acc
			l.preq.Record(acc, b.Truth, len(b.X))
		}
		if err := l.train(b, obs, bo); err != nil {
			return Result{}, err
		}
	}
	bo.finish(l, &res, len(b.X))
	l.batch++
	return res, nil
}

// infer executes exactly one strategy based on the pattern (paper Fig. 8).
func (l *Learner) infer(b stream.Batch, obs shift.Observation, res *Result, bo *batchObs) error {
	switch {
	case obs.Pattern == shift.PatternWarmup || obs.YBar == nil:
		res.Strategy = StrategyWarmup
		res.Proba = l.grans[0].m.PredictProba(b.X)
		res.Pred = argmaxRows(res.Proba)
		return nil

	case obs.Pattern == shift.PatternC:
		if ok, err := l.inferKnowledge(b, obs, res, bo); err != nil {
			return err
		} else if ok {
			return nil
		}
		// No reusable knowledge close enough: fall through to the ensemble.
		return l.inferEnsemble(b, obs, res, bo)

	case obs.Pattern == shift.PatternB:
		// CEC replaces the models only when the shift dwarfs the stream's
		// recent movement; a moderately sudden shift is handled by the
		// ensemble, which re-adapts within a couple of batches.
		if obs.HistoryMean > 0 && obs.Distance < l.cfg.CECSeverityRatio*obs.HistoryMean {
			return l.inferEnsemble(b, obs, res, bo)
		}
		if ok, err := l.inferCEC(b, res, bo); err != nil {
			return err
		} else if ok {
			return nil
		}
		// No coherent experience yet: fall back to the ensemble.
		return l.inferEnsemble(b, obs, res, bo)

	default:
		return l.inferEnsemble(b, obs, res, bo)
	}
}

// inferEnsemble fuses all granularity models with the Gaussian-kernel
// distance weighting of Eq. 12-14.
func (l *Learner) inferEnsemble(b stream.Batch, obs shift.Observation, res *Result, bo *batchObs) error {
	members := make([]ensemble.Member, 0, len(l.grans)+1)
	// Short and mid-granularity models: distance to their last training
	// distribution (D_short of Eq. 12 equals obs.Distance for the per-batch
	// model, since its centroid is the previous batch's ȳ).
	for _, g := range l.grans {
		members = append(members, ensemble.Member{
			Proba:    g.m.PredictProba(b.X),
			Distance: centroidDistance(obs.YBar, g.centroid),
		})
	}
	l.mu.RLock()
	members = append(members, ensemble.Member{
		Proba:    l.long.PredictProba(b.X),
		Distance: centroidDistance(obs.YBar, l.longCentroid),
	})
	l.mu.RUnlock()

	// Normalize distances by their mean so the kernel width Sigma is
	// scale-free: the projected space's units vary per dataset, and Eq. 14
	// only cares about the models' relative match to the live data.
	normalizeDistances(members)
	recordWeights(bo, members, l.cfg.Sigma)

	// Insight A emerges from the distances themselves: under a directional
	// shift (A1) the previous batch — the short model's distribution — is
	// the nearest thing to the live data, while under localized fluctuation
	// (A2) the window's weighted centroid sits at the center of the noise
	// and the long model wins the kernel weighting.
	fused, err := ensemble.Fuse(members, l.cfg.Sigma)
	if err != nil {
		return fmt.Errorf("core: ensemble: %w", err)
	}
	res.Strategy = StrategyEnsemble
	res.Proba = fused
	res.Pred = argmaxRows(fused)
	return nil
}

// inferCEC runs coherent experience clustering; ok=false when no labeled
// experience is available yet.
func (l *Learner) inferCEC(b stream.Batch, res *Result, bo *batchObs) (bool, error) {
	expX, expY := l.exp.Experience()
	if len(expX) == 0 {
		return false, nil
	}
	// Per the paper, CEC uses "a small subset of labeled data that is
	// closest to the current batch": under the coherence hypothesis the
	// tail of the previous batch already samples the incoming distribution,
	// and proximity selection finds exactly those points. Distant (pre-
	// shift) experience would pull the joint clustering apart by regime
	// instead of by class.
	m := len(b.X) / 4
	if m < 1 {
		m = 1
	}
	expX, expY = nearestExperience(b.X, expX, expY, m)
	classes := l.grans[0].m.NumClasses()
	// Over-cluster (k = 2c): imbalanced or non-spherical classes occupy
	// several clusters each; the majority vote still maps every cluster to
	// a label.
	tCEC := bo.now()
	pred, st, err := cluster.CECKWithStats(b.X, expX, expY, 2*classes, classes, l.cfg.Seed+int64(l.batch))
	bo.stageDone(stageCluster, tCEC)
	if err != nil {
		return false, fmt.Errorf("core: CEC: %w", err)
	}
	bo.cec(st)
	agreement := st.Agreement
	// Arbitration on the coherent experience: the experience points are
	// labeled and (by the coherence hypothesis) drawn from the incoming
	// distribution, so they measure both CEC's cluster/label alignment and
	// whether the deployed model is actually unsuitable. CEC replaces the
	// model only when it wins that comparison (the failure mode of paper
	// Sec. VI-F is exactly CEC losing it).
	deployedPred := l.grans[0].m.Predict(expX)
	deployedAgree, err := metrics.Accuracy(deployedPred, expY)
	if err != nil {
		return false, err
	}
	// Both estimates come from a handful of points, so CEC must win by a
	// clear margin before displacing the deployed model.
	if agreement <= deployedAgree+cecMargin {
		return false, nil
	}
	res.Strategy = StrategyCEC
	res.Pred = pred
	return true, nil
}

// cecMargin is how much CEC's experience agreement must exceed the deployed
// model's before CEC takes over.
const cecMargin = 0.05

// inferKnowledge restores the nearest historical snapshot when it is closer
// to the current distribution than the previous batch was (paper Sec. IV-D
// knowledge match); ok=false when nothing qualifies.
func (l *Learner) inferKnowledge(b stream.Batch, obs shift.Observation, res *Result, bo *batchObs) (bool, error) {
	tMatch := bo.now()
	snap, dist, ok, err := l.kdg.Match(obs.YBar)
	bo.stageDone(stageKnowledgeLookup, tMatch)
	if err != nil {
		return false, fmt.Errorf("core: knowledge match: %w", err)
	}
	// Reuse only confident matches: the preserved distribution must be
	// meaningfully closer than the batch we just shifted away from (same
	// ratio as the Pattern C detection rule), else a marginal restore can
	// displace a continuously-trained model that is already adequate.
	if !ok || dist >= l.cfg.Shift.ReoccurRatio*obs.Distance {
		if !ok {
			dist = math.Inf(1) // no eligible entry: trace it as -1
		}
		bo.knowledge(false, dist)
		return false, nil
	}
	bo.knowledge(true, dist)
	if err := l.reuse.Restore(snap); err != nil {
		return false, fmt.Errorf("core: knowledge restore: %w", err)
	}
	res.Strategy = StrategyKnowledge

	// The restored model joins the distance ensemble rather than replacing
	// it outright: its matched distance is far smaller than the current
	// models' post-shift distances, so it dominates the kernel weighting —
	// but if the live models are still competitive the fusion keeps their
	// signal.
	members := []ensemble.Member{{Proba: l.reuse.PredictProba(b.X), Distance: dist}}
	for _, g := range l.grans {
		members = append(members, ensemble.Member{
			Proba:    g.m.PredictProba(b.X),
			Distance: centroidDistance(obs.YBar, g.centroid),
		})
	}
	normalizeDistances(members)
	recordWeights(bo, members, l.cfg.Sigma)
	fused, err := ensemble.Fuse(members, l.cfg.Sigma)
	if err != nil {
		return false, fmt.Errorf("core: knowledge fuse: %w", err)
	}
	res.Proba = fused
	res.Pred = argmaxRows(fused)

	// Reuse means not relearning (SC3): on a confident match the preserved
	// parameters also become the working short model, so subsequent batches
	// of the reoccurred regime start from them instead of re-adapting from
	// the departed regime's.
	if dist < 0.5*l.cfg.Shift.ReoccurRatio*obs.Distance {
		if err := l.grans[0].m.Restore(snap); err != nil {
			return false, fmt.Errorf("core: knowledge adopt: %w", err)
		}
		l.grans[0].centroid = obs.YBar.Clone()
	}
	return true, nil
}

// train updates every granularity model per its schedule and maintains the
// experience buffer and knowledge store.
func (l *Learner) train(b stream.Batch, obs shift.Observation, bo *batchObs) error {
	// Fixed-frequency models. After every update the watchdog checks the
	// model's health; a diverged model is rolled back to its last healthy
	// snapshot and keeps its previous centroid (the rolled-back parameters
	// belong to the pre-divergence distribution).
	tShort := bo.now()
	for _, g := range l.grans {
		g.bufX = append(g.bufX, b.X...)
		g.bufY = append(g.bufY, b.Y...)
		g.pending++
		if g.pending < g.every {
			continue
		}
		loss, err := g.m.Fit(g.bufX, g.bufY)
		if err != nil {
			return err
		}
		diverged := false
		if g.wd != nil {
			if ev := g.wd.check(g.m, loss, l.batch); ev != nil {
				diverged = true
				l.recordRecovery(*ev)
			}
		}
		if !diverged && obs.YBar != nil {
			g.centroid = obs.YBar.Clone()
		}
		g.bufX, g.bufY, g.pending = nil, nil, 0
	}
	bo.stageDone(stageShortUpdate, tShort)

	// Long-model weight averaging: fold the freshly updated short model
	// into the long model's EMA and advance its centroid the same way.
	if l.cfg.LongEMA > 0 && obs.YBar != nil && l.long.Net() != nil {
		l.mu.Lock()
		emaParams(l.long, l.grans[0].m, l.cfg.LongEMA)
		if l.longCentroid == nil {
			l.longCentroid = obs.YBar.Clone()
		} else if len(l.longCentroid) == len(obs.YBar) {
			for j := range l.longCentroid {
				l.longCentroid[j] = l.cfg.LongEMA*l.longCentroid[j] + (1-l.cfg.LongEMA)*obs.YBar[j]
			}
		}
		l.mu.Unlock()
	}

	// Coherent experience.
	if err := l.exp.AddBatch(b.X, b.Y); err != nil {
		return err
	}

	// Long model via the adaptive streaming window. During detector warm-up
	// there is no projected centroid yet, so the window starts afterward.
	if obs.YBar == nil {
		return nil
	}
	tWin := bo.now()
	full, err := l.asw.Push(b.X, b.Y, obs.YBar)
	if err != nil {
		return err
	}
	if l.pre != nil {
		// Pre-computing window (Sec. V-B): fold this batch's gradient in
		// now, so the update at window close is a single cheap step. This
		// trades the decay weighting of TrainingSet for latency — the
		// gradients were computed at arrival weight.
		l.mu.Lock()
		err := l.pre.AddSubset(b.X, b.Y)
		l.mu.Unlock()
		if err != nil {
			return err
		}
	}
	bo.stageDone(stageWindowPush, tWin)
	if !full {
		return nil
	}
	bo.windowClosed()
	return l.updateLong(obs, bo)
}

// updateLong trains the long-granularity model from the closed window,
// preserves knowledge per the β policy, and resets the window.
func (l *Learner) updateLong(obs shift.Observation, bo *batchObs) error {
	disorder := l.asw.Disorder()
	distribution := l.asw.Distribution()
	var trainX [][]float64
	var trainY []int
	if l.pre == nil {
		trainX, trainY = l.asw.TrainingSet()
	}
	l.asw.Reset()

	// The short model keeps training on the caller's goroutine, so its
	// snapshot must be captured now, not inside an async update. It serves
	// two purposes: the β-policy preservation below, and re-basing the long
	// model — the long-granularity model is the current model smoothed over
	// the whole window, so each close starts from the freshest parameters
	// and then trains across the window's weighted data. Without re-basing
	// the long model accumulates staleness that no distance weighting can
	// detect (distance measures data match, not parameter quality).
	shortSnap, err := l.grans[0].m.Snapshot()
	if err != nil {
		return err
	}
	// Same-regime radius for knowledge replacement: distributions within
	// the stream's typical batch-to-batch wander are the same regime, so a
	// fresher snapshot overwrites the stale one. Computed here, on the
	// caller's goroutine — the detector is not safe to touch from an async
	// update.
	replaceRadius := 1.5 * meanOf(l.det.HistoryDistances())
	batchNum := l.batch

	apply := func() error {
		l.mu.Lock()
		defer l.mu.Unlock()
		// lastLoss feeds the long model's watchdog; negative means the
		// update path produced no loss signal (precompute), where only the
		// weight checks apply.
		lastLoss := -1.0
		if l.pre != nil {
			if err := l.pre.Finalize(l.longOpt); err != nil {
				return err
			}
			l.pre.Start()
		} else if len(trainX) > 0 {
			if l.cfg.LongRebase && l.cfg.LongEMA == 0 {
				if err := l.long.Restore(shortSnap); err != nil {
					return err
				}
			}
			// Chunked mini-batch epochs over the weighted window, matching
			// how a DataLoader-driven PyTorch update iterates window data.
			for epoch := 0; epoch < l.cfg.LongEpochs; epoch++ {
				for start := 0; start < len(trainX); start += l.cfg.LongChunk {
					end := start + l.cfg.LongChunk
					if end > len(trainX) {
						end = len(trainX)
					}
					loss, err := l.long.Fit(trainX[start:end], trainY[start:end])
					if err != nil {
						return err
					}
					lastLoss = loss
				}
			}
		}
		if l.longWd != nil {
			if ev := l.longWd.check(l.long, lastLoss, batchNum); ev != nil {
				l.recordRecovery(*ev)
			}
		}
		// With EMA averaging the centroid is maintained per batch and is
		// fresher than the window distribution.
		if distribution != nil && l.cfg.LongEMA == 0 {
			l.longCentroid = distribution
		}
		return l.preserveKnowledge(disorder, distribution, shortSnap, replaceRadius, obs)
	}

	// With pre-computed gradients the closing step is a single optimizer
	// application — running it inline is cheaper than a goroutine and avoids
	// interleaving the next window's AddSubset with this window's Finalize.
	if l.cfg.Async && l.pre == nil {
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			// The batch's trace event may already be emitted when this
			// finishes, so the async path feeds the stage histogram only.
			start := time.Now()
			err := apply()
			l.obs.observeStage(stageLongUpdate, time.Since(start))
			if err != nil {
				l.noteAsyncErr(err)
			}
		}()
		return nil
	}
	tLong := bo.now()
	err = apply()
	bo.stageDone(stageLongUpdate, tLong)
	return err
}

// preserveKnowledge applies the disorder-threshold policy of Sec. IV-D1.
// Callers hold l.mu; shortSnap was captured synchronously at window close.
func (l *Learner) preserveKnowledge(disorder float64, distribution linalg.Vector, shortSnap []byte, replaceRadius float64, obs shift.Observation) error {
	if distribution == nil {
		return nil
	}
	decision := knowledge.Policy{Beta: l.cfg.Beta}.Decide(disorder)
	if decision.SaveLong {
		snap, err := l.long.Snapshot()
		if err != nil {
			return err
		}
		if err := l.kdg.PreserveOrReplace(distribution, snap, "long", obs.Batch, replaceRadius); err != nil {
			return err
		}
	}
	if decision.SaveShort && shortSnap != nil && obs.YBar != nil {
		if err := l.kdg.PreserveOrReplace(obs.YBar, shortSnap, "short", obs.Batch, replaceRadius); err != nil {
			return err
		}
	}
	return nil
}

// emaParams folds src's weights into dst: dst = decay·dst + (1−decay)·src.
// Both models must share an architecture. Callers hold l.mu.
func emaParams(dst, src model.Model, decay float64) {
	dp := dst.Net().Params()
	sp := src.Net().Params()
	for i := range dp {
		dw, sw := dp[i].W, sp[i].W
		for j := range dw {
			dw[j] = decay*dw[j] + (1-decay)*sw[j]
		}
	}
}

// meanOf returns the arithmetic mean (0 for empty input).
func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// nearestExperience returns the m labeled experience points closest to the
// batch's centroid.
func nearestExperience(batch [][]float64, expX [][]float64, expY []int, m int) ([][]float64, []int) {
	if m >= len(expX) {
		return expX, expY
	}
	centroid := make([]float64, len(batch[0]))
	for _, row := range batch {
		for j, v := range row {
			centroid[j] += v
		}
	}
	for j := range centroid {
		centroid[j] /= float64(len(batch))
	}
	type scored struct {
		idx  int
		dist float64
	}
	scores := make([]scored, len(expX))
	for i, x := range expX {
		var d float64
		for j := range x {
			diff := x[j] - centroid[j]
			d += diff * diff
		}
		scores[i] = scored{idx: i, dist: d}
	}
	sort.Slice(scores, func(a, b int) bool { return scores[a].dist < scores[b].dist })
	outX := make([][]float64, m)
	outY := make([]int, m)
	for i := 0; i < m; i++ {
		outX[i] = expX[scores[i].idx]
		outY[i] = expY[scores[i].idx]
	}
	return outX, outY
}

// normalizeDistances rescales the members' finite distances by their mean,
// leaving infinite distances (untrained models) untouched. Degenerate cases
// (no finite distances, zero mean) are left as-is.
func normalizeDistances(members []ensemble.Member) {
	var sum float64
	n := 0
	for _, m := range members {
		if !math.IsInf(m.Distance, 0) {
			sum += m.Distance
			n++
		}
	}
	if n == 0 || sum == 0 {
		return
	}
	mean := sum / float64(n)
	for i := range members {
		if !math.IsInf(members[i].Distance, 0) {
			members[i].Distance /= mean
		}
	}
}

// centroidDistance returns the Euclidean distance, or +Inf when the model
// has no training distribution yet (its kernel weight then vanishes).
func centroidDistance(y, centroid linalg.Vector) float64 {
	if y == nil || centroid == nil || len(y) != len(centroid) {
		return math.Inf(1)
	}
	return y.Distance(centroid)
}

func argmaxRows(proba [][]float64) []int {
	out := make([]int, len(proba))
	for i, row := range proba {
		out[i] = nn.Argmax(row)
	}
	return out
}

func toVectors(x [][]float64) []linalg.Vector {
	out := make([]linalg.Vector, len(x))
	for i, row := range x {
		out[i] = linalg.Vector(row)
	}
	return out
}

// ErrClosed is reserved for future lifecycle handling.
var ErrClosed = errors.New("core: learner closed")

// recordWeights feeds the fusion weights the members will receive to the
// batch trace. No-op (and no allocation) when instrumentation is off.
func recordWeights(bo *batchObs, members []ensemble.Member, sigma float64) {
	if bo == nil {
		return
	}
	ds := make([]float64, len(members))
	for i := range members {
		ds[i] = members[i].Distance
	}
	if ws, err := ensemble.Weights(ds, sigma); err == nil {
		bo.weights(ws)
	}
}

// recordRecovery folds one watchdog event into the health counters and the
// bounded event log. Safe from the async update goroutine.
func (l *Learner) recordRecovery(ev RecoveryEvent) {
	l.obs.recordDivergence(ev.RolledBack)
	l.health.mu.Lock()
	defer l.health.mu.Unlock()
	l.health.divergences++
	if ev.RolledBack {
		l.health.recoveries++
	}
	if len(l.health.events) == maxRecoveryEvents {
		copy(l.health.events, l.health.events[1:])
		l.health.events = l.health.events[:maxRecoveryEvents-1]
	}
	l.health.events = append(l.health.events, ev)
}

// Stats are the learner's fault-tolerance counters: what the guard
// sanitized or refused, what the watchdog detected and rolled back, and
// what the persistence layer degraded around.
type Stats struct {
	// SanitizedValues counts non-finite feature values repaired by the
	// guard (clamp/impute policies); SanitizedBatches the batches affected.
	SanitizedValues  int
	SanitizedBatches int
	// RejectedBatches counts batches refused by the reject policy.
	RejectedBatches int
	// Divergences counts watchdog detections (NaN/Inf weights or loss
	// explosions); Recoveries counts the rollbacks that followed.
	Divergences int
	Recoveries  int
	// AsyncErrorsDropped counts background-update errors lost to the
	// bounded pending queue.
	AsyncErrorsDropped int
	// KnowledgeSkipped counts corrupt knowledge entries skipped during a
	// degraded checkpoint restore.
	KnowledgeSkipped int
	// SpillFailures and SpillLoadFailures surface the knowledge store's
	// filesystem fault counters (failed spill writes / unreadable spill
	// reads).
	SpillFailures     int
	SpillLoadFailures int
}

// Stats returns the learner's fault-tolerance counters.
func (l *Learner) Stats() Stats {
	l.health.mu.Lock()
	s := Stats{
		SanitizedValues:    l.health.sanitizedValues,
		SanitizedBatches:   l.health.sanitizedBatches,
		RejectedBatches:    l.health.rejectedBatches,
		Divergences:        l.health.divergences,
		Recoveries:         l.health.recoveries,
		AsyncErrorsDropped: l.health.asyncDropped,
		KnowledgeSkipped:   l.health.knowledgeSkipped,
	}
	l.health.mu.Unlock()
	s.SpillFailures = l.kdg.SpillFailures()
	s.SpillLoadFailures = l.kdg.LoadFailures()
	return s
}

// RecoveryEvents returns a copy of the retained watchdog event log (the
// most recent maxRecoveryEvents divergences).
func (l *Learner) RecoveryEvents() []RecoveryEvent {
	l.health.mu.Lock()
	defer l.health.mu.Unlock()
	return append([]RecoveryEvent(nil), l.health.events...)
}

// DebugModels exposes the short and long granularity models for diagnostic
// tooling and white-box tests.
func (l *Learner) DebugModels() (short, long model.Model) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.grans[0].m, l.long
}

// DebugDistances recomputes the short/long model shift distances for a
// result's observation (diagnostics only).
func (l *Learner) DebugDistances(res Result) (dShort, dLong float64) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return centroidDistance(res.Observation.YBar, l.grans[0].centroid),
		centroidDistance(res.Observation.YBar, l.longCentroid)
}
