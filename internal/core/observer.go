package core

import (
	"math"
	"time"

	"freewayml/internal/cluster"
	"freewayml/internal/knowledge"
	"freewayml/internal/linalg"
	"freewayml/internal/obs"
	"freewayml/internal/shift"
	"freewayml/internal/strategy"
)

// Observer instruments a Learner: it maintains Prometheus-style series in an
// obs.Registry and records one structured TraceEvent per processed batch in
// a bounded ring. Every series handle is resolved once at construction so
// the per-batch cost is atomic increments, not registry lookups. A nil
// *Observer is valid and disables all instrumentation.
//
// An observer may carry base labels (e.g. stream="orders") appended to every
// series it registers, so many learners can share one registry — the
// multi-stream session layer labels each session's observer with its stream
// id.
type Observer struct {
	reg  *obs.Registry
	ring *obs.TraceRing
	base []string // base label key/value pairs appended to every series

	batches    *obs.Counter
	samples    *obs.Counter
	processSec *obs.Histogram
	stage      map[string]*obs.Histogram
	pattern    map[string]*obs.Counter
	strategy   map[string]*obs.Counter

	guardValues   *obs.Counter
	guardBatches  *obs.Counter
	guardRejected *obs.Counter

	wdDivergences *obs.Counter
	wdRollbacks   *obs.Counter

	kHits         *obs.Counter
	kMisses       *obs.Counter
	kPreserves    *obs.Counter
	kReplacements *obs.Counter

	winCloses    *obs.Counter
	winEvictions *obs.Counter
	traceDropped *obs.Counter

	// Inference-plane series. Unlike the training-plane fields above, these
	// are bumped from many concurrent reader goroutines; all series ops are
	// atomic, so no extra synchronization is needed.
	inferReqs   *obs.Counter
	inferRows   *obs.Counter
	inferWarmup *obs.Counter
	inferSec    *obs.Histogram
	gSnapAge    *obs.Gauge
	gSnapBatch  *obs.Gauge

	// Kernel-tier series: the published tier as a numeric gauge (0 f64,
	// 1 f32, 2 int8-infer), the cumulative int8 weight matrices built at
	// snapshot publication, and the latency of int8-tier inference calls
	// (quantize + int32 dot + dequantize, in microseconds).
	gKernelTier   *obs.Gauge
	quantTotal    *obs.Counter
	dequantMicros *obs.Histogram

	gWinBatches *obs.Gauge
	gWinItems   *obs.Gauge
	gDisorder   *obs.Gauge
	gDecayBoost *obs.Gauge
	gKEntries   *obs.Gauge
	gKBytes     *obs.Gauge
	gKSpilled   *obs.Gauge
	gAccuracy   *obs.Gauge
	gWeight     map[string]*obs.Gauge // member: short, long, knowledge

	// Delta baselines for counters mirrored from mechanism packages. Only
	// the Process goroutine touches them (finish runs there; the quantize
	// baseline is advanced by SnapshotPublished, also on that goroutine).
	lastK         knowledge.Counters
	lastEvictions int
	lastDropped   int64
	lastQuantized uint64
}

// patternLabel maps a shift pattern to its metric label (the short paper
// name, without the parenthesized gloss String() adds).
func patternLabel(p shift.Pattern) string { return p.Label() }

// NewObserver builds an observer registering into reg (nil selects
// obs.Default) with a trace ring of traceCap events (<=0 selects 1024).
func NewObserver(reg *obs.Registry, traceCap int) *Observer {
	return NewObserverLabeled(reg, traceCap)
}

// NewObserverLabeled builds an observer whose every series carries the
// given base label key/value pairs (e.g. "stream", "orders"), so many
// observers can coexist in one registry.
func NewObserverLabeled(reg *obs.Registry, traceCap int, baseLabels ...string) *Observer {
	if reg == nil {
		reg = obs.Default
	}
	if traceCap <= 0 {
		traceCap = 1024
	}
	o := &Observer{
		reg:  reg,
		ring: obs.NewTraceRing(traceCap),
		base: baseLabels,
	}
	o.batches = reg.Counter("freeway_batches_total", "Batches processed by the learner.", o.lbl()...)
	o.samples = reg.Counter("freeway_samples_total", "Samples processed by the learner.", o.lbl()...)
	o.processSec = reg.Histogram("freeway_process_seconds", "End-to-end Process latency per batch.", nil, o.lbl()...)
	o.stage = map[string]*obs.Histogram{}
	o.pattern = map[string]*obs.Counter{}
	o.strategy = map[string]*obs.Counter{}

	o.guardValues = reg.Counter("freeway_guard_sanitized_values_total", "Non-finite feature values repaired by the input guard.", o.lbl()...)
	o.guardBatches = reg.Counter("freeway_guard_sanitized_batches_total", "Batches with at least one repaired value.", o.lbl()...)
	o.guardRejected = reg.Counter("freeway_guard_rejected_batches_total", "Batches refused by the input guard's reject policy.", o.lbl()...)

	o.wdDivergences = reg.Counter("freeway_watchdog_divergences_total", "Model divergences detected by the watchdog.", o.lbl()...)
	o.wdRollbacks = reg.Counter("freeway_watchdog_rollbacks_total", "Watchdog rollbacks to a healthy snapshot.", o.lbl()...)

	o.kHits = reg.Counter("freeway_knowledge_lookups_total", "Knowledge-store lookups by outcome (hit = confident reuse).", o.lbl("result", "hit")...)
	o.kMisses = reg.Counter("freeway_knowledge_lookups_total", "Knowledge-store lookups by outcome (hit = confident reuse).", o.lbl("result", "miss")...)
	o.kPreserves = reg.Counter("freeway_knowledge_preserves_total", "Snapshots preserved into the knowledge store.", o.lbl()...)
	o.kReplacements = reg.Counter("freeway_knowledge_replacements_total", "Same-regime snapshots replaced in place.", o.lbl()...)

	o.inferReqs = reg.Counter("freeway_infer_requests_total", "Inference-plane requests served from the published snapshot.", o.lbl()...)
	o.inferRows = reg.Counter("freeway_infer_rows_total", "Rows predicted by the inference plane.", o.lbl()...)
	o.inferWarmup = reg.Counter("freeway_infer_warmup_total", "Inference-plane requests served by the short model alone (pre-PCA warm-up).", o.lbl()...)
	o.inferSec = reg.Histogram("freeway_infer_seconds", "Inference-plane request latency (snapshot load to fused prediction).", nil, o.lbl()...)
	o.gSnapAge = reg.Gauge("freeway_snapshot_age_seconds", "Age of the published model snapshot at the last inference.", o.lbl()...)
	o.gSnapBatch = reg.Gauge("freeway_snapshot_batch", "Training batch counter of the published model snapshot.", o.lbl()...)
	o.gKernelTier = reg.Gauge("freeway_kernel_tier", "Inference-plane kernel tier (0 f64 oracle, 1 f32, 2 int8-infer).", o.lbl()...)
	o.quantTotal = reg.Counter("freeway_quantize_total", "Int8 weight matrices quantized at snapshot publication.", o.lbl()...)
	o.dequantMicros = reg.Histogram("freeway_dequant_micros", "Latency of int8-tier inference calls (quantize, int8 dot, dequantize).", nil, o.lbl()...)

	o.winCloses = reg.Counter("freeway_window_closes_total", "Adaptive-window closes (long-model update triggers).", o.lbl()...)
	o.winEvictions = reg.Counter("freeway_window_evictions_total", "Window batches evicted by decay-weight expiry.", o.lbl()...)
	o.traceDropped = reg.Counter("freeway_trace_dropped_total", "Decision-trace events evicted from the bounded /v1/trace ring.", o.lbl()...)

	o.gWinBatches = reg.Gauge("freeway_window_batches", "Batches currently held by the adaptive streaming window.", o.lbl()...)
	o.gWinItems = reg.Gauge("freeway_window_items", "Samples currently held by the adaptive streaming window.", o.lbl()...)
	o.gDisorder = reg.Gauge("freeway_window_disorder", "Normalized window disorder (A1/A2 and β-policy evidence).", o.lbl()...)
	o.gDecayBoost = reg.Gauge("freeway_window_decay_boost", "Rate-adjuster decay boost applied to the window.", o.lbl()...)
	o.gKEntries = reg.Gauge("freeway_knowledge_entries", "Entries in the historical knowledge store.", o.lbl()...)
	o.gKBytes = reg.Gauge("freeway_knowledge_bytes", "In-memory bytes held by the knowledge store.", o.lbl()...)
	o.gKSpilled = reg.Gauge("freeway_knowledge_spilled", "Knowledge entries spilled to disk.", o.lbl()...)
	o.gAccuracy = reg.Gauge("freeway_batch_accuracy", "Real-time accuracy of the most recent labeled batch.", o.lbl()...)
	o.gWeight = map[string]*obs.Gauge{}

	for _, s := range strategy.StageNames {
		o.stage[s] = reg.Histogram("freeway_stage_seconds", "Per-stage latency within Process.", nil, o.lbl("stage", s)...)
	}
	for _, p := range []shift.Pattern{shift.PatternWarmup, shift.PatternA, shift.PatternA1, shift.PatternA2, shift.PatternB, shift.PatternC} {
		o.pattern[patternLabel(p)] = reg.Counter("freeway_pattern_total", "Batches per detected shift pattern (A1/A2 slight, B sudden, C reoccurring).", o.lbl("pattern", patternLabel(p))...)
	}
	for _, s := range []Strategy{StrategyWarmup, StrategyEnsemble, StrategyCEC, StrategyKnowledge} {
		o.strategy[s.String()] = reg.Counter("freeway_strategy_total", "Batches per dispatched adaptation strategy.", o.lbl("strategy", s.String())...)
	}
	for _, m := range []string{"short", "long", "knowledge"} {
		o.gWeight[m] = reg.Gauge("freeway_ensemble_weight", "Latest normalized fusion weight per ensemble member.", o.lbl("member", m)...)
	}
	return o
}

// lbl appends the observer's base labels to the given key/value pairs (the
// registry sorts label keys at render time, so order is irrelevant).
func (o *Observer) lbl(kv ...string) []string {
	if len(o.base) == 0 {
		return kv
	}
	out := make([]string, 0, len(kv)+len(o.base))
	out = append(out, kv...)
	return append(out, o.base...)
}

// Registry returns the registry the observer writes to.
func (o *Observer) Registry() *obs.Registry { return o.reg }

// Trace returns the bounded decision-trace ring.
func (o *Observer) Trace() *obs.TraceRing { return o.ring }

// ObserveStage records a stage duration into its histogram. Safe from any
// goroutine (the async long-update path uses it) and on a nil receiver.
func (o *Observer) ObserveStage(name string, d time.Duration) {
	if o == nil {
		return
	}
	if h := o.stage[name]; h != nil {
		h.Observe(d.Seconds())
	}
}

// recordDivergence counts one watchdog event. Safe from the async update
// goroutine and on a nil receiver.
// InferObserved records one inference-plane request: the rows served, the
// request latency, and the age/batch of the snapshot that answered. Called
// concurrently from many reader goroutines; every series op is atomic. A
// nil observer disables it.
func (o *Observer) InferObserved(rows int, d, snapAge time.Duration, snapBatch int, warmup bool) {
	if o == nil {
		return
	}
	o.inferReqs.Inc()
	o.inferRows.Add(int64(rows))
	if warmup {
		o.inferWarmup.Inc()
	}
	o.inferSec.Observe(d.Seconds())
	o.gSnapAge.Set(snapAge.Seconds())
	o.gSnapBatch.Set(float64(snapBatch))
}

// SnapshotPublished records a snapshot publication: the active kernel tier
// and the delta of int8 weight matrices built since the last publication.
// Called on the training goroutine (publishSnapshot); a nil observer
// disables it.
func (o *Observer) SnapshotPublished(tier linalg.KernelTier, quantBuilt uint64) {
	if o == nil {
		return
	}
	o.gKernelTier.Set(float64(tier))
	if quantBuilt > o.lastQuantized {
		o.quantTotal.Add(int64(quantBuilt - o.lastQuantized))
		o.lastQuantized = quantBuilt
	}
}

// DequantObserved records the latency of one int8-tier inference call in the
// dequantization histogram. Called concurrently from reader goroutines; the
// histogram is atomic. A nil observer disables it.
func (o *Observer) DequantObserved(d time.Duration) {
	if o == nil {
		return
	}
	o.dequantMicros.Observe(float64(d) / float64(time.Microsecond))
}

func (o *Observer) recordDivergence(rolledBack bool) {
	if o == nil {
		return
	}
	o.wdDivergences.Inc()
	if rolledBack {
		o.wdRollbacks.Inc()
	}
}

// begin opens the per-batch collector. Returns nil (disabling every
// downstream hook) when the observer itself is nil.
func (o *Observer) begin(l *Learner) *batchObs {
	if o == nil {
		return nil
	}
	l.health.mu.Lock()
	div := l.health.divergences
	l.health.mu.Unlock()
	return &batchObs{
		o:     o,
		start: time.Now(),
		ev: obs.TraceEvent{
			Batch:             l.batch,
			NearestHistory:    -1,
			KnowledgeDistance: -1,
			Accuracy:          -1,
			Stages:            make([]obs.StageTiming, 0, len(strategy.StageNames)),
		},
		divergences0: div,
	}
}

// batchObs accumulates one batch's decision trace. Every method is nil-safe
// so the learner's hot path needs no explicit guards; a nil *batchObs also
// satisfies strategy.Trace, so the mechanisms call hooks unconditionally.
type batchObs struct {
	o            *Observer
	start        time.Time
	ev           obs.TraceEvent
	divergences0 int
}

// compile-time check: the per-batch collector is the strategies' trace.
var _ strategy.Trace = (*batchObs)(nil)

// StageStart returns the stage start time (zero when instrumentation is
// off).
func (bo *batchObs) StageStart() time.Time {
	if bo == nil {
		return time.Time{}
	}
	return time.Now()
}

// StageDone closes a stage opened with StageStart: it appends the timing to
// the event and observes the stage histogram.
func (bo *batchObs) StageDone(name string, t0 time.Time) {
	if bo == nil {
		return
	}
	d := time.Since(t0)
	bo.ev.Stages = append(bo.ev.Stages, obs.StageTiming{Stage: name, Micros: float64(d) / float64(time.Microsecond)})
	bo.o.ObserveStage(name, d)
}

// trace joins the batch's request-scoped trace context to the event, so
// one trace id links router span → worker span → this decision record.
func (bo *batchObs) trace(id string, fused []string) {
	if bo == nil {
		return
	}
	bo.ev.TraceID = id
	bo.ev.FusedTraces = fused
}

// sanitized records repaired feature values.
func (bo *batchObs) sanitized(n int) {
	if bo == nil {
		return
	}
	bo.ev.GuardSanitized = n
}

// decayBoost records the rate-adjuster boost applied this batch.
func (bo *batchObs) decayBoost(v float64) {
	if bo == nil {
		return
	}
	bo.ev.DecayBoost = v
}

// Weights records the fusion weights (first member = knowledge-restored
// model under knowledge reuse, else the short model; last = long model for
// the plain ensemble).
func (bo *batchObs) Weights(ws []float64) {
	if bo == nil {
		return
	}
	bo.ev.EnsembleWeights = ws
}

// CEC records the clustering evidence behind a CEC dispatch attempt.
func (bo *batchObs) CEC(st cluster.CECStats) {
	if bo == nil {
		return
	}
	bo.ev.CECClusters = st.K
	bo.ev.CECIterations = st.Iterations
	bo.ev.CECExperience = st.ExperiencePoints
	bo.ev.CECAgreement = st.Agreement
}

// Knowledge records a knowledge-store lookup: hit means the match was
// confident enough to dispatch knowledge reuse; dist is the matched
// distribution's distance (ignored and kept at -1 unless finite).
func (bo *batchObs) Knowledge(hit bool, dist float64) {
	if bo == nil {
		return
	}
	bo.ev.KnowledgeChecked = true
	bo.ev.KnowledgeHit = hit
	if !math.IsInf(dist, 0) && !math.IsNaN(dist) {
		bo.ev.KnowledgeDistance = dist
	}
}

// WindowClosed marks that this batch's push closed the window.
func (bo *batchObs) WindowClosed() {
	if bo == nil {
		return
	}
	bo.ev.WindowClosed = true
}

// finishRejected emits the trace for a guard-rejected batch: nothing ran,
// so the event carries only the verdict.
func (bo *batchObs) finishRejected(l *Learner) {
	if bo == nil {
		return
	}
	bo.o.guardRejected.Inc()
	bo.ev.Pattern = "rejected"
	bo.ev.GuardRejected = true
	bo.StageDone(strategy.StageGuard, bo.start)
	bo.o.ring.Add(bo.ev)
	bo.o.mirrorDropped()
}

// finish completes the batch: fills the event from the result, updates
// every counter and gauge, and appends the event to the trace ring. Runs on
// the Process goroutine.
func (bo *batchObs) finish(l *Learner, res *Result, samples int) {
	if bo == nil {
		return
	}
	o := bo.o
	ob := res.Observation

	bo.ev.Pattern = ob.Pattern.String()
	if res.SubPattern != ob.Pattern {
		bo.ev.SubPattern = res.SubPattern.String()
	}
	bo.ev.Strategy = res.Strategy.String()
	bo.ev.ShiftDistance = ob.Distance
	bo.ev.Severity = ob.Severity
	bo.ev.HistoryMean = ob.HistoryMean
	if !math.IsInf(ob.NearestHistory, 0) && !math.IsNaN(ob.NearestHistory) {
		bo.ev.NearestHistory = ob.NearestHistory
	}
	bo.ev.Disorder = l.ens.Disorder()
	bo.ev.WindowBatches = l.ens.WindowLen()
	bo.ev.WindowItems = l.ens.WindowItems()
	bo.ev.Accuracy = res.Accuracy
	if l.tier != linalg.TierF64 {
		// Record what the read plane is serving with: the tier and the int8
		// scale spread of the currently published snapshot (the one that
		// answered reads while this batch trained).
		bo.ev.KernelTier = l.tier.String()
		if snap := l.snap.Load(); snap != nil {
			bo.ev.QuantMats = snap.QuantMats
			bo.ev.QuantScaleMin = snap.QuantScaleMin
			bo.ev.QuantScaleMax = snap.QuantScaleMax
		}
	}

	l.health.mu.Lock()
	bo.ev.Divergences = l.health.divergences - bo.divergences0
	l.health.mu.Unlock()

	// Counters.
	o.batches.Inc()
	o.samples.Add(int64(samples))
	label := patternLabel(res.SubPattern)
	if c := o.pattern[label]; c != nil {
		c.Inc()
	} else {
		o.reg.Counter("freeway_pattern_total", "", o.lbl("pattern", label)...).Inc()
	}
	if c := o.strategy[bo.ev.Strategy]; c != nil {
		c.Inc()
	} else {
		o.reg.Counter("freeway_strategy_total", "", o.lbl("strategy", bo.ev.Strategy)...).Inc()
	}
	if bo.ev.GuardSanitized > 0 {
		o.guardValues.Add(int64(bo.ev.GuardSanitized))
		o.guardBatches.Inc()
	}
	if bo.ev.KnowledgeChecked {
		if bo.ev.KnowledgeHit {
			o.kHits.Inc()
		} else {
			o.kMisses.Inc()
		}
	}
	if bo.ev.WindowClosed {
		o.winCloses.Inc()
	}

	// Mirror mechanism-package lifetime counters as deltas so they stay
	// proper monotone counters. Preservation may run on the async update
	// goroutine; its delta is then attributed to a later batch.
	kc := l.kdg.Counters()
	if d := kc.Preserves - o.lastK.Preserves; d > 0 {
		o.kPreserves.Add(int64(d))
	}
	if d := kc.Replacements - o.lastK.Replacements; d > 0 {
		o.kReplacements.Add(int64(d))
	}
	o.lastK = kc
	if ev := l.ens.WindowEvictions(); ev > o.lastEvictions {
		o.winEvictions.Add(int64(ev - o.lastEvictions))
		o.lastEvictions = ev
	}

	// Gauges.
	o.gWinBatches.Set(float64(bo.ev.WindowBatches))
	o.gWinItems.Set(float64(bo.ev.WindowItems))
	o.gDisorder.Set(bo.ev.Disorder)
	o.gDecayBoost.Set(bo.ev.DecayBoost)
	o.gKEntries.Set(float64(l.kdg.Len()))
	o.gKBytes.Set(float64(l.kdg.MemoryBytes()))
	o.gKSpilled.Set(float64(l.kdg.SpilledCount()))
	if res.Accuracy >= 0 {
		o.gAccuracy.Set(res.Accuracy)
	}
	if ws := bo.ev.EnsembleWeights; len(ws) > 0 {
		switch res.Strategy {
		case StrategyKnowledge:
			o.gWeight["knowledge"].Set(ws[0])
			if len(ws) > 1 {
				o.gWeight["short"].Set(ws[1])
			}
		case StrategyEnsemble:
			o.gWeight["short"].Set(ws[0])
			o.gWeight["long"].Set(ws[len(ws)-1])
			o.gWeight["knowledge"].Set(0)
		}
	}

	o.processSec.Observe(time.Since(bo.start).Seconds())
	o.ring.Add(bo.ev)
	o.mirrorDropped()
}

// mirrorDropped exports the trace ring's eviction count as a monotone
// counter (delta-mirrored like the mechanism-package counters above, and
// likewise only touched from the Process goroutine).
func (o *Observer) mirrorDropped() {
	if d := o.ring.Dropped(); d > o.lastDropped {
		o.traceDropped.Add(d - o.lastDropped)
		o.lastDropped = d
	}
}
