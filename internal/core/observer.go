package core

import (
	"math"
	"time"

	"freewayml/internal/cluster"
	"freewayml/internal/knowledge"
	"freewayml/internal/obs"
	"freewayml/internal/shift"
)

// Stage names used in the freeway_stage_seconds{stage=...} histograms and
// the per-event stage timings. "predict" wraps the whole strategy dispatch,
// so it contains "cluster" and "knowledge_lookup" when those mechanisms run.
// "long_update" covers the window-close training; when Async is on it is
// measured on the background goroutine and lands in the histogram only (the
// batch's trace event has already been emitted by then).
const (
	stageGuard           = "guard"
	stageShiftDetect     = "shift_detect"
	stagePredict         = "predict"
	stageCluster         = "cluster"
	stageKnowledgeLookup = "knowledge_lookup"
	stageShortUpdate     = "short_update"
	stageWindowPush      = "window_push"
	stageLongUpdate      = "long_update"
)

var stageNames = []string{
	stageGuard, stageShiftDetect, stagePredict, stageCluster,
	stageKnowledgeLookup, stageShortUpdate, stageWindowPush, stageLongUpdate,
}

// Observer instruments a Learner: it maintains Prometheus-style series in an
// obs.Registry and records one structured TraceEvent per processed batch in
// a bounded ring. Every series handle is resolved once at construction so
// the per-batch cost is atomic increments, not registry lookups. A nil
// *Observer is valid and disables all instrumentation.
type Observer struct {
	reg  *obs.Registry
	ring *obs.TraceRing

	batches    *obs.Counter
	samples    *obs.Counter
	processSec *obs.Histogram
	stage      map[string]*obs.Histogram
	pattern    map[string]*obs.Counter
	strategy   map[string]*obs.Counter

	guardValues   *obs.Counter
	guardBatches  *obs.Counter
	guardRejected *obs.Counter

	wdDivergences *obs.Counter
	wdRollbacks   *obs.Counter

	kHits         *obs.Counter
	kMisses       *obs.Counter
	kPreserves    *obs.Counter
	kReplacements *obs.Counter

	winCloses    *obs.Counter
	winEvictions *obs.Counter

	gWinBatches *obs.Gauge
	gWinItems   *obs.Gauge
	gDisorder   *obs.Gauge
	gDecayBoost *obs.Gauge
	gKEntries   *obs.Gauge
	gKBytes     *obs.Gauge
	gKSpilled   *obs.Gauge
	gAccuracy   *obs.Gauge
	gWeight     map[string]*obs.Gauge // member: short, long, knowledge

	// Delta baselines for counters mirrored from mechanism packages. Only
	// the Process goroutine touches them (finish runs there).
	lastK         knowledge.Counters
	lastEvictions int
}

// patternLabel maps a shift pattern to its metric label (the short paper
// name, without the parenthesized gloss String() adds).
func patternLabel(p shift.Pattern) string {
	switch p {
	case shift.PatternWarmup:
		return "warmup"
	case shift.PatternA:
		return "A"
	case shift.PatternA1:
		return "A1"
	case shift.PatternA2:
		return "A2"
	case shift.PatternB:
		return "B"
	case shift.PatternC:
		return "C"
	default:
		return p.String()
	}
}

// NewObserver builds an observer registering into reg (nil selects
// obs.Default) with a trace ring of traceCap events (<=0 selects 1024).
func NewObserver(reg *obs.Registry, traceCap int) *Observer {
	if reg == nil {
		reg = obs.Default
	}
	if traceCap <= 0 {
		traceCap = 1024
	}
	o := &Observer{
		reg:  reg,
		ring: obs.NewTraceRing(traceCap),

		batches:    reg.Counter("freeway_batches_total", "Batches processed by the learner."),
		samples:    reg.Counter("freeway_samples_total", "Samples processed by the learner."),
		processSec: reg.Histogram("freeway_process_seconds", "End-to-end Process latency per batch.", nil),
		stage:      map[string]*obs.Histogram{},
		pattern:    map[string]*obs.Counter{},
		strategy:   map[string]*obs.Counter{},

		guardValues:   reg.Counter("freeway_guard_sanitized_values_total", "Non-finite feature values repaired by the input guard."),
		guardBatches:  reg.Counter("freeway_guard_sanitized_batches_total", "Batches with at least one repaired value."),
		guardRejected: reg.Counter("freeway_guard_rejected_batches_total", "Batches refused by the input guard's reject policy."),

		wdDivergences: reg.Counter("freeway_watchdog_divergences_total", "Model divergences detected by the watchdog."),
		wdRollbacks:   reg.Counter("freeway_watchdog_rollbacks_total", "Watchdog rollbacks to a healthy snapshot."),

		kHits:         reg.Counter("freeway_knowledge_lookups_total", "Knowledge-store lookups by outcome (hit = confident reuse).", "result", "hit"),
		kMisses:       reg.Counter("freeway_knowledge_lookups_total", "Knowledge-store lookups by outcome (hit = confident reuse).", "result", "miss"),
		kPreserves:    reg.Counter("freeway_knowledge_preserves_total", "Snapshots preserved into the knowledge store."),
		kReplacements: reg.Counter("freeway_knowledge_replacements_total", "Same-regime snapshots replaced in place."),

		winCloses:    reg.Counter("freeway_window_closes_total", "Adaptive-window closes (long-model update triggers)."),
		winEvictions: reg.Counter("freeway_window_evictions_total", "Window batches evicted by decay-weight expiry."),

		gWinBatches: reg.Gauge("freeway_window_batches", "Batches currently held by the adaptive streaming window."),
		gWinItems:   reg.Gauge("freeway_window_items", "Samples currently held by the adaptive streaming window."),
		gDisorder:   reg.Gauge("freeway_window_disorder", "Normalized window disorder (A1/A2 and β-policy evidence)."),
		gDecayBoost: reg.Gauge("freeway_window_decay_boost", "Rate-adjuster decay boost applied to the window."),
		gKEntries:   reg.Gauge("freeway_knowledge_entries", "Entries in the historical knowledge store."),
		gKBytes:     reg.Gauge("freeway_knowledge_bytes", "In-memory bytes held by the knowledge store."),
		gKSpilled:   reg.Gauge("freeway_knowledge_spilled", "Knowledge entries spilled to disk."),
		gAccuracy:   reg.Gauge("freeway_batch_accuracy", "Real-time accuracy of the most recent labeled batch."),
		gWeight:     map[string]*obs.Gauge{},
	}
	for _, s := range stageNames {
		o.stage[s] = reg.Histogram("freeway_stage_seconds", "Per-stage latency within Process.", nil, "stage", s)
	}
	for _, p := range []shift.Pattern{shift.PatternWarmup, shift.PatternA, shift.PatternA1, shift.PatternA2, shift.PatternB, shift.PatternC} {
		o.pattern[patternLabel(p)] = reg.Counter("freeway_pattern_total", "Batches per detected shift pattern (A1/A2 slight, B sudden, C reoccurring).", "pattern", patternLabel(p))
	}
	for _, s := range []Strategy{StrategyWarmup, StrategyEnsemble, StrategyCEC, StrategyKnowledge} {
		o.strategy[s.String()] = reg.Counter("freeway_strategy_total", "Batches per dispatched adaptation strategy.", "strategy", s.String())
	}
	for _, m := range []string{"short", "long", "knowledge"} {
		o.gWeight[m] = reg.Gauge("freeway_ensemble_weight", "Latest normalized fusion weight per ensemble member.", "member", m)
	}
	return o
}

// Registry returns the registry the observer writes to.
func (o *Observer) Registry() *obs.Registry { return o.reg }

// Trace returns the bounded decision-trace ring.
func (o *Observer) Trace() *obs.TraceRing { return o.ring }

// observeStage records a stage duration into its histogram. Safe from any
// goroutine (the async long-update path uses it) and on a nil receiver.
func (o *Observer) observeStage(name string, d time.Duration) {
	if o == nil {
		return
	}
	if h := o.stage[name]; h != nil {
		h.Observe(d.Seconds())
	}
}

// recordDivergence counts one watchdog event. Safe from the async update
// goroutine and on a nil receiver.
func (o *Observer) recordDivergence(rolledBack bool) {
	if o == nil {
		return
	}
	o.wdDivergences.Inc()
	if rolledBack {
		o.wdRollbacks.Inc()
	}
}

// begin opens the per-batch collector. Returns nil (disabling every
// downstream hook) when the observer itself is nil.
func (o *Observer) begin(l *Learner) *batchObs {
	if o == nil {
		return nil
	}
	l.health.mu.Lock()
	div := l.health.divergences
	l.health.mu.Unlock()
	return &batchObs{
		o:     o,
		start: time.Now(),
		ev: obs.TraceEvent{
			Batch:             l.batch,
			NearestHistory:    -1,
			KnowledgeDistance: -1,
			Accuracy:          -1,
			Stages:            make([]obs.StageTiming, 0, len(stageNames)),
		},
		divergences0: div,
	}
}

// batchObs accumulates one batch's decision trace. Every method is nil-safe
// so the learner's hot path needs no explicit guards.
type batchObs struct {
	o            *Observer
	start        time.Time
	ev           obs.TraceEvent
	divergences0 int
}

// now returns the stage start time (zero when instrumentation is off).
func (bo *batchObs) now() time.Time {
	if bo == nil {
		return time.Time{}
	}
	return time.Now()
}

// stageDone closes a stage opened with now: it appends the timing to the
// event and observes the stage histogram.
func (bo *batchObs) stageDone(name string, t0 time.Time) {
	if bo == nil {
		return
	}
	d := time.Since(t0)
	bo.ev.Stages = append(bo.ev.Stages, obs.StageTiming{Stage: name, Micros: float64(d) / float64(time.Microsecond)})
	bo.o.observeStage(name, d)
}

// sanitized records repaired feature values.
func (bo *batchObs) sanitized(n int) {
	if bo == nil {
		return
	}
	bo.ev.GuardSanitized = n
}

// decayBoost records the rate-adjuster boost applied this batch.
func (bo *batchObs) decayBoost(v float64) {
	if bo == nil {
		return
	}
	bo.ev.DecayBoost = v
}

// weights records the fusion weights (first member = knowledge-restored
// model under knowledge reuse, else the short model; last = long model for
// the plain ensemble).
func (bo *batchObs) weights(ws []float64) {
	if bo == nil {
		return
	}
	bo.ev.EnsembleWeights = ws
}

// cec records the clustering evidence behind a CEC dispatch attempt.
func (bo *batchObs) cec(st cluster.CECStats) {
	if bo == nil {
		return
	}
	bo.ev.CECClusters = st.K
	bo.ev.CECIterations = st.Iterations
	bo.ev.CECExperience = st.ExperiencePoints
	bo.ev.CECAgreement = st.Agreement
}

// knowledge records a knowledge-store lookup: hit means the match was
// confident enough to dispatch knowledge reuse; dist is the matched
// distribution's distance (ignored and kept at -1 unless finite).
func (bo *batchObs) knowledge(hit bool, dist float64) {
	if bo == nil {
		return
	}
	bo.ev.KnowledgeChecked = true
	bo.ev.KnowledgeHit = hit
	if !math.IsInf(dist, 0) && !math.IsNaN(dist) {
		bo.ev.KnowledgeDistance = dist
	}
}

// windowClosed marks that this batch's push closed the window.
func (bo *batchObs) windowClosed() {
	if bo == nil {
		return
	}
	bo.ev.WindowClosed = true
}

// finishRejected emits the trace for a guard-rejected batch: nothing ran,
// so the event carries only the verdict.
func (bo *batchObs) finishRejected(l *Learner) {
	if bo == nil {
		return
	}
	bo.o.guardRejected.Inc()
	bo.ev.Pattern = "rejected"
	bo.ev.GuardRejected = true
	bo.stageDone(stageGuard, bo.start)
	bo.o.ring.Add(bo.ev)
}

// finish completes the batch: fills the event from the result, updates
// every counter and gauge, and appends the event to the trace ring. Runs on
// the Process goroutine.
func (bo *batchObs) finish(l *Learner, res *Result, samples int) {
	if bo == nil {
		return
	}
	o := bo.o
	ob := res.Observation

	bo.ev.Pattern = ob.Pattern.String()
	if res.SubPattern != ob.Pattern {
		bo.ev.SubPattern = res.SubPattern.String()
	}
	bo.ev.Strategy = res.Strategy.String()
	bo.ev.ShiftDistance = ob.Distance
	bo.ev.Severity = ob.Severity
	bo.ev.HistoryMean = ob.HistoryMean
	if !math.IsInf(ob.NearestHistory, 0) && !math.IsNaN(ob.NearestHistory) {
		bo.ev.NearestHistory = ob.NearestHistory
	}
	bo.ev.Disorder = l.asw.Disorder()
	bo.ev.WindowBatches = l.asw.Len()
	bo.ev.WindowItems = l.asw.Items()
	bo.ev.Accuracy = res.Accuracy

	l.health.mu.Lock()
	bo.ev.Divergences = l.health.divergences - bo.divergences0
	l.health.mu.Unlock()

	// Counters.
	o.batches.Inc()
	o.samples.Add(int64(samples))
	label := patternLabel(res.SubPattern)
	if c := o.pattern[label]; c != nil {
		c.Inc()
	} else {
		o.reg.Counter("freeway_pattern_total", "", "pattern", label).Inc()
	}
	if c := o.strategy[bo.ev.Strategy]; c != nil {
		c.Inc()
	} else {
		o.reg.Counter("freeway_strategy_total", "", "strategy", bo.ev.Strategy).Inc()
	}
	if bo.ev.GuardSanitized > 0 {
		o.guardValues.Add(int64(bo.ev.GuardSanitized))
		o.guardBatches.Inc()
	}
	if bo.ev.KnowledgeChecked {
		if bo.ev.KnowledgeHit {
			o.kHits.Inc()
		} else {
			o.kMisses.Inc()
		}
	}
	if bo.ev.WindowClosed {
		o.winCloses.Inc()
	}

	// Mirror mechanism-package lifetime counters as deltas so they stay
	// proper monotone counters. Preservation may run on the async update
	// goroutine; its delta is then attributed to a later batch.
	kc := l.kdg.Counters()
	if d := kc.Preserves - o.lastK.Preserves; d > 0 {
		o.kPreserves.Add(int64(d))
	}
	if d := kc.Replacements - o.lastK.Replacements; d > 0 {
		o.kReplacements.Add(int64(d))
	}
	o.lastK = kc
	if ev := l.asw.Evictions(); ev > o.lastEvictions {
		o.winEvictions.Add(int64(ev - o.lastEvictions))
		o.lastEvictions = ev
	}

	// Gauges.
	o.gWinBatches.Set(float64(bo.ev.WindowBatches))
	o.gWinItems.Set(float64(bo.ev.WindowItems))
	o.gDisorder.Set(bo.ev.Disorder)
	o.gDecayBoost.Set(bo.ev.DecayBoost)
	o.gKEntries.Set(float64(l.kdg.Len()))
	o.gKBytes.Set(float64(l.kdg.MemoryBytes()))
	o.gKSpilled.Set(float64(l.kdg.SpilledCount()))
	if res.Accuracy >= 0 {
		o.gAccuracy.Set(res.Accuracy)
	}
	if ws := bo.ev.EnsembleWeights; len(ws) > 0 {
		switch res.Strategy {
		case StrategyKnowledge:
			o.gWeight["knowledge"].Set(ws[0])
			if len(ws) > 1 {
				o.gWeight["short"].Set(ws[1])
			}
		case StrategyEnsemble:
			o.gWeight["short"].Set(ws[0])
			o.gWeight["long"].Set(ws[len(ws)-1])
			o.gWeight["knowledge"].Set(0)
		}
	}

	o.processSec.Observe(time.Since(bo.start).Seconds())
	o.ring.Add(bo.ev)
}
