package core

import (
	"context"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"freewayml/internal/obs"
	"freewayml/internal/shift"
	"freewayml/internal/strategy"
	"freewayml/internal/stream"
)

// TestObserverTraceAndMetrics drives a home → away → return-home stream so
// every mechanism fires, then checks the decision trace and the exported
// series tell the same story.
func TestObserverTraceAndMetrics(t *testing.T) {
	cfg := testConfig()
	cfg.Window.MaxBatches = 3
	l, err := NewLearner(cfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	reg := obs.NewRegistry()
	o := NewObserver(reg, 256)
	l.SetObserver(o)

	rng := rand.New(rand.NewSource(4))
	seq := 0
	processed := 0
	step := func(cx, cy float64, kind stream.DriftKind) Result {
		res, err := l.Process(context.Background(), driftBatch(rng, seq, 64, cx, cy, kind))
		if err != nil {
			t.Fatal(err)
		}
		seq++
		processed++
		return res
	}
	for s := 0; s < 30; s++ {
		step(0, 0, stream.KindNone)
	}
	for s := 0; s < 12; s++ {
		step(50, 40, stream.KindSudden)
	}
	res := step(0, 0, stream.KindReoccurring)
	if res.Pattern != shift.PatternC || res.Strategy != StrategyKnowledge {
		t.Fatalf("return batch: pattern=%v strategy=%v, want C/knowledge", res.Pattern, res.Strategy)
	}

	ring := o.Trace()
	if ring.Len() != processed {
		t.Fatalf("trace ring holds %d events, processed %d", ring.Len(), processed)
	}
	ev, ok := ring.Newest()
	if !ok {
		t.Fatal("empty ring")
	}
	if ev.Pattern != "C(reoccurring)" || ev.Strategy != "knowledge-reuse" {
		t.Errorf("newest event pattern=%q strategy=%q", ev.Pattern, ev.Strategy)
	}
	if !ev.KnowledgeChecked || !ev.KnowledgeHit || ev.KnowledgeDistance < 0 {
		t.Errorf("knowledge evidence missing: %+v", ev)
	}
	if len(ev.EnsembleWeights) == 0 {
		t.Error("knowledge-reuse event has no fusion weights")
	}
	if ev.Accuracy < 0 {
		t.Error("labeled batch recorded no accuracy")
	}
	// Every event names its mechanism and carries stage timings.
	for _, e := range ring.Last(0) {
		if e.Strategy == "" {
			t.Fatalf("batch %d event has no strategy", e.Batch)
		}
		stages := map[string]bool{}
		for _, s := range e.Stages {
			if s.Micros < 0 {
				t.Fatalf("batch %d stage %s negative duration", e.Batch, s.Stage)
			}
			stages[s.Stage] = true
		}
		for _, want := range []string{strategy.StageGuard, strategy.StageShiftDetect, strategy.StagePredict, strategy.StageShortUpdate} {
			if !stages[want] {
				t.Fatalf("batch %d event missing stage %q (has %v)", e.Batch, want, e.Stages)
			}
		}
	}

	if reg.NumSeries() < 12 {
		t.Errorf("registry has %d series, want >= 12", reg.NumSeries())
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		"freeway_batches_total " + strconv.Itoa(processed),
		`freeway_stage_seconds_count{stage="shift_detect"} ` + strconv.Itoa(processed),
		"freeway_process_seconds_count " + strconv.Itoa(processed),
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	for _, series := range []string{
		`freeway_pattern_total{pattern="C"}`,
		`freeway_pattern_total{pattern="B"}`,
		`freeway_strategy_total{strategy="knowledge-reuse"}`,
		`freeway_knowledge_lookups_total{result="hit"}`,
		"freeway_window_closes_total",
		"freeway_knowledge_preserves_total",
	} {
		if v := seriesValue(t, body, series); v <= 0 {
			t.Errorf("series %s = %v, want > 0", series, v)
		}
	}
}

// seriesValue extracts one sample's value from an exposition body.
func seriesValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, series+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, series+" "), 64)
			if err != nil {
				t.Fatalf("series %s: bad value in %q: %v", series, line, err)
			}
			return v
		}
	}
	t.Fatalf("series %s not found", series)
	return 0
}

// TestObserverRejectedBatch checks the guard-reject verdict is traced and
// counted without advancing the batch counter.
func TestObserverRejectedBatch(t *testing.T) {
	cfg := testConfig()
	l, err := NewLearner(cfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	reg := obs.NewRegistry()
	o := NewObserver(reg, 8)
	l.SetObserver(o)

	rng := rand.New(rand.NewSource(9))
	b := driftBatch(rng, 0, 16, 0, 0, stream.KindNone)
	b.X[3][1] = math.NaN()
	if _, err := l.Process(context.Background(), b); err == nil {
		t.Fatal("NaN batch accepted under reject policy")
	}
	ev, ok := o.Trace().Newest()
	if !ok || !ev.GuardRejected || ev.Pattern != "rejected" {
		t.Fatalf("rejection not traced: ok=%v ev=%+v", ok, ev)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "freeway_guard_rejected_batches_total 1") {
		t.Error("rejected counter not exported")
	}
	if strings.Contains(sb.String(), "freeway_batches_total 1") {
		t.Error("rejected batch counted as processed")
	}
}
