package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"freewayml/internal/cluster"
	"freewayml/internal/knowledge"
	"freewayml/internal/linalg"
	"freewayml/internal/metrics"
	"freewayml/internal/shift"
	"freewayml/internal/strategy"
)

// checkpoint is the gob-serialized durable state of a Learner: everything
// needed to stop a deployed stream and resume it later with identical
// behaviour — model parameters, the shift detector (whose PCA space anchors
// every stored distribution), the knowledge store, the coherent
// experience, and the prequential metrics. The ASW contents and pending fixed-frequency buffers are
// intentionally NOT serialized: they hold at most a few batches of
// transient training data that the resumed stream replaces within one
// window; a checkpoint stays small and the window restarts cleanly.
type checkpoint struct {
	Version       int
	ModelFamily   string
	Dim, Classes  int
	Batch         int
	GranSnapshots [][]byte
	GranCentroids []linalg.Vector
	LongSnapshot  []byte
	LongCentroid  linalg.Vector
	Detector      shift.State
	Knowledge     []knowledge.EntrySnapshot
	Experience    cluster.ExpBufferState
	Metrics       metrics.PrequentialState
}

// checkpointVersion guards the on-disk format.
const checkpointVersion = 1

// Checkpoint envelope: every checkpoint is framed as
//
//	magic "FWCP" (4 bytes) | version uint32 | payload length uint64 |
//	CRC32-IEEE of payload uint32 | gob payload
//
// (integers little-endian). The magic rejects files that were never
// checkpoints, the length detects truncation before gob sees a byte, and
// the CRC detects bit rot — gob happily mis-decodes flipped bits into
// silently wrong weights, which is the worst possible failure for a model
// restore.
var checkpointMagic = [4]byte{'F', 'W', 'C', 'P'}

// envelopeVersion is the framing version (independent of the gob payload's
// checkpointVersion).
const envelopeVersion = 1

// maxCheckpointBytes caps the declared payload length so a corrupt header
// cannot trigger a multi-gigabyte allocation.
const maxCheckpointBytes = 1 << 33

// ErrCheckpointCorrupt marks a checkpoint that failed envelope
// verification: truncated, bit-flipped, or not a checkpoint at all. The
// learner's in-memory state is untouched when LoadCheckpoint returns it.
var ErrCheckpointCorrupt = errors.New("core: checkpoint corrupt")

// writeEnvelope frames the payload and writes it to w.
func writeEnvelope(w io.Writer, payload []byte) error {
	var header [20]byte
	copy(header[:4], checkpointMagic[:])
	binary.LittleEndian.PutUint32(header[4:8], envelopeVersion)
	binary.LittleEndian.PutUint64(header[8:16], uint64(len(payload)))
	binary.LittleEndian.PutUint32(header[16:20], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(header[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readEnvelope verifies the framing and returns the payload.
func readEnvelope(r io.Reader) ([]byte, error) {
	var header [20]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCheckpointCorrupt, err)
	}
	if !bytes.Equal(header[:4], checkpointMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic (not a freewayml checkpoint)", ErrCheckpointCorrupt)
	}
	if v := binary.LittleEndian.Uint32(header[4:8]); v != envelopeVersion {
		return nil, fmt.Errorf("core: checkpoint envelope version %d, want %d", v, envelopeVersion)
	}
	n := binary.LittleEndian.Uint64(header[8:16])
	if n > maxCheckpointBytes {
		return nil, fmt.Errorf("%w: implausible payload length %d", ErrCheckpointCorrupt, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: truncated payload: %v", ErrCheckpointCorrupt, err)
	}
	if sum := crc32.ChecksumIEEE(payload); sum != binary.LittleEndian.Uint32(header[16:20]) {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCheckpointCorrupt)
	}
	return payload, nil
}

// SaveCheckpoint serializes the learner's durable state. Any in-flight
// asynchronous long-model update is waited out first so the snapshot is
// consistent. A learner on a process-shared knowledge store does not
// serialize it: the store outlives any single stream and is the session
// layer's to manage.
func (l *Learner) SaveCheckpoint(w io.Writer) error {
	st, err := l.ens.ExportState()
	if err != nil {
		return fmt.Errorf("core: checkpoint ensemble: %w", err)
	}
	cp := checkpoint{
		Version:       checkpointVersion,
		ModelFamily:   l.cfg.ModelFamily,
		Dim:           l.dim,
		Classes:       l.classes,
		Batch:         l.batch,
		GranSnapshots: st.GranSnapshots,
		GranCentroids: st.GranCentroids,
		LongSnapshot:  st.LongSnapshot,
		LongCentroid:  st.LongCentroid,
		Detector:      l.det.State(),
		Experience:    l.exp.Export(),
		Metrics:       l.preq.Export(),
	}
	if !l.sharedKdg {
		entries, err := l.kdg.Export()
		if err != nil {
			return fmt.Errorf("core: checkpoint knowledge: %w", err)
		}
		cp.Knowledge = entries
	}

	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(cp); err != nil {
		return fmt.Errorf("core: encode checkpoint: %w", err)
	}
	if err := writeEnvelope(w, payload.Bytes()); err != nil {
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	return nil
}

// SaveCheckpointFile atomically writes a checkpoint to path: the envelope
// goes to a temp file in the same directory, is fsynced, and is renamed
// over the destination, so a crash at any point leaves either the previous
// checkpoint or the new one — never a torn file.
func (l *Learner) SaveCheckpointFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*.tmp")
	if err != nil {
		return fmt.Errorf("core: checkpoint temp file: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := l.SaveCheckpoint(tmp); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("core: sync checkpoint: %w", err)
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("core: close checkpoint: %w", err)
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("core: commit checkpoint: %w", err)
	}
	// Durability of the rename itself requires a directory fsync; failure
	// here is not fatal (the data file is already complete and consistent).
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// LoadCheckpointFile restores a checkpoint written by SaveCheckpointFile.
func (l *Learner) LoadCheckpointFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("core: open checkpoint: %w", err)
	}
	defer f.Close()
	return l.LoadCheckpoint(f)
}

// LoadCheckpoint restores a learner from a checkpoint written by a learner
// with the same configuration and stream shape. The envelope (magic,
// version, length, CRC) is verified before anything is decoded and every
// compatibility check runs before anything is restored, so a corrupt or
// mismatched checkpoint returns an error with the learner's in-memory
// state — and its predictions — unchanged. Individually invalid knowledge
// entries degrade the restore (skipped and counted in Stats) instead of
// failing it.
func (l *Learner) LoadCheckpoint(r io.Reader) error {
	payload, err := readEnvelope(r)
	if err != nil {
		return err
	}
	var cp checkpoint
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&cp); err != nil {
		return fmt.Errorf("%w: decode: %v", ErrCheckpointCorrupt, err)
	}
	if cp.Version != checkpointVersion {
		return fmt.Errorf("core: checkpoint version %d, want %d", cp.Version, checkpointVersion)
	}
	if cp.ModelFamily != l.cfg.ModelFamily {
		return fmt.Errorf("core: checkpoint family %q, learner is %q", cp.ModelFamily, l.cfg.ModelFamily)
	}
	if cp.Dim != l.dim || cp.Classes != l.classes {
		return fmt.Errorf("core: checkpoint shape %dx%d, learner is %dx%d",
			cp.Dim, cp.Classes, l.dim, l.classes)
	}
	if len(cp.GranSnapshots) != len(l.ens.Granularities()) {
		return errors.New("core: checkpoint granularity count mismatch (different ModelNum?)")
	}

	if err := l.ens.ImportState(strategy.EnsembleState{
		GranSnapshots: cp.GranSnapshots,
		GranCentroids: cp.GranCentroids,
		LongSnapshot:  cp.LongSnapshot,
		LongCentroid:  cp.LongCentroid,
	}); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := l.det.RestoreState(cp.Detector); err != nil {
		return fmt.Errorf("core: restore detector: %w", err)
	}
	// A shared knowledge store is never restored from a stream's checkpoint:
	// it already holds the live process-wide state.
	if !l.sharedKdg {
		skipped, err := l.kdg.Import(cp.Knowledge)
		if err != nil {
			return fmt.Errorf("core: restore knowledge: %w", err)
		}
		if skipped > 0 {
			l.health.mu.Lock()
			l.health.knowledgeSkipped += skipped
			l.health.mu.Unlock()
		}
	}
	if err := l.exp.Import(cp.Experience); err != nil {
		return fmt.Errorf("core: restore experience: %w", err)
	}
	l.preq.Import(cp.Metrics)
	l.batch = cp.Batch
	// The restored parameters must reach the inference plane too: republish
	// so readers stop serving the pre-restore snapshot.
	l.publishSnapshot(shift.PatternWarmup)
	return nil
}
