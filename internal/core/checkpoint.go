package core

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"freewayml/internal/cluster"
	"freewayml/internal/knowledge"
	"freewayml/internal/linalg"
	"freewayml/internal/shift"
)

// checkpoint is the gob-serialized durable state of a Learner: everything
// needed to stop a deployed stream and resume it later with identical
// behaviour — model parameters, the shift detector (whose PCA space anchors
// every stored distribution), the knowledge store, and the coherent
// experience. The ASW contents and pending fixed-frequency buffers are
// intentionally NOT serialized: they hold at most a few batches of
// transient training data that the resumed stream replaces within one
// window; a checkpoint stays small and the window restarts cleanly.
type checkpoint struct {
	Version       int
	ModelFamily   string
	Dim, Classes  int
	Batch         int
	GranSnapshots [][]byte
	GranCentroids []linalg.Vector
	LongSnapshot  []byte
	LongCentroid  linalg.Vector
	Detector      shift.State
	Knowledge     []knowledge.EntrySnapshot
	Experience    cluster.ExpBufferState
}

// checkpointVersion guards the on-disk format.
const checkpointVersion = 1

// SaveCheckpoint serializes the learner's durable state. Any in-flight
// asynchronous long-model update is waited out first so the snapshot is
// consistent.
func (l *Learner) SaveCheckpoint(w io.Writer) error {
	l.wg.Wait()
	l.mu.Lock()
	defer l.mu.Unlock()

	cp := checkpoint{
		Version:     checkpointVersion,
		ModelFamily: l.cfg.ModelFamily,
		Dim:         l.grans[0].m.InDim(),
		Classes:     l.grans[0].m.NumClasses(),
		Batch:       l.batch,
		Detector:    l.det.State(),
		Experience:  l.exp.Export(),
	}
	for _, g := range l.grans {
		snap, err := g.m.Snapshot()
		if err != nil {
			return fmt.Errorf("core: checkpoint short model: %w", err)
		}
		cp.GranSnapshots = append(cp.GranSnapshots, snap)
		var c linalg.Vector
		if g.centroid != nil {
			c = g.centroid.Clone()
		}
		cp.GranCentroids = append(cp.GranCentroids, c)
	}
	longSnap, err := l.long.Snapshot()
	if err != nil {
		return fmt.Errorf("core: checkpoint long model: %w", err)
	}
	cp.LongSnapshot = longSnap
	if l.longCentroid != nil {
		cp.LongCentroid = l.longCentroid.Clone()
	}
	entries, err := l.kdg.Export()
	if err != nil {
		return fmt.Errorf("core: checkpoint knowledge: %w", err)
	}
	cp.Knowledge = entries

	if err := gob.NewEncoder(w).Encode(cp); err != nil {
		return fmt.Errorf("core: encode checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint restores a learner from a checkpoint written by a learner
// with the same configuration and stream shape.
func (l *Learner) LoadCheckpoint(r io.Reader) error {
	var cp checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return fmt.Errorf("core: decode checkpoint: %w", err)
	}
	if cp.Version != checkpointVersion {
		return fmt.Errorf("core: checkpoint version %d, want %d", cp.Version, checkpointVersion)
	}
	if cp.ModelFamily != l.cfg.ModelFamily {
		return fmt.Errorf("core: checkpoint family %q, learner is %q", cp.ModelFamily, l.cfg.ModelFamily)
	}
	if cp.Dim != l.grans[0].m.InDim() || cp.Classes != l.grans[0].m.NumClasses() {
		return fmt.Errorf("core: checkpoint shape %dx%d, learner is %dx%d",
			cp.Dim, cp.Classes, l.grans[0].m.InDim(), l.grans[0].m.NumClasses())
	}
	if len(cp.GranSnapshots) != len(l.grans) {
		return errors.New("core: checkpoint granularity count mismatch (different ModelNum?)")
	}

	l.wg.Wait()
	l.mu.Lock()
	defer l.mu.Unlock()

	for i, g := range l.grans {
		if err := g.m.Restore(cp.GranSnapshots[i]); err != nil {
			return fmt.Errorf("core: restore granularity %d: %w", i, err)
		}
		g.centroid = cp.GranCentroids[i]
		g.bufX, g.bufY, g.pending = nil, nil, 0
	}
	if err := l.long.Restore(cp.LongSnapshot); err != nil {
		return fmt.Errorf("core: restore long model: %w", err)
	}
	l.longCentroid = cp.LongCentroid
	if err := l.det.RestoreState(cp.Detector); err != nil {
		return fmt.Errorf("core: restore detector: %w", err)
	}
	if err := l.kdg.Import(cp.Knowledge); err != nil {
		return fmt.Errorf("core: restore knowledge: %w", err)
	}
	if err := l.exp.Import(cp.Experience); err != nil {
		return fmt.Errorf("core: restore experience: %w", err)
	}
	l.asw.Reset()
	if l.pre != nil {
		l.pre.Start()
	}
	l.batch = cp.Batch
	return nil
}
