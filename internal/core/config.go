// Package core implements the FreewayML learner itself (paper Sec. IV-V):
// the strategy selector that classifies every batch's shift pattern and
// dispatches exactly one of the three adaptive mechanisms for inference —
// multi-time-granularity ensemble (slight shifts), coherent experience
// clustering (sudden shifts), or historical knowledge reuse (reoccurring
// shifts) — while the training path always updates every granularity model
// per its own schedule.
package core

import (
	"errors"
	"fmt"

	"freewayml/internal/guard"
	"freewayml/internal/knowledge"
	"freewayml/internal/linalg"
	"freewayml/internal/model"
	"freewayml/internal/shift"
	"freewayml/internal/strategy"
	"freewayml/internal/window"
)

// Config mirrors the paper's Learner interface
// (Model, ModelNum, MiniBatch, KdgBuffer, ExpBuffer, α) plus the knobs of
// the underlying substrates.
type Config struct {
	// ModelFamily selects the streaming model: "lr", "mlp", "cnn3", "cnn5".
	ModelFamily string
	// Hyper sets the SGD hyperparameters of every granularity model.
	Hyper model.Hyper
	// ModelNum is the number of time-granularity models (>= 2): model 0
	// updates every batch, models 1..N-2 at geometrically longer fixed
	// frequencies, and model N-1 over the adaptive streaming window.
	ModelNum int
	// KdgBuffer bounds the historical-knowledge store (entries).
	KdgBuffer int
	// ExpBufferPoints bounds the coherent-experience buffer (labeled
	// points); ExpBufferAge expires experience older than that many batches.
	ExpBufferPoints int
	ExpBufferAge    int
	// Alpha is the severity threshold α of the pattern classifier.
	Alpha float64
	// Beta is the disorder threshold β of the knowledge-preservation policy.
	Beta float64
	// Sigma is the Gaussian-kernel width of the distance ensemble (Eq. 14).
	Sigma float64
	// Shift configures the detector (Alpha above overrides Shift.Alpha).
	Shift shift.Config
	// Window configures the adaptive streaming window.
	Window window.Config
	// SpillDir, when set, receives spilled knowledge snapshots.
	SpillDir string
	// Seed drives every stochastic component (clustering, model init).
	Seed int64
	// Async trains the long-granularity model on a background goroutine so
	// inference is never blocked by a window update (paper Sec. V-A1).
	Async bool
	// Precompute enables the pre-computing window gradients of Sec. V-B:
	// per-batch gradients are folded in at arrival and the window close
	// applies one aggregated step. This minimizes update latency at the
	// cost of the chunked-epoch training below (the ablation benches
	// quantify the trade-off).
	Precompute bool
	// LongEpochs and LongChunk shape the long-model update when Precompute
	// is off: LongEpochs passes of mini-batch SGD over the window's
	// weighted training set, in chunks of LongChunk samples.
	LongEpochs int
	LongChunk  int
	// LongEMA applies a per-batch exponential moving average of the short
	// model's weights into the long model. Disabled (0) by default: the
	// ablation benches showed weight-space averaging of momentum-SGD
	// iterates degrades nonlinear models; it is kept as an option for
	// linear ones.
	LongEMA float64
	// LongLRScale scales the long model's learning rate relative to
	// Hyper.LR, refining the decision boundary with smaller steps over more
	// data — the stability role Insight A assigns to the long-granularity
	// model.
	LongLRScale float64
	// LongRebase, when true, resets the long model to the short model's
	// weights at every window close before window training. Re-basing
	// eliminates staleness but reinjects the short model's per-batch
	// fluctuation; a persistent long model (false) is an independent
	// smoother.
	LongRebase bool
	// CECSeverityRatio gates coherent experience clustering: CEC replaces
	// the deployed models only when the shift distance exceeds this
	// multiple of the recent mean shift distance — i.e. when the models are
	// genuinely "no longer suitable". Moderate sudden shifts stay with the
	// ensemble, which adapts within a batch or two.
	CECSeverityRatio float64
	// Standardize wraps every granularity model with an online per-feature
	// z-score scaler, making the SGD families robust to large or shifting
	// feature offsets. Off by default to match the paper's raw-feature
	// setup.
	Standardize bool
	// Guard selects the input-sanitization policy applied to every batch's
	// features before they reach the detector or any model: guard.Reject
	// (the default) refuses batches carrying NaN/Inf values, guard.Clamp
	// and guard.Impute repair them, guard.Off restores the unchecked
	// pre-guard behaviour.
	Guard guard.Policy
	// Watchdog configures the divergence watchdog that rolls a model back
	// to a last-healthy snapshot on NaN/Inf weights or a loss explosion.
	Watchdog WatchdogConfig
	// KernelTier selects the inference-plane kernel tier: "f64" (or empty,
	// the bitwise-reproducible oracle default), "f32" (the float32 speed
	// tier), or "int8-infer" (f32 plus int8-quantized dense weights).
	// Training always runs the f64 oracle kernels regardless of tier, so
	// checkpoints and the prequential protocol are tier-independent.
	KernelTier string
	// SharedKnowledge, when non-nil, makes the learner use this
	// process-wide knowledge store instead of building its own, so
	// reoccurring distributions learned on one stream can be reused by
	// another (session layer, config-gated). Checkpoints then neither
	// export nor import the store: it outlives any single stream.
	SharedKnowledge *knowledge.Store
}

// WatchdogConfig tunes the divergence watchdog (see
// strategy.WatchdogConfig). Zero values select the built-in defaults, so a
// zero WatchdogConfig means "on, defaults".
type WatchdogConfig = strategy.WatchdogConfig

// DefaultConfig mirrors the paper's published defaults
// (ModelNum=2, α=1.96, KdgBuffer=20, ExpBuffer=10-batch experience).
func DefaultConfig() Config {
	return Config{
		ModelFamily:      "mlp",
		Hyper:            model.DefaultHyper(),
		ModelNum:         2,
		KdgBuffer:        20,
		ExpBufferPoints:  256,
		ExpBufferAge:     20,
		Alpha:            1.96,
		Beta:             0.35,
		Sigma:            0.5,
		Shift:            shift.DefaultConfig(),
		Window:           window.DefaultConfig(),
		Seed:             1,
		Precompute:       false,
		LongEpochs:       3,
		LongChunk:        128,
		LongEMA:          0,
		LongLRScale:      0.5,
		LongRebase:       false,
		CECSeverityRatio: 5.0,
		Guard:            guard.Reject,
	}
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	switch {
	case c.ModelFamily == "":
		return errors.New("core: ModelFamily required")
	case c.ModelNum < 2:
		return errors.New("core: ModelNum must be >= 2")
	case c.KdgBuffer < 1:
		return errors.New("core: KdgBuffer must be >= 1")
	case c.ExpBufferPoints < 1:
		return errors.New("core: ExpBufferPoints must be >= 1")
	case c.ExpBufferAge < 0:
		return errors.New("core: ExpBufferAge must be >= 0")
	case c.Alpha <= 0:
		return errors.New("core: Alpha must be > 0")
	case c.Beta < 0 || c.Beta > 1:
		return errors.New("core: Beta must be in [0, 1]")
	case c.Sigma <= 0:
		return errors.New("core: Sigma must be > 0")
	case c.LongEpochs < 1:
		return errors.New("core: LongEpochs must be >= 1")
	case c.LongChunk < 1:
		return errors.New("core: LongChunk must be >= 1")
	case c.LongEMA < 0 || c.LongEMA >= 1:
		return errors.New("core: LongEMA must be in [0, 1)")
	case c.LongLRScale <= 0 || c.LongLRScale > 1:
		return errors.New("core: LongLRScale must be in (0, 1]")
	case c.CECSeverityRatio < 0:
		return errors.New("core: CECSeverityRatio must be >= 0")
	case c.Standardize && c.Precompute:
		// The precomputer feeds raw batches straight into the network,
		// bypassing the scaler; combining them would train on inconsistent
		// views.
		return errors.New("core: Standardize and Precompute are mutually exclusive")
	}
	if _, err := linalg.ParseKernelTier(c.KernelTier); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := c.Watchdog.Validate(); err != nil {
		return err
	}
	if err := c.Hyper.Validate(); err != nil {
		return err
	}
	if err := c.Window.Validate(); err != nil {
		return err
	}
	sc := c.Shift
	sc.Alpha = c.Alpha
	return sc.Validate()
}

// Strategy identifies which mechanism produced a batch's predictions.
type Strategy int

const (
	// StrategyWarmup: the detector is still warming up; the short model
	// predicts alone.
	StrategyWarmup Strategy = iota
	// StrategyEnsemble: multi-time-granularity distance ensemble (slight).
	StrategyEnsemble
	// StrategyCEC: coherent experience clustering (sudden).
	StrategyCEC
	// StrategyKnowledge: historical knowledge reuse (reoccurring).
	StrategyKnowledge
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyWarmup:
		return "warmup"
	case StrategyEnsemble:
		return "multi-granularity"
	case StrategyCEC:
		return "coherent-experience-clustering"
	case StrategyKnowledge:
		return "knowledge-reuse"
	default:
		return "unknown"
	}
}
