package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"freewayml/internal/guard"
	"freewayml/internal/stream"
)

// inferGroups draws label-less row groups of varying sizes.
func inferGroups(rng *rand.Rand, sizes []int) [][][]float64 {
	groups := make([][][]float64, len(sizes))
	for g, n := range sizes {
		rows := make([][]float64, n)
		for i := range rows {
			c := rng.Intn(2)
			rows[i] = []float64{float64(c)*2 + rng.NormFloat64()*0.3, rng.NormFloat64() * 0.3, 0}
		}
		groups[g] = rows
	}
	return groups
}

// TestInferFusedBitwiseMatchesSequential is the fusion oracle at the core
// layer: one fused pass over many groups must produce bitwise-identical
// probabilities and predictions to inferring each group alone against the
// same snapshot. Checked both during warmup (short model only) and after
// the ensemble is live.
func TestInferFusedBitwiseMatchesSequential(t *testing.T) {
	for _, phase := range []struct {
		name    string
		batches int
	}{
		{"warmup", 1},
		{"ensemble", 12},
	} {
		t.Run(phase.name, func(t *testing.T) {
			l, err := NewLearner(testConfig(), 3, 2)
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			rng := rand.New(rand.NewSource(7))
			for s := 0; s < phase.batches; s++ {
				if _, err := l.Process(context.Background(), driftBatch(rng, s, 64, 0, 0, stream.KindNone)); err != nil {
					t.Fatal(err)
				}
			}

			groups := inferGroups(rng, []int{1, 7, 16, 3, 32})
			fused, err := l.InferFused(context.Background(), groups)
			if err != nil {
				t.Fatal(err)
			}
			if len(fused) != len(groups) {
				t.Fatalf("fused results = %d, want %d", len(fused), len(groups))
			}
			for g, rows := range groups {
				solo, err := l.Infer(context.Background(), rows)
				if err != nil {
					t.Fatalf("group %d solo: %v", g, err)
				}
				if !reflect.DeepEqual(solo.Pred, fused[g].Pred) {
					t.Errorf("group %d: predictions diverge:\nsolo:  %v\nfused: %v", g, solo.Pred, fused[g].Pred)
				}
				if !reflect.DeepEqual(solo.Proba, fused[g].Proba) {
					t.Errorf("group %d: probabilities diverge (not bitwise-identical)", g)
				}
				if solo.Strategy != fused[g].Strategy || solo.SnapshotBatch != fused[g].SnapshotBatch {
					t.Errorf("group %d: metadata diverges: solo=%+v fused=%+v", g, solo, fused[g])
				}
			}
		})
	}
}

// TestInferRejectsBadInput: the pure read path refuses what it cannot
// repair — non-finite features (guard-rejected), ragged rows, empty input.
func TestInferRejectsBadInput(t *testing.T) {
	l, err := NewLearner(testConfig(), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	if _, err := l.Infer(context.Background(), [][]float64{{1, math.NaN(), 0}}); !errors.Is(err, guard.ErrRejected) {
		t.Errorf("NaN feature: err = %v, want guard.ErrRejected", err)
	}
	if _, err := l.Infer(context.Background(), [][]float64{{1, math.Inf(1), 0}}); !errors.Is(err, guard.ErrRejected) {
		t.Errorf("Inf feature: err = %v, want guard.ErrRejected", err)
	}
	if _, err := l.Infer(context.Background(), [][]float64{{1, 2}}); err == nil {
		t.Error("ragged row accepted")
	}
	if _, err := l.Infer(context.Background(), nil); err == nil {
		t.Error("empty batch accepted")
	}
}

// TestInferDoesNotAdvanceTraining: inference is a pure read — no batch
// counter movement, no new snapshot publication, no metric samples on the
// training side.
func TestInferDoesNotAdvanceTraining(t *testing.T) {
	l, err := NewLearner(testConfig(), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rng := rand.New(rand.NewSource(8))
	for s := 0; s < 5; s++ {
		if _, err := l.Process(context.Background(), driftBatch(rng, s, 64, 0, 0, stream.KindNone)); err != nil {
			t.Fatal(err)
		}
	}
	before := l.ModelSnapshot()
	batches := l.Metrics().Batches()
	for i := 0; i < 10; i++ {
		if _, err := l.Infer(context.Background(), inferGroups(rng, []int{8})[0]); err != nil {
			t.Fatal(err)
		}
	}
	if l.Metrics().Batches() != batches {
		t.Errorf("Infer advanced the batch counter: %d -> %d", batches, l.Metrics().Batches())
	}
	after := l.ModelSnapshot()
	if after != before {
		t.Error("Infer republished the snapshot")
	}
}

// TestSnapshotAdvancesWithTraining: every Process publishes a fresh
// snapshot whose sequence and batch counters move forward, and a fresh
// learner already has a (warmup) snapshot so inference never waits for the
// first training batch.
func TestSnapshotAdvancesWithTraining(t *testing.T) {
	l, err := NewLearner(testConfig(), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	snap := l.ModelSnapshot()
	if snap == nil {
		t.Fatal("fresh learner has no snapshot")
	}
	if snap.Batch != 0 {
		t.Errorf("fresh snapshot batch = %d", snap.Batch)
	}
	res, err := l.Infer(context.Background(), [][]float64{{0.5, 0, 0}})
	if err != nil {
		t.Fatalf("infer before first batch: %v", err)
	}
	if res.Strategy != StrategyWarmup {
		t.Errorf("pre-training strategy = %v, want warmup", res.Strategy)
	}

	rng := rand.New(rand.NewSource(9))
	lastSeq := snap.Seq
	for s := 0; s < 6; s++ {
		if _, err := l.Process(context.Background(), driftBatch(rng, s, 64, 0, 0, stream.KindNone)); err != nil {
			t.Fatal(err)
		}
		snap = l.ModelSnapshot()
		if snap.Seq <= lastSeq {
			t.Fatalf("batch %d: snapshot seq did not advance (%d -> %d)", s, lastSeq, snap.Seq)
		}
		lastSeq = snap.Seq
		if snap.Batch != s+1 {
			t.Errorf("batch %d: snapshot batch = %d", s, snap.Batch)
		}
	}
}
