package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"freewayml/internal/stream"
)

func TestLearnerCloseIdempotent(t *testing.T) {
	l, err := NewLearner(testConfig(), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for s := 0; s < 3; s++ {
		if _, err := l.Process(context.Background(), driftBatch(rng, s, 64, 0, 0, stream.KindNone)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("first Close = %v", err)
	}
	if err := l.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
	if _, err := l.Process(context.Background(), driftBatch(rng, 3, 64, 0, 0, stream.KindNone)); !errors.Is(err, ErrClosed) {
		t.Errorf("Process after Close = %v, want ErrClosed", err)
	}
}
