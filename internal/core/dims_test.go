package core

import (
	"context"
	"fmt"
	"testing"

	"freewayml/internal/datasets"
)

func TestDiagProjectionDims(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	for _, ds := range []string{"Airlines", "Hyperplane", "SEA", "Electricity"} {
		for _, dims := range []int{2, 3, 4, 6} {
			src, _ := datasets.Build(ds, 128, 1)
			cfg := DefaultConfig()
			cfg.Shift.WarmupPoints = 256
			cfg.Shift.ProjectionDim = dims
			l, err := NewLearner(cfg, src.Dim(), src.Classes())
			if err != nil {
				t.Fatal(err)
			}
			for {
				b, ok := src.Next()
				if !ok {
					break
				}
				if _, err := l.Process(context.Background(), b); err != nil {
					t.Fatal(err)
				}
			}
			l.Close()
			fmt.Printf("%-12s dims=%d G_acc=%.4f SI=%.4f\n", ds, dims, l.Metrics().GAcc(), l.Metrics().SI())
		}
	}
}
