package core

import (
	"context"
	"math/rand"
	"testing"

	"freewayml/internal/datasets"
	"freewayml/internal/shift"
	"freewayml/internal/stream"
)

// testConfig returns a config tuned for small, fast test streams.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Shift.WarmupPoints = 128
	cfg.Shift.HistoryK = 10
	cfg.Shift.MinSeverityHistory = 4
	cfg.Shift.RecentExclusion = 3
	cfg.Window.MaxBatches = 4
	cfg.Window.MaxItems = 1 << 20
	cfg.Hyper.Hidden = 16
	return cfg
}

// driftBatch draws a labeled batch of two separable classes centered at c.
func driftBatch(rng *rand.Rand, seq, n int, cx, cy float64, kind stream.DriftKind) stream.Batch {
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		c := rng.Intn(2)
		x[i] = []float64{
			cx + float64(c)*2 + rng.NormFloat64()*0.3,
			cy + rng.NormFloat64()*0.3,
			rng.NormFloat64() * 0.3,
		}
		y[i] = c
	}
	return stream.Batch{Seq: seq, X: x, Y: y, Truth: kind}
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.ModelFamily = "" },
		func(c *Config) { c.ModelNum = 1 },
		func(c *Config) { c.KdgBuffer = 0 },
		func(c *Config) { c.ExpBufferPoints = 0 },
		func(c *Config) { c.ExpBufferAge = -1 },
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Beta = 2 },
		func(c *Config) { c.Sigma = 0 },
		func(c *Config) { c.Hyper.LR = 0 },
		func(c *Config) { c.Window.MaxBatches = 0 },
		func(c *Config) { c.Shift.HistoryK = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config passed", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if _, err := NewLearner(Config{}, 3, 2); err == nil {
		t.Error("NewLearner with zero config should error")
	}
}

func TestStrategyString(t *testing.T) {
	cases := map[Strategy]string{
		StrategyWarmup:    "warmup",
		StrategyEnsemble:  "multi-granularity",
		StrategyCEC:       "coherent-experience-clustering",
		StrategyKnowledge: "knowledge-reuse",
		Strategy(9):       "unknown",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
}

func TestWarmupThenEnsemble(t *testing.T) {
	l, err := NewLearner(testConfig(), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rng := rand.New(rand.NewSource(1))

	res, err := l.Process(context.Background(), driftBatch(rng, 0, 64, 0, 0, stream.KindNone))
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != StrategyWarmup {
		t.Fatalf("first batch strategy = %v", res.Strategy)
	}
	for s := 1; s < 10; s++ {
		res, err = l.Process(context.Background(), driftBatch(rng, s, 64, 0, 0, stream.KindNone))
		if err != nil {
			t.Fatal(err)
		}
	}
	if res.Strategy != StrategyEnsemble {
		t.Fatalf("stationary batch strategy = %v, want ensemble", res.Strategy)
	}
	if !res.Pattern.IsSlight() {
		t.Errorf("stationary pattern = %v", res.Pattern)
	}
	if res.Accuracy < 0 {
		t.Error("labeled batch should report accuracy")
	}
	if l.Metrics().Batches() == 0 {
		t.Error("metrics not recorded")
	}
}

func TestLearnsStationaryStream(t *testing.T) {
	l, err := NewLearner(testConfig(), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rng := rand.New(rand.NewSource(2))
	var last Result
	for s := 0; s < 40; s++ {
		res, err := l.Process(context.Background(), driftBatch(rng, s, 64, 0, 0, stream.KindNone))
		if err != nil {
			t.Fatal(err)
		}
		last = res
	}
	if last.Accuracy < 0.9 {
		t.Errorf("accuracy after 40 batches = %v", last.Accuracy)
	}
}

func TestSuddenShiftTriggersCEC(t *testing.T) {
	l, err := NewLearner(testConfig(), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rng := rand.New(rand.NewSource(3))
	for s := 0; s < 24; s++ {
		if _, err := l.Process(context.Background(), driftBatch(rng, s, 64, 0, 0, stream.KindNone)); err != nil {
			t.Fatal(err)
		}
	}
	// Streams are continuous: the batch preceding the jump already carries
	// a tail of the incoming distribution (the coherence hypothesis CEC
	// relies on). Blend one.
	pre := driftBatch(rng, 24, 64, 0, 0, stream.KindNone)
	tail := driftBatch(rng, 24, 64, 60, -40, stream.KindNone)
	for i := 44; i < 64; i++ {
		pre.X[i] = tail.X[i]
		pre.Y[i] = tail.Y[i]
	}
	if _, err := l.Process(context.Background(), pre); err != nil {
		t.Fatal(err)
	}
	res, err := l.Process(context.Background(), driftBatch(rng, 25, 64, 60, -40, stream.KindSudden))
	if err != nil {
		t.Fatal(err)
	}
	if res.Pattern != shift.PatternB {
		t.Fatalf("jump pattern = %v (M=%.1f)", res.Pattern, res.Observation.Severity)
	}
	if res.Strategy != StrategyCEC {
		t.Fatalf("jump strategy = %v, want CEC", res.Strategy)
	}
	if len(res.Pred) != 64 {
		t.Errorf("pred len = %d", len(res.Pred))
	}
}

func TestReoccurringShiftUsesKnowledge(t *testing.T) {
	cfg := testConfig()
	cfg.Window.MaxBatches = 3 // close windows quickly so knowledge exists
	l, err := NewLearner(cfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rng := rand.New(rand.NewSource(4))
	seq := 0
	// Home regime: long enough for several window closes → knowledge saved.
	for s := 0; s < 30; s++ {
		if _, err := l.Process(context.Background(), driftBatch(rng, seq, 64, 0, 0, stream.KindNone)); err != nil {
			t.Fatal(err)
		}
		seq++
	}
	if l.KnowledgeStore().Len() == 0 {
		t.Fatal("no knowledge preserved during home regime")
	}
	// Away regime.
	for s := 0; s < 12; s++ {
		if _, err := l.Process(context.Background(), driftBatch(rng, seq, 64, 50, 40, stream.KindSudden)); err != nil {
			t.Fatal(err)
		}
		seq++
	}
	// Return home: Pattern C with knowledge reuse.
	res, err := l.Process(context.Background(), driftBatch(rng, seq, 64, 0, 0, stream.KindReoccurring))
	if err != nil {
		t.Fatal(err)
	}
	if res.Pattern != shift.PatternC {
		t.Fatalf("return pattern = %v (M=%.1f dh=%.2f dt=%.2f)", res.Pattern,
			res.Observation.Severity, res.Observation.NearestHistory, res.Observation.Distance)
	}
	if res.Strategy != StrategyKnowledge {
		t.Fatalf("return strategy = %v, want knowledge", res.Strategy)
	}
	// The restored model was trained on the home regime: accuracy must be
	// far above chance immediately.
	if res.Accuracy < 0.8 {
		t.Errorf("knowledge-reuse accuracy = %v", res.Accuracy)
	}
}

func TestAsyncMatchesSyncEventually(t *testing.T) {
	for _, async := range []bool{false, true} {
		cfg := testConfig()
		cfg.Async = async
		cfg.Precompute = false
		l, err := NewLearner(cfg, 3, 2)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		var last Result
		for s := 0; s < 40; s++ {
			res, err := l.Process(context.Background(), driftBatch(rng, s, 64, 0, 0, stream.KindNone))
			if err != nil {
				t.Fatalf("async=%v: %v", async, err)
			}
			last = res
		}
		if err := l.Close(); err != nil {
			t.Fatalf("async=%v close: %v", async, err)
		}
		if last.Accuracy < 0.85 {
			t.Errorf("async=%v accuracy = %v", async, last.Accuracy)
		}
	}
}

func TestPrecomputeOnAndOffBothLearn(t *testing.T) {
	for _, pre := range []bool{false, true} {
		cfg := testConfig()
		cfg.Precompute = pre
		l, err := NewLearner(cfg, 3, 2)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(6))
		var last Result
		for s := 0; s < 40; s++ {
			res, err := l.Process(context.Background(), driftBatch(rng, s, 64, 0, 0, stream.KindNone))
			if err != nil {
				t.Fatalf("precompute=%v: %v", pre, err)
			}
			last = res
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		if last.Accuracy < 0.85 {
			t.Errorf("precompute=%v accuracy = %v", pre, last.Accuracy)
		}
	}
}

func TestModelNumThreeGranularities(t *testing.T) {
	cfg := testConfig()
	cfg.ModelNum = 3
	l, err := NewLearner(cfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	grans := l.Ensemble().Granularities()
	if len(grans) != 2 {
		t.Fatalf("grans = %d, want 2 fixed-frequency models", len(grans))
	}
	if grans[0].Every != 1 || grans[1].Every != 2 {
		t.Errorf("frequencies = %d, %d", grans[0].Every, grans[1].Every)
	}
	rng := rand.New(rand.NewSource(7))
	var last Result
	for s := 0; s < 40; s++ {
		res, err := l.Process(context.Background(), driftBatch(rng, s, 64, 0, 0, stream.KindNone))
		if err != nil {
			t.Fatal(err)
		}
		last = res
	}
	if last.Accuracy < 0.85 {
		t.Errorf("3-granularity accuracy = %v", last.Accuracy)
	}
}

func TestUnlabeledBatchesInferOnly(t *testing.T) {
	l, err := NewLearner(testConfig(), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rng := rand.New(rand.NewSource(8))
	for s := 0; s < 10; s++ {
		if _, err := l.Process(context.Background(), driftBatch(rng, s, 64, 0, 0, stream.KindNone)); err != nil {
			t.Fatal(err)
		}
	}
	trainedBatches := l.Metrics().Batches()
	b := driftBatch(rng, 10, 64, 0, 0, stream.KindNone)
	b.Y = nil
	res, err := l.Process(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy != -1 {
		t.Errorf("unlabeled accuracy = %v, want -1", res.Accuracy)
	}
	if l.Metrics().Batches() != trainedBatches {
		t.Error("unlabeled batch recorded in metrics")
	}
	if len(res.Pred) != 64 {
		t.Errorf("pred len = %d", len(res.Pred))
	}
}

func TestProcessRejectsInvalidBatch(t *testing.T) {
	l, err := NewLearner(testConfig(), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Process(context.Background(), stream.Batch{}); err == nil {
		t.Error("empty batch should error")
	}
}

func TestSubPatternRefinement(t *testing.T) {
	l, err := NewLearner(testConfig(), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rng := rand.New(rand.NewSource(9))
	var last Result
	for s := 0; s < 30; s++ {
		res, err := l.Process(context.Background(), driftBatch(rng, s, 64, 0, 0, stream.KindNone))
		if err != nil {
			t.Fatal(err)
		}
		last = res
	}
	if last.Pattern.IsSlight() {
		if last.SubPattern != shift.PatternA1 && last.SubPattern != shift.PatternA2 {
			t.Errorf("slight SubPattern = %v", last.SubPattern)
		}
	}
}

func TestFullPipelineOnDataset(t *testing.T) {
	// End-to-end smoke over a real generated dataset, all strategies armed.
	src, err := datasets.Build("Electricity", 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.SpillDir = t.TempDir()
	l, err := NewLearner(cfg, src.Dim(), src.Classes())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	strategies := map[Strategy]int{}
	for i := 0; i < 80; i++ {
		b, ok := src.Next()
		if !ok {
			break
		}
		res, err := l.Process(context.Background(), b)
		if err != nil {
			t.Fatal(err)
		}
		strategies[res.Strategy]++
	}
	if strategies[StrategyEnsemble] == 0 {
		t.Error("ensemble never used")
	}
	if l.Metrics().GAcc() < 0.5 {
		t.Errorf("G_acc = %v", l.Metrics().GAcc())
	}
}

func TestRateAdjusterIntegration(t *testing.T) {
	l, err := NewLearner(testConfig(), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	adj, err := stream.NewRateAdjuster(100, 1000, 50)
	if err != nil {
		t.Fatal(err)
	}
	l.SetRateAdjuster(adj)
	adj.Report(5000, 10) // overload → decay boost
	rng := rand.New(rand.NewSource(10))
	for s := 0; s < 20; s++ {
		if _, err := l.Process(context.Background(), driftBatch(rng, s, 64, 0, 0, stream.KindNone)); err != nil {
			t.Fatal(err)
		}
	}
}
