package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"freewayml/internal/guard"
	"freewayml/internal/linalg"
	"freewayml/internal/pca"
	"freewayml/internal/shift"
	"freewayml/internal/strategy"
)

// InferResult is one group's inference-plane answer: predictions plus the
// provenance of the snapshot that served them.
type InferResult struct {
	Pred  []int
	Proba [][]float64
	// Strategy is StrategyWarmup while the snapshot predates the detector's
	// PCA fit, StrategyEnsemble afterwards (the read path never runs the
	// reactive B/C mechanisms — they mutate detector and cluster state and
	// belong to the training plane).
	Strategy Strategy
	// SnapshotBatch/SnapshotSeq/SnapshotAge identify the published snapshot
	// that answered, and how stale it was at read time.
	SnapshotBatch int
	SnapshotSeq   uint64
	SnapshotAge   time.Duration
	// KnowledgeDist is the distance to the nearest stored concept centroid
	// (-1 when no index or during warm-up). Observability only.
	KnowledgeDist float64
}

// ModelSnapshot returns the currently published inference snapshot. Safe
// from any goroutine, lock-free, never nil after NewLearner.
func (l *Learner) ModelSnapshot() *strategy.Snapshot { return l.snap.Load() }

// publishSnapshot rebuilds and atomically publishes the inference view.
// Called on the training goroutine: at construction, after every
// successful Process, and after a checkpoint restore. An asynchronous
// long-model update that completes after publication is picked up by the
// next batch's publish — the inference plane is at most one training batch
// (plus one in-flight async update) behind.
func (l *Learner) publishSnapshot(pattern shift.Pattern) {
	var proj *pca.Model
	if l.det.Ready() {
		proj = l.det.PCA()
	}
	members := l.ens.PublishSnapshot()
	var quantMats int
	var scaleMin, scaleMax float64
	for _, m := range members {
		if m.Engine == nil {
			continue
		}
		quantMats += m.Engine.QuantMats()
		mn, mx := m.Engine.ScaleStats()
		if mn > 0 && (scaleMin == 0 || float64(mn) < scaleMin) {
			scaleMin = float64(mn)
		}
		if float64(mx) > scaleMax {
			scaleMax = float64(mx)
		}
	}
	l.snapSeq++
	l.snap.Store(&strategy.Snapshot{
		ComputeMu:     &l.inferMu,
		Members:       members,
		Sigma:         l.cfg.Sigma,
		Proj:          proj,
		Knowledge:     l.kdg,
		Experience:    l.exp.Len(),
		Pattern:       pattern,
		Batch:         l.batch,
		Seq:           l.snapSeq,
		PublishedAt:   time.Now(),
		Dim:           l.dim,
		Classes:       l.classes,
		Tier:          l.tier,
		QuantMats:     quantMats,
		QuantScaleMin: scaleMin,
		QuantScaleMax: scaleMax,
	})
	l.obs.SnapshotPublished(l.tier, l.ens.QuantizedBuilt())
}

// Infer predicts one group of label-less rows from the published snapshot.
// It never takes the learner's training-plane state: no detector, no
// window, no prequential bookkeeping — see InferFused.
func (l *Learner) Infer(ctx context.Context, x [][]float64) (InferResult, error) {
	rs, err := l.InferFused(ctx, [][][]float64{x})
	if err != nil {
		return InferResult{}, err
	}
	return rs[0], nil
}

// InferFused predicts many groups of rows in one fused pass against the
// published snapshot (one batched forward per ensemble member over all
// groups' rows). It is the lock-free read path: it loads the snapshot
// pointer atomically and touches no mutable learner state, so it runs
// concurrently with Process, checkpointing, and Close. A closed learner
// still answers from its last snapshot. Results are bitwise-identical to
// inferring each group separately (the GEMM kernels accumulate each output
// row independently of the total row count).
func (l *Learner) InferFused(ctx context.Context, groups [][][]float64) ([]InferResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	total := 0
	for _, g := range groups {
		if len(g) == 0 {
			return nil, errors.New("core: infer: empty batch")
		}
		for _, row := range g {
			if len(row) != l.dim {
				return nil, fmt.Errorf("core: infer: row has %d features, want %d", len(row), l.dim)
			}
			// The training plane's guard repairs or rejects non-finite
			// features statefully (running feature means, health counters);
			// the read path must stay pure, so it only rejects.
			for _, v := range row {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return nil, fmt.Errorf("core: infer: non-finite feature: %w", guard.ErrRejected)
				}
			}
		}
		total += len(g)
	}
	if total == 0 {
		return nil, errors.New("core: infer: no rows")
	}
	start := time.Now()
	snap := l.snap.Load()
	outs, err := snap.InferFused(groups)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	elapsed := time.Since(start)
	return l.inferResults(snap, outs, elapsed), nil
}

// InferFused32 is InferFused for natively narrow rows: float32 wire frames
// reach the snapshot's f32/int8 engines without an f64 up-convert. Members
// without a compiled engine (tier f64, or an engine-incompatible model) fall
// back to a single lazily widened copy inside the snapshot. Validation
// mirrors InferFused: non-finite features are rejected, never repaired —
// the read path stays pure.
func (l *Learner) InferFused32(ctx context.Context, groups [][][]float32) ([]InferResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	total := 0
	for _, g := range groups {
		if len(g) == 0 {
			return nil, errors.New("core: infer: empty batch")
		}
		for _, row := range g {
			if len(row) != l.dim {
				return nil, fmt.Errorf("core: infer: row has %d features, want %d", len(row), l.dim)
			}
			for _, v := range row {
				if v != v || math.IsInf(float64(v), 0) {
					return nil, fmt.Errorf("core: infer: non-finite feature: %w", guard.ErrRejected)
				}
			}
		}
		total += len(g)
	}
	if total == 0 {
		return nil, errors.New("core: infer: no rows")
	}
	start := time.Now()
	snap := l.snap.Load()
	outs, err := snap.InferFused32(groups)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	elapsed := time.Since(start)
	return l.inferResults(snap, outs, elapsed), nil
}

// inferResults maps snapshot outputs to InferResults and feeds the
// observability layer (per-group throughput, plus the dequantization
// histogram when the snapshot serves through the int8 tier).
func (l *Learner) inferResults(snap *strategy.Snapshot, outs []strategy.InferOutput, elapsed time.Duration) []InferResult {
	age := snap.Age()
	results := make([]InferResult, len(outs))
	for i, out := range outs {
		st := StrategyEnsemble
		if out.Warmup {
			st = StrategyWarmup
		}
		results[i] = InferResult{
			Pred:          out.Pred,
			Proba:         out.Proba,
			Strategy:      st,
			SnapshotBatch: snap.Batch,
			SnapshotSeq:   snap.Seq,
			SnapshotAge:   age,
			KnowledgeDist: out.KnowledgeDist,
		}
		l.obs.InferObserved(len(out.Pred), elapsed, age, snap.Batch, out.Warmup)
	}
	if snap.Tier == linalg.TierInt8 {
		l.obs.DequantObserved(elapsed)
	}
	return results
}
