package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"freewayml/internal/guard"
	"freewayml/internal/pca"
	"freewayml/internal/shift"
	"freewayml/internal/strategy"
)

// InferResult is one group's inference-plane answer: predictions plus the
// provenance of the snapshot that served them.
type InferResult struct {
	Pred  []int
	Proba [][]float64
	// Strategy is StrategyWarmup while the snapshot predates the detector's
	// PCA fit, StrategyEnsemble afterwards (the read path never runs the
	// reactive B/C mechanisms — they mutate detector and cluster state and
	// belong to the training plane).
	Strategy Strategy
	// SnapshotBatch/SnapshotSeq/SnapshotAge identify the published snapshot
	// that answered, and how stale it was at read time.
	SnapshotBatch int
	SnapshotSeq   uint64
	SnapshotAge   time.Duration
	// KnowledgeDist is the distance to the nearest stored concept centroid
	// (-1 when no index or during warm-up). Observability only.
	KnowledgeDist float64
}

// ModelSnapshot returns the currently published inference snapshot. Safe
// from any goroutine, lock-free, never nil after NewLearner.
func (l *Learner) ModelSnapshot() *strategy.Snapshot { return l.snap.Load() }

// publishSnapshot rebuilds and atomically publishes the inference view.
// Called on the training goroutine: at construction, after every
// successful Process, and after a checkpoint restore. An asynchronous
// long-model update that completes after publication is picked up by the
// next batch's publish — the inference plane is at most one training batch
// (plus one in-flight async update) behind.
func (l *Learner) publishSnapshot(pattern shift.Pattern) {
	var proj *pca.Model
	if l.det.Ready() {
		proj = l.det.PCA()
	}
	l.snapSeq++
	l.snap.Store(&strategy.Snapshot{
		ComputeMu:   &l.inferMu,
		Members:     l.ens.PublishSnapshot(),
		Sigma:       l.cfg.Sigma,
		Proj:        proj,
		Knowledge:   l.kdg,
		Experience:  l.exp.Len(),
		Pattern:     pattern,
		Batch:       l.batch,
		Seq:         l.snapSeq,
		PublishedAt: time.Now(),
		Dim:         l.dim,
		Classes:     l.classes,
	})
}

// Infer predicts one group of label-less rows from the published snapshot.
// It never takes the learner's training-plane state: no detector, no
// window, no prequential bookkeeping — see InferFused.
func (l *Learner) Infer(ctx context.Context, x [][]float64) (InferResult, error) {
	rs, err := l.InferFused(ctx, [][][]float64{x})
	if err != nil {
		return InferResult{}, err
	}
	return rs[0], nil
}

// InferFused predicts many groups of rows in one fused pass against the
// published snapshot (one batched forward per ensemble member over all
// groups' rows). It is the lock-free read path: it loads the snapshot
// pointer atomically and touches no mutable learner state, so it runs
// concurrently with Process, checkpointing, and Close. A closed learner
// still answers from its last snapshot. Results are bitwise-identical to
// inferring each group separately (the GEMM kernels accumulate each output
// row independently of the total row count).
func (l *Learner) InferFused(ctx context.Context, groups [][][]float64) ([]InferResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	total := 0
	for _, g := range groups {
		if len(g) == 0 {
			return nil, errors.New("core: infer: empty batch")
		}
		for _, row := range g {
			if len(row) != l.dim {
				return nil, fmt.Errorf("core: infer: row has %d features, want %d", len(row), l.dim)
			}
			// The training plane's guard repairs or rejects non-finite
			// features statefully (running feature means, health counters);
			// the read path must stay pure, so it only rejects.
			for _, v := range row {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return nil, fmt.Errorf("core: infer: non-finite feature: %w", guard.ErrRejected)
				}
			}
		}
		total += len(g)
	}
	if total == 0 {
		return nil, errors.New("core: infer: no rows")
	}
	start := time.Now()
	snap := l.snap.Load()
	outs, err := snap.InferFused(groups)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	elapsed := time.Since(start)
	age := snap.Age()
	results := make([]InferResult, len(groups))
	for i, out := range outs {
		st := StrategyEnsemble
		if out.Warmup {
			st = StrategyWarmup
		}
		results[i] = InferResult{
			Pred:          out.Pred,
			Proba:         out.Proba,
			Strategy:      st,
			SnapshotBatch: snap.Batch,
			SnapshotSeq:   snap.Seq,
			SnapshotAge:   age,
			KnowledgeDist: out.KnowledgeDist,
		}
		l.obs.InferObserved(len(out.Pred), elapsed, age, snap.Batch, out.Warmup)
	}
	return results, nil
}
