package core

import (
	"context"
	"math/rand"
	"testing"

	"freewayml/internal/datasets"
	"freewayml/internal/shift"
	"freewayml/internal/stream"
)

func TestLongEMAPathRuns(t *testing.T) {
	cfg := testConfig()
	cfg.LongEMA = 0.9
	l, err := NewLearner(cfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rng := rand.New(rand.NewSource(41))
	var last Result
	for s := 0; s < 40; s++ {
		res, err := l.Process(context.Background(), driftBatch(rng, s, 64, 0, 0, stream.KindNone))
		if err != nil {
			t.Fatal(err)
		}
		last = res
	}
	// EMA weight averaging degrades nonlinear models somewhat but the
	// learner must remain functional and above chance.
	if last.Accuracy < 0.7 {
		t.Errorf("EMA-path accuracy = %v", last.Accuracy)
	}
}

func TestLongRebasePathRuns(t *testing.T) {
	cfg := testConfig()
	cfg.LongRebase = true
	l, err := NewLearner(cfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rng := rand.New(rand.NewSource(42))
	var last Result
	for s := 0; s < 40; s++ {
		res, err := l.Process(context.Background(), driftBatch(rng, s, 64, 0, 0, stream.KindNone))
		if err != nil {
			t.Fatal(err)
		}
		last = res
	}
	if last.Accuracy < 0.85 {
		t.Errorf("rebase-path accuracy = %v", last.Accuracy)
	}
}

func TestDetectorAccessor(t *testing.T) {
	l, err := NewLearner(testConfig(), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Detector() == nil {
		t.Error("Detector() returned nil")
	}
}

func TestDebugAccessors(t *testing.T) {
	l, err := NewLearner(testConfig(), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	short, long := l.DebugModels()
	if short == nil || long == nil {
		t.Fatal("DebugModels returned nil")
	}
	rng := rand.New(rand.NewSource(43))
	var res Result
	for s := 0; s < 10; s++ {
		r, err := l.Process(context.Background(), driftBatch(rng, s, 64, 0, 0, stream.KindNone))
		if err != nil {
			t.Fatal(err)
		}
		res = r
	}
	ds, dl := l.DebugDistances(res)
	if ds < 0 || dl < 0 {
		t.Errorf("negative debug distances %v, %v", ds, dl)
	}
}

func TestCECFallsBackWithoutExperience(t *testing.T) {
	// A learner fed only unlabeled batches has no coherent experience; a
	// detected sudden shift must fall back to the ensemble, not fail.
	cfg := testConfig()
	l, err := NewLearner(cfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rng := rand.New(rand.NewSource(44))
	// Warm the detector with labeled batches but expire all experience by
	// feeding unlabeled ones afterward.
	for s := 0; s < 25; s++ {
		b := driftBatch(rng, s, 64, 0, 0, stream.KindNone)
		b.Y = nil
		if _, err := l.Process(context.Background(), b); err != nil {
			t.Fatal(err)
		}
	}
	jump := driftBatch(rng, 25, 64, 60, -40, stream.KindSudden)
	jump.Y = nil
	res, err := l.Process(context.Background(), jump)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy == StrategyCEC {
		t.Error("CEC fired without any labeled experience")
	}
	if len(res.Pred) != 64 {
		t.Errorf("pred len = %d", len(res.Pred))
	}
}

func TestModelNumValidationBounds(t *testing.T) {
	cfg := testConfig()
	cfg.LongEpochs = 0
	if err := cfg.Validate(); err == nil {
		t.Error("LongEpochs 0 should fail validation")
	}
	cfg = testConfig()
	cfg.LongChunk = 0
	if err := cfg.Validate(); err == nil {
		t.Error("LongChunk 0 should fail validation")
	}
	cfg = testConfig()
	cfg.LongEMA = 1
	if err := cfg.Validate(); err == nil {
		t.Error("LongEMA 1 should fail validation")
	}
	cfg = testConfig()
	cfg.LongLRScale = 0
	if err := cfg.Validate(); err == nil {
		t.Error("LongLRScale 0 should fail validation")
	}
	cfg = testConfig()
	cfg.CECSeverityRatio = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative CECSeverityRatio should fail validation")
	}
}

func TestPrecomputeWithAsyncRunsInline(t *testing.T) {
	// Async + Precompute must serialize the close inline (no goroutine), so
	// Close always returns cleanly with no pending error.
	cfg := testConfig()
	cfg.Async = true
	cfg.Precompute = true
	l, err := NewLearner(cfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(45))
	for s := 0; s < 30; s++ {
		if _, err := l.Process(context.Background(), driftBatch(rng, s, 64, 0, 0, stream.KindNone)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestNaiveBayesFamilyEndToEnd(t *testing.T) {
	cfg := testConfig()
	cfg.ModelFamily = "nb"
	l, err := NewLearner(cfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rng := rand.New(rand.NewSource(51))
	var last Result
	for s := 0; s < 40; s++ {
		res, err := l.Process(context.Background(), driftBatch(rng, s, 64, 0, 0, stream.KindNone))
		if err != nil {
			t.Fatal(err)
		}
		last = res
	}
	if last.Accuracy < 0.9 {
		t.Errorf("NB-family accuracy = %v", last.Accuracy)
	}
}

func TestPrecomputeRejectsGradientFreeFamily(t *testing.T) {
	cfg := testConfig()
	cfg.ModelFamily = "nb"
	cfg.Precompute = true
	if _, err := NewLearner(cfg, 3, 2); err == nil {
		t.Error("Precompute with NB should error")
	}
}

func TestStandardizedLearnerHandlesOffsetRegimes(t *testing.T) {
	cfg := testConfig()
	cfg.Standardize = true
	l, err := NewLearner(cfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rng := rand.New(rand.NewSource(71))
	// A regime far from the origin, unlearnable without scaling.
	var last Result
	for s := 0; s < 40; s++ {
		res, err := l.Process(context.Background(), driftBatch(rng, s, 64, 40, 40, stream.KindNone))
		if err != nil {
			t.Fatal(err)
		}
		last = res
	}
	if last.Accuracy < 0.9 {
		t.Errorf("standardized learner accuracy at offset 40 = %v", last.Accuracy)
	}
}

func TestStandardizePrecomputeMutuallyExclusive(t *testing.T) {
	cfg := testConfig()
	cfg.Standardize = true
	cfg.Precompute = true
	if err := cfg.Validate(); err == nil {
		t.Error("Standardize+Precompute should fail validation")
	}
}

// TestOneStrategyPerBatchContract drives a full drifting dataset and checks
// the Fig. 8 contract: every batch reports exactly one strategy, and that
// strategy is consistent with the detected pattern (warmup → warmup
// strategy; slight → ensemble; severe → CEC, knowledge, or the documented
// ensemble fallback).
func TestOneStrategyPerBatchContract(t *testing.T) {
	src, err := datasets.Build("Hyperplane", 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	l, err := NewLearner(cfg, src.Dim(), src.Classes())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for {
		b, ok := src.Next()
		if !ok {
			break
		}
		res, err := l.Process(context.Background(), b)
		if err != nil {
			t.Fatal(err)
		}
		switch res.Pattern {
		case shift.PatternWarmup:
			if res.Strategy != StrategyWarmup {
				t.Fatalf("warmup batch used %v", res.Strategy)
			}
		case shift.PatternA, shift.PatternA1, shift.PatternA2:
			if res.Strategy != StrategyEnsemble {
				t.Fatalf("slight batch used %v", res.Strategy)
			}
		case shift.PatternB:
			if res.Strategy != StrategyCEC && res.Strategy != StrategyEnsemble {
				t.Fatalf("sudden batch used %v", res.Strategy)
			}
		case shift.PatternC:
			if res.Strategy != StrategyKnowledge && res.Strategy != StrategyEnsemble {
				t.Fatalf("reoccurring batch used %v", res.Strategy)
			}
		}
		if len(res.Pred) != len(b.X) {
			t.Fatalf("predictions %d for %d samples", len(res.Pred), len(b.X))
		}
	}
}
