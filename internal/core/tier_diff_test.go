package core

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"freewayml/internal/linalg"
	"freewayml/internal/stream"
)

// tierLearner builds a learner whose only deviation from testConfig is the
// inference kernel tier. Config.Seed drives every stochastic component, so
// two learners with the same config share bitwise-identical training.
func tierLearner(t *testing.T, tier string) *Learner {
	t.Helper()
	cfg := testConfig()
	cfg.KernelTier = tier
	l, err := NewLearner(cfg, 3, 2)
	if err != nil {
		t.Fatalf("tier %q: %v", tier, err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// TestKernelTierTrainingBitwiseInvariant is the oracle-isolation contract:
// speed tiers govern the inference plane only, so the training plane —
// predictions, accuracy, detected patterns, dispatched strategies — must be
// bitwise identical whether the learner runs f64, f32, or int8-infer.
func TestKernelTierTrainingBitwiseInvariant(t *testing.T) {
	learners := map[string]*Learner{
		"f64":        tierLearner(t, ""),
		"f32":        tierLearner(t, "f32"),
		"int8-infer": tierLearner(t, "int8-infer"),
	}

	// Identical stream per learner: regenerate from the same seed so slice
	// reuse inside Process cannot couple the runs.
	batches := func() []stream.Batch {
		rng := rand.New(rand.NewSource(21))
		out := make([]stream.Batch, 14)
		for s := range out {
			cx := 0.0
			if s >= 8 {
				cx = 3.5 // sudden shift mid-stream exercises re-dispatch
			}
			out[s] = driftBatch(rng, s, 64, cx, 0, stream.KindNone)
		}
		return out
	}

	results := map[string][]Result{}
	for name, l := range learners {
		for _, b := range batches() {
			res, err := l.Process(context.Background(), b)
			if err != nil {
				t.Fatalf("tier %s batch %d: %v", name, b.Seq, err)
			}
			results[name] = append(results[name], res)
		}
	}

	ref := results["f64"]
	// The Table I metrics are derived from the training plane, so G_acc
	// (Eq. 15) and SI (Eq. 16) must be bitwise-equal across tiers — zero
	// drift, strictly inside any documented ε.
	refG, refSI := learners["f64"].Metrics().GAcc(), learners["f64"].Metrics().SI()
	for _, name := range []string{"f32", "int8-infer"} {
		m := learners[name].Metrics()
		if g, si := m.GAcc(), m.SI(); g != refG || si != refSI {
			t.Fatalf("tier %s: G_acc/SI %v/%v != f64 oracle %v/%v", name, g, si, refG, refSI)
		}
	}
	for _, name := range []string{"f32", "int8-infer"} {
		got := results[name]
		for i := range ref {
			if !reflect.DeepEqual(ref[i].Pred, got[i].Pred) {
				t.Fatalf("tier %s batch %d: training predictions diverge from f64", name, i)
			}
			if ref[i].Accuracy != got[i].Accuracy {
				t.Fatalf("tier %s batch %d: accuracy %v != f64 %v", name, i, got[i].Accuracy, ref[i].Accuracy)
			}
			if ref[i].Pattern != got[i].Pattern || ref[i].Strategy != got[i].Strategy {
				t.Fatalf("tier %s batch %d: pattern/strategy diverge: %v/%v vs %v/%v",
					name, i, got[i].Pattern, got[i].Strategy, ref[i].Pattern, ref[i].Strategy)
			}
			if !reflect.DeepEqual(ref[i].Proba, got[i].Proba) {
				t.Fatalf("tier %s batch %d: training probabilities not bitwise-identical", name, i)
			}
		}
	}

	// Inference plane: the tiers approximate the oracle within documented ε.
	rng := rand.New(rand.NewSource(22))
	groups := inferGroups(rng, []int{5, 17, 2})
	fused := map[string][]InferResult{}
	for name, l := range learners {
		out, err := l.InferFused(context.Background(), groups)
		if err != nil {
			t.Fatalf("tier %s InferFused: %v", name, err)
		}
		fused[name] = out
	}
	for name, eps := range map[string]float64{"f32": 1e-4, "int8-infer": 0.05} {
		for g := range groups {
			want, got := fused["f64"][g].Proba, fused[name][g].Proba
			if len(got) != len(want) {
				t.Fatalf("tier %s group %d: %d rows, want %d", name, g, len(got), len(want))
			}
			for i := range want {
				for j := range want[i] {
					if d := math.Abs(got[i][j] - want[i][j]); d > eps {
						t.Fatalf("tier %s group %d row %d class %d: |%g - %g| = %g > %g",
							name, g, i, j, got[i][j], want[i][j], d, eps)
					}
				}
			}
		}
	}

	// Snapshot metadata carries the tier and, under int8, the quant stats.
	if snap := learners["f64"].ModelSnapshot(); snap.Tier != linalg.TierF64 || snap.QuantMats != 0 {
		t.Fatalf("f64 snapshot tier %v quantMats %d", snap.Tier, snap.QuantMats)
	}
	if snap := learners["f32"].ModelSnapshot(); snap.Tier != linalg.TierF32 {
		t.Fatalf("f32 snapshot tier %v", snap.Tier)
	}
	snap := learners["int8-infer"].ModelSnapshot()
	if snap.Tier != linalg.TierInt8 || snap.QuantMats == 0 {
		t.Fatalf("int8 snapshot tier %v quantMats %d", snap.Tier, snap.QuantMats)
	}
	if snap.QuantScaleMin <= 0 || snap.QuantScaleMax < snap.QuantScaleMin {
		t.Fatalf("int8 snapshot scale stats min %g max %g", snap.QuantScaleMin, snap.QuantScaleMax)
	}
}

// TestInferFused32MatchesWidened pins the native-f32 entry at the core
// layer: feeding exactly-representable values through InferFused32 must
// produce the same predictions and ε-close probabilities as widening the
// same values to f64 first.
func TestInferFused32MatchesWidened(t *testing.T) {
	l := tierLearner(t, "f32")
	rng := rand.New(rand.NewSource(5))
	for s := 0; s < 6; s++ {
		if _, err := l.Process(context.Background(), driftBatch(rng, s, 64, 0, 0, stream.KindNone)); err != nil {
			t.Fatal(err)
		}
	}

	sizes := []int{3, 11, 1}
	g32 := make([][][]float32, len(sizes))
	g64 := make([][][]float64, len(sizes))
	for g, n := range sizes {
		g32[g] = make([][]float32, n)
		g64[g] = make([][]float64, n)
		for i := 0; i < n; i++ {
			r32 := make([]float32, 3)
			r64 := make([]float64, 3)
			for j := range r32 {
				v := float32(rng.NormFloat64())
				r32[j] = v
				r64[j] = float64(v)
			}
			g32[g][i] = r32
			g64[g][i] = r64
		}
	}

	a, err := l.InferFused32(context.Background(), g32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.InferFused(context.Background(), g64)
	if err != nil {
		t.Fatal(err)
	}
	for g := range sizes {
		if !reflect.DeepEqual(a[g].Pred, b[g].Pred) {
			t.Fatalf("group %d: native-f32 predictions diverge from widened", g)
		}
		for i := range a[g].Proba {
			for j := range a[g].Proba[i] {
				if d := math.Abs(a[g].Proba[i][j] - b[g].Proba[i][j]); d > 1e-6 {
					t.Fatalf("group %d row %d class %d: |diff| %g", g, i, j, d)
				}
			}
		}
	}

	// Non-finite f32 features take the guardrail, not the kernels.
	bad := [][][]float32{{{1, float32(math.NaN()), 0}}}
	if _, err := l.InferFused32(context.Background(), bad); err == nil {
		t.Fatal("NaN f32 feature accepted")
	}
}
