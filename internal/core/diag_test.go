package core

import (
	"context"
	"testing"

	"freewayml/internal/datasets"
	"freewayml/internal/metrics"
)

// TestEnsembleDoesNotDragBelowShortModel is a white-box regression test for
// the fusion: over the ensemble-strategy batches of a drifting stream, the
// fused accuracy must not fall meaningfully below the short model alone —
// the long member's weight must vanish whenever it cannot help.
func TestEnsembleDoesNotDragBelowShortModel(t *testing.T) {
	for _, ds := range []string{"NSL-KDD", "SEA"} {
		src, err := datasets.Build(ds, 128, 1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Shift.WarmupPoints = 256
		l, err := NewLearner(cfg, src.Dim(), src.Classes())
		if err != nil {
			t.Fatal(err)
		}
		var sAcc, fAcc float64
		n := 0
		for {
			b, ok := src.Next()
			if !ok {
				break
			}
			short, _ := l.DebugModels()
			sp := short.Predict(b.X)
			res, err := l.Process(context.Background(), b)
			if err != nil {
				t.Fatal(err)
			}
			if res.Strategy == StrategyEnsemble {
				sa, _ := metrics.Accuracy(sp, b.Y)
				sAcc += sa
				fAcc += res.Accuracy
				n++
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatalf("%s: no ensemble batches", ds)
		}
		shortMean := sAcc / float64(n)
		fusedMean := fAcc / float64(n)
		if fusedMean < shortMean-0.01 {
			t.Errorf("%s: fused %.4f drags below short %.4f", ds, fusedMean, shortMean)
		}
	}
}
