package core

import (
	"bytes"
	"context"
	"math/rand"
	"strings"
	"testing"

	"freewayml/internal/stream"
)

func TestCheckpointRoundtripPreservesBehaviour(t *testing.T) {
	cfg := testConfig()
	cfg.Window.MaxBatches = 3
	l, err := NewLearner(cfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(61))
	// Drive through multiple regimes so the knowledge store, detector
	// history, and experience buffer all carry state.
	seq := 0
	for s := 0; s < 30; s++ {
		if _, err := l.Process(context.Background(), driftBatch(rng, seq, 64, 0, 0, stream.KindNone)); err != nil {
			t.Fatal(err)
		}
		seq++
	}
	for s := 0; s < 10; s++ {
		if _, err := l.Process(context.Background(), driftBatch(rng, seq, 64, 8, 8, stream.KindSudden)); err != nil {
			t.Fatal(err)
		}
		seq++
	}
	if l.KnowledgeStore().Len() == 0 {
		t.Fatal("no knowledge before checkpoint")
	}

	var buf bytes.Buffer
	if err := l.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	restored, err := NewLearner(cfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if err := restored.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	// The restored learner must predict identically on a probe batch: same
	// short/long weights, same detector projection, same pattern verdict.
	probe := driftBatch(rng, seq, 64, 8, 8, stream.KindNone)
	probe.Y = nil
	// Rebuild the original learner from the same checkpoint so both sides
	// share identical state (the original kept evolving its detector above).
	original, err := NewLearner(cfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer original.Close()
	if err := original.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	r1, err := original.Process(context.Background(), probe)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := restored.Process(context.Background(), probe)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Pattern != r2.Pattern || r1.Strategy != r2.Strategy {
		t.Errorf("diverged: %v/%v vs %v/%v", r1.Pattern, r1.Strategy, r2.Pattern, r2.Strategy)
	}
	for i := range r1.Pred {
		if r1.Pred[i] != r2.Pred[i] {
			t.Fatal("restored learner predicts differently")
		}
	}
	if restored.KnowledgeStore().Len() == 0 {
		t.Error("knowledge store lost in roundtrip")
	}
	// The restored learner keeps learning: back at the home regime its
	// restored weights (trained there for 30 batches pre-checkpoint) must
	// perform immediately and keep improving.
	var last Result
	for s := 0; s < 15; s++ {
		res, err := restored.Process(context.Background(), driftBatch(rng, seq, 64, 0, 0, stream.KindNone))
		if err != nil {
			t.Fatal(err)
		}
		seq++
		last = res
	}
	if last.Accuracy < 0.85 {
		t.Errorf("post-restore accuracy = %v", last.Accuracy)
	}
}

func TestLoadCheckpointRejectsMismatches(t *testing.T) {
	cfg := testConfig()
	l, err := NewLearner(cfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var buf bytes.Buffer
	if err := l.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	// Wrong shape.
	wrongShape, err := NewLearner(cfg, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer wrongShape.Close()
	if err := wrongShape.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("wrong shape should be rejected")
	}

	// Wrong family.
	lrCfg := cfg
	lrCfg.ModelFamily = "lr"
	wrongFamily, err := NewLearner(lrCfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer wrongFamily.Close()
	if err := wrongFamily.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("wrong family should be rejected")
	}

	// Wrong ModelNum.
	threeCfg := cfg
	threeCfg.ModelNum = 3
	wrongNum, err := NewLearner(threeCfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer wrongNum.Close()
	if err := wrongNum.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("wrong ModelNum should be rejected")
	}

	// Garbage bytes.
	if err := l.LoadCheckpoint(strings.NewReader("not a checkpoint")); err == nil {
		t.Error("garbage should be rejected")
	}
}

func TestCheckpointDuringWarmupRoundtrips(t *testing.T) {
	cfg := testConfig()
	l, err := NewLearner(cfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rng := rand.New(rand.NewSource(62))
	// One batch: detector still warming up (WarmupPoints=128, batch=64).
	if _, err := l.Process(context.Background(), driftBatch(rng, 0, 64, 0, 0, stream.KindNone)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := l.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := NewLearner(cfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if err := restored.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// The restored learner re-warms and continues.
	for s := 1; s < 10; s++ {
		if _, err := restored.Process(context.Background(), driftBatch(rng, s, 64, 0, 0, stream.KindNone)); err != nil {
			t.Fatal(err)
		}
	}
}
