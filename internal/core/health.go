package core

import (
	"errors"
	"fmt"
)

// noteAsyncErr records a background-update error for the next Process call
// to surface. The queue is bounded; overflow is dropped and counted.
func (l *Learner) noteAsyncErr(err error) {
	l.asyncMu.Lock()
	if len(l.asyncErrs) < maxPendingAsyncErrs {
		l.asyncErrs = append(l.asyncErrs, err)
		l.asyncMu.Unlock()
		return
	}
	l.asyncMu.Unlock()
	l.health.mu.Lock()
	l.health.asyncDropped++
	l.health.mu.Unlock()
}

// takeAsyncErrs drains and joins every pending background error (nil when
// none are pending).
func (l *Learner) takeAsyncErrs() error {
	l.asyncMu.Lock()
	defer l.asyncMu.Unlock()
	if len(l.asyncErrs) == 0 {
		return nil
	}
	err := errors.Join(l.asyncErrs...)
	l.asyncErrs = nil
	return fmt.Errorf("core: async long-model update failed: %w", err)
}

// recordRecovery folds one watchdog event into the health counters and the
// bounded event log. Safe from the async update goroutine.
func (l *Learner) recordRecovery(ev RecoveryEvent) {
	l.obs.recordDivergence(ev.RolledBack)
	l.health.mu.Lock()
	defer l.health.mu.Unlock()
	l.health.divergences++
	if ev.RolledBack {
		l.health.recoveries++
	}
	if len(l.health.events) == maxRecoveryEvents {
		copy(l.health.events, l.health.events[1:])
		l.health.events = l.health.events[:maxRecoveryEvents-1]
	}
	l.health.events = append(l.health.events, ev)
}

// Stats are the learner's fault-tolerance counters: what the guard
// sanitized or refused, what the watchdog detected and rolled back, and
// what the persistence layer degraded around.
type Stats struct {
	// SanitizedValues counts non-finite feature values repaired by the
	// guard (clamp/impute policies); SanitizedBatches the batches affected.
	SanitizedValues  int
	SanitizedBatches int
	// RejectedBatches counts batches refused by the reject policy.
	RejectedBatches int
	// Divergences counts watchdog detections (NaN/Inf weights or loss
	// explosions); Recoveries counts the rollbacks that followed.
	Divergences int
	Recoveries  int
	// AsyncErrorsDropped counts background-update errors lost to the
	// bounded pending queue.
	AsyncErrorsDropped int
	// KnowledgeSkipped counts corrupt knowledge entries skipped during a
	// degraded checkpoint restore.
	KnowledgeSkipped int
	// SpillFailures and SpillLoadFailures surface the knowledge store's
	// filesystem fault counters (failed spill writes / unreadable spill
	// reads).
	SpillFailures     int
	SpillLoadFailures int
}

// Stats returns the learner's fault-tolerance counters.
func (l *Learner) Stats() Stats {
	l.health.mu.Lock()
	s := Stats{
		SanitizedValues:    l.health.sanitizedValues,
		SanitizedBatches:   l.health.sanitizedBatches,
		RejectedBatches:    l.health.rejectedBatches,
		Divergences:        l.health.divergences,
		Recoveries:         l.health.recoveries,
		AsyncErrorsDropped: l.health.asyncDropped,
		KnowledgeSkipped:   l.health.knowledgeSkipped,
	}
	l.health.mu.Unlock()
	s.SpillFailures = l.kdg.SpillFailures()
	s.SpillLoadFailures = l.kdg.LoadFailures()
	return s
}

// RecoveryEvents returns a copy of the retained watchdog event log (the
// most recent maxRecoveryEvents divergences).
func (l *Learner) RecoveryEvents() []RecoveryEvent {
	l.health.mu.Lock()
	defer l.health.mu.Unlock()
	return append([]RecoveryEvent(nil), l.health.events...)
}
