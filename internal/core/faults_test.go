package core

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"math"
	"math/rand"
	"testing"

	"freewayml/internal/faults"
	"freewayml/internal/guard"
	"freewayml/internal/stream"
)

// warmLearner builds a learner and feeds it enough clean batches to leave
// warmup and reach solid accuracy.
func warmLearner(t *testing.T, cfg Config, batches int, seed int64) (*Learner, *rand.Rand, int) {
	t.Helper()
	l, err := NewLearner(cfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	seq := 0
	for ; seq < batches; seq++ {
		if _, err := l.Process(context.Background(), driftBatch(rng, seq, 64, 0, 0, stream.KindNone)); err != nil {
			t.Fatal(err)
		}
	}
	return l, rng, seq
}

func TestRejectPolicyRefusesDirtyBatchAndKeepsState(t *testing.T) {
	cfg := testConfig()
	cfg.Guard = guard.Reject
	l, rng, seq := warmLearner(t, cfg, 20, 11)
	defer l.Close()

	short, _ := l.DebugModels()
	probe := driftBatch(rng, seq, 32, 0, 0, stream.KindNone)
	before := short.Predict(probe.X)

	dirty := driftBatch(rng, seq, 64, 0, 0, stream.KindNone)
	faults.InjectNaN(dirty.X, 7)
	faults.InjectInf(dirty.X, 11, 1)
	if _, err := l.Process(context.Background(), dirty); !errors.Is(err, guard.ErrRejected) {
		t.Fatalf("dirty batch err = %v, want ErrRejected", err)
	}
	st := l.Stats()
	if st.RejectedBatches != 1 {
		t.Errorf("RejectedBatches = %d, want 1", st.RejectedBatches)
	}
	// The refused batch must not have touched the models.
	after := short.Predict(probe.X)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("rejected batch changed model state")
		}
	}
	// The stream continues normally afterwards.
	res, err := l.Process(context.Background(), driftBatch(rng, seq+1, 64, 0, 0, stream.KindNone))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.85 {
		t.Errorf("post-reject accuracy = %v", res.Accuracy)
	}
}

func TestRepairPoliciesSurviveDirtyBatches(t *testing.T) {
	for _, policy := range []guard.Policy{guard.Clamp, guard.Impute} {
		t.Run(policy.String(), func(t *testing.T) {
			cfg := testConfig()
			cfg.Guard = policy
			l, rng, seq := warmLearner(t, cfg, 20, 13)
			defer l.Close()

			// A burst of dirty batches: every 5th value NaN, every 9th Inf.
			for i := 0; i < 4; i++ {
				dirty := driftBatch(rng, seq, 64, 0, 0, stream.KindNone)
				faults.InjectNaN(dirty.X, 5)
				faults.InjectInf(dirty.X, 9, -1)
				if _, err := l.Process(context.Background(), dirty); err != nil {
					t.Fatalf("dirty batch %d: %v", i, err)
				}
				seq++
			}
			st := l.Stats()
			if st.SanitizedBatches != 4 || st.SanitizedValues == 0 {
				t.Errorf("sanitize counters = %+v", st)
			}
			// Clean traffic recovers full accuracy (the watchdog rolls back
			// any update the repaired-but-extreme values still destabilized).
			var last Result
			for i := 0; i < 10; i++ {
				res, err := l.Process(context.Background(), driftBatch(rng, seq, 64, 0, 0, stream.KindNone))
				if err != nil {
					t.Fatal(err)
				}
				seq++
				last = res
			}
			if last.Accuracy < 0.85 {
				t.Errorf("post-fault accuracy = %v (stats %+v)", last.Accuracy, l.Stats())
			}
		})
	}
}

func TestWatchdogRollsBackCorruptShortModel(t *testing.T) {
	cfg := testConfig()
	l, rng, seq := warmLearner(t, cfg, 20, 17)
	defer l.Close()

	// Corrupt every short-model weight — the canonical post-divergence
	// state a NaN that slipped through would leave behind.
	short, _ := l.DebugModels()
	for _, p := range short.Net().Params() {
		for j := range p.W {
			p.W[j] = math.NaN()
		}
	}
	if _, err := l.Process(context.Background(), driftBatch(rng, seq, 64, 0, 0, stream.KindNone)); err != nil {
		t.Fatalf("batch on corrupt model: %v", err)
	}
	seq++

	st := l.Stats()
	if st.Divergences < 1 || st.Recoveries < 1 {
		t.Fatalf("watchdog missed the divergence: %+v", st)
	}
	events := l.RecoveryEvents()
	if len(events) == 0 || events[0].Model != "gran0" || !events[0].RolledBack {
		t.Errorf("events = %+v", events)
	}
	if !short.Net().ParamsFinite() {
		t.Fatal("weights still non-finite after rollback")
	}
	// Accuracy recovers immediately: the restored snapshot was trained on
	// this very regime.
	res, err := l.Process(context.Background(), driftBatch(rng, seq, 64, 0, 0, stream.KindNone))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.85 {
		t.Errorf("post-rollback accuracy = %v", res.Accuracy)
	}
}

func TestWatchdogDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.Watchdog.Disabled = true
	l, rng, seq := warmLearner(t, cfg, 10, 19)
	defer l.Close()
	short, _ := l.DebugModels()
	for _, p := range short.Net().Params() {
		for j := range p.W {
			p.W[j] = math.NaN()
		}
	}
	if _, err := l.Process(context.Background(), driftBatch(rng, seq, 64, 0, 0, stream.KindNone)); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Divergences != 0 {
		t.Errorf("disabled watchdog recorded %+v", st)
	}
}

func TestRaggedBatchRejectedCleanly(t *testing.T) {
	cfg := testConfig()
	l, rng, seq := warmLearner(t, cfg, 5, 23)
	defer l.Close()
	b := driftBatch(rng, seq, 16, 0, 0, stream.KindNone)
	b.X = faults.Ragged(b.X)
	if _, err := l.Process(context.Background(), b); err == nil {
		t.Fatal("ragged batch accepted")
	}
	// Learner still serves.
	if _, err := l.Process(context.Background(), driftBatch(rng, seq+1, 16, 0, 0, stream.KindNone)); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncErrorsSurfaceOnNextProcess(t *testing.T) {
	cfg := testConfig()
	l, rng, seq := warmLearner(t, cfg, 3, 29)
	defer l.Close()

	injected := errors.New("boom")
	l.noteAsyncErr(injected)
	if _, err := l.Process(context.Background(), driftBatch(rng, seq, 16, 0, 0, stream.KindNone)); !errors.Is(err, injected) {
		t.Fatalf("pending async error not surfaced: %v", err)
	}
	// Surfaced errors are drained: the next call proceeds.
	if _, err := l.Process(context.Background(), driftBatch(rng, seq+1, 16, 0, 0, stream.KindNone)); err != nil {
		t.Fatal(err)
	}
	// Overflow beyond the bounded queue is counted, not lost silently.
	for i := 0; i < maxPendingAsyncErrs+5; i++ {
		l.noteAsyncErr(errors.New("flood"))
	}
	if st := l.Stats(); st.AsyncErrorsDropped != 5 {
		t.Errorf("AsyncErrorsDropped = %d, want 5", st.AsyncErrorsDropped)
	}
	if err := l.takeAsyncErrs(); err == nil {
		t.Error("queued errors lost")
	}
}

// corruptions builds the checkpoint-corruption cases of the fault model:
// a crash mid-write (truncation), bit rot (one flipped payload bit), and a
// foreign/old format (wrong envelope version).
func corruptions(data []byte) map[string][]byte {
	wrongVersion := append([]byte(nil), data...)
	wrongVersion[4] ^= 0xFF // envelope version field
	return map[string][]byte{
		"truncated":     faults.Truncated(data, 0.6),
		"bit-flipped":   faults.FlipBit(data, len(data)*4), // mid-payload bit
		"wrong-version": wrongVersion,
		"empty":         {},
		"not-a-ckpt":    []byte("definitely not a checkpoint file"),
	}
}

func TestCorruptCheckpointLeavesLearnerUntouched(t *testing.T) {
	cfg := testConfig()
	l, rng, seq := warmLearner(t, cfg, 20, 31)
	defer l.Close()
	var buf bytes.Buffer
	if err := l.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	short, long := l.DebugModels()
	probe := driftBatch(rng, seq, 32, 0, 0, stream.KindNone)
	beforeShort := short.Predict(probe.X)
	beforeLong := long.Predict(probe.X)

	for name, data := range corruptions(buf.Bytes()) {
		t.Run(name, func(t *testing.T) {
			err := l.LoadCheckpoint(bytes.NewReader(data))
			if err == nil {
				t.Fatal("corrupt checkpoint accepted")
			}
			if name != "wrong-version" && !errors.Is(err, ErrCheckpointCorrupt) {
				t.Errorf("err = %v, want ErrCheckpointCorrupt", err)
			}
			afterShort := short.Predict(probe.X)
			afterLong := long.Predict(probe.X)
			for i := range beforeShort {
				if beforeShort[i] != afterShort[i] || beforeLong[i] != afterLong[i] {
					t.Fatal("failed load changed in-memory model state")
				}
			}
		})
	}

	// The intact checkpoint still loads after all that.
	if err := l.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
}

func TestLoadCheckpointSkipsCorruptKnowledgeEntries(t *testing.T) {
	cfg := testConfig()
	cfg.Window.MaxBatches = 3
	l, rng, seq := warmLearner(t, cfg, 30, 37)
	defer l.Close()
	for i := 0; i < 10; i++ {
		if _, err := l.Process(context.Background(), driftBatch(rng, seq, 64, 8, 8, stream.KindSudden)); err != nil {
			t.Fatal(err)
		}
		seq++
	}
	if l.KnowledgeStore().Len() < 2 {
		t.Skip("not enough knowledge entries to corrupt")
	}
	var buf bytes.Buffer
	if err := l.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	// Decode the payload, blank one knowledge snapshot (the degraded shape
	// an older or partially-recovered writer could produce), re-frame.
	payload, err := readEnvelope(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var cp checkpoint
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&cp); err != nil {
		t.Fatal(err)
	}
	total := len(cp.Knowledge)
	cp.Knowledge[0].Snapshot = nil
	var reenc bytes.Buffer
	if err := gob.NewEncoder(&reenc).Encode(cp); err != nil {
		t.Fatal(err)
	}
	var framed bytes.Buffer
	if err := writeEnvelope(&framed, reenc.Bytes()); err != nil {
		t.Fatal(err)
	}

	restored, err := NewLearner(cfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if err := restored.LoadCheckpoint(bytes.NewReader(framed.Bytes())); err != nil {
		t.Fatalf("degraded restore failed outright: %v", err)
	}
	if got := restored.KnowledgeStore().Len(); got != total-1 {
		t.Errorf("restored %d entries, want %d", got, total-1)
	}
	if st := restored.Stats(); st.KnowledgeSkipped != 1 {
		t.Errorf("KnowledgeSkipped = %d, want 1", st.KnowledgeSkipped)
	}
}

func TestSaveCheckpointFileIsAtomicAndLoadable(t *testing.T) {
	cfg := testConfig()
	l, _, _ := warmLearner(t, cfg, 15, 41)
	defer l.Close()

	path := t.TempDir() + "/ckpt.bin"
	if err := l.SaveCheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a second save: rename must replace, not append.
	if err := l.SaveCheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	restored, err := NewLearner(cfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if err := restored.LoadCheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	if err := restored.LoadCheckpointFile(path + ".missing"); err == nil {
		t.Error("missing file accepted")
	}
}
