package wire

import (
	"errors"
	"testing"
)

// FuzzDecodeInto asserts the decoder's total-safety contract on arbitrary
// bytes: either a clean ErrMalformed or a successful decode whose shape is
// internally consistent — never a panic, never an out-of-range slice.
func FuzzDecodeInto(f *testing.F) {
	good, err := AppendFrame(nil, "seed", Float64, [][]float64{{1, 2}, {3, 4}}, []int{0, 1})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	small, err := AppendFrame(nil, "", Float32, [][]float64{{0.5}}, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(small)
	f.Add([]byte("FWB1"))
	f.Add([]byte{})

	var frame Frame
	f.Fuzz(func(t *testing.T, data []byte) {
		err := frame.DecodeInto(data)
		if err != nil {
			if !errors.Is(err, ErrMalformed) {
				t.Fatalf("non-malformed decode error: %v", err)
			}
			return
		}
		if len(frame.X) == 0 {
			t.Fatal("successful decode with no rows")
		}
		cols := len(frame.X[0])
		for i, row := range frame.X {
			if len(row) != cols {
				t.Fatalf("ragged decode: row %d width %d, want %d", i, len(row), cols)
			}
		}
		if frame.Y != nil && len(frame.Y) != len(frame.X) {
			t.Fatalf("label count %d for %d rows", len(frame.Y), len(frame.X))
		}
	})
}
