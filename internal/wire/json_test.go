package wire

import "encoding/json"

// jsonEncode/jsonDecode mirror the serve tier's JSON batch contract for the
// baseline benchmark; they live in a test file so the package itself stays
// encoding/json-free.
func jsonEncode(x [][]float64, y []int) ([]byte, error) {
	return json.Marshal(struct {
		X [][]float64 `json:"x"`
		Y []int       `json:"y,omitempty"`
	}{x, y})
}

func jsonDecode(body []byte) ([][]float64, []int, error) {
	var req struct {
		X [][]float64 `json:"x"`
		Y []int       `json:"y"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, nil, err
	}
	return req.X, req.Y, nil
}
