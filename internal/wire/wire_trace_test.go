package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

const testTraceparent = "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01"

func TestAppendFrameTraceRoundTrip(t *testing.T) {
	x := [][]float64{{1, 2, 3}, {4, 5, 6}}
	y := []int{0, 1}
	buf, err := AppendFrameTrace(nil, "orders", testTraceparent, Float64, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if buf[4] != VersionTrace {
		t.Fatalf("version byte = %d, want %d", buf[4], VersionTrace)
	}
	var f Frame
	if err := f.DecodeInto(buf); err != nil {
		t.Fatal(err)
	}
	if f.ID != "orders" || f.Traceparent != testTraceparent {
		t.Fatalf("decoded id=%q trace=%q", f.ID, f.Traceparent)
	}
	if len(f.X) != 2 || f.X[1][2] != 6 || f.Y[1] != 1 {
		t.Fatalf("payload corrupted: X=%v Y=%v", f.X, f.Y)
	}

	// An untraced frame decoded into the same Frame must clear Traceparent.
	plain, err := AppendFrame(nil, "orders", Float64, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.DecodeInto(plain); err != nil {
		t.Fatal(err)
	}
	if f.Traceparent != "" {
		t.Fatalf("stale traceparent %q after v1 decode", f.Traceparent)
	}
}

func TestAppendFrameTraceEmptyIsBitwiseV1(t *testing.T) {
	x := [][]float64{{1.5, -2.25}}
	for _, y := range [][]int{nil, {1}} {
		v1, err := AppendFrame(nil, "s", Float32, x, y)
		if err != nil {
			t.Fatal(err)
		}
		v1b, err := AppendFrameTrace(nil, "s", "", Float32, x, y)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(v1, v1b) {
			t.Fatalf("AppendFrameTrace(\"\") diverged from AppendFrame\n v1: %x\n got: %x", v1, v1b)
		}
		s1, err := AppendStreamFrame(nil, "s", Float32, x, y)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := AppendStreamFrameTrace(nil, "s", "", Float32, x, y)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(s1, s2) {
			t.Fatal("AppendStreamFrameTrace(\"\") diverged from AppendStreamFrame")
		}
	}
}

func TestDecodeTraceMalformed(t *testing.T) {
	x := [][]float64{{1, 2}}
	good, err := AppendFrameTrace(nil, "s", testTraceparent, Float64, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	var f Frame

	// Version 1 with a non-zero reserved field must still be rejected.
	v1 := append([]byte(nil), good...)
	v1[4] = Version
	if err := f.DecodeInto(v1); !errors.Is(err, ErrMalformed) {
		t.Fatalf("v1 nonzero reserved: err = %v, want ErrMalformed", err)
	}

	// FlagTrace on version 1 is an unknown flag.
	plain, err := AppendFrame(nil, "s", Float64, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), plain...)
	flags := binary.LittleEndian.Uint16(bad[6:8]) | FlagTrace
	binary.LittleEndian.PutUint16(bad[6:8], flags)
	if err := f.DecodeInto(bad); !errors.Is(err, ErrMalformed) {
		t.Fatalf("v1+FlagTrace: err = %v, want ErrMalformed", err)
	}

	// Version 2 with FlagTrace but zero trace length.
	zl := append([]byte(nil), good...)
	binary.LittleEndian.PutUint16(zl[10:12], 0)
	if err := f.DecodeInto(zl); !errors.Is(err, ErrMalformed) {
		t.Fatalf("zero trace length: err = %v, want ErrMalformed", err)
	}

	// Version 2 with a trace length but no flag.
	nf := append([]byte(nil), good...)
	binary.LittleEndian.PutUint16(nf[6:8], 0)
	if err := f.DecodeInto(nf); !errors.Is(err, ErrMalformed) {
		t.Fatalf("trace length without flag: err = %v, want ErrMalformed", err)
	}

	// Trace length pointing past the payload.
	tl := append([]byte(nil), good...)
	binary.LittleEndian.PutUint16(tl[10:12], uint16(len(testTraceparent)+8))
	if err := f.DecodeInto(tl); !errors.Is(err, ErrMalformed) {
		t.Fatalf("oversized trace length: err = %v, want ErrMalformed", err)
	}

	// Oversized trace context rejected at encode time.
	if _, err := AppendFrameTrace(nil, "s", strings.Repeat("a", MaxTraceLen+1), Float64, x, nil); err == nil {
		t.Fatal("encode accepted trace context over MaxTraceLen")
	}
}

func TestDecodeTraceVersion2Untraced(t *testing.T) {
	// A hand-built version-2 frame without FlagTrace (trace length 0) must
	// decode: version 2 is a superset, not a different dialect.
	buf, err := AppendFrame(nil, "s", Float64, [][]float64{{1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf[4] = VersionTrace
	var f Frame
	if err := f.DecodeInto(buf); err != nil {
		t.Fatal(err)
	}
	if f.Traceparent != "" || f.ID != "s" {
		t.Fatalf("decoded id=%q trace=%q", f.ID, f.Traceparent)
	}
}

func TestReadFrameCarriesTrace(t *testing.T) {
	buf, err := AppendStreamFrameTrace(nil, "s", testTraceparent, Float64, [][]float64{{1, 2}}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	var f Frame
	if _, err := ReadFrame(bytes.NewReader(buf), &f, nil, 0); err != nil {
		t.Fatal(err)
	}
	if f.Traceparent != testTraceparent {
		t.Fatalf("Traceparent = %q", f.Traceparent)
	}
}

// TestWarmTraceDecodeAllocs pins the steady-state cost of the trace
// extension: a warm decode of a frame whose trace context is unchanged
// allocates nothing (the id fast-path extends to the traceparent).
func TestWarmTraceDecodeAllocs(t *testing.T) {
	buf, err := AppendFrameTrace(nil, "s", testTraceparent, Float64, [][]float64{{1, 2}, {3, 4}}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	var f Frame
	if err := f.DecodeInto(buf); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := f.DecodeInto(buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm traced decode allocates %v times, want 0", allocs)
	}
}
