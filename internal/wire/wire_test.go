package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"testing"
)

func randBatch(rng *rand.Rand, rows, cols int, labeled bool) ([][]float64, []int) {
	x := make([][]float64, rows)
	var y []int
	if labeled {
		y = make([]int, rows)
	}
	for i := range x {
		x[i] = make([]float64, cols)
		for j := range x[i] {
			x[i][j] = rng.NormFloat64()
		}
		if labeled {
			y[i] = rng.Intn(3)
		}
	}
	return x, y
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct {
		name    string
		dtype   byte
		labeled bool
		id      string
	}{
		{"f64 labeled", Float64, true, "orders"},
		{"f64 unlabeled", Float64, false, "orders"},
		{"f32 labeled", Float32, true, "s.1-x_Y"},
		{"f32 unlabeled", Float32, false, ""},
	} {
		t.Run(tc.name, func(t *testing.T) {
			x, y := randBatch(rng, 5, 3, tc.labeled)
			buf, err := AppendFrame(nil, tc.id, tc.dtype, x, y)
			if err != nil {
				t.Fatal(err)
			}
			if len(buf) != EncodedSize(len(tc.id), 5, 3, tc.dtype, tc.labeled) {
				t.Fatalf("encoded %d bytes, EncodedSize says %d", len(buf),
					EncodedSize(len(tc.id), 5, 3, tc.dtype, tc.labeled))
			}
			var f Frame
			if err := f.DecodeInto(buf); err != nil {
				t.Fatal(err)
			}
			if f.ID != tc.id || f.Dtype != tc.dtype {
				t.Fatalf("id %q dtype %d, want %q %d", f.ID, f.Dtype, tc.id, tc.dtype)
			}
			if len(f.X) != len(x) {
				t.Fatalf("%d rows, want %d", len(f.X), len(x))
			}
			for i := range x {
				for j := range x[i] {
					want := x[i][j]
					if tc.dtype == Float32 {
						want = float64(float32(want))
					}
					if f.X[i][j] != want {
						t.Fatalf("X[%d][%d] = %v, want %v", i, j, f.X[i][j], want)
					}
				}
			}
			if tc.labeled {
				for i := range y {
					if f.Y[i] != y[i] {
						t.Fatalf("Y[%d] = %d, want %d", i, f.Y[i], y[i])
					}
				}
			} else if f.Y != nil {
				t.Fatalf("unlabeled frame decoded labels %v", f.Y)
			}
		})
	}
}

// TestRowsAliasTensor pins the layout contract fused inference depends on:
// decoded rows are adjacent views of one row-major slab.
func TestRowsAliasTensor(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := randBatch(rng, 4, 6, true)
	buf, err := AppendFrame(nil, "a", Float64, x, y)
	if err != nil {
		t.Fatal(err)
	}
	var f Frame
	if err := f.DecodeInto(buf); err != nil {
		t.Fatal(err)
	}
	slab := f.Tensor().Data
	for i, row := range f.X {
		want := slab[i*6 : (i+1)*6]
		if &row[0] != &want[0] || len(row) != 6 {
			t.Fatalf("row %d does not alias the slab", i)
		}
	}
}

func TestDetach(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := randBatch(rng, 3, 2, true)
	buf, err := AppendFrame(nil, "a", Float64, x, y)
	if err != nil {
		t.Fatal(err)
	}
	var f Frame
	if err := f.DecodeInto(buf); err != nil {
		t.Fatal(err)
	}
	keptX, keptY := f.Detach()
	snapshot := append([]float64(nil), keptX[0]...)
	labels := append([]int(nil), keptY...)
	// A second decode of different content must not disturb detached rows.
	x2, y2 := randBatch(rng, 3, 2, true)
	buf2, err := AppendFrame(nil, "a", Float64, x2, y2)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.DecodeInto(buf2); err != nil {
		t.Fatal(err)
	}
	for j := range snapshot {
		if keptX[0][j] != snapshot[j] {
			t.Fatalf("detached row mutated at %d", j)
		}
	}
	for i := range labels {
		if keptY[i] != labels[i] {
			t.Fatalf("detached labels mutated at %d", i)
		}
	}
}

// TestMalformed is the satellite fuzz table: every corruption must produce
// an ErrMalformed, never a panic or a silent success.
func TestMalformed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := randBatch(rng, 4, 3, true)
	good, err := AppendFrame(nil, "abc", Float64, x, y)
	if err != nil {
		t.Fatal(err)
	}
	mut := func(fn func(b []byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return fn(b)
	}
	cases := []struct {
		name string
		buf  []byte
	}{
		{"empty", nil},
		{"truncated header", good[:HeaderSize-1]},
		{"truncated payload", good[:len(good)-5]},
		{"extra trailing bytes", append(append([]byte(nil), good...), 0xAB)},
		{"bad magic", mut(func(b []byte) []byte { b[0] = 'X'; return b })},
		{"bad version", mut(func(b []byte) []byte { b[4] = 99; return b })},
		{"bad dtype", mut(func(b []byte) []byte { b[5] = 7; return b })},
		{"unknown flags", mut(func(b []byte) []byte { b[6] |= 0x80; return b })},
		{"nonzero reserved", mut(func(b []byte) []byte { b[10] = 1; return b })},
		{"zero rows", mut(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[12:16], 0)
			return b
		})},
		{"row overflow", mut(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[12:16], math.MaxUint32)
			return b
		})},
		{"row x col overflow", mut(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[12:16], math.MaxUint32)
			binary.LittleEndian.PutUint32(b[16:20], math.MaxUint32)
			return b
		})},
		{"id longer than frame", mut(func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[8:10], math.MaxUint16)
			return b
		})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var f Frame
			err := f.DecodeInto(tc.buf)
			if !errors.Is(err, ErrMalformed) {
				t.Fatalf("err = %v, want ErrMalformed", err)
			}
		})
	}
}

func TestAppendFrameRejects(t *testing.T) {
	if _, err := AppendFrame(nil, "a", Float64, nil, nil); err == nil {
		t.Fatal("empty batch encoded")
	}
	if _, err := AppendFrame(nil, "a", Float64, [][]float64{{1, 2}, {3}}, nil); err == nil {
		t.Fatal("ragged batch encoded")
	}
	if _, err := AppendFrame(nil, "a", Float64, [][]float64{{1}}, []int{1, 2}); err == nil {
		t.Fatal("label count mismatch encoded")
	}
	if _, err := AppendFrame(nil, "a", 9, [][]float64{{1}}, nil); err == nil {
		t.Fatal("unknown dtype encoded")
	}
}

func TestReadFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := randBatch(rng, 4, 3, true)
	var streamBuf []byte
	var err error
	for i := 0; i < 3; i++ {
		streamBuf, err = AppendStreamFrame(streamBuf, fmt.Sprintf("s%d", i), Float64, x, y)
		if err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(streamBuf)
	var f Frame
	var scratch []byte
	for i := 0; i < 3; i++ {
		scratch, err = ReadFrame(r, &f, scratch, 1<<20)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if want := fmt.Sprintf("s%d", i); f.ID != want {
			t.Fatalf("frame %d id %q, want %q", i, f.ID, want)
		}
	}
	if _, err = ReadFrame(r, &f, scratch, 1<<20); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}

	// A frame announcing a size over the cap must refuse before reading it.
	over := binary.LittleEndian.AppendUint32(nil, 1<<30)
	if _, err = ReadFrame(bytes.NewReader(over), &f, scratch, 1<<20); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized frame: %v, want ErrTooLarge", err)
	}
	// A prefix cut mid-way is malformed, not EOF.
	if _, err = ReadFrame(bytes.NewReader([]byte{1, 2}), &f, scratch, 1<<20); !errors.Is(err, ErrMalformed) {
		t.Fatalf("short prefix: %v, want ErrMalformed", err)
	}
}

// TestDecodeAllocsSteadyState is the PR7 allocation regression guard:
// decoding a warm stream (same shape, same id) into a reused Frame performs
// zero allocations per frame.
func TestDecodeAllocsSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := randBatch(rng, 32, 6, true)
	for _, dtype := range []byte{Float64, Float32} {
		buf, err := AppendFrame(nil, "warm-stream", dtype, x, y)
		if err != nil {
			t.Fatal(err)
		}
		var f Frame
		if err := f.DecodeInto(buf); err != nil { // warm up the slabs
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(100, func() {
			if err := f.DecodeInto(buf); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("dtype %d: steady-state decode allocates %.1f per frame, want 0", dtype, allocs)
		}
		if f.Grew {
			t.Fatalf("dtype %d: warm decode reported growth", dtype)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	const rows, cols = 32, 6
	x, y := randBatch(rng, rows, cols, true)
	for _, tc := range []struct {
		name  string
		dtype byte
	}{{"f64", Float64}, {"f32", Float32}} {
		b.Run(tc.name, func(b *testing.B) {
			buf, err := AppendFrame(nil, "bench", tc.dtype, x, y)
			if err != nil {
				b.Fatal(err)
			}
			var f Frame
			if err := f.DecodeInto(buf); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(buf)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := f.DecodeInto(buf); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*rows), "ns/row")
		})
	}
}

// BenchmarkDecodeJSONBaseline is the same batch through encoding/json — the
// per-request cost the binary path removes (bench_ingest.sh reports both).
func BenchmarkDecodeJSONBaseline(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	const rows, cols = 32, 6
	x, y := randBatch(rng, rows, cols, true)
	body, err := jsonEncode(x, y)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := jsonDecode(body); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*rows), "ns/row")
}

// TestDecodeNativeF32 is the speed-tier regression guard: with KeepF32 set,
// an unlabeled float32 frame decodes natively — bit-exact f32 values in X32,
// no float64 slab ever allocated, and zero allocations per warm frame. A
// labeled f32 frame must still widen (the training plane is float64).
func TestDecodeNativeF32(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x, _ := randBatch(rng, 16, 5, false)
	buf, err := AppendFrame(nil, "native", Float32, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := Frame{KeepF32: true}
	if err := f.DecodeInto(buf); err != nil {
		t.Fatal(err)
	}
	if f.X != nil || f.Tensor() != nil {
		t.Fatal("native f32 decode materialized a float64 slab")
	}
	if f.Tensor32() == nil || len(f.X32) != 16 {
		t.Fatalf("native f32 decode: tensor32 %v, %d rows", f.Tensor32(), len(f.X32))
	}
	for i, row := range f.X32 {
		for j, v := range row {
			if want := float32(x[i][j]); v != want {
				t.Fatalf("row %d col %d: %g, want %g", i, j, v, want)
			}
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := f.DecodeInto(buf); err != nil {
			t.Fatal(err)
		}
		if f.X != nil || f.t != nil {
			t.Fatal("warm native decode touched the float64 slab")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm native f32 decode allocates %.1f per frame, want 0", allocs)
	}
	if f.Grew {
		t.Fatal("warm native f32 decode reported growth")
	}

	// Labeled f32 frames bypass the native path even with KeepF32 set.
	xl, yl := randBatch(rng, 4, 5, true)
	lbuf, err := AppendFrame(nil, "native", Float32, xl, yl)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.DecodeInto(lbuf); err != nil {
		t.Fatal(err)
	}
	if f.X == nil || f.X32 != nil {
		t.Fatal("labeled f32 frame took the native path")
	}
}
