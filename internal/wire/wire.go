// Package wire implements FreewayML's length-prefixed binary batch frame —
// the zero-copy ingest format the serve tier accepts alongside JSON. A frame
// carries one mini-batch for one stream: a fixed header (magic, version,
// dtype, flags, stream id, row/col counts), the feature matrix as row-major
// little-endian float32 or float64, and optionally one int32 label per row.
//
// Layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "FWB1"
//	4       1     version (1 or 2)
//	5       1     dtype: 0 = float64, 1 = float32
//	6       2     flags: bit0 = labels present; bit1 = trace context present
//	              (version 2 only; all other bits must be zero)
//	8       2     id length in bytes (may be 0 when the id travels out of band)
//	10      2     version 1: reserved (must be zero)
//	              version 2: trace-context length in bytes (non-zero iff bit1
//	              of flags is set)
//	12      4     rows
//	16      4     cols
//	20      ...   id bytes, then trace-context bytes (a W3C traceparent
//	              string, version 2 only), then rows×cols feature values,
//	              then rows int32 labels
//
// Version 2 exists only to carry the optional trace context: a version-2
// frame without FlagTrace is byte-identical to version 1 except for the
// version byte, and encoders emit version 1 whenever no trace context is
// attached, so untraced traffic stays bitwise-identical to PR7 frames.
//
// On the stream transport each frame is preceded by a uint32 byte length
// (ReadFrame); over HTTP the body is exactly one frame and Content-Length
// plays that role (DecodeInto).
//
// Decoding is allocation-free at steady state: DecodeInto reuses the Frame's
// tensor slab, row headers, and label slice, so a warm stream (same shape,
// same id) decodes with zero allocations — the property the AllocsPerRun
// guard in wire_test.go pins. Consumers that retain the decoded rows (the
// learner keeps labeled rows in its windows) must call Detach first so the
// next decode cannot overwrite retained memory.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"freewayml/internal/linalg"
)

// HeaderSize is the fixed frame header length in bytes.
const HeaderSize = 20

// Dtype codes for the feature payload.
const (
	Float64 byte = 0
	Float32 byte = 1
)

// Version is the baseline frame version: no trace context, reserved field
// zero. Encoders emit it whenever possible so untraced frames stay
// bitwise-identical across releases.
const Version = 1

// VersionTrace is the frame version that may carry a trace-context
// extension (FlagTrace + a non-zero length at offset 10).
const VersionTrace = 2

// FlagLabels marks a frame carrying one int32 label per row.
const FlagLabels uint16 = 1 << 0

// FlagTrace marks a version-2 frame carrying a trace-context extension
// (a W3C traceparent string between the id and the features).
const FlagTrace uint16 = 1 << 1

// MaxIDLen bounds the embedded stream id (the session layer caps ids at 64
// anyway; the wire cap just keeps the u16 honest).
const MaxIDLen = 256

// MaxTraceLen bounds the embedded trace context (a traceparent is 55
// bytes; the slack allows future vendor suffixes without a format bump).
const MaxTraceLen = 128

var magic = [4]byte{'F', 'W', 'B', '1'}

// ErrMalformed is wrapped by every decode error caused by the frame bytes
// themselves (bad magic, truncation, length mismatch, overflow). The serve
// tier maps it to a 400.
var ErrMalformed = errors.New("wire: malformed frame")

// ErrTooLarge is wrapped when a length-prefixed frame announces a size over
// the reader's cap — the binary equivalent of the HTTP body cap (413).
var ErrTooLarge = errors.New("wire: frame exceeds size cap")

// Frame is one decoded batch plus the reusable storage behind it. The zero
// value is ready to use; keep reusing one Frame per connection (or per pooled
// handler slot) so warm decodes allocate nothing.
type Frame struct {
	// ID is the embedded stream id ("" when the frame is path-addressed).
	ID string
	// Traceparent is the embedded trace context ("" when the frame carries
	// none) — the binary-path equivalent of the traceparent HTTP header.
	Traceparent string
	// Dtype is the feature payload's on-wire precision. By default features
	// are widened to float64 in X (the training core is float64); with
	// KeepF32 set, an unlabeled float32 frame decodes natively into X32
	// instead and never touches a float64 slab.
	Dtype byte
	// KeepF32 routes unlabeled float32 frames to the native path: X32/
	// Tensor32 are filled and X stays nil. Labeled frames always widen —
	// the training plane runs the f64 oracle kernels regardless of tier.
	KeepF32 bool
	// X holds the feature rows; each row is a view into the tensor slab, and
	// consecutive rows are adjacent, so the whole batch stays cache-friendly
	// and Tensor() exposes it as one row-major block for fused inference.
	// nil when the frame took the native float32 path.
	X [][]float64
	// X32 holds the feature rows of a natively decoded float32 frame (nil
	// otherwise); each row views the float32 slab, like X does for float64.
	X32 [][]float32
	// Y holds one label per row, or nil for inference-only frames.
	Y []int
	// Grew reports whether the last DecodeInto had to allocate (cold frame or
	// a batch larger than anything seen before) — the decode-alloc signal the
	// serve metrics count.
	Grew bool

	t   *linalg.Tensor   // slab behind X
	t32 *linalg.Tensor32 // slab behind X32 (native float32 path)
	y   []int            // label storage (Y aliases it when labeled)
}

// Tensor returns the row-major slab behind X (nil before the first decode or
// after Detach). The tensor is frame-owned; it is valid until the next
// DecodeInto.
func (f *Frame) Tensor() *linalg.Tensor { return f.t }

// Tensor32 returns the row-major float32 slab behind X32 (nil unless the
// last decode took the native float32 path). Frame-owned, valid until the
// next DecodeInto.
func (f *Frame) Tensor32() *linalg.Tensor32 { return f.t32 }

// Detach hands off the decoded storage — the row views, labels, and slab —
// and clears the frame's references to them, so a consumer that retains the
// rows (the learner's windows do) keeps exclusive ownership while the frame
// stays reusable. The next DecodeInto allocates a fresh slab.
func (f *Frame) Detach() (x [][]float64, y []int) {
	x, y = f.X, f.Y
	f.X, f.Y, f.t, f.y = nil, nil, nil, nil
	f.X32, f.t32 = nil, nil
	return x, y
}

// Arm gives a detached frame its next slab from a pool (nil t keeps the
// allocate-on-decode behaviour). The slab is resized by the next DecodeInto.
func (f *Frame) Arm(t *linalg.Tensor) {
	if f.t == nil {
		f.t = t
	}
}

// DecodeInto parses one complete frame (without the stream length prefix)
// from buf into f, reusing f's storage. All errors wrap ErrMalformed.
func (f *Frame) DecodeInto(buf []byte) error {
	f.Grew = false
	if len(buf) < HeaderSize {
		return fmt.Errorf("%w: %d bytes, header needs %d", ErrMalformed, len(buf), HeaderSize)
	}
	if [4]byte(buf[0:4]) != magic {
		return fmt.Errorf("%w: bad magic %q", ErrMalformed, buf[0:4])
	}
	version := buf[4]
	if version != Version && version != VersionTrace {
		return fmt.Errorf("%w: version %d, want %d or %d", ErrMalformed, version, Version, VersionTrace)
	}
	dtype := buf[5]
	if dtype != Float64 && dtype != Float32 {
		return fmt.Errorf("%w: unknown dtype %d", ErrMalformed, dtype)
	}
	flags := binary.LittleEndian.Uint16(buf[6:8])
	known := FlagLabels
	if version == VersionTrace {
		known |= FlagTrace
	}
	if flags&^known != 0 {
		return fmt.Errorf("%w: unknown flags %#x for version %d", ErrMalformed, flags, version)
	}
	idLen := int(binary.LittleEndian.Uint16(buf[8:10]))
	// Offset 10 is reserved (must be zero) in version 1 and the
	// trace-context length in version 2.
	traceLen := int(binary.LittleEndian.Uint16(buf[10:12]))
	traced := flags&FlagTrace != 0
	switch {
	case version == Version && traceLen != 0:
		return fmt.Errorf("%w: reserved field %#x", ErrMalformed, traceLen)
	case traced && (traceLen == 0 || traceLen > MaxTraceLen):
		return fmt.Errorf("%w: trace length %d outside (0,%d]", ErrMalformed, traceLen, MaxTraceLen)
	case !traced && traceLen != 0:
		return fmt.Errorf("%w: trace length %d without trace flag", ErrMalformed, traceLen)
	}
	rows64 := uint64(binary.LittleEndian.Uint32(buf[12:16]))
	cols64 := uint64(binary.LittleEndian.Uint32(buf[16:20]))
	if rows64 == 0 || cols64 == 0 {
		return fmt.Errorf("%w: empty shape %d×%d", ErrMalformed, rows64, cols64)
	}
	if idLen > MaxIDLen {
		return fmt.Errorf("%w: id length %d exceeds %d", ErrMalformed, idLen, MaxIDLen)
	}
	esz := uint64(8)
	if dtype == Float32 {
		esz = 4
	}
	labeled := flags&FlagLabels != 0
	// Row/col counts are attacker-controlled u32s: size arithmetic runs in
	// uint64 against the actual buffer length, so a frame announcing 2^32
	// rows fails the length check instead of overflowing an int.
	elems := rows64 * cols64 // ≤ (2^32-1)^2, no overflow in uint64
	if elems > uint64(len(buf))/esz {
		return fmt.Errorf("%w: %d×%d values cannot fit %d bytes", ErrMalformed, rows64, cols64, len(buf))
	}
	want := uint64(HeaderSize) + uint64(idLen) + uint64(traceLen) + elems*esz
	if labeled {
		want += rows64 * 4
	}
	if uint64(len(buf)) != want {
		return fmt.Errorf("%w: %d bytes, layout needs %d", ErrMalformed, len(buf), want)
	}
	rows, cols := int(rows64), int(cols64)
	native32 := f.KeepF32 && dtype == Float32 && !labeled

	idBytes := buf[HeaderSize : HeaderSize+idLen]
	// string(bytes) == string compares without allocating; the conversion
	// below runs only when the id actually changes, so a persistent
	// connection carrying one stream re-decodes its id for free.
	if f.ID != string(idBytes) {
		f.ID = string(idBytes)
	}
	traceBytes := buf[HeaderSize+idLen : HeaderSize+idLen+traceLen]
	if f.Traceparent != string(traceBytes) {
		f.Traceparent = string(traceBytes)
	}
	f.Dtype = dtype

	payload32 := buf[HeaderSize+idLen+traceLen:]
	if native32 {
		// Native float32 path: decode straight into the f32 slab — no f64
		// slab is touched, so the speed-tier read path never pays the
		// up-convert (or its memory traffic) the f64 path would.
		if f.t32 == nil || cap(f.t32.Data) < rows*cols {
			f.Grew = true
		}
		f.t32 = linalg.EnsureTensor32(f.t32, rows, cols)
		d32 := f.t32.Data
		for i := range d32 {
			d32[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload32[i*4:]))
		}
		if cap(f.X32) < rows {
			f.X32 = make([][]float32, rows)
			f.Grew = true
		}
		f.X32 = f.X32[:rows]
		for i := range f.X32 {
			f.X32[i] = d32[i*cols : (i+1)*cols : (i+1)*cols]
		}
		f.X = nil
		f.Y = nil
		return nil
	}
	f.X32 = nil

	if f.t == nil {
		f.Grew = true
	} else if cap(f.t.Data) < rows*cols {
		f.Grew = true
	}
	f.t = linalg.EnsureTensor(f.t, rows, cols)
	payload := buf[HeaderSize+idLen+traceLen:]
	dst := f.t.Data
	if dtype == Float64 {
		for i := range dst {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[i*8:]))
		}
	} else {
		for i := range dst {
			dst[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(payload[i*4:])))
		}
	}

	if cap(f.X) < rows {
		f.X = make([][]float64, rows)
		f.Grew = true
	}
	f.X = f.X[:rows]
	for i := range f.X {
		f.X[i] = dst[i*cols : (i+1)*cols : (i+1)*cols]
	}

	if labeled {
		if cap(f.y) < rows {
			f.y = make([]int, rows)
			f.Grew = true
		}
		f.y = f.y[:rows]
		lab := payload[int(elems*esz):]
		for i := range f.y {
			f.y[i] = int(int32(binary.LittleEndian.Uint32(lab[i*4:])))
		}
		f.Y = f.y
	} else {
		f.Y = nil
	}
	return nil
}

// EncodedSize returns the frame byte length (without the stream length
// prefix) for the given shape.
func EncodedSize(idLen, rows, cols int, dtype byte, labeled bool) int {
	esz := 8
	if dtype == Float32 {
		esz = 4
	}
	n := HeaderSize + idLen + rows*cols*esz
	if labeled {
		n += rows * 4
	}
	return n
}

// AppendFrame appends one encoded version-1 frame (without the stream
// length prefix) to dst and returns the extended slice. Rows must be
// rectangular; float32 frames narrow each value (the lossy half of the
// differential test: the client narrows, both paths widen identically).
// y may be nil.
func AppendFrame(dst []byte, id string, dtype byte, x [][]float64, y []int) ([]byte, error) {
	return AppendFrameTrace(dst, id, "", dtype, x, y)
}

// AppendFrameTrace appends one encoded frame carrying the given trace
// context (a traceparent string). An empty traceparent produces a
// version-1 frame bit-for-bit identical to AppendFrame; a non-empty one
// produces a version-2 frame with the FlagTrace extension.
func AppendFrameTrace(dst []byte, id, traceparent string, dtype byte, x [][]float64, y []int) ([]byte, error) {
	if dtype != Float64 && dtype != Float32 {
		return nil, fmt.Errorf("wire: unknown dtype %d", dtype)
	}
	if len(id) > MaxIDLen {
		return nil, fmt.Errorf("wire: id %q longer than %d bytes", id, MaxIDLen)
	}
	if len(traceparent) > MaxTraceLen {
		return nil, fmt.Errorf("wire: trace context %d bytes, cap %d", len(traceparent), MaxTraceLen)
	}
	rows := len(x)
	if rows == 0 {
		return nil, errors.New("wire: empty batch")
	}
	cols := len(x[0])
	if cols == 0 {
		return nil, errors.New("wire: zero-width rows")
	}
	if rows > math.MaxUint32 || cols > math.MaxUint32 {
		return nil, fmt.Errorf("wire: shape %d×%d exceeds u32", rows, cols)
	}
	if y != nil && len(y) != rows {
		return nil, fmt.Errorf("wire: %d labels for %d rows", len(y), rows)
	}
	labeled := y != nil

	start := len(dst)
	dst = append(dst, make([]byte, EncodedSize(len(id), rows, cols, dtype, labeled)+len(traceparent))...)
	b := dst[start:]
	copy(b[0:4], magic[:])
	b[5] = dtype
	var flags uint16
	if labeled {
		flags |= FlagLabels
	}
	if traceparent == "" {
		b[4] = Version
	} else {
		b[4] = VersionTrace
		flags |= FlagTrace
	}
	binary.LittleEndian.PutUint16(b[6:8], flags)
	binary.LittleEndian.PutUint16(b[8:10], uint16(len(id)))
	binary.LittleEndian.PutUint16(b[10:12], uint16(len(traceparent)))
	binary.LittleEndian.PutUint32(b[12:16], uint32(rows))
	binary.LittleEndian.PutUint32(b[16:20], uint32(cols))
	copy(b[HeaderSize:], id)
	copy(b[HeaderSize+len(id):], traceparent)
	p := b[HeaderSize+len(id)+len(traceparent):]
	for _, row := range x {
		if len(row) != cols {
			return nil, fmt.Errorf("wire: ragged batch (row width %d, want %d)", len(row), cols)
		}
		if dtype == Float64 {
			for _, v := range row {
				binary.LittleEndian.PutUint64(p, math.Float64bits(v))
				p = p[8:]
			}
		} else {
			for _, v := range row {
				binary.LittleEndian.PutUint32(p, math.Float32bits(float32(v)))
				p = p[4:]
			}
		}
	}
	for _, v := range y {
		binary.LittleEndian.PutUint32(p, uint32(int32(v)))
		p = p[4:]
	}
	return dst, nil
}

// AppendStreamFrame appends the uint32 length prefix plus the frame — the
// unit the persistent-connection transport reads with ReadFrame.
func AppendStreamFrame(dst []byte, id string, dtype byte, x [][]float64, y []int) ([]byte, error) {
	return AppendStreamFrameTrace(dst, id, "", dtype, x, y)
}

// AppendStreamFrameTrace is AppendStreamFrame with a trace context (empty
// keeps the version-1 encoding).
func AppendStreamFrameTrace(dst []byte, id, traceparent string, dtype byte, x [][]float64, y []int) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	out, err := AppendFrameTrace(dst, id, traceparent, dtype, x, y)
	if err != nil {
		return nil, err
	}
	binary.LittleEndian.PutUint32(out[start:], uint32(len(out)-start-4))
	return out, nil
}

// ReadFrame reads one length-prefixed frame from r into f, using scratch as
// the reusable frame buffer (returned possibly grown — pass it back in).
// A clean EOF before the first prefix byte returns io.EOF; a frame longer
// than maxFrame returns an error wrapping ErrTooLarge without consuming the
// payload, so the caller can answer and close.
func ReadFrame(r io.Reader, f *Frame, scratch []byte, maxFrame int) ([]byte, error) {
	var pfx [4]byte
	if _, err := io.ReadFull(r, pfx[:]); err != nil {
		if err == io.EOF {
			return scratch, io.EOF
		}
		return scratch, fmt.Errorf("%w: short length prefix: %v", ErrMalformed, err)
	}
	n := binary.LittleEndian.Uint32(pfx[:])
	if maxFrame > 0 && n > uint32(maxFrame) {
		return scratch, fmt.Errorf("%w: %d bytes over cap %d", ErrTooLarge, n, maxFrame)
	}
	if n < HeaderSize {
		return scratch, fmt.Errorf("%w: %d-byte frame, header needs %d", ErrMalformed, n, HeaderSize)
	}
	if cap(scratch) < int(n) {
		scratch = make([]byte, n)
	}
	scratch = scratch[:n]
	if _, err := io.ReadFull(r, scratch); err != nil {
		return scratch, fmt.Errorf("%w: truncated frame: %v", ErrMalformed, err)
	}
	return scratch, f.DecodeInto(scratch)
}
