package stream

import "sync"

// BatchPool recycles batch buffers — the row-header slice plus one flat
// backing slab — for callers that own a batch end to end: load generators,
// replay drivers, benchmark harnesses, and any client that builds a batch,
// serializes it, and is done with it.
//
// Ownership caveat: a batch handed to a Learner for *training* (labeled
// batches) is retained — the adaptive window and the fixed-frequency
// buffers keep the rows, and the shift detector keeps warm-up rows — so
// server-side request buffers must NOT be recycled through this pool. The
// pool exists for the producing side of the pipeline, where ownership never
// leaves the caller.
type BatchPool struct {
	pool sync.Pool
}

// PooledBatch is one recyclable batch: Rows is the n×dim view handed to
// request encoders, Y the matching label slice. Both alias pool-owned
// storage — valid until Release.
type PooledBatch struct {
	Rows [][]float64
	Y    []int

	flat []float64
	pool *BatchPool
}

// Get returns an n×dim batch whose rows alias one contiguous slab, plus a
// label slice of length n. The contents are NOT zeroed: every cell is
// expected to be overwritten by the caller before use.
func (p *BatchPool) Get(n, dim int) *PooledBatch {
	if n <= 0 || dim <= 0 {
		return &PooledBatch{pool: p}
	}
	b, _ := p.pool.Get().(*PooledBatch)
	if b == nil || cap(b.flat) < n*dim || cap(b.Rows) < n || cap(b.Y) < n {
		b = &PooledBatch{
			Rows: make([][]float64, n),
			Y:    make([]int, n),
			flat: make([]float64, n*dim),
		}
	}
	b.pool = p
	b.Rows = b.Rows[:n]
	b.Y = b.Y[:n]
	b.flat = b.flat[:n*dim]
	for i := 0; i < n; i++ {
		b.Rows[i] = b.flat[i*dim : (i+1)*dim : (i+1)*dim]
	}
	return b
}

// Release returns the batch to its pool. The caller must not touch Rows or
// Y afterwards. Safe on a zero-size batch; double-Release is the caller's
// bug (the same storage would be handed to two goroutines).
func (b *PooledBatch) Release() {
	if b.pool == nil || b.flat == nil {
		return
	}
	b.pool.pool.Put(b)
}
