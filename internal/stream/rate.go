package stream

import "errors"

// RateAdjuster implements the rate-aware adjuster of paper Sec. V-B. It
// observes the live data flow rate and the training-window pressure and
// produces two control outputs:
//
//   - InferBoost: when the flow rate is low and window pressure minimal,
//     the inference frequency is increased to drain pending data quickly.
//   - DecayBoost: when the flow rate exceeds a threshold, the ASW decay is
//     accelerated so model updates become less frequent and stop competing
//     with inference for resources.
//
// The adjuster is driven by reported measurements rather than wall-clock
// time, which keeps it deterministic and testable.
type RateAdjuster struct {
	// HighRate is the items/second threshold above which training yields.
	HighRate float64
	// LowRate is the items/second threshold below which inference is
	// boosted.
	LowRate float64
	// PressureLimit is the pending-item count considered "minimal" when at
	// or below it.
	PressureLimit int

	rate     float64
	pressure int
}

// NewRateAdjuster validates thresholds (0 < LowRate < HighRate,
// PressureLimit >= 0) and returns an adjuster.
func NewRateAdjuster(lowRate, highRate float64, pressureLimit int) (*RateAdjuster, error) {
	if lowRate <= 0 || highRate <= lowRate {
		return nil, errors.New("stream: need 0 < LowRate < HighRate")
	}
	if pressureLimit < 0 {
		return nil, errors.New("stream: PressureLimit must be >= 0")
	}
	return &RateAdjuster{HighRate: highRate, LowRate: lowRate, PressureLimit: pressureLimit}, nil
}

// Report feeds the latest measurements: items/second arriving and items
// pending in the training window.
func (r *RateAdjuster) Report(itemsPerSecond float64, pendingItems int) {
	if itemsPerSecond < 0 {
		itemsPerSecond = 0
	}
	if pendingItems < 0 {
		pendingItems = 0
	}
	r.rate = itemsPerSecond
	r.pressure = pendingItems
}

// InferBoost reports whether the inference frequency should be raised
// (low flow rate and minimal window pressure).
func (r *RateAdjuster) InferBoost() bool {
	return r.rate < r.LowRate && r.pressure <= r.PressureLimit
}

// DecayBoost returns the extra multiplier to apply to the ASW decay
// exponent: 1 (no change) below HighRate, growing linearly with the
// overload factor above it, capped at 3× to keep the window useful.
func (r *RateAdjuster) DecayBoost() float64 {
	if r.rate <= r.HighRate {
		return 1
	}
	boost := r.rate / r.HighRate
	if boost > 3 {
		boost = 3
	}
	return boost
}
