// Package stream defines the batch and stream abstractions the rest of
// FreewayML consumes: labeled/unlabeled mini-batches, the Source interface
// every dataset generator implements, and the rate-aware adjuster of paper
// Sec. V-B that balances inference and training frequency under load.
package stream

import (
	"errors"
	"fmt"
)

// DriftKind is the ground-truth drift type a dataset generator injected
// into a batch. The per-pattern experiments (Table II, Fig. 9/11) slice
// accuracy by this label.
type DriftKind int

const (
	// KindNone marks stationary batches.
	KindNone DriftKind = iota
	// KindSlight marks batches under gradual/localized drift (Pattern A).
	KindSlight
	// KindSudden marks batches at or shortly after an abrupt concept switch
	// to a new distribution (Pattern B).
	KindSudden
	// KindReoccurring marks batches at or shortly after a switch back to a
	// previously seen concept (Pattern C).
	KindReoccurring
)

// String names the drift kind.
func (k DriftKind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindSlight:
		return "slight"
	case KindSudden:
		return "sudden"
	case KindReoccurring:
		return "reoccurring"
	default:
		return "unknown"
	}
}

// Batch is one mini-batch of the stream. Y is nil for pure-inference
// batches; in the paper's prequential protocol every batch is first used
// for inference and then (with its labels) for training.
type Batch struct {
	Seq   int
	X     [][]float64
	Y     []int
	Truth DriftKind
	// TraceID joins the batch to the request-scoped trace that carried it
	// ("" for untraced paths); FusedTraces lists every member trace when
	// the coalescer merged several requests into this batch (nil when the
	// batch ran alone). Both flow into the per-batch TraceEvent.
	TraceID     string
	FusedTraces []string
}

// Labeled reports whether the batch carries labels.
func (b Batch) Labeled() bool { return len(b.Y) == len(b.X) && len(b.Y) > 0 }

// Validate checks internal consistency: a non-empty rectangular feature
// matrix and, when labels are present, one non-negative label per row.
func (b Batch) Validate() error {
	if len(b.X) == 0 {
		return errors.New("stream: empty batch")
	}
	if b.Y != nil && len(b.Y) != len(b.X) {
		return errors.New("stream: label count mismatch")
	}
	w := len(b.X[0])
	for _, row := range b.X {
		if len(row) != w {
			return errors.New("stream: ragged batch")
		}
	}
	for _, y := range b.Y {
		if y < 0 {
			return fmt.Errorf("stream: negative label %d", y)
		}
	}
	return nil
}

// ValidateShape checks the batch against a stream's declared shape: every
// row must be dim wide and every label within [0, classes). This is the
// full entry-point guard — every consumer that knows its shape (the core
// learner, the HTTP server) should use it instead of Validate so malformed
// input is refused before it can touch model state.
func (b Batch) ValidateShape(dim, classes int) error {
	if err := b.Validate(); err != nil {
		return err
	}
	if len(b.X[0]) != dim {
		return fmt.Errorf("stream: row width %d, want %d", len(b.X[0]), dim)
	}
	for _, y := range b.Y {
		if y >= classes {
			return fmt.Errorf("stream: label %d outside [0,%d)", y, classes)
		}
	}
	return nil
}

// Source produces a finite or infinite sequence of batches.
type Source interface {
	// Name identifies the dataset.
	Name() string
	// Dim is the feature dimensionality.
	Dim() int
	// Classes is the number of labels.
	Classes() int
	// Next returns the next batch, or ok=false when the stream ends.
	Next() (Batch, bool)
}

// Collect drains up to max batches from a source (all batches if max <= 0).
func Collect(s Source, max int) []Batch {
	var out []Batch
	for max <= 0 || len(out) < max {
		b, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, b)
	}
	return out
}
