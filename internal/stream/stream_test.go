package stream

import "testing"

func TestDriftKindString(t *testing.T) {
	cases := map[DriftKind]string{
		KindNone:        "none",
		KindSlight:      "slight",
		KindSudden:      "sudden",
		KindReoccurring: "reoccurring",
		DriftKind(42):   "unknown",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestBatchValidate(t *testing.T) {
	good := Batch{X: [][]float64{{1, 2}, {3, 4}}, Y: []int{0, 1}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid batch rejected: %v", err)
	}
	if !good.Labeled() {
		t.Error("labeled batch reported unlabeled")
	}
	unlabeled := Batch{X: [][]float64{{1, 2}}}
	if err := unlabeled.Validate(); err != nil {
		t.Errorf("unlabeled batch rejected: %v", err)
	}
	if unlabeled.Labeled() {
		t.Error("unlabeled batch reported labeled")
	}
	bad := []Batch{
		{},
		{X: [][]float64{{1}}, Y: []int{0, 1}},
		{X: [][]float64{{1}, {1, 2}}},
		{X: [][]float64{{1}}, Y: []int{-1}},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d: invalid batch passed", i)
		}
	}
}

func TestBatchValidateShape(t *testing.T) {
	good := Batch{X: [][]float64{{1, 2}, {3, 4}}, Y: []int{0, 1}}
	if err := good.ValidateShape(2, 2); err != nil {
		t.Errorf("valid batch rejected: %v", err)
	}
	if err := good.ValidateShape(3, 2); err == nil {
		t.Error("wrong width passed")
	}
	if err := good.ValidateShape(2, 1); err == nil {
		t.Error("out-of-range label passed")
	}
	ragged := Batch{X: [][]float64{{1, 2}, {3}}}
	if err := ragged.ValidateShape(2, 2); err == nil {
		t.Error("ragged batch passed ValidateShape")
	}
}

type fakeSource struct {
	n, emitted int
}

func (f *fakeSource) Name() string { return "fake" }
func (f *fakeSource) Dim() int     { return 1 }
func (f *fakeSource) Classes() int { return 2 }
func (f *fakeSource) Next() (Batch, bool) {
	if f.emitted >= f.n {
		return Batch{}, false
	}
	f.emitted++
	return Batch{Seq: f.emitted - 1, X: [][]float64{{1}}, Y: []int{0}}, true
}

func TestCollect(t *testing.T) {
	if got := Collect(&fakeSource{n: 5}, 3); len(got) != 3 {
		t.Errorf("Collect(max=3) = %d batches", len(got))
	}
	if got := Collect(&fakeSource{n: 5}, 0); len(got) != 5 {
		t.Errorf("Collect(max=0) = %d batches", len(got))
	}
	if got := Collect(&fakeSource{n: 2}, 10); len(got) != 2 {
		t.Errorf("Collect beyond end = %d batches", len(got))
	}
}

func TestRateAdjusterValidation(t *testing.T) {
	if _, err := NewRateAdjuster(0, 10, 0); err == nil {
		t.Error("LowRate 0 should error")
	}
	if _, err := NewRateAdjuster(10, 5, 0); err == nil {
		t.Error("HighRate < LowRate should error")
	}
	if _, err := NewRateAdjuster(1, 10, -1); err == nil {
		t.Error("negative PressureLimit should error")
	}
}

func TestRateAdjusterBehaviour(t *testing.T) {
	r, err := NewRateAdjuster(100, 1000, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Quiet stream, empty window: boost inference, no decay change.
	r.Report(10, 0)
	if !r.InferBoost() {
		t.Error("quiet stream should boost inference")
	}
	if r.DecayBoost() != 1 {
		t.Errorf("quiet DecayBoost = %v", r.DecayBoost())
	}
	// Quiet stream but pressured window: no inference boost.
	r.Report(10, 100)
	if r.InferBoost() {
		t.Error("pressured window should not boost inference")
	}
	// Overloaded stream: decay boost grows, capped at 3.
	r.Report(2000, 100)
	if b := r.DecayBoost(); b <= 1 || b > 3 {
		t.Errorf("overload DecayBoost = %v", b)
	}
	r.Report(1e9, 100)
	if b := r.DecayBoost(); b != 3 {
		t.Errorf("capped DecayBoost = %v, want 3", b)
	}
	// Negative measurements are clamped.
	r.Report(-5, -5)
	if !r.InferBoost() {
		t.Error("clamped negative rate should behave as 0")
	}
}
