package knowledge

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"freewayml/internal/linalg"
)

// Property: Match returns the entry whose distribution is truly nearest
// (verified against brute force over the preserved distributions).
func TestMatchReturnsNearestProperty(t *testing.T) {
	f := func(seed int64, nEntries uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nEntries%12) + 1
		s, err := NewStore(64, "") // big enough: no spilling/dropping
		if err != nil {
			return false
		}
		dists := make([]linalg.Vector, n)
		for i := 0; i < n; i++ {
			dists[i] = linalg.Vector{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
			if err := s.Preserve(dists[i], []byte{byte(i)}, "long", i); err != nil {
				return false
			}
		}
		query := linalg.Vector{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		snap, gotD, ok, err := s.Match(query)
		if err != nil || !ok {
			return false
		}
		best := math.Inf(1)
		bestIdx := -1
		for i, d := range dists {
			if dd := query.Distance(d); dd < best {
				best = dd
				bestIdx = i
			}
		}
		if math.Abs(gotD-best) > 1e-9 {
			return false
		}
		// Ties may legitimately resolve to either entry; accept any entry at
		// the minimal distance.
		for i, d := range dists {
			if snap[0] == byte(i) && math.Abs(query.Distance(d)-best) < 1e-9 {
				return true
			}
		}
		return bestIdx >= 0 && false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: NearestDistance agrees with Match's distance.
func TestNearestDistanceAgreesWithMatchProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := NewStore(64, "")
		if err != nil {
			return false
		}
		for i := 0; i < 5; i++ {
			v := linalg.Vector{rng.NormFloat64(), rng.NormFloat64()}
			if err := s.Preserve(v, []byte{1}, "long", i); err != nil {
				return false
			}
		}
		q := linalg.Vector{rng.NormFloat64(), rng.NormFloat64()}
		_, d1, ok, err := s.Match(q)
		if err != nil || !ok {
			return false
		}
		return math.Abs(d1-s.NearestDistance(q)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
