package knowledge

import (
	"testing"

	"freewayml/internal/linalg"
)

func exportOf(t *testing.T, s *Store) []EntrySnapshot {
	t.Helper()
	out, err := s.Export()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestMergeAddReplaceSkip(t *testing.T) {
	local, _ := NewStore(16, "")
	if err := local.Preserve(linalg.Vector{0, 0}, []byte("local-origin"), "local", 5); err != nil {
		t.Fatal(err)
	}
	if err := local.Preserve(linalg.Vector{10, 0}, []byte("local-east"), "local", 9); err != nil {
		t.Fatal(err)
	}

	incoming := []EntrySnapshot{
		// Same regime as local-origin, fresher → replaces in place.
		{Distribution: linalg.Vector{0.1, 0}, Snapshot: []byte("peer-origin-v2"), Source: "peer", Batch: 8},
		// Same regime as local-east, staler → skipped.
		{Distribution: linalg.Vector{10, 0.1}, Snapshot: []byte("peer-east-old"), Source: "peer", Batch: 2},
		// New regime → appended.
		{Distribution: linalg.Vector{0, 50}, Snapshot: []byte("peer-north"), Source: "peer", Batch: 3},
		// Invalid → skipped and counted.
		{Distribution: nil, Snapshot: []byte("bad"), Source: "peer", Batch: 1},
	}
	added, replaced, skipped, err := local.Merge(incoming, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 || replaced != 1 || skipped != 2 {
		t.Fatalf("merge = added %d replaced %d skipped %d, want 1/1/2", added, replaced, skipped)
	}
	if n := local.Len(); n != 3 {
		t.Fatalf("len = %d, want 3", n)
	}

	// The replacement actually took effect; the stale one did not.
	snap, _, ok, err := local.Match(linalg.Vector{0, 0})
	if err != nil || !ok || string(snap) != "peer-origin-v2" {
		t.Errorf("origin regime = %q (ok=%v err=%v), want peer-origin-v2", snap, ok, err)
	}
	snap, _, ok, err = local.Match(linalg.Vector{10, 0})
	if err != nil || !ok || string(snap) != "local-east" {
		t.Errorf("east regime = %q (ok=%v err=%v), want local-east kept", snap, ok, err)
	}
}

func TestMergeIdempotent(t *testing.T) {
	src, _ := NewStore(16, "")
	for i, v := range []linalg.Vector{{1, 0}, {0, 1}, {5, 5}} {
		if err := src.Preserve(v, []byte{byte('a' + i)}, "src", i+1); err != nil {
			t.Fatal(err)
		}
	}
	dst, _ := NewStore(16, "")
	export := exportOf(t, src)

	added, replaced, skipped, err := dst.Merge(export, 0)
	if err != nil || added != 3 || replaced != 0 || skipped != 0 {
		t.Fatalf("first merge = %d/%d/%d err=%v, want 3/0/0", added, replaced, skipped, err)
	}
	// Even at radius 0 an entry matches its own earlier copy (distance 0),
	// so re-merging the same export is a no-op.
	added, replaced, skipped, err = dst.Merge(export, 0)
	if err != nil || added != 0 || replaced != 0 || skipped != 3 {
		t.Fatalf("second merge = %d/%d/%d err=%v, want 0/0/3", added, replaced, skipped, err)
	}
	if n := dst.Len(); n != 3 {
		t.Fatalf("len = %d after double merge, want 3", n)
	}
}

func TestMergeNeverDiscardsLocalState(t *testing.T) {
	// Unlike Import, Merge folds in: entries the peer does not know keep
	// existing locally.
	local, _ := NewStore(16, "")
	if err := local.Preserve(linalg.Vector{100, 100}, []byte("local-only"), "local", 1); err != nil {
		t.Fatal(err)
	}
	peer, _ := NewStore(16, "")
	if err := peer.Preserve(linalg.Vector{1, 1}, []byte("peer-only"), "peer", 1); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := local.Merge(exportOf(t, peer), 1.0); err != nil {
		t.Fatal(err)
	}
	if n := local.Len(); n != 2 {
		t.Fatalf("len = %d, want 2 (local entry survives)", n)
	}
	snap, _, ok, err := local.Match(linalg.Vector{100, 100})
	if err != nil || !ok || string(snap) != "local-only" {
		t.Errorf("local entry after merge = %q (ok=%v err=%v)", snap, ok, err)
	}
}
