// Fault-injection tests for the spill path live in an external test
// package so they can use internal/faults (which imports knowledge).
package knowledge_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"freewayml/internal/faults"
	"freewayml/internal/knowledge"
	"freewayml/internal/linalg"
)

// fillStore preserves n entries with distinct distributions d_i = (i, i).
func fillStore(t *testing.T, s *knowledge.Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		d := linalg.Vector{float64(i), float64(i)}
		snap := []byte(fmt.Sprintf("snapshot-%d", i))
		if err := s.Preserve(d, snap, "short", i); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSpillWriteFailureRetainsEntryInMemory(t *testing.T) {
	fs := faults.NewFailingFS(nil)
	fs.FailWritesAfter = 0 // every spill write fails
	s, err := knowledge.NewStoreFS(4, t.TempDir(), fs)
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 6) // crosses capacity → spill attempts

	if s.SpillFailures() == 0 {
		t.Fatal("no spill failures recorded")
	}
	if s.SpilledCount() != 0 {
		t.Errorf("%d entries marked spilled despite failing disk", s.SpilledCount())
	}
	if s.Len() != 6 {
		t.Errorf("entries lost: %d of 6", s.Len())
	}
	// Every snapshot is still reachable.
	snap, _, ok, err := s.Match(linalg.Vector{0, 0})
	if err != nil || !ok {
		t.Fatalf("match after failed spills: %v %v", ok, err)
	}
	if string(snap) != "snapshot-0" {
		t.Errorf("wrong snapshot: %q", snap)
	}
}

func TestUnreadableSpillDegradesMatchToNextBest(t *testing.T) {
	dir := t.TempDir()
	s, err := knowledge.NewStore(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 6) // entries 0,1 spill to disk
	if s.SpilledCount() == 0 {
		t.Fatal("nothing spilled; test setup broken")
	}
	// Destroy every spill file: the oldest entries become unreadable.
	files, err := filepath.Glob(filepath.Join(dir, "kdg-*.bin"))
	if err != nil || len(files) == 0 {
		t.Fatalf("spill files: %v %v", files, err)
	}
	for _, f := range files {
		if err := os.Remove(f); err != nil {
			t.Fatal(err)
		}
	}

	// Query nearest to the destroyed entry 0: Match must skip it and serve
	// the nearest readable entry instead of failing.
	snap, _, ok, err := s.Match(linalg.Vector{0, 0})
	if err != nil {
		t.Fatalf("match failed instead of degrading: %v", err)
	}
	if !ok {
		t.Fatal("no match despite readable entries")
	}
	if !strings.HasPrefix(string(snap), "snapshot-") {
		t.Errorf("snapshot = %q", snap)
	}
	if s.LoadFailures() == 0 {
		t.Error("load failures not counted")
	}

	// Export likewise skips the unreadable entries with a count.
	entries, err := s.Export()
	if err != nil {
		t.Fatalf("export failed instead of degrading: %v", err)
	}
	if len(entries) != s.Len()-len(files) {
		t.Errorf("exported %d entries, want %d", len(entries), s.Len()-len(files))
	}
}

func TestSpillWritesAreAtomic(t *testing.T) {
	dir := t.TempDir()
	s, err := knowledge.NewStore(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 8)
	if s.SpilledCount() == 0 {
		t.Fatal("nothing spilled")
	}
	// No temp files may survive a successful spill.
	leftovers, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Errorf("temp files left behind: %v", leftovers)
	}
}

func TestImportSkipsInvalidEntries(t *testing.T) {
	s, err := knowledge.NewStore(8, "")
	if err != nil {
		t.Fatal(err)
	}
	entries := []knowledge.EntrySnapshot{
		{Distribution: linalg.Vector{1, 1}, Snapshot: []byte("good"), Source: "short"},
		{Distribution: nil, Snapshot: []byte("no distribution")},
		{Distribution: linalg.Vector{2, 2}, Snapshot: nil},
		{Distribution: linalg.Vector{3, 3}, Snapshot: []byte("also good"), Source: "long"},
	}
	skipped, err := s.Import(entries)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 2 {
		t.Errorf("skipped = %d, want 2", skipped)
	}
	if s.Len() != 2 {
		t.Errorf("imported = %d, want 2", s.Len())
	}
}
