// Package knowledge implements FreewayML's historical knowledge reuse
// (paper Sec. IV-D): preservation of (distribution, model-snapshot) pairs
// selected by the ASW's disorder against a threshold β, nearest-distribution
// matching when a severe shift occurs, and the KdgBuffer capacity policy of
// Sec. V-A3 — when the buffer fills, the older half is spilled to local
// storage and dropped from memory, with matching still covering spilled
// entries through an in-memory index of their distributions.
//
// Concurrency: the store is a read-mostly index — many streams Match
// against it while the training path occasionally Preserves. Mutations run
// under a write lock and publish an immutable match index (an
// atomic.Pointer swap); Match and NearestDistance read the published index
// without taking any lock, so concurrent matchers never serialize, not
// against each other and not against a preserve. Cached squared norms turn
// each distance evaluation into one dot product instead of a full
// subtract-square-sum pass, and spill-file reads (with their CRC
// verification) happen outside every lock.
package knowledge

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"path/filepath"
	"sync"
	"sync/atomic"

	"freewayml/internal/linalg"
)

// Entry is one preserved knowledge pair (d_i, k_i).
type Entry struct {
	// Distribution is d_i: the centroid of the data distribution the model
	// was trained on, in the detector's projected space. Treated as
	// immutable once stored: replacement swaps in a fresh clone, so a
	// published match index may safely alias it.
	Distribution linalg.Vector
	// Snapshot is k_i: the serialized model parameters. Immutable once
	// stored, like Distribution.
	Snapshot []byte
	// Source records which model was preserved ("long" or "short").
	Source string
	// Batch is the stream position at preservation time.
	Batch int

	spilled bool   // Snapshot lives on disk, not in memory
	path    string // spill file, when spilled
}

// matchEntry is one row of the published match index: the distribution, its
// cached squared norm, and either the in-memory snapshot or the spill path.
type matchEntry struct {
	dist   linalg.Vector
	sqnorm float64 // cached |dist|², so matching is a dot-product scan
	snap   []byte  // nil when the snapshot is spilled
	path   string  // spill file when snap is nil
	source string
	batch  int
}

// matchIndex is an immutable snapshot of the store's matchable state,
// published wholesale on every mutation and read lock-free.
//
// When the int8 match index is enabled (SetQuantizedMatch) and every
// distribution shares one dimensionality, q8 holds the per-entry absmax
// int8 quantization of the distributions (flat, row i at [i*dim, (i+1)*dim))
// with the per-entry scales in qScales. The match scan then runs over int8
// dot products to pick the candidate and recomputes the winner's distance
// exactly in float64 — the returned distance is always exact; only the
// argmin is approximate (ε-bounded by the differential test).
type matchIndex struct {
	entries []matchEntry
	q8      []int8
	qScales []float64
	qDim    int
}

// Store is the KdgBuffer. It is safe for concurrent use: the training path
// preserves knowledge while the inference path — possibly many streams at
// once under a shared store — matches it lock-free against the published
// index.
type Store struct {
	// mu serializes mutations (Preserve, Import, spilling) and guards
	// entries, memBytes, and nextID. The read path never takes it.
	mu       sync.RWMutex
	capacity int
	spillDir string // "" disables spilling (oldest entries are dropped instead)
	fs       FS
	entries  []Entry
	nextID   int
	memBytes int

	// idx is the immutable published match index (never nil after New).
	idx atomic.Pointer[matchIndex]

	// Fault counters: spill writes that failed (entry retained in memory)
	// and spilled snapshots that could not be read back (entry skipped).
	// Atomic so the lock-free match path can record load failures.
	spillFailures atomic.Int64
	loadFailures  atomic.Int64

	// quantMatch enables the int8 centroid match index (rebuilt on the next
	// publication after being flipped).
	quantMatch atomic.Bool

	// Usage counters for observability (see Counters).
	preserves    atomic.Int64
	replacements atomic.Int64
	matches      atomic.Int64
	matchHits    atomic.Int64
}

// NewStore returns a store holding at most capacity entries in memory.
// spillDir, when non-empty, receives the older half of the buffer each time
// capacity is reached (the directory is created if needed); when empty,
// the older half is discarded instead.
func NewStore(capacity int, spillDir string) (*Store, error) {
	return NewStoreFS(capacity, spillDir, OSFS{})
}

// NewStoreFS is NewStore with an explicit filesystem — the seam the
// fault-injection harness uses to exercise spill-path failures.
func NewStoreFS(capacity int, spillDir string, fs FS) (*Store, error) {
	if capacity < 1 {
		return nil, errors.New("knowledge: capacity must be >= 1")
	}
	if fs == nil {
		fs = OSFS{}
	}
	if spillDir != "" {
		if err := fs.MkdirAll(spillDir, 0o755); err != nil {
			return nil, fmt.Errorf("knowledge: create spill dir: %w", err)
		}
	}
	s := &Store{capacity: capacity, spillDir: spillDir, fs: fs}
	s.idx.Store(&matchIndex{})
	return s, nil
}

// publishLocked rebuilds the immutable match index from the current
// entries and atomically swaps it in. Callers hold mu for writing. The
// index aliases each entry's Distribution and Snapshot, which is safe
// because both are replaced wholesale (never mutated in place) — a reader
// on the old index keeps a consistent view until its scan completes.
func (s *Store) publishLocked() {
	ents := make([]matchEntry, len(s.entries))
	for i := range s.entries {
		e := &s.entries[i]
		ents[i] = matchEntry{
			dist:   e.Distribution,
			sqnorm: e.Distribution.Dot(e.Distribution),
			source: e.Source,
			batch:  e.Batch,
		}
		if e.spilled {
			ents[i].path = e.path
		} else {
			ents[i].snap = e.Snapshot
		}
	}
	idx := &matchIndex{entries: ents}
	if s.quantMatch.Load() {
		s.quantizeIndex(idx)
	}
	s.idx.Store(idx)
}

// SetQuantizedMatch enables or disables the int8 centroid match index. The
// index is (re)built on the next mutation's publication; flipping it on an
// idle store also republishes immediately so reads pick it up.
func (s *Store) SetQuantizedMatch(on bool) {
	s.quantMatch.Store(on)
	s.mu.Lock()
	s.publishLocked()
	s.mu.Unlock()
}

// QuantizedMatch reports whether the int8 centroid match index is enabled.
func (s *Store) QuantizedMatch() bool { return s.quantMatch.Load() }

// quantizeIndex builds the int8 view of the index's distributions. Mixed
// dimensionalities or non-finite centroids leave the index unquantized (the
// exact scan still works); an all-or-nothing build keeps the scan branchless.
func (s *Store) quantizeIndex(idx *matchIndex) {
	n := len(idx.entries)
	if n == 0 {
		return
	}
	dim := len(idx.entries[0].dist)
	for i := range idx.entries {
		if len(idx.entries[i].dist) != dim {
			return
		}
	}
	q8 := make([]int8, n*dim)
	scales := make([]float64, n)
	for i := range idx.entries {
		sc, err := linalg.QuantizeVec64(q8[i*dim:(i+1)*dim], idx.entries[i].dist)
		if err != nil {
			return
		}
		scales[i] = sc
	}
	idx.q8, idx.qScales, idx.qDim = q8, scales, dim
}

// quantArgmin scans the int8 index for the entry minimizing the approximate
// score |d_i|² - 2·y·d_i, skipping demoted entries. qy/qscale are the
// quantized query. Returns -1 when everything is skipped.
func (idx *matchIndex) quantArgmin(qy []int8, qscale float64, skipped []bool) int {
	best := -1
	bestScore := math.Inf(1)
	for i := range idx.entries {
		if skipped != nil && skipped[i] {
			continue
		}
		dot := float64(linalg.Dot8(qy, idx.q8[i*idx.qDim:(i+1)*idx.qDim]))
		score := idx.entries[i].sqnorm - 2*qscale*idx.qScales[i]*dot
		if score < bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// Preserve stores a knowledge pair. When the in-memory count reaches
// capacity, the older half is spilled to disk (or dropped without a spill
// directory).
func (s *Store) Preserve(dist linalg.Vector, snapshot []byte, source string, batch int) error {
	return s.PreserveOrReplace(dist, snapshot, source, batch, 0)
}

// PreserveOrReplace stores a knowledge pair, but when an existing entry's
// distribution lies within radius of the new one — the same regime — that
// entry is overwritten in place instead: the mapping d_i → k_i should hold
// the freshest knowledge for each distribution, or an early, barely-trained
// snapshot could shadow a mature one forever. radius 0 always appends.
func (s *Store) PreserveOrReplace(dist linalg.Vector, snapshot []byte, source string, batch int, radius float64) error {
	if len(dist) == 0 {
		return errors.New("knowledge: empty distribution")
	}
	if len(snapshot) == 0 {
		return errors.New("knowledge: empty snapshot")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.publishLocked()

	if radius > 0 {
		best := -1
		bestD := radius
		for i := range s.entries {
			if d := dist.Distance(s.entries[i].Distribution); d <= bestD {
				best, bestD = i, d
			}
		}
		if best >= 0 {
			s.replacements.Add(1)
			e := &s.entries[best]
			if e.spilled {
				_ = s.fs.Remove(e.path)
				e.spilled = false
				e.path = ""
			} else {
				s.memBytes -= len(e.Snapshot)
			}
			e.Distribution = dist.Clone()
			e.Snapshot = append([]byte(nil), snapshot...)
			e.Source = source
			e.Batch = batch
			s.memBytes += len(snapshot)
			return nil
		}
	}

	s.preserves.Add(1)
	s.entries = append(s.entries, Entry{
		Distribution: dist.Clone(),
		Snapshot:     append([]byte(nil), snapshot...),
		Source:       source,
		Batch:        batch,
	})
	s.memBytes += len(snapshot)
	if s.inMemoryCountLocked() >= s.capacity {
		return s.spillHalfLocked()
	}
	return nil
}

func (s *Store) inMemoryCountLocked() int {
	n := 0
	for _, e := range s.entries {
		if !e.spilled {
			n++
		}
	}
	return n
}

// spillHalfLocked moves the older half of the in-memory entries to disk
// (keeping their distributions in memory for matching), or drops them when
// no spill directory is configured. Spill files carry a small CRC-framed
// header and are committed atomically (temp + fsync + rename); an entry
// whose spill write fails stays in memory and is counted — a sick disk
// degrades memory bounds, never knowledge.
func (s *Store) spillHalfLocked() error {
	half := s.inMemoryCountLocked() / 2
	if half == 0 {
		return nil
	}
	kept := s.entries[:0]
	moved := 0
	for i := range s.entries {
		e := s.entries[i]
		if e.spilled || moved >= half {
			kept = append(kept, e)
			continue
		}
		moved++
		if s.spillDir == "" {
			s.memBytes -= len(e.Snapshot)
			continue // dropped
		}
		path := filepath.Join(s.spillDir, fmt.Sprintf("kdg-%06d.bin", s.nextID))
		s.nextID++
		if err := writeFileAtomic(s.fs, path, frameSpill(e.Snapshot), 0o644); err != nil {
			s.spillFailures.Add(1)
			kept = append(kept, e) // retained in memory instead
			continue
		}
		s.memBytes -= len(e.Snapshot)
		e.Snapshot = nil
		e.spilled = true
		e.path = path
		kept = append(kept, e)
	}
	s.entries = kept
	return nil
}

// spillMagic heads every spill file, followed by a CRC32-IEEE of the
// payload: gob happily mis-decodes flipped bits into silently wrong model
// weights, so bit rot must be detected before a snapshot is ever restored.
var spillMagic = [4]byte{'K', 'D', 'G', 'S'}

// spillHeaderLen is the framed prefix: magic (4 bytes) + CRC32 (4 bytes).
const spillHeaderLen = 8

// frameSpill prepends the magic + CRC header to a snapshot payload.
func frameSpill(data []byte) []byte {
	buf := make([]byte, spillHeaderLen+len(data))
	copy(buf[:4], spillMagic[:])
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(data))
	copy(buf[spillHeaderLen:], data)
	return buf
}

// readSpill loads a spill file and verifies its frame. It takes no store
// lock: checksum verification is pure CPU over a private buffer, and
// holding a lock across disk reads would stall every writer (and, before
// the published-index design, every other matcher) behind one slow file.
func readSpill(fsys FS, path string) ([]byte, error) {
	raw, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < spillHeaderLen || !bytes.Equal(raw[:4], spillMagic[:]) {
		return nil, fmt.Errorf("knowledge: spill file %s: bad header", filepath.Base(path))
	}
	if crc32.ChecksumIEEE(raw[spillHeaderLen:]) != binary.LittleEndian.Uint32(raw[4:8]) {
		return nil, fmt.Errorf("knowledge: spill file %s: CRC mismatch", filepath.Base(path))
	}
	return raw[spillHeaderLen:], nil
}

// Match finds the stored entry whose distribution is nearest to y and
// returns its snapshot and distance. The scan runs lock-free against the
// published index using cached norms: argmin |y - d_i| = argmin
// (|d_i|² - 2·y·d_i), one dot product per entry. Spilled snapshots are
// transparently loaded from disk and CRC-verified — outside any lock; an
// unreadable or corrupt spill file demotes that entry (skipped and counted)
// and the next-nearest entry is tried instead, so one bad file degrades
// match quality rather than failing knowledge reuse. ok is false when the
// store is empty or nothing is readable.
func (s *Store) Match(y linalg.Vector) (snapshot []byte, dist float64, ok bool, err error) {
	s.matches.Add(1)
	idx := s.idx.Load()
	n := len(idx.entries)
	if n == 0 {
		return nil, 0, false, nil
	}
	ysq := y.Dot(y)
	var qy []int8
	var qscale float64
	if idx.q8 != nil && idx.qDim == len(y) {
		qy = make([]int8, len(y))
		if sc, err := linalg.QuantizeVec64(qy, y); err == nil {
			qscale = sc
		} else {
			qy = nil // non-finite query: exact scan handles it
		}
	}
	var skipped []bool // allocated only after the first demotion
	for {
		best := -1
		bestScore := math.Inf(1)
		if qy != nil {
			// int8 scan picks the candidate; its exact score is recomputed
			// below so the returned distance carries no quantization error.
			if best = idx.quantArgmin(qy, qscale, skipped); best >= 0 {
				e := &idx.entries[best]
				bestScore = e.sqnorm - 2*y.Dot(e.dist)
			}
		} else {
			for i := range idx.entries {
				if skipped != nil && skipped[i] {
					continue
				}
				e := &idx.entries[i]
				// score = |d_i|² - 2·y·d_i; |y - d_i|² = |y|² + score.
				if score := e.sqnorm - 2*y.Dot(e.dist); score < bestScore {
					best, bestScore = i, score
				}
			}
		}
		if best < 0 {
			return nil, 0, false, nil
		}
		d2 := ysq + bestScore
		if d2 < 0 {
			d2 = 0 // float cancellation for a near-exact match
		}
		e := &idx.entries[best]
		if e.snap != nil {
			s.matchHits.Add(1)
			return e.snap, math.Sqrt(d2), true, nil
		}
		data, err := readSpill(s.fs, e.path)
		if err != nil {
			s.loadFailures.Add(1)
			if skipped == nil {
				skipped = make([]bool, n)
			}
			skipped[best] = true
			continue
		}
		s.matchHits.Add(1)
		return data, math.Sqrt(d2), true, nil
	}
}

// NearestDistance returns the distance from y to the closest stored
// distribution (+Inf when empty), without loading any snapshot — the cheap
// check the strategy selector runs during pattern detection. Lock-free,
// like Match.
func (s *Store) NearestDistance(y linalg.Vector) float64 {
	idx := s.idx.Load()
	if len(idx.entries) == 0 {
		return math.Inf(1)
	}
	ysq := y.Dot(y)
	bestScore := math.Inf(1)
	if idx.q8 != nil && idx.qDim == len(y) {
		qy := make([]int8, len(y))
		if sc, err := linalg.QuantizeVec64(qy, y); err == nil {
			if best := idx.quantArgmin(qy, sc, nil); best >= 0 {
				e := &idx.entries[best]
				bestScore = e.sqnorm - 2*y.Dot(e.dist)
			}
			d2 := ysq + bestScore
			if d2 < 0 {
				d2 = 0
			}
			return math.Sqrt(d2)
		}
	}
	for i := range idx.entries {
		e := &idx.entries[i]
		if score := e.sqnorm - 2*y.Dot(e.dist); score < bestScore {
			bestScore = score
		}
	}
	d2 := ysq + bestScore
	if d2 < 0 {
		d2 = 0
	}
	return math.Sqrt(d2)
}

// Len returns the total number of entries (in memory + spilled).
func (s *Store) Len() int {
	return len(s.idx.Load().entries)
}

// MemoryBytes returns the bytes of snapshot data held in memory — the
// Table IV space-overhead measurement.
func (s *Store) MemoryBytes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.memBytes
}

// SpilledCount returns how many entries live on disk.
func (s *Store) SpilledCount() int {
	idx := s.idx.Load()
	n := 0
	for i := range idx.entries {
		if idx.entries[i].snap == nil {
			n++
		}
	}
	return n
}

// EntrySnapshot is the serializable form of a stored knowledge pair.
type EntrySnapshot struct {
	Distribution linalg.Vector
	Snapshot     []byte
	Source       string
	Batch        int
}

// Export returns every entry with its snapshot materialized (spilled
// entries are read back from disk), for checkpointing. File reads and CRC
// verification run against the published index without holding the store
// lock, so a checkpoint of a large spilled store never stalls preserves or
// matches. An unreadable spill file loses only that entry: it is skipped
// and counted, so one corrupt file cannot block a checkpoint of everything
// else.
func (s *Store) Export() ([]EntrySnapshot, error) {
	idx := s.idx.Load()
	out := make([]EntrySnapshot, 0, len(idx.entries))
	for i := range idx.entries {
		e := &idx.entries[i]
		snap := e.snap
		if snap == nil {
			data, err := readSpill(s.fs, e.path)
			if err != nil {
				s.loadFailures.Add(1)
				continue
			}
			snap = data
		}
		out = append(out, EntrySnapshot{
			Distribution: e.dist.Clone(),
			Snapshot:     append([]byte(nil), snap...),
			Source:       e.source,
			Batch:        e.batch,
		})
	}
	return out, nil
}

// Import replaces the store's contents with the exported entries (all held
// in memory; the next capacity overflow re-spills as usual). Individually
// invalid entries — the degraded-restore case, e.g. a checkpoint whose
// knowledge section was written while a spill file was corrupt — are
// skipped and reported via the returned count instead of failing the whole
// restore.
func (s *Store) Import(entries []EntrySnapshot) (skipped int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.publishLocked()
	s.entries = s.entries[:0]
	s.memBytes = 0
	for _, e := range entries {
		if len(e.Distribution) == 0 || len(e.Snapshot) == 0 {
			skipped++
			continue
		}
		s.entries = append(s.entries, Entry{
			Distribution: e.Distribution.Clone(),
			Snapshot:     append([]byte(nil), e.Snapshot...),
			Source:       e.Source,
			Batch:        e.Batch,
		})
		s.memBytes += len(e.Snapshot)
	}
	return skipped, nil
}

// Merge folds exported entries from a peer store into this one — the
// anti-entropy half of cross-worker knowledge replication: unlike Import it
// never discards local state. An incoming entry whose distribution lies
// within radius of an existing one is the same regime; the fresher snapshot
// (higher Batch) wins, in place. Anything farther than radius from every
// local entry is appended (spilling past capacity as usual). Invalid
// entries are skipped and counted. Merge is idempotent: merging the same
// export twice changes nothing on the second pass (radius >= 0 always
// matches an entry against its own earlier copy at distance 0).
func (s *Store) Merge(entries []EntrySnapshot, radius float64) (added, replaced, skipped int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.publishLocked()
	for _, in := range entries {
		if len(in.Distribution) == 0 || len(in.Snapshot) == 0 {
			skipped++
			continue
		}
		best := -1
		bestD := radius
		for i := range s.entries {
			if len(s.entries[i].Distribution) != len(in.Distribution) {
				continue
			}
			if d := in.Distribution.Distance(s.entries[i].Distribution); d <= bestD {
				best, bestD = i, d
			}
		}
		if best >= 0 {
			e := &s.entries[best]
			if in.Batch <= e.Batch {
				skipped++ // ours is at least as fresh
				continue
			}
			replaced++
			s.replacements.Add(1)
			if e.spilled {
				_ = s.fs.Remove(e.path)
				e.spilled = false
				e.path = ""
			} else {
				s.memBytes -= len(e.Snapshot)
			}
			e.Distribution = in.Distribution.Clone()
			e.Snapshot = append([]byte(nil), in.Snapshot...)
			e.Source = in.Source
			e.Batch = in.Batch
			s.memBytes += len(in.Snapshot)
			continue
		}
		added++
		s.preserves.Add(1)
		s.entries = append(s.entries, Entry{
			Distribution: in.Distribution.Clone(),
			Snapshot:     append([]byte(nil), in.Snapshot...),
			Source:       in.Source,
			Batch:        in.Batch,
		})
		s.memBytes += len(in.Snapshot)
		if s.inMemoryCountLocked() >= s.capacity {
			if serr := s.spillHalfLocked(); serr != nil && err == nil {
				err = serr
			}
		}
	}
	return added, replaced, skipped, err
}

// Counters are the store's cumulative usage counts for observability.
type Counters struct {
	// Preserves counts appended entries; Replacements counts same-regime
	// in-place overwrites (PreserveOrReplace within radius).
	Preserves    int
	Replacements int
	// Matches counts Match calls; MatchHits those that returned a snapshot.
	Matches   int
	MatchHits int
}

// Counters returns the store's cumulative usage counts.
func (s *Store) Counters() Counters {
	return Counters{
		Preserves:    int(s.preserves.Load()),
		Replacements: int(s.replacements.Load()),
		Matches:      int(s.matches.Load()),
		MatchHits:    int(s.matchHits.Load()),
	}
}

// SpillFailures counts spill writes that failed; the affected entries were
// retained in memory instead of spilled.
func (s *Store) SpillFailures() int {
	return int(s.spillFailures.Load())
}

// LoadFailures counts spilled snapshots that could not be read back; the
// affected entries were skipped by Match or Export.
func (s *Store) LoadFailures() int {
	return int(s.loadFailures.Load())
}

// Policy decides which model's knowledge to preserve when an ASW closes
// (paper Sec. IV-D1): disorder above β means the window was localized and
// the stable long-granularity model is preserved; disorder below β means an
// orderly directional shift, where the short-granularity model holds the
// most recent (post-shift) distribution and is preserved as well.
type Policy struct {
	// Beta is the normalized-disorder threshold β.
	Beta float64
}

// Decision describes which snapshots to preserve.
type Decision struct {
	SaveLong  bool
	SaveShort bool
}

// Decide applies the β rule to a window's normalized disorder.
func (p Policy) Decide(disorder float64) Decision {
	if disorder >= p.Beta {
		return Decision{SaveLong: true}
	}
	return Decision{SaveLong: true, SaveShort: true}
}
