// Package knowledge implements FreewayML's historical knowledge reuse
// (paper Sec. IV-D): preservation of (distribution, model-snapshot) pairs
// selected by the ASW's disorder against a threshold β, nearest-distribution
// matching when a severe shift occurs, and the KdgBuffer capacity policy of
// Sec. V-A3 — when the buffer fills, the older half is spilled to local
// storage and dropped from memory, with matching still covering spilled
// entries through an in-memory index of their distributions.
package knowledge

import (
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"sync"

	"freewayml/internal/linalg"
)

// Entry is one preserved knowledge pair (d_i, k_i).
type Entry struct {
	// Distribution is d_i: the centroid of the data distribution the model
	// was trained on, in the detector's projected space.
	Distribution linalg.Vector
	// Snapshot is k_i: the serialized model parameters.
	Snapshot []byte
	// Source records which model was preserved ("long" or "short").
	Source string
	// Batch is the stream position at preservation time.
	Batch int

	spilled bool   // Snapshot lives on disk, not in memory
	path    string // spill file, when spilled
}

// Store is the KdgBuffer. It is safe for concurrent use: the training path
// preserves knowledge while the inference path matches it.
type Store struct {
	mu       sync.Mutex
	capacity int
	spillDir string // "" disables spilling (oldest entries are dropped instead)
	fs       FS
	entries  []Entry
	nextID   int
	memBytes int

	// Fault counters: spill writes that failed (entry retained in memory)
	// and spilled snapshots that could not be read back (entry skipped).
	spillFailures int
	loadFailures  int

	// Usage counters for observability (see Counters).
	preserves    int
	replacements int
	matches      int
	matchHits    int
}

// NewStore returns a store holding at most capacity entries in memory.
// spillDir, when non-empty, receives the older half of the buffer each time
// capacity is reached (the directory is created if needed); when empty,
// the older half is discarded instead.
func NewStore(capacity int, spillDir string) (*Store, error) {
	return NewStoreFS(capacity, spillDir, OSFS{})
}

// NewStoreFS is NewStore with an explicit filesystem — the seam the
// fault-injection harness uses to exercise spill-path failures.
func NewStoreFS(capacity int, spillDir string, fs FS) (*Store, error) {
	if capacity < 1 {
		return nil, errors.New("knowledge: capacity must be >= 1")
	}
	if fs == nil {
		fs = OSFS{}
	}
	if spillDir != "" {
		if err := fs.MkdirAll(spillDir, 0o755); err != nil {
			return nil, fmt.Errorf("knowledge: create spill dir: %w", err)
		}
	}
	return &Store{capacity: capacity, spillDir: spillDir, fs: fs}, nil
}

// Preserve stores a knowledge pair. When the in-memory count reaches
// capacity, the older half is spilled to disk (or dropped without a spill
// directory).
func (s *Store) Preserve(dist linalg.Vector, snapshot []byte, source string, batch int) error {
	return s.PreserveOrReplace(dist, snapshot, source, batch, 0)
}

// PreserveOrReplace stores a knowledge pair, but when an existing entry's
// distribution lies within radius of the new one — the same regime — that
// entry is overwritten in place instead: the mapping d_i → k_i should hold
// the freshest knowledge for each distribution, or an early, barely-trained
// snapshot could shadow a mature one forever. radius 0 always appends.
func (s *Store) PreserveOrReplace(dist linalg.Vector, snapshot []byte, source string, batch int, radius float64) error {
	if len(dist) == 0 {
		return errors.New("knowledge: empty distribution")
	}
	if len(snapshot) == 0 {
		return errors.New("knowledge: empty snapshot")
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	if radius > 0 {
		best := -1
		bestD := radius
		for i := range s.entries {
			if d := dist.Distance(s.entries[i].Distribution); d <= bestD {
				best, bestD = i, d
			}
		}
		if best >= 0 {
			s.replacements++
			e := &s.entries[best]
			if e.spilled {
				_ = s.fs.Remove(e.path)
				e.spilled = false
				e.path = ""
			} else {
				s.memBytes -= len(e.Snapshot)
			}
			e.Distribution = dist.Clone()
			e.Snapshot = append([]byte(nil), snapshot...)
			e.Source = source
			e.Batch = batch
			s.memBytes += len(snapshot)
			return nil
		}
	}

	s.preserves++
	s.entries = append(s.entries, Entry{
		Distribution: dist.Clone(),
		Snapshot:     append([]byte(nil), snapshot...),
		Source:       source,
		Batch:        batch,
	})
	s.memBytes += len(snapshot)
	if s.inMemoryCountLocked() >= s.capacity {
		return s.spillHalfLocked()
	}
	return nil
}

func (s *Store) inMemoryCountLocked() int {
	n := 0
	for _, e := range s.entries {
		if !e.spilled {
			n++
		}
	}
	return n
}

// spillHalfLocked moves the older half of the in-memory entries to disk
// (keeping their distributions in memory for matching), or drops them when
// no spill directory is configured. Spill files are committed atomically
// (temp + fsync + rename); an entry whose spill write fails stays in memory
// and is counted — a sick disk degrades memory bounds, never knowledge.
func (s *Store) spillHalfLocked() error {
	half := s.inMemoryCountLocked() / 2
	if half == 0 {
		return nil
	}
	kept := s.entries[:0]
	moved := 0
	for i := range s.entries {
		e := s.entries[i]
		if e.spilled || moved >= half {
			kept = append(kept, e)
			continue
		}
		moved++
		if s.spillDir == "" {
			s.memBytes -= len(e.Snapshot)
			continue // dropped
		}
		path := filepath.Join(s.spillDir, fmt.Sprintf("kdg-%06d.bin", s.nextID))
		s.nextID++
		if err := writeFileAtomic(s.fs, path, e.Snapshot, 0o644); err != nil {
			s.spillFailures++
			kept = append(kept, e) // retained in memory instead
			continue
		}
		s.memBytes -= len(e.Snapshot)
		e.Snapshot = nil
		e.spilled = true
		e.path = path
		kept = append(kept, e)
	}
	s.entries = kept
	return nil
}

// Match finds the stored entry whose distribution is nearest to y and
// returns its snapshot and distance. Spilled snapshots are transparently
// loaded from disk; an unreadable spill file demotes that entry (skipped
// and counted) and the next-nearest entry is tried instead, so one corrupt
// file degrades match quality rather than failing knowledge reuse. ok is
// false when the store is empty or nothing is readable.
func (s *Store) Match(y linalg.Vector) (snapshot []byte, dist float64, ok bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.matches++
	skipped := make([]bool, len(s.entries))
	for {
		best := -1
		bestD := math.Inf(1)
		for i := range s.entries {
			if skipped[i] {
				continue
			}
			if d := y.Distance(s.entries[i].Distribution); d < bestD {
				best, bestD = i, d
			}
		}
		if best < 0 {
			return nil, 0, false, nil
		}
		e := &s.entries[best]
		if !e.spilled {
			s.matchHits++
			return e.Snapshot, bestD, true, nil
		}
		data, err := s.fs.ReadFile(e.path)
		if err != nil {
			s.loadFailures++
			skipped[best] = true
			continue
		}
		s.matchHits++
		return data, bestD, true, nil
	}
}

// NearestDistance returns the distance from y to the closest stored
// distribution (+Inf when empty), without loading any snapshot — the cheap
// check the strategy selector runs during pattern detection.
func (s *Store) NearestDistance(y linalg.Vector) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	best := math.Inf(1)
	for i := range s.entries {
		if d := y.Distance(s.entries[i].Distribution); d < best {
			best = d
		}
	}
	return best
}

// Len returns the total number of entries (in memory + spilled).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// MemoryBytes returns the bytes of snapshot data held in memory — the
// Table IV space-overhead measurement.
func (s *Store) MemoryBytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.memBytes
}

// SpilledCount returns how many entries live on disk.
func (s *Store) SpilledCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.entries {
		if e.spilled {
			n++
		}
	}
	return n
}

// EntrySnapshot is the serializable form of a stored knowledge pair.
type EntrySnapshot struct {
	Distribution linalg.Vector
	Snapshot     []byte
	Source       string
	Batch        int
}

// Export returns every entry with its snapshot materialized (spilled
// entries are read back from disk), for checkpointing. An unreadable spill
// file loses only that entry: it is skipped and counted, so one corrupt
// file cannot block a checkpoint of everything else.
func (s *Store) Export() ([]EntrySnapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]EntrySnapshot, 0, len(s.entries))
	for i := range s.entries {
		e := &s.entries[i]
		snap := e.Snapshot
		if e.spilled {
			data, err := s.fs.ReadFile(e.path)
			if err != nil {
				s.loadFailures++
				continue
			}
			snap = data
		}
		out = append(out, EntrySnapshot{
			Distribution: e.Distribution.Clone(),
			Snapshot:     append([]byte(nil), snap...),
			Source:       e.Source,
			Batch:        e.Batch,
		})
	}
	return out, nil
}

// Import replaces the store's contents with the exported entries (all held
// in memory; the next capacity overflow re-spills as usual). Individually
// invalid entries — the degraded-restore case, e.g. a checkpoint whose
// knowledge section was written while a spill file was corrupt — are
// skipped and reported via the returned count instead of failing the whole
// restore.
func (s *Store) Import(entries []EntrySnapshot) (skipped int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = s.entries[:0]
	s.memBytes = 0
	for _, e := range entries {
		if len(e.Distribution) == 0 || len(e.Snapshot) == 0 {
			skipped++
			continue
		}
		s.entries = append(s.entries, Entry{
			Distribution: e.Distribution.Clone(),
			Snapshot:     append([]byte(nil), e.Snapshot...),
			Source:       e.Source,
			Batch:        e.Batch,
		})
		s.memBytes += len(e.Snapshot)
	}
	return skipped, nil
}

// Counters are the store's cumulative usage counts for observability.
type Counters struct {
	// Preserves counts appended entries; Replacements counts same-regime
	// in-place overwrites (PreserveOrReplace within radius).
	Preserves    int
	Replacements int
	// Matches counts Match calls; MatchHits those that returned a snapshot.
	Matches   int
	MatchHits int
}

// Counters returns the store's cumulative usage counts.
func (s *Store) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Counters{
		Preserves:    s.preserves,
		Replacements: s.replacements,
		Matches:      s.matches,
		MatchHits:    s.matchHits,
	}
}

// SpillFailures counts spill writes that failed; the affected entries were
// retained in memory instead of spilled.
func (s *Store) SpillFailures() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spillFailures
}

// LoadFailures counts spilled snapshots that could not be read back; the
// affected entries were skipped by Match or Export.
func (s *Store) LoadFailures() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loadFailures
}

// Policy decides which model's knowledge to preserve when an ASW closes
// (paper Sec. IV-D1): disorder above β means the window was localized and
// the stable long-granularity model is preserved; disorder below β means an
// orderly directional shift, where the short-granularity model holds the
// most recent (post-shift) distribution and is preserved as well.
type Policy struct {
	// Beta is the normalized-disorder threshold β.
	Beta float64
}

// Decision describes which snapshots to preserve.
type Decision struct {
	SaveLong  bool
	SaveShort bool
}

// Decide applies the β rule to a window's normalized disorder.
func (p Policy) Decide(disorder float64) Decision {
	if disorder >= p.Beta {
		return Decision{SaveLong: true}
	}
	return Decision{SaveLong: true, SaveShort: true}
}
