package knowledge

import (
	"math"
	"sync"
	"testing"

	"freewayml/internal/linalg"
)

func TestNewStoreValidation(t *testing.T) {
	if _, err := NewStore(0, ""); err == nil {
		t.Error("capacity 0 should error")
	}
	if _, err := NewStore(4, t.TempDir()); err != nil {
		t.Errorf("valid store: %v", err)
	}
}

func TestPreserveValidation(t *testing.T) {
	s, _ := NewStore(4, "")
	if err := s.Preserve(nil, []byte("x"), "long", 0); err == nil {
		t.Error("empty distribution should error")
	}
	if err := s.Preserve(linalg.Vector{1}, nil, "long", 0); err == nil {
		t.Error("empty snapshot should error")
	}
}

func TestMatchNearest(t *testing.T) {
	s, _ := NewStore(10, "")
	if err := s.Preserve(linalg.Vector{0, 0}, []byte("origin"), "long", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Preserve(linalg.Vector{10, 0}, []byte("east"), "long", 2); err != nil {
		t.Fatal(err)
	}
	snap, d, ok, err := s.Match(linalg.Vector{9, 1})
	if err != nil || !ok {
		t.Fatalf("Match: %v ok=%v", err, ok)
	}
	if string(snap) != "east" {
		t.Errorf("matched %q, want east", snap)
	}
	if math.Abs(d-math.Sqrt(2)) > 1e-9 {
		t.Errorf("distance = %v", d)
	}
}

func TestMatchEmptyStore(t *testing.T) {
	s, _ := NewStore(4, "")
	_, _, ok, err := s.Match(linalg.Vector{0})
	if err != nil || ok {
		t.Errorf("empty store Match ok=%v err=%v", ok, err)
	}
	if d := s.NearestDistance(linalg.Vector{0}); !math.IsInf(d, 1) {
		t.Errorf("NearestDistance on empty = %v", d)
	}
}

func TestSpillHalfToDisk(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		v := linalg.Vector{float64(i * 10), 0}
		if err := s.Preserve(v, []byte{byte(i), 1, 2, 3}, "long", i); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.SpilledCount() != 2 {
		t.Fatalf("SpilledCount = %d, want 2 (older half)", s.SpilledCount())
	}
	// Matching a spilled entry must transparently load it from disk.
	snap, _, ok, err := s.Match(linalg.Vector{0, 0})
	if err != nil || !ok {
		t.Fatalf("Match spilled: %v ok=%v", err, ok)
	}
	if snap[0] != 0 {
		t.Errorf("matched wrong snapshot: %v", snap)
	}
	// Memory accounting: only in-memory snapshots counted.
	if s.MemoryBytes() != 2*4 {
		t.Errorf("MemoryBytes = %d, want 8", s.MemoryBytes())
	}
}

func TestDropHalfWithoutSpillDir(t *testing.T) {
	s, _ := NewStore(4, "")
	for i := 0; i < 4; i++ {
		v := linalg.Vector{float64(i * 10), 0}
		if err := s.Preserve(v, []byte{byte(i)}, "long", i); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 after dropping older half", s.Len())
	}
	// The dropped entries must not match.
	snap, _, ok, err := s.Match(linalg.Vector{0, 0})
	if err != nil || !ok {
		t.Fatal(err)
	}
	if snap[0] != 2 {
		t.Errorf("matched %v, want entry 2 (nearest survivor)", snap)
	}
}

func TestMemoryBytesAccounting(t *testing.T) {
	s, _ := NewStore(100, "")
	if s.MemoryBytes() != 0 {
		t.Error("fresh store should report 0 bytes")
	}
	if err := s.Preserve(linalg.Vector{1}, make([]byte, 100), "long", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Preserve(linalg.Vector{2}, make([]byte, 50), "short", 1); err != nil {
		t.Fatal(err)
	}
	if s.MemoryBytes() != 150 {
		t.Errorf("MemoryBytes = %d, want 150", s.MemoryBytes())
	}
}

func TestConcurrentPreserveAndMatch(t *testing.T) {
	s, _ := NewStore(64, t.TempDir())
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				v := linalg.Vector{float64(g), float64(i)}
				if err := s.Preserve(v, []byte{1, 2, 3}, "long", i); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, _, _, err := s.Match(linalg.Vector{1, 1}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestPolicyDecide(t *testing.T) {
	p := Policy{Beta: 0.5}
	high := p.Decide(0.8)
	if !high.SaveLong || high.SaveShort {
		t.Errorf("high disorder decision = %+v, want long only", high)
	}
	low := p.Decide(0.2)
	if !low.SaveLong || !low.SaveShort {
		t.Errorf("low disorder decision = %+v, want both", low)
	}
	edge := p.Decide(0.5)
	if !edge.SaveLong || edge.SaveShort {
		t.Errorf("boundary decision = %+v, want long only", edge)
	}
}
