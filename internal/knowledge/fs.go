package knowledge

import (
	"fmt"
	"os"
	"path/filepath"
)

// FS is the filesystem surface the store's spill path uses. It exists so
// the fault-injection harness can stand in a failing filesystem and prove
// the store degrades instead of corrupting or losing knowledge.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	WriteFile(name string, data []byte, perm os.FileMode) error
	ReadFile(name string) ([]byte, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
}

// OSFS is the real filesystem. Unlike os.WriteFile it fsyncs before close,
// so a rename over it is a durable commit point.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// WriteFile writes, fsyncs, and closes the file.
func (OSFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile implements FS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// writeFileAtomic commits data to path via a temp file in the same
// directory plus a rename, so a crash mid-write leaves either the old file
// or the new one — never a truncated hybrid.
func writeFileAtomic(fs FS, path string, data []byte, perm os.FileMode) error {
	tmp := path + ".tmp"
	if err := fs.WriteFile(tmp, data, perm); err != nil {
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		_ = fs.Remove(tmp)
		return fmt.Errorf("commit %s: %w", filepath.Base(path), err)
	}
	return nil
}
