package knowledge

import (
	"math"
	"math/rand"
	"testing"

	"freewayml/internal/linalg"
)

// quantStore builds a store with n random centroids of the given dim.
func quantStore(t *testing.T, rng *rand.Rand, n, dim int) (*Store, []linalg.Vector) {
	t.Helper()
	s, err := NewStore(n+1, "")
	if err != nil {
		t.Fatal(err)
	}
	cents := make([]linalg.Vector, n)
	for i := range cents {
		c := make(linalg.Vector, dim)
		for j := range c {
			c[j] = rng.NormFloat64()
		}
		cents[i] = c
		if err := s.Preserve(c, []byte{byte(i), 1}, "long", i); err != nil {
			t.Fatal(err)
		}
	}
	return s, cents
}

// TestQuantizedMatchSeparated pins that on well-separated centroids the int8
// scan picks exactly the entry the exact scan picks, and returns the exact
// distance (the winner's distance is always recomputed in float64).
func TestQuantizedMatchSeparated(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dim := 8
	s, err := NewStore(16, "")
	if err != nil {
		t.Fatal(err)
	}
	// Centroids on scaled axis directions: pairwise distances are huge
	// relative to int8 quantization error.
	for i := 0; i < 6; i++ {
		c := make(linalg.Vector, dim)
		c[i] = 10 * float64(i+1)
		if err := s.Preserve(c, []byte{byte(i), 1}, "long", i); err != nil {
			t.Fatal(err)
		}
	}
	s.SetQuantizedMatch(true)
	for trial := 0; trial < 40; trial++ {
		y := make(linalg.Vector, dim)
		for j := range y {
			y[j] = rng.NormFloat64()
		}
		axis := rng.Intn(6)
		y[axis] += 10 * float64(axis+1)

		snapQ, distQ, okQ, err := s.Match(y)
		if err != nil || !okQ {
			t.Fatalf("quantized match: ok=%v err=%v", okQ, err)
		}
		s.SetQuantizedMatch(false)
		snapE, distE, okE, err := s.Match(y)
		if err != nil || !okE {
			t.Fatalf("exact match: ok=%v err=%v", okE, err)
		}
		s.SetQuantizedMatch(true)
		if snapQ[0] != snapE[0] {
			t.Fatalf("trial %d: quantized picked entry %d, exact picked %d", trial, snapQ[0], snapE[0])
		}
		if math.Abs(distQ-distE) > 1e-12 {
			t.Fatalf("trial %d: quantized distance %g, exact %g", trial, distQ, distE)
		}
	}
}

// TestQuantizedMatchEpsilonBound bounds the int8 argmin against the exact
// scan on adversarially close random centroids: the quantized winner's exact
// distance may exceed the true minimum only by the quantization error of the
// score, derived from the published scales.
func TestQuantizedMatchEpsilonBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dim := 16
	s, cents := quantStore(t, rng, 12, dim)
	s.SetQuantizedMatch(true)

	for trial := 0; trial < 60; trial++ {
		y := make(linalg.Vector, dim)
		for j := range y {
			y[j] = rng.NormFloat64()
		}
		dQ := s.NearestDistance(y)
		s.SetQuantizedMatch(false)
		dE := s.NearestDistance(y)
		s.SetQuantizedMatch(true)

		if dQ < dE-1e-9 {
			t.Fatalf("trial %d: quantized nearest %g below exact minimum %g", trial, dQ, dE)
		}
		// Score error bound per entry: quantizing v to step σ perturbs each
		// element by ≤ σ/2, so |y·d − ŷ·d̂| ≤ dim·(σy/2·|d|∞ + σd/2·|y|∞ +
		// σy·σd/4); the scan score carries twice that.
		var yMax float64
		for _, v := range y {
			if a := math.Abs(v); a > yMax {
				yMax = a
			}
		}
		sy := yMax / 127
		var worst float64
		for _, c := range cents {
			var cMax float64
			for _, v := range c {
				if a := math.Abs(v); a > cMax {
					cMax = a
				}
			}
			sd := cMax / 127
			if e := float64(dim) * (sy/2*cMax + sd/2*yMax + sy*sd/4); e > worst {
				worst = e
			}
		}
		bound := math.Sqrt(dE*dE + 4*worst)
		if dQ > bound+1e-9 {
			t.Fatalf("trial %d: quantized nearest %g exceeds ε bound %g (exact %g)", trial, dQ, bound, dE)
		}
	}
}

// TestQuantizedMatchFallbacks pins the unquantized fallbacks: mixed centroid
// dimensionalities and dimension-mismatched queries must take the exact scan.
func TestQuantizedMatchFallbacks(t *testing.T) {
	s, err := NewStore(8, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Preserve(linalg.Vector{1, 2, 3}, []byte{1}, "long", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Preserve(linalg.Vector{4, 5}, []byte{2}, "long", 1); err != nil {
		t.Fatal(err)
	}
	s.SetQuantizedMatch(true)
	if idx := s.idx.Load(); idx.q8 != nil {
		t.Fatal("mixed-dim index built a quantized view")
	}

	s2, _ := quantStore(t, rand.New(rand.NewSource(3)), 4, 6)
	s2.SetQuantizedMatch(true)
	if idx := s2.idx.Load(); idx.q8 == nil {
		t.Fatal("uniform-dim index skipped the quantized view")
	}
	s2.SetQuantizedMatch(false)
	if idx := s2.idx.Load(); idx.q8 != nil {
		t.Fatal("disabling quantized match left the int8 view published")
	}
}
