// Concurrency and spill-frame integrity tests for the lock-free match
// path. External package, like faults_test.go, so the store is exercised
// through its public API only.
package knowledge_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"freewayml/internal/knowledge"
	"freewayml/internal/linalg"
)

// TestConcurrentMatchUnderMutation hammers the published-index design:
// many goroutines Match and NearestDistance lock-free while writers
// Preserve (forcing spills past capacity), PreserveOrReplace (overwriting
// one regime in place), and periodically Export+Import (wholesale index
// replacement). Run under -race this pins the invariant that mutation
// publishes a fresh immutable index instead of editing what readers scan;
// the functional assertions check that no reader ever observes a torn or
// half-written snapshot, and that at quiescence Match is exact again.
func TestConcurrentMatchUnderMutation(t *testing.T) {
	s, err := knowledge.NewStore(8, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Seed so readers always have something to match against.
	fillStore(t, s, 4)

	const writerOps = 150
	stop := make(chan struct{})
	var writers, readers sync.WaitGroup

	// Appender: distinct distributions, crossing capacity repeatedly so the
	// spill path (and spill-file reads on the match side) run during the race.
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; i < writerOps; i++ {
			d := linalg.Vector{float64(1000 + i), 0}
			snap := []byte(fmt.Sprintf("snap:%d", 1000+i))
			if err := s.Preserve(d, snap, "long", i); err != nil {
				t.Errorf("preserve %d: %v", i, err)
				return
			}
		}
	}()

	// Replacer: every write lands within radius of the same regime, so one
	// entry is overwritten in place over and over. Readers on an old index
	// alias the replaced entry's former Distribution/Snapshot — the race
	// detector verifies replacement swaps in clones rather than mutating.
	writers.Add(1)
	go func() {
		defer writers.Done()
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < writerOps; i++ {
			d := linalg.Vector{5 + rng.Float64()*0.2, 5 + rng.Float64()*0.2}
			snap := []byte(fmt.Sprintf("snap:regime-%d", i))
			if err := s.PreserveOrReplace(d, snap, "short", i, 1.0); err != nil {
				t.Errorf("replace %d: %v", i, err)
				return
			}
		}
	}()

	// Churner: wholesale index replacement racing the scans above.
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; i < 10; i++ {
			exp, err := s.Export()
			if err != nil {
				t.Errorf("export: %v", err)
				return
			}
			if _, err := s.Import(exp); err != nil {
				t.Errorf("import: %v", err)
				return
			}
		}
	}()

	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				y := linalg.Vector{rng.Float64() * 1200, rng.Float64() * 6}
				snap, _, ok, err := s.Match(y)
				if err != nil {
					t.Errorf("match: %v", err)
					return
				}
				if ok && !strings.HasPrefix(string(snap), "snap") {
					t.Errorf("torn or foreign snapshot: %q", snap)
					return
				}
				_ = s.NearestDistance(y)
				_ = s.Len()
				_ = s.SpilledCount()
				_ = s.Counters()
				_ = s.MemoryBytes()
			}
		}(r)
	}

	writers.Wait()
	close(stop)
	readers.Wait()

	// Quiescence: a sentinel far from everything must be an exact match.
	sentinel := linalg.Vector{-50, -50}
	if err := s.Preserve(sentinel, []byte("snap:sentinel"), "long", 0); err != nil {
		t.Fatal(err)
	}
	snap, dist, ok, err := s.Match(sentinel)
	if err != nil || !ok {
		t.Fatalf("sentinel match: ok=%v err=%v", ok, err)
	}
	if string(snap) != "snap:sentinel" {
		t.Errorf("sentinel snapshot = %q", snap)
	}
	if dist > 1e-9 {
		t.Errorf("sentinel distance = %g, want 0", dist)
	}
	if d := s.NearestDistance(sentinel); d > 1e-9 {
		t.Errorf("NearestDistance(sentinel) = %g, want 0", d)
	}
}

// TestCorruptSpillFrameDetectedByCRC pins the spill-frame format: a spill
// file that is still readable but whose payload bits flipped must fail the
// CRC check — gob would happily mis-decode flipped bits into silently
// wrong model weights — demoting that entry so Match serves the
// next-nearest readable snapshot, never the corrupt one. A mangled magic
// header is likewise rejected before the CRC is even consulted.
func TestCorruptSpillFrameDetectedByCRC(t *testing.T) {
	dir := t.TempDir()
	s, err := knowledge.NewStore(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 6) // entries 0..3 spill, 4..5 stay in memory
	files, err := filepath.Glob(filepath.Join(dir, "kdg-*.bin"))
	if err != nil || len(files) < 2 {
		t.Fatalf("spill files: %v %v", files, err)
	}

	// Flip one payload byte in the oldest spill file (entry 0). The file
	// stays present, well-sized, and magic-intact — only the CRC can tell.
	corruptByte(t, files[0], 8) // first payload byte, just past the header

	snap, _, ok, err := s.Match(linalg.Vector{0, 0})
	if err != nil || !ok {
		t.Fatalf("match after corruption: ok=%v err=%v", ok, err)
	}
	if string(snap) == "snapshot-0" {
		t.Fatal("corrupt snapshot served despite CRC mismatch")
	}
	if string(snap) != "snapshot-1" {
		t.Errorf("degraded match = %q, want next-nearest snapshot-1", snap)
	}
	if got := s.LoadFailures(); got != 1 {
		t.Errorf("load failures = %d, want 1", got)
	}

	// Mangle the magic of the next file: rejected as a bad header, and the
	// scan degrades one entry further.
	corruptByte(t, files[1], 0)
	snap, _, ok, err = s.Match(linalg.Vector{0, 0})
	if err != nil || !ok {
		t.Fatalf("match after header corruption: ok=%v err=%v", ok, err)
	}
	if string(snap) != "snapshot-2" {
		t.Errorf("degraded match = %q, want snapshot-2", snap)
	}
	if got := s.LoadFailures(); got < 3 {
		t.Errorf("load failures = %d, want >= 3", got)
	}

	// Intact spilled entries still round-trip through their CRC frames.
	snap, _, ok, err = s.Match(linalg.Vector{3, 3})
	if err != nil || !ok || string(snap) != "snapshot-3" {
		t.Fatalf("intact spill read: snap=%q ok=%v err=%v", snap, ok, err)
	}
}

// corruptByte flips a single byte of the file at the given offset.
func corruptByte(t *testing.T, path string, off int64) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(raw)) <= off {
		t.Fatalf("file %s too short (%d bytes) to corrupt at %d", path, len(raw), off)
	}
	raw[off] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}
