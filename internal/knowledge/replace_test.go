package knowledge

import (
	"os"
	"path/filepath"
	"testing"

	"freewayml/internal/linalg"
)

func TestPreserveOrReplaceOverwritesSameRegime(t *testing.T) {
	s, _ := NewStore(10, "")
	if err := s.PreserveOrReplace(linalg.Vector{0, 0}, []byte("old"), "long", 1, 1.0); err != nil {
		t.Fatal(err)
	}
	// Within radius 1.0 of the existing entry: replace, not append.
	if err := s.PreserveOrReplace(linalg.Vector{0.5, 0}, []byte("fresh!"), "long", 9, 1.0); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (replaced)", s.Len())
	}
	snap, _, ok, err := s.Match(linalg.Vector{0, 0})
	if err != nil || !ok {
		t.Fatal(err)
	}
	if string(snap) != "fresh!" {
		t.Errorf("matched %q, want the replacement", snap)
	}
	if s.MemoryBytes() != len("fresh!") {
		t.Errorf("MemoryBytes = %d", s.MemoryBytes())
	}
}

func TestPreserveOrReplaceAppendsOutsideRadius(t *testing.T) {
	s, _ := NewStore(10, "")
	if err := s.PreserveOrReplace(linalg.Vector{0, 0}, []byte("a"), "long", 1, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := s.PreserveOrReplace(linalg.Vector{5, 0}, []byte("b"), "long", 2, 1.0); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

func TestPreserveOrReplaceZeroRadiusAlwaysAppends(t *testing.T) {
	s, _ := NewStore(10, "")
	for i := 0; i < 3; i++ {
		if err := s.PreserveOrReplace(linalg.Vector{0, 0}, []byte{byte(i)}, "long", i, 0); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
}

func TestPreserveOrReplaceUnspillsReplacedEntry(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	// Fill to capacity → older half spills.
	for i := 0; i < 4; i++ {
		v := linalg.Vector{float64(i * 100), 0}
		if err := s.Preserve(v, []byte{byte(i)}, "long", i); err != nil {
			t.Fatal(err)
		}
	}
	if s.SpilledCount() == 0 {
		t.Fatal("expected spilled entries")
	}
	// Replace the spilled entry at (0,0): its file must be removed and the
	// fresh snapshot held in memory.
	if err := s.PreserveOrReplace(linalg.Vector{1, 0}, []byte("new"), "long", 9, 5.0); err != nil {
		t.Fatal(err)
	}
	snap, _, ok, err := s.Match(linalg.Vector{0, 0})
	if err != nil || !ok {
		t.Fatal(err)
	}
	if string(snap) != "new" {
		t.Errorf("matched %q", snap)
	}
	// At most one spill file may remain (the other spilled entry).
	files, err := filepath.Glob(filepath.Join(dir, "kdg-*.bin"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if _, err := os.Stat(f); err != nil {
			t.Errorf("stat %s: %v", f, err)
		}
	}
	if len(files) > 1 {
		t.Errorf("replaced spill file not removed: %v", files)
	}
}
