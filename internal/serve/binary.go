package serve

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"freewayml/internal/linalg"
	"freewayml/internal/obs"
	"freewayml/internal/wire"
)

// BinaryContentType selects the length-prefixed binary batch frame
// (internal/wire) on POST /v1/streams/{id}/process and /v1/process. JSON
// remains the default and the compatibility path.
const BinaryContentType = "application/x-freeway-batch"

// DefaultBinaryReadTimeout is the per-frame read deadline of persistent
// binary connections — the same 30s the HTTP server applies per request.
const DefaultBinaryReadTimeout = 30 * time.Second

// framePool recycles decoded-frame storage across requests: a warm frame
// re-decodes a same-shaped batch with zero allocations. frameTensors backs
// frames whose slab was detached (handed to the learner on the direct,
// non-coalesced path) with pooled tensors, so even the detach path reuses
// slabs returned by closed connections instead of allocating cold ones.
var (
	framePool    = sync.Pool{New: func() any { return new(wire.Frame) }}
	frameTensors linalg.TensorPool
)

func getFrame() *wire.Frame {
	f := framePool.Get().(*wire.Frame)
	f.KeepF32 = false // pooled frames are shared across handlers; opt back in per use
	if f.Tensor() == nil {
		f.Arm(frameTensors.Get(0, 0))
	}
	return f
}

// frameRows returns the decoded row count regardless of which slab (f64 or
// native f32) the frame filled.
func frameRows(f *wire.Frame) int {
	if f.X32 != nil {
		return len(f.X32)
	}
	return len(f.X)
}

func putFrame(f *wire.Frame) { framePool.Put(f) }

// handleProcessBinary serves one binary frame POSTed over HTTP. The body is
// already read (and capped) by handleProcess, so the binary path enforces
// exactly the same body-size and read-timeout limits as JSON. Malformed
// frames get the standard 400 JSON envelope.
func (s *Server) handleProcessBinary(w http.ResponseWriter, r *http.Request, id string, body []byte) {
	f := getFrame()
	defer putFrame(f)
	if err := f.DecodeInto(body); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request: %v", err))
		return
	}
	s.cBinFrames.Inc()
	if f.Grew {
		s.cBinGrew.Inc()
	}
	if f.ID != "" && f.ID != id {
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("frame is addressed to stream %q, not %q", f.ID, id))
		return
	}
	rec := s.beginSpan(id, "binary", r.Header.Get(obs.TraceparentHeader), f.Traceparent, len(f.X))
	out, status, err := s.processDecodedFrame(r.Context(), id, rec.traceID(), f)
	rec.finish(out.Fused, err)
	rec.setHeaders(w.Header())
	if err != nil {
		s.writeError(w, status, err.Error())
		return
	}
	s.writeJSON(w, out)
}

// processDecodedFrame validates and processes a decoded frame. On the
// direct path the learner retains rows (windows, replay buffers), so the
// frame's storage is detached — the frame re-arms from the tensor pool on
// its next use. Under coalescing the submit packs the rows into group-owned
// storage, so the frame keeps its slab and stays allocation-free.
func (s *Server) processDecodedFrame(ctx context.Context, id, traceID string, f *wire.Frame) (ProcessResponse, int, error) {
	if err := validateRows(f.X, f.Y, s.dim, s.classes); err != nil {
		return ProcessResponse{}, http.StatusBadRequest, err
	}
	x, y := f.X, f.Y
	if s.coal == nil {
		x, y = f.Detach()
	}
	return s.process(ctx, id, traceID, x, y)
}

// ServeBinary accepts persistent binary connections on ln and serves
// length-prefixed wire frames until the listener fails or the server
// closes. Each connection carries a sequence of uint32-length-prefixed
// frames; every frame is answered with a uint32-length-prefixed JSON body —
// a ProcessResponse, or the standard error envelope. Framing errors (bad
// magic, truncation, a frame over the body cap) are answered and then the
// connection is closed, since the byte stream cannot be resynchronized.
// Blocks; run it on its own goroutine alongside the HTTP listener.
func (s *Server) ServeBinary(ln net.Listener) error {
	s.binMu.Lock()
	if s.binLns == nil {
		s.binLns = make(map[net.Listener]struct{})
	}
	s.binLns[ln] = struct{}{}
	s.binMu.Unlock()
	defer func() {
		s.binMu.Lock()
		delete(s.binLns, ln)
		s.binMu.Unlock()
	}()

	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closing.Load() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.serveBinaryConn(conn)
		}()
	}
}

// serveBinaryConn drives one persistent binary connection: a reusable frame
// and scratch buffer give warm decodes zero allocations; each read runs
// under the binary read deadline; responses are written through one
// buffered writer with a single flush per frame.
func (s *Server) serveBinaryConn(conn net.Conn) {
	s.binMu.Lock()
	if s.binConns == nil {
		s.binConns = make(map[net.Conn]struct{})
	}
	s.binConns[conn] = struct{}{}
	s.binMu.Unlock()
	defer func() {
		s.binMu.Lock()
		delete(s.binConns, conn)
		s.binMu.Unlock()
		conn.Close()
	}()

	f := getFrame()
	defer putFrame(f)
	// Under a speed tier, unlabeled float32 frames decode natively — the
	// read plane consumes them without ever widening to float64. Labeled
	// frames always widen (the training plane is the f64 oracle).
	f.KeepF32 = s.tier != linalg.TierF64
	var scratch []byte
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		if err := conn.SetReadDeadline(time.Now().Add(s.binTimeout)); err != nil {
			return
		}
		var err error
		scratch, err = wire.ReadFrame(br, f, scratch, int(s.maxBody))
		if err != nil {
			if err == io.EOF || s.closing.Load() {
				return
			}
			status := http.StatusBadRequest
			if errors.Is(err, wire.ErrTooLarge) {
				s.bodyCap.Add(1)
				status = http.StatusRequestEntityTooLarge
			}
			s.writeBinaryError(bw, status, err.Error())
			bw.Flush()
			return
		}
		s.reqs.Add(1)
		s.routeCounters["binary"].Inc()
		s.cBinFrames.Inc()
		if f.Grew {
			s.cBinGrew.Inc()
		}

		var out any
		status := http.StatusBadRequest
		perr := error(nil)
		if f.ID == "" {
			perr = errors.New("stream frames must embed a stream id")
		} else if f.Y == nil {
			// A label-less frame on the persistent listener is an inference
			// request: it routes to the read plane and never touches training
			// state. (The HTTP /v1/process endpoint keeps its historical
			// label-less-means-train-unsupervised contract; the split applies
			// only here and on /infer, where the intent is unambiguous.)
			rec := s.beginInferSpan(f.ID, "binary", "", f.Traceparent, frameRows(f))
			var ir InferResponse
			ir, status, perr = s.inferDecodedFrame(context.Background(), f.ID, rec.traceID(), f)
			rec.finish(ir.Fused, perr)
			out = ir
		} else {
			// No per-request context exists on a raw connection; the pass
			// runs to completion (the deadline governs reads, not compute).
			// Trace context, if any, rides inside the frame (version 2).
			rec := s.beginSpan(f.ID, "binary", "", f.Traceparent, len(f.X))
			var pr ProcessResponse
			pr, status, perr = s.processDecodedFrame(context.Background(), f.ID, rec.traceID(), f)
			rec.finish(pr.Fused, perr)
			out = pr
		}
		if perr != nil {
			if !s.writeBinaryError(bw, status, perr.Error()) {
				return
			}
		} else if !s.writeBinaryJSON(bw, out) {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// writeBinaryJSON frames v as uint32-length-prefixed JSON. Reports whether
// the connection is still usable.
func (s *Server) writeBinaryJSON(bw *bufio.Writer, v any) bool {
	buf := getBuf()
	defer putBuf(buf)
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		log.Printf("serve: binary response encode failed: %v", err)
		return s.writeBinaryError(bw, http.StatusInternalServerError, "response encoding failed")
	}
	var pfx [4]byte
	binary.LittleEndian.PutUint32(pfx[:], uint32(buf.Len()))
	if _, err := bw.Write(pfx[:]); err != nil {
		return false
	}
	_, err := bw.Write(buf.Bytes())
	return err == nil
}

// writeBinaryError frames the standard JSON error envelope (the same body
// the HTTP endpoints send) and counts the reject.
func (s *Server) writeBinaryError(bw *bufio.Writer, status int, msg string) bool {
	s.rejects.Add(1)
	var body errorEnvelope
	body.Error.Code = status
	body.Error.Message = msg
	buf := getBuf()
	defer putBuf(buf)
	if err := json.NewEncoder(buf).Encode(body); err != nil {
		log.Printf("serve: binary error envelope encode failed: %v", err)
		return false
	}
	var pfx [4]byte
	binary.LittleEndian.PutUint32(pfx[:], uint32(buf.Len()))
	if _, err := bw.Write(pfx[:]); err != nil {
		return false
	}
	_, err := bw.Write(buf.Bytes())
	return err == nil
}

// coalescingEnabled reports whether this server fuses concurrent batches.
func (s *Server) coalescingEnabled() bool { return s.coal != nil }
