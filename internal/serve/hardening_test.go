package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"freewayml/internal/core"
)

func testServerOpts(t *testing.T, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Shift.WarmupPoints = 64
	s, err := New(cfg, 3, 2, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		if err := s.Close(); err != nil {
			t.Error(err)
		}
	})
	return s, ts
}

func getStats(t *testing.T, url string) StatsResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	return stats
}

func TestOversizeBodyRejected(t *testing.T) {
	_, ts := testServerOpts(t, WithMaxBodyBytes(1024))
	rng := rand.New(rand.NewSource(3))
	// ~100 rows of 3 floats serializes well past 1 KiB.
	resp, _ := postProcess(t, ts.URL, batchReq(rng, 100, true))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize body: status %d, want 413", resp.StatusCode)
	}
	// A batch under the cap still works.
	resp, out := postProcess(t, ts.URL, batchReq(rng, 4, true))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small batch after oversize: status %d", resp.StatusCode)
	}
	if len(out.Predictions) != 4 {
		t.Errorf("predictions = %d", len(out.Predictions))
	}
}

func TestDirtyBatchRejectedWithoutPoisoningState(t *testing.T) {
	s, ts := testServerOpts(t) // DefaultConfig guards with Reject
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 10; i++ {
		resp, _ := postProcess(t, ts.URL, batchReq(rng, 32, true))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("clean batch %d: status %d", i, resp.StatusCode)
		}
	}

	// JSON cannot encode NaN, so a dirty batch can only reach the learner
	// through the library path — exercise the decoded-request seam directly.
	dirty := batchReq(rng, 8, true)
	dirty.X[3][1] = math.NaN()
	_, status, err := s.process(context.Background(), DefaultStream, "", dirty.X, dirty.Y)
	if err == nil || status != http.StatusUnprocessableEntity {
		t.Errorf("NaN batch: status %d (err %v), want 422", status, err)
	}

	stats := getStats(t, ts.URL)
	if stats.RejectedBatches != 1 {
		t.Errorf("rejected_batches = %d, want 1", stats.RejectedBatches)
	}
	if stats.Batches != 10 {
		t.Errorf("rejected batch leaked into metrics: %d batches", stats.Batches)
	}

	// Serving continues normally after the rejection.
	resp, out := postProcess(t, ts.URL, batchReq(rng, 32, true))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clean batch after rejection: status %d", resp.StatusCode)
	}
	if out.Accuracy < 0.8 {
		t.Errorf("accuracy after rejection = %v", out.Accuracy)
	}
}

func TestPeriodicCheckpointAndResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.ckpt")
	s, ts := testServerOpts(t, WithCheckpoint(path, 2))
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 6; i++ {
		resp, _ := postProcess(t, ts.URL, batchReq(rng, 32, true))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d: status %d", i, resp.StatusCode)
		}
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}
	sess, ok := s.Sessions().Get(DefaultStream)
	if !ok {
		t.Fatal("default session missing")
	}
	saves := sess.Snapshot().CheckpointSaves
	if saves != 3 {
		t.Errorf("checkpoint saves = %d, want 3 (every 2nd of 6 batches)", saves)
	}
	stats := getStats(t, ts.URL)
	if stats.CheckpointSaves != 3 || stats.CheckpointErrors != 0 {
		t.Errorf("stats checkpoints = %d saves / %d errors", stats.CheckpointSaves, stats.CheckpointErrors)
	}

	// A fresh server restores the snapshot and picks up where it left off.
	cfg := core.DefaultConfig()
	cfg.Shift.WarmupPoints = 64
	s2, err := New(cfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.LoadCheckpointFile(path); err != nil {
		t.Fatalf("resume: %v", err)
	}
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	stats2 := getStats(t, ts2.URL)
	if stats2.Batches != stats.Batches || stats2.Samples != stats.Samples {
		t.Errorf("restored metrics = %d batches / %d samples, want %d / %d",
			stats2.Batches, stats2.Samples, stats.Batches, stats.Samples)
	}
	var out ProcessResponse
	for i := 0; i < 3; i++ {
		var resp *http.Response
		resp, out = postProcess(t, ts2.URL, batchReq(rng, 32, true))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-resume batch %d: status %d", i, resp.StatusCode)
		}
	}
	if out.Accuracy < 0.8 {
		t.Errorf("post-resume accuracy = %v (restored model should be warm)", out.Accuracy)
	}
}

func TestCloseWritesFinalCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "final.ckpt")
	cfg := core.DefaultConfig()
	cfg.Shift.WarmupPoints = 64
	// every=1000 never triggers mid-run; only Close should write the file.
	s, err := New(cfg, 3, 2, WithCheckpoint(path, 1000))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	rng := rand.New(rand.NewSource(6))
	resp, _ := postProcess(t, ts.URL, batchReq(rng, 16, true))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	ts.Close()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("checkpoint written before Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no final checkpoint after Close: %v", err)
	}
}

func TestUnknownFieldsRejected(t *testing.T) {
	_, ts := testServerOpts(t)
	body := []byte(`{"x": [[1,2,3]], "bogus": true}`)
	resp, err := http.Post(ts.URL+"/v1/process", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}
}
