package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"freewayml/internal/core"
	"freewayml/internal/obs"
)

// exposition lines: either a comment or `name{labels} value`.
var (
	serveCommentRe = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	serveSampleRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$`)
)

func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 12; i++ {
		resp, _ := postProcess(t, ts.URL, batchReq(rng, 32, true))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("process status %d", resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != MetricsContentType {
		t.Errorf("Content-Type = %q, want %q", ct, MetricsContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	series := map[string]bool{}
	for i, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !serveCommentRe.MatchString(line) {
				t.Fatalf("line %d: malformed comment %q", i+1, line)
			}
			continue
		}
		if !serveSampleRe.MatchString(line) {
			t.Fatalf("line %d: malformed sample %q", i+1, line)
		}
		series[line[:strings.IndexByte(line, ' ')]] = true
	}
	if len(series) < 12 {
		t.Errorf("exposition has %d distinct series, want >= 12", len(series))
	}
	for _, want := range []string{
		`freeway_batches_total{stream="default"}`,
		`freeway_process_seconds_count{stream="default"}`,
		`freeway_stage_seconds_count{stage="shift_detect",stream="default"}`,
		`freeway_http_requests_total{path="/v1/process"}`,
		"freeway_sessions_active",
	} {
		if !series[want] {
			t.Errorf("exposition missing series %s", want)
		}
	}
}

func TestTraceEndpoint(t *testing.T) {
	_, ts := testServer(t)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 8; i++ {
		postProcess(t, ts.URL, batchReq(rng, 32, true))
	}

	resp, err := http.Get(ts.URL + "/v1/trace?n=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != TraceContentType {
		t.Errorf("Content-Type = %q, want %q", ct, TraceContentType)
	}
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	var ev obs.TraceEvent
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v", lines+1, err)
		}
		if ev.Strategy == "" || len(ev.Stages) == 0 {
			t.Fatalf("event missing strategy or stages: %s", sc.Text())
		}
		lines++
	}
	if lines != 5 {
		t.Fatalf("trace returned %d events, want 5", lines)
	}
	if ev.Batch != 7 {
		t.Errorf("last event batch = %d, want 7", ev.Batch)
	}

	// Bad n is rejected with the JSON envelope.
	resp2, err := http.Get(ts.URL + "/v1/trace?n=-1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad n status %d", resp2.StatusCode)
	}
	assertErrorEnvelope(t, resp2, http.StatusBadRequest)
}

// assertErrorEnvelope checks a response carries the shared JSON error body.
func assertErrorEnvelope(t *testing.T, resp *http.Response, code int) {
	t.Helper()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("error Content-Type = %q, want application/json", ct)
	}
	var env errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("error body not an envelope: %v", err)
	}
	if env.Error.Code != code || env.Error.Message == "" {
		t.Errorf("envelope = %+v, want code %d with message", env, code)
	}
}

func TestErrorEnvelopeOnAllEndpoints(t *testing.T) {
	_, ts := testServer(t)
	for _, tc := range []struct {
		method, path string
		code         int
	}{
		{http.MethodGet, "/v1/process", http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/stats", http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/metrics", http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/trace", http.StatusMethodNotAllowed},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.code {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.code)
		}
		assertErrorEnvelope(t, resp, tc.code)
		resp.Body.Close()
	}
}

func TestHTTPCountersInStats(t *testing.T) {
	_, ts := testServer(t)
	rng := rand.New(rand.NewSource(4))
	postProcess(t, ts.URL, batchReq(rng, 8, true))
	// One reject: wrong method.
	resp, err := http.Get(ts.URL + "/v1/process")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	// process + bad GET + this stats request.
	if stats.HTTPRequests != 3 {
		t.Errorf("http_requests = %d, want 3", stats.HTTPRequests)
	}
	if stats.HTTPRejects != 1 {
		t.Errorf("http_rejects = %d, want 1", stats.HTTPRejects)
	}
	if stats.BodyCapHits != 0 {
		t.Errorf("body_cap_hits = %d, want 0", stats.BodyCapHits)
	}
}

func TestPprofOptIn(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Shift.WarmupPoints = 64

	off, err := New(cfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	rec := httptest.NewRecorder()
	off.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("pprof without opt-in: status %d, want 404", rec.Code)
	}

	on, err := New(cfg, 3, 2, WithPprof())
	if err != nil {
		t.Fatal(err)
	}
	defer on.Close()
	rec = httptest.NewRecorder()
	on.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("pprof with opt-in: status %d, want 200", rec.Code)
	}
}
