package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	"freewayml/internal/wire"
)

// postInfer POSTs a JSON inference request to a stream's /infer endpoint.
func postInfer(t *testing.T, url, stream string, x [][]float64) (*http.Response, InferResponse) {
	t.Helper()
	body, err := json.Marshal(ProcessRequest{X: x})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/streams/"+stream+"/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out InferResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	resp.Body.Close()
	return resp, out
}

// postInferBinary POSTs a label-less wire frame to a stream's /infer endpoint.
func postInferBinary(t *testing.T, url, stream string, dtype byte, x [][]float64) (*http.Response, InferResponse) {
	t.Helper()
	frame, err := wire.AppendFrame(nil, "", dtype, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/streams/"+stream+"/infer", BinaryContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	var out InferResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	resp.Body.Close()
	return resp, out
}

// trainStream drives labeled batches through a stream's /process endpoint.
func trainStream(t *testing.T, url, stream string, rng *rand.Rand, batches, n int) {
	t.Helper()
	for i := 0; i < batches; i++ {
		req := batchReq(rng, n, true)
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(url+"/v1/streams/"+stream+"/process", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s train batch %d: status %d", stream, i, resp.StatusCode)
		}
	}
}

func TestInferEndpointEndToEnd(t *testing.T) {
	_, ts := testServer(t)
	rng := rand.New(rand.NewSource(51))
	trainStream(t, ts.URL, "s1", rng, 12, 32)

	q := batchReq(rng, 8, false).X
	resp, out := postInfer(t, ts.URL, "s1", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infer status %d", resp.StatusCode)
	}
	if len(out.Predictions) != 8 {
		t.Fatalf("predictions = %d", len(out.Predictions))
	}
	if out.Stream != "s1" {
		t.Errorf("stream = %q", out.Stream)
	}
	if out.Strategy != "multi-granularity" {
		t.Errorf("strategy = %q, want multi-granularity after 12 batches", out.Strategy)
	}
	if out.SnapshotBatch != 12 {
		t.Errorf("snapshot_batch = %d, want 12", out.SnapshotBatch)
	}
	if out.SnapshotAgeMS < 0 {
		t.Errorf("snapshot_age_ms = %v", out.SnapshotAgeMS)
	}
	if out.Fused != 0 {
		t.Errorf("fused = %d on an uncoalesced server", out.Fused)
	}

	// A fresh stream answers immediately from its warmup snapshot — the
	// read path never waits for training.
	resp, out = postInfer(t, ts.URL, "fresh", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh stream infer status %d", resp.StatusCode)
	}
	if out.Strategy != "warmup" || out.SnapshotBatch != 0 {
		t.Errorf("fresh stream: strategy=%q batch=%d", out.Strategy, out.SnapshotBatch)
	}
}

func TestInferEndpointRejections(t *testing.T) {
	_, ts := testServer(t)
	rng := rand.New(rand.NewSource(52))
	labeled := batchReq(rng, 4, true)

	// Labeled JSON body: 400 — training submissions belong to /process.
	body, _ := json.Marshal(labeled)
	resp, err := http.Post(ts.URL+"/v1/streams/s1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("labeled JSON infer: status %d, want 400", resp.StatusCode)
	}

	// Labeled binary frame: 400 for the same reason.
	frame, err := wire.AppendFrame(nil, "", wire.Float64, labeled.X, labeled.Y)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/streams/s1/infer", BinaryContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("labeled binary infer: status %d, want 400", resp.StatusCode)
	}

	// Non-finite features: 422 — the pure read path cannot repair them.
	// (JSON cannot carry NaN at all, so only the binary framing reaches
	// this rejection.)
	frame, err = wire.AppendFrame(nil, "", wire.Float64, [][]float64{{1, math.NaN(), 0}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/streams/s1/infer", BinaryContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("NaN infer: status %d, want 422", resp.StatusCode)
	}

	// Ragged rows: 400.
	resp, _ = postInfer(t, ts.URL, "s1", [][]float64{{1, 2}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("ragged infer: status %d, want 400", resp.StatusCode)
	}

	// GET: 405.
	getResp, err := http.Get(ts.URL + "/v1/streams/s1/infer")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET infer: status %d, want 405", getResp.StatusCode)
	}

	// A frame addressed to a different stream: 400.
	q := batchReq(rng, 4, false)
	frame, err = wire.AppendFrame(nil, "elsewhere", wire.Float64, q.X, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/streams/s1/infer", BinaryContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("misaddressed frame: status %d, want 400", resp.StatusCode)
	}
}

// TestInferFusedDifferential is the cross-stream fusion oracle at the serve
// layer: identical training on a direct server and a coalescing server,
// then identical label-less queries — sequential on the direct server,
// concurrent (so they fuse across streams) on the coalescing one. Responses
// must match exactly once the fields that legitimately differ (fused count,
// snapshot wall-clock age) are stripped. Exercised over JSON and binary
// framing, f64 and f32 payloads.
func TestInferFusedDifferential(t *testing.T) {
	const (
		streams = 3
		trainN  = 12
		queryN  = 9
	)
	for _, tc := range []struct {
		name  string
		proto string
		dtype byte
	}{
		{"json", "json", 0},
		{"binary-f64", "binary", wire.Float64},
		{"binary-f32", "binary", wire.Float32},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, direct := testServer(t)
			_, fused := testServerOpts(t, WithCoalescing(20*time.Millisecond, 0))

			// Identical training on both servers, stream by stream.
			for s := 0; s < streams; s++ {
				id := fmt.Sprintf("st%d", s)
				trainStream(t, direct.URL, id, rand.New(rand.NewSource(int64(60+s))), trainN, 32)
				trainStream(t, fused.URL, id, rand.New(rand.NewSource(int64(60+s))), trainN, 32)
			}

			// Identical query batches, one per stream per round.
			qrng := rand.New(rand.NewSource(77))
			type q struct {
				stream string
				x      [][]float64
			}
			var queries []q
			for round := 0; round < 3; round++ {
				for s := 0; s < streams; s++ {
					req := batchReq(qrng, queryN, false)
					if tc.dtype == wire.Float32 {
						req = quantizeF32(req)
					}
					queries = append(queries, q{fmt.Sprintf("st%d", s), req.X})
				}
			}
			send := func(url string, qu q) (*http.Response, InferResponse) {
				if tc.proto == "binary" {
					return postInferBinary(t, url, qu.stream, tc.dtype, qu.x)
				}
				return postInfer(t, url, qu.stream, qu.x)
			}

			want := make([]InferResponse, len(queries))
			for i, qu := range queries {
				resp, out := send(direct.URL, qu)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("direct query %d: status %d", i, resp.StatusCode)
				}
				want[i] = out
			}

			// Concurrent submission makes the cross-stream groups actually
			// form; correctness must not depend on who shared a slab.
			got := make([]InferResponse, len(queries))
			sawFusion := false
			var mu sync.Mutex
			var wg sync.WaitGroup
			for i, qu := range queries {
				wg.Add(1)
				go func(i int, qu q) {
					defer wg.Done()
					resp, out := send(fused.URL, qu)
					if resp.StatusCode != http.StatusOK {
						t.Errorf("fused query %d: status %d", i, resp.StatusCode)
						return
					}
					mu.Lock()
					if out.Fused > 1 {
						sawFusion = true
					}
					got[i] = out
					mu.Unlock()
				}(i, qu)
			}
			wg.Wait()

			for i := range queries {
				w, g := want[i], got[i]
				w.Fused, g.Fused = 0, 0
				w.SnapshotAgeMS, g.SnapshotAgeMS = 0, 0
				if !reflect.DeepEqual(w, g) {
					t.Errorf("query %d (%s): responses diverge:\ndirect: %+v\nfused:  %+v",
						i, queries[i].stream, w, g)
				}
			}
			if !sawFusion {
				t.Log("no cross-stream group formed this run (timing); results still verified equal")
			}
		})
	}
}

func TestGraphEndpoint(t *testing.T) {
	_, ts := testServer(t)
	rng := rand.New(rand.NewSource(81))
	trainStream(t, ts.URL, "g1", rng, 10, 32)

	resp, err := http.Get(ts.URL + "/v1/streams/g1/graph")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("graph status %d", resp.StatusCode)
	}
	var out GraphResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Stream != "g1" {
		t.Errorf("stream = %q", out.Stream)
	}
	if out.Batches != 10 {
		t.Errorf("batches = %d, want 10", out.Batches)
	}
	if len(out.Nodes) == 0 || out.Last == "" {
		t.Errorf("degenerate graph: %+v", out)
	}
	total := 0
	for _, e := range out.Edges {
		total += e.Count
	}
	if total != 9 {
		t.Errorf("edge counts sum to %d, want 9", total)
	}

	// Unknown stream: 404, and the GET must not create a session.
	resp404, err := http.Get(ts.URL + "/v1/streams/nope/graph")
	if err != nil {
		t.Fatal(err)
	}
	resp404.Body.Close()
	if resp404.StatusCode != http.StatusNotFound {
		t.Errorf("unknown stream graph: status %d, want 404", resp404.StatusCode)
	}

	// POST: 405.
	respPost, err := http.Post(ts.URL+"/v1/streams/g1/graph", "application/json", bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatal(err)
	}
	respPost.Body.Close()
	if respPost.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST graph: status %d, want 405", respPost.StatusCode)
	}
}

// TestBinaryListenerRoutesLabellessToInferPlane: on the persistent binary
// listener, a label-less frame is an inference request — it answers with an
// InferResponse and advances no training state — while labeled frames on
// the same connection keep training.
func TestBinaryListenerRoutesLabellessToInferPlane(t *testing.T) {
	s, _ := testServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.ServeBinary(ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	rng := rand.New(rand.NewSource(91))

	// Train a few labeled frames.
	for i := 0; i < 6; i++ {
		req := batchReq(rng, 16, true)
		frame, err := wire.AppendStreamFrame(nil, "bl", wire.Float64, req.X, req.Y)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(frame); err != nil {
			t.Fatal(err)
		}
		var out ProcessResponse
		if err := json.Unmarshal(readPrefixed(t, br), &out); err != nil {
			t.Fatal(err)
		}
		if len(out.Predictions) != 16 {
			t.Fatalf("train frame %d: %+v", i, out)
		}
	}

	// A label-less frame on the same connection routes to the infer plane.
	q := batchReq(rng, 8, false)
	frame, err := wire.AppendStreamFrame(nil, "bl", wire.Float64, q.X, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	var inf InferResponse
	if err := json.Unmarshal(readPrefixed(t, br), &inf); err != nil {
		t.Fatal(err)
	}
	if inf.Stream != "bl" || len(inf.Predictions) != 8 {
		t.Fatalf("infer frame: %+v", inf)
	}
	if inf.SnapshotBatch != 6 {
		t.Errorf("snapshot_batch = %d, want 6", inf.SnapshotBatch)
	}

	// The infer frame advanced no training state: the next labeled frame is
	// batch 7, and the snapshot catches up to it.
	req := batchReq(rng, 16, true)
	frame, err = wire.AppendStreamFrame(nil, "bl", wire.Float64, req.X, req.Y)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	var out ProcessResponse
	if err := json.Unmarshal(readPrefixed(t, br), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Predictions) != 16 {
		t.Fatalf("post-infer train frame: %+v", out)
	}
	frame, err = wire.AppendStreamFrame(nil, "bl", wire.Float64, q.X, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(readPrefixed(t, br), &inf); err != nil {
		t.Fatal(err)
	}
	if inf.SnapshotBatch != 7 {
		t.Errorf("post-train snapshot_batch = %d, want 7", inf.SnapshotBatch)
	}

	conn.Close() // unblock the per-connection reader before stopping the listener
	ln.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeBinary: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeBinary did not return after listener close")
	}
}
