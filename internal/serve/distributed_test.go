package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"freewayml/internal/core"
	"freewayml/internal/linalg"
)

func optServer(t *testing.T, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Shift.WarmupPoints = 64
	s, err := New(cfg, 3, 2, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestHealthAliasAndLiveness(t *testing.T) {
	_, ts := optServer(t)
	for _, path := range []string{"/v1/healthz", "/v1/health"} {
		var body map[string]string
		if code := getJSON(t, ts.URL+path, &body); code != http.StatusOK {
			t.Errorf("%s = %d, want 200", path, code)
		}
		if body["status"] != "ok" {
			t.Errorf("%s body = %v", path, body)
		}
	}
}

func TestReadyzChecks(t *testing.T) {
	t.Run("ready", func(t *testing.T) {
		_, ts := optServer(t, WithCheckpointDir(t.TempDir(), 4))
		var body ReadyResponse
		if code := getJSON(t, ts.URL+"/v1/readyz", &body); code != http.StatusOK {
			t.Fatalf("readyz = %d, want 200 (checks %v)", code, body.Checks)
		}
		if body.Status != "ok" {
			t.Errorf("status = %q, want ok", body.Status)
		}
	})

	t.Run("sessions at cap", func(t *testing.T) {
		// Limit 1: the eagerly-created "default" stream fills the cap.
		_, ts := optServer(t, WithSessionLimits(1, 0))
		var body ReadyResponse
		if code := getJSON(t, ts.URL+"/v1/readyz", &body); code != http.StatusServiceUnavailable {
			t.Fatalf("readyz = %d, want 503 at the session cap", code)
		}
		if body.Checks["sessions"] == "ok" {
			t.Errorf("sessions check = ok, want the cap named; checks %v", body.Checks)
		}
		// Liveness is unaffected: the process is healthy, just not ready.
		if code := getJSON(t, ts.URL+"/v1/healthz", nil); code != http.StatusOK {
			t.Errorf("healthz = %d while not ready, want 200", code)
		}
	})

	t.Run("checkpoint dir unavailable", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "ckpts")
		if err := os.Mkdir(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		_, ts := optServer(t, WithCheckpointDir(dir, 4))
		if code := getJSON(t, ts.URL+"/v1/readyz", nil); code != http.StatusOK {
			t.Fatalf("readyz = %d with a writable dir, want 200", code)
		}
		// The directory disappearing (unmounted volume, wiped tmpfs) must
		// flip readiness: evictions and failover would lose state.
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
		var body ReadyResponse
		if code := getJSON(t, ts.URL+"/v1/readyz", &body); code != http.StatusServiceUnavailable {
			t.Fatalf("readyz = %d with the checkpoint dir gone, want 503", code)
		}
		if body.Checks["checkpoint_dir"] == "ok" {
			t.Errorf("checkpoint_dir check = ok, want failure named; checks %v", body.Checks)
		}
	})
}

func TestCancelledRequestCounts499(t *testing.T) {
	s, ts := optServer(t)
	req := ProcessRequest{X: [][]float64{{0, 0, 0}}, Y: []int{0}}
	body, _ := json.Marshal(req)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is gone before the batch starts
	hr := httptest.NewRequest(http.MethodPost, "/v1/process", bytes.NewReader(body)).WithContext(ctx)
	hr.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, hr)
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("cancelled request = %d, want %d", rec.Code, StatusClientClosedRequest)
	}

	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if stats.CancelledRequests != 1 {
		t.Errorf("cancelled_requests = %d, want 1", stats.CancelledRequests)
	}
	// A normal request afterwards still works: cancellation must not
	// poison the session.
	resp, err := http.Post(ts.URL+"/v1/process", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-cancel request = %d, want 200", resp.StatusCode)
	}
}

func TestEvictEndpoint(t *testing.T) {
	dir := t.TempDir()
	// CheckpointEvery 0: snapshots only on eviction, so file existence
	// distinguishes Evict from Discard.
	s, ts := optServer(t, WithCheckpointDir(dir, 0))
	rng := rand.New(rand.NewSource(3))
	for _, id := range []string{"ev1", "ev2"} {
		req := batchReq(rng, 8, true)
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/v1/streams/"+id+"/process", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %s: %d", id, resp.StatusCode)
		}
	}

	post := func(path string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		json.NewDecoder(resp.Body).Decode(&body)
		return resp.StatusCode, body
	}

	code, body := post("/v1/streams/ev1/evict")
	if code != http.StatusOK || body["evicted"] != true {
		t.Fatalf("evict = %d %v, want 200 evicted=true", code, body)
	}
	if _, err := os.Stat(filepath.Join(dir, "ev1.ckpt")); err != nil {
		t.Errorf("checkpointing evict left no envelope: %v", err)
	}
	if _, ok := s.Sessions().Get("ev1"); ok {
		t.Error("ev1 still resident after evict")
	}
	// Idempotent: evicting a non-resident stream is 200/evicted=false.
	if code, body := post("/v1/streams/ev1/evict"); code != http.StatusOK || body["evicted"] != false {
		t.Errorf("second evict = %d %v, want 200 evicted=false", code, body)
	}

	// Discard path: no envelope is written.
	if code, _ := post("/v1/streams/ev2/evict?checkpoint=false"); code != http.StatusOK {
		t.Fatalf("discard evict = %d", code)
	}
	if _, err := os.Stat(filepath.Join(dir, "ev2.ckpt")); !os.IsNotExist(err) {
		t.Errorf("discard wrote a checkpoint (err=%v), want none", err)
	}

	// Method enforcement.
	resp, err := http.Get(ts.URL + "/v1/streams/ev1/evict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET evict = %d, want 405", resp.StatusCode)
	}

	// The evicted stream resumes from its checkpoint on the next request.
	req := batchReq(rng, 8, true)
	rb, _ := json.Marshal(req)
	resp, err = http.Post(ts.URL+"/v1/streams/ev1/process", "application/json", bytes.NewReader(rb))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/v1/streams/ev1/stats", &stats); code != http.StatusOK {
		t.Fatal(code)
	}
	if !stats.Restored || stats.Batches != 2 {
		t.Errorf("post-evict stream: restored=%v batches=%d, want true/2", stats.Restored, stats.Batches)
	}
}

func TestKnowledgeExportMergeRoundTrip(t *testing.T) {
	a, tsA := optServer(t, WithSharedKnowledge())
	b, tsB := optServer(t, WithSharedKnowledge())

	if err := a.Sessions().SharedStore().Preserve(
		linalg.Vector{0.1, 0.7, 0.2}, []byte("snapshot-a"), "srvA", 9); err != nil {
		t.Fatal(err)
	}

	var exported KnowledgeResponse
	if code := getJSON(t, tsA.URL+"/v1/knowledge", &exported); code != http.StatusOK {
		t.Fatalf("export = %d", code)
	}
	if !exported.Shared || len(exported.Entries) != 1 {
		t.Fatalf("export body: shared=%v entries=%d, want true/1", exported.Shared, len(exported.Entries))
	}

	payload, _ := json.Marshal(exported)
	merge := func() KnowledgeMergeResponse {
		t.Helper()
		resp, err := http.Post(tsB.URL+"/v1/knowledge/merge", "application/json", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("merge = %d", resp.StatusCode)
		}
		var out KnowledgeMergeResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	if out := merge(); out.Added != 1 || out.Replaced != 0 {
		t.Errorf("first merge = %+v, want added=1", out)
	}
	if n := b.Sessions().SharedStore().Len(); n != 1 {
		t.Errorf("store len after merge = %d, want 1", n)
	}
	// Idempotent: the same export a second time changes nothing.
	if out := merge(); out.Added != 0 || out.Replaced != 0 || out.Skipped != 1 {
		t.Errorf("second merge = %+v, want skipped=1 only", out)
	}
	if n := b.Sessions().SharedStore().Len(); n != 1 {
		t.Errorf("store len after re-merge = %d, want 1", n)
	}
}

func TestKnowledgeEndpointsRequireSharedStore(t *testing.T) {
	_, ts := optServer(t) // per-stream stores: no process-wide knowledge
	if code := getJSON(t, ts.URL+"/v1/knowledge", nil); code != http.StatusConflict {
		t.Errorf("export without shared store = %d, want 409", code)
	}
	resp, err := http.Post(ts.URL+"/v1/knowledge/merge", "application/json",
		bytes.NewReader([]byte(`{"entries":[]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("merge without shared store = %d, want 409", resp.StatusCode)
	}
}
