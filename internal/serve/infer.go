// The inference plane of the server: /v1/streams/{id}/infer serves pure
// predictions from each stream's atomically published model snapshot. The
// read path never takes the session lock, so inference proceeds while the
// same stream trains, checkpoints, or is evicted. When coalescing is on,
// label-less rows from *many* streams pack into one cross-stream group and
// run as a single fused forward pass per ensemble member — per-stream
// results scatter back to their waiters through the group's segments.

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"

	"freewayml/internal/coalesce"
	"freewayml/internal/core"
	"freewayml/internal/guard"
	"freewayml/internal/linalg"
	"freewayml/internal/obs"
	"freewayml/internal/shift"
	"freewayml/internal/wire"
)

// InferResponse reports the inference plane's answer for one request.
type InferResponse struct {
	Stream      string `json:"stream"`
	Predictions []int  `json:"predictions"`
	// Strategy is "warmup" while the stream's snapshot predates the
	// detector's PCA fit, "ensemble" afterwards.
	Strategy string `json:"strategy"`
	// SnapshotBatch is the training batch counter of the snapshot that
	// answered; SnapshotAgeMS how stale it was at read time.
	SnapshotBatch int     `json:"snapshot_batch"`
	SnapshotAgeMS float64 `json:"snapshot_age_ms"`
	// KnowledgeDistance is the distance to the nearest preserved concept
	// (-1 when no knowledge index applies).
	KnowledgeDistance float64 `json:"knowledge_distance"`
	// Fused is the number of requests (across all streams) whose rows
	// shared this request's fused pass. Omitted when coalescing is off.
	Fused int `json:"fused,omitempty"`
}

// GraphResponse is the /v1/streams/{id}/graph body: the stream's observed
// pattern-transition graph.
type GraphResponse struct {
	Stream string `json:"stream"`
	shift.TransitionSnapshot
}

// handleInfer serves POST /v1/streams/{id}/infer: a label-less batch (JSON
// ProcessRequest without y, or a label-less binary frame) predicted from
// the stream's published snapshot.
func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	body := getBuf()
	defer putBuf(body)
	if _, err := body.ReadFrom(r.Body); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.bodyCap.Add(1)
			s.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request: %v", err))
		return
	}
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, BinaryContentType) {
		s.handleInferBinary(w, r, id, body.Bytes())
		return
	}
	var req ProcessRequest
	dec := json.NewDecoder(bytes.NewReader(body.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request: %v", err))
		return
	}
	if req.Y != nil {
		s.writeError(w, http.StatusBadRequest, "infer is label-less: submit labeled batches to /process")
		return
	}
	if err := validateInferRows(req.X, s.dim, s.classes); err != nil {
		s.writeError(w, inferValidationStatus(err), err.Error())
		return
	}
	rec := s.beginInferSpan(id, "json", r.Header.Get(obs.TraceparentHeader), "", len(req.X))
	out, status, err := s.infer(r.Context(), id, rec.traceID(), req.X)
	rec.finish(out.Fused, err)
	rec.setHeaders(w.Header())
	if err != nil {
		s.writeError(w, status, err.Error())
		return
	}
	s.writeJSON(w, out)
}

// handleInferBinary serves a binary frame POSTed to /infer. The frame must
// be label-less — a labeled frame is a training submission and belongs to
// /process.
func (s *Server) handleInferBinary(w http.ResponseWriter, r *http.Request, id string, body []byte) {
	f := getFrame()
	defer putFrame(f)
	// Speed tiers consume float32 inference frames natively (no f64 slab).
	f.KeepF32 = s.tier != linalg.TierF64
	if err := f.DecodeInto(body); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request: %v", err))
		return
	}
	s.cBinFrames.Inc()
	if f.Grew {
		s.cBinGrew.Inc()
	}
	if f.ID != "" && f.ID != id {
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("frame is addressed to stream %q, not %q", f.ID, id))
		return
	}
	if f.Y != nil {
		s.writeError(w, http.StatusBadRequest, "infer frames must be label-less: submit labeled frames to /process")
		return
	}
	rec := s.beginInferSpan(id, "binary", r.Header.Get(obs.TraceparentHeader), f.Traceparent, frameRows(f))
	out, status, err := s.inferDecodedFrame(r.Context(), id, rec.traceID(), f)
	rec.finish(out.Fused, err)
	rec.setHeaders(w.Header())
	if err != nil {
		s.writeError(w, status, err.Error())
		return
	}
	s.writeJSON(w, out)
}

// inferDecodedFrame validates and infers a decoded label-less frame. The
// inference plane never retains row references (member models copy rows
// into their own staging during the forward pass, and the coalescer packs
// them into group-owned storage), so the frame keeps its slab on both paths
// and warm frames stay allocation-free — no Detach, unlike the process
// plane's direct path.
func (s *Server) inferDecodedFrame(ctx context.Context, id, traceID string, f *wire.Frame) (InferResponse, int, error) {
	if f.X32 != nil {
		if err := validateInferRows32(f.X32, s.dim, s.classes); err != nil {
			return InferResponse{}, inferValidationStatus(err), err
		}
		return s.infer32(ctx, id, traceID, f.X32)
	}
	if err := validateInferRows(f.X, s.dim, s.classes); err != nil {
		return InferResponse{}, inferValidationStatus(err), err
	}
	return s.infer(ctx, id, traceID, f.X)
}

// infer routes one label-less batch to the stream's snapshot — directly, or
// through the cross-stream inference coalescer when coalescing is enabled.
func (s *Server) infer(ctx context.Context, id, traceID string, x [][]float64) (InferResponse, int, error) {
	if s.inferCoal != nil {
		sub, err := s.inferCoal.SubmitInfer(ctx, id, traceID, x)
		if err != nil {
			return InferResponse{}, s.errStatus(err), err
		}
		g := sub.Out.(*inferGroupOut)
		if err := g.errs[sub.Member]; err != nil {
			return InferResponse{}, s.errStatus(err), err
		}
		return s.buildInferResponse(id, g.results[sub.Member], sub.Members), http.StatusOK, nil
	}
	res, err := s.mgr.Infer(ctx, id, x)
	if err != nil {
		return InferResponse{}, s.errStatus(err), err
	}
	return s.buildInferResponse(id, res, 0), http.StatusOK, nil
}

// infer32 routes one natively narrow batch to the stream's snapshot —
// directly, or through the f32 cross-stream inference coalescer. The rows
// stay float32 end to end; members without a compiled engine widen once
// inside the snapshot.
func (s *Server) infer32(ctx context.Context, id, traceID string, x [][]float32) (InferResponse, int, error) {
	if s.inferCoal != nil {
		sub, err := s.inferCoal.SubmitInfer32(ctx, id, traceID, x)
		if err != nil {
			return InferResponse{}, s.errStatus(err), err
		}
		g := sub.Out.(*inferGroupOut)
		if err := g.errs[sub.Member]; err != nil {
			return InferResponse{}, s.errStatus(err), err
		}
		return s.buildInferResponse(id, g.results[sub.Member], sub.Members), http.StatusOK, nil
	}
	results, err := s.mgr.InferFused32(ctx, id, [][][]float32{x})
	if err != nil {
		return InferResponse{}, s.errStatus(err), err
	}
	return s.buildInferResponse(id, results[0], 0), http.StatusOK, nil
}

// buildInferResponse shapes an inference result into the wire response.
// fused is 0 when coalescing is off (the field is then omitted).
func (s *Server) buildInferResponse(id string, res core.InferResult, fused int) InferResponse {
	return InferResponse{
		Stream:            id,
		Predictions:       res.Pred,
		Strategy:          res.Strategy.String(),
		SnapshotBatch:     res.SnapshotBatch,
		SnapshotAgeMS:     float64(res.SnapshotAge.Microseconds()) / 1000,
		KnowledgeDistance: res.KnowledgeDist,
		Fused:             fused,
	}
}

// inferGroupOut is the shared result of one cross-stream fused pass. Errors
// are per member: one stream's failure (bad id, closed manager) must not
// fail the co-fused requests of other streams.
type inferGroupOut struct {
	results []core.InferResult
	errs    []error
}

// runInferGroup executes one cross-stream inference group: members are
// bucketed per stream (preserving submission order), and each stream runs
// one fused pass over all its members' row ranges against its own
// snapshot. Bitwise-identical to inferring every member alone — the GEMM
// kernels accumulate each output row independently of the batch height.
func (s *Server) runInferGroup(b coalesce.Batch) (any, error) {
	out := &inferGroupOut{
		results: make([]core.InferResult, len(b.Segs)),
		errs:    make([]error, len(b.Segs)),
	}
	var order []string
	byStream := make(map[string][]int, len(b.Segs))
	for i, seg := range b.Segs {
		if _, ok := byStream[seg.ID]; !ok {
			order = append(order, seg.ID)
		}
		byStream[seg.ID] = append(byStream[seg.ID], i)
	}
	for _, id := range order {
		idxs := byStream[id]
		// The pass runs detached from any member's request context, like the
		// process plane's fused passes.
		var results []core.InferResult
		var err error
		if b.X32 != nil {
			groups := make([][][]float32, len(idxs))
			for j, i := range idxs {
				seg := b.Segs[i]
				groups[j] = b.X32[seg.Lo:seg.Hi]
			}
			results, err = s.mgr.InferFused32(context.Background(), id, groups)
		} else {
			groups := make([][][]float64, len(idxs))
			for j, i := range idxs {
				seg := b.Segs[i]
				groups[j] = b.X[seg.Lo:seg.Hi]
			}
			results, err = s.mgr.InferFused(context.Background(), id, groups)
		}
		if err != nil {
			for _, i := range idxs {
				out.errs[i] = err
			}
			continue
		}
		for j, i := range idxs {
			out.results[i] = results[j]
		}
	}
	return out, nil
}

// beginInferSpan opens a worker span for one inference call — the infer
// plane's trace events, joinable by trace id with the router's forward
// spans and the training plane's worker.process spans.
func (s *Server) beginInferSpan(streamID, proto, headerTP, frameTP string, rows int) *spanRec {
	rec := s.beginSpan(streamID, proto, headerTP, frameTP, rows)
	rec.span.Name = "worker.infer"
	return rec
}

// handleGraph serves GET /v1/streams/{id}/graph: the stream's observed
// pattern-transition graph (nodes, directed edge counts, last pattern).
// Like the other read-only endpoints it never creates sessions.
func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	sess, status, err := s.session(id)
	if err != nil {
		s.writeError(w, status, err.Error())
		return
	}
	s.writeJSON(w, GraphResponse{Stream: id, TransitionSnapshot: sess.TransitionGraph()})
}

// validateInferRows applies the shared shape contract plus the inference
// plane's purity requirement: non-finite features are rejected outright
// (the training plane's guard can repair them statefully; the lock-free
// read path cannot).
func validateInferRows(x [][]float64, dim, classes int) error {
	if err := validateRows(x, nil, dim, classes); err != nil {
		return err
	}
	for _, row := range x {
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("non-finite feature value: %w", guard.ErrRejected)
			}
		}
	}
	return nil
}

// validateInferRows32 is validateInferRows for natively narrow rows.
func validateInferRows32(x [][]float32, dim, classes int) error {
	if len(x) == 0 {
		return errors.New("x must contain at least one row")
	}
	for i, row := range x {
		if len(row) != dim {
			return fmt.Errorf("row %d has %d features, want %d", i, len(row), dim)
		}
		for _, v := range row {
			if v != v || math.IsInf(float64(v), 0) {
				return fmt.Errorf("non-finite feature value: %w", guard.ErrRejected)
			}
		}
	}
	return nil
}

// inferValidationStatus maps a validation failure to its HTTP status:
// guard-rejected input is 422 (well-formed but unprocessable), anything
// else is a plain 400.
func inferValidationStatus(err error) int {
	if errors.Is(err, guard.ErrRejected) {
		return http.StatusUnprocessableEntity
	}
	return http.StatusBadRequest
}
