package serve

import (
	"testing"

	"freewayml/internal/core"
)

func TestServerCloseIdempotent(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Shift.WarmupPoints = 64
	s, err := New(cfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("first Close = %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
}
