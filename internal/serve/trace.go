// Request tracing for the worker: every process call (JSON, HTTP-binary,
// or a raw binary-connection frame) records one "worker.process" span into
// a bounded ring served at /v1/spans, and threads its trace id into the
// batch so the learner's TraceEvent joins the same trace. Trace context
// arrives in the W3C traceparent header (the router path) or embedded in a
// version-2 wire frame (the raw binary path); the header wins when both are
// present, because it carries the router hop's parentage. A request with
// neither gets a freshly minted root context, so single-node deployments
// still produce joinable trace ids.

package serve

import (
	"log"
	"net/http"
	"strconv"
	"time"

	"freewayml/internal/obs"
)

// TraceIDHeader echoes the request's trace id on process responses, so
// clients that did not mint their own context learn which id to follow.
const TraceIDHeader = obs.TraceIDHeader

// WorkerMicrosHeader reports the worker-side wall time of a process call,
// letting callers (the router, the load generator) split end-to-end
// latency into hop contributions without scraping spans.
const WorkerMicrosHeader = obs.WorkerMicrosHeader

// DefaultSpanCap bounds the worker span ring.
const DefaultSpanCap = 2048

// WithSpanCap sets the worker's span ring capacity (n <= 0 keeps
// DefaultSpanCap).
func WithSpanCap(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.spanCap = n
		}
	}
}

// SetWorkerID names this worker in its span records (conventionally the
// bound listen address). Call before serving; the default is "worker".
func (s *Server) SetWorkerID(id string) {
	if id != "" {
		s.workerID.Store(id)
	}
}

func (s *Server) workerIDString() string {
	if v, ok := s.workerID.Load().(string); ok && v != "" {
		return v
	}
	return "worker"
}

// Spans exposes the worker's span ring (tests, embedding servers).
func (s *Server) Spans() *obs.SpanRing { return s.spans }

// spanRec accumulates one worker span from request arrival to response.
type spanRec struct {
	s     *Server
	start time.Time
	span  obs.Span
}

// beginSpan opens the worker span for one process call. headerTP is the
// traceparent HTTP header ("" off the raw binary path), frameTP the
// frame-embedded context ("" on JSON). The returned record's trace id is
// what the batch must carry.
func (s *Server) beginSpan(streamID, proto, headerTP, frameTP string, rows int) *spanRec {
	tp := headerTP
	if tp == "" {
		tp = frameTP
	}
	var traceID, parent string
	if in, ok := obs.ParseTraceparent(tp); ok {
		traceID, parent = in.TraceID, in.SpanID
	} else {
		traceID = obs.NewTraceID()
	}
	now := time.Now()
	return &spanRec{
		s:     s,
		start: now,
		span: obs.Span{
			TraceID:       traceID,
			SpanID:        obs.NewSpanID(),
			Parent:        parent,
			Name:          "worker.process",
			Service:       s.workerIDString(),
			Stream:        streamID,
			Proto:         proto,
			StartUnixNano: now.UnixNano(),
			Rows:          rows,
		},
	}
}

// traceID returns the trace id the batch should carry.
func (r *spanRec) traceID() string { return r.span.TraceID }

// finish closes the span and adds it to the ring. fused is the coalesced
// group size (0 when the batch ran alone); err annotates failures.
func (r *spanRec) finish(fused int, err error) {
	r.span.DurationMicros = obs.FormatDurationMicros(time.Since(r.start))
	r.span.Fused = fused
	if err != nil {
		r.span.Status = "error"
		r.span.Err = obs.SpanError(err)
	} else {
		r.span.Status = "ok"
	}
	r.s.spans.Add(r.span)
}

// setHeaders stamps the trace id and worker wall time onto an HTTP
// response. Call after finish.
func (r *spanRec) setHeaders(h http.Header) {
	h.Set(TraceIDHeader, r.span.TraceID)
	h.Set(WorkerMicrosHeader, strconv.FormatFloat(r.span.DurationMicros, 'f', 1, 64))
}

// handleSpans serves the worker's span ring as a JSON array: ?id=<trace id>
// returns every span of that trace (the per-worker half of the router's
// /v1/cluster/trace), ?n=K the newest K spans, and no query the whole ring.
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	var spans []obs.Span
	if id := r.URL.Query().Get("id"); id != "" {
		spans = s.spans.ByTrace(id)
	} else {
		n := 0
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				s.writeError(w, http.StatusBadRequest, "n must be a non-negative integer")
				return
			}
			n = v
		}
		spans = s.spans.Last(n)
	}
	w.Header().Set("Content-Type", "application/json")
	if err := obs.WriteSpansJSON(w, spans); err != nil {
		log.Printf("serve: spans write failed: %v", err)
	}
}
