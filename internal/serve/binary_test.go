package serve

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"math/rand"
	"net"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	"freewayml/internal/wire"
)

// binFrame encodes one batch as a wire frame body for HTTP POSTing.
func binFrame(t *testing.T, id string, dtype byte, req ProcessRequest) []byte {
	t.Helper()
	b, err := wire.AppendFrame(nil, id, dtype, req.X, req.Y)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// postBinary POSTs a binary frame to /v1/process and decodes the response.
func postBinary(t *testing.T, url string, frame []byte) (*http.Response, ProcessResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/process", BinaryContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	var out ProcessResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	resp.Body.Close()
	return resp, out
}

func TestBinaryProcessEndToEnd(t *testing.T) {
	_, ts := testServer(t)
	rng := rand.New(rand.NewSource(11))
	var last ProcessResponse
	for i := 0; i < 20; i++ {
		resp, out := postBinary(t, ts.URL, binFrame(t, "", wire.Float64, batchReq(rng, 32, true)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if len(out.Predictions) != 32 {
			t.Fatalf("predictions = %d", len(out.Predictions))
		}
		if out.Fused != 0 {
			t.Fatalf("fused field present without coalescing: %d", out.Fused)
		}
		last = out
	}
	if last.Accuracy < 0.8 {
		t.Errorf("service accuracy = %v", last.Accuracy)
	}
	stats := getStats(t, ts.URL)
	if stats.Batches != 20 || stats.Samples != 640 {
		t.Errorf("stats = %+v", stats)
	}
}

// TestBinaryFrameAddressing: a frame may embed its stream id redundantly; a
// mismatch with the URL is a 400, a match (or an empty embedded id) is fine.
func TestBinaryFrameAddressing(t *testing.T) {
	_, ts := testServer(t)
	rng := rand.New(rand.NewSource(12))
	req := batchReq(rng, 4, true)
	resp, _ := postBinary(t, ts.URL, binFrame(t, DefaultStream, wire.Float64, req))
	if resp.StatusCode != http.StatusOK {
		t.Errorf("matching embedded id: status %d", resp.StatusCode)
	}
	resp, _ = postBinary(t, ts.URL, binFrame(t, "somewhere-else", wire.Float64, req))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("mismatched embedded id: status %d, want 400", resp.StatusCode)
	}
}

// TestBinaryMalformedFrames feeds corrupted frames through the HTTP binary
// path: every one must come back as the standard 400 JSON envelope — never a
// panic, never a hung connection. (The exhaustive corruption matrix lives in
// internal/wire; this verifies the serve-tier mapping.)
func TestBinaryMalformedFrames(t *testing.T) {
	_, ts := testServer(t)
	rng := rand.New(rand.NewSource(13))
	good := binFrame(t, "", wire.Float64, batchReq(rng, 4, true))

	corrupt := func(mut func(b []byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return mut(b)
	}
	cases := map[string][]byte{
		"empty body":       {},
		"truncated header": good[:10],
		"bad magic":        corrupt(func(b []byte) []byte { b[0] = 'X'; return b }),
		"bad version":      corrupt(func(b []byte) []byte { b[4] = 99; return b }),
		"bad dtype":        corrupt(func(b []byte) []byte { b[5] = 7; return b }),
		"row overflow": corrupt(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[12:], 0xFFFFFFFF)
			binary.LittleEndian.PutUint32(b[16:], 0xFFFFFFFF)
			return b
		}),
		"truncated payload": good[:len(good)-3],
		"trailing garbage":  append(append([]byte(nil), good...), 1, 2, 3),
	}
	for name, body := range cases {
		resp, err := http.Post(ts.URL+"/v1/process", BinaryContentType, bytes.NewReader(body))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var env errorEnvelope
		decErr := json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
		if decErr != nil || env.Error.Code != http.StatusBadRequest || env.Error.Message == "" {
			t.Errorf("%s: malformed error envelope (err=%v, env=%+v)", name, decErr, env)
		}
	}
	// The server is still healthy after the abuse.
	resp, _ := postBinary(t, ts.URL, good)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-abuse frame: status %d", resp.StatusCode)
	}
}

// TestBinaryBodyCap: the binary path enforces the same body cap as JSON.
func TestBinaryBodyCap(t *testing.T) {
	_, ts := testServerOpts(t, WithMaxBodyBytes(1024))
	rng := rand.New(rand.NewSource(14))
	resp, _ := postBinary(t, ts.URL, binFrame(t, "", wire.Float64, batchReq(rng, 100, true)))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize frame: status %d, want 413", resp.StatusCode)
	}
	resp, _ = postBinary(t, ts.URL, binFrame(t, "", wire.Float64, batchReq(rng, 4, true)))
	if resp.StatusCode != http.StatusOK {
		t.Errorf("small frame after cap hit: status %d", resp.StatusCode)
	}
}

// quantizeF32 rounds every feature to float32 precision, so the f32 wire
// round-trip is lossless and the JSON path sees bit-identical values.
func quantizeF32(req ProcessRequest) ProcessRequest {
	for _, row := range req.X {
		for j, v := range row {
			row[j] = float64(float32(v))
		}
	}
	return req
}

// traceLines fetches a stream's decision trace and strips the fields that
// legitimately differ across runs: wall-time stage timings and the
// randomly minted per-request trace ids.
func traceLines(t *testing.T, url string) []map[string]any {
	t.Helper()
	resp, err := http.Get(url + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		delete(ev, "stages")
		delete(ev, "trace_id")
		delete(ev, "fused_traces")
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func rawStats(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestJSONBinaryDifferential is the cross-format oracle: identical batch
// sequences driven through the JSON path and the binary path (against two
// fresh, identically seeded servers) must produce bitwise-identical
// predictions, responses, stats, and decision traces (timings stripped).
func TestJSONBinaryDifferential(t *testing.T) {
	for _, tc := range []struct {
		name  string
		dtype byte
	}{
		{"f64", wire.Float64},
		{"f32", wire.Float32},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, jsonTS := testServer(t)
			_, binTS := testServer(t)
			rng := rand.New(rand.NewSource(21))
			for i := 0; i < 12; i++ {
				req := batchReq(rng, 16, i%3 != 2) // mix labeled and inference batches
				if tc.dtype == wire.Float32 {
					req = quantizeF32(req)
				}
				jResp, jOut := postProcess(t, jsonTS.URL, req)
				bResp, bOut := postBinary(t, binTS.URL, binFrame(t, "", tc.dtype, req))
				if jResp.StatusCode != http.StatusOK || bResp.StatusCode != http.StatusOK {
					t.Fatalf("batch %d: statuses json=%d binary=%d", i, jResp.StatusCode, bResp.StatusCode)
				}
				if !reflect.DeepEqual(jOut, bOut) {
					t.Fatalf("batch %d: responses diverge:\njson:   %+v\nbinary: %+v", i, jOut, bOut)
				}
			}
			jStats, bStats := rawStats(t, jsonTS.URL), rawStats(t, binTS.URL)
			if !bytes.Equal(jStats, bStats) {
				t.Errorf("stats diverge:\njson:   %s\nbinary: %s", jStats, bStats)
			}
			jTrace, bTrace := traceLines(t, jsonTS.URL), traceLines(t, binTS.URL)
			if !reflect.DeepEqual(jTrace, bTrace) {
				t.Errorf("decision traces diverge (%d vs %d events)", len(jTrace), len(bTrace))
			}
		})
	}
}

// readPrefixed reads one uint32-length-prefixed JSON body off a binary
// connection.
func readPrefixed(t *testing.T, br *bufio.Reader) []byte {
	t.Helper()
	var pfx [4]byte
	if _, err := io.ReadFull(br, pfx[:]); err != nil {
		t.Fatal(err)
	}
	body := make([]byte, binary.LittleEndian.Uint32(pfx[:]))
	if _, err := io.ReadFull(br, body); err != nil {
		t.Fatal(err)
	}
	return body
}

// TestServeBinaryListener drives the persistent-connection tier: a sequence
// of length-prefixed frames down one TCP connection, a length-prefixed JSON
// response per frame, application errors answered without dropping the
// connection, framing errors answered and then the connection closed.
func TestServeBinaryListener(t *testing.T) {
	s, _ := testServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.ServeBinary(ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	rng := rand.New(rand.NewSource(31))

	// Several frames over one connection, all answered in order.
	for i := 0; i < 5; i++ {
		req := batchReq(rng, 8, true)
		frame, err := wire.AppendStreamFrame(nil, "tcp-stream", wire.Float64, req.X, req.Y)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(frame); err != nil {
			t.Fatal(err)
		}
		var out ProcessResponse
		if err := json.Unmarshal(readPrefixed(t, br), &out); err != nil {
			t.Fatal(err)
		}
		if out.Stream != "tcp-stream" || len(out.Predictions) != 8 {
			t.Fatalf("frame %d: response %+v", i, out)
		}
	}

	// A frame without an embedded id is an application error: answered with
	// the envelope, connection stays usable.
	req := batchReq(rng, 4, true)
	frame, err := wire.AppendStreamFrame(nil, "", wire.Float64, req.X, req.Y)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	var env errorEnvelope
	if err := json.Unmarshal(readPrefixed(t, br), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != http.StatusBadRequest {
		t.Fatalf("missing id: envelope %+v", env)
	}
	frame, err = wire.AppendStreamFrame(nil, "tcp-stream", wire.Float64, req.X, req.Y)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	var out ProcessResponse
	if err := json.Unmarshal(readPrefixed(t, br), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Predictions) != 4 {
		t.Fatalf("post-error frame: %+v", out)
	}

	// A framing error (corrupted magic inside the prefixed payload) is
	// answered and then the connection closes: the byte stream cannot be
	// resynchronized.
	bad := append([]byte(nil), frame...)
	bad[4] = 'X' // first magic byte, after the 4-byte length prefix
	if _, err := conn.Write(bad); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(readPrefixed(t, br), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != http.StatusBadRequest {
		t.Fatalf("bad magic: envelope %+v", env)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("connection still open after framing error: %v", err)
	}

	// Closing the listener shuts ServeBinary down cleanly.
	ln.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeBinary: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeBinary did not return after listener close")
	}
}

// TestCoalescedServing: with coalescing enabled and a gathering window,
// concurrent requests to one stream fuse into shared compute passes; every
// caller still gets its own rows' predictions and its own accuracy, and the
// response reports the fusion width.
func TestCoalescedServing(t *testing.T) {
	_, ts := testServerOpts(t, WithCoalescing(250*time.Millisecond, 0))
	rng := rand.New(rand.NewSource(41))

	const clients = 6
	reqs := make([]ProcessRequest, clients)
	for i := range reqs {
		reqs[i] = batchReq(rng, 8, true)
	}
	outs := make([]ProcessResponse, clients)
	codes := make([]int, clients)
	var start, wg sync.WaitGroup
	start.Add(1)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start.Wait()
			resp, out := postProcess(t, ts.URL, reqs[i])
			codes[i], outs[i] = resp.StatusCode, out
		}(i)
	}
	start.Done()
	wg.Wait()

	maxFused := 0
	for i := 0; i < clients; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("client %d: status %d", i, codes[i])
		}
		if len(outs[i].Predictions) != 8 {
			t.Fatalf("client %d: %d predictions", i, len(outs[i].Predictions))
		}
		if outs[i].Fused < 1 {
			t.Errorf("client %d: fused = %d, want >= 1", i, outs[i].Fused)
		}
		if outs[i].Accuracy < 0 || outs[i].Accuracy > 1 {
			t.Errorf("client %d: accuracy = %v", i, outs[i].Accuracy)
		}
		if outs[i].Fused > maxFused {
			maxFused = outs[i].Fused
		}
	}
	if maxFused < 2 {
		t.Errorf("no fusion observed across %d concurrent clients (max fused = %d)", clients, maxFused)
	}

	// The fused passes fed every row to the learner exactly once.
	stats := getStats(t, ts.URL)
	if stats.Samples != clients*8 {
		t.Errorf("samples = %d, want %d", stats.Samples, clients*8)
	}

	// Binary ingest rides the same coalescer.
	resp, out := postBinary(t, ts.URL, binFrame(t, "", wire.Float64, batchReq(rng, 8, true)))
	if resp.StatusCode != http.StatusOK || out.Fused != 1 {
		t.Errorf("binary under coalescing: status %d, fused %d", resp.StatusCode, out.Fused)
	}
}
