package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"freewayml/internal/core"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Shift.WarmupPoints = 64
	s, err := New(cfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		if err := s.Close(); err != nil {
			t.Error(err)
		}
	})
	return s, ts
}

func postProcess(t *testing.T, url string, req ProcessRequest) (*http.Response, ProcessResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/process", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out ProcessResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	resp.Body.Close()
	return resp, out
}

func batchReq(rng *rand.Rand, n int, labeled bool) ProcessRequest {
	req := ProcessRequest{X: make([][]float64, n)}
	if labeled {
		req.Y = make([]int, n)
	}
	for i := range req.X {
		c := rng.Intn(2)
		req.X[i] = []float64{float64(c)*2 + rng.NormFloat64()*0.3, rng.NormFloat64() * 0.3, 0}
		if labeled {
			req.Y[i] = c
		}
	}
	return req
}

func TestProcessAndStatsEndToEnd(t *testing.T) {
	_, ts := testServer(t)
	rng := rand.New(rand.NewSource(1))
	var last ProcessResponse
	for i := 0; i < 20; i++ {
		resp, out := postProcess(t, ts.URL, batchReq(rng, 32, true))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if len(out.Predictions) != 32 {
			t.Fatalf("predictions = %d", len(out.Predictions))
		}
		last = out
	}
	if last.Accuracy < 0.8 {
		t.Errorf("service accuracy = %v", last.Accuracy)
	}
	if last.Pattern == "" || last.Strategy == "" {
		t.Error("missing pattern/strategy")
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Batches != 20 || stats.Samples != 640 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.GAcc <= 0 || stats.SI <= 0 {
		t.Errorf("degenerate stats: %+v", stats)
	}
}

func TestUnlabeledBatchInfersOnly(t *testing.T) {
	_, ts := testServer(t)
	rng := rand.New(rand.NewSource(2))
	resp, out := postProcess(t, ts.URL, batchReq(rng, 8, false))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Accuracy != -1 {
		t.Errorf("unlabeled accuracy = %v", out.Accuracy)
	}
	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Batches != 0 {
		t.Errorf("unlabeled batch counted in metrics: %+v", stats)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := testServer(t)
	cases := []ProcessRequest{
		{},                       // empty
		{X: [][]float64{{1, 2}}}, // wrong width
		{X: [][]float64{{1, 2, 3}}, Y: []int{0, 1}}, // label count
		{X: [][]float64{{1, 2, 3}}, Y: []int{7}},    // label range
	}
	for i, req := range cases {
		resp, _ := postProcess(t, ts.URL, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, resp.StatusCode)
		}
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/process", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d", resp.StatusCode)
	}
}

func TestMethodsEnforced(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/process")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/process: %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/stats", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/stats: %d", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(core.Config{}, 3, 2); err == nil {
		t.Error("zero config should error")
	}
}
