// Package serve exposes a FreewayML learner as an HTTP JSON service — the
// deployment posture of paper Sec. V, where the framework is connected to a
// live stream whose batches arrive labeled (training) or unlabeled
// (inference). One learner instance serves both through a single endpoint;
// requests are serialized because streaming learning is stateful and
// order-dependent.
//
// The server is hardened for unconstrained input: request bodies are
// capped (413 on overflow), every batch passes the learner's input
// guardrails, and an optional checkpoint schedule atomically snapshots the
// learner every N processed batches so a crash loses at most one
// checkpoint interval of training.
//
// Observability: every server owns a core.Observer (or the one injected
// with WithObserver), so /v1/metrics serves the Prometheus text exposition
// of the learner's series, /v1/trace serves the per-batch decision trace as
// JSONL, and WithPprof mounts the standard net/http/pprof handlers for
// live profiling. Errors on every /v1/* endpoint share one JSON envelope:
// {"error": {"code": <status>, "message": "..."}}.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"freewayml/internal/core"
	"freewayml/internal/guard"
	"freewayml/internal/obs"
	"freewayml/internal/stream"
)

// MetricsContentType is the Prometheus text exposition content type served
// by /v1/metrics.
const MetricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// TraceContentType is the newline-delimited JSON content type served by
// /v1/trace.
const TraceContentType = "application/x-ndjson"

// DefaultMaxBodyBytes caps /v1/process request bodies (8 MiB ≈ a 1024-row
// batch of 1000 features with labels, with JSON overhead to spare).
const DefaultMaxBodyBytes = 8 << 20

// ProcessRequest is one mini-batch submitted to the service. Y may be
// omitted for pure-inference batches.
type ProcessRequest struct {
	X [][]float64 `json:"x"`
	Y []int       `json:"y,omitempty"`
}

// ProcessResponse reports the learner's decision for the batch.
type ProcessResponse struct {
	Predictions   []int   `json:"predictions"`
	Pattern       string  `json:"pattern"`
	Strategy      string  `json:"strategy"`
	ShiftDistance float64 `json:"shift_distance"`
	Severity      float64 `json:"severity"`
	Accuracy      float64 `json:"accuracy"` // -1 for unlabeled batches
}

// StatsResponse summarizes the learner's prequential metrics and its
// fault-tolerance counters.
type StatsResponse struct {
	Batches          int     `json:"batches"`
	Samples          int     `json:"samples"`
	GAcc             float64 `json:"g_acc"`
	SI               float64 `json:"si"`
	KnowledgeEntries int     `json:"knowledge_entries"`
	KnowledgeBytes   int     `json:"knowledge_bytes"`

	// Robustness counters (the fault-tolerance layer).
	SanitizedValues    int `json:"sanitized_values"`
	RejectedBatches    int `json:"rejected_batches"`
	Divergences        int `json:"divergences"`
	Recoveries         int `json:"recoveries"`
	AsyncErrorsDropped int `json:"async_errors_dropped"`
	KnowledgeSkipped   int `json:"knowledge_skipped"`
	SpillFailures      int `json:"spill_failures"`
	CheckpointSaves    int `json:"checkpoint_saves"`
	CheckpointErrors   int `json:"checkpoint_errors"`

	// HTTP-layer counters: total requests served, error responses sent
	// (status >= 400), and request bodies refused by the size cap.
	HTTPRequests int64 `json:"http_requests"`
	HTTPRejects  int64 `json:"http_rejects"`
	BodyCapHits  int64 `json:"body_cap_hits"`
}

// errorEnvelope is the JSON error body every /v1/* endpoint returns.
type errorEnvelope struct {
	Error struct {
		Code    int    `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// Option customizes a Server.
type Option func(*Server)

// WithMaxBodyBytes overrides the request-body cap (n <= 0 keeps the
// default).
func WithMaxBodyBytes(n int64) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxBody = n
		}
	}
}

// WithCheckpoint enables periodic crash-safe snapshots: after every
// `every` processed batches the learner is atomically checkpointed to
// path. A save failure is counted and logged, never fatal to serving.
func WithCheckpoint(path string, every int) Option {
	return func(s *Server) {
		if path != "" && every > 0 {
			s.ckptPath, s.ckptEvery = path, every
		}
	}
}

// WithObserver injects a pre-built observer (e.g. one registering into a
// shared registry). Without it the server builds its own over a fresh
// registry.
func WithObserver(o *core.Observer) Option {
	return func(s *Server) {
		if o != nil {
			s.obs = o
		}
	}
}

// WithTraceCap sets the decision-trace ring capacity of the server-built
// observer (ignored when WithObserver supplies one; n <= 0 keeps the
// default of 1024 events).
func WithTraceCap(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.traceCap = n
		}
	}
}

// WithPprof mounts the net/http/pprof handlers under /debug/pprof/ —
// opt-in because profiling endpoints expose internals and cost CPU when
// scraped, so they have no place on an unaudited listener by default.
func WithPprof() Option {
	return func(s *Server) { s.pprofOn = true }
}

// Server wraps one learner behind an http.Handler.
type Server struct {
	mu      sync.Mutex
	learner *core.Learner
	dim     int
	classes int
	seq     int
	mux     *http.ServeMux

	maxBody   int64
	ckptPath  string
	ckptEvery int
	ckptSaves int
	ckptErrs  int

	obs      *core.Observer
	traceCap int
	pprofOn  bool
	reqs     atomic.Int64
	rejects  atomic.Int64
	bodyCap  atomic.Int64
}

// New builds a server around a fresh learner for the given stream shape.
func New(cfg core.Config, dim, classes int, opts ...Option) (*Server, error) {
	l, err := core.NewLearner(cfg, dim, classes)
	if err != nil {
		return nil, err
	}
	s := &Server{learner: l, dim: dim, classes: classes, mux: http.NewServeMux(), maxBody: DefaultMaxBodyBytes}
	for _, opt := range opts {
		opt(s)
	}
	if s.obs == nil {
		s.obs = core.NewObserver(obs.NewRegistry(), s.traceCap)
	}
	l.SetObserver(s.obs)
	s.handle("/v1/process", s.handleProcess)
	s.handle("/v1/stats", s.handleStats)
	s.handle("/v1/healthz", s.handleHealth)
	s.handle("/v1/metrics", s.handleMetrics)
	s.handle("/v1/trace", s.handleTrace)
	if s.pprofOn {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// Observer returns the server's observability layer (never nil after New).
func (s *Server) Observer() *core.Observer { return s.obs }

// handle registers h with per-path request counting.
func (s *Server) handle(path string, h http.HandlerFunc) {
	c := s.obs.Registry().Counter("freeway_http_requests_total", "HTTP requests by path.", "path", path)
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		s.reqs.Add(1)
		c.Inc()
		h(w, r)
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close flushes the learner's asynchronous work and, when a checkpoint
// schedule is configured, writes a final snapshot so a graceful shutdown
// loses nothing.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var ckptErr error
	if s.ckptPath != "" && s.seq > 0 {
		ckptErr = s.saveCheckpointLocked()
	}
	if err := s.learner.Close(); err != nil {
		return err
	}
	return ckptErr
}

// SaveCheckpointFile atomically snapshots the learner to path on demand.
func (s *Server) SaveCheckpointFile(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.learner.SaveCheckpointFile(path)
}

// LoadCheckpointFile restores the learner from a checkpoint written by
// SaveCheckpointFile — the resume path after a restart.
func (s *Server) LoadCheckpointFile(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.learner.LoadCheckpointFile(path)
}

func (s *Server) saveCheckpointLocked() error {
	err := s.learner.SaveCheckpointFile(s.ckptPath)
	if err != nil {
		s.ckptErrs++
		log.Printf("serve: checkpoint to %s failed: %v", s.ckptPath, err)
		return err
	}
	s.ckptSaves++
	return nil
}

func (s *Server) handleProcess(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	var req ProcessRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.bodyCap.Add(1)
			s.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request: %v", err))
		return
	}
	if err := validate(req, s.dim, s.classes); err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	out, status, err := s.process(req)
	if err != nil {
		s.writeError(w, status, err.Error())
		return
	}
	writeJSON(w, out)
}

// process runs one decoded batch through the learner and maps failures to
// an HTTP status: guard-rejected input is the client's problem (422), any
// other Process failure is ours (500).
func (s *Server) process(req ProcessRequest) (ProcessResponse, int, error) {
	s.mu.Lock()
	b := stream.Batch{Seq: s.seq, X: req.X, Y: req.Y}
	s.seq++
	res, err := s.learner.Process(b)
	if err == nil && s.ckptEvery > 0 && s.seq%s.ckptEvery == 0 {
		_ = s.saveCheckpointLocked() // counted + logged; serving continues
	}
	s.mu.Unlock()
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, guard.ErrRejected) {
			status = http.StatusUnprocessableEntity
		}
		return ProcessResponse{}, status, err
	}

	pattern := res.Pattern
	if res.Pattern.IsSlight() {
		pattern = res.SubPattern
	}
	return ProcessResponse{
		Predictions:   res.Pred,
		Pattern:       pattern.String(),
		Strategy:      res.Strategy.String(),
		ShiftDistance: res.Observation.Distance,
		Severity:      res.Observation.Severity,
		Accuracy:      res.Accuracy,
	}, http.StatusOK, nil
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	s.mu.Lock()
	m := s.learner.Metrics()
	health := s.learner.Stats()
	resp := StatsResponse{
		Batches:          m.Batches(),
		Samples:          m.Samples(),
		GAcc:             m.GAcc(),
		SI:               m.SI(),
		KnowledgeEntries: s.learner.KnowledgeStore().Len(),
		KnowledgeBytes:   s.learner.KnowledgeStore().MemoryBytes(),

		SanitizedValues:    health.SanitizedValues,
		RejectedBatches:    health.RejectedBatches,
		Divergences:        health.Divergences,
		Recoveries:         health.Recoveries,
		AsyncErrorsDropped: health.AsyncErrorsDropped,
		KnowledgeSkipped:   health.KnowledgeSkipped,
		SpillFailures:      health.SpillFailures + health.SpillLoadFailures,
		CheckpointSaves:    s.ckptSaves,
		CheckpointErrors:   s.ckptErrs,

		HTTPRequests: s.reqs.Load(),
		HTTPRejects:  s.rejects.Load(),
		BodyCapHits:  s.bodyCap.Load(),
	}
	s.mu.Unlock()
	writeJSON(w, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

// handleMetrics serves the Prometheus text exposition of every series the
// observer maintains.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", MetricsContentType)
	if err := s.obs.Registry().WritePrometheus(w); err != nil {
		log.Printf("serve: metrics write failed: %v", err)
	}
}

// handleTrace serves the decision trace as JSONL, oldest retained event
// first. ?n=K limits the output to the newest K events.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			s.writeError(w, http.StatusBadRequest, "n must be a non-negative integer")
			return
		}
		n = v
	}
	w.Header().Set("Content-Type", TraceContentType)
	if err := s.obs.Trace().WriteJSONL(w, n); err != nil {
		log.Printf("serve: trace write failed: %v", err)
	}
}

// writeError sends the shared JSON error envelope and counts the reject.
func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	s.rejects.Add(1)
	var body errorEnvelope
	body.Error.Code = status
	body.Error.Message = msg
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(body); err != nil {
		log.Printf("serve: error envelope write failed: %v", err)
	}
}

func validate(req ProcessRequest, dim, classes int) error {
	b := stream.Batch{X: req.X, Y: req.Y}
	return b.ValidateShape(dim, classes)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
