// Package serve exposes a FreewayML learner as an HTTP JSON service — the
// deployment posture of paper Sec. V, where the framework is connected to a
// live stream whose batches arrive labeled (training) or unlabeled
// (inference). One learner instance serves both through a single endpoint;
// requests are serialized because streaming learning is stateful and
// order-dependent.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"freewayml/internal/core"
	"freewayml/internal/stream"
)

// ProcessRequest is one mini-batch submitted to the service. Y may be
// omitted for pure-inference batches.
type ProcessRequest struct {
	X [][]float64 `json:"x"`
	Y []int       `json:"y,omitempty"`
}

// ProcessResponse reports the learner's decision for the batch.
type ProcessResponse struct {
	Predictions   []int   `json:"predictions"`
	Pattern       string  `json:"pattern"`
	Strategy      string  `json:"strategy"`
	ShiftDistance float64 `json:"shift_distance"`
	Severity      float64 `json:"severity"`
	Accuracy      float64 `json:"accuracy"` // -1 for unlabeled batches
}

// StatsResponse summarizes the learner's prequential metrics.
type StatsResponse struct {
	Batches          int     `json:"batches"`
	Samples          int     `json:"samples"`
	GAcc             float64 `json:"g_acc"`
	SI               float64 `json:"si"`
	KnowledgeEntries int     `json:"knowledge_entries"`
	KnowledgeBytes   int     `json:"knowledge_bytes"`
}

// Server wraps one learner behind an http.Handler.
type Server struct {
	mu      sync.Mutex
	learner *core.Learner
	dim     int
	classes int
	seq     int
	mux     *http.ServeMux
}

// New builds a server around a fresh learner for the given stream shape.
func New(cfg core.Config, dim, classes int) (*Server, error) {
	l, err := core.NewLearner(cfg, dim, classes)
	if err != nil {
		return nil, err
	}
	s := &Server{learner: l, dim: dim, classes: classes, mux: http.NewServeMux()}
	s.mux.HandleFunc("/v1/process", s.handleProcess)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/healthz", s.handleHealth)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close flushes the learner's asynchronous work.
func (s *Server) Close() error { return s.learner.Close() }

func (s *Server) handleProcess(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req ProcessRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	if err := validate(req, s.dim, s.classes); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	s.mu.Lock()
	b := stream.Batch{Seq: s.seq, X: req.X, Y: req.Y}
	s.seq++
	res, err := s.learner.Process(b)
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}

	pattern := res.Pattern
	if res.Pattern.IsSlight() {
		pattern = res.SubPattern
	}
	writeJSON(w, ProcessResponse{
		Predictions:   res.Pred,
		Pattern:       pattern.String(),
		Strategy:      res.Strategy.String(),
		ShiftDistance: res.Observation.Distance,
		Severity:      res.Observation.Severity,
		Accuracy:      res.Accuracy,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	m := s.learner.Metrics()
	resp := StatsResponse{
		Batches:          m.Batches(),
		Samples:          m.Samples(),
		GAcc:             m.GAcc(),
		SI:               m.SI(),
		KnowledgeEntries: s.learner.KnowledgeStore().Len(),
		KnowledgeBytes:   s.learner.KnowledgeStore().MemoryBytes(),
	}
	s.mu.Unlock()
	writeJSON(w, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

func validate(req ProcessRequest, dim, classes int) error {
	if len(req.X) == 0 {
		return errors.New("empty batch")
	}
	for _, row := range req.X {
		if len(row) != dim {
			return fmt.Errorf("row width %d, want %d", len(row), dim)
		}
	}
	if req.Y != nil {
		if len(req.Y) != len(req.X) {
			return errors.New("label count mismatch")
		}
		for _, y := range req.Y {
			if y < 0 || y >= classes {
				return fmt.Errorf("label %d outside [0,%d)", y, classes)
			}
		}
	}
	return nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
