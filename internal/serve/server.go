// Package serve exposes FreewayML streams as an HTTP JSON service — the
// deployment posture of paper Sec. V, where the framework is connected to
// live streams whose batches arrive labeled (training) or unlabeled
// (inference). The server hosts many named streams behind one listener,
// each backed by its own learner via a session.Manager:
//
//	POST /v1/streams/:id/process   one mini-batch for stream {id}
//	GET  /v1/streams/:id/stats     that stream's prequential metrics
//	GET  /v1/streams/:id/trace     that stream's decision trace (JSONL)
//	GET  /v1/streams                resident streams + aggregate counters
//
// Requests to one stream are serialized (streaming learning is stateful and
// order-dependent); different streams process concurrently. The pre-session
// endpoints (/v1/process, /v1/stats, /v1/trace) remain as aliases for the
// stream named "default", so existing clients keep working unchanged.
//
// The server is hardened for unconstrained input: request bodies are capped
// (413 on overflow), every batch passes the learner's input guardrails, and
// checkpointing is a session concern — WithCheckpointDir persists one
// crash-safe envelope per stream (restored when the id reappears), while
// the legacy WithCheckpoint keeps the single-file behaviour for "default".
//
// Observability: /v1/metrics serves the Prometheus text exposition of every
// stream's series (each labelled stream=<id>) plus the session-lifecycle
// aggregates, and WithPprof mounts the standard net/http/pprof handlers.
// Errors on every /v1/* endpoint share one JSON envelope:
// {"error": {"code": <status>, "message": "..."}}.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"freewayml/internal/coalesce"
	"freewayml/internal/core"
	"freewayml/internal/guard"
	"freewayml/internal/knowledge"
	"freewayml/internal/linalg"
	"freewayml/internal/obs"
	"freewayml/internal/session"
	"freewayml/internal/stream"
)

// StatusClientClosedRequest reports a request whose client went away (or
// whose router retry fired) before the batch finished — nginx's 499, since
// no standard status covers "the caller cancelled".
const StatusClientClosedRequest = 499

// MetricsContentType is the Prometheus text exposition content type served
// by /v1/metrics.
const MetricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// TraceContentType is the newline-delimited JSON content type served by
// /v1/trace.
const TraceContentType = "application/x-ndjson"

// DefaultMaxBodyBytes caps process request bodies (8 MiB ≈ a 1024-row
// batch of 1000 features with labels, with JSON overhead to spare).
const DefaultMaxBodyBytes = 8 << 20

// DefaultStream is the stream id the legacy single-stream endpoints serve.
const DefaultStream = session.DefaultStream

// ProcessRequest is one mini-batch submitted to the service. Y may be
// omitted for pure-inference batches.
type ProcessRequest struct {
	X [][]float64 `json:"x"`
	Y []int       `json:"y,omitempty"`
}

// ProcessResponse reports the learner's decision for the batch.
type ProcessResponse struct {
	Stream        string  `json:"stream"`
	Predictions   []int   `json:"predictions"`
	Pattern       string  `json:"pattern"`
	Strategy      string  `json:"strategy"`
	ShiftDistance float64 `json:"shift_distance"`
	Severity      float64 `json:"severity"`
	Accuracy      float64 `json:"accuracy"` // -1 for unlabeled batches
	// Fused is the number of requests whose rows shared this batch's fused
	// compute pass. Present only when coalescing is enabled (omitted
	// otherwise, keeping the response byte-identical to earlier releases).
	Fused int `json:"fused,omitempty"`
}

// StatsResponse summarizes one stream's prequential metrics and its
// fault-tolerance counters, plus the server-wide HTTP counters.
type StatsResponse struct {
	Stream           string  `json:"stream"`
	Batches          int     `json:"batches"`
	Samples          int     `json:"samples"`
	GAcc             float64 `json:"g_acc"`
	SI               float64 `json:"si"`
	KnowledgeEntries int     `json:"knowledge_entries"`
	KnowledgeBytes   int     `json:"knowledge_bytes"`
	SharedKnowledge  bool    `json:"shared_knowledge"`
	Restored         bool    `json:"restored"`

	// Robustness counters (the fault-tolerance layer).
	SanitizedValues    int   `json:"sanitized_values"`
	RejectedBatches    int   `json:"rejected_batches"`
	Divergences        int   `json:"divergences"`
	Recoveries         int   `json:"recoveries"`
	AsyncErrorsDropped int   `json:"async_errors_dropped"`
	KnowledgeSkipped   int   `json:"knowledge_skipped"`
	SpillFailures      int   `json:"spill_failures"`
	CheckpointSaves    int64 `json:"checkpoint_saves"`
	CheckpointErrors   int64 `json:"checkpoint_errors"`

	// CheckpointErrorsTotal is the process-wide failed-checkpoint count
	// (every stream, resident or evicted) — the spill path is best-effort,
	// so silent failure here is how state quietly stops being durable.
	CheckpointErrorsTotal int64 `json:"checkpoint_errors_total"`

	// HTTP-layer counters (server-wide): total requests served, error
	// responses sent (status >= 400), request bodies refused by the size
	// cap, and requests cancelled by the client mid-batch.
	HTTPRequests      int64 `json:"http_requests"`
	HTTPRejects       int64 `json:"http_rejects"`
	BodyCapHits       int64 `json:"body_cap_hits"`
	CancelledRequests int64 `json:"cancelled_requests"`
}

// StreamsResponse is the /v1/streams listing: every resident stream's
// summary plus the manager's lifecycle aggregates.
type StreamsResponse struct {
	Streams  []session.Stats        `json:"streams"`
	Sessions session.AggregateStats `json:"sessions"`
}

// errorEnvelope is the JSON error body every /v1/* endpoint returns.
type errorEnvelope struct {
	Error struct {
		Code    int    `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// bufPool recycles the serialization scratch of the serve hot path: request
// bodies are slurped into a pooled buffer before decoding, and responses
// are encoded into one before the single Write. The pool owns only these
// byte buffers — decoded batch data (req.X, req.Y) is handed to the learner,
// which retains labeled rows in its windows, so it is never recycled.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledBufBytes keeps pathological one-off giants (a max-size batch
// body) from pinning memory in the pool forever.
const maxPooledBufBytes = 1 << 20

func getBuf() *bytes.Buffer { return bufPool.Get().(*bytes.Buffer) }

func putBuf(b *bytes.Buffer) {
	if b.Cap() > maxPooledBufBytes {
		return
	}
	b.Reset()
	bufPool.Put(b)
}

// Option customizes a Server.
type Option func(*Server)

// WithMaxBodyBytes overrides the request-body cap (n <= 0 keeps the
// default).
func WithMaxBodyBytes(n int64) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxBody = n
		}
	}
}

// WithCheckpoint enables periodic crash-safe snapshots of the "default"
// stream to a single file — the pre-session behaviour: after every `every`
// processed batches the learner is atomically checkpointed to path, plus a
// final save on Close. Restoring stays an explicit LoadCheckpointFile call.
// A save failure is counted and logged, never fatal to serving. Prefer
// WithCheckpointDir for multi-stream deployments.
func WithCheckpoint(path string, every int) Option {
	return func(s *Server) {
		if path != "" && every > 0 {
			s.scfg.DefaultCheckpointPath = path
			s.scfg.CheckpointEvery = every
		}
	}
}

// WithCheckpointDir persists one checkpoint envelope per stream under dir
// (<dir>/<id>.ckpt): written every `every` batches (0 = only on eviction
// and shutdown) and restored automatically when a stream id reappears.
func WithCheckpointDir(dir string, every int) Option {
	return func(s *Server) {
		if dir != "" {
			s.scfg.CheckpointDir = dir
			if every > 0 {
				s.scfg.CheckpointEvery = every
			}
		}
	}
}

// WithSessionLimits bounds resident streams (max, 0 keeps the default of
// session.DefaultMaxSessions) and evicts streams idle longer than ttl
// (0 disables TTL eviction). Evicted streams checkpoint when persistence is
// configured and are recreated on their next request.
func WithSessionLimits(max int, ttl time.Duration) Option {
	return func(s *Server) {
		if max > 0 {
			s.scfg.MaxSessions = max
		}
		if ttl > 0 {
			s.scfg.TTL = ttl
		}
	}
}

// WithShards sets the session map's lock-stripe count (n <= 0 keeps the
// automatic GOMAXPROCS-sized default; 1 degrades to a single-lock manager —
// useful only as a benchmark baseline).
func WithShards(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.scfg.Shards = n
		}
	}
}

// WithSharedKnowledge backs every stream with one process-wide knowledge
// store, so reoccurring distributions learned on one stream can be reused
// by another. Off by default: sharing trades stream isolation for
// cross-stream reuse.
func WithSharedKnowledge() Option {
	return func(s *Server) { s.scfg.SharedKnowledge = true }
}

// WithTraceCap sets each stream's decision-trace ring capacity (n <= 0
// keeps the default of 1024 events).
func WithTraceCap(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.scfg.TraceCap = n
		}
	}
}

// WithCoalescing fuses concurrently arriving batches for the same stream
// into group-committed compute passes (see internal/coalesce): when a
// stream is idle its batch runs immediately; under concurrent load, batches
// that arrive while a pass is in flight pack into one fused tensor and run
// as a single blocked-GEMM pass. window adds an optional extra gathering
// delay (0 = pure group commit, no idle latency); maxRows bounds the fused
// batch (0 = unbounded). Applies to both the JSON and binary ingest paths;
// responses gain the "fused" field.
func WithCoalescing(window time.Duration, maxRows int) Option {
	return func(s *Server) {
		s.coalesceOn = true
		if window > 0 {
			s.coalWindow = window
		}
		if maxRows > 0 {
			s.coalMaxRows = maxRows
		}
	}
}

// WithBinaryReadTimeout sets the per-frame read deadline of persistent
// binary connections (d <= 0 keeps the 30s default) — the binary
// equivalent of the HTTP server's ReadTimeout.
func WithBinaryReadTimeout(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.binTimeout = d
		}
	}
}

// WithPprof mounts the net/http/pprof handlers under /debug/pprof/ —
// opt-in because profiling endpoints expose internals and cost CPU when
// scraped, so they have no place on an unaudited listener by default.
func WithPprof() Option {
	return func(s *Server) { s.pprofOn = true }
}

// Server hosts named streams behind an http.Handler.
type Server struct {
	mgr     *session.Manager
	dim     int
	classes int
	mux     *http.ServeMux

	maxBody int64
	scfg    session.Config
	pprofOn bool

	// tier is the inference-plane kernel tier (from the learner config).
	// Under a speed tier the binary ingest path decodes float32 inference
	// frames natively and routes them through the f32 read plane.
	tier linalg.KernelTier

	coalesceOn  bool
	coalWindow  time.Duration
	coalMaxRows int
	coal        *coalesce.Coalescer
	// inferCoal is the inference plane's cross-stream coalescer: label-less
	// rows from many streams pack into one fused group. Separate from coal
	// because training groups are per-stream and inference groups are not,
	// and so the two planes never delay each other's windows.
	inferCoal *coalesce.Coalescer

	binTimeout time.Duration
	binMu      sync.Mutex
	binLns     map[net.Listener]struct{}
	binConns   map[net.Conn]struct{}

	workerID atomic.Value // string; span Service name
	spanCap  int
	spans    *obs.SpanRing

	reqs       atomic.Int64
	rejects    atomic.Int64
	bodyCap    atomic.Int64
	cancelled  atomic.Int64
	cCancel    *obs.Counter
	cBinFrames *obs.Counter
	cBinGrew   *obs.Counter

	closing   atomic.Bool
	closeOnce sync.Once
	closeErr  error

	// routeCounters maps a route template (not the raw path — ids would
	// explode label cardinality) to its request counter.
	routeCounters map[string]*obs.Counter
}

// New builds a server hosting streams of the given shape, each served by a
// fresh learner built from cfg. The "default" stream is created eagerly so
// legacy single-stream clients and scrapers see its series immediately.
func New(cfg core.Config, dim, classes int, opts ...Option) (*Server, error) {
	s := &Server{
		dim:        dim,
		classes:    classes,
		mux:        http.NewServeMux(),
		maxBody:    DefaultMaxBodyBytes,
		binTimeout: DefaultBinaryReadTimeout,
		spanCap:    DefaultSpanCap,
		scfg: session.Config{
			Learner: cfg,
			Dim:     dim,
			Classes: classes,
		},
	}
	for _, opt := range opts {
		opt(s)
	}
	tier, err := linalg.ParseKernelTier(cfg.KernelTier)
	if err != nil {
		return nil, err
	}
	s.tier = tier
	s.spans = obs.NewSpanRing(s.spanCap)
	mgr, err := session.NewManager(s.scfg)
	if err != nil {
		return nil, err
	}
	s.mgr = mgr
	if _, err := mgr.Ensure(DefaultStream); err != nil {
		mgr.Close()
		return nil, err
	}
	if s.coalesceOn {
		coal, err := coalesce.New(coalesce.Config{
			Window:  s.coalWindow,
			MaxRows: s.coalMaxRows,
			Metrics: coalesce.NewMetrics(mgr.Registry()),
			// The fused pass runs detached from any one member's request
			// context: members that give up are answered 499, but their rows
			// are already packed and the pass must complete for the rest.
			Run: func(b coalesce.Batch) (any, error) {
				sb := stream.Batch{X: b.X, Y: b.Y}
				// The fused pass produces one TraceEvent; it carries the first
				// member's trace id plus the full fused membership so every
				// participating trace can find the shared decision record.
				if len(b.TraceIDs) > 0 {
					sb.TraceID = b.TraceIDs[0]
					if b.Members > 1 {
						sb.FusedTraces = b.TraceIDs
					}
				}
				return s.mgr.ProcessBatch(context.Background(), b.ID, sb)
			},
		})
		if err != nil {
			mgr.Close()
			return nil, err
		}
		s.coal = coal

		// The inference plane gets its own coalescer (cross-stream groups,
		// separate windows) and its own metric family so read-path fusion is
		// observable apart from training-path fusion.
		reg := mgr.Registry()
		inferCoal, err := coalesce.New(coalesce.Config{
			Window:  s.coalWindow,
			MaxRows: s.coalMaxRows,
			Metrics: &coalesce.Metrics{
				Submits: reg.Counter("freeway_infer_coalesce_submits_total", "Inference batches submitted to the cross-stream coalescer."),
				Passes:  reg.Counter("freeway_infer_coalesce_passes_total", "Cross-stream fused inference passes executed."),
				Members: reg.Histogram("freeway_infer_coalesce_members", "Inference batches fused per pass.", obs.ExponentialBuckets(1, 2, 8)),
				Rows:    reg.Histogram("freeway_infer_coalesce_rows", "Rows per fused inference pass.", obs.ExponentialBuckets(1, 2, 12)),
				Wait:    reg.Histogram("freeway_infer_coalesce_wait_seconds", "Time from inference group open to fused pass start.", nil),
				Fill:    reg.Histogram("freeway_infer_coalesce_fill_ratio", "Rows over MaxRows at inference pass start.", obs.LinearBuckets(0.1, 0.1, 10)),
				Depth:   reg.Gauge("freeway_infer_coalesce_depth", "Inference groups gathering or queued."),
			},
			Run: s.runInferGroup,
		})
		if err != nil {
			mgr.Close()
			return nil, err
		}
		s.inferCoal = inferCoal
	}

	s.routeCounters = map[string]*obs.Counter{}
	for _, route := range []string{
		"/v1/process", "/v1/stats", "/v1/trace", "/v1/healthz", "/v1/health",
		"/v1/readyz", "/v1/metrics", "/v1/streams", "/v1/knowledge", "/v1/knowledge/merge",
		"/v1/streams/:id/process", "/v1/streams/:id/stats", "/v1/streams/:id/trace",
		"/v1/streams/:id/evict", "/v1/streams/:id/infer", "/v1/streams/:id/graph",
		"/v1/streams/:id/other", "/v1/spans", "binary",
	} {
		s.routeCounters[route] = mgr.Registry().Counter("freeway_http_requests_total", "HTTP requests by route.", "path", route)
	}
	s.cCancel = mgr.Registry().Counter("freeway_http_cancelled_total", "Requests abandoned by the client (or a router retry) before the batch finished.")
	s.cBinFrames = mgr.Registry().Counter("freeway_binary_frames_total", "Binary batch frames decoded.")
	s.cBinGrew = mgr.Registry().Counter("freeway_binary_decode_allocs_total", "Binary frame decodes that had to grow storage (cold frame, or a batch larger than any before it on that slot).")

	s.handle("/v1/process", func(w http.ResponseWriter, r *http.Request) { s.handleProcess(w, r, DefaultStream) })
	s.handle("/v1/stats", func(w http.ResponseWriter, r *http.Request) { s.handleStats(w, r, DefaultStream) })
	s.handle("/v1/trace", func(w http.ResponseWriter, r *http.Request) { s.handleTrace(w, r, DefaultStream) })
	s.handle("/v1/healthz", s.handleHealth)
	s.handle("/v1/health", s.handleHealth) // pre-split alias for the liveness probe
	s.handle("/v1/readyz", s.handleReady)
	s.handle("/v1/metrics", s.handleMetrics)
	s.handle("/v1/streams", s.handleStreams)
	s.handle("/v1/knowledge", s.handleKnowledgeExport)
	s.handle("/v1/knowledge/merge", s.handleKnowledgeMerge)
	s.handle("/v1/spans", s.handleSpans)
	s.mux.HandleFunc("/v1/streams/", s.handleStreamRoute)
	if s.pprofOn {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// Sessions exposes the session manager (stats, deterministic eviction in
// tests, the shared knowledge store).
func (s *Server) Sessions() *session.Manager { return s.mgr }

// handle registers h at an exact path with request counting.
func (s *Server) handle(path string, h http.HandlerFunc) {
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		s.reqs.Add(1)
		s.routeCounters[path].Inc()
		h(w, r)
	})
}

// handleStreamRoute dispatches /v1/streams/:id/{process|stats|trace|evict|infer|graph}.
// Anything else under the prefix gets the JSON 404 envelope (the mux's
// plain-text NotFound would break clients expecting the envelope contract).
func (s *Server) handleStreamRoute(w http.ResponseWriter, r *http.Request) {
	s.reqs.Add(1)
	rest := strings.TrimPrefix(r.URL.Path, "/v1/streams/")
	id, action, ok := strings.Cut(rest, "/")
	if ok {
		switch action {
		case "process":
			s.routeCounters["/v1/streams/:id/process"].Inc()
			s.handleProcess(w, r, id)
			return
		case "stats":
			s.routeCounters["/v1/streams/:id/stats"].Inc()
			s.handleStats(w, r, id)
			return
		case "trace":
			s.routeCounters["/v1/streams/:id/trace"].Inc()
			s.handleTrace(w, r, id)
			return
		case "evict":
			s.routeCounters["/v1/streams/:id/evict"].Inc()
			s.handleEvict(w, r, id)
			return
		case "infer":
			s.routeCounters["/v1/streams/:id/infer"].Inc()
			s.handleInfer(w, r, id)
			return
		case "graph":
			s.routeCounters["/v1/streams/:id/graph"].Inc()
			s.handleGraph(w, r, id)
			return
		}
	}
	s.routeCounters["/v1/streams/:id/other"].Inc()
	s.writeError(w, http.StatusNotFound, fmt.Sprintf("unknown stream endpoint %q", r.URL.Path))
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close tears down every stream — flushing asynchronous learner work and
// writing final checkpoints where persistence is configured — and stops the
// session sweeper. Idempotent: the second and later calls return nil.
func (s *Server) Close() error {
	s.closing.Store(true) // readiness goes false before teardown starts
	// Stop the binary tier first: closing the listeners unblocks ServeBinary,
	// and closing live connections unblocks their per-frame reads, so no
	// frame is half-processed against a closing manager.
	s.binMu.Lock()
	for ln := range s.binLns {
		ln.Close()
	}
	for c := range s.binConns {
		c.Close()
	}
	s.binMu.Unlock()
	s.closeOnce.Do(func() { s.closeErr = s.mgr.Close() })
	err := s.closeErr
	s.closeErr = nil
	return err
}

// SaveCheckpointFile atomically snapshots the "default" stream to path on
// demand.
func (s *Server) SaveCheckpointFile(path string) error {
	sess, err := s.mgr.Ensure(DefaultStream)
	if err != nil {
		return err
	}
	return sess.SaveCheckpointFile(path)
}

// LoadCheckpointFile restores the "default" stream from a checkpoint
// written by SaveCheckpointFile — the explicit resume path after a restart.
func (s *Server) LoadCheckpointFile(path string) error {
	sess, err := s.mgr.Ensure(DefaultStream)
	if err != nil {
		return err
	}
	return sess.LoadCheckpointFile(path)
}

func (s *Server) handleProcess(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	body := getBuf()
	defer putBuf(body)
	if _, err := body.ReadFrom(r.Body); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.bodyCap.Add(1)
			s.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request: %v", err))
		return
	}
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, BinaryContentType) {
		s.handleProcessBinary(w, r, id, body.Bytes())
		return
	}
	var req ProcessRequest
	dec := json.NewDecoder(bytes.NewReader(body.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request: %v", err))
		return
	}
	if err := validateRows(req.X, req.Y, s.dim, s.classes); err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	rec := s.beginSpan(id, "json", r.Header.Get(obs.TraceparentHeader), "", len(req.X))
	out, status, err := s.process(r.Context(), id, rec.traceID(), req.X, req.Y)
	rec.finish(out.Fused, err)
	rec.setHeaders(w.Header())
	if err != nil {
		s.writeError(w, status, err.Error())
		return
	}
	s.writeJSON(w, out)
}

// errStatus maps a processing failure to an HTTP status: a bad stream id
// (404) and guard-rejected input (422) are the client's problem, a closed
// server is 503, a request the client abandoned mid-batch is 499 (counted,
// not an error of ours — the learner observes ctx and stops training
// between model updates), and any other failure is ours (500).
func (s *Server) errStatus(err error) int {
	switch {
	case errors.Is(err, session.ErrBadID):
		return http.StatusNotFound
	case errors.Is(err, session.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, guard.ErrRejected):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		s.cancelled.Add(1)
		s.cCancel.Inc()
		return StatusClientClosedRequest
	}
	return http.StatusInternalServerError
}

// process runs one decoded batch through the stream's session — directly,
// or through the coalescer when enabled — and maps failures via errStatus.
// The rows are handed off without copying on the direct path (callers that
// reuse decode storage must detach it first); the coalescer packs them into
// group-owned storage before returning.
func (s *Server) process(ctx context.Context, id, traceID string, x [][]float64, y []int) (ProcessResponse, int, error) {
	if s.coal != nil {
		return s.processCoalesced(ctx, id, traceID, x, y)
	}
	res, err := s.mgr.ProcessBatch(ctx, id, stream.Batch{X: x, Y: y, TraceID: traceID})
	if err != nil {
		return ProcessResponse{}, s.errStatus(err), err
	}
	return s.buildResponse(id, res, res.Pred, res.Accuracy, 0), http.StatusOK, nil
}

// processCoalesced submits the batch to the coalescer and scatters this
// member's slice of the fused pass back out. The pattern, strategy, and
// shift observation are group-level (one detector pass covered the fused
// batch); predictions are this member's rows, and accuracy is recomputed
// over them so each caller still sees its own batch scored.
func (s *Server) processCoalesced(ctx context.Context, id, traceID string, x [][]float64, y []int) (ProcessResponse, int, error) {
	sub, err := s.coal.SubmitTraced(ctx, id, traceID, x, y)
	if err != nil {
		return ProcessResponse{}, s.errStatus(err), err
	}
	res := sub.Out.(core.Result)
	preds := res.Pred[sub.Lo:sub.Hi]
	acc := -1.0
	if y != nil {
		correct := 0
		for i, p := range preds {
			if p == y[i] {
				correct++
			}
		}
		acc = float64(correct) / float64(len(preds))
	}
	return s.buildResponse(id, res, preds, acc, sub.Members), http.StatusOK, nil
}

// buildResponse shapes a learner result into the wire response. fused is 0
// when coalescing is off (the field is then omitted from the JSON, keeping
// the non-coalesced response byte-identical to earlier releases).
func (s *Server) buildResponse(id string, res core.Result, preds []int, acc float64, fused int) ProcessResponse {
	pattern := res.Pattern
	if res.Pattern.IsSlight() {
		pattern = res.SubPattern
	}
	return ProcessResponse{
		Stream:        id,
		Predictions:   preds,
		Pattern:       pattern.String(),
		Strategy:      res.Strategy.String(),
		ShiftDistance: res.Observation.Distance,
		Severity:      res.Observation.Severity,
		Accuracy:      acc,
		Fused:         fused,
	}
}

// session resolves a stream id for the read-only endpoints: resident
// sessions are returned as-is; an id with no session is only created when
// it is valid (so typos 404 instead of spawning learners — GETs must not
// leak sessions, except the eager default).
func (s *Server) session(id string) (*session.Session, int, error) {
	if sess, ok := s.mgr.Get(id); ok {
		return sess, http.StatusOK, nil
	}
	return nil, http.StatusNotFound, fmt.Errorf("unknown stream %q", id)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	sess, status, err := s.session(id)
	if err != nil {
		s.writeError(w, status, err.Error())
		return
	}
	st := sess.Snapshot()
	s.writeJSON(w, StatsResponse{
		Stream:           st.ID,
		Batches:          st.Batches,
		Samples:          st.Samples,
		GAcc:             st.GAcc,
		SI:               st.SI,
		KnowledgeEntries: st.KnowledgeEntries,
		KnowledgeBytes:   st.KnowledgeBytes,
		SharedKnowledge:  st.SharedKnowledge,
		Restored:         st.Restored,

		SanitizedValues:    st.Health.SanitizedValues,
		RejectedBatches:    st.Health.RejectedBatches,
		Divergences:        st.Health.Divergences,
		Recoveries:         st.Health.Recoveries,
		AsyncErrorsDropped: st.Health.AsyncErrorsDropped,
		KnowledgeSkipped:   st.Health.KnowledgeSkipped,
		SpillFailures:      st.Health.SpillFailures + st.Health.SpillLoadFailures,
		CheckpointSaves:    st.CheckpointSaves,
		CheckpointErrors:   st.CheckpointErrors,

		CheckpointErrorsTotal: s.mgr.Aggregate().CheckpointErrors,

		HTTPRequests:      s.reqs.Load(),
		HTTPRejects:       s.rejects.Load(),
		BodyCapHits:       s.bodyCap.Load(),
		CancelledRequests: s.cancelled.Load(),
	})
}

// handleStreams lists the resident streams and the lifecycle aggregates.
func (s *Server) handleStreams(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	resp := StreamsResponse{Streams: []session.Stats{}, Sessions: s.mgr.Aggregate()}
	for _, id := range s.mgr.List() {
		if sess, ok := s.mgr.Get(id); ok {
			resp.Streams = append(resp.Streams, sess.Snapshot())
		}
	}
	s.writeJSON(w, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, map[string]string{"status": "ok"})
}

// ReadyResponse is the /v1/readyz body: overall status plus each readiness
// check, so a probe failure names what is actually wrong.
type ReadyResponse struct {
	Status string            `json:"status"`
	Checks map[string]string `json:"checks"`
}

// handleReady is the readiness probe — distinct from /v1/healthz liveness.
// A live process is not ready when it is shutting down, when its resident
// sessions have hit the cap (new streams would thrash the LRU), or when the
// checkpoint directory is not writable (evictions and failover would
// silently lose state). Routers use this to stop placing streams here
// before the condition becomes client-visible errors.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	resp := ReadyResponse{Status: "ok", Checks: map[string]string{
		"accepting": "ok", "sessions": "ok", "checkpoint_dir": "ok",
	}}
	if s.closing.Load() {
		resp.Checks["accepting"] = "shutting down"
	}
	if max := s.mgr.MaxSessions(); s.mgr.Len() >= max {
		resp.Checks["sessions"] = fmt.Sprintf("resident sessions at cap (%d)", max)
	}
	if dir := s.scfg.CheckpointDir; dir != "" {
		if f, err := os.CreateTemp(dir, ".readyz-*"); err != nil {
			resp.Checks["checkpoint_dir"] = fmt.Sprintf("not writable: %v", err)
		} else {
			name := f.Name()
			f.Close()
			os.Remove(name)
		}
	}
	for _, v := range resp.Checks {
		if v != "ok" {
			resp.Status = "unavailable"
			break
		}
	}
	if resp.Status != "ok" {
		s.rejects.Add(1)
		buf := getBuf()
		defer putBuf(buf)
		if err := json.NewEncoder(buf).Encode(resp); err != nil {
			s.writeError(w, http.StatusInternalServerError, "response encoding failed")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write(buf.Bytes())
		return
	}
	s.writeJSON(w, resp)
}

// handleEvict checkpoints and evicts one stream on demand — the
// checkpoint-on-migrate half of distributed failover: a router moving a
// stream to another worker calls this on the old owner so the new owner
// restores the freshest possible state from the shared checkpoint
// directory. Evicting a non-resident stream is not an error (the desired
// state already holds); the response reports which case occurred.
func (s *Server) handleEvict(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	// ?checkpoint=false discards the session without a final snapshot — for
	// callers (the router's stale-flush) that know the on-disk checkpoint is
	// fresher than this worker's in-memory state.
	checkpoint := r.URL.Query().Get("checkpoint") != "false"
	var evicted bool
	var err error
	if checkpoint {
		evicted, err = s.mgr.Evict(id)
	} else {
		evicted, err = s.mgr.Discard(id)
	}
	if err != nil {
		// The session is gone either way; a teardown error means the final
		// checkpoint may be stale, which the caller must know.
		s.writeError(w, http.StatusInternalServerError, fmt.Sprintf("evict %q: %v", id, err))
		return
	}
	s.writeJSON(w, map[string]any{"stream": id, "evicted": evicted, "checkpoint": checkpoint})
}

// KnowledgeEntry is the wire form of one preserved knowledge pair
// (Snapshot is base64 in JSON, per encoding/json []byte rules).
type KnowledgeEntry struct {
	Distribution []float64 `json:"distribution"`
	Snapshot     []byte    `json:"snapshot"`
	Source       string    `json:"source"`
	Batch        int       `json:"batch"`
}

// KnowledgeResponse is the /v1/knowledge export body.
type KnowledgeResponse struct {
	Shared  bool             `json:"shared"`
	Entries []KnowledgeEntry `json:"entries"`
}

// KnowledgeMergeResponse reports what a /v1/knowledge/merge applied.
type KnowledgeMergeResponse struct {
	Added    int `json:"added"`
	Replaced int `json:"replaced"`
	Skipped  int `json:"skipped"`
}

// sharedStore resolves the process-wide knowledge store, or an HTTP error
// when this server keeps per-stream stores (409: the request is valid, the
// configuration conflicts with it).
func (s *Server) sharedStore() (*knowledge.Store, int, error) {
	store := s.mgr.SharedStore()
	if store == nil {
		return nil, http.StatusConflict, errors.New("knowledge sharing is disabled (start with shared knowledge to use /v1/knowledge)")
	}
	return store, http.StatusOK, nil
}

// handleKnowledgeExport serves the shared store's full contents — the
// export half of cross-worker anti-entropy, and a debugging view of what
// regimes the cluster has preserved.
func (s *Server) handleKnowledgeExport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	store, status, err := s.sharedStore()
	if err != nil {
		s.writeError(w, status, err.Error())
		return
	}
	entries, err := store.Export()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, fmt.Sprintf("export knowledge: %v", err))
		return
	}
	resp := KnowledgeResponse{Shared: true, Entries: make([]KnowledgeEntry, 0, len(entries))}
	for _, e := range entries {
		resp.Entries = append(resp.Entries, KnowledgeEntry{
			Distribution: e.Distribution, Snapshot: e.Snapshot, Source: e.Source, Batch: e.Batch,
		})
	}
	s.writeJSON(w, resp)
}

// handleKnowledgeMerge folds a peer's exported entries into the shared
// store (the merge half of anti-entropy): same-regime entries keep the
// fresher snapshot, new regimes are appended. ?radius=R overrides the
// same-regime distance (default 0: only identical distributions merge).
func (s *Server) handleKnowledgeMerge(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	store, status, err := s.sharedStore()
	if err != nil {
		s.writeError(w, status, err.Error())
		return
	}
	radius := 0.0
	if q := r.URL.Query().Get("radius"); q != "" {
		v, err := strconv.ParseFloat(q, 64)
		if err != nil || v < 0 {
			s.writeError(w, http.StatusBadRequest, "radius must be a non-negative number")
			return
		}
		radius = v
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	var req KnowledgeResponse
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request: %v", err))
		return
	}
	entries := make([]knowledge.EntrySnapshot, 0, len(req.Entries))
	for _, e := range req.Entries {
		entries = append(entries, knowledge.EntrySnapshot{
			Distribution: linalg.Vector(e.Distribution), Snapshot: e.Snapshot, Source: e.Source, Batch: e.Batch,
		})
	}
	added, replaced, skipped, err := store.Merge(entries, radius)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, fmt.Sprintf("merge knowledge: %v", err))
		return
	}
	s.writeJSON(w, KnowledgeMergeResponse{Added: added, Replaced: replaced, Skipped: skipped})
}

// handleMetrics serves the Prometheus text exposition of every stream's
// series plus the session-lifecycle aggregates.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", MetricsContentType)
	if err := s.mgr.Registry().WritePrometheus(w); err != nil {
		log.Printf("serve: metrics write failed: %v", err)
	}
}

// handleTrace serves a stream's decision trace as JSONL, oldest retained
// event first. ?n=K limits the output to the newest K events; ?stream=<id>
// selects another stream's ring — so /v1/trace?stream=orders works without
// the /v1/streams/orders/trace path form (handy for dashboards that only
// template query parameters).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if q := r.URL.Query().Get("stream"); q != "" {
		id = q
	}
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			s.writeError(w, http.StatusBadRequest, "n must be a non-negative integer")
			return
		}
		n = v
	}
	sess, status, err := s.session(id)
	if err != nil {
		s.writeError(w, status, err.Error())
		return
	}
	w.Header().Set("Content-Type", TraceContentType)
	if err := sess.Observer().Trace().WriteJSONL(w, n); err != nil {
		log.Printf("serve: trace write failed: %v", err)
	}
}

// writeError sends the shared JSON error envelope and counts the reject.
func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	s.rejects.Add(1)
	var body errorEnvelope
	body.Error.Code = status
	body.Error.Message = msg
	buf := getBuf()
	defer putBuf(buf)
	if err := json.NewEncoder(buf).Encode(body); err != nil {
		log.Printf("serve: error envelope encode failed: %v", err)
		http.Error(w, msg, status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	if _, err := w.Write(buf.Bytes()); err != nil {
		log.Printf("serve: error envelope write failed: %v", err)
	}
}

// validateRows applies the shared shape contract to a decoded batch — the
// same check for both the JSON and binary ingest paths.
func validateRows(x [][]float64, y []int, dim, classes int) error {
	b := stream.Batch{X: x, Y: y}
	return b.ValidateShape(dim, classes)
}

// writeJSON sends v as the 200 response body. Encoding goes through a
// pooled buffer so the handler pays one Write (and the client gets a
// Content-Length), and an encoder failure surfaces as a 500 instead of a
// half-written 200.
func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	buf := getBuf()
	defer putBuf(buf)
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		log.Printf("serve: response encode failed: %v", err)
		s.writeError(w, http.StatusInternalServerError, "response encoding failed")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	if _, err := w.Write(buf.Bytes()); err != nil {
		log.Printf("serve: response write failed: %v", err)
	}
}
