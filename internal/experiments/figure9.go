package experiments

import (
	"context"
	"fmt"
	"strings"

	"freewayml/internal/datasets"
	"freewayml/internal/stream"
)

// Figure9Series is one dataset's real-time accuracy traces: the plain
// Streaming MLP baseline (the paper's dashed line) and FreewayML (the solid
// lines, one mechanism active per batch), plus which strategy handled each
// batch.
type Figure9Series struct {
	Dataset    string
	Truth      []stream.DriftKind
	PlainAcc   []float64
	FreewayAcc []float64
	Strategy   []string
}

// Figure9Result reproduces Figure 9: comparative real-time accuracy of
// FreewayML's mechanisms vs plain Streaming MLP on the four real datasets.
type Figure9Result struct {
	Series []Figure9Series
	family string
}

// Figure9 runs the four real datasets with the MLP family.
func Figure9(opt Options) (*Figure9Result, error) {
	return mechanismSeries(datasets.Real4(), "mlp", opt)
}

// mechanismSeries is shared by Figure 9 (MLP, real datasets) and Figure 12
// (CNN, real + image datasets).
func mechanismSeries(names []string, family string, opt Options) (*Figure9Result, error) {
	res := &Figure9Result{family: family}
	for _, ds := range names {
		s := Figure9Series{Dataset: ds}

		src, err := datasets.Build(ds, opt.BatchSize, opt.Seed)
		if err != nil {
			return nil, err
		}
		plain, err := newBaselineSystem("Plain", family, src.Dim(), src.Classes(), opt)
		if err != nil {
			return nil, err
		}
		preqPlain, err := RunPrequential(plain, src, opt.MaxBatches)
		if err != nil {
			return nil, err
		}
		s.PlainAcc = preqPlain.Series()

		src2, err := datasets.Build(ds, opt.BatchSize, opt.Seed)
		if err != nil {
			return nil, err
		}
		fw, err := newFreewaySystem(family, src2.Dim(), src2.Classes(), opt)
		if err != nil {
			return nil, err
		}
		for n := 0; opt.MaxBatches <= 0 || n < opt.MaxBatches; n++ {
			b, ok := src2.Next()
			if !ok {
				break
			}
			r, err := fw.l.Process(context.Background(), b)
			if err != nil {
				return nil, err
			}
			s.FreewayAcc = append(s.FreewayAcc, r.Accuracy)
			s.Strategy = append(s.Strategy, r.Strategy.String())
			s.Truth = append(s.Truth, b.Truth)
		}
		if err := fw.Close(); err != nil {
			return nil, err
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// String summarizes the series: mean accuracy per ground-truth drift kind
// for both systems (the visual content of the figure, in rows).
func (r *Figure9Result) String() string {
	var sb strings.Builder
	label := "Figure 9 (StreamingMLP)"
	if r.family == "cnn3" || r.family == "cnn5" {
		label = "Figure 12 (StreamingCNN)"
	}
	fmt.Fprintf(&sb, "%s: per-mechanism real-time accuracy vs plain baseline\n", label)
	fmt.Fprintf(&sb, "%-16s | %-11s | %8s | %10s | %7s\n", "Dataset", "Drift kind", "Plain", "FreewayML", "Gain")
	for _, s := range r.Series {
		for _, kind := range []stream.DriftKind{stream.KindSlight, stream.KindSudden, stream.KindReoccurring} {
			p, pn := meanWhere(s.PlainAcc, s.Truth, kind)
			f, fn := meanWhere(s.FreewayAcc, s.Truth, kind)
			if pn == 0 || fn == 0 {
				continue
			}
			fmt.Fprintf(&sb, "%-16s | %-11s | %7.2f%% | %9.2f%% | %+6.2f%%\n",
				s.Dataset, kind, 100*p, 100*f, 100*(f-p))
		}
	}
	return sb.String()
}

// WriteCSV emits the full per-batch series for plotting: one block per
// dataset with batch, truth, plain, freeway, strategy columns.
func (r *Figure9Result) WriteCSV(sb *strings.Builder) {
	for _, s := range r.Series {
		fmt.Fprintf(sb, "# dataset=%s\n", s.Dataset)
		fmt.Fprintln(sb, "batch,truth,plain_acc,freeway_acc,strategy")
		n := len(s.FreewayAcc)
		for i := 0; i < n; i++ {
			plain := ""
			if i < len(s.PlainAcc) {
				plain = fmt.Sprintf("%.4f", s.PlainAcc[i])
			}
			fmt.Fprintf(sb, "%d,%s,%s,%.4f,%s\n", i, s.Truth[i], plain, s.FreewayAcc[i], s.Strategy[i])
		}
	}
}

// meanWhere averages vals[i] where truth[i] == kind, over the overlap of
// the two slices.
func meanWhere(vals []float64, truth []stream.DriftKind, kind stream.DriftKind) (float64, int) {
	n := len(vals)
	if len(truth) < n {
		n = len(truth)
	}
	var s float64
	count := 0
	for i := 0; i < n; i++ {
		if truth[i] == kind && vals[i] >= 0 {
			s += vals[i]
			count++
		}
	}
	if count == 0 {
		return 0, 0
	}
	return s / float64(count), count
}
