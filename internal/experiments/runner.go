// Package experiments regenerates every table and figure of the paper's
// evaluation: one exported function per experiment, each returning a
// structured result whose String method prints the same rows/series the
// paper reports. cmd/benchall and the root bench_test.go are thin shells
// over this package.
package experiments

import (
	"context"
	"fmt"
	"time"

	"freewayml/internal/baselines"
	"freewayml/internal/core"
	"freewayml/internal/datasets"
	"freewayml/internal/metrics"
	"freewayml/internal/model"
	"freewayml/internal/stream"
)

// Options sizes an experiment run. The defaults keep every experiment
// laptop-fast; raising BatchSize to 1024 matches the paper's setting.
type Options struct {
	BatchSize  int
	MaxBatches int // 0 = drain the stream
	Seed       int64
}

// DefaultOptions returns the fast defaults used by tests and benches.
func DefaultOptions() Options {
	return Options{BatchSize: 128, MaxBatches: 0, Seed: 1}
}

// System is anything that can run the prequential protocol: predict a batch
// first, then learn from its labels.
type System interface {
	Name() string
	Step(b stream.Batch) ([]int, error)
}

// frameworkSystem adapts a baseline Framework.
type frameworkSystem struct {
	fw baselines.Framework
}

func (s frameworkSystem) Name() string { return s.fw.Name() }

func (s frameworkSystem) Step(b stream.Batch) ([]int, error) {
	pred, err := s.fw.Infer(b)
	if err != nil {
		return nil, err
	}
	if b.Labeled() {
		if err := s.fw.Train(b); err != nil {
			return nil, err
		}
	}
	return pred, nil
}

// freewaySystem adapts the FreewayML learner.
type freewaySystem struct {
	l *core.Learner
}

func (s freewaySystem) Name() string { return "FreewayML" }

func (s freewaySystem) Step(b stream.Batch) ([]int, error) {
	res, err := s.l.Process(context.Background(), b)
	if err != nil {
		return nil, err
	}
	return res.Pred, nil
}

// Close flushes async updates.
func (s freewaySystem) Close() error { return s.l.Close() }

// newFreewaySystem builds a FreewayML learner sized for experiment streams.
func newFreewaySystem(family string, dim, classes int, opt Options) (freewaySystem, error) {
	cfg := experimentCoreConfig(family, opt)
	l, err := core.NewLearner(cfg, dim, classes)
	if err != nil {
		return freewaySystem{}, err
	}
	return freewaySystem{l: l}, nil
}

// experimentCoreConfig shrinks the PCA warm-up to the experiment batch size
// so pattern detection engages early on the ~100-batch experiment streams;
// everything else stays at the published defaults.
func experimentCoreConfig(family string, opt Options) core.Config {
	cfg := core.DefaultConfig()
	cfg.ModelFamily = family
	cfg.Seed = opt.Seed
	cfg.Hyper.Seed = opt.Seed
	cfg.Shift.WarmupPoints = 2 * opt.BatchSize
	return cfg
}

// newBaselineSystem builds a named baseline over the given model family.
func newBaselineSystem(name, family string, dim, classes int, opt Options) (System, error) {
	h := model.DefaultHyper()
	h.Seed = opt.Seed
	factory, err := model.FactoryFor(family, h)
	if err != nil {
		return nil, err
	}
	fw, err := baselines.Build(name, factory, dim, classes)
	if err != nil {
		return nil, err
	}
	return frameworkSystem{fw: fw}, nil
}

// RunPrequential drives a system over a stream, returning the accumulated
// prequential metrics.
func RunPrequential(sys System, src stream.Source, maxBatches int) (*metrics.Prequential, error) {
	var preq metrics.Prequential
	for n := 0; maxBatches <= 0 || n < maxBatches; n++ {
		b, ok := src.Next()
		if !ok {
			break
		}
		pred, err := sys.Step(b)
		if err != nil {
			return nil, fmt.Errorf("%s on %s: %w", sys.Name(), src.Name(), err)
		}
		if b.Labeled() {
			acc, err := metrics.Accuracy(pred, b.Y)
			if err != nil {
				return nil, err
			}
			preq.Record(acc, b.Truth, len(b.X))
		}
	}
	if c, ok := sys.(interface{ Close() error }); ok {
		if err := c.Close(); err != nil {
			return nil, err
		}
	}
	return &preq, nil
}

// runOnDataset builds the dataset and runs the system over it.
func runOnDataset(sys System, dataset string, opt Options) (*metrics.Prequential, error) {
	src, err := datasets.Build(dataset, opt.BatchSize, opt.Seed)
	if err != nil {
		return nil, err
	}
	return RunPrequential(sys, src, opt.MaxBatches)
}

// timedStep measures one Step call.
func timedStep(sys System, b stream.Batch) (time.Duration, error) {
	start := time.Now()
	_, err := sys.Step(b)
	return time.Since(start), err
}
