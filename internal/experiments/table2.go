package experiments

import (
	"fmt"
	"strings"

	"freewayml/internal/datasets"
	"freewayml/internal/stream"
)

// Table2Row is one dataset's per-pattern relative accuracy improvement of
// FreewayML over the plain Streaming MLP, in percent.
type Table2Row struct {
	Dataset     string
	Slight      float64
	Sudden      float64
	Reoccurring float64
}

// Table2Result reproduces Table II: accuracy improvement compared with the
// original Streaming MLP under the three shift patterns. Improvements are
// relative: 100·(acc_freeway − acc_plain)/acc_plain over the batches whose
// ground-truth drift kind matches each pattern.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 runs plain StreamingMLP and FreewayML over the six benchmark
// datasets and slices accuracy by the generators' ground-truth drift kinds.
func Table2(opt Options) (*Table2Result, error) {
	res := &Table2Result{}
	for _, ds := range datasets.Benchmark6() {
		row := Table2Row{Dataset: ds}

		src, err := datasets.Build(ds, opt.BatchSize, opt.Seed)
		if err != nil {
			return nil, err
		}
		plainSys, err := newBaselineSystem("Plain", "mlp", src.Dim(), src.Classes(), opt)
		if err != nil {
			return nil, err
		}
		plain, err := RunPrequential(plainSys, src, opt.MaxBatches)
		if err != nil {
			return nil, err
		}

		src2, err := datasets.Build(ds, opt.BatchSize, opt.Seed)
		if err != nil {
			return nil, err
		}
		fw, err := newFreewaySystem("mlp", src2.Dim(), src2.Classes(), opt)
		if err != nil {
			return nil, err
		}
		freeway, err := RunPrequential(fw, src2, opt.MaxBatches)
		if err != nil {
			return nil, err
		}

		improve := func(kind stream.DriftKind) float64 {
			p, pn := plain.KindAcc(kind)
			f, fn := freeway.KindAcc(kind)
			if pn == 0 || fn == 0 || p == 0 {
				return 0
			}
			return 100 * (f - p) / p
		}
		row.Slight = improve(stream.KindSlight)
		row.Sudden = improve(stream.KindSudden)
		row.Reoccurring = improve(stream.KindReoccurring)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the table in the paper's layout.
func (r *Table2Result) String() string {
	var sb strings.Builder
	sb.WriteString("Table II: Accuracy improvement vs original Streaming MLP under 3 patterns\n")
	fmt.Fprintf(&sb, "%-12s | %13s | %13s | %18s\n", "Dataset", "Slight Shifts", "Sudden Shifts", "Reoccurring Shifts")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-12s | %+12.1f%% | %+12.1f%% | %+17.1f%%\n",
			row.Dataset, row.Slight, row.Sudden, row.Reoccurring)
	}
	return sb.String()
}
