package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"freewayml/internal/baselines"
	"freewayml/internal/core"
	"freewayml/internal/datasets"
	"freewayml/internal/metrics"
	"freewayml/internal/model"
	"freewayml/internal/stream"
)

// perfSystems lists the systems of the performance experiments per family.
func perfSystems(family string) []string {
	if family == "lr" {
		return append(append([]string{}, baselines.LRBaselines()...), "FreewayML")
	}
	return append(append([]string{}, baselines.MLPBaselines()...), "FreewayML")
}

// buildSystem constructs either a baseline or FreewayML for a perf run.
// FreewayML runs with asynchronous long-model updates here, as the paper's
// performance evaluation does (Sec. V-A1: non-blocking inference).
func buildSystem(name, family string, dim, classes int, opt Options) (System, error) {
	if name == "FreewayML" {
		cfg := experimentCoreConfig(family, opt)
		cfg.Async = true
		l, err := core.NewLearner(cfg, dim, classes)
		if err != nil {
			return nil, err
		}
		return freewaySystem{l: l}, nil
	}
	return newBaselineSystem(name, family, dim, classes, opt)
}

// Figure10Result reproduces Figure 10: throughput (samples/second) vs batch
// size on the Hyperplane stream for the LR and MLP families.
type Figure10Result struct {
	BatchSizes []int
	// Rows maps family → system → batch size → samples/second.
	Rows map[string]map[string]map[int]float64
}

// Figure10 measures throughput over the paper's batch-size sweep 256-2048.
func Figure10(opt Options) (*Figure10Result, error) {
	sizes := []int{256, 512, 1024, 2048}
	res := &Figure10Result{BatchSizes: sizes, Rows: map[string]map[string]map[int]float64{}}
	for _, family := range []string{"lr", "mlp"} {
		res.Rows[family] = map[string]map[int]float64{}
		for _, name := range perfSystems(family) {
			res.Rows[family][name] = map[int]float64{}
			for _, bs := range sizes {
				o := opt
				o.BatchSize = bs
				src, err := datasets.Build("Hyperplane", bs, o.Seed)
				if err != nil {
					return nil, err
				}
				sys, err := buildSystem(name, family, src.Dim(), src.Classes(), o)
				if err != nil {
					return nil, err
				}
				maxBatches := o.MaxBatches
				if maxBatches <= 0 {
					maxBatches = 30
				}
				items := 0
				start := time.Now()
				for n := 0; n < maxBatches; n++ {
					b, ok := src.Next()
					if !ok {
						break
					}
					if _, err := sys.Step(b); err != nil {
						return nil, err
					}
					items += len(b.X)
				}
				if c, ok := sys.(interface{ Close() error }); ok {
					if err := c.Close(); err != nil {
						return nil, err
					}
				}
				res.Rows[family][name][bs] = metrics.Throughput(items, time.Since(start))
			}
		}
	}
	return res, nil
}

// String renders throughput rows.
func (r *Figure10Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 10: throughput (samples/s) vs batch size on Hyperplane\n")
	for _, family := range []string{"lr", "mlp"} {
		label := "StreamingLR"
		if family == "mlp" {
			label = "StreamingMLP"
		}
		fmt.Fprintf(&sb, "\n%s:\n%-12s", label, "Framework")
		for _, bs := range r.BatchSizes {
			fmt.Fprintf(&sb, " | %9d", bs)
		}
		sb.WriteByte('\n')
		for _, name := range perfSystems(family) {
			fmt.Fprintf(&sb, "%-12s", name)
			for _, bs := range r.BatchSizes {
				fmt.Fprintf(&sb, " | %9.0f", r.Rows[family][name][bs])
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// Table3Cell is one latency measurement in microseconds: the mean (the
// paper's headline number) plus tail percentiles from the fixed-bucket
// latency histogram behind metrics.LatencyTracker.
type Table3Cell struct {
	UpdateMicros float64
	InferMicros  float64

	UpdateP50 float64
	UpdateP95 float64
	UpdateP99 float64
	InferP50  float64
	InferP95  float64
	InferP99  float64
}

// cellFrom assembles a Table3Cell from the two phase trackers.
func cellFrom(trainLat, inferLat *metrics.LatencyTracker) Table3Cell {
	return Table3Cell{
		UpdateMicros: trainLat.MeanMicros(),
		InferMicros:  inferLat.MeanMicros(),
		UpdateP50:    trainLat.P50Micros(),
		UpdateP95:    trainLat.P95Micros(),
		UpdateP99:    trainLat.P99Micros(),
		InferP50:     inferLat.P50Micros(),
		InferP95:     inferLat.P95Micros(),
		InferP99:     inferLat.P99Micros(),
	}
}

// Table3Result reproduces Table III: update and inference latency (µs) per
// batch size for the LR and MLP families.
type Table3Result struct {
	BatchSizes []int
	// Rows maps family → system → batch size → cell.
	Rows map[string]map[string]map[int]Table3Cell
}

// Table3 measures per-phase latency over the paper's 512-4096 sweep.
func Table3(opt Options) (*Table3Result, error) {
	return latencyTable([]string{"lr", "mlp"}, perfSystems, opt)
}

// latencyTable is shared by Table III (LR/MLP) and Table VI (CNN).
func latencyTable(families []string, systemsOf func(string) []string, opt Options) (*Table3Result, error) {
	sizes := []int{512, 1024, 2048, 4096}
	res := &Table3Result{BatchSizes: sizes, Rows: map[string]map[string]map[int]Table3Cell{}}
	for _, family := range families {
		res.Rows[family] = map[string]map[int]Table3Cell{}
		for _, name := range systemsOf(family) {
			res.Rows[family][name] = map[int]Table3Cell{}
			for _, bs := range sizes {
				o := opt
				o.BatchSize = bs
				cell, err := measureLatency(name, family, bs, o)
				if err != nil {
					return nil, err
				}
				res.Rows[family][name][bs] = cell
			}
		}
	}
	return res, nil
}

// measureLatency times Infer and Train separately. FreewayML exposes only
// the fused Process step, so its phases are measured through a dedicated
// learner whose infer and train we call via the core API.
func measureLatency(name, family string, batchSize int, opt Options) (Table3Cell, error) {
	src, err := datasets.Build("Hyperplane", batchSize, opt.Seed)
	if err != nil {
		return Table3Cell{}, err
	}
	maxBatches := opt.MaxBatches
	if maxBatches <= 0 {
		maxBatches = 20
	}
	var inferLat, trainLat metrics.LatencyTracker

	if name == "FreewayML" {
		cfg := experimentCoreConfig(family, opt)
		l, err := core.NewLearner(cfg, src.Dim(), src.Classes())
		if err != nil {
			return Table3Cell{}, err
		}
		for n := 0; n < maxBatches; n++ {
			b, ok := src.Next()
			if !ok {
				break
			}
			// Inference phase: Process on the unlabeled view.
			unlabeled := stream.Batch{Seq: b.Seq, X: b.X, Truth: b.Truth}
			start := time.Now()
			if _, err := l.Process(context.Background(), unlabeled); err != nil {
				return Table3Cell{}, err
			}
			inferLat.Add(time.Since(start))
			// Training phase: Process on the labeled batch (its inference
			// cost is subtracted using the unlabeled measurement).
			start = time.Now()
			if _, err := l.Process(context.Background(), b); err != nil {
				return Table3Cell{}, err
			}
			full := time.Since(start)
			train := full - time.Duration(inferLat.MeanMicros()*1000)
			if train < 0 {
				train = 0
			}
			trainLat.Add(train)
		}
		if err := l.Close(); err != nil {
			return Table3Cell{}, err
		}
		return cellFrom(&trainLat, &inferLat), nil
	}

	h := model.DefaultHyper()
	h.Seed = opt.Seed
	factory, err := model.FactoryFor(family, h)
	if err != nil {
		return Table3Cell{}, err
	}
	fw, err := baselines.Build(name, factory, src.Dim(), src.Classes())
	if err != nil {
		return Table3Cell{}, err
	}
	for n := 0; n < maxBatches; n++ {
		b, ok := src.Next()
		if !ok {
			break
		}
		start := time.Now()
		if _, err := fw.Infer(b); err != nil {
			return Table3Cell{}, err
		}
		inferLat.Add(time.Since(start))
		start = time.Now()
		if err := fw.Train(b); err != nil {
			return Table3Cell{}, err
		}
		trainLat.Add(time.Since(start))
	}
	return cellFrom(&trainLat, &inferLat), nil
}

// String renders the latency table in the paper's layout.
func (r *Table3Result) String() string {
	var sb strings.Builder
	sb.WriteString("Table III: latency (µs) vs batch size on Hyperplane\n")
	families := make([]string, 0, len(r.Rows))
	for _, f := range []string{"lr", "mlp", "cnn3"} {
		if _, ok := r.Rows[f]; ok {
			families = append(families, f)
		}
	}
	for _, phase := range []string{"update", "infer"} {
		for _, family := range families {
			fmt.Fprintf(&sb, "\n%s_%s:\n%-12s", strings.ToUpper(family), phase, "Framework")
			for _, bs := range r.BatchSizes {
				fmt.Fprintf(&sb, " | %8d", bs)
			}
			sb.WriteByte('\n')
			for _, name := range rowOrder(r.Rows[family]) {
				fmt.Fprintf(&sb, "%-12s", name)
				for _, bs := range r.BatchSizes {
					c := r.Rows[family][name][bs]
					v := c.UpdateMicros
					if phase == "infer" {
						v = c.InferMicros
					}
					fmt.Fprintf(&sb, " | %8.0f", v)
				}
				sb.WriteByte('\n')
			}
		}
	}
	// Tail latency at the largest batch size: the histogram percentiles
	// behind the means above (the steady-state SLO view of the same run).
	if len(r.BatchSizes) > 0 {
		bs := r.BatchSizes[len(r.BatchSizes)-1]
		for _, phase := range []string{"update", "infer"} {
			for _, family := range families {
				fmt.Fprintf(&sb, "\n%s_%s tail latency (µs, batch %d):\n%-12s | %8s | %8s | %8s\n",
					strings.ToUpper(family), phase, bs, "Framework", "p50", "p95", "p99")
				for _, name := range rowOrder(r.Rows[family]) {
					c := r.Rows[family][name][bs]
					p50, p95, p99 := c.UpdateP50, c.UpdateP95, c.UpdateP99
					if phase == "infer" {
						p50, p95, p99 = c.InferP50, c.InferP95, c.InferP99
					}
					fmt.Fprintf(&sb, "%-12s | %8.0f | %8.0f | %8.0f\n", name, p50, p95, p99)
				}
			}
		}
	}
	return sb.String()
}

// rowOrder returns system names with FreewayML last, others alphabetical.
func rowOrder(m map[string]map[int]Table3Cell) []string {
	var names []string
	for name := range m {
		if name != "FreewayML" {
			names = append(names, name)
		}
	}
	sortStrings(names)
	if _, ok := m["FreewayML"]; ok {
		names = append(names, "FreewayML")
	}
	return names
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Table4Row is the knowledge space overhead for one k.
type Table4Row struct {
	K        int
	LRBytes  int
	MLPBytes int
}

// Table4Result reproduces Table IV: space overhead of historical knowledge
// for k preserved models, LR vs MLP.
type Table4Result struct {
	Rows []Table4Row
}

// Table4 measures snapshot sizes directly: k snapshots of each family's
// model on the Hyperplane shape (10 features, 2 classes).
func Table4(opt Options) (*Table4Result, error) {
	const dim, classes = 10, 2
	sizes := map[string]int{}
	for _, family := range []string{"lr", "mlp"} {
		h := model.DefaultHyper()
		h.Seed = opt.Seed
		factory, err := model.FactoryFor(family, h)
		if err != nil {
			return nil, err
		}
		m, err := factory(dim, classes)
		if err != nil {
			return nil, err
		}
		snap, err := m.Snapshot()
		if err != nil {
			return nil, err
		}
		sizes[family] = len(snap)
	}
	res := &Table4Result{}
	for _, k := range []int{1, 5, 10, 40, 100} {
		res.Rows = append(res.Rows, Table4Row{
			K:        k,
			LRBytes:  k * sizes["lr"],
			MLPBytes: k * sizes["mlp"],
		})
	}
	return res, nil
}

// String renders the space table in KB, as the paper reports it.
func (r *Table4Result) String() string {
	var sb strings.Builder
	sb.WriteString("Table IV: space overhead of historical knowledge\n")
	fmt.Fprintf(&sb, "%5s | %10s | %10s\n", "k", "LR (KB)", "MLP (KB)")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%5d | %10.1f | %10.1f\n",
			row.K, float64(row.LRBytes)/1024, float64(row.MLPBytes)/1024)
	}
	return sb.String()
}
