package experiments

import (
	"fmt"
	"strings"
	"time"

	"freewayml/internal/datasets"
	"freewayml/internal/metrics"
)

// Table5Row is one dataset's StreamingCNN-vs-FreewayML comparison.
type Table5Row struct {
	Dataset     string
	PlainGAcc   float64
	PlainSI     float64
	FreewayGAcc float64
	FreewaySI   float64
	FamilyUsed  string
}

// Table5Result reproduces appendix Table V: accuracy of StreamingCNN vs
// FreewayML across the six benchmark datasets (3-layer CNN) plus the two
// image-feature streams (5-layer CNN).
type Table5Result struct {
	Rows []Table5Row
}

// cnnFamilyFor selects the paper's architecture per dataset: cnn3 for the
// tabular benchmarks, cnn5 for the image-feature streams.
func cnnFamilyFor(dataset string) string {
	if dataset == "Animals" || dataset == "Flowers" {
		return "cnn5"
	}
	return "cnn3"
}

// Table5Datasets lists the appendix's eight datasets in table order.
func Table5Datasets() []string {
	return append(append([]string{}, datasets.Benchmark6()...), "Animals", "Flowers")
}

// Table5 runs the plain streaming CNN and FreewayML-CNN over all eight
// datasets.
func Table5(opt Options) (*Table5Result, error) {
	res := &Table5Result{}
	for _, ds := range Table5Datasets() {
		family := cnnFamilyFor(ds)

		src, err := datasets.Build(ds, opt.BatchSize, opt.Seed)
		if err != nil {
			return nil, err
		}
		plainSys, err := newBaselineSystem("Plain", family, src.Dim(), src.Classes(), opt)
		if err != nil {
			return nil, err
		}
		plain, err := RunPrequential(plainSys, src, opt.MaxBatches)
		if err != nil {
			return nil, err
		}

		src2, err := datasets.Build(ds, opt.BatchSize, opt.Seed)
		if err != nil {
			return nil, err
		}
		fw, err := newFreewaySystem(family, src2.Dim(), src2.Classes(), opt)
		if err != nil {
			return nil, err
		}
		freeway, err := RunPrequential(fw, src2, opt.MaxBatches)
		if err != nil {
			return nil, err
		}

		res.Rows = append(res.Rows, Table5Row{
			Dataset:     ds,
			PlainGAcc:   plain.GAcc(),
			PlainSI:     plain.SI(),
			FreewayGAcc: freeway.GAcc(),
			FreewaySI:   freeway.SI(),
			FamilyUsed:  family,
		})
	}
	return res, nil
}

// String renders the appendix table.
func (r *Table5Result) String() string {
	var sb strings.Builder
	sb.WriteString("Table V: StreamingCNN vs FreewayML (appendix)\n")
	fmt.Fprintf(&sb, "%-12s | %-5s | %-18s | %-18s\n", "Dataset", "Arch", "StreamingCNN", "FreewayML")
	fmt.Fprintf(&sb, "%-12s | %-5s | %8s %8s | %8s %8s\n", "", "", "G_acc", "SI", "G_acc", "SI")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-12s | %-5s | %7.2f%% %8.3f | %7.2f%% %8.3f\n",
			row.Dataset, row.FamilyUsed,
			100*row.PlainGAcc, row.PlainSI, 100*row.FreewayGAcc, row.FreewaySI)
	}
	return sb.String()
}

// Figure12 reproduces appendix Figure 12: per-mechanism CNN accuracy series
// on the four real datasets plus Animals and Flowers.
func Figure12(opt Options) (*Figure9Result, error) {
	real4, err := mechanismSeries(datasets.Real4(), "cnn3", opt)
	if err != nil {
		return nil, err
	}
	images, err := mechanismSeries([]string{"Animals", "Flowers"}, "cnn5", opt)
	if err != nil {
		return nil, err
	}
	real4.Series = append(real4.Series, images.Series...)
	real4.family = "cnn3"
	return real4, nil
}

// Table6Row is one batch size's CNN latency comparison.
type Table6Row struct {
	BatchSize           int
	PlainInferMicros    float64
	FreewayInferMicros  float64
	PlainUpdateMicros   float64
	FreewayUpdateMicros float64
}

// Table6Result reproduces appendix Table VI: CNN latency of the plain
// streaming CNN vs FreewayML; the paper's claim is an overhead below ~5%.
type Table6Result struct {
	Rows []Table6Row
}

// Table6 measures CNN3 latency on Hyperplane over the 512-4096 sweep.
func Table6(opt Options) (*Table6Result, error) {
	res := &Table6Result{}
	for _, bs := range []int{512, 1024, 2048, 4096} {
		o := opt
		o.BatchSize = bs
		plain, err := measureLatency("Plain", "cnn3", bs, o)
		if err != nil {
			return nil, err
		}
		freeway, err := measureLatency("FreewayML", "cnn3", bs, o)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table6Row{
			BatchSize:           bs,
			PlainInferMicros:    plain.InferMicros,
			FreewayInferMicros:  freeway.InferMicros,
			PlainUpdateMicros:   plain.UpdateMicros,
			FreewayUpdateMicros: freeway.UpdateMicros,
		})
	}
	return res, nil
}

// String renders the CNN latency comparison.
func (r *Table6Result) String() string {
	var sb strings.Builder
	sb.WriteString("Table VI: CNN latency (µs), StreamingCNN vs FreewayML\n")
	fmt.Fprintf(&sb, "%9s | %-23s | %-23s\n", "Batch", "Infer (plain / FwML)", "Update (plain / FwML)")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%9d | %10.0f / %10.0f | %10.0f / %10.0f\n",
			row.BatchSize,
			row.PlainInferMicros, row.FreewayInferMicros,
			row.PlainUpdateMicros, row.FreewayUpdateMicros)
	}
	return sb.String()
}

// quickThroughput is a helper used by benches: samples/s of one system on
// one dataset at one batch size.
func quickThroughput(name, family, dataset string, batchSize, batches int, seed int64) (float64, error) {
	opt := Options{BatchSize: batchSize, MaxBatches: batches, Seed: seed}
	src, err := datasets.Build(dataset, batchSize, seed)
	if err != nil {
		return 0, err
	}
	sys, err := buildSystem(name, family, src.Dim(), src.Classes(), opt)
	if err != nil {
		return 0, err
	}
	items := 0
	start := time.Now()
	for n := 0; n < batches; n++ {
		b, ok := src.Next()
		if !ok {
			break
		}
		if _, err := sys.Step(b); err != nil {
			return 0, err
		}
		items += len(b.X)
	}
	if c, ok := sys.(interface{ Close() error }); ok {
		if err := c.Close(); err != nil {
			return 0, err
		}
	}
	return metrics.Throughput(items, time.Since(start)), nil
}
