package experiments

import (
	"strings"
	"testing"

	"freewayml/internal/stream"
)

// fastOpt keeps experiment tests quick: small batches, capped streams.
func fastOpt() Options {
	return Options{BatchSize: 48, MaxBatches: 60, Seed: 1}
}

func TestTable1SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("table 1 grid is slow")
	}
	opt := fastOpt()
	opt.MaxBatches = 40
	res, err := Table1(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{"lr", "mlp"} {
		for fw, cells := range res.Rows[family] {
			for ds, c := range cells {
				if c.GAcc <= 0 || c.GAcc > 1 {
					t.Errorf("%s/%s/%s G_acc = %v", family, fw, ds, c.GAcc)
				}
				if c.SI <= 0 || c.SI > 1 {
					t.Errorf("%s/%s/%s SI = %v", family, fw, ds, c.SI)
				}
			}
		}
	}
	out := res.String()
	if !strings.Contains(out, "FreewayML") || !strings.Contains(out, "Hyperplane") {
		t.Error("String() missing expected rows")
	}
	accWins, siWins := res.FreewayWins("mlp")
	if accWins < 0 || accWins > 6 || siWins < 0 || siWins > 6 {
		t.Errorf("FreewayWins out of range: %d, %d", accWins, siWins)
	}
}

func TestTable2SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("table 2 is slow")
	}
	res, err := Table2(fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if !strings.Contains(res.String(), "Reoccurring") {
		t.Error("String() malformed")
	}
}

func TestFigure2SmallRun(t *testing.T) {
	res, err := Figure2(fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Streams) != 3 {
		t.Fatalf("streams = %d", len(res.Streams))
	}
	for _, s := range res.Streams {
		if s.Graph.Len() == 0 {
			t.Errorf("%s: empty graph", s.Dataset)
		}
		if s.Correlation < -1 || s.Correlation > 1 {
			t.Errorf("%s: correlation %v", s.Dataset, s.Correlation)
		}
	}
	if !strings.Contains(res.String(), "corr") {
		t.Error("String() malformed")
	}
}

func TestFigure9SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 9 is slow")
	}
	res, err := Figure9(fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.FreewayAcc) == 0 || len(s.FreewayAcc) != len(s.Strategy) || len(s.FreewayAcc) != len(s.Truth) {
			t.Errorf("%s: inconsistent series lengths", s.Dataset)
		}
	}
	var sb strings.Builder
	res.WriteCSV(&sb)
	if !strings.Contains(sb.String(), "strategy") {
		t.Error("CSV malformed")
	}
	if !strings.Contains(res.String(), "Figure 9") {
		t.Error("String() malformed")
	}
}

func TestFigure11SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 11 grid is slow")
	}
	opt := fastOpt()
	opt.MaxBatches = 40
	res, err := Figure11(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Systems) != 4 {
		t.Fatalf("systems = %v", res.Systems)
	}
	wins, total := res.FreewayWinsSevere()
	if total == 0 || wins < 0 || wins > total {
		t.Errorf("wins = %d/%d", wins, total)
	}
	if !strings.Contains(res.String(), "sudden") {
		t.Error("String() malformed")
	}
}

func TestFigure10SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput sweep is slow")
	}
	opt := fastOpt()
	opt.MaxBatches = 5
	res, err := Figure10(opt)
	if err != nil {
		t.Fatal(err)
	}
	for family, rows := range res.Rows {
		for name, cells := range rows {
			for bs, tput := range cells {
				if tput <= 0 {
					t.Errorf("%s/%s/%d throughput = %v", family, name, bs, tput)
				}
			}
		}
	}
	if !strings.Contains(res.String(), "throughput") {
		t.Error("String() malformed")
	}
}

func TestTable3SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("latency sweep is slow")
	}
	opt := fastOpt()
	opt.MaxBatches = 4
	res, err := Table3(opt)
	if err != nil {
		t.Fatal(err)
	}
	for family, rows := range res.Rows {
		for name, cells := range rows {
			for bs, c := range cells {
				if c.InferMicros <= 0 {
					t.Errorf("%s/%s/%d infer latency = %v", family, name, bs, c.InferMicros)
				}
			}
		}
	}
	if !strings.Contains(res.String(), "latency") {
		t.Error("String() malformed")
	}
}

func TestTable4(t *testing.T) {
	res, err := Table4(fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Space must grow linearly with k and MLP must exceed LR.
	for i, row := range res.Rows {
		if row.MLPBytes <= row.LRBytes {
			t.Errorf("k=%d: MLP %d <= LR %d", row.K, row.MLPBytes, row.LRBytes)
		}
		if i > 0 {
			prev := res.Rows[i-1]
			wantLR := prev.LRBytes / prev.K * row.K
			if row.LRBytes != wantLR {
				t.Errorf("k=%d: LR bytes %d, want linear %d", row.K, row.LRBytes, wantLR)
			}
		}
	}
	if !strings.Contains(res.String(), "Table IV") {
		t.Error("String() malformed")
	}
}

func TestTable5SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("CNN runs are slow")
	}
	opt := fastOpt()
	opt.MaxBatches = 25
	res, err := Table5(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		wantFamily := "cnn3"
		if row.Dataset == "Animals" || row.Dataset == "Flowers" {
			wantFamily = "cnn5"
		}
		if row.FamilyUsed != wantFamily {
			t.Errorf("%s used %s", row.Dataset, row.FamilyUsed)
		}
	}
	if !strings.Contains(res.String(), "Table V") {
		t.Error("String() malformed")
	}
}

func TestTable6SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("CNN latency sweep is slow")
	}
	opt := fastOpt()
	opt.MaxBatches = 3
	res, err := Table6(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if !strings.Contains(res.String(), "Table VI") {
		t.Error("String() malformed")
	}
}

func TestAblationsSmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	opt := fastOpt()
	opt.MaxBatches = 40
	res, err := Ablations("Electricity", opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if !strings.Contains(res.String(), "Ablations") {
		t.Error("String() malformed")
	}
}

func TestPearson(t *testing.T) {
	if p := pearson([]float64{1, 2, 3}, []float64{2, 4, 6}); p < 0.999 {
		t.Errorf("perfect correlation = %v", p)
	}
	if p := pearson([]float64{1, 2, 3}, []float64{6, 4, 2}); p > -0.999 {
		t.Errorf("perfect anticorrelation = %v", p)
	}
	if p := pearson([]float64{1}, []float64{1}); p != 0 {
		t.Errorf("degenerate = %v", p)
	}
	if p := pearson([]float64{1, 1}, []float64{2, 3}); p != 0 {
		t.Errorf("zero variance = %v", p)
	}
}

func TestMeanWhere(t *testing.T) {
	vals := []float64{0.5, 0.6, 0.7}
	truth := []stream.DriftKind{stream.KindSlight, stream.KindSudden, stream.KindSlight}
	m, n := meanWhere(vals, truth, stream.KindSlight)
	if n != 2 || m != 0.6 {
		t.Errorf("meanWhere = %v/%d", m, n)
	}
	if _, n := meanWhere(vals, truth, stream.KindReoccurring); n != 0 {
		t.Errorf("absent kind n = %d", n)
	}
}

func TestRowOrderFreewayLast(t *testing.T) {
	m := map[string]map[int]Table3Cell{
		"FreewayML": {},
		"River":     {},
		"A-GEM":     {},
	}
	order := rowOrder(m)
	if order[len(order)-1] != "FreewayML" {
		t.Errorf("order = %v", order)
	}
	if order[0] != "A-GEM" {
		t.Errorf("order = %v", order)
	}
}

func TestQuickThroughput(t *testing.T) {
	tput, err := quickThroughput("Plain", "mlp", "SEA", 32, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tput <= 0 {
		t.Errorf("throughput = %v", tput)
	}
}

func TestExtendedSmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("extended grid is slow")
	}
	opt := fastOpt()
	opt.MaxBatches = 30
	res, err := Extended(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Systems) != 7 {
		t.Fatalf("systems = %v", res.Systems)
	}
	for _, sys := range res.Systems {
		for _, ds := range res.Datasets {
			c := res.Cells[sys][ds]
			if c.GAcc <= 0 || c.GAcc > 1 {
				t.Errorf("%s/%s G_acc = %v", sys, ds, c.GAcc)
			}
		}
	}
	if !strings.Contains(res.String(), "SEED") {
		t.Error("String() missing systems")
	}
}
