package experiments

import (
	"fmt"
	"strings"

	"freewayml/internal/baselines"
	"freewayml/internal/datasets"
)

// Table1Cell is one framework×dataset measurement.
type Table1Cell struct {
	GAcc float64
	SI   float64
}

// Table1Result reproduces Table I: accuracy and stability of streaming
// frameworks across the six benchmark datasets, for StreamingLR and
// StreamingMLP.
type Table1Result struct {
	Datasets []string
	// Rows maps model family → framework name → dataset → cell.
	Rows map[string]map[string]map[string]Table1Cell
}

// Table1 runs the full Table I grid. For the LR group FreewayML is compared
// against Flink ML, Spark MLlib and Alink; for the MLP group against River,
// Camel and A-GEM, matching the paper's framework support matrix.
func Table1(opt Options) (*Table1Result, error) {
	res := &Table1Result{
		Datasets: datasets.Benchmark6(),
		Rows:     map[string]map[string]map[string]Table1Cell{},
	}
	groups := []struct {
		family     string
		frameworks []string
	}{
		{"lr", baselines.LRBaselines()},
		{"mlp", baselines.MLPBaselines()},
	}
	for _, g := range groups {
		res.Rows[g.family] = map[string]map[string]Table1Cell{}
		names := append(append([]string{}, g.frameworks...), "FreewayML")
		for _, fw := range names {
			res.Rows[g.family][fw] = map[string]Table1Cell{}
			for _, ds := range res.Datasets {
				src, err := datasets.Build(ds, opt.BatchSize, opt.Seed)
				if err != nil {
					return nil, err
				}
				var sys System
				if fw == "FreewayML" {
					fs, err := newFreewaySystem(g.family, src.Dim(), src.Classes(), opt)
					if err != nil {
						return nil, err
					}
					sys = fs
				} else {
					sys, err = newBaselineSystem(fw, g.family, src.Dim(), src.Classes(), opt)
					if err != nil {
						return nil, err
					}
				}
				preq, err := RunPrequential(sys, src, opt.MaxBatches)
				if err != nil {
					return nil, err
				}
				res.Rows[g.family][fw][ds] = Table1Cell{GAcc: preq.GAcc(), SI: preq.SI()}
			}
		}
	}
	return res, nil
}

// String renders the table in the paper's layout.
func (r *Table1Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table I: Accuracy and stability of streaming learning frameworks\n")
	order := map[string][]string{
		"lr":  append(append([]string{}, baselines.LRBaselines()...), "FreewayML"),
		"mlp": append(append([]string{}, baselines.MLPBaselines()...), "FreewayML"),
	}
	for _, family := range []string{"lr", "mlp"} {
		label := "StreamingLR"
		if family == "mlp" {
			label = "StreamingMLP"
		}
		fmt.Fprintf(&sb, "\n%s:\n%-12s", label, "Framework")
		for _, ds := range r.Datasets {
			fmt.Fprintf(&sb, " | %-16s", ds)
		}
		fmt.Fprintf(&sb, "\n%-12s", "")
		for range r.Datasets {
			fmt.Fprintf(&sb, " | %7s  %6s ", "G_acc", "SI")
		}
		sb.WriteByte('\n')
		for _, fw := range order[family] {
			fmt.Fprintf(&sb, "%-12s", fw)
			for _, ds := range r.Datasets {
				c := r.Rows[family][fw][ds]
				fmt.Fprintf(&sb, " | %6.2f%%  %6.3f", 100*c.GAcc, c.SI)
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// FreewayWins counts, per model family, on how many datasets FreewayML has
// the best G_acc and the best SI — the paper's headline claim is a clean
// sweep.
func (r *Table1Result) FreewayWins(family string) (accWins, siWins int) {
	for _, ds := range r.Datasets {
		best := true
		bestSI := true
		fcell := r.Rows[family]["FreewayML"][ds]
		for fw, cells := range r.Rows[family] {
			if fw == "FreewayML" {
				continue
			}
			if cells[ds].GAcc >= fcell.GAcc {
				best = false
			}
			if cells[ds].SI >= fcell.SI {
				bestSI = false
			}
		}
		if best {
			accWins++
		}
		if bestSI {
			siWins++
		}
	}
	return accWins, siWins
}
