package experiments

import (
	"fmt"
	"strings"

	"freewayml/internal/baselines"
	"freewayml/internal/datasets"
)

// ExtendedResult goes beyond the paper's Table I: every implemented
// adaptation family — the Table I baselines plus Replay, EWC and the
// SEED-like expert pool from the related work — against FreewayML on the
// six benchmark datasets (MLP family).
type ExtendedResult struct {
	Datasets []string
	Systems  []string
	// Cells maps system → dataset → cell.
	Cells map[string]map[string]Table1Cell
}

// Extended runs the full extended comparison.
func Extended(opt Options) (*ExtendedResult, error) {
	systems := append(append([]string{}, baselines.ExtendedBaselines()...), "FreewayML")
	res := &ExtendedResult{
		Datasets: datasets.Benchmark6(),
		Systems:  systems,
		Cells:    map[string]map[string]Table1Cell{},
	}
	for _, name := range systems {
		res.Cells[name] = map[string]Table1Cell{}
		for _, ds := range res.Datasets {
			src, err := datasets.Build(ds, opt.BatchSize, opt.Seed)
			if err != nil {
				return nil, err
			}
			var sys System
			if name == "FreewayML" {
				fs, err := newFreewaySystem("mlp", src.Dim(), src.Classes(), opt)
				if err != nil {
					return nil, err
				}
				sys = fs
			} else {
				sys, err = newBaselineSystem(name, "mlp", src.Dim(), src.Classes(), opt)
				if err != nil {
					return nil, err
				}
			}
			preq, err := RunPrequential(sys, src, opt.MaxBatches)
			if err != nil {
				return nil, err
			}
			res.Cells[name][ds] = Table1Cell{GAcc: preq.GAcc(), SI: preq.SI()}
		}
	}
	return res, nil
}

// String renders the extended grid.
func (r *ExtendedResult) String() string {
	var sb strings.Builder
	sb.WriteString("Extended comparison (StreamingMLP): all adaptation families vs FreewayML\n")
	fmt.Fprintf(&sb, "%-12s", "System")
	for _, ds := range r.Datasets {
		fmt.Fprintf(&sb, " | %-16s", ds)
	}
	fmt.Fprintf(&sb, "\n%-12s", "")
	for range r.Datasets {
		fmt.Fprintf(&sb, " | %7s  %6s ", "G_acc", "SI")
	}
	sb.WriteByte('\n')
	for _, name := range r.Systems {
		fmt.Fprintf(&sb, "%-12s", name)
		for _, ds := range r.Datasets {
			c := r.Cells[name][ds]
			fmt.Fprintf(&sb, " | %6.2f%%  %6.3f", 100*c.GAcc, c.SI)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
