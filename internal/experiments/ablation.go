package experiments

import (
	"fmt"
	"strings"

	"freewayml/internal/core"
	"freewayml/internal/datasets"
	"freewayml/internal/metrics"
)

// AblationRow compares a design choice against its off switch.
type AblationRow struct {
	Name    string
	OnGAcc  float64
	OnSI    float64
	OffGAcc float64
	OffSI   float64
}

// AblationResult collects the design-choice ablations DESIGN.md calls out:
// disorder-modulated ASW decay, Gaussian-kernel distance ensemble, CEC,
// the disorder-threshold knowledge policy, and pre-computed gradients.
type AblationResult struct {
	Dataset string
	Rows    []AblationRow
}

// runConfigured drives FreewayML with a mutated config over the dataset.
func runConfigured(dataset string, opt Options, mutate func(*core.Config)) (*metrics.Prequential, error) {
	src, err := datasets.Build(dataset, opt.BatchSize, opt.Seed)
	if err != nil {
		return nil, err
	}
	cfg := experimentCoreConfig("mlp", opt)
	if mutate != nil {
		mutate(&cfg)
	}
	l, err := core.NewLearner(cfg, src.Dim(), src.Classes())
	if err != nil {
		return nil, err
	}
	return RunPrequential(freewaySystem{l: l}, src, opt.MaxBatches)
}

// Ablations runs every design-choice ablation on the given dataset.
func Ablations(dataset string, opt Options) (*AblationResult, error) {
	res := &AblationResult{Dataset: dataset}
	cases := []struct {
		name string
		on   func(*core.Config)
		off  func(*core.Config)
	}{
		{
			name: "disorder-modulated ASW decay",
			on:   nil,
			off:  func(c *core.Config) { c.Window.DisorderBoost = 0 },
		},
		{
			name: "Gaussian distance ensemble",
			on:   nil,
			// A huge sigma makes every kernel weight ~1: uniform averaging.
			off: func(c *core.Config) { c.Sigma = 1e9 },
		},
		{
			name: "pre-computed window gradients",
			on:   func(c *core.Config) { c.Precompute = true },
			off:  func(c *core.Config) { c.Precompute = false },
		},
		{
			name: "disorder-threshold knowledge policy",
			on:   nil,
			// β=1 puts every window below the threshold, so both models are
			// saved on every close (save-everything policy).
			off: func(c *core.Config) { c.Beta = 1 },
		},
	}
	for _, cse := range cases {
		on, err := runConfigured(dataset, opt, cse.on)
		if err != nil {
			return nil, err
		}
		off, err := runConfigured(dataset, opt, cse.off)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationRow{
			Name:    cse.name,
			OnGAcc:  on.GAcc(),
			OnSI:    on.SI(),
			OffGAcc: off.GAcc(),
			OffSI:   off.SI(),
		})
	}
	return res, nil
}

// String renders the ablation comparison.
func (r *AblationResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablations on %s\n", r.Dataset)
	fmt.Fprintf(&sb, "%-36s | %-17s | %-17s\n", "Design choice", "On (G_acc / SI)", "Off (G_acc / SI)")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-36s | %6.2f%% / %6.3f | %6.2f%% / %6.3f\n",
			row.Name, 100*row.OnGAcc, row.OnSI, 100*row.OffGAcc, row.OffSI)
	}
	return sb.String()
}
