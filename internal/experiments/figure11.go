package experiments

import (
	"fmt"
	"strings"

	"freewayml/internal/baselines"
	"freewayml/internal/datasets"
	"freewayml/internal/stream"
)

// Figure11Cell is one system's accuracy under one drift pattern on one
// dataset.
type Figure11Cell struct {
	Acc     float64
	Batches int
}

// Figure11Result reproduces Figure 11: accuracy of FreewayML compared to
// existing methods, sliced by the three shift patterns across the six
// benchmark datasets (MLP family, as the figure's comparisons are the MLP
// baselines).
type Figure11Result struct {
	Datasets []string
	Systems  []string
	// Cells maps dataset → system → drift kind → cell.
	Cells map[string]map[string]map[stream.DriftKind]Figure11Cell
}

// Figure11 runs every MLP-group system over the six datasets and slices
// accuracy by ground-truth pattern.
func Figure11(opt Options) (*Figure11Result, error) {
	systems := append(append([]string{}, baselines.MLPBaselines()...), "FreewayML")
	res := &Figure11Result{
		Datasets: datasets.Benchmark6(),
		Systems:  systems,
		Cells:    map[string]map[string]map[stream.DriftKind]Figure11Cell{},
	}
	for _, ds := range res.Datasets {
		res.Cells[ds] = map[string]map[stream.DriftKind]Figure11Cell{}
		for _, name := range systems {
			src, err := datasets.Build(ds, opt.BatchSize, opt.Seed)
			if err != nil {
				return nil, err
			}
			var sys System
			if name == "FreewayML" {
				fs, err := newFreewaySystem("mlp", src.Dim(), src.Classes(), opt)
				if err != nil {
					return nil, err
				}
				sys = fs
			} else {
				sys, err = newBaselineSystem(name, "mlp", src.Dim(), src.Classes(), opt)
				if err != nil {
					return nil, err
				}
			}
			preq, err := RunPrequential(sys, src, opt.MaxBatches)
			if err != nil {
				return nil, err
			}
			cells := map[stream.DriftKind]Figure11Cell{}
			for _, kind := range []stream.DriftKind{stream.KindSlight, stream.KindSudden, stream.KindReoccurring} {
				acc, n := preq.KindAcc(kind)
				cells[kind] = Figure11Cell{Acc: acc, Batches: n}
			}
			res.Cells[ds][name] = cells
		}
	}
	return res, nil
}

// String renders the per-pattern comparison rows.
func (r *Figure11Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 11: accuracy(%) of FreewayML vs existing methods per pattern\n")
	fmt.Fprintf(&sb, "%-12s | %-11s", "Dataset", "Pattern")
	for _, sys := range r.Systems {
		fmt.Fprintf(&sb, " | %9s", sys)
	}
	sb.WriteByte('\n')
	for _, ds := range r.Datasets {
		for _, kind := range []stream.DriftKind{stream.KindSlight, stream.KindSudden, stream.KindReoccurring} {
			fmt.Fprintf(&sb, "%-12s | %-11s", ds, kind)
			for _, sys := range r.Systems {
				fmt.Fprintf(&sb, " | %8.2f%%", 100*r.Cells[ds][sys][kind].Acc)
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// FreewayWinsSevere counts the dataset×pattern slices with severe drift
// (sudden or reoccurring) where FreewayML beats every baseline — the
// paper's claim is that the advantage concentrates there.
func (r *Figure11Result) FreewayWinsSevere() (wins, total int) {
	for _, ds := range r.Datasets {
		for _, kind := range []stream.DriftKind{stream.KindSudden, stream.KindReoccurring} {
			total++
			f := r.Cells[ds]["FreewayML"][kind].Acc
			best := true
			for _, sys := range r.Systems {
				if sys == "FreewayML" {
					continue
				}
				if r.Cells[ds][sys][kind].Acc >= f {
					best = false
				}
			}
			if best {
				wins++
			}
		}
	}
	return wins, total
}
