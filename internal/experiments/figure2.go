package experiments

import (
	"fmt"
	"math"
	"strings"

	"freewayml/internal/datasets"
	"freewayml/internal/linalg"
	"freewayml/internal/metrics"
	"freewayml/internal/shift"
)

// Figure2Dataset is the shift-graph study of one Sec. III stream: the PCA
// trajectory with per-batch accuracy, plus the correlation between shift
// distance and accuracy change.
type Figure2Dataset struct {
	Dataset string
	Graph   *shift.Graph
	// Correlation is the Pearson correlation between each batch's shift
	// distance d_t and the magnitude of its accuracy change |Δacc| — the
	// relationship Fig. 2d visualizes.
	Correlation float64
}

// Figure2Result reproduces Figure 2: shift graphs of the three real-world
// study datasets and the accuracy-vs-shift correlation.
type Figure2Result struct {
	Streams []Figure2Dataset
}

// Figure2Datasets lists the Sec. III study streams.
func Figure2Datasets() []string {
	return []string{"ElectricityLoad", "StockTrend", "SolarIrradiance"}
}

// Figure2 runs a plain StreamingMLP with a shift detector over each study
// dataset, recording the shift graph and per-batch real-time accuracy.
func Figure2(opt Options) (*Figure2Result, error) {
	res := &Figure2Result{}
	for _, ds := range Figure2Datasets() {
		src, err := datasets.Build(ds, opt.BatchSize, opt.Seed)
		if err != nil {
			return nil, err
		}
		sys, err := newBaselineSystem("Plain", "mlp", src.Dim(), src.Classes(), opt)
		if err != nil {
			return nil, err
		}
		detCfg := shift.DefaultConfig()
		detCfg.WarmupPoints = 2 * opt.BatchSize
		detCfg.HistoryK = 12
		detCfg.MinSeverityHistory = 4
		det, err := shift.NewDetector(detCfg)
		if err != nil {
			return nil, err
		}

		var g shift.Graph
		var dists, dAccs []float64
		prevAcc := math.NaN()
		for n := 0; opt.MaxBatches <= 0 || n < opt.MaxBatches; n++ {
			b, ok := src.Next()
			if !ok {
				break
			}
			pred, err := sys.Step(b)
			if err != nil {
				return nil, err
			}
			acc, err := metrics.Accuracy(pred, b.Y)
			if err != nil {
				return nil, err
			}
			obs, err := det.Observe(toVecs(b.X))
			if err != nil {
				return nil, err
			}
			g.Add(obs, acc)
			if obs.YBar != nil && !math.IsNaN(prevAcc) && obs.Distance > 0 {
				dists = append(dists, obs.Distance)
				dAccs = append(dAccs, math.Abs(acc-prevAcc))
			}
			prevAcc = acc
		}
		res.Streams = append(res.Streams, Figure2Dataset{
			Dataset:     ds,
			Graph:       &g,
			Correlation: pearson(dists, dAccs),
		})
	}
	return res, nil
}

// String summarizes the graphs (full CSVs come from cmd/shiftgraph).
func (r *Figure2Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 2: shift graphs and accuracy correlation (Sec. III study)\n")
	fmt.Fprintf(&sb, "%-16s | %7s | %12s | %22s\n", "Dataset", "Batches", "Path length", "corr(d_t, |Δacc|)")
	for _, s := range r.Streams {
		fmt.Fprintf(&sb, "%-16s | %7d | %12.2f | %22.3f\n",
			s.Dataset, s.Graph.Len(), s.Graph.TotalPathLength(), s.Correlation)
	}
	return sb.String()
}

// pearson returns the Pearson correlation coefficient (0 for degenerate
// inputs).
func pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

func toVecs(x [][]float64) []linalg.Vector {
	out := make([]linalg.Vector, len(x))
	for i, row := range x {
		out[i] = linalg.Vector(row)
	}
	return out
}
