// Package datasets provides the stream generators of the evaluation. The
// paper uses two synthetic datasets (Hyperplane, SEA), four real-world ones
// (Airlines, Covertype, NSL-KDD, Electricity), three Sec. III study streams
// (electricity load, stock trend, solar irradiance), and two image-feature
// streams for the appendix (Animals, Flowers). Raw downloads are not
// available offline, so each real-world dataset is simulated: a
// deterministic generator reproducing its schema, class balance, and —
// decisive for FreewayML — its drift profile, with ground-truth drift kinds
// attached to every batch so per-pattern accuracy (Table II, Fig. 9/11) can
// be computed exactly.
package datasets

import (
	"fmt"
	"math"
	"math/rand"

	"freewayml/internal/stream"
)

// Phase is one segment of a drift schedule: Batches mini-batches drawn from
// concept Concept, labeled with drift kind Kind, optionally drifting
// directionally (Velocity added to all class means every batch) or
// fluctuating locally (Jitter-scaled random walk, mean-reverting).
type Phase struct {
	Batches  int
	Kind     stream.DriftKind
	Concept  int
	Velocity []float64
	Jitter   float64
}

// Concept defines the active distribution: one mean offset per class added
// to the dataset's base class means.
type Concept struct {
	Offsets [][]float64
	Noise   float64
}

// Schedule is a full drift script. When Loop is true the phase list repeats
// forever; otherwise the stream ends after the last phase.
type Schedule struct {
	Phases []Phase
	Loop   bool
}

// protoStream draws labeled batches from class-conditional Gaussians whose
// means move according to a Schedule. It backs most simulated datasets;
// rule-based ones (Hyperplane, SEA) post-process its samples.
type protoStream struct {
	name       string
	dim        int
	classes    int
	batchSize  int
	baseMeans  [][]float64
	classProbs []float64 // cumulative distribution over classes
	concepts   []Concept
	schedule   Schedule

	// relabel, when set, overrides the sampled class label from the feature
	// vector (rule-based concepts); it receives the active concept index.
	relabel func(x []float64, concept int) int

	rng         *rand.Rand
	phaseIdx    int
	phaseBatch  int
	seq         int
	globalDrift []float64 // accumulated directional velocity
	jitter      []float64 // mean-reverting localized offset
	done        bool
}

// streamSpec bundles the constructor arguments of a protoStream.
type streamSpec struct {
	name       string
	dim        int
	classes    int
	batchSize  int
	baseMeans  [][]float64
	classProbs []float64 // per-class probabilities (uniform when nil)
	concepts   []Concept
	schedule   Schedule
	relabel    func(x []float64, concept int) int
	seed       int64
}

func newProtoStream(s streamSpec) (*protoStream, error) {
	if s.dim < 1 || s.classes < 1 || s.batchSize < 1 {
		return nil, fmt.Errorf("datasets: %s: invalid shape", s.name)
	}
	if len(s.baseMeans) != s.classes {
		return nil, fmt.Errorf("datasets: %s: need %d base means", s.name, s.classes)
	}
	for _, m := range s.baseMeans {
		if len(m) != s.dim {
			return nil, fmt.Errorf("datasets: %s: base mean dim mismatch", s.name)
		}
	}
	if len(s.concepts) == 0 {
		return nil, fmt.Errorf("datasets: %s: no concepts", s.name)
	}
	for _, c := range s.concepts {
		if len(c.Offsets) != s.classes {
			return nil, fmt.Errorf("datasets: %s: concept offsets per class", s.name)
		}
		if c.Noise <= 0 {
			return nil, fmt.Errorf("datasets: %s: concept noise must be positive", s.name)
		}
	}
	if len(s.schedule.Phases) == 0 {
		return nil, fmt.Errorf("datasets: %s: empty schedule", s.name)
	}
	for _, p := range s.schedule.Phases {
		if p.Batches < 1 {
			return nil, fmt.Errorf("datasets: %s: phase needs batches", s.name)
		}
		if p.Concept < 0 || p.Concept >= len(s.concepts) {
			return nil, fmt.Errorf("datasets: %s: phase concept out of range", s.name)
		}
		if p.Velocity != nil && len(p.Velocity) != s.dim {
			return nil, fmt.Errorf("datasets: %s: phase velocity dim mismatch", s.name)
		}
	}
	probs := s.classProbs
	if probs == nil {
		probs = make([]float64, s.classes)
		for i := range probs {
			probs[i] = 1 / float64(s.classes)
		}
	}
	if len(probs) != s.classes {
		return nil, fmt.Errorf("datasets: %s: class probs length", s.name)
	}
	cum := make([]float64, s.classes)
	var total float64
	for i, p := range probs {
		if p < 0 {
			return nil, fmt.Errorf("datasets: %s: negative class prob", s.name)
		}
		total += p
		cum[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("datasets: %s: class probs sum to zero", s.name)
	}
	for i := range cum {
		cum[i] /= total
	}
	return &protoStream{
		name:        s.name,
		dim:         s.dim,
		classes:     s.classes,
		batchSize:   s.batchSize,
		baseMeans:   s.baseMeans,
		classProbs:  cum,
		concepts:    s.concepts,
		schedule:    s.schedule,
		relabel:     s.relabel,
		rng:         rand.New(rand.NewSource(s.seed)),
		globalDrift: make([]float64, s.dim),
		jitter:      make([]float64, s.dim),
	}, nil
}

func (p *protoStream) Name() string { return p.name }
func (p *protoStream) Dim() int     { return p.dim }
func (p *protoStream) Classes() int { return p.classes }

// Next draws one batch from the active phase.
func (p *protoStream) Next() (stream.Batch, bool) {
	if p.done {
		return stream.Batch{}, false
	}
	phase := p.schedule.Phases[p.phaseIdx]

	// Apply within-phase evolution before sampling.
	if phase.Velocity != nil {
		for j, v := range phase.Velocity {
			p.globalDrift[j] += v
		}
	}
	if phase.Jitter > 0 {
		for j := range p.jitter {
			// Mean-reverting walk keeps the fluctuation localized.
			p.jitter[j] = 0.8*p.jitter[j] + p.rng.NormFloat64()*phase.Jitter
		}
	} else {
		for j := range p.jitter {
			p.jitter[j] = 0
		}
	}

	// Streams are continuous: a concept switch is never perfectly aligned
	// with batch boundaries. When this is the last batch of a phase and the
	// next phase runs a different concept, the batch tail already samples
	// the incoming concept — the coherence the paper's CEC hypothesis
	// relies on ("the distribution often has already occurred at the end of
	// the previous batch").
	nextConcept := phase.Concept
	if p.phaseBatch == phase.Batches-1 {
		if next, ok := p.peekNextPhase(); ok && next.Concept != phase.Concept {
			nextConcept = next.Concept
		}
	}
	tailStart := p.batchSize
	if nextConcept != phase.Concept {
		tailStart = p.batchSize - p.batchSize/3
	}

	x := make([][]float64, p.batchSize)
	y := make([]int, p.batchSize)
	for i := 0; i < p.batchSize; i++ {
		conceptIdx := phase.Concept
		if i >= tailStart {
			conceptIdx = nextConcept
		}
		concept := p.concepts[conceptIdx]
		c := p.sampleClass()
		row := make([]float64, p.dim)
		for j := 0; j < p.dim; j++ {
			row[j] = p.baseMeans[c][j] + concept.Offsets[c][j] + p.globalDrift[j] + p.jitter[j] +
				p.rng.NormFloat64()*concept.Noise
		}
		if p.relabel != nil {
			c = p.relabel(row, conceptIdx)
		}
		x[i] = row
		y[i] = c
	}
	b := stream.Batch{Seq: p.seq, X: x, Y: y, Truth: phase.Kind}
	p.seq++

	p.phaseBatch++
	if p.phaseBatch >= phase.Batches {
		p.phaseBatch = 0
		p.phaseIdx++
		if p.phaseIdx >= len(p.schedule.Phases) {
			if p.schedule.Loop {
				p.phaseIdx = 0
			} else {
				p.done = true
			}
		}
	}
	return b, true
}

// peekNextPhase returns the phase that will follow the current one, if any.
func (p *protoStream) peekNextPhase() (Phase, bool) {
	idx := p.phaseIdx + 1
	if idx >= len(p.schedule.Phases) {
		if !p.schedule.Loop {
			return Phase{}, false
		}
		idx = 0
	}
	return p.schedule.Phases[idx], true
}

func (p *protoStream) sampleClass() int {
	u := p.rng.Float64()
	for i, c := range p.classProbs {
		if u <= c {
			return i
		}
	}
	return p.classes - 1
}

// uniformOffsets returns per-class offsets all equal to base — the whole
// input distribution moves together when the concept activates.
func uniformOffsets(classes int, base []float64) [][]float64 {
	out := make([][]float64, classes)
	for i := range out {
		out[i] = append([]float64(nil), base...)
	}
	return out
}

// unitVec returns v normalized to unit length (zero vectors returned as-is).
func unitVec(v []float64) []float64 {
	var n float64
	for _, x := range v {
		n += x * x
	}
	n = math.Sqrt(n)
	out := make([]float64, len(v))
	if n == 0 {
		return out
	}
	for i, x := range v {
		out[i] = x / n
	}
	return out
}

// vec builds a dim-length vector with the given leading values (rest zero).
func vec(dim int, leading ...float64) []float64 {
	out := make([]float64, dim)
	copy(out, leading)
	return out
}

// spreadMeans places `classes` prototype means on a circle of the given
// radius in the first two dimensions — linearly separable by construction,
// with separation controlled by radius vs noise.
func spreadMeans(classes, dim int, radius float64) [][]float64 {
	out := make([][]float64, classes)
	for c := 0; c < classes; c++ {
		angle := 2 * math.Pi * float64(c) / float64(classes)
		m := make([]float64, dim)
		m[0] = radius * math.Cos(angle)
		if dim > 1 {
			m[1] = radius * math.Sin(angle)
		}
		// Small per-class signature in the higher dims keeps classes
		// separable even when dims 0-1 drift.
		for j := 2; j < dim; j++ {
			if (j+c)%classes == 0 {
				m[j] = radius / 2
			}
		}
		out[c] = m
	}
	return out
}
