package datasets

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"freewayml/internal/stream"
)

// CSVStream adapts real data to the stream.Source interface: rows of
// numeric features with an integer class label in the last column, read
// incrementally and emitted as mini-batches. It is how a downstream user
// runs FreewayML on their own recorded streams (the repository's generators
// exist only because the paper's datasets are not redistributable).
type CSVStream struct {
	name      string
	r         *csv.Reader
	batchSize int
	dim       int
	classes   int
	seq       int
	done      bool
	err       error
}

// NewCSVStream wraps a CSV reader. dim is the feature column count (the
// label occupies column dim); classes the number of labels; header controls
// whether the first row is skipped.
func NewCSVStream(name string, r io.Reader, batchSize, dim, classes int, header bool) (*CSVStream, error) {
	if batchSize < 1 || dim < 1 || classes < 2 {
		return nil, errors.New("datasets: CSV stream needs batchSize >= 1, dim >= 1, classes >= 2")
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = dim + 1
	cr.ReuseRecord = true
	s := &CSVStream{name: name, r: cr, batchSize: batchSize, dim: dim, classes: classes}
	if header {
		if _, err := cr.Read(); err != nil {
			return nil, fmt.Errorf("datasets: CSV header: %w", err)
		}
	}
	return s, nil
}

// Name returns the stream name; Dim and Classes its shape.
func (s *CSVStream) Name() string { return s.name }

// Dim returns the feature column count.
func (s *CSVStream) Dim() int { return s.dim }

// Classes returns the label count.
func (s *CSVStream) Classes() int { return s.classes }

// Err returns the first parse error encountered (the stream ends at it).
func (s *CSVStream) Err() error { return s.err }

// Next reads up to batchSize rows; a final partial batch is emitted before
// the stream ends.
func (s *CSVStream) Next() (stream.Batch, bool) {
	if s.done {
		return stream.Batch{}, false
	}
	var x [][]float64
	var y []int
	for len(x) < s.batchSize {
		rec, err := s.r.Read()
		if err == io.EOF {
			s.done = true
			break
		}
		if err != nil {
			s.err = err
			s.done = true
			break
		}
		row := make([]float64, s.dim)
		bad := false
		for j := 0; j < s.dim; j++ {
			v, err := strconv.ParseFloat(rec[j], 64)
			if err != nil {
				s.err = fmt.Errorf("datasets: CSV row %d col %d: %w", s.seq*s.batchSize+len(x), j, err)
				bad = true
				break
			}
			row[j] = v
		}
		if bad {
			s.done = true
			break
		}
		label, err := strconv.Atoi(rec[s.dim])
		if err != nil || label < 0 || label >= s.classes {
			s.err = fmt.Errorf("datasets: CSV row %d label %q invalid", s.seq*s.batchSize+len(x), rec[s.dim])
			s.done = true
			break
		}
		x = append(x, row)
		y = append(y, label)
	}
	if len(x) == 0 {
		return stream.Batch{}, false
	}
	b := stream.Batch{Seq: s.seq, X: x, Y: y, Truth: stream.KindNone}
	s.seq++
	return b, true
}
