package datasets

import (
	"strings"
	"testing"
)

func TestCSVStreamReadsBatches(t *testing.T) {
	data := "f0,f1,label\n" +
		"1.0,2.0,0\n" +
		"3.5,4.5,1\n" +
		"5.0,6.0,0\n"
	s, err := NewCSVStream("mine", strings.NewReader(data), 2, 2, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "mine" || s.Dim() != 2 || s.Classes() != 2 {
		t.Fatalf("meta: %s %d %d", s.Name(), s.Dim(), s.Classes())
	}
	b1, ok := s.Next()
	if !ok || len(b1.X) != 2 {
		t.Fatalf("first batch: ok=%v len=%d", ok, len(b1.X))
	}
	if b1.X[1][0] != 3.5 || b1.Y[1] != 1 {
		t.Errorf("parsed wrong: %v %v", b1.X[1], b1.Y[1])
	}
	b2, ok := s.Next()
	if !ok || len(b2.X) != 1 {
		t.Fatalf("partial batch: ok=%v len=%d", ok, len(b2.X))
	}
	if _, ok := s.Next(); ok {
		t.Error("stream should have ended")
	}
	if s.Err() != nil {
		t.Errorf("clean stream reported error: %v", s.Err())
	}
}

func TestCSVStreamNoHeader(t *testing.T) {
	s, err := NewCSVStream("x", strings.NewReader("1,2,1\n"), 4, 2, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := s.Next()
	if !ok || len(b.X) != 1 || b.Y[0] != 1 {
		t.Fatalf("batch: %v %v", b.X, b.Y)
	}
}

func TestCSVStreamValidation(t *testing.T) {
	if _, err := NewCSVStream("x", strings.NewReader(""), 0, 2, 2, false); err == nil {
		t.Error("batchSize 0 should error")
	}
	if _, err := NewCSVStream("x", strings.NewReader(""), 4, 2, 1, false); err == nil {
		t.Error("classes 1 should error")
	}
	if _, err := NewCSVStream("x", strings.NewReader(""), 4, 2, 2, true); err == nil {
		t.Error("missing header should error")
	}
}

func TestCSVStreamBadRows(t *testing.T) {
	// Bad feature value.
	s, _ := NewCSVStream("x", strings.NewReader("1,oops,0\n"), 4, 2, 2, false)
	if _, ok := s.Next(); ok {
		t.Error("bad feature row should end the stream")
	}
	if s.Err() == nil {
		t.Error("bad feature should set Err")
	}
	// Bad label.
	s2, _ := NewCSVStream("x", strings.NewReader("1,2,9\n"), 4, 2, 2, false)
	if _, ok := s2.Next(); ok {
		t.Error("bad label row should end the stream")
	}
	if s2.Err() == nil {
		t.Error("bad label should set Err")
	}
	// Wrong column count.
	s3, _ := NewCSVStream("x", strings.NewReader("1,2\n"), 4, 2, 2, false)
	s3.Next()
	if s3.Err() == nil {
		t.Error("short row should set Err")
	}
}

func TestCSVStreamGoodRowsBeforeBadAreDelivered(t *testing.T) {
	data := "1,2,0\n3,4,1\nbad,5,0\n"
	s, _ := NewCSVStream("x", strings.NewReader(data), 8, 2, 2, false)
	b, ok := s.Next()
	if !ok || len(b.X) != 2 {
		t.Fatalf("expected the two good rows, got ok=%v len=%d", ok, len(b.X))
	}
	if s.Err() == nil {
		t.Error("Err should report the bad row")
	}
}
