package datasets

import (
	"math"
	"testing"

	"freewayml/internal/stream"
)

func TestRegistryBuildsEveryDataset(t *testing.T) {
	for _, name := range Names() {
		src, err := Build(name, 64, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if src.Name() != name {
			t.Errorf("%s: Name() = %q", name, src.Name())
		}
		if src.Dim() < 1 || src.Classes() < 2 {
			t.Errorf("%s: Dim=%d Classes=%d", name, src.Dim(), src.Classes())
		}
		b, ok := src.Next()
		if !ok {
			t.Fatalf("%s: no first batch", name)
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("%s: invalid batch: %v", name, err)
		}
		if len(b.X) != 64 {
			t.Errorf("%s: batch size %d", name, len(b.X))
		}
		if len(b.X[0]) != src.Dim() {
			t.Errorf("%s: feature dim %d, want %d", name, len(b.X[0]), src.Dim())
		}
		for _, y := range b.Y {
			if y < 0 || y >= src.Classes() {
				t.Fatalf("%s: label %d out of range", name, y)
			}
		}
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := Build("nope", 64, 1); err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a, _ := NewHyperplane(32, 7)
	b, _ := NewHyperplane(32, 7)
	for i := 0; i < 5; i++ {
		ba, oka := a.Next()
		bb, okb := b.Next()
		if oka != okb {
			t.Fatal("streams desynced")
		}
		for r := range ba.X {
			for c := range ba.X[r] {
				if ba.X[r][c] != bb.X[r][c] {
					t.Fatal("same seed produced different data")
				}
			}
			if ba.Y[r] != bb.Y[r] {
				t.Fatal("same seed produced different labels")
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, _ := NewSEA(32, 1)
	b, _ := NewSEA(32, 2)
	ba, _ := a.Next()
	bb, _ := b.Next()
	same := true
	for r := range ba.X {
		for c := range ba.X[r] {
			if ba.X[r][c] != bb.X[r][c] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestStreamsEndAndCoverAllKinds(t *testing.T) {
	for _, name := range Benchmark6() {
		src, err := Build(name, 16, 3)
		if err != nil {
			t.Fatal(err)
		}
		kinds := map[stream.DriftKind]int{}
		n := 0
		for {
			b, ok := src.Next()
			if !ok {
				break
			}
			kinds[b.Truth]++
			n++
			if n > 10000 {
				t.Fatalf("%s: stream does not terminate", name)
			}
		}
		if n < 50 {
			t.Errorf("%s: only %d batches", name, n)
		}
		for _, k := range []stream.DriftKind{stream.KindSlight, stream.KindSudden, stream.KindReoccurring} {
			if kinds[k] == 0 {
				t.Errorf("%s: no batches of kind %v", name, k)
			}
		}
	}
}

func TestSequenceNumbersMonotone(t *testing.T) {
	src, _ := NewElectricity(16, 1)
	prev := -1
	for i := 0; i < 20; i++ {
		b, ok := src.Next()
		if !ok {
			break
		}
		if b.Seq != prev+1 {
			t.Fatalf("seq jumped from %d to %d", prev, b.Seq)
		}
		prev = b.Seq
	}
}

func TestSuddenPhaseMovesDistribution(t *testing.T) {
	// The batch mean must jump when a sudden phase begins.
	src, _ := NewElectricityLoad(128, 5)
	var lastSlightMean, firstSuddenMean []float64
	for {
		b, ok := src.Next()
		if !ok {
			break
		}
		mean := batchMean(b.X)
		if b.Truth == stream.KindSudden && firstSuddenMean == nil {
			firstSuddenMean = mean
			break
		}
		lastSlightMean = mean
	}
	if firstSuddenMean == nil || lastSlightMean == nil {
		t.Fatal("schedule lacks the expected phases")
	}
	var dist float64
	for j := range firstSuddenMean {
		d := firstSuddenMean[j] - lastSlightMean[j]
		dist += d * d
	}
	dist = math.Sqrt(dist)
	if dist < 1 {
		t.Errorf("sudden phase moved the mean by only %v", dist)
	}
}

func TestReoccurringReturnsNearOldConcept(t *testing.T) {
	// The mean during the reoccurring phase must be closer to the original
	// concept's mean than to the intervening concept's mean.
	src, _ := NewElectricityLoad(128, 5)
	var concept0Mean, concept1Mean, reoccurMean []float64
	var seenSudden bool
	for {
		b, ok := src.Next()
		if !ok {
			break
		}
		m := batchMean(b.X)
		switch b.Truth {
		case stream.KindSlight:
			if !seenSudden {
				concept0Mean = m
			} else if reoccurMean == nil {
				concept1Mean = m
			}
		case stream.KindSudden:
			seenSudden = true
		case stream.KindReoccurring:
			reoccurMean = m
		}
		if reoccurMean != nil {
			break
		}
	}
	if concept0Mean == nil || concept1Mean == nil || reoccurMean == nil {
		t.Fatal("missing phases")
	}
	d0 := dist(reoccurMean, concept0Mean)
	d1 := dist(reoccurMean, concept1Mean)
	if d0 >= d1 {
		t.Errorf("reoccurring mean closer to new concept (d0=%v, d1=%v)", d0, d1)
	}
}

func TestClassImbalanceRespected(t *testing.T) {
	src, _ := NewNSLKDD(256, 9)
	counts := make([]int, src.Classes())
	total := 0
	for i := 0; i < 30; i++ {
		b, ok := src.Next()
		if !ok {
			break
		}
		for _, y := range b.Y {
			counts[y]++
			total++
		}
	}
	// Class 0 (normal traffic) must dominate; class 4 (U2R) must be rare.
	if frac := float64(counts[0]) / float64(total); frac < 0.4 {
		t.Errorf("majority class fraction = %v", frac)
	}
	if frac := float64(counts[4]) / float64(total); frac > 0.05 {
		t.Errorf("rare class fraction = %v", frac)
	}
}

func TestInvalidSpecRejected(t *testing.T) {
	if _, err := newProtoStream(streamSpec{name: "bad"}); err == nil {
		t.Error("empty spec should error")
	}
	spec := streamSpec{
		name: "bad", dim: 2, classes: 2, batchSize: 4,
		baseMeans: [][]float64{{0, 0}, {1, 1}},
		concepts:  []Concept{{Offsets: uniformOffsets(2, []float64{0, 0}), Noise: 1}},
		schedule:  Schedule{Phases: []Phase{{Batches: 1, Concept: 5}}},
	}
	if _, err := newProtoStream(spec); err == nil {
		t.Error("out-of-range phase concept should error")
	}
	spec.schedule = Schedule{Phases: []Phase{{Batches: 1, Concept: 0, Velocity: []float64{1}}}}
	if _, err := newProtoStream(spec); err == nil {
		t.Error("velocity dim mismatch should error")
	}
	spec.schedule = Schedule{Phases: []Phase{{Batches: 1, Concept: 0}}}
	spec.classProbs = []float64{-1, 2}
	if _, err := newProtoStream(spec); err == nil {
		t.Error("negative class prob should error")
	}
	spec.classProbs = []float64{0, 0}
	if _, err := newProtoStream(spec); err == nil {
		t.Error("zero-sum class probs should error")
	}
	spec.classProbs = nil
	spec.concepts[0].Noise = 0
	if _, err := newProtoStream(spec); err == nil {
		t.Error("zero noise should error")
	}
}

func batchMean(x [][]float64) []float64 {
	m := make([]float64, len(x[0]))
	for _, row := range x {
		for j, v := range row {
			m[j] += v
		}
	}
	for j := range m {
		m[j] /= float64(len(x))
	}
	return m
}

func dist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func TestRandomRBFStream(t *testing.T) {
	src, err := Build("RandomRBF", 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if src.Dim() != 10 || src.Classes() != 4 {
		t.Fatalf("shape %d/%d", src.Dim(), src.Classes())
	}
	n := 0
	var firstMean, lastMean []float64
	for {
		b, ok := src.Next()
		if !ok {
			break
		}
		if err := b.Validate(); err != nil {
			t.Fatal(err)
		}
		for _, y := range b.Y {
			if y < 0 || y >= 4 {
				t.Fatalf("label %d", y)
			}
		}
		m := batchMean(b.X)
		if firstMean == nil {
			firstMean = m
		}
		lastMean = m
		n++
	}
	if n != 150 {
		t.Errorf("batches = %d, want 150", n)
	}
	// The centroids drift: the overall mean must have moved.
	if dist(firstMean, lastMean) < 0.05 {
		t.Errorf("no drift detected: first %v last %v", firstMean, lastMean)
	}
	if _, err := NewRandomRBF(0, 1); err == nil {
		t.Error("batchSize 0 should error")
	}
}
