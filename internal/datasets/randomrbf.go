package datasets

import (
	"fmt"
	"math/rand"

	"freewayml/internal/stream"
)

// rbfStream implements the RandomRBF generator with drifting centroids — a
// standard stream-learning benchmark beyond the paper's six (River ships
// one too): K Gaussian centroids with random class assignments move through
// feature space at per-centroid velocities, so the class regions themselves
// wander (incremental real drift, continuously).
type rbfStream struct {
	name      string
	dim       int
	classes   int
	batchSize int
	noise     float64

	centroids [][]float64
	velocity  [][]float64
	labels    []int
	weights   []float64 // cumulative sampling weights

	rng  *rand.Rand
	seq  int
	max  int
	done bool
}

// NewRandomRBF builds the generator: numCentroids moving Gaussian kernels
// over dim features and the given class count, emitting maxBatches batches
// (0 = endless).
func NewRandomRBF(batchSize int, seed int64) (stream.Source, error) {
	const (
		dim          = 10
		classes      = 4
		numCentroids = 12
		speed        = 0.02
		noise        = 0.6
		maxBatches   = 150
	)
	if batchSize < 1 {
		return nil, fmt.Errorf("datasets: RandomRBF batch size %d", batchSize)
	}
	rng := rand.New(rand.NewSource(seed))
	s := &rbfStream{
		name: "RandomRBF", dim: dim, classes: classes, batchSize: batchSize,
		noise: noise, rng: rng, max: maxBatches,
	}
	cum := 0.0
	for i := 0; i < numCentroids; i++ {
		c := make([]float64, dim)
		v := make([]float64, dim)
		for j := range c {
			c[j] = rng.Float64()*10 - 5
			v[j] = (rng.Float64()*2 - 1) * speed
		}
		s.centroids = append(s.centroids, c)
		s.velocity = append(s.velocity, v)
		s.labels = append(s.labels, i%classes)
		cum += rng.Float64() + 0.2
		s.weights = append(s.weights, cum)
	}
	return s, nil
}

func (s *rbfStream) Name() string { return s.name }
func (s *rbfStream) Dim() int     { return s.dim }
func (s *rbfStream) Classes() int { return s.classes }

// Next moves every centroid one step and samples a batch.
func (s *rbfStream) Next() (stream.Batch, bool) {
	if s.done {
		return stream.Batch{}, false
	}
	for i := range s.centroids {
		for j := range s.centroids[i] {
			s.centroids[i][j] += s.velocity[i][j]
			// Bounce off the arena walls so the stream stays bounded.
			if s.centroids[i][j] > 8 || s.centroids[i][j] < -8 {
				s.velocity[i][j] = -s.velocity[i][j]
			}
		}
	}
	x := make([][]float64, s.batchSize)
	y := make([]int, s.batchSize)
	total := s.weights[len(s.weights)-1]
	for i := 0; i < s.batchSize; i++ {
		u := s.rng.Float64() * total
		k := 0
		for k < len(s.weights) && s.weights[k] < u {
			k++
		}
		row := make([]float64, s.dim)
		for j := range row {
			row[j] = s.centroids[k][j] + s.rng.NormFloat64()*s.noise
		}
		x[i] = row
		y[i] = s.labels[k]
	}
	b := stream.Batch{Seq: s.seq, X: x, Y: y, Truth: stream.KindSlight}
	s.seq++
	if s.max > 0 && s.seq >= s.max {
		s.done = true
	}
	return b, true
}
