package datasets

import (
	"fmt"
	"sort"

	"freewayml/internal/stream"
)

// standardSchedule builds the drift script shared by most datasets: a
// directional slight phase, a localized slight phase, a sudden switch to a
// second concept, a reoccurring return to the first, a second sudden switch,
// and a final reoccurring return — so every dataset exercises Patterns A1,
// A2, B, and C, as the paper's per-pattern experiments require.
func standardSchedule(dim int, velocity float64, jitter float64) Schedule {
	vel := vec(dim, velocity, velocity/2)
	return Schedule{Phases: []Phase{
		{Batches: 30, Kind: stream.KindSlight, Concept: 0, Velocity: vel},
		{Batches: 20, Kind: stream.KindSlight, Concept: 0, Jitter: jitter},
		{Batches: 5, Kind: stream.KindSudden, Concept: 1},
		{Batches: 25, Kind: stream.KindSlight, Concept: 1, Jitter: jitter},
		{Batches: 5, Kind: stream.KindReoccurring, Concept: 0},
		{Batches: 20, Kind: stream.KindSlight, Concept: 0, Jitter: jitter},
		{Batches: 5, Kind: stream.KindSudden, Concept: 2},
		{Batches: 15, Kind: stream.KindSlight, Concept: 2, Jitter: jitter},
		{Batches: 5, Kind: stream.KindReoccurring, Concept: 1},
		{Batches: 15, Kind: stream.KindSlight, Concept: 1, Jitter: jitter},
	}}
}

// threeConcepts builds concepts 0..2 as whole-distribution relocations by
// the given step in the first two dimensions, with the given noise.
func threeConcepts(classes, dim int, step, noise float64) []Concept {
	return []Concept{
		{Offsets: uniformOffsets(classes, vec(dim)), Noise: noise},
		{Offsets: uniformOffsets(classes, vec(dim, step, -step)), Noise: noise},
		{Offsets: uniformOffsets(classes, vec(dim, -step, step)), Noise: noise},
	}
}

// NewHyperplane simulates the River Hyperplane generator: 10 numeric
// features, binary labels from a rotating hyperplane. Each concept both
// relocates the input cloud (so distribution shift is observable) and
// reorients the labeling hyperplane.
func NewHyperplane(batchSize int, seed int64) (stream.Source, error) {
	const dim = 10
	// Per-concept hyperplane normals.
	normals := [][]float64{
		vec(dim, 1, 1, 0.5),
		vec(dim, -1, 1, -0.5),
		vec(dim, 0.5, -1, 1),
	}
	centers := [][]float64{vec(dim), vec(dim, 6, 2, 2), vec(dim, -4, -5, 1)}
	// Class-conditional structure: each class concentrates on its side of
	// the concept's hyperplane (displaced along the unit normal), as drifted
	// categorical processes do; labels still come from the rule, so points
	// near the boundary are labeled by their true side.
	concepts := make([]Concept, len(normals))
	for k := range normals {
		offsets := make([][]float64, 2)
		unit := unitVec(normals[k])
		for class := 0; class < 2; class++ {
			off := make([]float64, dim)
			sign := -2.0
			if class == 1 {
				sign = 2.0
			}
			for j := range off {
				off[j] = centers[k][j] + sign*unit[j]
			}
			offsets[class] = off
		}
		concepts[k] = Concept{Offsets: offsets, Noise: 1.5}
	}
	return newProtoStream(streamSpec{
		name:      "Hyperplane",
		dim:       dim,
		classes:   2,
		batchSize: batchSize,
		baseMeans: [][]float64{vec(dim), vec(dim)},
		concepts:  concepts,
		schedule:  standardSchedule(dim, 0.05, 0.25),
		relabel: func(x []float64, concept int) int {
			var s float64
			for j, w := range normals[concept] {
				s += w * (x[j] - centers[concept][j])
			}
			if s > 0 {
				return 1
			}
			return 0
		},
		seed: seed,
	})
}

// NewSEA simulates the SEA concepts generator: 3 numeric features in
// [0, 10], binary label x0+x1 ≤ θ with θ switching across concepts; each
// concept also relocates the cloud so the switch is visible in input space.
func NewSEA(batchSize int, seed int64) (stream.Source, error) {
	const dim = 3
	thetas := []float64{8, 10, 7}
	centers := [][]float64{vec(dim, 4, 4, 5), vec(dim, 8, 2, 2), vec(dim, 1, 6, 8)}
	// Class-conditional structure along the decision direction (1,1,0)/√2:
	// class 1 (x0+x1 ≤ θ) sits below the threshold, class 0 above.
	concepts := make([]Concept, len(centers))
	for k := range centers {
		offsets := make([][]float64, 2)
		for class := 0; class < 2; class++ {
			off := append([]float64(nil), centers[k]...)
			shift := 1.4
			if class == 1 {
				shift = -1.4
			}
			off[0] += shift
			off[1] += shift
			offsets[class] = off
		}
		concepts[k] = Concept{Offsets: offsets, Noise: 1.2}
	}
	return newProtoStream(streamSpec{
		name:      "SEA",
		dim:       dim,
		classes:   2,
		batchSize: batchSize,
		baseMeans: [][]float64{vec(dim), vec(dim)},
		concepts:  concepts,
		schedule:  standardSchedule(dim, 0.03, 0.2),
		relabel: func(x []float64, concept int) int {
			if x[0]+x[1] <= thetas[concept] {
				return 1
			}
			return 0
		},
		seed: seed,
	})
}

// NewAirlines simulates the Airlines delay dataset: 8 features (departure
// time, distance, carrier load, day-of-week encoding, congestion and
// weather indices), binary delayed/on-time labels with heavy class overlap
// (the paper's accuracies sit in the low 60s), seasonal directional drift,
// sudden operational disruptions, and reoccurring schedule regimes.
func NewAirlines(batchSize int, seed int64) (stream.Source, error) {
	const dim = 8
	onTime := vec(dim, 10, 2.0, 0.45, 0.5, 0.5, 0.3, 0.4, 0.2)
	delayed := vec(dim, 16, 2.2, 0.75, 0.5, 0.5, 0.8, 0.7, 0.6)
	return newProtoStream(streamSpec{
		name:       "Airlines",
		dim:        dim,
		classes:    2,
		batchSize:  batchSize,
		baseMeans:  [][]float64{onTime, delayed},
		classProbs: []float64{0.55, 0.45},
		concepts:   threeConcepts(2, dim, 4, 3.2),
		schedule:   standardSchedule(dim, 0.05, 0.4),
		seed:       seed,
	})
}

// NewCovertype simulates the UCI Covertype dataset: 10 cartographic
// features, 7 forest cover classes with realistic imbalance, a directional
// elevation gradient, and localized terrain fluctuation.
func NewCovertype(batchSize int, seed int64) (stream.Source, error) {
	const dim, classes = 10, 7
	return newProtoStream(streamSpec{
		name:       "Covertype",
		dim:        dim,
		classes:    classes,
		batchSize:  batchSize,
		baseMeans:  spreadMeans(classes, dim, 4),
		classProbs: []float64{0.365, 0.495, 0.062, 0.005, 0.016, 0.030, 0.035},
		concepts:   threeConcepts(classes, dim, 5, 2.6),
		schedule:   standardSchedule(dim, 0.06, 0.35),
		seed:       seed,
	})
}

// NewNSLKDD simulates the NSL-KDD intrusion dataset: 12 connection
// features, 5 classes (normal, DoS, probe, R2L, U2R) with strong imbalance.
// Attack campaigns alternate over time, so its schedule emphasizes
// reoccurring regimes — the scenario the paper calls out for Pattern C.
func NewNSLKDD(batchSize int, seed int64) (stream.Source, error) {
	const dim, classes = 12, 5
	return newProtoStream(streamSpec{
		name:       "NSL-KDD",
		dim:        dim,
		classes:    classes,
		batchSize:  batchSize,
		baseMeans:  spreadMeans(classes, dim, 5),
		classProbs: []float64{0.53, 0.35, 0.09, 0.02, 0.01},
		concepts:   threeConcepts(classes, dim, 6, 1.8),
		schedule: Schedule{Phases: []Phase{
			{Batches: 25, Kind: stream.KindSlight, Concept: 0, Velocity: vec(dim, 0.04)},
			{Batches: 5, Kind: stream.KindSudden, Concept: 1},
			{Batches: 20, Kind: stream.KindSlight, Concept: 1, Jitter: 0.3},
			{Batches: 5, Kind: stream.KindReoccurring, Concept: 0},
			{Batches: 15, Kind: stream.KindSlight, Concept: 0, Jitter: 0.3},
			{Batches: 5, Kind: stream.KindSudden, Concept: 2},
			{Batches: 15, Kind: stream.KindSlight, Concept: 2, Jitter: 0.3},
			{Batches: 5, Kind: stream.KindReoccurring, Concept: 1},
			{Batches: 15, Kind: stream.KindSlight, Concept: 1, Jitter: 0.3},
			{Batches: 5, Kind: stream.KindReoccurring, Concept: 0},
			{Batches: 15, Kind: stream.KindSlight, Concept: 0, Jitter: 0.3},
		}},
		seed: seed,
	})
}

// NewElectricity simulates the Elec2 dataset: 6 market features (NSW price
// and demand, VIC price and demand, transfer, time encoding), binary
// up/down price labels, localized daily variation, sudden price shocks, and
// reoccurring market regimes.
func NewElectricity(batchSize int, seed int64) (stream.Source, error) {
	const dim = 6
	down := vec(dim, 0.4, 0.5, 0.4, 0.5, 0.4, 0.5)
	up := vec(dim, 1.3, 0.9, 1.3, 0.9, 0.7, 0.5)
	return newProtoStream(streamSpec{
		name:       "Electricity",
		dim:        dim,
		classes:    2,
		batchSize:  batchSize,
		baseMeans:  [][]float64{down, up},
		classProbs: []float64{0.58, 0.42},
		concepts:   threeConcepts(2, dim, 1.6, 0.55),
		schedule:   standardSchedule(dim, 0.015, 0.12),
		seed:       seed,
	})
}

// NewElectricityLoad simulates the Sec. III electricity-load study stream:
// 8 features, 3 load levels, dominated by localized daily cycles with
// occasional demand surges.
func NewElectricityLoad(batchSize int, seed int64) (stream.Source, error) {
	const dim, classes = 8, 3
	return newProtoStream(streamSpec{
		name:      "ElectricityLoad",
		dim:       dim,
		classes:   classes,
		batchSize: batchSize,
		baseMeans: spreadMeans(classes, dim, 3),
		concepts:  threeConcepts(classes, dim, 4, 1.2),
		schedule: Schedule{Phases: []Phase{
			{Batches: 40, Kind: stream.KindSlight, Concept: 0, Jitter: 0.3},
			{Batches: 5, Kind: stream.KindSudden, Concept: 1},
			{Batches: 30, Kind: stream.KindSlight, Concept: 1, Jitter: 0.3},
			{Batches: 5, Kind: stream.KindReoccurring, Concept: 0},
			{Batches: 30, Kind: stream.KindSlight, Concept: 0, Jitter: 0.3},
		}},
		seed: seed,
	})
}

// NewStockTrend simulates the Sec. III stock-price-trend stream: 6 features,
// binary up/down labels, strong directional drift with regime changes.
func NewStockTrend(batchSize int, seed int64) (stream.Source, error) {
	const dim = 6
	return newProtoStream(streamSpec{
		name:      "StockTrend",
		dim:       dim,
		classes:   2,
		batchSize: batchSize,
		baseMeans: spreadMeans(2, dim, 2.5),
		concepts:  threeConcepts(2, dim, 3, 1.1),
		schedule: Schedule{Phases: []Phase{
			{Batches: 35, Kind: stream.KindSlight, Concept: 0, Velocity: vec(dim, 0.08, 0.02)},
			{Batches: 5, Kind: stream.KindSudden, Concept: 1},
			{Batches: 25, Kind: stream.KindSlight, Concept: 1, Velocity: vec(dim, -0.06, 0.03)},
			{Batches: 5, Kind: stream.KindSudden, Concept: 2},
			{Batches: 25, Kind: stream.KindSlight, Concept: 2, Jitter: 0.25},
			{Batches: 5, Kind: stream.KindReoccurring, Concept: 0},
			{Batches: 20, Kind: stream.KindSlight, Concept: 0, Jitter: 0.25},
		}},
		seed: seed,
	})
}

// NewSolarIrradiance simulates the Sec. III solar-irradiance stream: 5
// features, 3 irradiance levels, a pronounced localized daily cycle, and
// sudden weather fronts.
func NewSolarIrradiance(batchSize int, seed int64) (stream.Source, error) {
	const dim, classes = 5, 3
	return newProtoStream(streamSpec{
		name:      "SolarIrradiance",
		dim:       dim,
		classes:   classes,
		batchSize: batchSize,
		baseMeans: spreadMeans(classes, dim, 3),
		concepts:  threeConcepts(classes, dim, 3.5, 1.0),
		schedule: Schedule{Phases: []Phase{
			{Batches: 30, Kind: stream.KindSlight, Concept: 0, Jitter: 0.45},
			{Batches: 5, Kind: stream.KindSudden, Concept: 1},
			{Batches: 20, Kind: stream.KindSlight, Concept: 1, Jitter: 0.45},
			{Batches: 5, Kind: stream.KindReoccurring, Concept: 0},
			{Batches: 25, Kind: stream.KindSlight, Concept: 0, Jitter: 0.45},
			{Batches: 5, Kind: stream.KindSudden, Concept: 2},
			{Batches: 20, Kind: stream.KindSlight, Concept: 2, Jitter: 0.45},
		}},
		seed: seed,
	})
}

// NewAnimals simulates the appendix's ImageNet-Subset animal image stream:
// 64-dimensional class-conditional feature vectors standing in for frozen
// VGG-16 embeddings of 10 animal classes, with task regimes switching
// suddenly and reoccurring, as in the continual-learning protocol the
// appendix follows.
func NewAnimals(batchSize int, seed int64) (stream.Source, error) {
	return newImageFeatureStream("Animals", 10, 9.5, batchSize, seed)
}

// NewFlowers simulates the appendix's Flowers image stream: 64-dimensional
// VGG-style feature vectors of 5 flower classes.
func NewFlowers(batchSize int, seed int64) (stream.Source, error) {
	return newImageFeatureStream("Flowers", 5, 5.0, batchSize, seed)
}

// newImageFeatureStream builds a class-conditional feature stream. radius
// sets the prototype circle; it is tuned per dataset so the plain
// StreamingCNN lands in the paper's accuracy band (mid-80s Animals, low-80s
// Flowers), which keeps the FreewayML comparison meaningful.
func newImageFeatureStream(name string, classes int, radius float64, batchSize int, seed int64) (stream.Source, error) {
	const dim = 64
	return newProtoStream(streamSpec{
		name:      name,
		dim:       dim,
		classes:   classes,
		batchSize: batchSize,
		baseMeans: spreadMeans(classes, dim, radius),
		concepts:  threeConcepts(classes, dim, 7, 2.2),
		schedule: Schedule{Phases: []Phase{
			{Batches: 25, Kind: stream.KindSlight, Concept: 0, Jitter: 0.3},
			{Batches: 5, Kind: stream.KindSudden, Concept: 1},
			{Batches: 20, Kind: stream.KindSlight, Concept: 1, Jitter: 0.3},
			{Batches: 5, Kind: stream.KindReoccurring, Concept: 0},
			{Batches: 20, Kind: stream.KindSlight, Concept: 0, Jitter: 0.3},
			{Batches: 5, Kind: stream.KindSudden, Concept: 2},
			{Batches: 15, Kind: stream.KindSlight, Concept: 2, Jitter: 0.3},
			{Batches: 5, Kind: stream.KindReoccurring, Concept: 1},
			{Batches: 15, Kind: stream.KindSlight, Concept: 1, Jitter: 0.3},
		}},
		seed: seed,
	})
}

// Builder constructs a dataset stream with the given batch size and seed.
type Builder func(batchSize int, seed int64) (stream.Source, error)

// Registry maps dataset names (as the paper spells them) to builders.
func Registry() map[string]Builder {
	return map[string]Builder{
		"Hyperplane":      NewHyperplane,
		"SEA":             NewSEA,
		"Airlines":        NewAirlines,
		"Covertype":       NewCovertype,
		"NSL-KDD":         NewNSLKDD,
		"Electricity":     NewElectricity,
		"ElectricityLoad": NewElectricityLoad,
		"StockTrend":      NewStockTrend,
		"SolarIrradiance": NewSolarIrradiance,
		"Animals":         NewAnimals,
		"Flowers":         NewFlowers,
		"RandomRBF":       NewRandomRBF,
	}
}

// Names returns the registry keys sorted alphabetically.
func Names() []string {
	reg := Registry()
	out := make([]string, 0, len(reg))
	for name := range reg {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Build looks a dataset up by name.
func Build(name string, batchSize int, seed int64) (stream.Source, error) {
	b, ok := Registry()[name]
	if !ok {
		return nil, fmt.Errorf("datasets: unknown dataset %q (have %v)", name, Names())
	}
	return b(batchSize, seed)
}

// Benchmark6 lists the six datasets of the paper's main evaluation in the
// order Table I presents them.
func Benchmark6() []string {
	return []string{"Hyperplane", "SEA", "Airlines", "Covertype", "NSL-KDD", "Electricity"}
}

// Real4 lists the four real-world datasets of Fig. 9.
func Real4() []string {
	return []string{"Airlines", "Covertype", "NSL-KDD", "Electricity"}
}
