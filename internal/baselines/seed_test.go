package baselines

import (
	"math/rand"
	"testing"

	"freewayml/internal/stream"
)

func TestSEEDValidation(t *testing.T) {
	f := factory(t)
	if _, err := NewSEED(f, 4, 2, 0, 3); err == nil {
		t.Error("maxExperts 0 should error")
	}
	if _, err := NewSEED(f, 4, 2, 4, 1); err == nil {
		t.Error("spawnFactor <= 1 should error")
	}
	fw, _ := NewSEED(f, 4, 2, 4, 3)
	if err := fw.Train(stream.Batch{X: [][]float64{{1, 2, 3, 4}}}); err == nil {
		t.Error("unlabeled Train should error")
	}
	if _, err := fw.Infer(stream.Batch{}); err == nil {
		t.Error("empty Infer should error")
	}
}

func TestSEEDLearnsViaRegistry(t *testing.T) {
	fw, err := Build("SEED", factory(t), 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if acc := runPrequential(t, fw, 40); acc < 0.85 {
		t.Errorf("SEED accuracy = %v", acc)
	}
}

func TestSEEDSpawnsExpertPerRegime(t *testing.T) {
	fw, err := NewSEED(factory(t), 3, 2, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	mk := func(offset float64, seq int) stream.Batch {
		x := make([][]float64, 64)
		y := make([]int, 64)
		for i := range x {
			c := rng.Intn(2)
			x[i] = []float64{offset + float64(c)*2 + rng.NormFloat64()*0.3, offset + rng.NormFloat64()*0.3, 0}
			y[i] = c
		}
		return stream.Batch{Seq: seq, X: x, Y: y}
	}
	for s := 0; s < 15; s++ {
		if err := fw.Train(mk(0, s)); err != nil {
			t.Fatal(err)
		}
	}
	if fw.Experts() != 1 {
		t.Fatalf("one regime should keep one expert, got %d", fw.Experts())
	}
	// A far-away regime must spawn a second expert.
	for s := 15; s < 30; s++ {
		if err := fw.Train(mk(30, s)); err != nil {
			t.Fatal(err)
		}
	}
	if fw.Experts() < 2 {
		t.Errorf("distinct regime did not spawn an expert: %d", fw.Experts())
	}
	experts := fw.Experts()
	// Returning to the first regime must route back, not spawn again.
	for s := 30; s < 40; s++ {
		if err := fw.Train(mk(0, s)); err != nil {
			t.Fatal(err)
		}
	}
	if fw.Experts() != experts {
		t.Errorf("reoccurring regime spawned a new expert: %d -> %d", experts, fw.Experts())
	}
}

func TestSEEDPoolBounded(t *testing.T) {
	fw, err := NewSEED(factory(t), 3, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for s := 0; s < 20; s++ {
		offset := float64(s * 15) // every batch a new regime
		x := make([][]float64, 32)
		y := make([]int, 32)
		for i := range x {
			c := rng.Intn(2)
			x[i] = []float64{offset + float64(c)*2, offset, 0}
			y[i] = c
		}
		if err := fw.Train(stream.Batch{Seq: s, X: x, Y: y}); err != nil {
			t.Fatal(err)
		}
	}
	if fw.Experts() > 2 {
		t.Errorf("pool exceeded bound: %d", fw.Experts())
	}
}

func TestSEEDInferBeforeTraining(t *testing.T) {
	fw, _ := NewSEED(factory(t), 3, 2, 4, 3)
	pred, err := fw.Infer(stream.Batch{X: [][]float64{{1, 2, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) != 1 {
		t.Errorf("pred = %v", pred)
	}
}
