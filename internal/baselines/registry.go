package baselines

import (
	"fmt"

	"freewayml/internal/model"
)

// Build constructs a baseline by its paper name with default parameters:
// "Flink ML", "Spark MLlib", "Alink", "River", "Camel", "A-GEM", or
// "Plain" (the mechanism-free streaming model).
func Build(name string, factory model.Factory, dim, classes int) (Framework, error) {
	switch name {
	case "Flink ML":
		return NewFlinkML(factory, dim, classes, 2)
	case "Spark MLlib":
		return NewSparkMLlib(factory, dim, classes, 4)
	case "Alink":
		return NewAlink(factory, dim, classes, 1e-5)
	case "River":
		return NewRiver(factory, dim, classes, nil)
	case "Camel":
		return NewCamel(factory, dim, classes, 0.6, 2048)
	case "A-GEM":
		return NewAGEM(factory, dim, classes, 2048, 256, 1)
	case "Replay":
		return NewReplay(factory, dim, classes, 2048, 128, 1)
	case "EWC":
		return NewEWC(factory, dim, classes, 0.4, 8)
	case "SEED":
		return NewSEED(factory, dim, classes, 8, 3.0)
	case "Plain":
		return NewPlain(factory, dim, classes)
	default:
		return nil, fmt.Errorf("baselines: unknown framework %q", name)
	}
}

// LRBaselines lists the frameworks compared for StreamingLR in Table I.
func LRBaselines() []string { return []string{"Flink ML", "Spark MLlib", "Alink"} }

// MLPBaselines lists the frameworks compared for StreamingMLP in Table I.
func MLPBaselines() []string { return []string{"River", "Camel", "A-GEM"} }

// ExtendedBaselines lists every implemented adaptation family, beyond the
// paper's Table I set: the related-work methods (Replay, EWC, SEED) join
// the comparison in the repository's extended experiment.
func ExtendedBaselines() []string {
	return []string{"River", "Camel", "A-GEM", "Replay", "EWC", "SEED"}
}
