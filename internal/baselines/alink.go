package baselines

import (
	"errors"

	"freewayml/internal/model"
	"freewayml/internal/stream"
)

// Alink models Alibaba Alink's online-learning stack, which combines FOBOS
// (forward-backward splitting) and RDA-style regularization with logistic
// regression for stability on real-time streams: after each SGD step, a
// proximal L1 shrinkage is applied to the weights, damping oscillation
// under noisy streams at the cost of responsiveness.
type Alink struct {
	m      model.Model
	lambda float64 // L1 proximal strength per update
}

// NewAlink builds the baseline; lambda is the proximal L1 strength (>= 0).
func NewAlink(factory model.Factory, dim, classes int, lambda float64) (*Alink, error) {
	if lambda < 0 {
		return nil, errors.New("baselines: lambda must be >= 0")
	}
	m, err := factory(dim, classes)
	if err != nil {
		return nil, err
	}
	return &Alink{m: m, lambda: lambda}, nil
}

// Name returns "Alink".
func (a *Alink) Name() string { return "Alink" }

// Infer predicts with the current model.
func (a *Alink) Infer(b stream.Batch) ([]int, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return a.m.Predict(b.X), nil
}

// Train performs the FOBOS two-phase update: an unconstrained SGD step
// followed by the proximal operator of λ‖w‖₁ (soft-thresholding).
func (a *Alink) Train(b stream.Batch) error {
	if !b.Labeled() {
		return errors.New("baselines: Train requires labels")
	}
	if _, err := a.m.Fit(b.X, b.Y); err != nil {
		return err
	}
	if a.lambda == 0 || a.m.Net() == nil {
		return nil
	}
	for _, p := range a.m.Net().Params() {
		for i, w := range p.W {
			p.W[i] = softThreshold(w, a.lambda)
		}
	}
	return nil
}

// softThreshold is the L1 proximal operator: shrink toward zero by t,
// clamping to zero inside [-t, t].
func softThreshold(w, t float64) float64 {
	switch {
	case w > t:
		return w - t
	case w < -t:
		return w + t
	default:
		return 0
	}
}
