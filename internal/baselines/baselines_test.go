package baselines

import (
	"math/rand"
	"testing"

	"freewayml/internal/datasets"
	"freewayml/internal/drift"
	"freewayml/internal/model"
	"freewayml/internal/stream"
)

func factory(t *testing.T) model.Factory {
	t.Helper()
	f, err := model.FactoryFor("mlp", model.DefaultHyper())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// separable produces a labeled batch with well-separated classes.
func separable(rng *rand.Rand, n, d, classes int, seq int) stream.Batch {
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		c := rng.Intn(classes)
		x[i] = make([]float64, d)
		for j := range x[i] {
			x[i][j] = rng.NormFloat64() * 0.3
		}
		x[i][c%d] += 3
		y[i] = c
	}
	return stream.Batch{Seq: seq, X: x, Y: y}
}

func runPrequential(t *testing.T, fw Framework, batches int) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	var correct, total int
	for s := 0; s < batches; s++ {
		b := separable(rng, 64, 6, 3, s)
		pred, err := fw.Infer(b)
		if err != nil {
			t.Fatal(err)
		}
		if s > batches/2 { // score the second half, after warm-up
			for i := range pred {
				if pred[i] == b.Y[i] {
					correct++
				}
				total++
			}
		}
		if err := fw.Train(b); err != nil {
			t.Fatal(err)
		}
	}
	return float64(correct) / float64(total)
}

func TestEveryBaselineLearnsSeparableStream(t *testing.T) {
	names := append(append([]string{}, LRBaselines()...), MLPBaselines()...)
	names = append(names, "Plain")
	for _, name := range names {
		fw, err := Build(name, factory(t), 6, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fw.Name() != name && !(name == "Plain" && fw.Name() == "StreamingMLP") {
			t.Errorf("Build(%q).Name() = %q", name, fw.Name())
		}
		if acc := runPrequential(t, fw, 40); acc < 0.85 {
			t.Errorf("%s: accuracy %v on separable stream", name, acc)
		}
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := Build("nope", factory(t), 4, 2); err == nil {
		t.Error("unknown framework should error")
	}
}

func TestConstructorValidation(t *testing.T) {
	f := factory(t)
	if _, err := NewFlinkML(f, 4, 2, 0); err == nil {
		t.Error("watermark 0 should error")
	}
	if _, err := NewSparkMLlib(f, 4, 2, 0); err == nil {
		t.Error("partitions 0 should error")
	}
	if _, err := NewAlink(f, 4, 2, -1); err == nil {
		t.Error("negative lambda should error")
	}
	if _, err := NewCamel(f, 4, 2, 0, 10); err == nil {
		t.Error("selectFraction 0 should error")
	}
	if _, err := NewCamel(f, 4, 2, 1.5, 10); err == nil {
		t.Error("selectFraction > 1 should error")
	}
	if _, err := NewCamel(f, 4, 2, 0.5, -1); err == nil {
		t.Error("negative bufCap should error")
	}
	if _, err := NewAGEM(f, 4, 2, 0, 1, 1); err == nil {
		t.Error("memCap 0 should error")
	}
	if _, err := NewAGEM(f, 4, 2, 1, 0, 1); err == nil {
		t.Error("refSize 0 should error")
	}
}

func TestTrainRequiresLabels(t *testing.T) {
	names := []string{"Flink ML", "Spark MLlib", "Alink", "River", "Camel", "A-GEM", "Plain"}
	unlabeled := stream.Batch{X: [][]float64{{1, 2, 3, 4}}}
	for _, name := range names {
		fw, err := Build(name, factory(t), 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := fw.Train(unlabeled); err == nil {
			t.Errorf("%s: Train without labels should error", name)
		}
		if _, err := fw.Infer(stream.Batch{}); err == nil {
			t.Errorf("%s: Infer of empty batch should error", name)
		}
	}
}

func TestFlinkMLDefersUpdatesToWatermark(t *testing.T) {
	fw, err := NewFlinkML(factory(t), 6, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	b := separable(rng, 64, 6, 3, 0)
	before, _ := fw.Infer(b)
	// Two trains: below watermark → model must be unchanged.
	if err := fw.Train(separable(rng, 64, 6, 3, 1)); err != nil {
		t.Fatal(err)
	}
	if err := fw.Train(separable(rng, 64, 6, 3, 2)); err != nil {
		t.Fatal(err)
	}
	mid, _ := fw.Infer(b)
	for i := range before {
		if before[i] != mid[i] {
			t.Fatal("model changed before watermark fired")
		}
	}
	// Third train fires the watermark.
	if err := fw.Train(separable(rng, 64, 6, 3, 3)); err != nil {
		t.Fatal(err)
	}
	after, _ := fw.Infer(b)
	changed := false
	for i := range before {
		if before[i] != after[i] {
			changed = true
		}
	}
	if !changed {
		t.Error("watermark update did not change the model")
	}
}

// firingDetector triggers exactly once, at the given Add count.
type firingDetector struct {
	fireAt, adds int
}

func (f *firingDetector) Add(float64) bool {
	f.adds++
	return f.adds == f.fireAt
}
func (f *firingDetector) Reset() {}

func TestRiverResetsOnDrift(t *testing.T) {
	// The reset plumbing is tested deterministically with a stub detector;
	// ADWIN's own detection behaviour is covered in internal/drift.
	det := &firingDetector{fireAt: 10}
	fw, err := NewRiver(factory(t), 4, 2, det)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	mk := func(seq int) stream.Batch {
		x := make([][]float64, 64)
		y := make([]int, 64)
		for i := range x {
			c := rng.Intn(2)
			x[i] = []float64{rng.NormFloat64() * 0.2, rng.NormFloat64() * 0.2, 0, 0}
			x[i][0] += float64(c) * 3
			y[i] = c
		}
		return stream.Batch{Seq: seq, X: x, Y: y}
	}
	for s := 0; s < 15; s++ {
		b := mk(s)
		if _, err := fw.Infer(b); err != nil {
			t.Fatal(err)
		}
		if err := fw.Train(b); err != nil {
			t.Fatal(err)
		}
	}
	if fw.Resets() != 1 {
		t.Errorf("Resets = %d, want exactly 1", fw.Resets())
	}
	// The replacement model must keep learning: accuracy recovers.
	correct, total := 0, 0
	for s := 15; s < 30; s++ {
		b := mk(s)
		pred, err := fw.Infer(b)
		if err != nil {
			t.Fatal(err)
		}
		if s >= 25 {
			for i := range pred {
				if pred[i] == b.Y[i] {
					correct++
				}
				total++
			}
		}
		if err := fw.Train(b); err != nil {
			t.Fatal(err)
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Errorf("post-reset accuracy = %v", acc)
	}
}

// TestRiverADWINDetectsSustainedOutage exercises the default batch-level
// ADWIN signal end-to-end: a sustained accuracy collapse (labels flipping
// every batch, so the model can never settle) must eventually reset.
func TestRiverADWINDetectsSustainedOutage(t *testing.T) {
	fw, err := NewRiver(factory(t), 4, 2, drift.NewADWIN(0.1, 200))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	mk := func(flip bool, seq int) stream.Batch {
		x := make([][]float64, 64)
		y := make([]int, 64)
		for i := range x {
			c := rng.Intn(2)
			x[i] = []float64{rng.NormFloat64() * 0.2, rng.NormFloat64() * 0.2, 0, 0}
			x[i][0] += float64(c) * 3
			if flip {
				y[i] = 1 - c
			} else {
				y[i] = c
			}
		}
		return stream.Batch{Seq: seq, X: x, Y: y}
	}
	for s := 0; s < 60; s++ {
		b := mk(false, s)
		if _, err := fw.Infer(b); err != nil {
			t.Fatal(err)
		}
		if err := fw.Train(b); err != nil {
			t.Fatal(err)
		}
	}
	// Alternating flips: the model cannot settle, error stays high.
	for s := 60; s < 200 && fw.Resets() == 0; s++ {
		b := mk(s%2 == 0, s)
		if _, err := fw.Infer(b); err != nil {
			t.Fatal(err)
		}
		if err := fw.Train(b); err != nil {
			t.Fatal(err)
		}
	}
	if fw.Resets() == 0 {
		t.Error("ADWIN never fired during a sustained outage")
	}
}

func TestAGEMMemoryBounded(t *testing.T) {
	fw, err := NewAGEM(factory(t), 6, 3, 100, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for s := 0; s < 10; s++ {
		if err := fw.Train(separable(rng, 64, 6, 3, s)); err != nil {
			t.Fatal(err)
		}
	}
	if fw.MemLen() > 100 {
		t.Errorf("memory grew to %d", fw.MemLen())
	}
	if fw.MemLen() == 0 {
		t.Error("memory empty after training")
	}
}

func TestSoftThreshold(t *testing.T) {
	cases := []struct{ w, t, want float64 }{
		{5, 1, 4},
		{-5, 1, -4},
		{0.5, 1, 0},
		{-0.5, 1, 0},
		{1, 1, 0},
	}
	for _, c := range cases {
		if got := softThreshold(c.w, c.t); got != c.want {
			t.Errorf("softThreshold(%v, %v) = %v, want %v", c.w, c.t, got, c.want)
		}
	}
}

func TestMargin(t *testing.T) {
	if m := margin([]float64{0.7, 0.2, 0.1}); m < 0.49 || m > 0.51 {
		t.Errorf("margin = %v, want 0.5", m)
	}
	if m := margin([]float64{1}); m != 1 {
		t.Errorf("single-class margin = %v", m)
	}
}

func TestBaselinesOnRealisticDataset(t *testing.T) {
	// Smoke: every baseline survives a full drifting dataset.
	src, err := datasets.Build("SEA", 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	fws := make([]Framework, 0, 7)
	for _, name := range []string{"Flink ML", "Spark MLlib", "Alink", "River", "Camel", "A-GEM", "Plain"} {
		fw, err := Build(name, factory(t), src.Dim(), src.Classes())
		if err != nil {
			t.Fatal(err)
		}
		fws = append(fws, fw)
	}
	for i := 0; i < 30; i++ {
		b, ok := src.Next()
		if !ok {
			break
		}
		for _, fw := range fws {
			if _, err := fw.Infer(b); err != nil {
				t.Fatalf("%s Infer: %v", fw.Name(), err)
			}
			if err := fw.Train(b); err != nil {
				t.Fatalf("%s Train: %v", fw.Name(), err)
			}
		}
	}
}
