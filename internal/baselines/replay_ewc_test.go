package baselines

import (
	"math/rand"
	"testing"

	"freewayml/internal/model"
	"freewayml/internal/stream"
)

func TestReplayAndEWCLearn(t *testing.T) {
	for _, name := range []string{"Replay", "EWC"} {
		fw, err := Build(name, factory(t), 6, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fw.Name() != name {
			t.Errorf("Name = %q", fw.Name())
		}
		if acc := runPrequential(t, fw, 40); acc < 0.85 {
			t.Errorf("%s accuracy = %v", name, acc)
		}
	}
}

func TestReplayValidation(t *testing.T) {
	f := factory(t)
	if _, err := NewReplay(f, 4, 2, 0, 1, 1); err == nil {
		t.Error("capacity 0 should error")
	}
	if _, err := NewReplay(f, 4, 2, 10, 0, 1); err == nil {
		t.Error("mix 0 should error")
	}
	fw, _ := NewReplay(f, 4, 2, 10, 4, 1)
	if err := fw.Train(stream.Batch{X: [][]float64{{1, 2, 3, 4}}}); err == nil {
		t.Error("unlabeled Train should error")
	}
	if _, err := fw.Infer(stream.Batch{}); err == nil {
		t.Error("empty Infer should error")
	}
}

func TestReplayBufferBounded(t *testing.T) {
	fw, err := NewReplay(factory(t), 6, 3, 100, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for s := 0; s < 10; s++ {
		if err := fw.Train(separable(rng, 64, 6, 3, s)); err != nil {
			t.Fatal(err)
		}
	}
	if fw.BufLen() > 100 {
		t.Errorf("reservoir grew to %d", fw.BufLen())
	}
	if fw.BufLen() == 0 {
		t.Error("reservoir empty after training")
	}
}

func TestReplayPreservesOldKnowledge(t *testing.T) {
	// Train regime A, then regime B; replay must keep regime-A accuracy
	// above a no-replay model's.
	run := func(withReplay bool) float64 {
		rng := rand.New(rand.NewSource(9))
		var fw Framework
		var err error
		if withReplay {
			fw, err = NewReplay(factory(t), 3, 2, 2048, 128, 1)
		} else {
			fw, err = NewPlain(factory(t), 3, 2)
		}
		if err != nil {
			t.Fatal(err)
		}
		mk := func(offset float64, seq int) stream.Batch {
			x := make([][]float64, 64)
			y := make([]int, 64)
			for i := range x {
				c := rng.Intn(2)
				x[i] = []float64{offset + float64(c)*2 + rng.NormFloat64()*0.3, rng.NormFloat64() * 0.3, 0}
				y[i] = c
			}
			return stream.Batch{Seq: seq, X: x, Y: y}
		}
		for s := 0; s < 25; s++ {
			if err := fw.Train(mk(0, s)); err != nil {
				t.Fatal(err)
			}
		}
		// Regime B flips the label geometry within the same region, forcing
		// interference with regime A.
		mkB := func(seq int) stream.Batch {
			b := mk(0, seq)
			for i := range b.Y {
				b.Y[i] = 1 - b.Y[i]
			}
			return b
		}
		for s := 25; s < 33; s++ {
			if err := fw.Train(mkB(s)); err != nil {
				t.Fatal(err)
			}
		}
		// Measure retention of regime A.
		probe := mk(0, 99)
		pred, err := fw.Infer(probe)
		if err != nil {
			t.Fatal(err)
		}
		correct := 0
		for i := range pred {
			if pred[i] == probe.Y[i] {
				correct++
			}
		}
		return float64(correct) / float64(len(pred))
	}
	replayAcc := run(true)
	plainAcc := run(false)
	if replayAcc <= plainAcc {
		t.Errorf("replay retention %v not above plain %v", replayAcc, plainAcc)
	}
}

func TestEWCValidation(t *testing.T) {
	f := factory(t)
	if _, err := NewEWC(f, 4, 2, -1, 4); err == nil {
		t.Error("negative lambda should error")
	}
	if _, err := NewEWC(f, 4, 2, 1, 0); err == nil {
		t.Error("consolidateEvery 0 should error")
	}
	nbFactory, err := model.FactoryFor("nb", model.DefaultHyper())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEWC(nbFactory, 4, 2, 1, 4); err == nil {
		t.Error("gradient-free model should be rejected")
	}
}

func TestEWCDampsParameterDrift(t *testing.T) {
	// After consolidation, a flipped regime must move the parameters less
	// under EWC than under plain SGD.
	drift := func(lambda float64) float64 {
		rng := rand.New(rand.NewSource(10))
		fw, err := NewEWC(factory(t), 3, 2, lambda, 4)
		if err != nil {
			t.Fatal(err)
		}
		mk := func(flip bool, seq int) stream.Batch {
			x := make([][]float64, 64)
			y := make([]int, 64)
			for i := range x {
				c := rng.Intn(2)
				x[i] = []float64{float64(c)*2 + rng.NormFloat64()*0.3, rng.NormFloat64() * 0.3, 0}
				if flip {
					y[i] = 1 - c
				} else {
					y[i] = c
				}
			}
			return stream.Batch{Seq: seq, X: x, Y: y}
		}
		for s := 0; s < 16; s++ { // several consolidations
			if err := fw.Train(mk(false, s)); err != nil {
				t.Fatal(err)
			}
		}
		before := flatParams(fw)
		for s := 16; s < 24; s++ {
			if err := fw.Train(mk(true, s)); err != nil {
				t.Fatal(err)
			}
		}
		after := flatParams(fw)
		var d float64
		for i := range before {
			diff := after[i] - before[i]
			d += diff * diff
		}
		return d
	}
	constrained := drift(50)
	free := drift(0)
	if constrained >= free {
		t.Errorf("EWC drift %v not below unconstrained %v", constrained, free)
	}
}

func flatParams(e *EWC) []float64 {
	var out []float64
	for _, p := range e.m.Net().Params() {
		out = append(out, append([]float64(nil), p.W...)...)
	}
	return out
}
