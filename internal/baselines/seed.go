package baselines

import (
	"errors"
	"math"

	"freewayml/internal/model"
	"freewayml/internal/stream"
)

// SEED models the expert-selection family the paper discusses (Sec. II-B1,
// Rypeść et al.): a pool of expert models, each with a Gaussian signature of
// the data it was trained on; every batch is routed to the expert whose
// signature is nearest and only that expert fine-tunes. New experts spawn
// when no signature is close, up to the pool bound — so reoccurring regimes
// get their old expert back, without FreewayML's pattern classifier or
// snapshot store.
type SEED struct {
	factory model.Factory
	dim     int
	classes int

	experts []seedExpert
	// SpawnFactor: a new expert spawns when the nearest signature is
	// farther than SpawnFactor × its running mean match distance.
	spawnFactor float64
	maxExperts  int
}

type seedExpert struct {
	m model.Model
	// Gaussian signature of the expert's training data (feature means).
	mean  []float64
	count float64
	// Running mean of match distances, for the spawn rule.
	matchDist  float64
	matchCount float64
}

// NewSEED builds the baseline with at most maxExperts experts.
func NewSEED(factory model.Factory, dim, classes, maxExperts int, spawnFactor float64) (*SEED, error) {
	if maxExperts < 1 {
		return nil, errors.New("baselines: SEED maxExperts must be >= 1")
	}
	if spawnFactor <= 1 {
		return nil, errors.New("baselines: SEED spawnFactor must be > 1")
	}
	return &SEED{factory: factory, dim: dim, classes: classes, maxExperts: maxExperts, spawnFactor: spawnFactor}, nil
}

// Name returns "SEED".
func (s *SEED) Name() string { return "SEED" }

// Experts returns the current pool size.
func (s *SEED) Experts() int { return len(s.experts) }

// route returns the nearest expert's index and distance (-1 on empty pool).
func (s *SEED) route(b stream.Batch) (int, float64) {
	mean := batchMean(b.X)
	best, bestD := -1, math.Inf(1)
	for i := range s.experts {
		if d := dist(mean, s.experts[i].mean); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// Infer predicts with the nearest expert (uniform guesses before any expert
// exists).
func (s *SEED) Infer(b stream.Batch) ([]int, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	idx, _ := s.route(b)
	if idx < 0 {
		return make([]int, len(b.X)), nil
	}
	return s.experts[idx].m.Predict(b.X), nil
}

// Train routes the batch to its expert (spawning one if the match is poor)
// and fine-tunes only that expert, updating its signature.
func (s *SEED) Train(b stream.Batch) error {
	if !b.Labeled() {
		return errors.New("baselines: Train requires labels")
	}
	idx, d := s.route(b)
	spawn := idx < 0
	if !spawn && len(s.experts) < s.maxExperts {
		e := &s.experts[idx]
		// Spawn only once the expert has a settled match-distance scale; the
		// first few routed batches establish it.
		if e.matchCount >= 3 && d > s.spawnFactor*e.matchDist/e.matchCount {
			spawn = true
		}
	}
	if spawn && len(s.experts) < s.maxExperts {
		m, err := s.factory(s.dim, s.classes)
		if err != nil {
			return err
		}
		s.experts = append(s.experts, seedExpert{m: m, mean: batchMean(b.X)})
		idx = len(s.experts) - 1
	}

	e := &s.experts[idx]
	if _, err := e.m.Fit(b.X, b.Y); err != nil {
		return err
	}
	if spawn {
		// A fresh expert has no match scale yet; its first routed batches
		// will establish one.
		e.count = 1
		return nil
	}
	// Update the Gaussian signature with the batch mean.
	mean := batchMean(b.X)
	e.count++
	lr := 1 / e.count
	if lr < 0.05 {
		lr = 0.05 // keep signatures tracking slow drift
	}
	for j := range e.mean {
		e.mean[j] += lr * (mean[j] - e.mean[j])
	}
	e.matchDist += d
	e.matchCount++
	return nil
}

// batchMean returns the per-feature mean of a batch.
func batchMean(x [][]float64) []float64 {
	m := make([]float64, len(x[0]))
	for _, row := range x {
		for j, v := range row {
			m[j] += v
		}
	}
	for j := range m {
		m[j] /= float64(len(x))
	}
	return m
}

// dist returns the Euclidean distance between two vectors.
func dist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
