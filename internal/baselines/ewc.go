package baselines

import (
	"errors"

	"freewayml/internal/model"
	"freewayml/internal/nn"
	"freewayml/internal/stream"
)

// EWC implements Elastic Weight Consolidation (Kirkpatrick et al. 2017),
// the parameter-constraint family the paper discusses (Sec. II-B3): every
// ConsolidateEvery batches the diagonal Fisher information is estimated on
// the latest batch and the current parameters become an anchor; subsequent
// updates add the quadratic penalty λ·F⊙(θ−θ*) to the gradient, so
// parameters important to past data resist drift — and, as the paper notes,
// the model's ability to follow fast-changing streams diminishes with it.
type EWC struct {
	m   model.Model
	opt *nn.SGD

	lambda           float64
	consolidateEvery int
	batches          int

	anchor []float64 // θ*
	fisher []float64 // diagonal Fisher estimate
}

// NewEWC builds the baseline; lambda is the consolidation strength and
// consolidateEvery how many batches pass between anchor refreshes.
func NewEWC(factory model.Factory, dim, classes int, lambda float64, consolidateEvery int) (*EWC, error) {
	if lambda < 0 {
		return nil, errors.New("baselines: EWC lambda must be >= 0")
	}
	if consolidateEvery < 1 {
		return nil, errors.New("baselines: EWC consolidateEvery must be >= 1")
	}
	m, err := factory(dim, classes)
	if err != nil {
		return nil, err
	}
	if m.Net() == nil {
		return nil, errors.New("baselines: EWC requires a gradient-based model")
	}
	h := model.DefaultHyper()
	return &EWC{
		m:                m,
		opt:              nn.NewSGD(h.LR, h.Momentum, h.WeightDecay),
		lambda:           lambda,
		consolidateEvery: consolidateEvery,
	}, nil
}

// Name returns "EWC".
func (e *EWC) Name() string { return "EWC" }

// Infer predicts with the current model.
func (e *EWC) Infer(b stream.Batch) ([]int, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return e.m.Predict(b.X), nil
}

// Train applies one SGD step with the EWC penalty folded into the gradient,
// refreshing the Fisher anchor on schedule.
func (e *EWC) Train(b stream.Batch) error {
	if !b.Labeled() {
		return errors.New("baselines: Train requires labels")
	}
	net := e.m.Net()
	net.ZeroGrad()
	if _, err := net.AccumulateGradients(b.X, b.Y); err != nil {
		return err
	}

	if e.anchor != nil {
		// g += λ · F ⊙ (θ − θ*)
		idx := 0
		for _, p := range net.Params() {
			for i := range p.W {
				p.Grad[i] += e.lambda * e.fisher[idx] * (p.W[i] - e.anchor[idx])
				idx++
			}
		}
	}
	e.opt.Step(net.Params())

	e.batches++
	if e.batches%e.consolidateEvery == 0 {
		e.consolidate(b)
	}
	return nil
}

// consolidate estimates the diagonal Fisher as the squared per-parameter
// gradient on the latest batch and anchors the current parameters.
func (e *EWC) consolidate(b stream.Batch) {
	net := e.m.Net()
	net.ZeroGrad()
	if _, err := net.AccumulateGradients(b.X, b.Y); err != nil {
		return // keep the previous anchor on a degenerate batch
	}
	total := net.NumParams()
	if e.anchor == nil {
		e.anchor = make([]float64, total)
		e.fisher = make([]float64, total)
	}
	idx := 0
	for _, p := range net.Params() {
		for i := range p.W {
			e.anchor[idx] = p.W[i]
			e.fisher[idx] = p.Grad[i] * p.Grad[i]
			idx++
		}
		p.ZeroGrad()
	}
}
