package baselines

import (
	"errors"
	"math"
	"sort"

	"freewayml/internal/model"
	"freewayml/internal/stream"
)

// Camel models the SIGMOD'22 Camel system: data selection for efficient
// stream learning. Each labeled batch is scored and only the most useful
// fraction is used for training — samples the current model is least
// certain about (smallest prediction margin) carry the most information —
// augmented with buffered past samples most similar to the current batch.
// The scoring pass is the data-management overhead visible in the paper's
// Fig. 10/Table III (Camel slower than River).
type Camel struct {
	m model.Model
	// SelectFraction of each batch is kept for training.
	selectFraction float64
	// buffer of past selected samples for similarity-based augmentation.
	bufX   [][]float64
	bufY   []int
	bufCap int
}

// NewCamel builds the baseline; selectFraction in (0, 1], bufCap >= 0.
func NewCamel(factory model.Factory, dim, classes int, selectFraction float64, bufCap int) (*Camel, error) {
	if selectFraction <= 0 || selectFraction > 1 {
		return nil, errors.New("baselines: selectFraction must be in (0, 1]")
	}
	if bufCap < 0 {
		return nil, errors.New("baselines: bufCap must be >= 0")
	}
	m, err := factory(dim, classes)
	if err != nil {
		return nil, err
	}
	return &Camel{m: m, selectFraction: selectFraction, bufCap: bufCap}, nil
}

// Name returns "Camel".
func (c *Camel) Name() string { return "Camel" }

// Infer predicts with the current model.
func (c *Camel) Infer(b stream.Batch) ([]int, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return c.m.Predict(b.X), nil
}

// Train selects the low-margin fraction of the batch, augments it with the
// most similar buffered samples, and updates on the selection.
func (c *Camel) Train(b stream.Batch) error {
	if !b.Labeled() {
		return errors.New("baselines: Train requires labels")
	}
	proba := c.m.PredictProba(b.X)
	type scored struct {
		idx    int
		margin float64
	}
	scores := make([]scored, len(b.X))
	for i, p := range proba {
		scores[i] = scored{idx: i, margin: margin(p)}
	}
	sort.Slice(scores, func(i, j int) bool { return scores[i].margin < scores[j].margin })
	keep := int(math.Ceil(c.selectFraction * float64(len(b.X))))
	selX := make([][]float64, 0, keep+8)
	selY := make([]int, 0, keep+8)
	for _, s := range scores[:keep] {
		selX = append(selX, b.X[s.idx])
		selY = append(selY, b.Y[s.idx])
	}

	// Similarity augmentation: buffered samples closest to the batch mean.
	if len(c.bufX) > 0 {
		mean := rowMean(b.X)
		type near struct {
			idx  int
			dist float64
		}
		nears := make([]near, len(c.bufX))
		for i, x := range c.bufX {
			nears[i] = near{idx: i, dist: sqDistRow(x, mean)}
		}
		sort.Slice(nears, func(i, j int) bool { return nears[i].dist < nears[j].dist })
		aug := len(selX) / 4
		if aug > len(nears) {
			aug = len(nears)
		}
		for _, nr := range nears[:aug] {
			selX = append(selX, c.bufX[nr.idx])
			selY = append(selY, c.bufY[nr.idx])
		}
	}

	if _, err := c.m.Fit(selX, selY); err != nil {
		return err
	}

	// Refresh the buffer with this batch's selection.
	if c.bufCap > 0 {
		c.bufX = append(c.bufX, selX[:keep]...)
		c.bufY = append(c.bufY, selY[:keep]...)
		if over := len(c.bufX) - c.bufCap; over > 0 {
			c.bufX = append([][]float64(nil), c.bufX[over:]...)
			c.bufY = append([]int(nil), c.bufY[over:]...)
		}
	}
	return nil
}

// margin returns the gap between the top two probabilities (0 = most
// uncertain).
func margin(p []float64) float64 {
	best, second := -1.0, -1.0
	for _, v := range p {
		switch {
		case v > best:
			second = best
			best = v
		case v > second:
			second = v
		}
	}
	if second < 0 {
		return best
	}
	return best - second
}

func rowMean(x [][]float64) []float64 {
	m := make([]float64, len(x[0]))
	for _, row := range x {
		for j, v := range row {
			m[j] += v
		}
	}
	for j := range m {
		m[j] /= float64(len(x))
	}
	return m
}

func sqDistRow(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
