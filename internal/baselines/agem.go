package baselines

import (
	"errors"
	"math/rand"

	"freewayml/internal/model"
	"freewayml/internal/nn"
	"freewayml/internal/stream"
)

// AGEM implements Averaged Gradient Episodic Memory (Chaudhry et al. 2019):
// an episodic reservoir of past samples constrains each update so the loss
// on remembered data does not increase. The current batch's gradient g is
// projected whenever it conflicts with the memory gradient g_ref
// (g·g_ref < 0): g ← g − (g·g_ref / g_ref·g_ref)·g_ref. The second
// forward/backward pass over the memory is the constrained-learning
// overhead visible in the paper's Fig. 10/Table III (A-GEM slowest).
type AGEM struct {
	m       model.Model
	opt     *nn.SGD
	memX    [][]float64
	memY    []int
	memCap  int
	refSize int
	seen    int
	rng     *rand.Rand
}

// NewAGEM builds the baseline; memCap is the episodic memory capacity and
// refSize how many memory samples form the reference gradient per update.
func NewAGEM(factory model.Factory, dim, classes, memCap, refSize int, seed int64) (*AGEM, error) {
	if memCap < 1 {
		return nil, errors.New("baselines: memCap must be >= 1")
	}
	if refSize < 1 {
		return nil, errors.New("baselines: refSize must be >= 1")
	}
	m, err := factory(dim, classes)
	if err != nil {
		return nil, err
	}
	h := model.DefaultHyper()
	return &AGEM{
		m:       m,
		opt:     nn.NewSGD(h.LR, h.Momentum, h.WeightDecay),
		memCap:  memCap,
		refSize: refSize,
		rng:     rand.New(rand.NewSource(seed)),
	}, nil
}

// Name returns "A-GEM".
func (a *AGEM) Name() string { return "A-GEM" }

// MemLen returns the current episodic memory size.
func (a *AGEM) MemLen() int { return len(a.memX) }

// Infer predicts with the current model.
func (a *AGEM) Infer(b stream.Batch) ([]int, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return a.m.Predict(b.X), nil
}

// Train computes the batch gradient, projects it against the episodic
// memory's reference gradient when they conflict, steps, then refreshes the
// memory by reservoir sampling.
func (a *AGEM) Train(b stream.Batch) error {
	if !b.Labeled() {
		return errors.New("baselines: Train requires labels")
	}
	net := a.m.Net()
	if net == nil {
		return errors.New("baselines: A-GEM requires a gradient-based model")
	}

	net.ZeroGrad()
	if _, err := net.AccumulateGradients(b.X, b.Y); err != nil {
		return err
	}
	g := net.FlattenGrads()

	if len(a.memX) > 0 {
		refX, refY := a.sampleMemory()
		net.ZeroGrad()
		if _, err := net.AccumulateGradients(refX, refY); err != nil {
			return err
		}
		gRef := net.FlattenGrads()
		var dot, refSq float64
		for i := range g {
			dot += g[i] * gRef[i]
			refSq += gRef[i] * gRef[i]
		}
		if dot < 0 && refSq > 0 {
			coeff := dot / refSq
			for i := range g {
				g[i] -= coeff * gRef[i]
			}
		}
	}

	net.SetFlatGrads(g)
	a.opt.Step(net.Params())
	a.updateMemory(b)
	return nil
}

// sampleMemory picks up to refSize samples uniformly from the memory.
func (a *AGEM) sampleMemory() ([][]float64, []int) {
	n := a.refSize
	if n > len(a.memX) {
		n = len(a.memX)
	}
	x := make([][]float64, n)
	y := make([]int, n)
	perm := a.rng.Perm(len(a.memX))
	for i := 0; i < n; i++ {
		x[i] = a.memX[perm[i]]
		y[i] = a.memY[perm[i]]
	}
	return x, y
}

// updateMemory reservoir-samples the batch into the episodic memory.
func (a *AGEM) updateMemory(b stream.Batch) {
	for i := range b.X {
		a.seen++
		if len(a.memX) < a.memCap {
			a.memX = append(a.memX, b.X[i])
			a.memY = append(a.memY, b.Y[i])
			continue
		}
		if j := a.rng.Intn(a.seen); j < a.memCap {
			a.memX[j] = b.X[i]
			a.memY[j] = b.Y[i]
		}
	}
}
