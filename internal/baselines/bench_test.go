package baselines

import (
	"math/rand"
	"testing"

	"freewayml/internal/model"
)

// benchFramework measures one prequential step per framework on a
// 256-sample, 6-feature, 3-class batch.
func benchFramework(b *testing.B, name string) {
	b.Helper()
	h := model.DefaultHyper()
	f, err := model.FactoryFor("mlp", h)
	if err != nil {
		b.Fatal(err)
	}
	fw, err := Build(name, f, 6, 3)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	batch := separable(rng, 256, 6, 3, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fw.Infer(batch); err != nil {
			b.Fatal(err)
		}
		if err := fw.Train(batch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlinkMLStep(b *testing.B) { benchFramework(b, "Flink ML") }
func BenchmarkSparkStep(b *testing.B)   { benchFramework(b, "Spark MLlib") }
func BenchmarkAlinkStep(b *testing.B)   { benchFramework(b, "Alink") }
func BenchmarkRiverStep(b *testing.B)   { benchFramework(b, "River") }
func BenchmarkCamelStep(b *testing.B)   { benchFramework(b, "Camel") }
func BenchmarkAGEMStep(b *testing.B)    { benchFramework(b, "A-GEM") }
func BenchmarkReplayStep(b *testing.B)  { benchFramework(b, "Replay") }
func BenchmarkEWCStep(b *testing.B)     { benchFramework(b, "EWC") }
func BenchmarkSEEDStep(b *testing.B)    { benchFramework(b, "SEED") }
