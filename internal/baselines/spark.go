package baselines

import (
	"errors"

	"freewayml/internal/model"
	"freewayml/internal/nn"
	"freewayml/internal/stream"
)

// SparkMLlib models Spark MLlib's streaming regression/classification
// update: the mini-batch is split into Partitions sub-batches whose
// gradients are computed independently and averaged before a single step —
// mirroring the map-reduce aggregation of average gradients the paper
// describes. The extra partitioned passes add overhead without changing the
// update direction, matching Spark's higher latency in Table III.
type SparkMLlib struct {
	m          model.Model
	opt        *nn.SGD
	partitions int
}

// NewSparkMLlib builds the baseline with the given partition count (>= 1).
func NewSparkMLlib(factory model.Factory, dim, classes, partitions int) (*SparkMLlib, error) {
	if partitions < 1 {
		return nil, errors.New("baselines: partitions must be >= 1")
	}
	m, err := factory(dim, classes)
	if err != nil {
		return nil, err
	}
	h := model.DefaultHyper()
	return &SparkMLlib{m: m, opt: nn.NewSGD(h.LR, h.Momentum, h.WeightDecay), partitions: partitions}, nil
}

// Name returns "Spark MLlib".
func (s *SparkMLlib) Name() string { return "Spark MLlib" }

// Infer predicts with the current model.
func (s *SparkMLlib) Infer(b stream.Batch) ([]int, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return s.m.Predict(b.X), nil
}

// Train averages per-partition gradients and applies one step.
func (s *SparkMLlib) Train(b stream.Batch) error {
	if !b.Labeled() {
		return errors.New("baselines: Train requires labels")
	}
	net := s.m.Net()
	if net == nil {
		return errors.New("baselines: Spark MLlib emulation requires a gradient-based model")
	}
	net.ZeroGrad()
	n := len(b.X)
	parts := s.partitions
	if parts > n {
		parts = n
	}
	chunk := (n + parts - 1) / parts
	count := 0
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		if _, err := net.AccumulateGradients(b.X[start:end], b.Y[start:end]); err != nil {
			return err
		}
		count++
	}
	// Average the per-partition mean gradients.
	scale := 1 / float64(count)
	for _, p := range net.Params() {
		for i := range p.Grad {
			p.Grad[i] *= scale
		}
	}
	s.opt.Step(net.Params())
	return nil
}
