package baselines

import (
	"errors"
	"math/rand"

	"freewayml/internal/model"
	"freewayml/internal/stream"
)

// Replay is the data-replay family of the paper's related work (Sec. II-B2):
// a reservoir of past samples is mixed into every update so old knowledge
// is periodically retrained — the classic mitigation for catastrophic
// forgetting, at the cost of extra training work and the noise of stale
// samples under genuine drift.
type Replay struct {
	m model.Model

	bufX     [][]float64
	bufY     []int
	capacity int
	mix      int // replay samples mixed into each update
	seen     int
	rng      *rand.Rand
}

// NewReplay builds the baseline; capacity is the reservoir size and mix how
// many replayed samples join each batch's update.
func NewReplay(factory model.Factory, dim, classes, capacity, mix int, seed int64) (*Replay, error) {
	if capacity < 1 {
		return nil, errors.New("baselines: replay capacity must be >= 1")
	}
	if mix < 1 {
		return nil, errors.New("baselines: replay mix must be >= 1")
	}
	m, err := factory(dim, classes)
	if err != nil {
		return nil, err
	}
	return &Replay{m: m, capacity: capacity, mix: mix, rng: rand.New(rand.NewSource(seed))}, nil
}

// Name returns "Replay".
func (r *Replay) Name() string { return "Replay" }

// BufLen returns the reservoir's current size.
func (r *Replay) BufLen() int { return len(r.bufX) }

// Infer predicts with the current model.
func (r *Replay) Infer(b stream.Batch) ([]int, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return r.m.Predict(b.X), nil
}

// Train updates on the batch augmented with a replay sample, then folds the
// batch into the reservoir.
func (r *Replay) Train(b stream.Batch) error {
	if !b.Labeled() {
		return errors.New("baselines: Train requires labels")
	}
	x := b.X
	y := b.Y
	if len(r.bufX) > 0 {
		n := r.mix
		if n > len(r.bufX) {
			n = len(r.bufX)
		}
		x = append(append([][]float64{}, b.X...), make([][]float64, 0, n)...)
		y = append(append([]int{}, b.Y...), make([]int, 0, n)...)
		perm := r.rng.Perm(len(r.bufX))
		for i := 0; i < n; i++ {
			x = append(x, r.bufX[perm[i]])
			y = append(y, r.bufY[perm[i]])
		}
	}
	if _, err := r.m.Fit(x, y); err != nil {
		return err
	}
	// Reservoir sampling of the raw batch.
	for i := range b.X {
		r.seen++
		if len(r.bufX) < r.capacity {
			r.bufX = append(r.bufX, b.X[i])
			r.bufY = append(r.bufY, b.Y[i])
			continue
		}
		if j := r.rng.Intn(r.seen); j < r.capacity {
			r.bufX[j] = b.X[i]
			r.bufY[j] = b.Y[i]
		}
	}
	return nil
}
