package baselines

import (
	"errors"

	"freewayml/internal/drift"
	"freewayml/internal/model"
	"freewayml/internal/stream"
)

// River models the River framework's canonical drift pipeline: a streaming
// model paired with a drift detector (ADWIN over the per-sample error
// signal); when the detector fires, the model is replaced by a fresh one
// trained from the current batch onward. This reacts to sudden shifts but
// pays a cold-start accuracy dip after every reset.
type River struct {
	factory model.Factory
	dim     int
	classes int
	m       model.Model
	det     *drift.Counted
	resets  int
}

// NewRiver builds the baseline with an ADWIN detector (nil detector
// selects the default ADWIN).
func NewRiver(factory model.Factory, dim, classes int, det drift.Detector) (*River, error) {
	m, err := factory(dim, classes)
	if err != nil {
		return nil, err
	}
	if det == nil {
		// Batch-granular signal: a couple hundred error-rate observations
		// suffice for the Hoeffding test.
		det = drift.NewADWIN(0.002, 200)
	}
	return &River{factory: factory, dim: dim, classes: classes, m: m, det: drift.NewCounted(det)}, nil
}

// Name returns "River".
func (r *River) Name() string { return "River" }

// Resets returns how many drift-triggered model replacements occurred.
func (r *River) Resets() int { return r.resets }

// Detector returns the counted drift detector, exposing cumulative
// observation/detection totals for observability.
func (r *River) Detector() *drift.Counted { return r.det }

// Infer predicts with the current model.
func (r *River) Infer(b stream.Batch) ([]int, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return r.m.Predict(b.X), nil
}

// Train feeds the batch error rate to the detector, replaces the model when
// drift fires, then updates incrementally. The signal is batch-granular:
// per-sample feeding of this O(window) ADWIN would cost O(batch·window) per
// batch, far beyond what River's bucketed ADWIN costs, and batch error
// rates carry the same drift information at this granularity.
func (r *River) Train(b stream.Batch) error {
	if !b.Labeled() {
		return errors.New("baselines: Train requires labels")
	}
	pred := r.m.Predict(b.X)
	errs := 0
	for i := range pred {
		if pred[i] != b.Y[i] {
			errs++
		}
	}
	drifted := r.det.Add(float64(errs) / float64(len(pred)))
	if drifted {
		fresh, err := r.factory(r.dim, r.classes)
		if err != nil {
			return err
		}
		r.m = fresh
		r.det.Reset()
		r.resets++
		// Warm recovery: River's background learners have seen recent data
		// by the time they replace the foreground model; a fresh random
		// model has not, so give it several passes over the trigger batch
		// to stand in for that warm-up.
		for i := 0; i < 4; i++ {
			if _, err := r.m.Fit(b.X, b.Y); err != nil {
				return err
			}
		}
	}
	_, err := r.m.Fit(b.X, b.Y)
	return err
}
