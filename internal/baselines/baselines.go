// Package baselines re-implements the six SML frameworks the paper compares
// against, behind one Framework interface. The originals are external
// systems (Flink ML, Spark MLlib, Alink, River, Camel, A-GEM); what the
// evaluation contrasts is their *update policies*, so each baseline here
// reproduces its framework's documented policy on top of the same model and
// NN substrate FreewayML uses — watermark-batched updates (Flink ML),
// averaged mini-batch gradients (Spark MLlib), FOBOS proximal updates
// (Alink), drift-detector-triggered resets (River), similarity-based data
// selection (Camel), and episodic-memory gradient projection (A-GEM).
package baselines

import (
	"errors"

	"freewayml/internal/model"
	"freewayml/internal/stream"
)

// Framework is one streaming-learning system under prequential evaluation:
// every batch is first inferred, then (labels known) used for training.
type Framework interface {
	// Name identifies the framework as the paper spells it.
	Name() string
	// Infer predicts labels for the batch.
	Infer(b stream.Batch) ([]int, error)
	// Train incrementally updates the framework with the labeled batch.
	Train(b stream.Batch) error
}

// Plain wraps a bare streaming model with no adaptation mechanism at all —
// the "original Streaming MLP/LR/CNN" the paper's Table II and the appendix
// compare FreewayML's mechanisms against.
type Plain struct {
	m model.Model
}

// NewPlain builds the mechanism-free streaming baseline.
func NewPlain(factory model.Factory, dim, classes int) (*Plain, error) {
	m, err := factory(dim, classes)
	if err != nil {
		return nil, err
	}
	return &Plain{m: m}, nil
}

// Name returns the wrapped model's family name.
func (p *Plain) Name() string { return p.m.Name() }

// Infer predicts with the current model.
func (p *Plain) Infer(b stream.Batch) ([]int, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return p.m.Predict(b.X), nil
}

// Train performs one mini-batch SGD update.
func (p *Plain) Train(b stream.Batch) error {
	if !b.Labeled() {
		return errors.New("baselines: Train requires labels")
	}
	_, err := p.m.Fit(b.X, b.Y)
	return err
}
