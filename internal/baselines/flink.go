package baselines

import (
	"errors"

	"freewayml/internal/model"
	"freewayml/internal/stream"
)

// FlinkML models Apache Flink ML's watermark-driven processing: labeled
// batches are buffered and the model is updated only when a watermark fires
// (every Watermark batches), training on everything accumulated since the
// previous watermark. Inference always uses the latest committed model.
// The buffering improves per-update data volume but delays adaptation —
// the behaviour visible in the paper's Table I (lower accuracy under drift)
// and Table III (higher update latency).
type FlinkML struct {
	m         model.Model
	watermark int
	bufX      [][]float64
	bufY      []int
	pending   int
}

// NewFlinkML builds the baseline; watermark must be >= 1 (1 degrades to
// per-batch updates).
func NewFlinkML(factory model.Factory, dim, classes, watermark int) (*FlinkML, error) {
	if watermark < 1 {
		return nil, errors.New("baselines: watermark must be >= 1")
	}
	m, err := factory(dim, classes)
	if err != nil {
		return nil, err
	}
	return &FlinkML{m: m, watermark: watermark}, nil
}

// Name returns "Flink ML".
func (f *FlinkML) Name() string { return "Flink ML" }

// Infer predicts with the last committed model.
func (f *FlinkML) Infer(b stream.Batch) ([]int, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return f.m.Predict(b.X), nil
}

// Train buffers the batch and updates the model when the watermark fires.
func (f *FlinkML) Train(b stream.Batch) error {
	if !b.Labeled() {
		return errors.New("baselines: Train requires labels")
	}
	f.bufX = append(f.bufX, b.X...)
	f.bufY = append(f.bufY, b.Y...)
	f.pending++
	if f.pending < f.watermark {
		return nil
	}
	_, err := f.m.Fit(f.bufX, f.bufY)
	f.bufX = f.bufX[:0]
	f.bufY = f.bufY[:0]
	f.pending = 0
	return err
}
