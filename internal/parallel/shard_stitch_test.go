package parallel

import (
	"context"
	"math/rand"
	"testing"

	"freewayml/internal/core"
	"freewayml/internal/stream"
)

// TestShardedTinyBatchFusesAllMembers is a differential test for the
// tiny-batch path of sharded fusion: when a batch has fewer samples than the
// group has members, the empty-shard members infer on the full batch and
// their predictions must be fused in, not dropped. The expectation is
// computed by mirror learners built with the same per-member seed offsets as
// NewGroup, replayed through the exact shard assignment, and fused by an
// independently written vote loop.
func TestShardedTinyBatchFusesAllMembers(t *testing.T) {
	const members = 3
	const classes = 2
	cfg := groupConfig()

	g, err := NewGroup(cfg, 3, classes, members, Sharded)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	mirrors := make([]*core.Learner, members)
	for i := range mirrors {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		c.Hyper.Seed = cfg.Hyper.Seed + int64(i)
		l, err := core.NewLearner(c, 3, classes)
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		mirrors[i] = l
	}

	// mirrorProcess replays one batch through the mirrors with the group's
	// shard assignment and returns the fused prediction for tiny batches
	// (or per-shard results stitched back for full batches).
	mirrorProcess := func(b stream.Batch) []int {
		results := make([]core.Result, members)
		for i, l := range mirrors {
			mb := shard(b, i, members)
			if len(mb.X) == 0 {
				mb = stream.Batch{Seq: b.Seq, X: b.X, Truth: b.Truth}
			}
			res, err := l.Process(context.Background(), mb)
			if err != nil {
				t.Fatal(err)
			}
			results[i] = res
		}
		if len(b.X) >= members {
			out := make([]int, len(b.X))
			for i := range results {
				for k, idx := range shardIndices(len(b.X), i, members) {
					out[idx] = results[i].Pred[k]
				}
			}
			return out
		}
		// Independent fusion: posterior mass where available, hard votes
		// otherwise; empty-shard members cover every sample.
		votes := make([][]float64, len(b.X))
		for s := range votes {
			votes[s] = make([]float64, classes)
		}
		for i, res := range results {
			idx := shardIndices(len(b.X), i, members)
			at := func(k int) int {
				if len(idx) == 0 {
					return k
				}
				return idx[k]
			}
			if res.Proba != nil {
				for k, p := range res.Proba {
					for c, pv := range p {
						votes[at(k)][c] += pv
					}
				}
			} else {
				for k, c := range res.Pred {
					votes[at(k)][c]++
				}
			}
		}
		out := make([]int, len(votes))
		for s, v := range votes {
			best := 0
			for c := 1; c < len(v); c++ {
				if v[c] > v[best] {
					best = c
				}
			}
			out[s] = best
		}
		return out
	}

	rng := rand.New(rand.NewSource(7))
	// Warm both sides up on full batches, checking they stay in lockstep,
	// then interleave tiny batches (1 and 2 samples < 3 members).
	for s := 0; s < 12; s++ {
		n := 64
		switch {
		case s >= 6 && s%3 == 0:
			n = 1
		case s >= 6 && s%3 == 1:
			n = 2
		}
		b := twoClassBatch(rng, s, n)
		got, err := g.Process(context.Background(), b)
		if err != nil {
			t.Fatal(err)
		}
		want := mirrorProcess(b)
		if len(got) != len(b.X) {
			t.Fatalf("batch %d: pred len %d, want %d", s, len(got), len(b.X))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch %d (n=%d) sample %d: group predicted %d, mirror fusion %d",
					s, n, i, got[i], want[i])
			}
		}
	}
}
