package parallel

import (
	"context"
	"math/rand"
	"testing"

	"freewayml/internal/core"
	"freewayml/internal/metrics"
	"freewayml/internal/stream"
)

func groupConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Shift.WarmupPoints = 128
	cfg.Hyper.Hidden = 16
	return cfg
}

// twoClassBatch draws a separable two-class batch.
func twoClassBatch(rng *rand.Rand, seq, n int) stream.Batch {
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		c := rng.Intn(2)
		x[i] = []float64{float64(c)*2 + rng.NormFloat64()*0.3, rng.NormFloat64() * 0.3, 0}
		y[i] = c
	}
	return stream.Batch{Seq: seq, X: x, Y: y}
}

func TestNewGroupValidation(t *testing.T) {
	if _, err := NewGroup(groupConfig(), 3, 2, 0, Replicated); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := NewGroup(groupConfig(), 3, 2, 2, Mode(9)); err == nil {
		t.Error("bad mode should error")
	}
	if _, err := NewGroup(core.Config{}, 3, 2, 2, Replicated); err == nil {
		t.Error("bad config should error")
	}
}

func runGroup(t *testing.T, mode Mode, members int) float64 {
	t.Helper()
	g, err := NewGroup(groupConfig(), 3, 2, members, mode)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := g.Close(); err != nil {
			t.Error(err)
		}
	}()
	if g.Members() != members {
		t.Fatalf("Members = %d", g.Members())
	}
	rng := rand.New(rand.NewSource(1))
	var correct, total int
	for s := 0; s < 40; s++ {
		b := twoClassBatch(rng, s, 64)
		pred, err := g.Process(context.Background(), b)
		if err != nil {
			t.Fatal(err)
		}
		if len(pred) != len(b.X) {
			t.Fatalf("pred len %d", len(pred))
		}
		if s >= 20 {
			for i := range pred {
				if pred[i] == b.Y[i] {
					correct++
				}
				total++
			}
		}
	}
	return float64(correct) / float64(total)
}

func TestReplicatedGroupLearns(t *testing.T) {
	if acc := runGroup(t, Replicated, 3); acc < 0.9 {
		t.Errorf("replicated accuracy = %v", acc)
	}
}

func TestShardedGroupLearns(t *testing.T) {
	if acc := runGroup(t, Sharded, 3); acc < 0.85 {
		t.Errorf("sharded accuracy = %v", acc)
	}
}

func TestSingleMemberMatchesPlainLearner(t *testing.T) {
	// A one-member group must behave exactly like a bare learner.
	g, err := NewGroup(groupConfig(), 3, 2, 1, Replicated)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	l, err := core.NewLearner(groupConfig(), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rng := rand.New(rand.NewSource(2))
	for s := 0; s < 20; s++ {
		b := twoClassBatch(rng, s, 64)
		gp, err := g.Process(context.Background(), b)
		if err != nil {
			t.Fatal(err)
		}
		lr, err := l.Process(context.Background(), b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range gp {
			if gp[i] != lr.Pred[i] {
				t.Fatal("single-member group diverged from plain learner")
			}
		}
	}
}

func TestGroupUnlabeledBatch(t *testing.T) {
	g, err := NewGroup(groupConfig(), 3, 2, 2, Sharded)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	rng := rand.New(rand.NewSource(3))
	for s := 0; s < 5; s++ {
		if _, err := g.Process(context.Background(), twoClassBatch(rng, s, 64)); err != nil {
			t.Fatal(err)
		}
	}
	b := twoClassBatch(rng, 5, 32)
	b.Y = nil
	pred, err := g.Process(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) != 32 {
		t.Fatalf("pred len %d", len(pred))
	}
}

func TestGroupRejectsInvalidBatch(t *testing.T) {
	g, err := NewGroup(groupConfig(), 3, 2, 2, Replicated)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.Process(context.Background(), stream.Batch{}); err == nil {
		t.Error("empty batch should error")
	}
}

func TestShardIndicesPartition(t *testing.T) {
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		for _, j := range shardIndices(10, i, 3) {
			if seen[j] {
				t.Fatalf("index %d assigned twice", j)
			}
			seen[j] = true
		}
	}
	if len(seen) != 10 {
		t.Errorf("partition covered %d of 10", len(seen))
	}
}

func TestGroupPrequentialOnDriftStream(t *testing.T) {
	// Smoke over a drifting stream: the group must survive severe shifts.
	g, err := NewGroup(groupConfig(), 3, 2, 2, Replicated)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	rng := rand.New(rand.NewSource(4))
	var preq metrics.Prequential
	for s := 0; s < 30; s++ {
		b := twoClassBatch(rng, s, 64)
		if s >= 15 { // sudden relocation mid-stream
			for i := range b.X {
				b.X[i][0] += 8
				b.X[i][1] += 8
			}
		}
		pred, err := g.Process(context.Background(), b)
		if err != nil {
			t.Fatal(err)
		}
		acc, err := metrics.Accuracy(pred, b.Y)
		if err != nil {
			t.Fatal(err)
		}
		preq.Record(acc, b.Truth, len(b.X))
	}
	if preq.GAcc() < 0.6 {
		t.Errorf("G_acc over drift = %v", preq.GAcc())
	}
}
