// Package parallel implements the paper's stated future work — scaling
// FreewayML across cores — with two schemes:
//
//   - Replicated: N learners each see every batch; predictions are fused by
//     averaging posteriors. Inference work is parallel across replicas and
//     diversity (different seeds) buys stability.
//   - Sharded: each batch's samples are partitioned across N learners for
//     training (each shard trains on 1/N of the data), while inference
//     fuses all shards — the data-parallel layout of a distributed
//     deployment, reproduced across goroutines.
//
// Both run their members concurrently per batch and preserve the
// prequential contract of a single learner.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"freewayml/internal/core"
	"freewayml/internal/stream"
)

// Mode selects the distribution scheme.
type Mode int

const (
	// Replicated: every member sees the full batch.
	Replicated Mode = iota
	// Sharded: training samples are partitioned round-robin across members.
	Sharded
)

// Group is a set of learners running in parallel behind one Process call.
type Group struct {
	mode    Mode
	members []*core.Learner
	classes int
}

// NewGroup builds n learners from the config (seeds offset per member so
// replicas are diverse).
func NewGroup(cfg core.Config, dim, classes, n int, mode Mode) (*Group, error) {
	if n < 1 {
		return nil, errors.New("parallel: need at least one member")
	}
	if mode != Replicated && mode != Sharded {
		return nil, errors.New("parallel: unknown mode")
	}
	g := &Group{mode: mode, classes: classes}
	for i := 0; i < n; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		c.Hyper.Seed = cfg.Hyper.Seed + int64(i)
		l, err := core.NewLearner(c, dim, classes)
		if err != nil {
			return nil, fmt.Errorf("parallel: member %d: %w", i, err)
		}
		g.members = append(g.members, l)
	}
	return g, nil
}

// Members returns the member count.
func (g *Group) Members() int { return len(g.members) }

// Process runs the prequential step on all members concurrently and fuses
// their predictions by averaging posteriors (hard votes for strategies that
// produce no posterior).
func (g *Group) Process(ctx context.Context, b stream.Batch) ([]int, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	results := make([]core.Result, len(g.members))
	errs := make([]error, len(g.members))
	var wg sync.WaitGroup
	for i, l := range g.members {
		wg.Add(1)
		go func(i int, l *core.Learner) {
			defer wg.Done()
			mb := b
			if g.mode == Sharded && b.Labeled() && len(g.members) > 1 {
				mb = shard(b, i, len(g.members))
			}
			if len(mb.X) == 0 {
				// A shard can be empty for tiny batches; infer on the full
				// batch without training. The fusion below folds these
				// full-batch predictions in instead of dropping them.
				mb = stream.Batch{Seq: b.Seq, X: b.X, Truth: b.Truth}
			}
			res, err := l.Process(ctx, mb)
			if err != nil {
				errs[i] = err
				return
			}
			// Sharded members predicted only their slice; re-predicting the
			// full batch for fusion would be wasteful — instead each member's
			// result is mapped back onto its sample indices below, and the
			// replicated mode fuses directly.
			results[i] = res
		}(i, l)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	if g.mode == Sharded && b.Labeled() && len(g.members) > 1 {
		if len(b.X) >= len(g.members) {
			// Every member owned a non-empty shard, so each sample has
			// exactly one prediction: stitch them back by index.
			out := make([]int, len(b.X))
			for i := range g.members {
				for k, idx := range shardIndices(len(b.X), i, len(g.members)) {
					out[idx] = results[i].Pred[k]
				}
			}
			return out, nil
		}
		// Tiny batch: members beyond the batch size had empty shards and
		// inferred on the full batch instead. Fuse all predictions — shard
		// owners vote at their own indices, full-batch members at every
		// index — so no member's work is silently discarded.
		votes := g.newVotes(len(b.X))
		for i, res := range results {
			idx := shardIndices(len(b.X), i, len(g.members))
			if len(idx) == 0 {
				idx = nil // full-batch member: identity mapping
			}
			g.addVotes(votes, res, idx)
		}
		return argmaxVotes(votes), nil
	}

	// Replicated fusion: average posteriors where available, else majority
	// vote.
	votes := g.newVotes(len(b.X))
	for _, res := range results {
		g.addVotes(votes, res, nil)
	}
	return argmaxVotes(votes), nil
}

// newVotes allocates an n × classes vote matrix.
func (g *Group) newVotes(n int) [][]float64 {
	votes := make([][]float64, n)
	for s := range votes {
		votes[s] = make([]float64, g.classes)
	}
	return votes
}

// addVotes accumulates one member's result into the vote matrix: posterior
// mass when the strategy produced probabilities, a hard vote otherwise.
// idx maps the member's k-th sample to its vote row; nil means the member
// covered every sample in order.
func (g *Group) addVotes(votes [][]float64, res core.Result, idx []int) {
	row := func(k int) []float64 {
		if idx == nil {
			return votes[k]
		}
		return votes[idx[k]]
	}
	if res.Proba != nil {
		for k, p := range res.Proba {
			v := row(k)
			for c, pv := range p {
				v[c] += pv
			}
		}
		return
	}
	for k, c := range res.Pred {
		if c >= 0 && c < g.classes {
			row(k)[c]++
		}
	}
}

// argmaxVotes picks the highest-scoring class per sample (lowest class wins
// ties).
func argmaxVotes(votes [][]float64) []int {
	out := make([]int, len(votes))
	for s, v := range votes {
		best := 0
		for c := 1; c < len(v); c++ {
			if v[c] > v[best] {
				best = c
			}
		}
		out[s] = best
	}
	return out
}

// Close flushes every member.
func (g *Group) Close() error {
	var first error
	for _, l := range g.members {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// shard extracts member i's round-robin slice of the batch.
func shard(b stream.Batch, i, n int) stream.Batch {
	idx := shardIndices(len(b.X), i, n)
	x := make([][]float64, len(idx))
	y := make([]int, len(idx))
	for k, j := range idx {
		x[k] = b.X[j]
		y[k] = b.Y[j]
	}
	return stream.Batch{Seq: b.Seq, X: x, Y: y, Truth: b.Truth}
}

// shardIndices returns the sample indices assigned to member i of n.
func shardIndices(total, i, n int) []int {
	var out []int
	for j := i; j < total; j += n {
		out = append(out, j)
	}
	return out
}
