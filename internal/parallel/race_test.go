package parallel

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"freewayml/internal/linalg"
)

// TestGroupAndParallelGemmRace drives a learner group (its own goroutine
// fan-out per batch) while other goroutines hammer GEMMs big enough to cross
// the kernels' parallel cutoff, so both layers of concurrency overlap. Run
// under -race via `make race` / `make check`, it pins down that the
// row-partitioned kernels share no mutable state with the group machinery.
func TestGroupAndParallelGemmRace(t *testing.T) {
	// The kernels fan out only when GOMAXPROCS > 1; force that even on
	// single-core CI boxes so the parallel path actually runs.
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	g, err := NewGroup(groupConfig(), 3, 2, 3, Sharded)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	const dim = 96 // 96³ mul-adds per GEMM, well above the parallel cutoff
	a := linalg.NewTensor(dim, dim)
	b := linalg.NewTensor(dim, dim)
	rng := rand.New(rand.NewSource(11))
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
		b.Data[i] = rng.NormFloat64()
	}
	want := linalg.NewTensor(dim, dim)
	linalg.RefGemm(want, a, b)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := linalg.NewTensor(dim, dim)
			for iter := 0; iter < 8; iter++ {
				linalg.Gemm(c, a, b)
			}
			for i := range want.Data {
				if c.Data[i] != want.Data[i] {
					t.Errorf("worker %d: parallel GEMM diverged at %d", w, i)
					return
				}
			}
		}(w)
	}

	streamRng := rand.New(rand.NewSource(12))
	for s := 0; s < 10; s++ {
		if _, err := g.Process(context.Background(), twoClassBatch(streamRng, s, 64)); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
}
