package nn

import "math"

// Adam implements the Adam optimizer (Kingma & Ba 2015) with bias-corrected
// first and second moment estimates. The streaming models default to SGD as
// in the paper, but Adam is provided for user models that need per-parameter
// step adaptation.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	WeightDecay           float64

	step int
	m    map[*Param][]float64
	v    map[*Param][]float64
}

// NewAdam returns an Adam optimizer; non-positive lr panics, and the
// customary defaults β1=0.9, β2=0.999, ε=1e-8 are applied when zero.
func NewAdam(lr, weightDecay float64) *Adam {
	if lr <= 0 {
		panic("nn: Adam learning rate must be positive")
	}
	if weightDecay < 0 {
		panic("nn: Adam weight decay must be >= 0")
	}
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: weightDecay,
		m: make(map[*Param][]float64), v: make(map[*Param][]float64),
	}
}

// Step applies one Adam update to every parameter and zeroes the gradients.
func (a *Adam) Step(params []*Param) {
	a.step++
	c1 := 1 - math.Pow(a.Beta1, float64(a.step))
	c2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = make([]float64, len(p.W))
			a.m[p] = m
		}
		v, ok := a.v[p]
		if !ok {
			v = make([]float64, len(p.W))
			a.v[p] = v
		}
		for i := range p.W {
			g := p.Grad[i] + a.WeightDecay*p.W[i]
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mHat := m[i] / c1
			vHat := v[i] / c2
			p.W[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
		p.ZeroGrad()
	}
}

// Reset clears all moment estimates and the step counter.
func (a *Adam) Reset() {
	a.step = 0
	a.m = make(map[*Param][]float64)
	a.v = make(map[*Param][]float64)
}
