package nn

import (
	"fmt"
	"math/rand"

	"freewayml/internal/linalg"
)

// Conv1D is a 1-D convolution over a flat input interpreted as
// (InChannels × Length), channel-major: element (c, t) lives at index
// c*Length + t. Stride is 1 and there is no padding, so the output length is
// Length − Kernel + 1 and the output is (OutChannels × OutLen), also flat.
// This matches the paper's appendix CNN, which convolves over the feature
// axis of tabular batches and over extracted image-feature vectors.
//
// The implementation lowers the convolution to im2col + GEMM in the
// feature-major ("transposed") layout: the patch matrix colT has one row per
// (input-channel, kernel-offset) pair and one column per (sample, position)
// pair. That orientation makes every stage a long contiguous loop even when
// InChannels·K is tiny (the common 1-channel / kernel-3 case): im2col and
// the output scatter are pure row-segment copies, and both GEMMs run with
// inner loops of length batch·outLen.
type Conv1D struct {
	InChannels, OutChannels, Kernel, Length int

	w *Param // [out][in][k], i.e. an OutChannels × InChannels·K tensor
	b *Param // [out]

	// Scratch buffers, reused across batches:
	colT   *linalg.Tensor // im2col patches, InChannels·K × batch·outLen
	out2T  *linalg.Tensor // GEMM output, OutChannels × batch·outLen
	out    *linalg.Tensor // channel-major output, batch × OutChannels·outLen
	g2T    *linalg.Tensor // gradOut regathered as OutChannels × batch·outLen
	gcolT  *linalg.Tensor // patch gradient, InChannels·K × batch·outLen
	gradIn *linalg.Tensor // batch × InChannels·Length
}

// NewConv1D returns a Conv1D with He-normal initialized kernels. length is
// the per-channel input length the layer will be applied to.
func NewConv1D(inChannels, outChannels, kernel, length int, rng *rand.Rand) *Conv1D {
	switch {
	case inChannels <= 0 || outChannels <= 0:
		panic("nn: Conv1D channels must be positive")
	case kernel <= 0:
		panic("nn: Conv1D kernel must be positive")
	case length < kernel:
		panic(fmt.Sprintf("nn: Conv1D length %d shorter than kernel %d", length, kernel))
	}
	c := &Conv1D{
		InChannels:  inChannels,
		OutChannels: outChannels,
		Kernel:      kernel,
		Length:      length,
		w:           newParam(outChannels * inChannels * kernel),
		b:           newParam(outChannels),
	}
	heInit(c.w.W, inChannels*kernel, rng)
	return c
}

// outLen returns the per-channel output length.
func (c *Conv1D) outLen() int { return c.Length - c.Kernel + 1 }

// im2col fills c.colT: row ic·K+k holds, for each sample i, the contiguous
// input slice x[i][ic·Length+k : ic·Length+k+outLen] at columns
// [i·outLen, (i+1)·outLen) — each (sample, row) pair is one copy.
func (c *Conv1D) im2col(x *linalg.Tensor) {
	ol := c.outLen()
	c.colT = linalg.EnsureTensor(c.colT, c.InChannels*c.Kernel, x.Rows*ol)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for ic := 0; ic < c.InChannels; ic++ {
			for k := 0; k < c.Kernel; k++ {
				dst := c.colT.Row(ic*c.Kernel + k)[i*ol : (i+1)*ol]
				copy(dst, row[ic*c.Length+k:ic*c.Length+k+ol])
			}
		}
	}
}

// Forward applies the convolution to the batch via im2col + one GEMM:
// out2T = W × colT, then each (sample, channel) segment is copied out with
// the bias added.
func (c *Conv1D) Forward(x *linalg.Tensor) *linalg.Tensor {
	if x.Cols != c.InChannels*c.Length {
		panic(fmt.Sprintf("nn: Conv1D input width %d, want %d", x.Cols, c.InChannels*c.Length))
	}
	ol := c.outLen()
	ick := c.InChannels * c.Kernel
	c.im2col(x)
	c.out2T = linalg.EnsureTensor(c.out2T, c.OutChannels, x.Rows*ol)
	linalg.Gemm(c.out2T, linalg.TensorView(c.w.W, c.OutChannels, ick), c.colT)
	c.out = linalg.EnsureTensor(c.out, x.Rows, c.OutChannels*ol)
	for i := 0; i < x.Rows; i++ {
		orow := c.out.Row(i)
		for oc := 0; oc < c.OutChannels; oc++ {
			src := c.out2T.Row(oc)[i*ol : (i+1)*ol]
			dst := orow[oc*ol : (oc+1)*ol]
			bias := c.b.W[oc]
			for t, v := range src {
				dst[t] = v + bias
			}
		}
	}
	return c.out
}

// Backward accumulates kernel and bias gradients with transposed GEMMs over
// the cached patch matrix and returns the input gradient via col2im.
func (c *Conv1D) Backward(gradOut *linalg.Tensor) *linalg.Tensor {
	ol := c.outLen()
	ick := c.InChannels * c.Kernel
	n := gradOut.Rows

	// Regather gradOut (batch × OC·ol, channel-major) into channel rows
	// matching the patch matrix columns — pure segment copies.
	c.g2T = linalg.EnsureTensor(c.g2T, c.OutChannels, n*ol)
	for i := 0; i < n; i++ {
		grow := gradOut.Row(i)
		for oc := 0; oc < c.OutChannels; oc++ {
			copy(c.g2T.Row(oc)[i*ol:(i+1)*ol], grow[oc*ol:(oc+1)*ol])
		}
	}

	// ∂L/∂W += g2T × colTᵀ: OC·ICK dot products of length batch·outLen.
	// ∂L/∂b += row sums of g2T.
	linalg.GemmTBAdd(linalg.TensorView(c.w.Grad, c.OutChannels, ick), c.g2T, c.colT)
	for oc := 0; oc < c.OutChannels; oc++ {
		var s float64
		for _, gv := range c.g2T.Row(oc) {
			s += gv
		}
		c.b.Grad[oc] += s
	}

	// ∂L/∂patches = Wᵀ × g2T, scattered back to the input layout: each patch
	// row contributes one contiguous length-outLen axpy per sample.
	c.gcolT = linalg.EnsureTensor(c.gcolT, ick, n*ol)
	linalg.GemmTA(c.gcolT, linalg.TensorView(c.w.W, c.OutChannels, ick), c.g2T)
	c.gradIn = linalg.EnsureTensor(c.gradIn, n, c.InChannels*c.Length)
	c.gradIn.Zero()
	for i := 0; i < n; i++ {
		girow := c.gradIn.Row(i)
		for ic := 0; ic < c.InChannels; ic++ {
			for k := 0; k < c.Kernel; k++ {
				src := c.gcolT.Row(ic*c.Kernel + k)[i*ol : (i+1)*ol]
				dst := girow[ic*c.Length+k : ic*c.Length+k+ol]
				for t, gv := range src {
					dst[t] += gv
				}
			}
		}
	}
	return c.gradIn
}

// Params returns the kernel and bias parameters.
func (c *Conv1D) Params() []*Param { return []*Param{c.w, c.b} }

// OutDim validates the flat input width and returns the flat output width.
func (c *Conv1D) OutDim(inDim int) (int, error) {
	if inDim != c.InChannels*c.Length {
		return 0, fmt.Errorf("nn: Conv1D expects input width %d, got %d", c.InChannels*c.Length, inDim)
	}
	return c.OutChannels * c.outLen(), nil
}

func (c *Conv1D) clone() Layer {
	cp := &Conv1D{
		InChannels:  c.InChannels,
		OutChannels: c.OutChannels,
		Kernel:      c.Kernel,
		Length:      c.Length,
		w:           newParam(len(c.w.W)),
		b:           newParam(len(c.b.W)),
	}
	copy(cp.w.W, c.w.W)
	copy(cp.b.W, c.b.W)
	return cp
}

// MaxPool1D downsamples each channel of a flat (Channels × Length) input by
// taking the max over non-overlapping windows of the given size. A trailing
// partial window is pooled too.
type MaxPool1D struct {
	Channels, Length, Window int

	lastArg     []int // flat argmax indices, batch × Channels·outLen
	out, gradIn *linalg.Tensor
}

// NewMaxPool1D returns a max-pooling layer for flat (channels × length)
// inputs.
func NewMaxPool1D(channels, length, window int) *MaxPool1D {
	switch {
	case channels <= 0 || length <= 0:
		panic("nn: MaxPool1D shape must be positive")
	case window <= 0:
		panic("nn: MaxPool1D window must be positive")
	}
	return &MaxPool1D{Channels: channels, Length: length, Window: window}
}

// outLen returns the per-channel pooled length (ceil division).
func (p *MaxPool1D) outLen() int { return (p.Length + p.Window - 1) / p.Window }

// Forward pools each window, caching argmax positions for Backward.
func (p *MaxPool1D) Forward(x *linalg.Tensor) *linalg.Tensor {
	if x.Cols != p.Channels*p.Length {
		panic(fmt.Sprintf("nn: MaxPool1D input width %d, want %d", x.Cols, p.Channels*p.Length))
	}
	ol := p.outLen()
	ow := p.Channels * ol
	p.out = linalg.EnsureTensor(p.out, x.Rows, ow)
	if cap(p.lastArg) < x.Rows*ow {
		p.lastArg = make([]int, x.Rows*ow)
	} else {
		p.lastArg = p.lastArg[:x.Rows*ow]
	}
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		orow := p.out.Row(i)
		arg := p.lastArg[i*ow : (i+1)*ow]
		for c := 0; c < p.Channels; c++ {
			base := c * p.Length
			for t := 0; t < ol; t++ {
				start := t * p.Window
				end := start + p.Window
				if end > p.Length {
					end = p.Length
				}
				best := row[base+start]
				bestIdx := base + start
				for j := start + 1; j < end; j++ {
					if row[base+j] > best {
						best = row[base+j]
						bestIdx = base + j
					}
				}
				orow[c*ol+t] = best
				arg[c*ol+t] = bestIdx
			}
		}
	}
	return p.out
}

// Backward routes each output gradient to the argmax input position.
func (p *MaxPool1D) Backward(gradOut *linalg.Tensor) *linalg.Tensor {
	ow := gradOut.Cols
	p.gradIn = linalg.EnsureTensor(p.gradIn, gradOut.Rows, p.Channels*p.Length)
	p.gradIn.Zero()
	for i := 0; i < gradOut.Rows; i++ {
		grow := gradOut.Row(i)
		girow := p.gradIn.Row(i)
		arg := p.lastArg[i*ow : (i+1)*ow]
		for j, gv := range grow {
			girow[arg[j]] += gv
		}
	}
	return p.gradIn
}

// Params returns nil: pooling has no learnable parameters.
func (p *MaxPool1D) Params() []*Param { return nil }

// OutDim validates the flat input width and returns the pooled width.
func (p *MaxPool1D) OutDim(inDim int) (int, error) {
	if inDim != p.Channels*p.Length {
		return 0, fmt.Errorf("nn: MaxPool1D expects input width %d, got %d", p.Channels*p.Length, inDim)
	}
	return p.Channels * p.outLen(), nil
}

func (p *MaxPool1D) clone() Layer {
	return &MaxPool1D{Channels: p.Channels, Length: p.Length, Window: p.Window}
}
