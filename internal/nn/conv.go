package nn

import (
	"fmt"
	"math/rand"
)

// Conv1D is a 1-D convolution over a flat input interpreted as
// (InChannels × Length), channel-major: element (c, t) lives at index
// c*Length + t. Stride is 1 and there is no padding, so the output length is
// Length − Kernel + 1 and the output is (OutChannels × OutLen), also flat.
// This matches the paper's appendix CNN, which convolves over the feature
// axis of tabular batches and over extracted image-feature vectors.
type Conv1D struct {
	InChannels, OutChannels, Kernel, Length int

	w     *Param // [out][in][k]
	b     *Param // [out]
	lastX [][]float64
}

// NewConv1D returns a Conv1D with He-normal initialized kernels. length is
// the per-channel input length the layer will be applied to.
func NewConv1D(inChannels, outChannels, kernel, length int, rng *rand.Rand) *Conv1D {
	switch {
	case inChannels <= 0 || outChannels <= 0:
		panic("nn: Conv1D channels must be positive")
	case kernel <= 0:
		panic("nn: Conv1D kernel must be positive")
	case length < kernel:
		panic(fmt.Sprintf("nn: Conv1D length %d shorter than kernel %d", length, kernel))
	}
	c := &Conv1D{
		InChannels:  inChannels,
		OutChannels: outChannels,
		Kernel:      kernel,
		Length:      length,
		w:           newParam(outChannels * inChannels * kernel),
		b:           newParam(outChannels),
	}
	heInit(c.w.W, inChannels*kernel, rng)
	return c
}

// outLen returns the per-channel output length.
func (c *Conv1D) outLen() int { return c.Length - c.Kernel + 1 }

// Forward applies the convolution to each sample.
func (c *Conv1D) Forward(x [][]float64) [][]float64 {
	c.lastX = x
	ol := c.outLen()
	out := make([][]float64, len(x))
	for i, row := range x {
		if len(row) != c.InChannels*c.Length {
			panic(fmt.Sprintf("nn: Conv1D input width %d, want %d", len(row), c.InChannels*c.Length))
		}
		o := make([]float64, c.OutChannels*ol)
		for oc := 0; oc < c.OutChannels; oc++ {
			bias := c.b.W[oc]
			for t := 0; t < ol; t++ {
				s := bias
				for ic := 0; ic < c.InChannels; ic++ {
					wBase := (oc*c.InChannels + ic) * c.Kernel
					xBase := ic*c.Length + t
					for k := 0; k < c.Kernel; k++ {
						s += c.w.W[wBase+k] * row[xBase+k]
					}
				}
				o[oc*ol+t] = s
			}
		}
		out[i] = o
	}
	return out
}

// Backward accumulates kernel and bias gradients and returns the input
// gradient.
func (c *Conv1D) Backward(gradOut [][]float64) [][]float64 {
	ol := c.outLen()
	gradIn := make([][]float64, len(gradOut))
	for i, g := range gradOut {
		x := c.lastX[i]
		gi := make([]float64, c.InChannels*c.Length)
		for oc := 0; oc < c.OutChannels; oc++ {
			for t := 0; t < ol; t++ {
				gv := g[oc*ol+t]
				if gv == 0 {
					continue
				}
				c.b.Grad[oc] += gv
				for ic := 0; ic < c.InChannels; ic++ {
					wBase := (oc*c.InChannels + ic) * c.Kernel
					xBase := ic*c.Length + t
					for k := 0; k < c.Kernel; k++ {
						c.w.Grad[wBase+k] += gv * x[xBase+k]
						gi[xBase+k] += gv * c.w.W[wBase+k]
					}
				}
			}
		}
		gradIn[i] = gi
	}
	return gradIn
}

// Params returns the kernel and bias parameters.
func (c *Conv1D) Params() []*Param { return []*Param{c.w, c.b} }

// OutDim validates the flat input width and returns the flat output width.
func (c *Conv1D) OutDim(inDim int) (int, error) {
	if inDim != c.InChannels*c.Length {
		return 0, fmt.Errorf("nn: Conv1D expects input width %d, got %d", c.InChannels*c.Length, inDim)
	}
	return c.OutChannels * c.outLen(), nil
}

func (c *Conv1D) clone() Layer {
	cp := &Conv1D{
		InChannels:  c.InChannels,
		OutChannels: c.OutChannels,
		Kernel:      c.Kernel,
		Length:      c.Length,
		w:           newParam(len(c.w.W)),
		b:           newParam(len(c.b.W)),
	}
	copy(cp.w.W, c.w.W)
	copy(cp.b.W, c.b.W)
	return cp
}

// MaxPool1D downsamples each channel of a flat (Channels × Length) input by
// taking the max over non-overlapping windows of the given size. A trailing
// partial window is pooled too.
type MaxPool1D struct {
	Channels, Length, Window int
	lastArg                  [][]int // argmax indices per output element
}

// NewMaxPool1D returns a max-pooling layer for flat (channels × length)
// inputs.
func NewMaxPool1D(channels, length, window int) *MaxPool1D {
	switch {
	case channels <= 0 || length <= 0:
		panic("nn: MaxPool1D shape must be positive")
	case window <= 0:
		panic("nn: MaxPool1D window must be positive")
	}
	return &MaxPool1D{Channels: channels, Length: length, Window: window}
}

// outLen returns the per-channel pooled length (ceil division).
func (p *MaxPool1D) outLen() int { return (p.Length + p.Window - 1) / p.Window }

// Forward pools each window, caching argmax positions for Backward.
func (p *MaxPool1D) Forward(x [][]float64) [][]float64 {
	ol := p.outLen()
	out := make([][]float64, len(x))
	p.lastArg = make([][]int, len(x))
	for i, row := range x {
		if len(row) != p.Channels*p.Length {
			panic(fmt.Sprintf("nn: MaxPool1D input width %d, want %d", len(row), p.Channels*p.Length))
		}
		o := make([]float64, p.Channels*ol)
		arg := make([]int, p.Channels*ol)
		for c := 0; c < p.Channels; c++ {
			base := c * p.Length
			for t := 0; t < ol; t++ {
				start := t * p.Window
				end := start + p.Window
				if end > p.Length {
					end = p.Length
				}
				best := row[base+start]
				bestIdx := base + start
				for j := start + 1; j < end; j++ {
					if row[base+j] > best {
						best = row[base+j]
						bestIdx = base + j
					}
				}
				o[c*ol+t] = best
				arg[c*ol+t] = bestIdx
			}
		}
		out[i] = o
		p.lastArg[i] = arg
	}
	return out
}

// Backward routes each output gradient to the argmax input position.
func (p *MaxPool1D) Backward(gradOut [][]float64) [][]float64 {
	gradIn := make([][]float64, len(gradOut))
	for i, g := range gradOut {
		gi := make([]float64, p.Channels*p.Length)
		arg := p.lastArg[i]
		for j, gv := range g {
			gi[arg[j]] += gv
		}
		gradIn[i] = gi
	}
	return gradIn
}

// Params returns nil: pooling has no learnable parameters.
func (p *MaxPool1D) Params() []*Param { return nil }

// OutDim validates the flat input width and returns the pooled width.
func (p *MaxPool1D) OutDim(inDim int) (int, error) {
	if inDim != p.Channels*p.Length {
		return 0, fmt.Errorf("nn: MaxPool1D expects input width %d, got %d", p.Channels*p.Length, inDim)
	}
	return p.Channels * p.outLen(), nil
}

func (p *MaxPool1D) clone() Layer {
	return &MaxPool1D{Channels: p.Channels, Length: p.Length, Window: p.Window}
}
