package nn

import (
	"math/rand"
	"testing"
)

// TestRandomArchitectureGradients builds randomized small networks — random
// depth, widths, optional conv front-end — and verifies the analytic
// gradients against central differences on every one. The architectures are
// kept smooth (Sigmoid activations, no pooling): ReLU and MaxPool introduce
// kinks where finite differences legitimately disagree with subgradients,
// and those layers have dedicated fixed-seed checks elsewhere in the suite.
func TestRandomArchitectureGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		inDim := 3 + rng.Intn(6)
		classes := 2 + rng.Intn(3)

		var layers []Layer
		dim := inDim
		if inDim >= 4 && rng.Intn(2) == 0 {
			// Conv front-end on 1 channel.
			kernel := 2 + rng.Intn(2)
			outCh := 1 + rng.Intn(3)
			conv := NewConv1D(1, outCh, kernel, dim, rng)
			layers = append(layers, conv)
			dim = outCh * (dim - kernel + 1)
			if rng.Intn(2) == 0 {
				layers = append(layers, NewSigmoid())
			}
		}
		depth := 1 + rng.Intn(2)
		for d := 0; d < depth; d++ {
			width := 2 + rng.Intn(6)
			layers = append(layers, NewDense(dim, width, rng))
			dim = width
			if rng.Intn(2) == 0 {
				layers = append(layers, NewSigmoid())
			}
		}
		layers = append(layers, NewDense(dim, classes, rng))

		net, err := NewNetwork(inDim, classes, layers...)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		x, y := randomBatch(rng, 3, inDim, classes)
		checkGradients(t, net, x, y)
	}
}
