package nn

import (
	"fmt"
	"math"

	"freewayml/internal/linalg"
)

// InferEngine is an inference-only compilation of a Network onto a speed
// tier. It is built once per published snapshot member (weights are copied
// and, for TierInt8, quantized at compile time — matched and served models
// are read far more often than trained, so the one-time cost amortizes
// across snapshot generations) and then runs forward passes with zero
// steady-state allocations beyond the returned probabilities.
//
// Tier semantics:
//   - TierF32: every layer runs on the f32 kernel family. Conv1D is computed
//     fused — direct kernel×input-segment sweeps — so the f32 path never
//     materializes the im2col patch matrix the f64 training path uses.
//   - TierInt8: Dense layers run per-row absmax int8 weights with int32
//     accumulation and f32 dequant; convolution, pooling, and activation
//     layers stay f32 within this tier (conv kernels are small and
//     activation-bound, so quantizing them buys little and costs accuracy).
//
// Like a model's forward scratch, an engine is single-reader: callers must
// serialize forward passes (the snapshot plane reuses its ComputeMu).
type InferEngine struct {
	tier    linalg.KernelTier
	inDim   int
	classes int
	ops     []inferOp

	xBuf      *linalg.Tensor32 // staging copy of the caller's batch
	q8        linalg.Q8Scratch
	logitsBuf []float64 // per-row f64 logit scratch for the softmax head

	quantMats          int
	scaleMin, scaleMax float32
}

// inferOp is one compiled layer. Forward returns op-owned scratch valid
// until the op's next Forward call (activations may run in place on their
// input, which is always engine- or op-owned).
type inferOp interface {
	forward(e *InferEngine, x *linalg.Tensor32) (*linalg.Tensor32, error)
}

// CompileInfer compiles n onto the given speed tier. It returns (nil, nil)
// for TierF64 — the oracle tier runs the model itself — and an error when
// the network contains a layer the engine cannot lower (callers fall back
// to the f64 path). The network's weights are copied; the engine stays
// valid after the source network trains on, but represents the weights at
// compile time.
func CompileInfer(n *Network, tier linalg.KernelTier) (*InferEngine, error) {
	if n == nil {
		return nil, fmt.Errorf("nn: compile: nil network")
	}
	if tier == linalg.TierF64 {
		return nil, nil
	}
	e := &InferEngine{tier: tier, inDim: n.inDim, classes: n.numClasses}
	for i, l := range n.layers {
		switch layer := l.(type) {
		case *Dense:
			if tier == linalg.TierInt8 {
				op, err := compileDenseQ8(layer)
				if err != nil {
					return nil, fmt.Errorf("nn: compile layer %d: %w", i, err)
				}
				e.quantMats++
				min, max := op.qw.ScaleStats()
				if e.scaleMin == 0 || (min > 0 && min < e.scaleMin) {
					e.scaleMin = min
				}
				if max > e.scaleMax {
					e.scaleMax = max
				}
				e.ops = append(e.ops, op)
			} else {
				e.ops = append(e.ops, compileDense32(layer))
			}
		case *Conv1D:
			e.ops = append(e.ops, compileConv32(layer))
		case *MaxPool1D:
			e.ops = append(e.ops, &poolOp32{
				channels: layer.Channels, length: layer.Length, window: layer.Window,
			})
		case *ReLU:
			e.ops = append(e.ops, reluOp32{})
		case *Sigmoid:
			e.ops = append(e.ops, sigmoidOp32{})
		case *Dropout:
			// Identity at inference (inverted dropout needs no correction).
		default:
			return nil, fmt.Errorf("nn: compile layer %d: unsupported layer type %T", i, l)
		}
	}
	return e, nil
}

// Tier returns the tier the engine was compiled for.
func (e *InferEngine) Tier() linalg.KernelTier { return e.tier }

// QuantMats returns the number of int8-quantized weight matrices (0 on the
// f32 tier).
func (e *InferEngine) QuantMats() int { return e.quantMats }

// ScaleStats returns the smallest and largest nonzero int8 row scales across
// all quantized matrices (0, 0 on the f32 tier).
func (e *InferEngine) ScaleStats() (min, max float32) { return e.scaleMin, e.scaleMax }

// forwardT runs the staged batch through every compiled op.
func (e *InferEngine) forwardT(x *linalg.Tensor32) (*linalg.Tensor32, error) {
	h := x
	var err error
	for _, op := range e.ops {
		if h, err = op.forward(e, h); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// probaFromLogits applies the softmax head. Logits are widened to f64 per
// row (classes are few) so the returned distribution has the same shape and
// numerical behavior as Network.PredictProba.
func (e *InferEngine) probaFromLogits(logits *linalg.Tensor32) [][]float64 {
	if cap(e.logitsBuf) < logits.Cols {
		e.logitsBuf = make([]float64, logits.Cols)
	}
	lrow := e.logitsBuf[:logits.Cols]
	flat := make([]float64, logits.Rows*logits.Cols)
	out := make([][]float64, logits.Rows)
	for i := range out {
		src := logits.Row(i)
		for j, v := range src {
			lrow[j] = float64(v)
		}
		row := flat[i*logits.Cols : (i+1)*logits.Cols : (i+1)*logits.Cols]
		softmaxInto(row, lrow)
		out[i] = row
	}
	return out
}

// PredictProba64 stages f64 rows (narrowing once at the tier boundary) and
// returns the per-row class distribution as [][]float64, matching the
// Model.PredictProba shape so ensemble fusion is representation-agnostic.
func (e *InferEngine) PredictProba64(x [][]float64) ([][]float64, error) {
	if e.xBuf == nil {
		e.xBuf = linalg.NewTensor32(0, e.inDim)
	}
	e.xBuf.FromRows64(x, e.inDim)
	logits, err := e.forwardT(e.xBuf)
	if err != nil {
		return nil, err
	}
	return e.probaFromLogits(logits), nil
}

// PredictProba32 runs natively narrow rows (e.g. decoded f32 wire frames)
// with no widening anywhere on the path.
func (e *InferEngine) PredictProba32(x [][]float32) ([][]float64, error) {
	if e.xBuf == nil {
		e.xBuf = linalg.NewTensor32(0, e.inDim)
	}
	e.xBuf.FromRows32(x, e.inDim)
	logits, err := e.forwardT(e.xBuf)
	if err != nil {
		return nil, err
	}
	return e.probaFromLogits(logits), nil
}

// denseOp32 is a Dense layer on the f32 tier. Like the training layer it
// dispatches by shape: wide-in heads use the dot-form kernel on the
// pre-transposed weights, fan-out layers the axpy form with a bias seed.
// The transpose is materialized once at compile time, not per batch.
type denseOp32 struct {
	in, out int
	useDot  bool
	w       *linalg.Tensor32 // In×Out (axpy form) — nil when useDot
	wT      *linalg.Tensor32 // Out×In (dot form) — nil when !useDot
	b       []float32
	outBuf  *linalg.Tensor32
}

func compileDense32(d *Dense) *denseOp32 {
	op := &denseOp32{in: d.In, out: d.Out, useDot: d.useDot(), b: make([]float32, d.Out)}
	for j, v := range d.b.W {
		op.b[j] = float32(v)
	}
	w32 := linalg.NewTensor32(d.In, d.Out)
	for i, v := range d.w.W {
		w32.Data[i] = float32(v)
	}
	if op.useDot {
		op.wT = linalg.NewTensor32(d.Out, d.In)
		linalg.TransposeInto32(op.wT, w32)
	} else {
		op.w = w32
	}
	return op
}

func (op *denseOp32) forward(_ *InferEngine, x *linalg.Tensor32) (*linalg.Tensor32, error) {
	if x.Cols != op.in {
		return nil, fmt.Errorf("nn: dense input width %d, want %d", x.Cols, op.in)
	}
	op.outBuf = linalg.EnsureTensor32(op.outBuf, x.Rows, op.out)
	if op.useDot {
		linalg.GemmTB32(op.outBuf, x, op.wT)
		for i := 0; i < x.Rows; i++ {
			orow := op.outBuf.Row(i)
			for j, bv := range op.b {
				orow[j] += bv
			}
		}
	} else {
		for i := 0; i < x.Rows; i++ {
			copy(op.outBuf.Row(i), op.b)
		}
		linalg.GemmAdd32(op.outBuf, x, op.w)
	}
	return op.outBuf, nil
}

// denseOpQ8 is a Dense layer on the int8 tier: weights quantized per OUTPUT
// row (the transposed layout, so each output is one int8×int8 dot under a
// single sx·sw dequant), activations quantized per row at run time into the
// engine's shared scratch.
type denseOpQ8 struct {
	in, out int
	qw      *linalg.QuantizedMat // Out×In
	b       []float32
	outBuf  *linalg.Tensor32
}

func compileDenseQ8(d *Dense) (*denseOpQ8, error) {
	w32 := linalg.NewTensor32(d.In, d.Out)
	for i, v := range d.w.W {
		w32.Data[i] = float32(v)
	}
	wT := linalg.NewTensor32(d.Out, d.In)
	linalg.TransposeInto32(wT, w32)
	qw, err := linalg.QuantizeMat32(wT)
	if err != nil {
		return nil, err
	}
	op := &denseOpQ8{in: d.In, out: d.Out, qw: qw, b: make([]float32, d.Out)}
	for j, v := range d.b.W {
		op.b[j] = float32(v)
	}
	return op, nil
}

func (op *denseOpQ8) forward(e *InferEngine, x *linalg.Tensor32) (*linalg.Tensor32, error) {
	if x.Cols != op.in {
		return nil, fmt.Errorf("nn: dense input width %d, want %d", x.Cols, op.in)
	}
	op.outBuf = linalg.EnsureTensor32(op.outBuf, x.Rows, op.out)
	if err := e.q8.GemmQ8(op.outBuf, x, op.qw); err != nil {
		return nil, err
	}
	for i := 0; i < x.Rows; i++ {
		orow := op.outBuf.Row(i)
		for j, bv := range op.b {
			orow[j] += bv
		}
	}
	return op.outBuf, nil
}

// convOp32 is Conv1D computed fused on the f32 tier: instead of lowering to
// im2col + GEMM (which materializes an InChannels·K × batch·outLen patch
// matrix), each (output-channel, input-channel, kernel-offset) triple sweeps
// one contiguous input segment into one contiguous output segment — the same
// multiply-add loop shape as the GEMM inner loop, with zero scratch beyond
// the output itself.
type convOp32 struct {
	ic, oc, k, length int
	w                 *linalg.Tensor32 // OutChannels × InChannels·K
	b                 []float32
	outBuf            *linalg.Tensor32
}

func compileConv32(c *Conv1D) *convOp32 {
	op := &convOp32{
		ic: c.InChannels, oc: c.OutChannels, k: c.Kernel, length: c.Length,
		w: linalg.NewTensor32(c.OutChannels, c.InChannels*c.Kernel),
		b: make([]float32, c.OutChannels),
	}
	for i, v := range c.w.W {
		op.w.Data[i] = float32(v)
	}
	for j, v := range c.b.W {
		op.b[j] = float32(v)
	}
	return op
}

func (op *convOp32) forward(_ *InferEngine, x *linalg.Tensor32) (*linalg.Tensor32, error) {
	if x.Cols != op.ic*op.length {
		return nil, fmt.Errorf("nn: conv input width %d, want %d", x.Cols, op.ic*op.length)
	}
	ol := op.length - op.k + 1
	op.outBuf = linalg.EnsureTensor32(op.outBuf, x.Rows, op.oc*ol)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		orow := op.outBuf.Row(i)
		for oc := 0; oc < op.oc; oc++ {
			wrow := op.w.Row(oc)
			dst := orow[oc*ol : (oc+1)*ol]
			bias := op.b[oc]
			for t := range dst {
				dst[t] = bias
			}
			for ic := 0; ic < op.ic; ic++ {
				base := ic * op.length
				for kk := 0; kk < op.k; kk++ {
					a := wrow[ic*op.k+kk]
					src := row[base+kk : base+kk+ol]
					for t, sv := range src {
						dst[t] += a * sv
					}
				}
			}
		}
	}
	return op.outBuf, nil
}

// poolOp32 is MaxPool1D on the f32 tier, with no argmax cache (inference
// never backpropagates).
type poolOp32 struct {
	channels, length, window int
	outBuf                   *linalg.Tensor32
}

func (op *poolOp32) forward(_ *InferEngine, x *linalg.Tensor32) (*linalg.Tensor32, error) {
	if x.Cols != op.channels*op.length {
		return nil, fmt.Errorf("nn: pool input width %d, want %d", x.Cols, op.channels*op.length)
	}
	ol := (op.length + op.window - 1) / op.window
	op.outBuf = linalg.EnsureTensor32(op.outBuf, x.Rows, op.channels*ol)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		orow := op.outBuf.Row(i)
		for c := 0; c < op.channels; c++ {
			base := c * op.length
			for t := 0; t < ol; t++ {
				start := t * op.window
				end := start + op.window
				if end > op.length {
					end = op.length
				}
				best := row[base+start]
				for j := start + 1; j < end; j++ {
					if row[base+j] > best {
						best = row[base+j]
					}
				}
				orow[c*ol+t] = best
			}
		}
	}
	return op.outBuf, nil
}

// reluOp32 applies max(0, x) in place — the input is always engine- or
// op-owned scratch, never a caller buffer.
type reluOp32 struct{}

func (reluOp32) forward(_ *InferEngine, x *linalg.Tensor32) (*linalg.Tensor32, error) {
	for i, v := range x.Data {
		if v < 0 {
			x.Data[i] = 0
		}
	}
	return x, nil
}

// sigmoidOp32 applies the logistic function in place.
type sigmoidOp32 struct{}

func (sigmoidOp32) forward(_ *InferEngine, x *linalg.Tensor32) (*linalg.Tensor32, error) {
	for i, v := range x.Data {
		x.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	return x, nil
}
