package nn

// SGD is mini-batch stochastic gradient descent with optional momentum and
// L2 weight decay — the update rule all of the paper's streaming models
// (and all re-implemented baselines) share.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity map[*Param][]float64
}

// NewSGD returns an SGD optimizer. lr must be positive; momentum and
// weightDecay must be non-negative (momentum < 1).
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	switch {
	case lr <= 0:
		panic("nn: SGD learning rate must be positive")
	case momentum < 0 || momentum >= 1:
		panic("nn: SGD momentum must be in [0, 1)")
	case weightDecay < 0:
		panic("nn: SGD weight decay must be >= 0")
	}
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay, velocity: make(map[*Param][]float64)}
}

// Step applies one update to every parameter and zeroes the gradients.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		if s.Momentum > 0 {
			v, ok := s.velocity[p]
			if !ok {
				v = make([]float64, len(p.W))
				s.velocity[p] = v
			}
			for i := range p.W {
				g := p.Grad[i] + s.WeightDecay*p.W[i]
				v[i] = s.Momentum*v[i] - s.LR*g
				p.W[i] += v[i]
			}
		} else {
			for i := range p.W {
				g := p.Grad[i] + s.WeightDecay*p.W[i]
				p.W[i] -= s.LR * g
			}
		}
		p.ZeroGrad()
	}
}

// Reset clears all momentum state (used when a model is restored from a
// historical snapshot: stale velocity must not leak into the new regime).
func (s *SGD) Reset() { s.velocity = make(map[*Param][]float64) }
