package nn

import (
	"fmt"
	"math"
	"math/rand"

	"freewayml/internal/linalg"
)

// Layer is one differentiable stage of a Network, operating on flat
// row-major tensors (one row per sample). Forward caches whatever it needs
// for the matching Backward call; Backward consumes the gradient with
// respect to its output and returns the gradient with respect to its input,
// accumulating parameter gradients along the way.
//
// Buffer ownership: the tensor a layer returns from Forward (or Backward) is
// layer-owned scratch, valid only until that layer's next Forward (or
// Backward) call. Backward may read the input tensor passed to the preceding
// Forward — the network guarantees it is not overwritten in between. Callers
// who need a result to outlive the next pass must copy it.
type Layer interface {
	Forward(x *linalg.Tensor) *linalg.Tensor
	Backward(gradOut *linalg.Tensor) *linalg.Tensor
	Params() []*Param
	// OutDim returns the per-sample output width given the input width, or
	// an error if the layer cannot accept that width.
	OutDim(inDim int) (int, error)
	// clone returns a deep copy with independent parameter storage (scratch
	// buffers are not copied; they reallocate lazily).
	clone() Layer
}

// Dense is a fully connected layer: y = xW + b, with W stored row-major as
// [in][out] — exactly the In×Out tensor the GEMM kernels consume.
//
// Both passes pick between the axpy-form and dot-form GEMM kernels by shape:
// the inner loop of the axpy form runs over Out and the dot form over In, so
// a wide-in / narrow-out head (e.g. a 1984→2 classifier) uses the dot form
// while a fan-out layer uses the axpy form. Both forms sum over the shared
// dimension in the same ascending order, so the choice never changes results
// beyond the bias-addition rounding.
type Dense struct {
	In, Out int
	w, b    *Param

	lastX       *linalg.Tensor // alias of the forward input, read by Backward
	out, gradIn *linalg.Tensor // layer-owned scratch, reused across batches
	wT          *linalg.Tensor // Wᵀ, refreshed by Forward when useDot
	xT, gT      *linalg.Tensor // transposed X and gradOut for the ∂W dot kernel
}

// useDot reports whether the dot-form kernels (inner loops over In) beat the
// axpy-form kernels (inner loops over Out) for this layer's shape.
func (d *Dense) useDot() bool { return d.In > d.Out }

// denseGradWDotFactor: when In ≥ this multiple of Out, ∂W is computed from
// transposed operands as In·Out long dot products instead of per-sample
// length-Out axpys, which degenerate for narrow heads.
const denseGradWDotFactor = 4

// NewDense returns a Dense layer with He-normal initialized weights.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: Dense dims must be positive, got %d→%d", in, out))
	}
	d := &Dense{In: in, Out: out, w: newParam(in * out), b: newParam(out)}
	heInit(d.w.W, in, rng)
	return d
}

// Forward computes xW + b for the whole batch with one GEMM. In the axpy
// form the output is seeded with the bias rows and the product accumulates
// on top; in the dot form the bias is added after the product.
func (d *Dense) Forward(x *linalg.Tensor) *linalg.Tensor {
	if x.Cols != d.In {
		panic(fmt.Sprintf("nn: Dense input width %d, want %d", x.Cols, d.In))
	}
	d.lastX = x
	d.out = linalg.EnsureTensor(d.out, x.Rows, d.Out)
	if d.useDot() {
		d.wT = linalg.EnsureTensor(d.wT, d.Out, d.In)
		linalg.TransposeInto(d.wT, linalg.TensorView(d.w.W, d.In, d.Out))
		linalg.GemmTB(d.out, x, d.wT)
		for i := 0; i < x.Rows; i++ {
			orow := d.out.Row(i)
			for j, bv := range d.b.W {
				orow[j] += bv
			}
		}
	} else {
		for i := 0; i < x.Rows; i++ {
			copy(d.out.Row(i), d.b.W)
		}
		linalg.GemmAdd(d.out, x, linalg.TensorView(d.w.W, d.In, d.Out))
	}
	return d.out
}

// Backward accumulates ∂L/∂W = XᵀG and ∂L/∂b, and returns ∂L/∂x = GWᵀ.
// It relies on the Wᵀ scratch left by the matching Forward call.
func (d *Dense) Backward(gradOut *linalg.Tensor) *linalg.Tensor {
	n := gradOut.Rows
	gw := linalg.TensorView(d.w.Grad, d.In, d.Out)
	if d.In >= denseGradWDotFactor*d.Out && n > 1 {
		// Narrow head: In·Out dot products of length n beat n·In axpys of
		// length Out. Both sum over samples in ascending order.
		d.xT = linalg.EnsureTensor(d.xT, d.In, n)
		linalg.TransposeInto(d.xT, d.lastX)
		d.gT = linalg.EnsureTensor(d.gT, d.Out, n)
		linalg.TransposeInto(d.gT, gradOut)
		linalg.GemmTBAdd(gw, d.xT, d.gT)
	} else {
		linalg.GemmTAAdd(gw, d.lastX, gradOut)
	}
	for i := 0; i < n; i++ {
		grow := gradOut.Row(i)
		for j, gv := range grow {
			d.b.Grad[j] += gv
		}
	}
	d.gradIn = linalg.EnsureTensor(d.gradIn, n, d.In)
	if d.useDot() {
		linalg.Gemm(d.gradIn, gradOut, d.wT)
	} else {
		linalg.GemmTB(d.gradIn, gradOut, linalg.TensorView(d.w.W, d.In, d.Out))
	}
	return d.gradIn
}

// Params returns the weight and bias parameters.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// OutDim validates the input width and returns Out.
func (d *Dense) OutDim(inDim int) (int, error) {
	if inDim != d.In {
		return 0, fmt.Errorf("nn: Dense expects input width %d, got %d", d.In, inDim)
	}
	return d.Out, nil
}

func (d *Dense) clone() Layer {
	c := &Dense{In: d.In, Out: d.Out, w: newParam(d.In * d.Out), b: newParam(d.Out)}
	copy(c.w.W, d.w.W)
	copy(c.b.W, d.b.W)
	return c
}

// ReLU applies max(0, x) element-wise.
type ReLU struct {
	lastX       *linalg.Tensor
	out, gradIn *linalg.Tensor
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward applies the rectifier over the flat buffer.
func (r *ReLU) Forward(x *linalg.Tensor) *linalg.Tensor {
	r.lastX = x
	r.out = linalg.EnsureTensor(r.out, x.Rows, x.Cols)
	// The builtin max compiles to a branchless select; the naive if/else is
	// ~5× slower here because activation signs are data-dependent and the
	// branch predictor loses every other guess.
	for i, v := range x.Data {
		r.out.Data[i] = max(v, 0)
	}
	return r.out
}

// Backward gates the incoming gradient by the sign of the forward input.
// The gate is computed from the float's bit pattern ("nonzero and sign bit
// clear") rather than a compare-and-branch: activation signs are random, so
// the branchy form pays a misprediction per element and runs ~4× slower.
// For finite inputs the mask is identical to x > 0 (NaN activations, already
// fatal to training, pass the gradient instead of zeroing it).
func (r *ReLU) Backward(gradOut *linalg.Tensor) *linalg.Tensor {
	r.gradIn = linalg.EnsureTensor(r.gradIn, gradOut.Rows, gradOut.Cols)
	xs := r.lastX.Data
	for i, g := range gradOut.Data {
		bits := math.Float64bits(xs[i])
		pass := ((bits | -bits) >> 63) & (^bits >> 63)
		r.gradIn.Data[i] = g * float64(pass)
	}
	return r.gradIn
}

// Params returns nil: ReLU has no learnable parameters.
func (r *ReLU) Params() []*Param { return nil }

// OutDim returns inDim unchanged.
func (r *ReLU) OutDim(inDim int) (int, error) { return inDim, nil }

func (r *ReLU) clone() Layer { return &ReLU{} }

// Sigmoid applies 1/(1+e^(−x)) element-wise.
type Sigmoid struct {
	lastY  *linalg.Tensor
	gradIn *linalg.Tensor
}

// NewSigmoid returns a sigmoid activation layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward applies the logistic function.
func (s *Sigmoid) Forward(x *linalg.Tensor) *linalg.Tensor {
	s.lastY = linalg.EnsureTensor(s.lastY, x.Rows, x.Cols)
	for i, v := range x.Data {
		s.lastY.Data[i] = 1 / (1 + math.Exp(-v))
	}
	return s.lastY
}

// Backward multiplies by y(1−y).
func (s *Sigmoid) Backward(gradOut *linalg.Tensor) *linalg.Tensor {
	s.gradIn = linalg.EnsureTensor(s.gradIn, gradOut.Rows, gradOut.Cols)
	for i, g := range gradOut.Data {
		y := s.lastY.Data[i]
		s.gradIn.Data[i] = g * y * (1 - y)
	}
	return s.gradIn
}

// Params returns nil: Sigmoid has no learnable parameters.
func (s *Sigmoid) Params() []*Param { return nil }

// OutDim returns inDim unchanged.
func (s *Sigmoid) OutDim(inDim int) (int, error) { return inDim, nil }

func (s *Sigmoid) clone() Layer { return &Sigmoid{} }
