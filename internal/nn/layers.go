package nn

import (
	"fmt"
	"math"
	"math/rand"
)

func sqrt(x float64) float64 { return math.Sqrt(x) }

// Layer is one differentiable stage of a Network. Forward caches whatever it
// needs for the matching Backward call; Backward consumes the gradient with
// respect to its output and returns the gradient with respect to its input,
// accumulating parameter gradients along the way.
type Layer interface {
	Forward(x [][]float64) [][]float64
	Backward(gradOut [][]float64) [][]float64
	Params() []*Param
	// OutDim returns the per-sample output width given the input width, or
	// an error if the layer cannot accept that width.
	OutDim(inDim int) (int, error)
	// clone returns a deep copy with independent parameter storage.
	clone() Layer
}

// Dense is a fully connected layer: y = xW + b, with W stored row-major as
// [in][out].
type Dense struct {
	In, Out int
	w, b    *Param
	lastX   [][]float64
}

// NewDense returns a Dense layer with He-normal initialized weights.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: Dense dims must be positive, got %d→%d", in, out))
	}
	d := &Dense{In: in, Out: out, w: newParam(in * out), b: newParam(out)}
	heInit(d.w.W, in, rng)
	return d
}

// Forward computes xW + b for every row of x.
func (d *Dense) Forward(x [][]float64) [][]float64 {
	d.lastX = x
	out := make([][]float64, len(x))
	for i, row := range x {
		if len(row) != d.In {
			panic(fmt.Sprintf("nn: Dense input width %d, want %d", len(row), d.In))
		}
		o := make([]float64, d.Out)
		copy(o, d.b.W)
		for k, xv := range row {
			if xv == 0 {
				continue
			}
			wrow := d.w.W[k*d.Out : (k+1)*d.Out]
			for j := range o {
				o[j] += xv * wrow[j]
			}
		}
		out[i] = o
	}
	return out
}

// Backward accumulates ∂L/∂W, ∂L/∂b and returns ∂L/∂x.
func (d *Dense) Backward(gradOut [][]float64) [][]float64 {
	gradIn := make([][]float64, len(gradOut))
	for i, g := range gradOut {
		x := d.lastX[i]
		gi := make([]float64, d.In)
		for k := 0; k < d.In; k++ {
			wrow := d.w.W[k*d.Out : (k+1)*d.Out]
			grow := d.w.Grad[k*d.Out : (k+1)*d.Out]
			xv := x[k]
			var s float64
			for j, gj := range g {
				s += gj * wrow[j]
				grow[j] += gj * xv
			}
			gi[k] = s
		}
		for j, gj := range g {
			d.b.Grad[j] += gj
		}
		gradIn[i] = gi
	}
	return gradIn
}

// Params returns the weight and bias parameters.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// OutDim validates the input width and returns Out.
func (d *Dense) OutDim(inDim int) (int, error) {
	if inDim != d.In {
		return 0, fmt.Errorf("nn: Dense expects input width %d, got %d", d.In, inDim)
	}
	return d.Out, nil
}

func (d *Dense) clone() Layer {
	c := &Dense{In: d.In, Out: d.Out, w: newParam(d.In * d.Out), b: newParam(d.Out)}
	copy(c.w.W, d.w.W)
	copy(c.b.W, d.b.W)
	return c
}

// ReLU applies max(0, x) element-wise.
type ReLU struct {
	lastX [][]float64
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward applies the rectifier.
func (r *ReLU) Forward(x [][]float64) [][]float64 {
	r.lastX = x
	out := make([][]float64, len(x))
	for i, row := range x {
		o := make([]float64, len(row))
		for j, v := range row {
			if v > 0 {
				o[j] = v
			}
		}
		out[i] = o
	}
	return out
}

// Backward gates the incoming gradient by the sign of the forward input.
func (r *ReLU) Backward(gradOut [][]float64) [][]float64 {
	gradIn := make([][]float64, len(gradOut))
	for i, g := range gradOut {
		x := r.lastX[i]
		gi := make([]float64, len(g))
		for j := range g {
			if x[j] > 0 {
				gi[j] = g[j]
			}
		}
		gradIn[i] = gi
	}
	return gradIn
}

// Params returns nil: ReLU has no learnable parameters.
func (r *ReLU) Params() []*Param { return nil }

// OutDim returns inDim unchanged.
func (r *ReLU) OutDim(inDim int) (int, error) { return inDim, nil }

func (r *ReLU) clone() Layer { return &ReLU{} }

// Sigmoid applies 1/(1+e^(−x)) element-wise.
type Sigmoid struct {
	lastY [][]float64
}

// NewSigmoid returns a sigmoid activation layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward applies the logistic function.
func (s *Sigmoid) Forward(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		o := make([]float64, len(row))
		for j, v := range row {
			o[j] = 1 / (1 + math.Exp(-v))
		}
		out[i] = o
	}
	s.lastY = out
	return out
}

// Backward multiplies by y(1−y).
func (s *Sigmoid) Backward(gradOut [][]float64) [][]float64 {
	gradIn := make([][]float64, len(gradOut))
	for i, g := range gradOut {
		y := s.lastY[i]
		gi := make([]float64, len(g))
		for j := range g {
			gi[j] = g[j] * y[j] * (1 - y[j])
		}
		gradIn[i] = gi
	}
	return gradIn
}

// Params returns nil: Sigmoid has no learnable parameters.
func (s *Sigmoid) Params() []*Param { return nil }

// OutDim returns inDim unchanged.
func (s *Sigmoid) OutDim(inDim int) (int, error) { return inDim, nil }

func (s *Sigmoid) clone() Layer { return &Sigmoid{} }
