package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestAdamConvergesOnSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net, err := NewNetwork(2, 2, NewDense(2, 16, rng), NewReLU(), NewDense(16, 2, rng))
	if err != nil {
		t.Fatal(err)
	}
	opt := NewAdam(0.01, 0)
	sample := func(n int) ([][]float64, []int) {
		x := make([][]float64, n)
		y := make([]int, n)
		for i := range x {
			c := rng.Intn(2)
			cx := -2.0
			if c == 1 {
				cx = 2.0
			}
			x[i] = []float64{cx + rng.NormFloat64()*0.5, rng.NormFloat64() * 0.5}
			y[i] = c
		}
		return x, y
	}
	for epoch := 0; epoch < 60; epoch++ {
		x, y := sample(64)
		if _, err := net.AccumulateGradients(x, y); err != nil {
			t.Fatal(err)
		}
		opt.Step(net.Params())
	}
	x, y := sample(200)
	pred := net.Predict(x)
	correct := 0
	for i := range y {
		if pred[i] == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / 200; acc < 0.95 {
		t.Errorf("Adam accuracy = %v", acc)
	}
	opt.Reset()
	if opt.step != 0 || len(opt.m) != 0 {
		t.Error("Reset did not clear moments")
	}
}

func TestAdamValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewAdam(0, 0) },
		func() { NewAdam(0.01, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAdamAdaptsPerParameter(t *testing.T) {
	// Two parameters with gradients of very different magnitude: Adam's
	// normalized step moves both by a comparable amount.
	p := newParam(2)
	opt := NewAdam(0.1, 0)
	p.Grad[0] = 100
	p.Grad[1] = 0.01
	opt.Step([]*Param{p})
	if math.Abs(math.Abs(p.W[0])-math.Abs(p.W[1])) > 0.05 {
		t.Errorf("Adam steps not normalized: %v vs %v", p.W[0], p.W[1])
	}
}

func TestDropoutTrainingMasksAndScales(t *testing.T) {
	d := NewDropout(0.5, 1)
	out := d.Forward(tensorOf([]float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}))
	zeros, scaled := 0, 0
	for _, v := range out.Row(0) {
		switch v {
		case 0:
			zeros++
		case 2: // 1 / (1 - 0.5)
			scaled++
		default:
			t.Fatalf("unexpected activation %v", v)
		}
	}
	if zeros == 0 || scaled == 0 {
		t.Errorf("mask degenerate: %d zeros, %d scaled", zeros, scaled)
	}
	// Backward routes gradients through the same mask.
	g := d.Backward(tensorOf([]float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}))
	for j, v := range out.Row(0) {
		if (v == 0) != (g.At(0, j) == 0) {
			t.Fatal("gradient mask differs from forward mask")
		}
	}
}

func TestDropoutInferenceIsIdentity(t *testing.T) {
	d := NewDropout(0.9, 1)
	d.SetTraining(false)
	x := tensorOf([]float64{1, 2, 3})
	out := d.Forward(x)
	for j, v := range out.Row(0) {
		if v != x.At(0, j) {
			t.Fatal("inference dropout modified activations")
		}
	}
	g := d.Backward(tensorOf([]float64{1, 1, 1}))
	if g.At(0, 0) != 1 {
		t.Fatal("inference backward modified gradients")
	}
}

func TestDropoutInNetworkGradCheck(t *testing.T) {
	// With training disabled dropout is the identity, so the gradient check
	// must pass exactly.
	rng := rand.New(rand.NewSource(2))
	drop := NewDropout(0.5, 3)
	drop.SetTraining(false)
	net, err := NewNetwork(4, 2, NewDense(4, 6, rng), drop, NewDense(6, 2, rng))
	if err != nil {
		t.Fatal(err)
	}
	x, y := randomBatch(rng, 4, 4, 2)
	checkGradients(t, net, x, y)
}

func TestDropoutValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDropout(1, 1)
}

func TestDropoutClone(t *testing.T) {
	d := NewDropout(0.3, 1)
	c := d.clone().(*Dropout)
	if c.Rate != 0.3 {
		t.Errorf("clone rate = %v", c.Rate)
	}
	if dim, err := c.OutDim(7); err != nil || dim != 7 {
		t.Errorf("OutDim = %d, %v", dim, err)
	}
	if c.Params() != nil {
		t.Error("dropout should have no params")
	}
}
