package nn

import "math/rand"

// Dropout randomly zeroes a fraction of activations during training
// (inverted dropout: survivors are scaled by 1/(1−rate) so inference needs
// no correction). Call SetTraining(false) before inference-only passes;
// the FreewayML pipeline toggles it around Fit calls when the layer is
// used in a custom model.
type Dropout struct {
	Rate     float64
	training bool
	rng      *rand.Rand
	lastMask []([]float64)
}

// NewDropout returns a dropout layer with the given drop rate in [0, 1).
func NewDropout(rate float64, seed int64) *Dropout {
	if rate < 0 || rate >= 1 {
		panic("nn: Dropout rate must be in [0, 1)")
	}
	return &Dropout{Rate: rate, training: true, rng: rand.New(rand.NewSource(seed))}
}

// SetTraining toggles between training (masking) and inference (identity).
func (d *Dropout) SetTraining(training bool) { d.training = training }

// Forward masks activations in training mode and passes through otherwise.
func (d *Dropout) Forward(x [][]float64) [][]float64 {
	if !d.training || d.Rate == 0 {
		d.lastMask = nil
		return x
	}
	keep := 1 - d.Rate
	scale := 1 / keep
	out := make([][]float64, len(x))
	d.lastMask = make([][]float64, len(x))
	for i, row := range x {
		o := make([]float64, len(row))
		mask := make([]float64, len(row))
		for j, v := range row {
			if d.rng.Float64() < keep {
				mask[j] = scale
				o[j] = v * scale
			}
		}
		out[i] = o
		d.lastMask[i] = mask
	}
	return out
}

// Backward applies the cached mask to the incoming gradient.
func (d *Dropout) Backward(gradOut [][]float64) [][]float64 {
	if d.lastMask == nil {
		return gradOut
	}
	gradIn := make([][]float64, len(gradOut))
	for i, g := range gradOut {
		gi := make([]float64, len(g))
		for j := range g {
			gi[j] = g[j] * d.lastMask[i][j]
		}
		gradIn[i] = gi
	}
	return gradIn
}

// Params returns nil: dropout has no learnable parameters.
func (d *Dropout) Params() []*Param { return nil }

// OutDim returns inDim unchanged.
func (d *Dropout) OutDim(inDim int) (int, error) { return inDim, nil }

func (d *Dropout) clone() Layer {
	return &Dropout{Rate: d.Rate, training: d.training, rng: rand.New(rand.NewSource(d.rng.Int63()))}
}
