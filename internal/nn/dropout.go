package nn

import (
	"math/rand"

	"freewayml/internal/linalg"
)

// Dropout randomly zeroes a fraction of activations during training
// (inverted dropout: survivors are scaled by 1/(1−rate) so inference needs
// no correction). Call SetTraining(false) before inference-only passes;
// the FreewayML pipeline toggles it around Fit calls when the layer is
// used in a custom model.
type Dropout struct {
	Rate     float64
	training bool
	rng      *rand.Rand

	masked      bool // whether lastMask applies to the last Forward
	lastMask    *linalg.Tensor
	out, gradIn *linalg.Tensor
}

// NewDropout returns a dropout layer with the given drop rate in [0, 1).
func NewDropout(rate float64, seed int64) *Dropout {
	if rate < 0 || rate >= 1 {
		panic("nn: Dropout rate must be in [0, 1)")
	}
	return &Dropout{Rate: rate, training: true, rng: rand.New(rand.NewSource(seed))}
}

// SetTraining toggles between training (masking) and inference (identity).
func (d *Dropout) SetTraining(training bool) { d.training = training }

// Forward masks activations in training mode and passes through otherwise.
func (d *Dropout) Forward(x *linalg.Tensor) *linalg.Tensor {
	if !d.training || d.Rate == 0 {
		d.masked = false
		return x
	}
	keep := 1 - d.Rate
	scale := 1 / keep
	d.masked = true
	d.lastMask = linalg.EnsureTensor(d.lastMask, x.Rows, x.Cols)
	d.out = linalg.EnsureTensor(d.out, x.Rows, x.Cols)
	for i, v := range x.Data {
		if d.rng.Float64() < keep {
			d.lastMask.Data[i] = scale
			d.out.Data[i] = v * scale
		} else {
			d.lastMask.Data[i] = 0
			d.out.Data[i] = 0
		}
	}
	return d.out
}

// Backward applies the cached mask to the incoming gradient.
func (d *Dropout) Backward(gradOut *linalg.Tensor) *linalg.Tensor {
	if !d.masked {
		return gradOut
	}
	d.gradIn = linalg.EnsureTensor(d.gradIn, gradOut.Rows, gradOut.Cols)
	for i, g := range gradOut.Data {
		d.gradIn.Data[i] = g * d.lastMask.Data[i]
	}
	return d.gradIn
}

// Params returns nil: dropout has no learnable parameters.
func (d *Dropout) Params() []*Param { return nil }

// OutDim returns inDim unchanged.
func (d *Dropout) OutDim(inDim int) (int, error) { return inDim, nil }

func (d *Dropout) clone() Layer {
	return &Dropout{Rate: d.Rate, training: d.training, rng: rand.New(rand.NewSource(d.rng.Int63()))}
}
