package nn

import (
	"math"
	"math/rand"
	"testing"

	"freewayml/internal/linalg"
)

// This file pins the tensor/GEMM layer implementations against the naive
// per-row reference loops the package shipped with before the flat-tensor
// compute core. The references are deliberately written in the original
// pointer-chasing style so any divergence introduced by blocking, im2col, or
// the parallel kernel path is caught within 1e-9.

// refDenseForward is the pre-tensor Dense forward: per-row axpy with the
// bias seeding the accumulator.
func refDenseForward(w, b []float64, in, out int, x [][]float64) [][]float64 {
	res := make([][]float64, len(x))
	for i, row := range x {
		o := make([]float64, out)
		copy(o, b)
		for k, xv := range row {
			wrow := w[k*out : (k+1)*out]
			for j := range o {
				o[j] += xv * wrow[j]
			}
		}
		res[i] = o
	}
	return res
}

// refDenseBackward reproduces the original gradient accumulation, returning
// (gradW, gradB, gradIn).
func refDenseBackward(w []float64, in, out int, x, gradOut [][]float64) ([]float64, []float64, [][]float64) {
	gw := make([]float64, in*out)
	gb := make([]float64, out)
	gradIn := make([][]float64, len(gradOut))
	for i, g := range gradOut {
		xi := x[i]
		gi := make([]float64, in)
		for k := 0; k < in; k++ {
			wrow := w[k*out : (k+1)*out]
			grow := gw[k*out : (k+1)*out]
			xv := xi[k]
			var s float64
			for j, gj := range g {
				s += gj * wrow[j]
				grow[j] += gj * xv
			}
			gi[k] = s
		}
		for j, gj := range g {
			gb[j] += gj
		}
		gradIn[i] = gi
	}
	return gw, gb, gradIn
}

// refConvForward is the pre-im2col direct convolution.
func refConvForward(c *Conv1D, x [][]float64) [][]float64 {
	ol := c.outLen()
	res := make([][]float64, len(x))
	for i, row := range x {
		o := make([]float64, c.OutChannels*ol)
		for oc := 0; oc < c.OutChannels; oc++ {
			bias := c.b.W[oc]
			for t := 0; t < ol; t++ {
				s := bias
				for ic := 0; ic < c.InChannels; ic++ {
					wBase := (oc*c.InChannels + ic) * c.Kernel
					xBase := ic*c.Length + t
					for k := 0; k < c.Kernel; k++ {
						s += c.w.W[wBase+k] * row[xBase+k]
					}
				}
				o[oc*ol+t] = s
			}
		}
		res[i] = o
	}
	return res
}

// refConvBackward reproduces the original direct-convolution gradients,
// returning (gradW, gradB, gradIn).
func refConvBackward(c *Conv1D, x, gradOut [][]float64) ([]float64, []float64, [][]float64) {
	ol := c.outLen()
	gw := make([]float64, len(c.w.W))
	gb := make([]float64, len(c.b.W))
	gradIn := make([][]float64, len(gradOut))
	for i, g := range gradOut {
		xi := x[i]
		gi := make([]float64, c.InChannels*c.Length)
		for oc := 0; oc < c.OutChannels; oc++ {
			for t := 0; t < ol; t++ {
				gv := g[oc*ol+t]
				gb[oc] += gv
				for ic := 0; ic < c.InChannels; ic++ {
					wBase := (oc*c.InChannels + ic) * c.Kernel
					xBase := ic*c.Length + t
					for k := 0; k < c.Kernel; k++ {
						gw[wBase+k] += gv * xi[xBase+k]
						gi[xBase+k] += gv * c.w.W[wBase+k]
					}
				}
			}
		}
		gradIn[i] = gi
	}
	return gw, gb, gradIn
}

func sliceClose(t *testing.T, got, want []float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d vs %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("%s[%d] = %v, want %v", label, i, got[i], want[i])
		}
	}
}

func randRows(rng *rand.Rand, n, d int) [][]float64 {
	x := make([][]float64, n)
	for i := range x {
		x[i] = make([]float64, d)
		for j := range x[i] {
			x[i][j] = rng.NormFloat64()
		}
	}
	return x
}

// TestDenseMatchesNaiveReference sweeps randomized shapes — including 1×1,
// 1×N, N×1, and batches crossing the parallel cutoff — and checks forward,
// weight/bias gradients, and the input gradient against the naive loops.
func TestDenseMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	shapes := []struct{ batch, in, out int }{
		{1, 1, 1}, {1, 7, 1}, {1, 1, 9}, {3, 5, 4}, {17, 13, 11}, {300, 40, 30},
	}
	for _, s := range shapes {
		d := NewDense(s.in, s.out, rng)
		x := randRows(rng, s.batch, s.in)
		g := randRows(rng, s.batch, s.out)

		wantOut := refDenseForward(d.w.W, d.b.W, s.in, s.out, x)
		wantGW, wantGB, wantGI := refDenseBackward(d.w.W, s.in, s.out, x, g)

		var xt, gt linalg.Tensor
		xt.FromRows(x, s.in)
		gt.FromRows(g, s.out)
		gotOut := d.Forward(&xt)
		gotGI := d.Backward(&gt)

		for i := range wantOut {
			sliceClose(t, gotOut.Row(i), wantOut[i], "dense forward")
			sliceClose(t, gotGI.Row(i), wantGI[i], "dense gradIn")
		}
		sliceClose(t, d.w.Grad, wantGW, "dense gradW")
		sliceClose(t, d.b.Grad, wantGB, "dense gradB")

		// A second pass accumulates on top of the first, like the original.
		d.Forward(&xt)
		d.Backward(&gt)
		for i := range wantGW {
			wantGW[i] *= 2
		}
		sliceClose(t, d.w.Grad, wantGW, "dense gradW accumulation")
	}
}

// TestConvMatchesNaiveReference checks the im2col+GEMM convolution against
// the direct nested-loop convolution, forward and backward, over randomized
// shapes including kernel==length and multi-channel cases.
func TestConvMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	shapes := []struct{ batch, ic, oc, k, length int }{
		{1, 1, 1, 1, 1}, {1, 1, 1, 3, 3}, {2, 1, 4, 3, 9}, {3, 2, 3, 2, 6},
		{5, 3, 2, 4, 11}, {64, 1, 32, 3, 64},
	}
	for _, s := range shapes {
		c := NewConv1D(s.ic, s.oc, s.k, s.length, rng)
		x := randRows(rng, s.batch, s.ic*s.length)
		g := randRows(rng, s.batch, s.oc*c.outLen())

		wantOut := refConvForward(c, x)
		wantGW, wantGB, wantGI := refConvBackward(c, x, g)

		var xt, gt linalg.Tensor
		xt.FromRows(x, s.ic*s.length)
		gt.FromRows(g, s.oc*c.outLen())
		gotOut := c.Forward(&xt)
		gotGI := c.Backward(&gt)

		for i := range wantOut {
			sliceClose(t, gotOut.Row(i), wantOut[i], "conv forward")
			sliceClose(t, gotGI.Row(i), wantGI[i], "conv gradIn")
		}
		sliceClose(t, c.w.Grad, wantGW, "conv gradW")
		sliceClose(t, c.b.Grad, wantGB, "conv gradB")
	}
}

// TestNetworkForwardStableAcrossCalls verifies the scratch-buffer reuse does
// not leak state between batches: interleaving different batches and batch
// sizes returns the same logits as fresh evaluations.
func TestNetworkForwardStableAcrossCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	net, err := NewNetwork(6, 3,
		NewConv1D(1, 4, 3, 6, rng), NewReLU(), NewMaxPool1D(4, 4, 2),
		NewDense(8, 3, rng))
	if err != nil {
		t.Fatal(err)
	}
	a := randRows(rng, 9, 6)
	b := randRows(rng, 2, 6)
	wantA := net.Forward(a)
	wantB := net.Forward(b)
	for pass := 0; pass < 3; pass++ {
		gotB := net.Forward(b)
		gotA := net.Forward(a)
		for i := range wantA {
			sliceClose(t, gotA[i], wantA[i], "interleaved forward A")
		}
		for i := range wantB {
			sliceClose(t, gotB[i], wantB[i], "interleaved forward B")
		}
	}
}
