// Package nn is a small, dependency-free neural-network library built for
// FreewayML's streaming models. The paper implements its models on PyTorch;
// Go has no mature NN-training stack, so this package provides the minimal
// equivalent: dense and 1-D convolutional layers, mini-batch SGD with
// momentum, a numerically stable softmax cross-entropy head, and parameter
// snapshot/restore used by the historical-knowledge store.
//
// Internally all layers operate on flat row-major linalg.Tensor batches (one
// row per sample) with per-layer scratch buffers reused across batches; the
// Network API accepts and returns [][]float64 through thin adapters. Layers
// cache their forward inputs and scratch, so a Network is not safe for
// concurrent use; FreewayML runs one goroutine per model.
package nn

import (
	"math"
	"math/rand"
)

// Param is one learnable parameter tensor, stored flat together with its
// gradient accumulator.
type Param struct {
	W    []float64
	Grad []float64
}

func newParam(n int) *Param {
	return &Param{W: make([]float64, n), Grad: make([]float64, n)}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	for i := range p.Grad {
		p.Grad[i] = 0
	}
}

// heInit fills w with He-normal initialization for a layer with the given
// fan-in, the standard choice ahead of ReLU activations.
func heInit(w []float64, fanIn int, rng *rand.Rand) {
	std := 1.0
	if fanIn > 0 {
		std = math.Sqrt(2.0 / float64(fanIn))
	}
	for i := range w {
		w[i] = rng.NormFloat64() * std
	}
}

// xavierInit fills w with Xavier/Glorot-normal initialization, used ahead of
// linear or sigmoid outputs.
func xavierInit(w []float64, fanIn, fanOut int, rng *rand.Rand) {
	std := 1.0
	if fanIn+fanOut > 0 {
		std = math.Sqrt(2.0 / float64(fanIn+fanOut))
	}
	for i := range w {
		w[i] = rng.NormFloat64() * std
	}
}
