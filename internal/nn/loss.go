package nn

import (
	"fmt"
	"math"

	"freewayml/internal/linalg"
)

// Softmax converts logits into a probability distribution, numerically
// stabilized by subtracting the row max.
func Softmax(logits []float64) []float64 {
	out := make([]float64, len(logits))
	softmaxInto(out, logits)
	return out
}

// crossEntropyEps floors probabilities inside the log so a confident wrong
// prediction yields a large but finite loss.
const crossEntropyEps = 1e-12

// SoftmaxCrossEntropy returns the mean cross-entropy loss of the logits
// against integer labels, plus the gradient of that loss with respect to the
// logits — the combined softmax+CE backward, (p − onehot)/n. Labels outside
// [0, numClasses) are an error.
func SoftmaxCrossEntropy(logits [][]float64, labels []int) (float64, [][]float64, error) {
	if len(logits) != len(labels) {
		return 0, nil, fmt.Errorf("nn: %d logit rows vs %d labels", len(logits), len(labels))
	}
	if len(logits) == 0 {
		return 0, nil, fmt.Errorf("nn: empty batch")
	}
	n := float64(len(logits))
	grads := make([][]float64, len(logits))
	var loss float64
	for i, row := range logits {
		y := labels[i]
		if y < 0 || y >= len(row) {
			return 0, nil, fmt.Errorf("nn: label %d outside [0,%d)", y, len(row))
		}
		p := Softmax(row)
		loss += -math.Log(math.Max(p[y], crossEntropyEps))
		g := make([]float64, len(row))
		for j := range row {
			g[j] = p[j] / n
		}
		g[y] -= 1 / n
		grads[i] = g
	}
	return loss / n, grads, nil
}

// softmaxInto writes the softmax of logits into out (same length),
// numerically stabilized by subtracting the row max. It is the
// allocation-free core shared by Softmax and the tensor loss.
func softmaxInto(out, logits []float64) {
	maxv := math.Inf(-1)
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - maxv)
		out[i] = e
		sum += e
	}
	if sum == 0 {
		// Degenerate logits (all -Inf); fall back to uniform.
		u := 1 / float64(len(out))
		for i := range out {
			out[i] = u
		}
		return
	}
	for i := range out {
		out[i] /= sum
	}
}

// softmaxCrossEntropyT is the tensor/core form of SoftmaxCrossEntropy: it
// returns the mean loss and writes the logit gradient (p − onehot)/n into
// grad, which must be pre-shaped to match logits. Softmax probabilities are
// computed directly into the grad rows, so the whole loss head allocates
// nothing.
func softmaxCrossEntropyT(logits *linalg.Tensor, labels []int, grad *linalg.Tensor) (float64, error) {
	if logits.Rows != len(labels) {
		return 0, fmt.Errorf("nn: %d logit rows vs %d labels", logits.Rows, len(labels))
	}
	if logits.Rows == 0 {
		return 0, fmt.Errorf("nn: empty batch")
	}
	n := float64(logits.Rows)
	var loss float64
	for i := 0; i < logits.Rows; i++ {
		y := labels[i]
		if y < 0 || y >= logits.Cols {
			return 0, fmt.Errorf("nn: label %d outside [0,%d)", y, logits.Cols)
		}
		g := grad.Row(i)
		softmaxInto(g, logits.Row(i))
		loss += -math.Log(math.Max(g[y], crossEntropyEps))
		for j := range g {
			g[j] /= n
		}
		g[y] -= 1 / n
	}
	return loss / n, nil
}

// Argmax returns the index of the largest element (first on ties), or -1
// for an empty slice.
func Argmax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[best] {
			best = i
		}
	}
	return best
}
