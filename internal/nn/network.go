package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"freewayml/internal/linalg"
)

// Network is a sequential stack of layers ending in logits over NumClasses
// classes, trained with softmax cross-entropy.
//
// The exported API speaks [][]float64 so callers (core, baselines, window,
// knowledge) are representation-agnostic; internally every pass runs on flat
// row-major tensors with network- and layer-owned scratch buffers reused
// across batches, so the steady-state hot path allocates only the returned
// results.
type Network struct {
	layers     []Layer
	inDim      int
	numClasses int

	xBuf    *linalg.Tensor // staging copy of the caller's batch
	gradBuf *linalg.Tensor // loss-head gradient scratch
}

// NewNetwork assembles a sequential network. It validates that the layer
// widths chain from inDim to numClasses and returns an error otherwise.
func NewNetwork(inDim, numClasses int, layers ...Layer) (*Network, error) {
	if inDim <= 0 || numClasses <= 0 {
		return nil, fmt.Errorf("nn: invalid network dims in=%d classes=%d", inDim, numClasses)
	}
	if len(layers) == 0 {
		return nil, fmt.Errorf("nn: network needs at least one layer")
	}
	dim := inDim
	for i, l := range layers {
		next, err := l.OutDim(dim)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d: %w", i, err)
		}
		dim = next
	}
	if dim != numClasses {
		return nil, fmt.Errorf("nn: network output width %d, want %d classes", dim, numClasses)
	}
	return &Network{layers: layers, inDim: inDim, numClasses: numClasses}, nil
}

// InDim returns the expected input width.
func (n *Network) InDim() int { return n.inDim }

// NumClasses returns the number of output classes.
func (n *Network) NumClasses() int { return n.numClasses }

// stage copies the caller's batch into the network's staging tensor. Rows
// must all have the expected input width.
func (n *Network) stage(x [][]float64) *linalg.Tensor {
	if n.xBuf == nil {
		n.xBuf = linalg.NewTensor(0, n.inDim)
	}
	n.xBuf.FromRows(x, n.inDim)
	return n.xBuf
}

// forwardT runs the staged batch through all layers. The returned tensor is
// owned by the last layer and valid until its next Forward call.
func (n *Network) forwardT(x *linalg.Tensor) *linalg.Tensor {
	h := x
	for _, l := range n.layers {
		h = l.Forward(h)
	}
	return h
}

// Forward runs the batch through all layers and returns the logits.
func (n *Network) Forward(x [][]float64) [][]float64 {
	return n.forwardT(n.stage(x)).ToRows()
}

// ForwardTensor runs a pre-staged row-major batch through the network and
// returns the logits. This is the fused-batch entry: the cross-stream
// coalescer hands the whole packed slab here, so staging is one flat copy
// into the network's scratch instead of a copy per row, and the batch goes
// through the blocked GEMM kernels as a single pass. The returned tensor is
// layer-owned scratch, valid until the next forward pass.
func (n *Network) ForwardTensor(x *linalg.Tensor) (*linalg.Tensor, error) {
	if x == nil || x.Rows == 0 {
		return nil, fmt.Errorf("nn: empty batch")
	}
	if x.Cols != n.inDim {
		return nil, fmt.Errorf("nn: batch width %d, network expects %d", x.Cols, n.inDim)
	}
	n.xBuf = linalg.EnsureTensor(n.xBuf, x.Rows, x.Cols)
	n.xBuf.CopyFrom(x)
	return n.forwardT(n.xBuf), nil
}

// PredictTensorInto writes the argmax class of each row of x into dst, which
// must have exactly x.Rows elements. It is Predict for pre-fused batches:
// no per-row staging, no result allocation.
func (n *Network) PredictTensorInto(x *linalg.Tensor, dst []int) error {
	logits, err := n.ForwardTensor(x)
	if err != nil {
		return err
	}
	if len(dst) != logits.Rows {
		return fmt.Errorf("nn: dst has %d slots for %d rows", len(dst), logits.Rows)
	}
	for i := range dst {
		dst[i] = Argmax(logits.Row(i))
	}
	return nil
}

// Predict returns the argmax class for each sample.
func (n *Network) Predict(x [][]float64) []int {
	logits := n.forwardT(n.stage(x))
	out := make([]int, logits.Rows)
	for i := range out {
		out[i] = Argmax(logits.Row(i))
	}
	return out
}

// PredictProba returns the softmax distribution for each sample. The row
// headers share one backing allocation.
func (n *Network) PredictProba(x [][]float64) [][]float64 {
	logits := n.forwardT(n.stage(x))
	flat := make([]float64, logits.Rows*logits.Cols)
	out := make([][]float64, logits.Rows)
	for i := range out {
		row := flat[i*logits.Cols : (i+1)*logits.Cols : (i+1)*logits.Cols]
		softmaxInto(row, logits.Row(i))
		out[i] = row
	}
	return out
}

// TrainBatch performs one forward/backward pass and one optimizer step on
// the mini-batch, returning the pre-update mean loss.
func (n *Network) TrainBatch(x [][]float64, y []int, opt *SGD) (float64, error) {
	loss, err := n.AccumulateGradients(x, y)
	if err != nil {
		return 0, err
	}
	opt.Step(n.Params())
	return loss, nil
}

// AccumulateGradients runs forward/backward and adds this batch's gradients
// into the parameter accumulators without stepping. The pre-computing window
// mechanism (paper Sec. V-B) and the A-GEM baseline both need gradients
// decoupled from updates.
func (n *Network) AccumulateGradients(x [][]float64, y []int) (float64, error) {
	if len(x) == 0 {
		return 0, fmt.Errorf("nn: empty batch")
	}
	logits := n.forwardT(n.stage(x))
	n.gradBuf = linalg.EnsureTensor(n.gradBuf, logits.Rows, logits.Cols)
	loss, err := softmaxCrossEntropyT(logits, y, n.gradBuf)
	if err != nil {
		return 0, err
	}
	g := n.gradBuf
	for i := len(n.layers) - 1; i >= 0; i-- {
		g = n.layers[i].Backward(g)
	}
	return loss, nil
}

// Loss returns the mean softmax cross-entropy of the batch without touching
// gradients or parameters.
func (n *Network) Loss(x [][]float64, y []int) (float64, error) {
	if len(x) == 0 {
		return 0, fmt.Errorf("nn: empty batch")
	}
	logits := n.forwardT(n.stage(x))
	// The gradient write is wasted work here, but it reuses the same scratch
	// and keeps one loss implementation.
	n.gradBuf = linalg.EnsureTensor(n.gradBuf, logits.Rows, logits.Cols)
	return softmaxCrossEntropyT(logits, y, n.gradBuf)
}

// Params returns all learnable parameters, layer by layer.
func (n *Network) Params() []*Param {
	var out []*Param
	for _, l := range n.layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ZeroGrad clears every parameter gradient.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.ZeroGrad()
	}
}

// ParamsFinite reports whether every learnable weight is finite. The
// divergence watchdog calls it after each update: a single NaN or Inf
// weight makes every subsequent prediction garbage, and catching it at the
// update that introduced it is what makes rollback possible.
func (n *Network) ParamsFinite() bool {
	for _, p := range n.Params() {
		for _, w := range p.W {
			// A non-finite float is the only value for which v-v != 0.
			if w-w != 0 {
				return false
			}
		}
	}
	return true
}

// NumParams returns the total number of scalar parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.W)
	}
	return total
}

// Clone returns a deep copy of the network with independent parameters.
// Scratch buffers are not copied; the clone allocates its own lazily.
func (n *Network) Clone() *Network {
	layers := make([]Layer, len(n.layers))
	for i, l := range n.layers {
		layers[i] = l.clone()
	}
	return &Network{layers: layers, inDim: n.inDim, numClasses: n.numClasses}
}

// FlattenGrads copies all parameter gradients into one flat vector (the
// representation A-GEM's projection works on).
func (n *Network) FlattenGrads() []float64 {
	var out []float64
	for _, p := range n.Params() {
		out = append(out, p.Grad...)
	}
	return out
}

// SetFlatGrads writes a flat gradient vector back into the parameter
// accumulators. It panics if the length does not match.
func (n *Network) SetFlatGrads(flat []float64) {
	idx := 0
	for _, p := range n.Params() {
		if idx+len(p.Grad) > len(flat) {
			panic("nn: SetFlatGrads length mismatch")
		}
		copy(p.Grad, flat[idx:idx+len(p.Grad)])
		idx += len(p.Grad)
	}
	if idx != len(flat) {
		panic("nn: SetFlatGrads length mismatch")
	}
}

// Snapshot serializes all parameter values (not gradients) into a byte
// slice. The historical-knowledge store keeps these snapshots and restores
// them when a distribution reoccurs; their length is also the Table IV
// space-overhead measurement.
func (n *Network) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	params := n.Params()
	weights := make([][]float64, len(params))
	for i, p := range params {
		weights[i] = p.W
	}
	if err := enc.Encode(weights); err != nil {
		return nil, fmt.Errorf("nn: snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore loads parameter values from a Snapshot of a network with the same
// architecture.
func (n *Network) Restore(snapshot []byte) error {
	dec := gob.NewDecoder(bytes.NewReader(snapshot))
	var weights [][]float64
	if err := dec.Decode(&weights); err != nil {
		return fmt.Errorf("nn: restore: %w", err)
	}
	params := n.Params()
	if len(weights) != len(params) {
		return fmt.Errorf("nn: restore: %d tensors, network has %d", len(weights), len(params))
	}
	for i, p := range params {
		if len(weights[i]) != len(p.W) {
			return fmt.Errorf("nn: restore: tensor %d has %d values, want %d", i, len(weights[i]), len(p.W))
		}
		copy(p.W, weights[i])
	}
	return nil
}
