package nn

import (
	"math"
	"math/rand"
	"testing"

	"freewayml/internal/linalg"
)

// testNets builds one network per architecture corner the engine compiles:
// dot-form and axpy-form dense layers, both activations, fused conv + pool,
// and an inference-identity dropout.
func testNets(t *testing.T) map[string]*Network {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	nets := map[string]*Network{}

	mlp, err := NewNetwork(12, 3,
		NewDense(12, 32, rng), NewReLU(), NewDense(32, 3, rng))
	if err != nil {
		t.Fatal(err)
	}
	nets["mlp"] = mlp

	sig, err := NewNetwork(6, 2,
		NewDense(6, 16, rng), NewSigmoid(), NewDense(16, 2, rng))
	if err != nil {
		t.Fatal(err)
	}
	nets["sigmoid"] = sig

	conv, err := NewNetwork(20, 2,
		NewConv1D(1, 4, 3, 20, rng), NewReLU(),
		NewMaxPool1D(4, 18, 2), NewDense(4*9, 2, rng))
	if err != nil {
		t.Fatal(err)
	}
	nets["cnn"] = conv

	drop := NewDropout(0.5, 1)
	drop.SetTraining(false)
	dnet, err := NewNetwork(8, 2,
		NewDense(8, 16, rng), NewReLU(), drop, NewDense(16, 2, rng))
	if err != nil {
		t.Fatal(err)
	}
	nets["dropout"] = dnet
	return nets
}

// TestInferEngineF32MatchesOracle bounds the f32 engine against the f64
// network forward with the documented epsilon: probabilities within 1e-4
// absolute (f32 logit drift is O(width·eps32), and softmax is 1-Lipschitz
// in the logits up to a constant).
func TestInferEngineF32MatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, net := range testNets(t) {
		t.Run(name, func(t *testing.T) {
			eng, err := CompileInfer(net, linalg.TierF32)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			x := randRowsB(rng, 9, net.InDim())
			want := net.PredictProba(x)
			got, err := eng.PredictProba64(x)
			if err != nil {
				t.Fatalf("engine forward: %v", err)
			}
			compareProbas(t, got, want, 1e-4)
			if eng.QuantMats() != 0 {
				t.Fatalf("f32 engine reports %d quantized mats", eng.QuantMats())
			}
		})
	}
}

// TestInferEngineInt8MatchesOracle bounds the int8 tier with the documented
// looser epsilon (0.05 absolute on probabilities): per-row absmax int8
// carries ~1/254 relative weight error, which the softmax maps to a few
// percent of probability mass on these widths.
func TestInferEngineInt8MatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for name, net := range testNets(t) {
		t.Run(name, func(t *testing.T) {
			eng, err := CompileInfer(net, linalg.TierInt8)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if eng.QuantMats() == 0 {
				t.Fatal("int8 engine quantized no matrices")
			}
			if min, max := eng.ScaleStats(); min <= 0 || max < min {
				t.Fatalf("scale stats min %g max %g", min, max)
			}
			x := randRowsB(rng, 9, net.InDim())
			want := net.PredictProba(x)
			got, err := eng.PredictProba64(x)
			if err != nil {
				t.Fatalf("engine forward: %v", err)
			}
			compareProbas(t, got, want, 0.05)
		})
	}
}

// TestInferEngineNative32 pins that the native-f32 entry produces bitwise
// the same result as staging the same values through the f64 entry — the
// narrowing copy is the only difference, and here the inputs are exactly
// representable either way.
func TestInferEngineNative32(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := testNets(t)["mlp"]
	eng, err := CompileInfer(net, linalg.TierF32)
	if err != nil {
		t.Fatal(err)
	}
	n, dim := 5, net.InDim()
	x32 := make([][]float32, n)
	x64 := make([][]float64, n)
	for i := range x32 {
		x32[i] = make([]float32, dim)
		x64[i] = make([]float64, dim)
		for j := range x32[i] {
			v := float32(rng.NormFloat64())
			x32[i][j] = v
			x64[i][j] = float64(v)
		}
	}
	a, err := eng.PredictProba32(x32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.PredictProba64(x64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("row %d class %d: native %g vs staged %g", i, j, a[i][j], b[i][j])
			}
		}
	}
}

// TestCompileInferF64ReturnsNil pins the oracle-tier contract: no engine is
// built, callers keep using the model itself.
func TestCompileInferF64ReturnsNil(t *testing.T) {
	net := testNets(t)["mlp"]
	eng, err := CompileInfer(net, linalg.TierF64)
	if err != nil || eng != nil {
		t.Fatalf("TierF64 compile: engine %v err %v, want nil/nil", eng, err)
	}
}

// TestInferEngineRejectsNonFinite pins that non-finite activations surface
// an error from the int8 quantizer instead of reaching the kernels.
func TestInferEngineRejectsNonFinite(t *testing.T) {
	net := testNets(t)["mlp"]
	eng, err := CompileInfer(net, linalg.TierInt8)
	if err != nil {
		t.Fatal(err)
	}
	x := randRowsB(rand.New(rand.NewSource(4)), 2, net.InDim())
	x[1][3] = math.NaN()
	if _, err := eng.PredictProba64(x); err == nil {
		t.Fatal("int8 engine accepted NaN input")
	}
}

func compareProbas(t *testing.T, got, want [][]float64, eps float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("row %d: %d classes, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range got[i] {
			if d := math.Abs(got[i][j] - want[i][j]); d > eps {
				t.Fatalf("row %d class %d: %g vs %g (|diff| %g > %g)", i, j, got[i][j], want[i][j], d, eps)
			}
		}
	}
}

func BenchmarkInferEngineF32MLP(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net, err := NewNetwork(64, 4,
		NewDense(64, 128, rng), NewReLU(), NewDense(128, 4, rng))
	if err != nil {
		b.Fatal(err)
	}
	eng, err := CompileInfer(net, linalg.TierF32)
	if err != nil {
		b.Fatal(err)
	}
	x := randRowsB(rng, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.PredictProba64(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInferNetworkF64MLP(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net, err := NewNetwork(64, 4,
		NewDense(64, 128, rng), NewReLU(), NewDense(128, 4, rng))
	if err != nil {
		b.Fatal(err)
	}
	x := randRowsB(rng, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.PredictProba(x)
	}
}

func BenchmarkInferEngineInt8MLP(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net, err := NewNetwork(64, 4,
		NewDense(64, 128, rng), NewReLU(), NewDense(128, 4, rng))
	if err != nil {
		b.Fatal(err)
	}
	eng, err := CompileInfer(net, linalg.TierInt8)
	if err != nil {
		b.Fatal(err)
	}
	x := randRowsB(rng, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.PredictProba64(x); err != nil {
			b.Fatal(err)
		}
	}
}

func randRowsB(rng *rand.Rand, n, dim int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, dim)
		for j := range out[i] {
			out[i][j] = rng.NormFloat64()
		}
	}
	return out
}
